GO ?= go

.PHONY: build test bench trace-demo verify fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# End-to-end tracing demo: drives a monitoring control loop per encoding
# scheme and asserts the linked span tree (agent.indication ->
# transport.send / server.dispatch -> ctrl.monitor.store) over a live
# /traces endpoint.
trace-demo:
	$(GO) test -run TestTraceDemo -v ./internal/obs/

fmt:
	gofmt -w .

# Full pre-merge check: formatting, vet, both build modes (telemetry on
# and compiled out), race-detector test run. See scripts/verify.sh.
verify:
	sh scripts/verify.sh
