GO ?= go

.PHONY: build test bench verify fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

fmt:
	gofmt -w .

# Full pre-merge check: formatting, vet, both build modes (telemetry on
# and compiled out), race-detector test run. See scripts/verify.sh.
verify:
	sh scripts/verify.sh
