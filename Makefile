GO ?= go

.PHONY: build test bench trace-demo chaos-demo controlroom-demo sla-demo federation-demo verify fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Paper figure suite + hot-path microbenches with -benchmem; writes
# BENCH_pr10.json (name -> ns/op, B/op, allocs/op). Tunables:
# FIG_BENCHTIME, HOT_BENCHTIME, MICRO_BENCHTIME, OUT. See
# scripts/bench.sh and docs/PERFORMANCE.md.
bench:
	sh scripts/bench.sh

# End-to-end tracing demo: drives a monitoring control loop per encoding
# scheme and asserts the linked span tree (agent.indication ->
# transport.send / server.dispatch -> ctrl.monitor.store) over a live
# /traces endpoint.
trace-demo:
	$(GO) test -run TestTraceDemo -v ./internal/obs/

# End-to-end resilience demo: a monitoring loop survives a scripted
# fault plan (two connection drops, a listener blackout rejecting the
# first two redials) under both codecs — the agent reconnects with
# backoff, the server replays the subscription, the indication stream
# resumes, and the recovery counters appear on /snapshot.json.
chaos-demo:
	$(GO) test -run TestChaosDemo -v ./internal/experiments/

# End-to-end control-room demo: a headless Go WebSocket client dials a
# live monitoring loop's /stream/ws, subscribes to mac.* deltas (with
# backfill) plus the topology and span channels, receives batched delta
# frames under both codecs, and disconnects with a clean close
# handshake.
controlroom-demo:
	$(GO) test -run TestControlRoomDemo -v ./internal/experiments/

# End-to-end A1 policy demo: an SLA policy installed over the /a1/*
# northbound is enforced by the closed loop under both codecs — a load
# surge on the neighbouring slice breaks the target (VIOLATED), the
# loop shifts NVS capacity until it holds again (ENFORCED), and slice
# churn plus a scripted reconnect storm do not unseat the verdict.
sla-demo:
	$(GO) test -run TestSLADemo -v ./internal/experiments/

# End-to-end federation demo: a root controller federates 3 shard
# controllers splitting a 12-agent fleet by consistent hashing, under
# both codecs. One shard is killed mid-run — its agents re-home to the
# ring successor, the root's cross-shard subscription streams resume,
# and a federated windowed query over the pre-kill window returns the
# pre-kill baseline (the successor restored the dead shard's tsdb
# snapshot).
federation-demo:
	$(GO) test -run TestFederationDemo -v ./internal/experiments/

fmt:
	gofmt -w .

# Full pre-merge check: formatting, vet, both build modes (telemetry on
# and compiled out), race-detector test run. See scripts/verify.sh.
verify:
	sh scripts/verify.sh
