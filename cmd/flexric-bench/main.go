// flexric-bench regenerates every table and figure of the paper's
// evaluation (§5, §6). Each subcommand reproduces one experiment and
// prints the rows/series the paper reports; `all` runs everything.
//
//	flexric-bench fig6a  [-sim 10000]
//	flexric-bench fig6b  [-sim 5000]
//	flexric-bench fig7a  [-n 200]
//	flexric-bench fig7b
//	flexric-bench fig8a  [-agents 10] [-dur 5s]
//	flexric-bench fig8b  [-dur 3s]
//	flexric-bench table2
//	flexric-bench fig9a  [-n 200]
//	flexric-bench fig9b  [-agents 10] [-dur 5s]
//	flexric-bench fig11  [-sim 60000]
//	flexric-bench fig13a [-phase 15000]
//	flexric-bench fig13b [-sim 60000]
//	flexric-bench fig15  [-sim 50000]
//	flexric-bench tsdbload [-agents 10] [-readers 4] [-dur 5s] [-compress]
//	flexric-bench streamload [-agents 10] [-clients 8] [-dur 5s]
//	flexric-bench scaleload [-cells 32] [-ues 500] [-idle 95] [-shards 4] [-ingest-workers 4] [-dur 5s]
//	flexric-bench chaos  [-scheme asn] [-connplan drop@120,drop@120] [-lisplan blackout@1=2]
//	flexric-bench slaload [-scheme asn] [-connplan drop@1500,drop@1500,drop@1500]
//	flexric-bench fedload [-scheme fb] [-fed-shards 3] [-fleet 4,8] [-dur 5s]
//	flexric-bench all    (reduced scale)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"flexric/internal/e2ap"
	"flexric/internal/experiments"
	"flexric/internal/sm"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	sim := fs.Int("sim", 0, "simulated duration in ms (0 = experiment default)")
	n := fs.Int("n", 200, "ping count per configuration")
	agents := fs.Int("agents", 10, "dummy agent count")
	dur := fs.Duration("dur", 5*time.Second, "measurement window")
	phase := fs.Int("phase", 15000, "per-phase simulated ms (fig13a)")
	readers := fs.Int("readers", 4, "concurrent query readers (tsdbload)")
	clients := fs.Int("clients", 8, "concurrent WebSocket stream consumers (streamload)")
	compress := fs.Bool("compress", false, "run the time-series store in chunk-compression mode (tsdbload)")
	cellsN := fs.Int("cells", 32, "cells in the fleet, one agent each (scaleload)")
	ues := fs.Int("ues", 500, "UEs attached per cell (scaleload)")
	idle := fs.Int("idle", 95, "percent of UEs with sparse traffic (scaleload)")
	shards := fs.Int("shards", 4, "UE shards per cell (scaleload)")
	ingestWorkers := fs.Int("ingest-workers", 4, "monitor ingest pipeline goroutines (scaleload)")
	scheme := fs.String("scheme", "asn", "encoding scheme: asn or fb (chaos, slaload, fedload)")
	fedShards := fs.Int("fed-shards", 3, "federated controller-plane size (fedload)")
	fleet := fs.String("fleet", "", "comma-separated fleet sizes to sweep, e.g. 4,8 (fedload; empty = default)")
	connPlan := fs.String("connplan", "", "connection fault plan (chaos, slaload; empty = per-experiment default)")
	lisPlan := fs.String("lisplan", "", "listener fault plan (chaos; empty = blackout@1=2)")
	tel := fs.Bool("telemetry", false, "print the telemetry snapshot after each experiment")
	_ = fs.Parse(os.Args[2:])

	simOr := func(def int) int {
		if *sim > 0 {
			return *sim
		}
		return def
	}

	run := func(name string, f func() (fmt.Stringer, error)) {
		if *tel {
			experiments.ResetTelemetry()
		}
		start := time.Now()
		res, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(res.String())
		fmt.Printf("(%s completed in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
		if *tel {
			fmt.Printf("--- telemetry (%s) ---\n%s\n", name, experiments.TelemetryReport())
		}
	}

	experimentsByName := map[string]func(){
		"fig6a": func() {
			run("fig6a", func() (fmt.Stringer, error) { return experiments.Fig6a(simOr(10000)) })
		},
		"fig6b": func() {
			run("fig6b", func() (fmt.Stringer, error) {
				return experiments.Fig6b([]int{1, 2, 4, 8, 16, 24, 32}, simOr(5000))
			})
		},
		"fig7a": func() {
			run("fig7a", func() (fmt.Stringer, error) { return experiments.Fig7a(*n, nil) })
		},
		"fig7b": func() {
			run("fig7b", func() (fmt.Stringer, error) { return experiments.Fig7b(nil) })
		},
		"fig8a": func() {
			run("fig8a", func() (fmt.Stringer, error) { return experiments.Fig8a(*agents, *dur) })
		},
		"fig8b": func() {
			run("fig8b", func() (fmt.Stringer, error) {
				return experiments.Fig8b([]int{1, 4, 8, 12, 16, 18}, *dur)
			})
		},
		"table2": func() {
			run("table2", func() (fmt.Stringer, error) { return experiments.Table2(nil) })
		},
		"fig9a": func() {
			run("fig9a", func() (fmt.Stringer, error) { return experiments.Fig9a(*n, nil) })
		},
		"fig9b": func() {
			run("fig9b", func() (fmt.Stringer, error) { return experiments.Fig9b(*agents, *dur) })
		},
		"fig11": func() {
			run("fig11", func() (fmt.Stringer, error) { return experiments.Fig11(simOr(60000)) })
		},
		"fig13a": func() {
			run("fig13a", func() (fmt.Stringer, error) { return experiments.Fig13a(*phase) })
		},
		"fig13b": func() {
			run("fig13b", func() (fmt.Stringer, error) { return experiments.Fig13b(simOr(60000)) })
		},
		"fig15": func() {
			run("fig15", func() (fmt.Stringer, error) { return experiments.Fig15(simOr(50000)) })
		},
		"tsdbload": func() {
			run("tsdbload", func() (fmt.Stringer, error) {
				return experiments.TSDBLoad(*agents, *readers, *dur, *compress)
			})
		},
		"streamload": func() {
			run("streamload", func() (fmt.Stringer, error) {
				return experiments.StreamLoad(*agents, *clients, *dur)
			})
		},
		"scaleload": func() {
			run("scaleload", func() (fmt.Stringer, error) {
				return experiments.ScaleLoad(experiments.ScaleLoadOptions{
					Cells: *cellsN, UEsPerCell: *ues, IdlePct: *idle, Shards: *shards,
					IngestWorkers: *ingestWorkers, Duration: *dur,
				})
			})
		},
		"chaos": func() {
			e2s, sms := e2ap.SchemeASN, sm.SchemeASN
			if *scheme == "fb" {
				e2s, sms = e2ap.SchemeFB, sm.SchemeFB
			}
			run("chaos", func() (fmt.Stringer, error) {
				return experiments.Chaos(experiments.ChaosOptions{
					E2Scheme: e2s, SMScheme: sms,
					ConnPlan: *connPlan, ListenerPlan: *lisPlan,
				})
			})
		},
		"slaload": func() {
			e2s, sms := e2ap.SchemeASN, sm.SchemeASN
			if *scheme == "fb" {
				e2s, sms = e2ap.SchemeFB, sm.SchemeFB
			}
			run("slaload", func() (fmt.Stringer, error) {
				return experiments.SLALoad(experiments.SLALoadOptions{
					E2Scheme: e2s, SMScheme: sms, ConnPlan: *connPlan,
				})
			})
		},
		"fedload": func() {
			e2s, sms := e2ap.SchemeASN, sm.SchemeASN
			if *scheme == "fb" {
				e2s, sms = e2ap.SchemeFB, sm.SchemeFB
			}
			sizes, err := parseFleet(*fleet)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fedload: %v\n", err)
				os.Exit(2)
			}
			run("fedload", func() (fmt.Stringer, error) {
				return experiments.FedLoad(experiments.FedLoadOptions{
					E2Scheme: e2s, SMScheme: sms,
					Shards: *fedShards, Agents: sizes, Duration: *dur,
				})
			})
		},
	}

	switch cmd {
	case "all":
		// Reduced scale for a complete sweep in minutes.
		run("fig6a", func() (fmt.Stringer, error) { return experiments.Fig6a(3000) })
		run("fig6b", func() (fmt.Stringer, error) {
			return experiments.Fig6b([]int{1, 8, 32}, 3000)
		})
		run("fig7a", func() (fmt.Stringer, error) { return experiments.Fig7a(100, nil) })
		run("fig7b", func() (fmt.Stringer, error) { return experiments.Fig7b(nil) })
		run("fig8a", func() (fmt.Stringer, error) { return experiments.Fig8a(6, 3*time.Second) })
		run("fig8b", func() (fmt.Stringer, error) {
			return experiments.Fig8b([]int{2, 6, 10}, 2*time.Second)
		})
		run("table2", func() (fmt.Stringer, error) { return experiments.Table2(nil) })
		run("fig9a", func() (fmt.Stringer, error) { return experiments.Fig9a(100, nil) })
		run("fig9b", func() (fmt.Stringer, error) { return experiments.Fig9b(6, 3*time.Second) })
		run("fig11", func() (fmt.Stringer, error) { return experiments.Fig11(40000) })
		run("fig13a", func() (fmt.Stringer, error) { return experiments.Fig13a(8000) })
		run("fig13b", func() (fmt.Stringer, error) { return experiments.Fig13b(30000) })
		run("fig15", func() (fmt.Stringer, error) { return experiments.Fig15(30000) })
		run("tsdbload", func() (fmt.Stringer, error) {
			return experiments.TSDBLoad(4, 4, 2*time.Second, false)
		})
		run("tsdbload -compress", func() (fmt.Stringer, error) {
			return experiments.TSDBLoad(4, 4, 2*time.Second, true)
		})
		run("streamload", func() (fmt.Stringer, error) {
			return experiments.StreamLoad(4, 4, 2*time.Second)
		})
		run("scaleload", func() (fmt.Stringer, error) {
			return experiments.ScaleLoad(experiments.ScaleLoadOptions{
				Cells: 8, UEsPerCell: 200, Duration: 2 * time.Second, IngestWorkers: 2,
			})
		})
		run("fedload", func() (fmt.Stringer, error) {
			return experiments.FedLoad(experiments.FedLoadOptions{
				E2Scheme: e2ap.SchemeFB, SMScheme: sm.SchemeFB,
				Shards: 2, Agents: []int{2, 4}, Duration: 200 * time.Millisecond,
			})
		})
	default:
		f, ok := experimentsByName[cmd]
		if !ok {
			usage()
			os.Exit(2)
		}
		f()
	}
}

// parseFleet parses the -fleet sweep list ("4,8" -> [4, 8]).
func parseFleet(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad fleet size %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: flexric-bench <experiment> [flags]

experiments:
  fig6a   agent CPU overhead, radio deployments (4G/5G)
  fig6b   agent CPU vs number of UEs (L2 simulator)
  fig7a   E2SM-HW ping RTT by encoding combination
  fig7b   signaling rate by encoding combination
  fig8a   controller CPU/memory vs FlexRAN
  fig8b   controller CPU vs number of agents (ASN vs FB)
  table2  deployment artifact sizes
  fig9a   two-hop RTT vs O-RAN RIC
  fig9b   monitoring CPU/memory vs O-RAN RIC
  fig11   traffic control: bufferbloat vs TC xApp
  fig13a  slicing isolation timeline
  fig13b  static slicing vs NVS sharing
  fig15   recursive slicing: dedicated vs shared infrastructure
  tsdbload  time-series store under windowed queries vs live ingest
  streamload  control-room WebSocket fan-out of live deltas
  scaleload  sharded fleet with per-shard reports into pipelined ingest
  chaos   resilience under a scripted fault plan (drops + blackout)
  slaload   A1 SLA closed loop: violate, remedy, survive a reconnect storm
  fedload   agents-per-controller sweep, single vs federated plane
  all     everything, reduced scale`)
}
