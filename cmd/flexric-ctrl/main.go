// flexric-ctrl is a standalone FlexRIC controller: the server library
// with a monitoring iApp and, optionally, the slicing and traffic
// control specializations with their REST northbounds. It is also the
// artifact measured in the Table 2 comparison.
//
//	flexric-ctrl -e2 :36421 -scheme fb -slicing :8080
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"flexric/internal/a1"
	"flexric/internal/broker"
	"flexric/internal/ctrl"
	"flexric/internal/e2ap"
	"flexric/internal/faultinject"
	"flexric/internal/federation"
	"flexric/internal/obs"
	"flexric/internal/resilience"
	"flexric/internal/server"
	"flexric/internal/sm"
	"flexric/internal/trace"
	"flexric/internal/tsdb"
	"flexric/internal/xapp"
)

func main() {
	e2Addr := flag.String("e2", "127.0.0.1:36421", "E2 (south-bound) listen address")
	scheme := flag.String("scheme", "asn", "E2AP encoding scheme: asn or fb")
	slicing := flag.String("slicing", "", "REST address for the slicing specialization (empty = off)")
	tc := flag.String("tc", "", "REST address for the traffic-control specialization (empty = off)")
	brokerAddr := flag.String("broker", "", "message broker to publish stats to (empty = start one)")
	period := flag.Uint("period", 100, "monitoring period in ms")
	ingestWorkers := flag.Int("ingest-workers", 0, "monitor ingest pipeline goroutines, hashed by (agent, function); 0 = decode inline on receive loops")
	telemetryDump := flag.Bool("telemetry", false, "dump the telemetry snapshot on exit")
	telemetryEvery := flag.Duration("telemetry-every", 0, "also dump telemetry periodically (0 = off)")
	obsAddr := flag.String("obs", "", "observability HTTP address serving the control-room dashboard, /metrics, /snapshot.json, /traces, /stream/{ws,sse} and pprof (empty = off)")
	traceSample := flag.Uint("trace-sample", 0, "record every Nth E2 control-loop trace (0 = off, 1 = all)")
	resOn := flag.Bool("resilience", true, "keepalives, dead-peer detection, and subscription retention/replay across agent reconnects")
	keepalive := flag.Duration("keepalive", 0, "idle period before a keepalive frame (0 = default 1s; needs -resilience)")
	retain := flag.Duration("retain", 0, "how long to retain a disconnected agent's subscriptions for replay (0 = default 30s)")
	dialTimeout := flag.Duration("dial-timeout", 0, "E2 setup handshake timeout per accepted connection (0 = default 5s)")
	faultPlan := flag.String("faultplan", "", "scripted listener fault plan, e.g. 'blackout@1=2' (see internal/faultinject)")
	tsdbCap := flag.Int("tsdb", 1024, "samples retained per report series in the time-series store (0 = store off)")
	tsdbAge := flag.Duration("tsdb-age", 0, "also drop samples older than this from each series (0 = count-only retention)")
	tsdbCompress := flag.Bool("tsdb-compress", false, "seal full series rings into compressed chunks with downsampling tiers instead of overwriting old samples")
	tsdbSnapshot := flag.String("tsdb-snapshot", "", "time-series snapshot file: loaded at startup, written on shutdown (empty = off)")
	tsdbSnapshotEvery := flag.Duration("tsdb-snapshot-every", 0, "also write the snapshot periodically (0 = shutdown-only; needs -tsdb-snapshot)")
	a1On := flag.Bool("a1", false, "A1 policy plane: /a1/* northbound on the obs server plus the SLA enforcement loop (needs -obs, -slicing, and the tsdb)")
	slaTick := flag.Uint("sla-tick", 500, "SLA enforcement tick period in ms (needs -a1)")
	a1Snapshot := flag.String("a1-snapshot", "", "A1 policy-store snapshot file: loaded at startup, written on shutdown (needs -a1)")
	a1SnapshotEvery := flag.Duration("a1-snapshot-every", 0, "also write the A1 snapshot periodically (0 = shutdown-only; needs -a1-snapshot)")
	federate := flag.String("federate", "", "comma-separated shard names forming the federation ring, e.g. 's0,s1,s2' (needs -root or -shard-of)")
	rootMode := flag.Bool("root", false, "run as the federation root: -e2 accepts shard northbound connections, -obs serves /federation.json and the federated /tsdb/query")
	shardOf := flag.String("shard-of", "", "run as a federation shard under the root at this E2 address; -e2 is the shard's southbound, -obs its /tsdb/partial endpoint")
	shardName := flag.String("shard-name", "", "this shard's ring member name (needs -shard-of; must appear in -federate)")
	fedSnapshots := flag.String("fed-snapshots", "", "shared directory of per-shard tsdb snapshots enabling failover state transfer (shard mode; -tsdb-snapshot-every adds periodic writes)")
	flag.Parse()

	if *traceSample > 0 {
		trace.SetSampleEvery(uint32(*traceSample))
	}
	var store *tsdb.Store
	var snapStop chan struct{}
	var snapDone <-chan struct{}
	if *tsdbCap > 0 {
		store = tsdb.New(tsdb.Config{Capacity: *tsdbCap, MaxAge: *tsdbAge, Compress: *tsdbCompress})
		if *tsdbSnapshot != "" {
			if err := store.LoadFile(*tsdbSnapshot); err != nil {
				log.Fatalf("tsdb snapshot load: %v", err)
			}
			if n := store.NumSeries(); n > 0 {
				log.Printf("tsdb: restored %d series from %s", n, *tsdbSnapshot)
			}
			snapStop = make(chan struct{})
			snapDone = store.SnapshotEvery(*tsdbSnapshot, *tsdbSnapshotEvery, snapStop, func(err error) {
				log.Printf("tsdb snapshot write: %v", err)
			})
		}
	}
	e2s := e2ap.SchemeASN
	sms := sm.SchemeASN
	if *scheme == "fb" {
		e2s = e2ap.SchemeFB
		sms = sm.SchemeFB
	}

	var resCfg *resilience.Config
	if *resOn {
		resCfg = &resilience.Config{KeepaliveInterval: *keepalive, RetainFor: *retain}
	}

	// The federation modes are dedicated processes: a root terminates
	// shard northbounds only, a shard is a full controller core for its
	// ring slice. Neither mixes with the standalone specializations.
	if *rootMode && *shardOf != "" {
		log.Fatal("-root and -shard-of are mutually exclusive")
	}
	if *rootMode || *shardOf != "" {
		members := splitMembers(*federate)
		if len(members) == 0 {
			log.Fatal("federation modes need -federate with the ring member list, e.g. -federate s0,s1,s2")
		}
		if *rootMode {
			runFederationRoot(members, *e2Addr, *obsAddr, e2s, resCfg, uint32(*period))
		} else {
			runFederationShard(members, *shardName, *shardOf, *e2Addr, *obsAddr,
				*fedSnapshots, *tsdbSnapshotEvery, e2s, sms, resCfg, uint32(*period))
		}
		return
	}

	plan, err := faultinject.Parse(*faultPlan)
	if err != nil {
		log.Fatal(err)
	}
	if plan != nil && !faultinject.Enabled {
		log.Fatal("faultinject: compiled out (nofaultinject build); -faultplan unavailable")
	}
	scfg := server.Config{Scheme: e2s, Resilience: resCfg, DialTimeout: *dialTimeout}
	if plan != nil {
		scfg.WrapListener = plan.WrapListener
	}
	srv := server.New(scfg)
	addr, err := srv.Start(*e2Addr)
	if err != nil {
		log.Fatal(err)
	}
	var mon *ctrl.Monitor
	defer func() {
		// Pipeline shutdown order: the server stops delivering
		// indications first, then the monitor drains its ingest workers.
		srv.Close()
		if mon != nil {
			mon.Close()
		}
	}()
	log.Printf("E2 listening on %s (scheme %s)", addr, *scheme)

	mon = ctrl.NewMonitor(srv, ctrl.MonitorConfig{
		Scheme: sms, PeriodMS: uint32(*period), Decode: true, TSDB: store,
		IngestWorkers: *ingestWorkers,
	})
	srv.OnAgentConnect(func(info server.AgentInfo) {
		log.Printf("agent connected: %s (%d RAN functions)", info.NodeID, len(info.Functions))
	})
	srv.OnAgentDisconnect(func(info server.AgentInfo) {
		log.Printf("agent disconnected: %s", info.NodeID)
	})
	srv.OnAgentReconnect(func(info server.AgentInfo) {
		log.Printf("agent reconnected: %s (subscriptions replayed)", info.NodeID)
	})
	srv.OnRANComplete(func(e server.RANEntity) {
		log.Printf("RAN entity complete: %s/%d (%d parts)", e.PLMN, e.NodeID, len(e.Parts))
	})

	var sc *ctrl.SlicingController
	if *slicing != "" {
		// Share the process-wide store (fed by the main monitor) with
		// the slicing northbound's /stats/agg when it exists.
		var so []ctrl.SlicingOption
		if store != nil {
			so = append(so, ctrl.WithTSDB(store))
		}
		sc, err = ctrl.NewSlicingController(srv, sms, *slicing, so...)
		if err != nil {
			log.Fatal(err)
		}
		defer sc.Close()
		log.Printf("slicing REST on http://%s", sc.Addr())
	}
	var tcc *ctrl.TCController
	if *tc != "" {
		ba := *brokerAddr
		if ba == "" {
			b, bAddr, err := broker.NewServer("127.0.0.1:0")
			if err != nil {
				log.Fatal(err)
			}
			defer b.Close()
			ba = bAddr
			log.Printf("message broker on %s", ba)
		}
		tcc, err = ctrl.NewTCController(srv, sms, ba, *tc)
		if err != nil {
			log.Fatal(err)
		}
		defer tcc.Close()
		log.Printf("traffic-control REST on http://%s", tcc.Addr())
	}

	var polStore *a1.Store
	var a1SnapStop chan struct{}
	var a1SnapDone <-chan struct{}
	if *a1Snapshot != "" && !*a1On {
		log.Fatal("-a1-snapshot needs -a1")
	}
	if *a1On {
		if *obsAddr == "" || sc == nil || store == nil {
			log.Fatal("-a1 needs -obs (the /a1/* northbound), -slicing (the remedy path), and the tsdb (-tsdb > 0)")
		}
		polStore = a1.NewStore()
		if *a1Snapshot != "" {
			if err := polStore.LoadFile(*a1Snapshot); err != nil {
				log.Fatalf("a1 snapshot load: %v", err)
			}
			if n := polStore.Len(); n > 0 {
				log.Printf("a1: restored %d policies from %s", n, *a1Snapshot)
			}
			a1SnapStop = make(chan struct{})
			a1SnapDone = polStore.SnapshotEvery(*a1Snapshot, *a1SnapshotEvery, a1SnapStop, func(err error) {
				log.Printf("a1 snapshot write: %v", err)
			})
		}
	}

	// The observability server mounts last so the control room's
	// topology feed can see every component built above.
	var o *obs.Server
	if *obsAddr != "" {
		topoOpts := []ctrl.TopologyOption{ctrl.TopoWithMonitor(mon)}
		if sc != nil {
			topoOpts = append(topoOpts, ctrl.TopoWithSlicing(sc))
		}
		if polStore != nil {
			topoOpts = append(topoOpts, ctrl.TopoWithA1(polStore))
		}
		topo := ctrl.NewTopology(srv, topoOpts...)
		oo := []obs.Option{
			obs.WithStream(0),
			obs.WithTopology(func() any { return topo.Snapshot() }),
		}
		if store != nil {
			oo = append(oo, obs.WithTSDB(store))
		}
		if polStore != nil {
			oo = append(oo, obs.WithA1(polStore))
		}
		o, err = obs.NewServer(*obsAddr, oo...)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("control room on http://%s (dashboard at /, streams at /stream/ws and /stream/sse)", o.Addr())
	}

	if polStore != nil {
		slaCfg := xapp.SLAConfig{
			Policies:    polStore,
			TSDB:        store,
			SlicingBase: "http://" + sc.Addr(),
			TickMS:      int(*slaTick),
		}
		if tcc != nil {
			slaCfg.TCBase = "http://" + tcc.Addr()
		}
		slax := xapp.NewSLAXApp(slaCfg)
		go slax.Run()
		defer slax.Close()
		log.Printf("A1 policy plane on http://%s/a1/ (SLA tick %dms)", o.Addr(), slaCfg.TickMS)
	}

	// Periodic status line.
	go func() {
		for range time.Tick(5 * time.Second) {
			inds, bytes := mon.Counters()
			log.Printf("status: %d agents, %d indications, %d bytes",
				len(srv.Agents()), inds, bytes)
		}
	}()

	dumper := obs.NewDumper(os.Stdout, *telemetryEvery, *telemetryDump)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	if o != nil {
		// Graceful: stream clients get a going-away close frame and
		// in-flight HTTP requests drain, bounded by the timeout.
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		if err := o.Shutdown(ctx); err != nil {
			log.Printf("obs shutdown: %v", err)
		}
		cancel()
	}
	if snapStop != nil {
		// Final snapshot on SIGINT/SIGTERM so a restarted controller
		// resumes with its history.
		close(snapStop)
		<-snapDone
		log.Printf("tsdb: snapshot written to %s", *tsdbSnapshot)
	}
	if a1SnapStop != nil {
		close(a1SnapStop)
		<-a1SnapDone
		log.Printf("a1: snapshot written to %s", *a1Snapshot)
	}
	dumper.Stop()
}

// splitMembers parses the -federate ring member list.
func splitMembers(s string) []string {
	var out []string
	for _, m := range strings.Split(s, ",") {
		if m = strings.TrimSpace(m); m != "" {
			out = append(out, m)
		}
	}
	return out
}

// runFederationRoot runs the process as the federation root until
// SIGINT/SIGTERM: shard northbounds terminate at -e2, and -obs serves
// /federation.json, the control-room topology with its federation tier,
// and the federated /tsdb/query fan-out.
func runFederationRoot(members []string, e2Addr, obsAddr string, e2s e2ap.Scheme, resCfg *resilience.Config, period uint32) {
	ring := federation.NewRing(federation.DefaultReplicas, members...)
	root, err := federation.NewRoot(federation.RootConfig{
		Ring: ring, E2Scheme: e2s, ListenAddr: e2Addr,
		Resilience: resCfg, CoordPeriodMS: period,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer root.Close()
	log.Printf("federation root on %s (ring: %s)", root.Addr(), strings.Join(members, ","))

	if obsAddr != "" {
		topo := ctrl.NewTopology(root.Server(), ctrl.TopoWithFederation(root.Snapshot))
		o, err := obs.NewServer(obsAddr,
			obs.WithStream(0),
			obs.WithTopology(func() any { return topo.Snapshot() }),
			obs.WithFederation(root.Snapshot),
			obs.WithFederatedQuery(root.QueryHandler()),
		)
		if err != nil {
			log.Fatal(err)
		}
		defer o.Close()
		log.Printf("federation control room on http://%s (/federation.json, federated /tsdb/query)", o.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
}

// runFederationShard runs the process as one federation shard until
// SIGINT/SIGTERM: a full controller core (-e2 southbound, -obs serving
// /tsdb/partial for the root's fan-out) plus the northbound agent
// toward the root.
func runFederationShard(members []string, name, rootAddr, e2Addr, obsAddr, snapDir string,
	snapEvery time.Duration, e2s e2ap.Scheme, sms sm.Scheme, resCfg *resilience.Config, period uint32) {
	idx := -1
	for i, m := range members {
		if m == name {
			idx = i
		}
	}
	if idx < 0 {
		log.Fatalf("-shard-name %q is not in the -federate ring %v", name, members)
	}
	if obsAddr == "" {
		obsAddr = "127.0.0.1:0"
	}
	sh, err := federation.NewShard(federation.ShardConfig{
		Name: name, Index: idx,
		E2Scheme: e2s, SMScheme: sms,
		SouthAddr: e2Addr, ObsAddr: obsAddr,
		SnapshotDir: snapDir, SnapshotEvery: snapEvery,
		Resilience: resCfg, PeriodMS: period,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sh.ConnectRoot(rootAddr); err != nil {
		sh.Close()
		log.Fatal(err)
	}
	log.Printf("federation shard %s: south on %s, obs on http://%s, root at %s",
		name, sh.SouthAddr(), sh.ObsAddr(), rootAddr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	if err := sh.Close(); err != nil {
		log.Printf("shard close: %v", err)
	}
}
