// flexric-agent runs a simulated base station with a FlexRIC agent: the
// full SM bundle (MAC/RLC/PDCP stats, slicing control, traffic control,
// RRC notifications, HW ping) over a slot-driven user plane. It pairs
// with flexric-ctrl for a two-process deployment.
//
//	flexric-agent -controller 127.0.0.1:36421 -rat 5g -rb 106 -ues 3
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"flexric/internal/agent"
	"flexric/internal/e2ap"
	"flexric/internal/faultinject"
	"flexric/internal/obs"
	"flexric/internal/ran"
	"flexric/internal/resilience"
	"flexric/internal/sm"
	"flexric/internal/trace"
	"flexric/internal/tsdb"
)

func main() {
	controller := flag.String("controller", "127.0.0.1:36421", "controller E2 address")
	scheme := flag.String("scheme", "asn", "E2AP/SM encoding scheme: asn or fb")
	rat := flag.String("rat", "4g", "radio access technology: 4g or 5g")
	numRB := flag.Int("rb", 25, "bandwidth in resource blocks")
	nodeID := flag.Uint64("node", 1, "global E2 node id")
	ues := flag.Int("ues", 3, "attached UEs with saturating traffic")
	mcs := flag.Int("mcs", 28, "modulation and coding scheme")
	realtime := flag.Bool("realtime", true, "pace the slot loop at 1 TTI per ms")
	telemetryEvery := flag.Duration("telemetry-every", 0, "dump the telemetry snapshot periodically (0 = off)")
	telemetryDump := flag.Bool("telemetry", false, "dump the telemetry snapshot on exit")
	obsAddr := flag.String("obs", "", "observability HTTP address serving the control-room dashboard, /metrics, /snapshot.json, /traces, /stream/{ws,sse} and pprof (empty = off)")
	traceSample := flag.Uint("trace-sample", 0, "record every Nth E2 control-loop trace (0 = off, 1 = all)")
	resOn := flag.Bool("resilience", true, "keepalives, dead-peer detection, and automatic reconnect with backoff")
	keepalive := flag.Duration("keepalive", 0, "idle period before a keepalive frame (0 = default 1s; needs -resilience)")
	reconnectMax := flag.Int("reconnect-max", 0, "consecutive failed reconnects before giving up (0 = retry forever)")
	dialTimeout := flag.Duration("dial-timeout", 0, "connection establishment timeout (0 = default 5s)")
	faultPlan := flag.String("faultplan", "", "scripted transport fault plan, e.g. 'seed=7,drop@500' (see internal/faultinject)")
	tsdbCap := flag.Int("tsdb", 0, "samples retained per series in a local self-monitoring store served at -obs /tsdb (0 = off)")
	tsdbAge := flag.Duration("tsdb-age", 0, "also drop samples older than this from each series (0 = count-only retention)")
	tsdbSample := flag.Duration("tsdb-sample", 100*time.Millisecond, "self-monitoring sample period (needs -tsdb)")
	flag.Parse()

	if *traceSample > 0 {
		trace.SetSampleEvery(uint32(*traceSample))
	}

	e2s, sms := e2ap.SchemeASN, sm.SchemeASN
	if *scheme == "fb" {
		e2s, sms = e2ap.SchemeFB, sm.SchemeFB
	}
	r := ran.RAT4G
	if *rat == "5g" {
		r = ran.RAT5G
	}

	cell, err := ran.NewCell(ran.PHYConfig{RAT: r, NumRB: *numRB})
	if err != nil {
		log.Fatal(err)
	}
	var resCfg *resilience.Config
	if *resOn {
		resCfg = &resilience.Config{KeepaliveInterval: *keepalive, MaxAttempts: *reconnectMax}
	}
	plan, err := faultinject.Parse(*faultPlan)
	if err != nil {
		log.Fatal(err)
	}
	if plan != nil && !faultinject.Enabled {
		log.Fatal("faultinject: compiled out (nofaultinject build); -faultplan unavailable")
	}
	acfg := agent.Config{
		NodeID: e2ap.GlobalE2NodeID{
			PLMN: e2ap.PLMN{MCC: 208, MNC: 95}, Type: e2ap.NodeENB, NodeID: *nodeID,
		},
		Scheme:      e2s,
		Resilience:  resCfg,
		DialTimeout: *dialTimeout,
	}
	if plan != nil {
		acfg.WrapConn = plan.WrapConn
	}
	a := agent.New(acfg)
	fns := []agent.RANFunction{
		sm.NewMACStats(cell, sms, a),
		sm.NewRLCStats(cell, sms, a),
		sm.NewPDCPStats(cell, sms, a),
		sm.NewSliceCtrl(cell, sms),
		sm.NewTCCtrl(cell, sms, a),
		sm.NewRRC(cell, sms, a),
		sm.NewKPM(cell, sms),
		sm.NewHW(),
	}
	for _, fn := range fns {
		if err := a.RegisterFunction(fn); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := a.Connect(*controller); err != nil {
		log.Fatal(err)
	}
	defer a.Close()
	log.Printf("connected to %s as node %d (%s, %d RB, scheme %s)",
		*controller, *nodeID, r, *numRB, *scheme)

	var store *tsdb.Store
	if *tsdbCap > 0 {
		store = tsdb.New(tsdb.Config{Capacity: *tsdbCap, MaxAge: *tsdbAge})
	}
	var o *obs.Server
	if *obsAddr != "" {
		oo := []obs.Option{obs.WithStream(0)}
		if store != nil {
			oo = append(oo, obs.WithTSDB(store))
		}
		o, err = obs.NewServer(*obsAddr, oo...)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("control room on http://%s (dashboard at /, streams at /stream/ws and /stream/sse)", o.Addr())
	}
	dumper := obs.NewDumper(os.Stdout, *telemetryEvery, *telemetryDump)

	for i := 1; i <= *ues; i++ {
		rnti := uint16(i)
		if _, err := cell.Attach(rnti, "", "208.95", *mcs); err != nil {
			log.Fatal(err)
		}
		if err := cell.AddTraffic(rnti, &ran.Saturating{
			Flow:           ran.FiveTuple{DstIP: uint32(rnti), DstPort: 5001, Proto: ran.ProtoUDP},
			RateBytesPerMS: 1 << 20,
		}); err != nil {
			log.Fatal(err)
		}
	}

	// Slot loop in its own goroutine so the main goroutine can block on
	// signals and shut down cleanly (stopping the dumper with a final
	// flush instead of abandoning it).
	stop := make(chan struct{})
	if store != nil {
		// Self-monitoring: sample each UE's live MAC/RLC state into the
		// local store so the agent's own /tsdb endpoints answer windowed
		// queries without a controller in the loop.
		go func() {
			tick := time.NewTicker(*tsdbSample)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
				}
				now := time.Now().UnixNano()
				for i := 1; i <= *ues; i++ {
					rnti := uint16(i)
					_ = cell.WithUE(rnti, func(u *ran.UE) error {
						ms := u.MACStats()
						k := tsdb.SeriesKey{Agent: uint32(*nodeID), Fn: sm.IDMACStats, UE: rnti}
						k.Field = tsdb.FieldCQI
						store.Append(k, now, float64(ms.CQI))
						k.Field = tsdb.FieldMCS
						store.Append(k, now, float64(ms.MCS))
						k.Field = tsdb.FieldRBsUsed
						store.Append(k, now, float64(ms.RBsUsed))
						k.Field = tsdb.FieldTxBits
						store.Append(k, now, float64(ms.TxBits))
						k.Field = tsdb.FieldThroughputBps
						store.Append(k, now, ms.ThroughputBps)
						k.Fn = sm.IDRLCStats
						k.Field = tsdb.FieldBufferBytes
						store.Append(k, now, float64(u.RLC().Backlog()))
						k.Field = tsdb.FieldSojournMS
						store.Append(k, now, float64(u.RLC().OldestSojournMS(cell.Now())))
						return nil
					})
				}
			}
		}()
	}
	go func() {
		var tick <-chan time.Time
		if *realtime {
			t := time.NewTicker(time.Millisecond)
			defer t.Stop()
			tick = t.C
		}
		for {
			if tick != nil {
				select {
				case <-tick:
				case <-stop:
					return
				}
			} else {
				select {
				case <-stop:
					return
				default:
				}
			}
			cell.Step(1)
			sm.TickAll(fns, cell.Now())
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	if o != nil {
		// Graceful: stream clients get a going-away close frame and
		// in-flight HTTP requests drain, bounded by the timeout.
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		if err := o.Shutdown(ctx); err != nil {
			log.Printf("obs shutdown: %v", err)
		}
		cancel()
	}
	close(stop)
	dumper.Stop()
}
