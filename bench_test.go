// Package repro's root benchmarks regenerate every table and figure of
// the FlexRIC paper at benchmark scale, one testing.B target per
// experiment, plus the ablation benches called out in DESIGN.md §4.
// Custom metrics carry the figure's actual quantities (CPU %, Mbps, µs)
// alongside ns/op. Paper-scale runs: cmd/flexric-bench.
package main

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"flexric/internal/e2ap"
	"flexric/internal/experiments"
	"flexric/internal/flexran"
	"flexric/internal/nvs"
	"flexric/internal/ran"
	"flexric/internal/sm"
	"flexric/internal/telemetry"
	"flexric/internal/trace"
	"flexric/internal/transport"
)

// --- Fig 6: agent CPU overhead ---

func BenchmarkFig6aAgentOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6a(1500)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].AgentCPU, "flexric4G_cpu%")
		b.ReportMetric(res.Rows[1].AgentCPU, "flexran4G_cpu%")
		b.ReportMetric(res.Rows[2].AgentCPU, "flexric5G_cpu%")
	}
}

func BenchmarkFig6bUESweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6b([]int{8, 32}, 1500)
		if err != nil {
			b.Fatal(err)
		}
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(last.FlexRIC, "flexric32ue_cpu%")
		b.ReportMetric(last.FlexRAN, "flexran32ue_cpu%")
		b.ReportMetric(last.NoAgent, "noagent32ue_cpu%")
	}
}

// --- Fig 7: encoding schemes ---

func BenchmarkFig7aPingRTT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7a(50, []int{100, 1500})
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(float64(row.RTT.P50.Microseconds()),
				fmt.Sprintf("%s_%dB_p50us", row.Combo, row.Payload))
		}
	}
}

func BenchmarkFig7bSignaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7b(nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(row.Mbps, fmt.Sprintf("%s_%dB_mbps", row.Combo, row.Payload))
		}
	}
}

// --- Fig 8: controller scalability ---

func BenchmarkFig8aControllerVsFlexRAN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8a(4, 1500*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FlexRICCPU, "flexric_cpu%")
		b.ReportMetric(res.FlexRANCPU, "flexran_cpu%")
		b.ReportMetric(res.FlexRICMem, "flexric_MB")
		b.ReportMetric(res.FlexRANMem, "flexran_MB")
	}
}

func BenchmarkFig8bAgentSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8b([]int{4}, 1500*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ASN[0].CPU, "asn4agents_cpu%")
		b.ReportMetric(res.FB[0].CPU, "fb4agents_cpu%")
	}
}

// --- Table 2: artifact sizes ---

func BenchmarkTable2Footprint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Source != "measured" {
				b.ReportMetric(row.SizeMB, "oran_platform_MB")
				break
			}
		}
	}
}

// --- Fig 9: O-RAN RIC comparison ---

func BenchmarkFig9aTwoHopRTT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9a(50, []int{100, 1500})
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(float64(row.RTT.P50.Microseconds()),
				fmt.Sprintf("%s_%dB_p50us", row.System, row.Payload))
		}
	}
}

func BenchmarkFig9bMonitoring(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9b(4, 1500*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FlexRICCPU, "flexric_cpu%")
		b.ReportMetric(res.ORANCPU, "oran_cpu%")
		b.ReportMetric(res.FlexRICMem, "flexric_MB")
		b.ReportMetric(res.ORANMem, "oran_MB")
	}
}

// --- Fig 11: traffic control ---

func BenchmarkFig11TrafficControl(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(20000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Transparent.RTTPercentile(50)), "transparent_p50ms")
		b.ReportMetric(float64(res.XApp.RTTPercentile(50)), "xapp_p50ms")
		b.ReportMetric(float64(res.Transparent.MaxSojourn()), "transparent_maxsojourn_ms")
		b.ReportMetric(float64(res.XApp.MaxSojourn()), "xapp_maxsojourn_ms")
	}
}

// --- Fig 13: slicing ---

func BenchmarkFig13aIsolation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig13a(3000)
		if err != nil {
			b.Fatal(err)
		}
		t4 := res.Phases[3]
		b.ReportMetric(t4.PerUE[1], "t4_whiteUE_mbps")
		b.ReportMetric(t4.Total, "t4_total_mbps")
	}
}

func BenchmarkFig13bSharing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig13b(9000)
		if err != nil {
			b.Fatal(err)
		}
		// First third: slice 2 idle.
		n := len(res.Static) / 3
		var static, sharing float64
		for j := 1; j < n; j++ {
			static += res.Static[j].Gray
			sharing += res.Sharing[j].Gray
		}
		b.ReportMetric(static/float64(n-1), "static_gray_mbps")
		b.ReportMetric(sharing/float64(n-1), "sharing_gray_mbps")
	}
}

// --- Fig 15: recursive slicing ---

func BenchmarkFig15Recursive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig15(15000)
		if err != nil {
			b.Fatal(err)
		}
		// Multiplexing gain in the final stretch (operator B idle).
		lastShared := res.Shared.Points[len(res.Shared.Points)-1]
		lastDed := res.Dedicated.Points[len(res.Dedicated.Points)-1]
		b.ReportMetric(lastShared.UE[0]+lastShared.UE[1], "sharedA_final_mbps")
		b.ReportMetric(lastDed.UE[0]+lastDed.UE[1], "dedicatedA_final_mbps")
	}
}

// --- Ablations (DESIGN.md §4) ---

// BenchmarkAblationDoubleEncoding quantifies E2's mandated double
// encoding (inner E2SM + outer E2AP) against a hypothetical single pass.
func BenchmarkAblationDoubleEncoding(b *testing.B) {
	ping := &sm.HWPing{Seq: 1, T0: 1, Data: bytes.Repeat([]byte{1}, 1500)}
	codec := e2ap.MustCodec(e2ap.SchemeASN)
	b.Run("double", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			inner := sm.EncodeHWPing(sm.SchemeASN, ping) // E2SM pass
			if _, err := codec.Encode(&e2ap.Indication{  // E2AP pass
				RequestID: e2ap.RequestID{Requestor: 1, Instance: 1},
				Payload:   inner,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("single", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// FlexRAN-style: one encoding pass carries the payload.
			if _, err := flexran.Encode(flexran.MsgEchoRequest, &flexran.Echo{
				Seq: 1, T0: 1, Data: ping.Data,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationDispatchDecode isolates the controller dispatch path:
// zero-copy flat envelope vs explicit PER decode (the Fig. 8b mechanism).
func BenchmarkAblationDispatchDecode(b *testing.B) {
	rep := &sm.MACReport{CellTimeMS: 1}
	for i := 0; i < 32; i++ {
		rep.UEs = append(rep.UEs, sm.MACUEEntry{RNTI: uint16(i), CQI: 15, MCS: 28})
	}
	for _, scheme := range []e2ap.Scheme{e2ap.SchemeASN, e2ap.SchemeFB} {
		codec := e2ap.MustCodec(scheme)
		wire, err := codec.Encode(&e2ap.Indication{
			RequestID: e2ap.RequestID{Requestor: 1, Instance: 9},
			Payload:   sm.EncodeMACReport(sm.SchemeFB, rep),
		})
		if err != nil {
			b.Fatal(err)
		}
		wire = append([]byte(nil), wire...)
		b.Run(string(scheme), func(b *testing.B) {
			b.ReportAllocs()
			dec := e2ap.MustCodec(scheme)
			for i := 0; i < b.N; i++ {
				env, err := dec.Envelope(wire)
				if err != nil {
					b.Fatal(err)
				}
				if env.RequestID().Instance != 9 {
					b.Fatal("bad dispatch key")
				}
			}
		})
	}
}

// BenchmarkAblationPollingVsEvents compares the application-visible
// per-tick cost of FlexRAN's poll-the-RIB model (a snapshot copy every
// tick, whether or not anything changed) with FlexRIC's event-driven
// model, where an idle tick costs nothing and an update costs one
// envelope dispatch.
func BenchmarkAblationPollingVsEvents(b *testing.B) {
	b.Run("flexran-poll-tick", func(b *testing.B) {
		ctrl, addr, err := flexran.NewController("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer ctrl.Close()
		// Populate the RIB through the real protocol path: 4 BSs × 32 UEs.
		conns := make([]transport.Conn, 4)
		for i := range conns {
			tc, err := transport.Dial(transport.KindSCTPish, addr)
			if err != nil {
				b.Fatal(err)
			}
			defer tc.Close()
			conns[i] = tc
			hello, _ := flexran.Encode(flexran.MsgHello, &flexran.Hello{BSID: uint64(i + 1)})
			if err := tc.Send(hello); err != nil {
				b.Fatal(err)
			}
			rep := &flexran.StatsReport{BSID: uint64(i + 1), TimeMS: 1}
			for u := 0; u < 32; u++ {
				rep.UEs = append(rep.UEs, flexran.UEStats{RNTI: uint16(u + 1)})
			}
			wire, _ := flexran.Encode(flexran.MsgStatsReport, rep)
			if err := tc.Send(wire); err != nil {
				b.Fatal(err)
			}
		}
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) && len(ctrl.Poll()) < 4 {
			time.Sleep(time.Millisecond)
		}
		if len(ctrl.Poll()) != 4 {
			b.Fatal("RIB not populated")
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if snap := ctrl.Poll(); len(snap) != 4 {
				b.Fatal("lost RIB entries")
			}
		}
	})
	b.Run("flexric-event-tick", func(b *testing.B) {
		// Event-driven: an idle tick performs no controller work; the
		// per-update cost is the envelope dispatch measured separately in
		// BenchmarkAblationDispatchDecode.
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// Nothing to do: no message, no callback, no copy.
		}
	})
}

// BenchmarkAblationTransport compares the in-process pipe with the
// framed-TCP transport for the 1500 B echo pattern.
func BenchmarkAblationTransport(b *testing.B) {
	for _, kind := range []transport.Kind{transport.KindSCTPish, transport.KindPipe} {
		addr := "127.0.0.1:0"
		if kind == transport.KindPipe {
			addr = fmt.Sprintf("bench-ablation-%d", time.Now().UnixNano())
		}
		b.Run(string(kind), func(b *testing.B) {
			lis, err := transport.Listen(kind, addr)
			if err != nil {
				b.Fatal(err)
			}
			defer lis.Close()
			go func() {
				c, err := lis.Accept()
				if err != nil {
					return
				}
				defer c.Close()
				for {
					m, err := c.Recv()
					if err != nil {
						return
					}
					if err := c.Send(m); err != nil {
						return
					}
				}
			}()
			c, err := transport.Dial(kind, lis.Addr())
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			msg := bytes.Repeat([]byte{0x5C}, 1500)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Send(msg); err != nil {
					b.Fatal(err)
				}
				if _, err := c.Recv(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTransportHotPath measures the framed-TCP echo round trip and
// cross-checks it against the telemetry layer's own view of the same
// packets: the reported p95_send_us comes from the
// transport.sctpish.send_latency histogram, so a telemetry-induced
// regression shows up in both ns/op (run with -tags notelemetry for the
// baseline) and the histogram's self-measured cost.
func BenchmarkTransportHotPath(b *testing.B) {
	telemetry.Reset()
	lis, err := transport.Listen(transport.KindSCTPish, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer lis.Close()
	go func() {
		c, err := lis.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		// Recycled-buffer echo: Send does not retain m, so the frame just
		// echoed is immediately reusable as the next receive buffer.
		var buf []byte
		for {
			m, err := transport.RecvBuf(c, buf)
			if err != nil {
				return
			}
			if err := c.Send(m); err != nil {
				return
			}
			buf = m
		}
	}()
	c, err := transport.Dial(transport.KindSCTPish, lis.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	msg := bytes.Repeat([]byte{0x5C}, 1500)
	var rbuf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Send(msg); err != nil {
			b.Fatal(err)
		}
		m, err := transport.RecvBuf(c, rbuf)
		if err != nil {
			b.Fatal(err)
		}
		rbuf = m
	}
	b.StopTimer()
	if telemetry.Enabled {
		snap := telemetry.TakeSnapshot()
		h := snap.Histogram("transport.sctpish.send_latency")
		if h.Count == 0 {
			b.Fatal("telemetry enabled but no send latency recorded")
		}
		b.ReportMetric(float64(h.Percentile(95).Microseconds()), "p95_send_us")
	}
}

// BenchmarkTraceDisabled exercises the full span choreography of one
// E2 indication — root, child send, retroactive recv, end — with
// sampling off (the production default). verify.sh gates on this
// reporting 0 allocs/op: unsampled tracing must be free on the hot
// path, matching the notrace build within noise.
func BenchmarkTraceDisabled(b *testing.B) {
	if trace.SampleEvery() != 0 {
		b.Fatal("trace sampling unexpectedly enabled; BenchmarkTraceDisabled measures the off path")
	}
	t0 := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := trace.StartRoot("bench.indication")
		child := trace.StartChild(sp.Context(), "bench.send")
		child.End()
		trace.Record(sp.Context(), "bench.recv", t0, time.Microsecond)
		sp.End()
	}
}

// BenchmarkAblationSliceSched compares the NVS slice scheduler with the
// plain shared proportional-fair pool at the MAC.
func BenchmarkAblationSliceSched(b *testing.B) {
	for _, mode := range []string{"pf-pool", "nvs"} {
		b.Run(mode, func(b *testing.B) {
			cell, err := ran.NewCell(ran.PHYConfig{RAT: ran.RAT5G, NumRB: 106})
			if err != nil {
				b.Fatal(err)
			}
			for i := 1; i <= 8; i++ {
				ue, err := cell.Attach(uint16(i), "", "208.95", 20)
				if err != nil {
					b.Fatal(err)
				}
				ue.AddSource(&ran.Saturating{Flow: ran.FiveTuple{DstIP: uint32(i)}, RateBytesPerMS: 1 << 18})
			}
			if mode == "nvs" {
				cfgs := make([]nvs.Config, 4)
				for s := range cfgs {
					cfgs[s] = nvs.Config{ID: uint32(s), Kind: nvs.KindCapacity, Capacity: 0.25, UESched: "pf"}
				}
				if err := cell.ConfigureSlices(cfgs); err != nil {
					b.Fatal(err)
				}
				for i := 1; i <= 8; i++ {
					if err := cell.AssociateUE(uint16(i), uint32((i-1)%4)); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cell.Step(1)
			}
		})
	}
}
