package tsdb

// chunk.go — the sealed half of a series: immutable Gorilla-style
// compressed blocks (delta-of-delta timestamps, predictive-XOR encoded
// values) produced when the write-head ring fills. The bit-level format
// is specified, with a worked example, in docs/TSDB.md; this file is
// the normative implementation and the docs must match it.
//
// Values XOR against a linear prediction (prev + prevDelta) rather
// than plain prev: SM report series are dominated by monotone counters
// (tx_bytes, tx_packets) whose constant increments flip 10–20 mantissa
// bits per sample under XOR-vs-prev but cancel to zero under
// XOR-vs-prediction, compressing to one bit per sample. Gauges and
// noisy series degrade gracefully to ordinary Gorilla behavior
// (prediction falls back to prev whenever extrapolation is not finite).
//
// A chunk is write-once: the encoder runs exactly once at seal time,
// under the series lock, and the resulting byte slice is never mutated.
// Readers decompress with a stack-allocated iterator, so concurrent
// queries over the same chunk need no synchronization beyond the series
// lock that guards the chunk chain itself.

import (
	"math"
	"math/bits"
)

// chunk is one sealed, immutable, compressed block of a series.
// The header fields mirror what an aggregate over the chunk's samples
// would produce (same comparison semantics as aggState.addSample), so
// retention can fold a chunk into a downsampling tier, and future
// header-only fast paths can skip decompression.
type chunk struct {
	count           int
	firstTS, lastTS int64
	min, max, sum   float64
	first, last     float64
	bits            []byte
	nbits           int
}

// sizeBytes is the compressed payload size.
func (c *chunk) sizeBytes() int { return len(c.bits) }

// --- bit-level I/O -----------------------------------------------------

// bitWriter appends MSB-first bits to a byte slice.
type bitWriter struct {
	b     []byte
	nbits int
}

// writeBits appends the low n bits of v, most significant first.
func (w *bitWriter) writeBits(v uint64, n int) {
	if n <= 0 {
		return
	}
	if n < 64 {
		v <<= 64 - uint(n) // left-align so the next bit to emit is bit 63
	}
	for n > 0 {
		off := w.nbits & 7
		if off == 0 {
			w.b = append(w.b, 0)
		}
		take := 8 - off
		if take > n {
			take = n
		}
		w.b[len(w.b)-1] |= byte(v>>56) >> uint(off)
		v <<= uint(take)
		n -= take
		w.nbits += take
	}
}

// bitReader consumes MSB-first bits from a chunk payload.
type bitReader struct {
	b     []byte
	nbits int // total valid bits
	pos   int
}

// readBits returns the next n bits as the low bits of a uint64.
// ok is false when the stream is exhausted (corrupt chunk).
func (r *bitReader) readBits(n int) (v uint64, ok bool) {
	if r.pos+n > r.nbits {
		return 0, false
	}
	for n > 0 {
		off := r.pos & 7
		avail := 8 - off
		take := avail
		if take > n {
			take = n
		}
		chunkBits := uint64(r.b[r.pos>>3]>>uint(avail-take)) & (1<<uint(take) - 1)
		v = v<<uint(take) | chunkBits
		r.pos += take
		n -= take
	}
	return v, true
}

// predictBits returns the bit pattern the value encoding XORs against:
// the linear extrapolation prev + (prev − prevPrev) when that
// arithmetic is finite, else prev itself. Working in bit patterns —
// with float arithmetic only ever applied to finite values — keeps NaN
// payloads bit-exact through encode/decode, and the fallback rule is
// deterministic so encoder and decoder always agree.
func predictBits(prevBits, prevPrevBits uint64) uint64 {
	prev := math.Float64frombits(prevBits)
	d := prev - math.Float64frombits(prevPrevBits)
	if d != 0 && !math.IsInf(d, 0) && !math.IsNaN(d) {
		if p := prev + d; !math.IsInf(p, 0) && !math.IsNaN(p) {
			return math.Float64bits(p)
		}
	}
	return prevBits
}

// --- encoder -----------------------------------------------------------

// chunkEncoder compresses a time-ordered sample stream into a chunk.
// Zero value is ready to use; call add for each sample, then seal.
type chunkEncoder struct {
	w             bitWriter
	count         int
	firstTS       int64
	prevTS        int64
	prevDelta     int64
	prevVBits     uint64
	prevPrevVBits uint64
	// Previous XOR window; leading < 0 means "no window yet".
	leading, trailing int

	min, max, sum float64
	first, last   float64
}

// add appends one sample. Samples must arrive in the series' ring
// order (the same order queries iterate), which is non-decreasing TS
// for well-behaved writers — but any int64 TS sequence round-trips.
func (e *chunkEncoder) add(ts int64, v float64) {
	vb := math.Float64bits(v)
	if e.count == 0 {
		// Sample 0: raw 64-bit timestamp, raw 64-bit value bits. The
		// stream is self-contained; the header duplicates firstTS for
		// O(1) range checks.
		e.w.writeBits(uint64(ts), 64)
		e.w.writeBits(vb, 64)
		e.firstTS, e.prevTS = ts, ts
		e.prevVBits, e.prevPrevVBits = vb, vb
		e.leading = -1
		e.min, e.max, e.first = v, v, v
	} else {
		// Timestamp: delta-of-delta with Gorilla-style size buckets.
		delta := ts - e.prevTS
		dod := delta - e.prevDelta
		e.prevDelta = delta
		e.prevTS = ts
		switch {
		case dod == 0:
			e.w.writeBits(0b0, 1)
		case -63 <= dod && dod <= 64:
			e.w.writeBits(0b10, 2)
			e.w.writeBits(uint64(dod+63), 7)
		case -255 <= dod && dod <= 256:
			e.w.writeBits(0b110, 3)
			e.w.writeBits(uint64(dod+255), 9)
		case -2047 <= dod && dod <= 2048:
			e.w.writeBits(0b1110, 4)
			e.w.writeBits(uint64(dod+2047), 12)
		default:
			e.w.writeBits(0b1111, 4)
			e.w.writeBits(uint64(dod), 64)
		}
		// Value: XOR against the linear prediction's bit pattern.
		x := vb ^ predictBits(e.prevVBits, e.prevPrevVBits)
		e.prevPrevVBits, e.prevVBits = e.prevVBits, vb
		if x == 0 {
			e.w.writeBits(0b0, 1)
		} else {
			lead := bits.LeadingZeros64(x)
			if lead > 31 {
				lead = 31 // 5-bit leading field
			}
			trail := bits.TrailingZeros64(x)
			if e.leading >= 0 && lead >= e.leading && trail >= e.trailing {
				// Reuse the previous window: '10' + meaningful bits.
				e.w.writeBits(0b10, 2)
				e.w.writeBits(x>>uint(e.trailing), 64-e.leading-e.trailing)
			} else {
				// New window: '11' + 5-bit leading + 6-bit (sigbits-1)
				// + the meaningful bits themselves.
				sig := 64 - lead - trail
				e.leading, e.trailing = lead, trail
				e.w.writeBits(0b11, 2)
				e.w.writeBits(uint64(lead), 5)
				e.w.writeBits(uint64(sig-1), 6)
				e.w.writeBits(x>>uint(trail), sig)
			}
		}
		// Header aggregates use the same comparison semantics as
		// aggState.addSample so folded tiers match raw aggregation.
		if v < e.min {
			e.min = v
		}
		if v > e.max {
			e.max = v
		}
	}
	e.sum += v
	e.last = v
	e.count++
}

// seal finalizes the encoder into an immutable chunk.
func (e *chunkEncoder) seal() *chunk {
	return &chunk{
		count:   e.count,
		firstTS: e.firstTS,
		lastTS:  e.prevTS,
		min:     e.min,
		max:     e.max,
		sum:     e.sum,
		first:   e.first,
		last:    e.last,
		bits:    e.w.b,
		nbits:   e.w.nbits,
	}
}

// --- decoder -----------------------------------------------------------

// chunkIter decompresses a chunk one sample at a time. Usage:
//
//	it := c.iter()
//	for it.next() {
//	    use(it.ts, it.v)
//	}
//
// next returns false at the end of the stream or on corruption; the
// iterator never yields partial samples.
type chunkIter struct {
	r         bitReader
	remaining int
	started   bool

	ts        int64
	v         float64
	delta     int64
	vbits     uint64
	prevVBits uint64
	leading   int
	trailing  int
}

// iter returns a fresh iterator over the chunk.
func (c *chunk) iter() chunkIter {
	return chunkIter{
		r:         bitReader{b: c.bits, nbits: c.nbits},
		remaining: c.count,
	}
}

// next decodes the next sample into it.ts / it.v.
func (it *chunkIter) next() bool {
	if it.remaining <= 0 {
		return false
	}
	if !it.started {
		tsBits, ok1 := it.r.readBits(64)
		vBits, ok2 := it.r.readBits(64)
		if !ok1 || !ok2 {
			it.remaining = 0
			return false
		}
		it.started = true
		it.ts = int64(tsBits)
		it.vbits, it.prevVBits = vBits, vBits
		it.v = math.Float64frombits(vBits)
		it.leading = -1
		it.remaining--
		return true
	}
	// Timestamp: the length of the '1' prefix (0–4 bits) selects the
	// delta-of-delta bucket.
	prefix := 0
	for prefix < 4 {
		b, ok := it.r.readBits(1)
		if !ok {
			return it.corrupt()
		}
		if b == 0 {
			break
		}
		prefix++
	}
	var dod int64
	switch prefix {
	case 0: // '0' — dod is zero
	case 1: // '10' + 7 bits
		raw, ok := it.r.readBits(7)
		if !ok {
			return it.corrupt()
		}
		dod = int64(raw) - 63
	case 2: // '110' + 9 bits
		raw, ok := it.r.readBits(9)
		if !ok {
			return it.corrupt()
		}
		dod = int64(raw) - 255
	case 3: // '1110' + 12 bits
		raw, ok := it.r.readBits(12)
		if !ok {
			return it.corrupt()
		}
		dod = int64(raw) - 2047
	default: // '1111' + 64 bits
		raw, ok := it.r.readBits(64)
		if !ok {
			return it.corrupt()
		}
		dod = int64(raw)
	}
	it.delta += dod
	it.ts += it.delta
	// Value: reconstruct the same prediction the encoder used, then
	// XOR the decoded residual back in ('0' control = residual zero,
	// i.e. the value IS the prediction).
	var x uint64
	ctl, ok := it.r.readBits(1)
	if !ok {
		return it.corrupt()
	}
	if ctl == 1 {
		ctl2, ok := it.r.readBits(1)
		if !ok {
			return it.corrupt()
		}
		if ctl2 == 1 { // new window
			lead, ok1 := it.r.readBits(5)
			sigm1, ok2 := it.r.readBits(6)
			if !ok1 || !ok2 {
				return it.corrupt()
			}
			sig := int(sigm1) + 1
			it.leading = int(lead)
			it.trailing = 64 - it.leading - sig
		}
		if it.leading < 0 {
			return it.corrupt() // window reuse before any window
		}
		sig := 64 - it.leading - it.trailing
		mbits, ok := it.r.readBits(sig)
		if !ok {
			return it.corrupt()
		}
		x = mbits << uint(it.trailing)
	}
	pred := predictBits(it.vbits, it.prevVBits)
	it.prevVBits = it.vbits
	it.vbits = pred ^ x
	it.v = math.Float64frombits(it.vbits)
	it.remaining--
	return true
}

func (it *chunkIter) corrupt() bool {
	it.remaining = 0
	return false
}
