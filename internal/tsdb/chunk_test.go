package tsdb

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// encodeSamples runs the chunk encoder over parallel ts/vs slices.
func encodeSamples(ts []int64, vs []float64) *chunk {
	var enc chunkEncoder
	for i := range ts {
		enc.add(ts[i], vs[i])
	}
	return enc.seal()
}

// requireRoundTrip decodes ck and compares against ts/vs bit-exactly:
// timestamps as int64, values via math.Float64bits so NaN payloads and
// signed zeros must survive.
func requireRoundTrip(t *testing.T, ck *chunk, ts []int64, vs []float64) {
	t.Helper()
	it := ck.iter()
	for i := range ts {
		if !it.next() {
			t.Fatalf("decoder ended at sample %d of %d", i, len(ts))
		}
		if it.ts != ts[i] {
			t.Fatalf("sample %d: ts = %d, want %d", i, it.ts, ts[i])
		}
		if math.Float64bits(it.v) != math.Float64bits(vs[i]) {
			t.Fatalf("sample %d: v bits = %#x, want %#x (v=%v want=%v)",
				i, math.Float64bits(it.v), math.Float64bits(vs[i]), it.v, vs[i])
		}
	}
	if it.next() {
		t.Fatalf("decoder yielded more than %d samples", len(ts))
	}
	if ck.count != len(ts) {
		t.Fatalf("count = %d, want %d", ck.count, len(ts))
	}
	if len(ts) > 0 && (ck.firstTS != ts[0] || ck.lastTS != ts[len(ts)-1]) {
		t.Fatalf("header span [%d,%d], want [%d,%d]", ck.firstTS, ck.lastTS, ts[0], ts[len(ts)-1])
	}
}

// TestChunkRoundTripShapes covers the series shapes the store actually
// sees, each bit-exact through encode/decode.
func TestChunkRoundTripShapes(t *testing.T) {
	nan1 := math.NaN()
	nan2 := math.Float64frombits(0x7ff8deadbeef0001) // distinct NaN payload
	shapes := map[string]struct {
		ts []int64
		vs []float64
	}{
		"single": {[]int64{12345}, []float64{6.78}},
		"pair":   {[]int64{1, 2}, []float64{1.0, 2.0}},
		"constant": {
			[]int64{0, 1e6, 2e6, 3e6, 4e6},
			[]float64{42.5, 42.5, 42.5, 42.5, 42.5},
		},
		"counter": {
			[]int64{0, 1e6, 2e6, 3e6, 4e6, 5e6},
			[]float64{1500, 3000, 4500, 6000, 7500, 9000},
		},
		"counter-reset": {
			[]int64{0, 1e6, 2e6, 3e6, 4e6},
			[]float64{5e9, 5.1e9, 5.2e9, 12, 1512}, // agent restart drops the counter
		},
		"nan-inf": {
			[]int64{0, 1, 2, 3, 4, 5, 6},
			[]float64{1.5, nan1, nan2, math.Inf(1), math.Inf(-1), nan1, 2.5},
		},
		"signed-zero": {
			[]int64{0, 1, 2, 3},
			[]float64{math.Copysign(0, -1), 0, math.Copysign(0, -1), 0},
		},
		"jittery-ts": { // dod exercises every bucket incl. the raw escape
			[]int64{0, 1e6, 2e6 + 30, 3e6 - 200, 4e6 + 1500, 5e6 + 1e9, -3},
			[]float64{1, 2, 3, 4, 5, 6, 7},
		},
		"negative-ts": {
			[]int64{-5e9, -4e9, -3e9},
			[]float64{1, 2, 3},
		},
	}
	for name, sh := range shapes {
		t.Run(name, func(t *testing.T) {
			requireRoundTrip(t, encodeSamples(sh.ts, sh.vs), sh.ts, sh.vs)
		})
	}
}

// TestChunkRoundTripDodBoundaries pins the delta-of-delta bucket edges:
// each boundary value and its neighbor just outside must survive, so an
// off-by-one in a bucket range corrupts the stream and fails here.
func TestChunkRoundTripDodBoundaries(t *testing.T) {
	for _, dod := range []int64{-64, -63, 64, 65, -256, -255, 256, 257,
		-2048, -2047, 2048, 2049, 1 << 40, -(1 << 40)} {
		// ts[2]-ts[1] differs from ts[1]-ts[0] by exactly dod.
		ts := []int64{0, 1000, 2000 + dod}
		vs := []float64{1, 2, 3}
		requireRoundTrip(t, encodeSamples(ts, vs), ts, vs)
	}
}

// TestChunkRoundTripRandom is the property test: many random series of
// several statistical flavors (smooth walk, raw random bit patterns,
// monotone counters with occasional resets) all round-trip bit-exactly.
func TestChunkRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		ts := make([]int64, n)
		vs := make([]float64, n)
		mode := trial % 3
		tcur := rng.Int63n(1e15)
		vcur := rng.Float64() * 1e6
		for i := 0; i < n; i++ {
			tcur += rng.Int63n(2e6) - 1e3 // mostly forward, sometimes backward
			ts[i] = tcur
			switch mode {
			case 0: // smooth gauge
				vcur += rng.NormFloat64() * 10
				vs[i] = vcur
			case 1: // arbitrary bit patterns, incl. NaNs/Infs/denormals
				vs[i] = math.Float64frombits(rng.Uint64())
			case 2: // counter with resets
				if rng.Intn(50) == 0 {
					vcur = 0
				}
				vcur += float64(rng.Intn(3000))
				vs[i] = vcur
			}
		}
		requireRoundTrip(t, encodeSamples(ts, vs), ts, vs)
	}
}

// TestChunkCounterCompression pins the headline compression target: a
// counter-like series (1 ms tick, constant increment — tx_bytes under
// steady traffic) must seal to no more than 2 bytes per sample; the
// predictive-XOR encoding actually lands far below that.
func TestChunkCounterCompression(t *testing.T) {
	const n = 4096
	ts := make([]int64, n)
	vs := make([]float64, n)
	tcur, vcur := int64(0), 0.0
	for i := 0; i < n; i++ {
		tcur += int64(time.Millisecond)
		vcur += 1500
		ts[i] = tcur
		vs[i] = vcur
	}
	ck := encodeSamples(ts, vs)
	bps := float64(ck.sizeBytes()) / float64(ck.count)
	if bps > 2 {
		t.Fatalf("counter series compresses to %.3f bytes/sample, want <= 2", bps)
	}
	t.Logf("counter series: %.3f bytes/sample (%d bytes for %d samples, 16 B/sample raw)",
		bps, ck.sizeBytes(), ck.count)
}

// TestChunkHeaderAggregates checks the header min/max/sum/first/last
// match a scan of the samples — retention relies on them when folding a
// chunk into a tier without decompressing for the summary.
func TestChunkHeaderAggregates(t *testing.T) {
	ts := []int64{10, 20, 30, 40}
	vs := []float64{3.5, -1.25, 7.75, 0.5}
	ck := encodeSamples(ts, vs)
	if ck.min != -1.25 || ck.max != 7.75 {
		t.Fatalf("min/max = %v/%v", ck.min, ck.max)
	}
	if want := 3.5 - 1.25 + 7.75 + 0.5; ck.sum != want {
		t.Fatalf("sum = %v, want %v", ck.sum, want)
	}
	if ck.first != 3.5 || ck.last != 0.5 {
		t.Fatalf("first/last = %v/%v", ck.first, ck.last)
	}
}

// TestChunkTruncatedStream verifies the decoder fails closed on a
// truncated payload: it stops yielding samples rather than panicking,
// looping, or inventing data.
func TestChunkTruncatedStream(t *testing.T) {
	ts := make([]int64, 64)
	vs := make([]float64, 64)
	for i := range ts {
		ts[i] = int64(i) * 1e6
		vs[i] = float64(i) * 1.5
	}
	ck := encodeSamples(ts, vs)
	for cut := 0; cut < ck.nbits; cut += 13 {
		trunc := &chunk{count: ck.count, bits: ck.bits, nbits: cut}
		it := trunc.iter()
		got := 0
		for it.next() {
			got++
		}
		if got > ck.count {
			t.Fatalf("cut %d: decoder yielded %d samples from %d", cut, got, ck.count)
		}
	}
}

// FuzzChunkRoundTrip derives a sample stream from fuzz bytes and
// requires a bit-exact round trip. The corpus seeds cover the encoder's
// branch points (dod buckets, XOR window reuse/reset, NaN).
func FuzzChunkRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0xff, 0xf0, 0, 0, 0, 0, 0, 1, 0x7f, 0xf8, 0, 0, 0, 0, 0, 1})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17})
	f.Fuzz(func(t *testing.T, data []byte) {
		// 16 bytes per sample: 8 for the ts delta, 8 for the value bits.
		n := len(data) / 16
		if n == 0 {
			return
		}
		if n > 1024 {
			n = 1024
		}
		ts := make([]int64, n)
		vs := make([]float64, n)
		var tcur int64
		for i := 0; i < n; i++ {
			off := i * 16
			var d, vbits uint64
			for j := 0; j < 8; j++ {
				d = d<<8 | uint64(data[off+j])
				vbits = vbits<<8 | uint64(data[off+8+j])
			}
			tcur += int64(d) // arbitrary, incl. negative / overflowing deltas
			ts[i] = tcur
			vs[i] = math.Float64frombits(vbits)
		}
		ck := encodeSamples(ts, vs)
		it := ck.iter()
		for i := 0; i < n; i++ {
			if !it.next() {
				t.Fatalf("decoder ended at sample %d of %d", i, n)
			}
			if it.ts != ts[i] || math.Float64bits(it.v) != math.Float64bits(vs[i]) {
				t.Fatalf("sample %d: got (%d, %#x) want (%d, %#x)",
					i, it.ts, math.Float64bits(it.v), ts[i], math.Float64bits(vs[i]))
			}
		}
		if it.next() {
			t.Fatal("decoder yielded extra samples")
		}
	})
}
