package tsdb

// tiers.go — downsampling retention tiers. When chunk retention
// (Config.MaxChunks / Config.MaxAge) pushes a sealed chunk out of the
// raw domain, its samples are folded into the 1-second tier as
// count/min/max/sum summary buckets; when the 1-second ring wraps, the
// evicted bucket folds into the 1-minute tier; when that wraps, the
// bucket is dropped (tsdb.tier_buckets_dropped counts the loss). Old
// data therefore shrinks twice — raw → 16 B/s → 16 B/min per series —
// before it vanishes. Query semantics over tier data are documented in
// docs/TSDB.md (aggregates are exact for count/min/max/mean; rate and
// percentiles need raw samples).

// Tier widths. Tier 1 summarizes to 1-second buckets, tier 2 to
// 1-minute buckets (timestamps are nanoseconds).
const (
	tier1Width = int64(1e9)
	tier2Width = int64(60e9)
)

// tier is one downsampling ring: fixed-capacity parallel arrays of
// summary buckets, oldest first from head, each bucket covering
// [start, start+width). Buckets arrive oldest-first (chunks fold in
// seal order), so the ring is time-ordered for well-behaved writers.
type tier struct {
	width int64
	start []int64
	count []uint32
	min   []float64
	max   []float64
	sum   []float64
	head  int
	n     int
	next  *tier // eviction target; nil = dropped
}

func newTier(width int64, capacity int, next *tier) *tier {
	return &tier{
		width: width,
		start: make([]int64, capacity),
		count: make([]uint32, capacity),
		min:   make([]float64, capacity),
		max:   make([]float64, capacity),
		sum:   make([]float64, capacity),
		next:  next,
	}
}

// bucketStart aligns ts down to the tier's bucket grid. Alignment is
// floored toward negative infinity so negative (simulated-clock)
// timestamps bucket consistently.
func (t *tier) bucketStart(ts int64) int64 {
	s := ts / t.width * t.width
	if ts < 0 && ts%t.width != 0 {
		s -= t.width
	}
	return s
}

// foldSample merges one raw sample into the tier.
func (t *tier) foldSample(ts int64, v float64) {
	t.fold(t.bucketStart(ts), 1, v, v, v)
}

// fold merges a pre-aggregated bucket (count/min/max/sum covering
// bucketStart-aligned start) into the tier. Same-bucket folds merge;
// a new bucket start appends, evicting the oldest into t.next when the
// ring is full. An out-of-order start (older than the newest bucket)
// is merged into the newest bucket rather than reordering the ring —
// the summary stays conservative and the ring stays time-sorted.
func (t *tier) fold(start int64, count uint32, min, max, sum float64) {
	start = t.bucketStart(start)
	c := len(t.start)
	if t.n > 0 {
		last := (t.head + t.n - 1) % c
		if start <= t.start[last] {
			t.count[last] += count
			if min < t.min[last] {
				t.min[last] = min
			}
			if max > t.max[last] {
				t.max[last] = max
			}
			t.sum[last] += sum
			return
		}
	}
	if t.n == c {
		// Evict the oldest bucket into the next tier (or drop it).
		i := t.head
		if t.next != nil {
			t.next.fold(t.start[i], t.count[i], t.min[i], t.max[i], t.sum[i])
			tel.tierFolds.Inc()
		} else {
			tel.tierDrops.Inc()
		}
		t.head = (t.head + 1) % c
		t.n--
	}
	i := (t.head + t.n) % c
	t.start[i] = start
	t.count[i] = count
	t.min[i] = min
	t.max[i] = max
	t.sum[i] = sum
	t.n++
}

// visit calls fn for every bucket whose start lies in [from, to],
// oldest first. Tier data is attributed at bucket granularity: a
// bucket belongs to the window containing its start timestamp.
func (t *tier) visit(from, to int64, fn func(start int64, count uint32, min, max, sum float64)) {
	c := len(t.start)
	for i := 0; i < t.n; i++ {
		j := (t.head + i) % c
		if t.start[j] < from || t.start[j] > to {
			continue
		}
		fn(t.start[j], t.count[j], t.min[j], t.max[j], t.sum[j])
	}
}

// samples returns the total sample count summarized by the tier.
func (t *tier) samples() int {
	var n int
	c := len(t.start)
	for i := 0; i < t.n; i++ {
		n += int(t.count[(t.head+i)%c])
	}
	return n
}

// oldestNewest returns the bucket-start span of the ring.
func (t *tier) oldestNewest() (oldest, newest int64) {
	if t.n == 0 {
		return 0, 0
	}
	c := len(t.start)
	return t.start[t.head], t.start[(t.head+t.n-1)%c]
}
