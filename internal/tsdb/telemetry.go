package tsdb

import (
	"time"

	"flexric/internal/telemetry"
)

// Store-wide instrumentation, following the repo convention of direct
// primitive pointers so the hot path never touches the registry. All
// of it compiles to no-ops under -tags notelemetry.
var tel = struct {
	appends      *telemetry.Counter
	overwritten  *telemetry.Counter
	evictions    *telemetry.Counter
	rawBytes     *telemetry.Counter
	queries      *telemetry.Counter
	series       *telemetry.Gauge
	queryLat     *telemetry.Histogram
	chunksSealed *telemetry.Counter
	chunkBytes   *telemetry.Counter
	tierFolds    *telemetry.Counter
	tierDrops    *telemetry.Counter
	snapWrites   *telemetry.Counter
	snapLoads    *telemetry.Counter
	snapBytes    *telemetry.Counter
	sealLat      *telemetry.Histogram
}{
	appends:      telemetry.NewCounter("tsdb.appends"),
	overwritten:  telemetry.NewCounter("tsdb.samples_overwritten"),
	evictions:    telemetry.NewCounter("tsdb.series_evicted"),
	rawBytes:     telemetry.NewCounter("tsdb.raw_bytes"),
	queries:      telemetry.NewCounter("tsdb.queries"),
	series:       telemetry.NewGauge("tsdb.series"),
	queryLat:     telemetry.NewHistogram("tsdb.query_latency"),
	chunksSealed: telemetry.NewCounter("tsdb.chunks_sealed"),
	chunkBytes:   telemetry.NewCounter("tsdb.chunk_bytes_sealed"),
	tierFolds:    telemetry.NewCounter("tsdb.tier_folds"),
	tierDrops:    telemetry.NewCounter("tsdb.tier_buckets_dropped"),
	snapWrites:   telemetry.NewCounter("tsdb.snapshots_written"),
	snapLoads:    telemetry.NewCounter("tsdb.snapshots_loaded"),
	snapBytes:    telemetry.NewCounter("tsdb.snapshot_bytes"),
	sealLat:      telemetry.NewHistogram("tsdb.seal_latency"),
}

// observeQuery records one query on the counters and the latency
// histogram; used as `defer observeQuery(time.Now())` so the disabled
// build pays only the time.Now call the defer already made.
func observeQuery(start time.Time) {
	tel.queries.Inc()
	tel.queryLat.Observe(time.Since(start))
}
