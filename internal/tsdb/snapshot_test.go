package tsdb

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// populate fills a store with a realistic mixed workload: two agents,
// counter and gauge series, enough volume to cross head/chunk/tier
// domains under the given config.
func populate(s *Store, n int) {
	rng := rand.New(rand.NewSource(42))
	keys := []SeriesKey{
		{Agent: 1, Fn: 142, UE: 1, Field: FieldTxBytes},
		{Agent: 1, Fn: 142, UE: 1, Field: FieldCQI},
		{Agent: 1, Fn: 143, UE: 2, Field: FieldRxBytes},
		{Agent: 2, Fn: 144, UE: 1, Field: FieldSojournMS},
	}
	ctr := make([]float64, len(keys))
	for i := 0; i < n; i++ {
		ts := int64(i) * int64(time.Millisecond)
		for j, k := range keys {
			switch j {
			case 1: // gauge
				s.Append(k, ts, float64(rng.Intn(16)))
			default: // counters at different rates
				ctr[j] += float64(300 * (j + 1))
				s.Append(k, ts, ctr[j])
			}
		}
	}
}

// TestSnapshotRestartWindowedAggregates is the kill-and-restart golden
// test from the issue: write a snapshot, load it into a fresh store
// (simulating a controller restart), and require windowed queries to
// return identical aggregates — buckets, percentiles, rates, and all.
func TestSnapshotRestartWindowedAggregates(t *testing.T) {
	cfg := Config{Capacity: 256, Compress: true, MaxChunks: 4}
	before := New(cfg)
	populate(before, 8000)
	path := filepath.Join(t.TempDir(), "tsdb.snap")
	if err := before.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	after := New(cfg) // the restarted controller
	if err := after.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if got, want := after.NumSeries(), before.NumSeries(); got != want {
		t.Fatalf("restored %d series, want %d", got, want)
	}
	for _, k := range []SeriesKey{
		{Agent: 1, Fn: 142, UE: 1, Field: FieldTxBytes},
		{Agent: 1, Fn: 142, UE: 1, Field: FieldCQI},
		{Agent: 2, Fn: 144, UE: 1, Field: FieldSojournMS},
	} {
		wantW := before.Window(k, 0, 8000*int64(time.Millisecond), int64(time.Second))
		gotW := after.Window(k, 0, 8000*int64(time.Millisecond), int64(time.Second))
		if !reflect.DeepEqual(wantW, gotW) {
			t.Fatalf("%v: windowed aggregates diverge after restore", k)
		}
		wantA, ok1 := before.Aggregate(k, 0, math.MaxInt64)
		gotA, ok2 := after.Aggregate(k, 0, math.MaxInt64)
		if !ok1 || !ok2 || wantA != gotA {
			t.Fatalf("%v: aggregate diverges after restore:\nbefore: %+v\nafter:  %+v", k, wantA, gotA)
		}
		if !reflect.DeepEqual(before.LastK(k, 500, nil), after.LastK(k, 500, nil)) {
			t.Fatalf("%v: LastK diverges after restore", k)
		}
	}
	// Occupancy carried over exactly.
	if b, a := before.Stats(), after.Stats(); b != a {
		t.Fatalf("stats diverge:\nbefore: %+v\nafter:  %+v", b, a)
	}
	// The restored store keeps working: appends land after the restored
	// history.
	k := SeriesKey{Agent: 1, Fn: 142, UE: 1, Field: FieldTxBytes}
	after.Append(k, 9000*int64(time.Millisecond), 1e9)
	agg, ok := after.Aggregate(k, 8500*int64(time.Millisecond), math.MaxInt64)
	if !ok || agg.Count != 1 {
		t.Fatalf("append after restore: %+v ok=%v", agg, ok)
	}
}

// TestSnapshotUncompressedStore round-trips the plain overwrite-ring
// mode (no chunks, no tiers) through the same format.
func TestSnapshotUncompressedStore(t *testing.T) {
	cfg := Config{Capacity: 512}
	before := New(cfg)
	populate(before, 2000)
	var buf bytes.Buffer
	if _, err := before.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	after := New(cfg)
	if err := after.ReadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	k := SeriesKey{Agent: 1, Fn: 143, UE: 2, Field: FieldRxBytes}
	if !reflect.DeepEqual(before.LastK(k, 512, nil), after.LastK(k, 512, nil)) {
		t.Fatal("ring contents diverge after restore")
	}
}

// TestSnapshotHeader pins the on-disk magic and version so the format
// cannot change silently (bump snapshotVersion deliberately instead).
func TestSnapshotHeader(t *testing.T) {
	var buf bytes.Buffer
	if _, err := New(Config{}).WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if len(b) < 9 {
		t.Fatalf("snapshot only %d bytes", len(b))
	}
	if string(b[:4]) != "FXTS" {
		t.Fatalf("magic = %q", b[:4])
	}
	if b[4] != 1 {
		t.Fatalf("version = %d", b[4])
	}
}

// TestSnapshotCorruption checks every tamper mode fails closed with
// ErrSnapshotFormat and leaves the target store empty.
func TestSnapshotCorruption(t *testing.T) {
	src := New(Config{Capacity: 128, Compress: true})
	populate(src, 1000)
	var buf bytes.Buffer
	if _, err := src.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	tamper := map[string][]byte{
		"bad-magic":    append([]byte("NOPE"), good[4:]...),
		"bad-version":  append(append(append([]byte{}, good[:4]...), 99), good[5:]...),
		"truncated":    good[:len(good)/2],
		"flipped-byte": flipByte(good, len(good)/2),
		"flipped-crc":  flipByte(good, len(good)-1),
		"empty":        {},
	}
	for name, data := range tamper {
		t.Run(name, func(t *testing.T) {
			dst := New(Config{Capacity: 128, Compress: true})
			err := dst.ReadSnapshot(bytes.NewReader(data))
			if !errors.Is(err, ErrSnapshotFormat) {
				t.Fatalf("err = %v, want ErrSnapshotFormat", err)
			}
			if dst.NumSeries() != 0 {
				t.Fatal("corrupt snapshot published series")
			}
		})
	}
}

func flipByte(b []byte, i int) []byte {
	out := append([]byte{}, b...)
	out[i] ^= 0xff
	return out
}

// TestSnapshotLoadMissingFile: a fresh deployment has no snapshot yet;
// that is a clean start, not an error.
func TestSnapshotLoadMissingFile(t *testing.T) {
	s := New(Config{})
	if err := s.LoadFile(filepath.Join(t.TempDir(), "absent.snap")); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotHeadOverflowClamps loads a snapshot whose write head is
// larger than the target store's Capacity: the newest samples win.
func TestSnapshotHeadOverflowClamps(t *testing.T) {
	big := New(Config{Capacity: 1024})
	k := SeriesKey{Agent: 1, Fn: 142, UE: 1, Field: FieldCQI}
	for i := 0; i < 1000; i++ {
		big.Append(k, int64(i), float64(i))
	}
	var buf bytes.Buffer
	if _, err := big.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	small := New(Config{Capacity: 64})
	if err := small.ReadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got := small.LastK(k, 1024, nil)
	if len(got) != 64 {
		t.Fatalf("clamped head has %d samples, want 64", len(got))
	}
	if got[len(got)-1].TS != 999 || got[0].TS != 999-63 {
		t.Fatalf("kept span [%d,%d], want the newest 64", got[0].TS, got[len(got)-1].TS)
	}
}

// TestSnapshotEvery drives the periodic writer: the file appears within
// an interval, and closing stop produces a final consistent snapshot.
func TestSnapshotEvery(t *testing.T) {
	s := New(Config{Capacity: 128, Compress: true})
	populate(s, 500)
	path := filepath.Join(t.TempDir(), "periodic.snap")
	stop := make(chan struct{})
	done := s.SnapshotEvery(path, 10*time.Millisecond, stop, func(err error) { t.Error(err) })
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic snapshot never written")
		}
		time.Sleep(5 * time.Millisecond)
	}
	populate(s, 600) // more data before shutdown
	close(stop)
	<-done
	restored := New(Config{Capacity: 128, Compress: true})
	if err := restored.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if got, want := restored.NumSeries(), s.NumSeries(); got != want {
		t.Fatalf("final snapshot has %d series, want %d", got, want)
	}
	// The final write happened after stop, so it includes the late data.
	k := SeriesKey{Agent: 1, Fn: 142, UE: 1, Field: FieldTxBytes}
	a, ok1 := s.Aggregate(k, 0, math.MaxInt64)
	b, ok2 := restored.Aggregate(k, 0, math.MaxInt64)
	if !ok1 || !ok2 || a != b {
		t.Fatalf("final snapshot stale:\nlive:     %+v\nrestored: %+v", a, b)
	}
}
