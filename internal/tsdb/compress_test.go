package tsdb

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// TestCompressedQueryEquivalence is the semantic guarantee of the
// compressed mode: as long as no data has left the raw domain (nothing
// folded into tiers), every query — LastK, Range, Aggregate, Window —
// returns results identical to an uncompressed store fed the same
// samples. The compressed store uses a small write head so most of the
// data lives in sealed chunks.
func TestCompressedQueryEquivalence(t *testing.T) {
	const n = 10000
	raw := New(Config{Capacity: 16384})
	comp := New(Config{Capacity: 512, Compress: true, MaxChunks: 1 << 20})
	k := SeriesKey{Agent: 1, Fn: 142, UE: 1, Field: FieldThroughputBps}
	rng := rand.New(rand.NewSource(7))
	v := 100.0
	for i := 0; i < n; i++ {
		v += rng.NormFloat64() * 5
		raw.Append(k, int64(i)*1e6, v)
		comp.Append(k, int64(i)*1e6, v)
	}

	wantW := raw.Window(k, 0, n*1e6, 1e9)
	gotW := comp.Window(k, 0, n*1e6, 1e9)
	if !reflect.DeepEqual(wantW, gotW) {
		t.Fatalf("Window diverges:\nraw:  %+v\ncomp: %+v", wantW[:2], gotW[:2])
	}

	wantA, ok1 := raw.Aggregate(k, 0, math.MaxInt64)
	gotA, ok2 := comp.Aggregate(k, 0, math.MaxInt64)
	if !ok1 || !ok2 || wantA != gotA {
		t.Fatalf("Aggregate diverges:\nraw:  %+v\ncomp: %+v", wantA, gotA)
	}

	// Range restricted to a span that crosses several chunk boundaries.
	wantR := raw.Range(k, 2500*1e6, 7500*1e6, nil)
	gotR := comp.Range(k, 2500*1e6, 7500*1e6, nil)
	if !reflect.DeepEqual(wantR, gotR) {
		t.Fatalf("Range diverges: %d vs %d samples", len(wantR), len(gotR))
	}

	// LastK within the write head, and LastK deep enough to need chunk
	// decompression (2000 > the 512-sample head).
	for _, count := range []int{8, 512, 2000, n + 50} {
		wantL := raw.LastK(k, count, nil)
		gotL := comp.LastK(k, count, nil)
		if !reflect.DeepEqual(wantL, gotL) {
			t.Fatalf("LastK(%d) diverges: %d vs %d samples", count, len(wantL), len(gotL))
		}
	}
}

// TestChunkRetentionFoldsToTiers checks the retention ladder: when the
// chunk chain exceeds MaxChunks the oldest chunk folds into the 1 s
// tier instead of being deleted, so a whole-range aggregate still
// accounts for every appended sample.
func TestChunkRetentionFoldsToTiers(t *testing.T) {
	const n = 10000
	s := New(Config{Capacity: 64, Compress: true, MaxChunks: 2})
	k := SeriesKey{Agent: 1, Fn: 142, UE: 1, Field: FieldTxBytes}
	for i := 0; i < n; i++ {
		s.Append(k, int64(i)*int64(time.Millisecond), 1.0)
	}
	st := s.Stats()
	if st.Chunks > 2 {
		t.Fatalf("chunk chain %d exceeds MaxChunks 2", st.Chunks)
	}
	if st.Tier1.Buckets == 0 {
		t.Fatal("nothing folded into tier 1")
	}
	agg, ok := s.Aggregate(k, 0, math.MaxInt64)
	if !ok {
		t.Fatal("no aggregate")
	}
	// Every sample is retained somewhere: head + chunks + tier buckets.
	if agg.Count != n {
		t.Fatalf("aggregate count %d, want %d (samples lost in retention)", agg.Count, n)
	}
	if agg.Min != 1 || agg.Max != 1 || agg.Mean != 1 {
		t.Fatalf("constant series aggregate: %+v", agg)
	}
}

// TestAgeRetentionCompressSealsAndFolds checks MaxAge semantics under
// compression: aging data is sealed out of the write head and folded
// into tiers rather than deleted (the uncompressed mode deletes), so
// history shrinks in resolution, not in coverage.
func TestAgeRetentionCompressSealsAndFolds(t *testing.T) {
	const n = 5000
	s := New(Config{Capacity: 1024, Compress: true, MaxAge: time.Second})
	k := SeriesKey{Agent: 1, Fn: 142, UE: 1, Field: FieldTxBytes}
	for i := 0; i < n; i++ {
		s.Append(k, int64(i)*int64(time.Millisecond), float64(i))
	}
	agg, ok := s.Aggregate(k, 0, math.MaxInt64)
	if !ok || agg.Count != n {
		t.Fatalf("aggregate count %d, want %d", agg.Count, n)
	}
	// The raw domain (Range) is bounded by MaxAge + head slack, far less
	// than the full history; the rest is tier summaries.
	rawSamples := s.Range(k, 0, math.MaxInt64, nil)
	if len(rawSamples) == n {
		t.Fatal("age retention kept everything raw")
	}
	if len(rawSamples) == 0 {
		t.Fatal("age retention deleted the raw window")
	}
	info := s.List(-1, 0)
	if len(info) != 1 || info[0].TierSamples == 0 {
		t.Fatalf("expected tier occupancy, got %+v", info)
	}
}

// TestTierBucketFolding exercises the tier ring directly: same-bucket
// merging, eviction into the next tier, and the final drop.
func TestTierBucketFolding(t *testing.T) {
	t2 := newTier(tier2Width, 2, nil)
	t1 := newTier(tier1Width, 2, t2)
	// Two samples in the same 1 s bucket merge.
	t1.foldSample(100e6, 5)
	t1.foldSample(900e6, 7)
	if t1.n != 1 || t1.count[0] != 2 || t1.min[0] != 5 || t1.max[0] != 7 || t1.sum[0] != 12 {
		t.Fatalf("same-bucket merge: n=%d count=%v min=%v max=%v sum=%v",
			t1.n, t1.count[:1], t1.min[:1], t1.max[:1], t1.sum[:1])
	}
	// Two more buckets: the ring (cap 2) evicts the oldest into t2.
	t1.foldSample(1_100e6, 1)
	t1.foldSample(2_100e6, 9)
	if t1.n != 2 {
		t.Fatalf("t1 occupancy %d, want 2", t1.n)
	}
	if t2.n != 1 || t2.count[0] != 2 || t2.sum[0] != 12 {
		t.Fatalf("evicted bucket not in t2: n=%d", t2.n)
	}
	if got := t1.samples() + t2.samples(); got != 4 {
		t.Fatalf("sample conservation: %d, want 4", got)
	}
	// Bucket-start alignment at negative timestamps floors toward -inf.
	if got := t1.bucketStart(-1); got != -tier1Width {
		t.Fatalf("bucketStart(-1) = %d, want %d", got, -tier1Width)
	}
	if got := t1.bucketStart(-tier1Width); got != -tier1Width {
		t.Fatalf("bucketStart(-width) = %d, want %d", got, -tier1Width)
	}
}

// TestCompressedSeriesInfo checks the List metadata over a compressed
// series: Count spans head+chunks, OldestTS reaches back into the
// oldest chunk, and the chunk/tier occupancy fields are populated.
func TestCompressedSeriesInfo(t *testing.T) {
	s := New(Config{Capacity: 128, Compress: true, MaxChunks: 4})
	k := SeriesKey{Agent: 9, Fn: 143, UE: 2, Field: FieldRxBytes}
	const n = 1000
	for i := 0; i < n; i++ {
		s.Append(k, int64(i)*1e6, float64(i))
	}
	infos := s.List(9, 143)
	if len(infos) != 1 {
		t.Fatalf("%d series listed", len(infos))
	}
	info := infos[0]
	if info.Chunks == 0 {
		t.Fatal("no chunks reported")
	}
	if info.NewestTS != (n-1)*1e6 {
		t.Fatalf("NewestTS = %d", info.NewestTS)
	}
	if info.OldestTS >= info.NewestTS {
		t.Fatalf("OldestTS = %d not older than newest", info.OldestTS)
	}
	// 1000 samples, head 128, MaxChunks 4: some folded to tiers; the
	// retained raw count is head + chunk samples.
	if info.Count <= 128 {
		t.Fatalf("Count = %d, want > head capacity", info.Count)
	}
}
