package tsdb

// TierStats reports one downsampling tier's occupancy, summed across
// all series.
type TierStats struct {
	// Buckets is the live summary-bucket count; Capacity the total ring
	// capacity (per-series cap × series count).
	Buckets  int `json:"buckets"`
	Capacity int `json:"capacity"`
	// Samples is the raw sample count the live buckets summarize.
	Samples int `json:"samples"`
}

// Stats is the store-wide occupancy and compression-efficiency summary
// served by the obs server at /tsdb/stats.
type Stats struct {
	Series      int `json:"series"`
	HeadSamples int `json:"head_samples"`
	// Chunks/ChunkSamples/ChunkBytes describe the sealed compressed
	// chain; BytesPerSample = ChunkBytes / ChunkSamples is the live
	// compression ratio (a raw sample is 16 bytes: i64 ts + f64 value).
	Chunks         int       `json:"chunks"`
	ChunkSamples   int       `json:"chunk_samples"`
	ChunkBytes     int       `json:"chunk_bytes"`
	BytesPerSample float64   `json:"bytes_per_sample"`
	Tier1          TierStats `json:"tier1"`
	Tier2          TierStats `json:"tier2"`
	// Raw payload archive (AppendRaw side).
	RawPayloads     int `json:"raw_payloads"`
	RawPayloadBytes int `json:"raw_payload_bytes"`
}

// Stats walks every shard and series and returns the store-wide
// occupancy summary. It takes each series lock briefly; intended for
// the observability endpoint, not hot paths.
func (s *Store) Stats() Stats {
	var st Stats
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, se := range sh.series {
			se.mu.Lock()
			st.Series++
			st.HeadSamples += se.n
			st.Chunks += len(se.chunks)
			for _, ck := range se.chunks {
				st.ChunkSamples += ck.count
				st.ChunkBytes += ck.sizeBytes()
			}
			if se.t1 != nil {
				st.Tier1.Buckets += se.t1.n
				st.Tier1.Capacity += len(se.t1.start)
				st.Tier1.Samples += se.t1.samples()
			}
			if se.t2 != nil {
				st.Tier2.Buckets += se.t2.n
				st.Tier2.Capacity += len(se.t2.start)
				st.Tier2.Samples += se.t2.samples()
			}
			se.mu.Unlock()
		}
		for _, rs := range sh.raw {
			rs.mu.Lock()
			st.RawPayloads += rs.n
			c := len(rs.ts)
			for j := 0; j < rs.n; j++ {
				st.RawPayloadBytes += len(rs.bufs[(rs.head+j)%c])
			}
			rs.mu.Unlock()
		}
		sh.mu.RUnlock()
	}
	if st.ChunkSamples > 0 {
		st.BytesPerSample = float64(st.ChunkBytes) / float64(st.ChunkSamples)
	}
	return st
}
