package tsdb

import (
	"encoding/json"
	"math"
	"testing"
)

// partialStream is the deterministic integer-valued stream the golden
// tests run on: integer values keep float summation order-independent
// (every partial sum stays below 2^53), so a federated merge must match
// the single-store aggregate bit-for-bit on count/min/max/mean.
func partialStream(f func(agent uint32, ue uint16, ts int64, v float64)) {
	rng := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for step := int64(0); step < 400; step++ {
		ts := int64(1_000_000_000) + step*10_000_000 // 10 ms cadence
		for agent := uint32(1); agent <= 12; agent++ {
			for ue := uint16(0); ue < 3; ue++ {
				v := float64(next() % 1_000_000) // integer-valued
				f(agent, ue, ts, v)
			}
		}
	}
}

func pkey(agent uint32, ue uint16) SeriesKey {
	return SeriesKey{Agent: agent, Fn: 142, UE: ue, Field: FieldThroughputBps}
}

// p95BucketDistance returns how many log-gamma buckets apart two
// positive values land — the acceptance metric for merged percentiles.
func p95BucketDistance(a, b float64) int {
	if a <= 0 || b <= 0 {
		if a == b {
			return 0
		}
		return 1 << 20
	}
	d := histIdx(a) - histIdx(b)
	if d < 0 {
		d = -d
	}
	return d
}

// TestPartialGoldenFederated is the golden federated-query test: the
// same stream ingested by one store and sharded over three stores (by
// agent, as the consistent-hash ring does) must produce identical
// count/min/max/mean/first_ts/last_ts after the partial merge, with p95
// within one histogram bucket of the exact single-store value.
func TestPartialGoldenFederated(t *testing.T) {
	single := New(Config{})
	shards := []*Store{New(Config{}), New(Config{}), New(Config{})}
	partialStream(func(agent uint32, ue uint16, ts int64, v float64) {
		single.Append(pkey(agent, ue), ts, v)
		shards[int(agent)%3].Append(pkey(agent, ue), ts, v)
	})

	from, to := int64(0), int64(1)<<62

	// Per-series: the owning shard's partial must finish to the exact
	// single-store aggregate (one shard holds all of a series' samples,
	// so even the percentiles only differ by bucket rounding).
	for agent := uint32(1); agent <= 12; agent++ {
		for ue := uint16(0); ue < 3; ue++ {
			k := pkey(agent, ue)
			want, ok := single.Aggregate(k, from, to)
			if !ok {
				t.Fatalf("agent %d ue %d: no single aggregate", agent, ue)
			}
			p, ok := shards[int(agent)%3].PartialAggregate(k, from, to)
			if !ok {
				t.Fatalf("agent %d ue %d: no shard partial", agent, ue)
			}
			got, _ := p.Finish()
			assertAggMatch(t, want, got)
		}
	}

	// Fleet-wide: merge every series partial from every shard and
	// compare against the same merge over the single store — the shape
	// the root's federated /tsdb/query computes.
	var fedP, singleP PartialAgg
	for agent := uint32(1); agent <= 12; agent++ {
		for ue := uint16(0); ue < 3; ue++ {
			k := pkey(agent, ue)
			if p, ok := shards[int(agent)%3].PartialAggregate(k, from, to); ok {
				fedP.Merge(&p)
			}
			if p, ok := single.PartialAggregate(k, from, to); ok {
				singleP.Merge(&p)
			}
		}
	}
	fed, _ := fedP.Finish()
	base, _ := singleP.Finish()
	assertAggMatch(t, base, fed)
	if fed.Count != 400*12*3 {
		t.Fatalf("fleet count %d, want %d", fed.Count, 400*12*3)
	}
}

func assertAggMatch(t *testing.T, want, got Agg) {
	t.Helper()
	if got.Count != want.Count || got.Min != want.Min || got.Max != want.Max {
		t.Fatalf("count/min/max mismatch: got %+v want %+v", got, want)
	}
	if got.Mean != want.Mean {
		t.Fatalf("mean mismatch: got %v want %v", got.Mean, want.Mean)
	}
	if got.FirstTS != want.FirstTS || got.LastTS != want.LastTS {
		t.Fatalf("ts bounds mismatch: got %+v want %+v", got, want)
	}
	if d := p95BucketDistance(got.P95, want.P95); d > 1 {
		t.Fatalf("p95 %v vs exact %v: %d buckets apart", got.P95, want.P95, d)
	}
}

// TestPartialWindowMerge pins the windowed form: aligned shard windows
// merged bucket-by-bucket equal the single-store windows.
func TestPartialWindowMerge(t *testing.T) {
	single := New(Config{})
	shards := []*Store{New(Config{}), New(Config{}), New(Config{})}
	partialStream(func(agent uint32, ue uint16, ts int64, v float64) {
		single.Append(pkey(agent, ue), ts, v)
		shards[int(agent)%3].Append(pkey(agent, ue), ts, v)
	})

	from := int64(1_000_000_000)
	to := from + 400*10_000_000
	step := int64(500_000_000) // 8 windows

	var fed []PartialBucket
	for agent := uint32(1); agent <= 12; agent++ {
		for ue := uint16(0); ue < 3; ue++ {
			w := shards[int(agent)%3].PartialWindow(pkey(agent, ue), from, to, step)
			fed = MergePartialWindows(fed, w)
		}
	}
	var base []PartialBucket
	for agent := uint32(1); agent <= 12; agent++ {
		for ue := uint16(0); ue < 3; ue++ {
			base = MergePartialWindows(base, single.PartialWindow(pkey(agent, ue), from, to, step))
		}
	}
	if len(fed) != len(base) || len(fed) != 8 {
		t.Fatalf("window counts: fed %d base %d", len(fed), len(base))
	}
	for i := range fed {
		fa, fok := fed[i].Agg.Finish()
		ba, bok := base[i].Agg.Finish()
		if fok != bok {
			t.Fatalf("bucket %d: presence mismatch", i)
		}
		if !fok {
			continue
		}
		if fed[i].FromTS != base[i].FromTS || fed[i].ToTS != base[i].ToTS {
			t.Fatalf("bucket %d: bounds mismatch", i)
		}
		assertAggMatch(t, ba, fa)
	}
}

// TestPartialSingleSeriesExactPercentile checks that a partial built
// from one series stays within a bucket of the exact raw-sorted
// percentile Aggregate computes, and within the histogram's documented
// relative error of the true value.
func TestPartialSingleSeriesExactPercentile(t *testing.T) {
	s := New(Config{})
	k := pkey(1, 0)
	for i := int64(0); i < 1000; i++ {
		s.Append(k, 1_000_000_000+i*1_000_000, float64(i*i%70001)+1)
	}
	want, _ := s.Aggregate(k, 0, 1<<62)
	p, _ := s.PartialAggregate(k, 0, 1<<62)
	got, _ := p.Finish()
	for _, pair := range [][2]float64{{got.P50, want.P50}, {got.P95, want.P95}, {got.P99, want.P99}} {
		if d := p95BucketDistance(pair[0], pair[1]); d > 1 {
			t.Fatalf("percentile %v vs exact %v: %d buckets apart", pair[0], pair[1], d)
		}
		if rel := math.Abs(pair[0]-pair[1]) / pair[1]; rel > histGamma-1 {
			t.Fatalf("percentile %v vs exact %v: relative error %.3f", pair[0], pair[1], rel)
		}
	}
}

// TestPartialNegativeAndZero covers the histogram's sign split: the
// value walk must cross negative buckets (descending index), zeros,
// then positive buckets.
func TestPartialNegativeAndZero(t *testing.T) {
	var p PartialAgg
	vals := []float64{-100, -10, -1, 0, 0, 1, 10, 100, 1000}
	for i, v := range vals {
		p.observe(int64(i), v)
	}
	a, ok := p.Finish()
	if !ok || a.Count != len(vals) {
		t.Fatalf("finish: %+v ok=%v", a, ok)
	}
	if a.Min != -100 || a.Max != 1000 {
		t.Fatalf("min/max: %+v", a)
	}
	if a.P50 != 0 {
		t.Fatalf("p50 over symmetric-ish set with zero median: got %v", a.P50)
	}
	if a.P99 <= 100 {
		t.Fatalf("p99 should land in the top bucket, got %v", a.P99)
	}
}

// TestPartialJSONRoundTrip pins the wire form: a partial marshalled to
// JSON and back finishes to the identical Agg (the federation root
// consumes exactly this round trip from /tsdb/partial).
func TestPartialJSONRoundTrip(t *testing.T) {
	s := New(Config{})
	k := pkey(3, 1)
	for i := int64(0); i < 500; i++ {
		s.Append(k, 1_000_000_000+i*1_000_000, float64(i%977))
	}
	p, _ := s.PartialAggregate(k, 0, 1<<62)
	raw, err := json.Marshal(&p)
	if err != nil {
		t.Fatal(err)
	}
	var back PartialAgg
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	a1, _ := p.Finish()
	a2, _ := back.Finish()
	if a1 != a2 {
		t.Fatalf("round trip changed the aggregate:\n before %+v\n after  %+v", a1, a2)
	}
}

// TestPartialTierDegradation checks a compressed series whose range is
// served partly from tiers still merges count/min/max/mean exactly and
// falls back to the documented percentile approximation when no raw
// samples are in range.
func TestPartialTierDegradation(t *testing.T) {
	s := New(Config{Capacity: 64, Compress: true, MaxChunks: 2})
	k := pkey(7, 0)
	for i := int64(0); i < 2000; i++ {
		s.Append(k, 1_000_000_000+i*100_000_000, float64(i%500))
	}
	want, ok := s.Aggregate(k, 0, 1<<62)
	if !ok {
		t.Fatal("no aggregate")
	}
	p, ok := s.PartialAggregate(k, 0, 1<<62)
	if !ok {
		t.Fatal("no partial")
	}
	got, _ := p.Finish()
	if got.Count != want.Count || got.Min != want.Min || got.Max != want.Max || got.Mean != want.Mean {
		t.Fatalf("tier merge mismatch:\n got  %+v\n want %+v", got, want)
	}
}

func BenchmarkPartialMerge(b *testing.B) {
	s := New(Config{})
	k := pkey(1, 0)
	for i := int64(0); i < 1000; i++ {
		s.Append(k, 1_000_000_000+i*1_000_000, float64(i%977))
	}
	src, _ := s.PartialAggregate(k, 0, 1<<62)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var dst PartialAgg
		dst.Merge(&src)
		if _, ok := dst.Finish(); !ok {
			b.Fatal("empty merge")
		}
	}
}
