package tsdb

// snapshot.go — WAL-less persistence: a versioned point-in-time image
// of every scalar series (write head, sealed chunks, downsampling
// tiers) that a restarted controller loads to keep its history. The
// raw payload archive is deliberately not snapshotted: it holds
// transient wire bytes whose consumers re-request on reconnect.
//
// Format v1 (little-endian throughout; normative spec with a worked
// example in docs/TSDB.md):
//
//	magic   "FXTS" (4 bytes)
//	version u8 = 1
//	payload — CRC-protected:
//	  u32 series count
//	  per series:
//	    key        u32 agent, u16 fn, u16 ue, u8 field
//	    head       u32 n, then n × (i64 ts, u64 value bits)
//	    chunks     u32 n, each: u32 count, i64 firstTS, i64 lastTS,
//	               u64 min, max, sum, first, last (float bits),
//	               u32 nbits, ceil(nbits/8) payload bytes
//	    tiers      u8 n (0 when sealed without tiers, else 2,
//	               oldest/widest first), each: i64 width, u32 n,
//	               then n × (i64 start, u32 count,
//	               u64 min, max, sum bits)
//	footer  u32 CRC-32 (IEEE) of the payload bytes
//
// Writes are atomic at the file level (SaveFile writes a temp file and
// renames); each series is internally consistent (serialized under its
// lock) but the snapshot is not a cross-series atomic cut — series
// serialized later may contain samples appended after the write began,
// which is harmless for windowed-aggregate consumers.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"
)

const (
	snapshotMagic   = "FXTS"
	snapshotVersion = 1

	// Pre-CRC sanity bounds: the CRC is only checkable after the whole
	// payload is read, so structural counts are capped to keep a
	// corrupt header from driving huge allocations.
	maxSnapSeries     = 1 << 22
	maxSnapSamples    = 1 << 24
	maxSnapChunks     = 1 << 16
	maxSnapChunkBytes = 1 << 26
	maxSnapTierCap    = 1 << 22
)

// ErrSnapshotFormat reports a malformed, truncated, or corrupt
// snapshot stream.
var ErrSnapshotFormat = errors.New("tsdb: bad snapshot")

type snapWriter struct {
	w   io.Writer
	crc uint32
	n   int64
	err error
	buf [8]byte
}

func (sw *snapWriter) write(p []byte) {
	if sw.err != nil {
		return
	}
	if _, err := sw.w.Write(p); err != nil {
		sw.err = err
		return
	}
	sw.crc = crc32.Update(sw.crc, crc32.IEEETable, p)
	sw.n += int64(len(p))
}

func (sw *snapWriter) u8(v uint8) { sw.buf[0] = v; sw.write(sw.buf[:1]) }
func (sw *snapWriter) u16(v uint16) {
	binary.LittleEndian.PutUint16(sw.buf[:2], v)
	sw.write(sw.buf[:2])
}
func (sw *snapWriter) u32(v uint32) {
	binary.LittleEndian.PutUint32(sw.buf[:4], v)
	sw.write(sw.buf[:4])
}
func (sw *snapWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(sw.buf[:8], v)
	sw.write(sw.buf[:8])
}
func (sw *snapWriter) i64(v int64)   { sw.u64(uint64(v)) }
func (sw *snapWriter) f64(v float64) { sw.u64(math.Float64bits(v)) }

// WriteSnapshot serializes every scalar series to w in snapshot format
// v1 and returns the byte count written.
func (s *Store) WriteSnapshot(w io.Writer) (int64, error) {
	// Collect series pointers first so no shard lock is held during
	// serialization; pointers stay valid even if a shard map mutates.
	var keys []SeriesKey
	var sers []*series
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, se := range sh.series {
			keys = append(keys, k)
			sers = append(sers, se)
		}
		sh.mu.RUnlock()
	}

	if _, err := io.WriteString(w, snapshotMagic); err != nil {
		return 0, err
	}
	if _, err := w.Write([]byte{snapshotVersion}); err != nil {
		return 0, err
	}
	sw := &snapWriter{w: w}
	sw.u32(uint32(len(sers)))
	for i, se := range sers {
		k := keys[i]
		se.mu.Lock()
		sw.u32(k.Agent)
		sw.u16(k.Fn)
		sw.u16(k.UE)
		sw.u8(uint8(k.Field))
		// Write head, oldest first.
		sw.u32(uint32(se.n))
		c := len(se.ts)
		for j := 0; j < se.n; j++ {
			p := (se.head + j) % c
			sw.i64(se.ts[p])
			sw.f64(se.vs[p])
		}
		// Sealed chunks, oldest first, payload verbatim.
		sw.u32(uint32(len(se.chunks)))
		for _, ck := range se.chunks {
			sw.u32(uint32(ck.count))
			sw.i64(ck.firstTS)
			sw.i64(ck.lastTS)
			sw.f64(ck.min)
			sw.f64(ck.max)
			sw.f64(ck.sum)
			sw.f64(ck.first)
			sw.f64(ck.last)
			sw.u32(uint32(ck.nbits))
			sw.write(ck.bits)
		}
		// Tiers, widest (oldest data) first.
		var tiers []*tier
		if se.t1 != nil {
			tiers = []*tier{se.t2, se.t1}
		}
		sw.u8(uint8(len(tiers)))
		for _, t := range tiers {
			sw.i64(t.width)
			sw.u32(uint32(t.n))
			tc := len(t.start)
			for j := 0; j < t.n; j++ {
				p := (t.head + j) % tc
				sw.i64(t.start[p])
				sw.u32(t.count[p])
				sw.f64(t.min[p])
				sw.f64(t.max[p])
				sw.f64(t.sum[p])
			}
		}
		se.mu.Unlock()
		if sw.err != nil {
			return 0, sw.err
		}
	}
	// Footer: CRC of the payload, not itself CRC-protected.
	var foot [4]byte
	binary.LittleEndian.PutUint32(foot[:], sw.crc)
	if _, err := w.Write(foot[:]); err != nil {
		return 0, err
	}
	total := int64(len(snapshotMagic)) + 1 + sw.n + 4
	tel.snapWrites.Inc()
	tel.snapBytes.Add(uint64(total))
	return total, nil
}

type snapReader struct {
	r   io.Reader
	crc uint32
	err error
	buf [8]byte
}

func (sr *snapReader) read(p []byte) {
	if sr.err != nil {
		return
	}
	if _, err := io.ReadFull(sr.r, p); err != nil {
		sr.err = fmt.Errorf("%w: %v", ErrSnapshotFormat, err)
		return
	}
	sr.crc = crc32.Update(sr.crc, crc32.IEEETable, p)
}

func (sr *snapReader) u8() uint8 { sr.read(sr.buf[:1]); return sr.buf[0] }
func (sr *snapReader) u16() uint16 {
	sr.read(sr.buf[:2])
	return binary.LittleEndian.Uint16(sr.buf[:2])
}
func (sr *snapReader) u32() uint32 {
	sr.read(sr.buf[:4])
	return binary.LittleEndian.Uint32(sr.buf[:4])
}
func (sr *snapReader) u64() uint64 {
	sr.read(sr.buf[:8])
	return binary.LittleEndian.Uint64(sr.buf[:8])
}
func (sr *snapReader) i64() int64   { return int64(sr.u64()) }
func (sr *snapReader) f64() float64 { return math.Float64frombits(sr.u64()) }

// ReadSnapshot restores a snapshot stream into the store. Restored
// series replace same-keyed live series wholesale. Head samples beyond
// the store's configured Capacity keep the newest; snapshot tiers are
// restored even when the store itself runs uncompressed (they stay
// queryable but receive no further folds). The CRC footer is verified
// before any series becomes visible.
func (s *Store) ReadSnapshot(r io.Reader) error {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrSnapshotFormat, err)
	}
	if string(magic[:]) != snapshotMagic {
		return fmt.Errorf("%w: bad magic %q", ErrSnapshotFormat, magic[:])
	}
	var ver [1]byte
	if _, err := io.ReadFull(r, ver[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrSnapshotFormat, err)
	}
	if ver[0] != snapshotVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrSnapshotFormat, ver[0])
	}
	sr := &snapReader{r: r}
	nSeries := sr.u32()
	if sr.err != nil {
		return sr.err
	}
	if nSeries > maxSnapSeries {
		return fmt.Errorf("%w: series count %d", ErrSnapshotFormat, nSeries)
	}
	keys := make([]SeriesKey, 0, nSeries)
	sers := make([]*series, 0, nSeries)
	for i := uint32(0); i < nSeries; i++ {
		k := SeriesKey{
			Agent: sr.u32(),
			Fn:    sr.u16(),
			UE:    sr.u16(),
			Field: Field(sr.u8()),
		}
		se := s.newSeries()
		// Head.
		hn := sr.u32()
		if sr.err != nil {
			return sr.err
		}
		if hn > maxSnapSamples {
			return fmt.Errorf("%w: head count %d", ErrSnapshotFormat, hn)
		}
		for j := uint32(0); j < hn; j++ {
			ts, v := sr.i64(), sr.f64()
			if sr.err != nil {
				return sr.err
			}
			// Keep the newest Capacity samples: overwrite-oldest on
			// overflow regardless of the compression mode (the restore
			// path must not seal — chunk state comes next).
			c := len(se.ts)
			if se.n == c {
				se.head = (se.head + 1) % c
				se.n--
			}
			p := (se.head + se.n) % c
			se.ts[p] = ts
			se.vs[p] = v
			se.n++
		}
		// Chunks.
		cn := sr.u32()
		if sr.err != nil {
			return sr.err
		}
		if cn > maxSnapChunks {
			return fmt.Errorf("%w: chunk count %d", ErrSnapshotFormat, cn)
		}
		for j := uint32(0); j < cn; j++ {
			ck := &chunk{
				count:   int(sr.u32()),
				firstTS: sr.i64(),
				lastTS:  sr.i64(),
				min:     sr.f64(),
				max:     sr.f64(),
				sum:     sr.f64(),
				first:   sr.f64(),
				last:    sr.f64(),
			}
			nbits := sr.u32()
			if sr.err != nil {
				return sr.err
			}
			nbytes := (int(nbits) + 7) / 8
			if ck.count < 0 || int(nbits) < 0 || nbytes > maxSnapChunkBytes {
				return fmt.Errorf("%w: chunk size", ErrSnapshotFormat)
			}
			ck.nbits = int(nbits)
			ck.bits = make([]byte, nbytes)
			sr.read(ck.bits)
			se.chunks = append(se.chunks, ck)
		}
		// Tiers.
		tn := sr.u8()
		if sr.err != nil {
			return sr.err
		}
		if tn > 2 {
			return fmt.Errorf("%w: tier count %d", ErrSnapshotFormat, tn)
		}
		var restored []*tier
		for j := uint8(0); j < tn; j++ {
			width := sr.i64()
			bn := sr.u32()
			if sr.err != nil {
				return sr.err
			}
			if width <= 0 || bn > maxSnapTierCap {
				return fmt.Errorf("%w: tier shape", ErrSnapshotFormat)
			}
			// Reuse the configured tier when the width matches (the
			// common restart path); otherwise build one big enough.
			var t *tier
			switch {
			case se.t2 != nil && width == se.t2.width:
				t = se.t2
			case se.t1 != nil && width == se.t1.width:
				t = se.t1
			default:
				capacity := int(bn)
				if capacity == 0 {
					capacity = 1
				}
				t = newTier(width, capacity, nil)
			}
			for b := uint32(0); b < bn; b++ {
				start := sr.i64()
				count := sr.u32()
				mn, mx, sum := sr.f64(), sr.f64(), sr.f64()
				if sr.err != nil {
					return sr.err
				}
				t.fold(start, count, mn, mx, sum)
			}
			restored = append(restored, t)
		}
		// Snapshot order is widest first (t2 then t1); rebind when the
		// store had no tiers of its own.
		if se.t1 == nil && len(restored) == 2 {
			se.t2, se.t1 = restored[0], restored[1]
			se.t1.next = se.t2
		} else if se.t1 == nil && len(restored) == 1 {
			se.t1 = restored[0]
		}
		keys = append(keys, k)
		sers = append(sers, se)
	}
	if sr.err != nil {
		return sr.err
	}
	var foot [4]byte
	if _, err := io.ReadFull(r, foot[:]); err != nil {
		return fmt.Errorf("%w: missing footer: %v", ErrSnapshotFormat, err)
	}
	if got := binary.LittleEndian.Uint32(foot[:]); got != sr.crc {
		return fmt.Errorf("%w: crc mismatch", ErrSnapshotFormat)
	}
	// CRC verified — publish.
	var added int64
	for i, k := range keys {
		sh := s.shardFor(k)
		sh.mu.Lock()
		if _, exists := sh.series[k]; !exists {
			added++
		}
		sh.series[k] = sers[i]
		sh.mu.Unlock()
	}
	tel.series.Add(added)
	tel.snapLoads.Inc()
	return nil
}

// SaveFile writes an atomic snapshot: a temp file in path's directory,
// synced, then renamed over path.
func (s *Store) SaveFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tsdb-snapshot-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after the rename succeeds
	if _, err := s.WriteSnapshot(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadFile restores a snapshot file written by SaveFile. A missing
// file is not an error (fresh start); a malformed one is.
func (s *Store) LoadFile(path string) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	return s.ReadSnapshot(f)
}

// SnapshotEvery runs a background loop writing SaveFile(path) every
// interval until stop is closed, then writes one final snapshot. It
// returns a done channel that closes after the final write. Errors are
// reported through onErr (nil ignores them).
func (s *Store) SnapshotEvery(path string, interval time.Duration, stop <-chan struct{}, onErr func(error)) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		var tick <-chan time.Time
		if interval > 0 {
			t := time.NewTicker(interval)
			defer t.Stop()
			tick = t.C
		}
		for {
			select {
			case <-tick:
				if err := s.SaveFile(path); err != nil && onErr != nil {
					onErr(err)
				}
			case <-stop:
				if err := s.SaveFile(path); err != nil && onErr != nil {
					onErr(err)
				}
				return
			}
		}
	}()
	return done
}
