package tsdb

import (
	"math"
	"testing"
)

// BenchmarkTSDBAppend is the steady-state ingest path: the series exists
// and the ring is warm, so each op is a lock + two array stores.
// scripts/verify.sh gates this at ≤1 alloc/op across the default,
// notelemetry, and notrace builds.
func BenchmarkTSDBAppend(b *testing.B) {
	s := New(Config{Capacity: 4096})
	k := SeriesKey{Agent: 1, Fn: 142, UE: 3, Field: FieldCQI}
	s.Append(k, 0, 0) // create the series outside the timed loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Append(k, int64(i), float64(i))
	}
}

// BenchmarkTSDBAppendParallel measures contention across shards: each
// goroutine writes its own key set so lock striping can spread them.
func BenchmarkTSDBAppendParallel(b *testing.B) {
	s := New(Config{Capacity: 4096, Shards: 16})
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		k := SeriesKey{Agent: 1, Fn: 142, UE: 1, Field: FieldCQI}
		i := int64(0)
		for pb.Next() {
			i++
			k.UE = uint16(i % 64)
			s.Append(k, i, float64(i))
		}
	})
}

// BenchmarkTSDBAppendRaw archives a 512 B payload per op; the slot
// buffer comes from bufpool once and is reused thereafter.
func BenchmarkTSDBAppendRaw(b *testing.B) {
	s := New(Config{RawCapacity: 64})
	payload := make([]byte, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AppendRaw(1, 142, int64(i), payload)
	}
}

// BenchmarkTSDBLastK polls the newest 8 samples with a reused dst, the
// pattern control loops use.
func BenchmarkTSDBLastK(b *testing.B) {
	s := New(Config{Capacity: 4096})
	k := SeriesKey{Agent: 1, Fn: 143, UE: 1, Field: FieldSojournMS}
	for i := 0; i < 4096; i++ {
		s.Append(k, int64(i), float64(i))
	}
	dst := make([]Sample, 0, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = s.LastK(k, 8, dst)
	}
}

// BenchmarkTSDBAggregate summarizes a full 1024-sample ring per op.
func BenchmarkTSDBAggregate(b *testing.B) {
	s := New(Config{Capacity: 1024})
	k := SeriesKey{Agent: 1, Fn: 142, UE: 1, Field: FieldThroughputBps}
	for i := 0; i < 1024; i++ {
		s.Append(k, int64(i)*1e6, float64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Aggregate(k, 0, math.MaxInt64)
	}
}

// BenchmarkTSDBWindowQuery runs the 10-bucket windowed aggregate the
// /tsdb/query endpoint serves, over a 10k-sample series.
func BenchmarkTSDBWindowQuery(b *testing.B) {
	s := New(Config{Capacity: 16384})
	k := SeriesKey{Agent: 1, Fn: 142, UE: 1, Field: FieldThroughputBps}
	for i := 0; i < 10000; i++ {
		s.Append(k, int64(i)*1e6, float64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Window(k, 0, 10000*1e6, 1e9)
	}
}
