package tsdb

import (
	"math"
	"sync"
	"testing"
	"time"
)

// BenchmarkTSDBAppend is the steady-state ingest path: the series exists
// and the ring is warm, so each op is a lock + two array stores.
// scripts/verify.sh gates this at ≤1 alloc/op across the default,
// notelemetry, and notrace builds.
func BenchmarkTSDBAppend(b *testing.B) {
	s := New(Config{Capacity: 4096})
	k := SeriesKey{Agent: 1, Fn: 142, UE: 3, Field: FieldCQI}
	s.Append(k, 0, 0) // create the series outside the timed loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Append(k, int64(i), float64(i))
	}
}

// BenchmarkTSDBAppendHooked is BenchmarkTSDBAppend with an append hook
// registered that mirrors the obs stream hub's delta buffer: a mutex
// plus a fixed-capacity ring write. scripts/verify.sh gates this at
// ≤1 alloc/op — publishing live deltas must not cost the ingest path
// its allocation-free steady state.
func BenchmarkTSDBAppendHooked(b *testing.B) {
	s := New(Config{Capacity: 4096})
	type delta struct {
		k  SeriesKey
		ts int64
		v  float64
	}
	var (
		mu   sync.Mutex
		ring [1024]delta
		n    int
	)
	s.SetAppendHook(func(k SeriesKey, ts int64, v float64) {
		mu.Lock()
		ring[n&1023] = delta{k, ts, v}
		n++
		mu.Unlock()
	})
	k := SeriesKey{Agent: 1, Fn: 142, UE: 3, Field: FieldCQI}
	s.Append(k, 0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Append(k, int64(i), float64(i))
	}
	b.StopTimer()
	if n != b.N+1 {
		b.Fatalf("hook saw %d appends, want %d", n, b.N+1)
	}
}

// BenchmarkTSDBAppendParallel measures contention across shards: each
// goroutine writes its own key set so lock striping can spread them.
func BenchmarkTSDBAppendParallel(b *testing.B) {
	s := New(Config{Capacity: 4096, Shards: 16})
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		k := SeriesKey{Agent: 1, Fn: 142, UE: 1, Field: FieldCQI}
		i := int64(0)
		for pb.Next() {
			i++
			k.UE = uint16(i % 64)
			s.Append(k, i, float64(i))
		}
	})
}

// BenchmarkTSDBAppendRaw archives a 512 B payload per op; the slot
// buffer comes from bufpool once and is reused thereafter.
func BenchmarkTSDBAppendRaw(b *testing.B) {
	s := New(Config{RawCapacity: 64})
	payload := make([]byte, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AppendRaw(1, 142, int64(i), payload)
	}
}

// BenchmarkTSDBLastK polls the newest 8 samples with a reused dst, the
// pattern control loops use.
func BenchmarkTSDBLastK(b *testing.B) {
	s := New(Config{Capacity: 4096})
	k := SeriesKey{Agent: 1, Fn: 143, UE: 1, Field: FieldSojournMS}
	for i := 0; i < 4096; i++ {
		s.Append(k, int64(i), float64(i))
	}
	dst := make([]Sample, 0, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = s.LastK(k, 8, dst)
	}
}

// BenchmarkTSDBAggregate summarizes a full 1024-sample ring per op.
func BenchmarkTSDBAggregate(b *testing.B) {
	s := New(Config{Capacity: 1024})
	k := SeriesKey{Agent: 1, Fn: 142, UE: 1, Field: FieldThroughputBps}
	for i := 0; i < 1024; i++ {
		s.Append(k, int64(i)*1e6, float64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Aggregate(k, 0, math.MaxInt64)
	}
}

// counterSeries fills ts/vs with a counter-like shape: a tx_bytes-style
// monotone series ticking every 1 ms and growing ~1500 B per report —
// the shape the ≤2 bytes/sample compression target is specified on.
func counterSeries(n int) (ts []int64, vs []float64) {
	ts = make([]int64, n)
	vs = make([]float64, n)
	t, v := int64(0), 0.0
	for i := 0; i < n; i++ {
		t += int64(time.Millisecond)
		v += 1500
		ts[i] = t
		vs[i] = v
	}
	return ts, vs
}

// BenchmarkTSDBCompressedAppend is the ingest path with Compress on:
// identical to BenchmarkTSDBAppend except every Capacity-th append
// seals the ring into a chunk, so the cost shown is the amortized
// append + seal. Allocations here are the amortized chunk allocations;
// the uncompressed fast path keeps its own ≤1 alloc/op gate.
func BenchmarkTSDBCompressedAppend(b *testing.B) {
	s := New(Config{Capacity: 4096, Compress: true, MaxChunks: 1 << 20})
	k := SeriesKey{Agent: 1, Fn: 142, UE: 3, Field: FieldTxBytes}
	s.Append(k, 0, 0)
	ts, v := int64(0), 0.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts += int64(time.Millisecond)
		v += 1500
		s.Append(k, ts, v)
	}
	b.StopTimer()
	if st := s.Stats(); st.ChunkSamples > 0 {
		b.ReportMetric(st.BytesPerSample, "bytes/sample")
	}
}

// BenchmarkTSDBChunkSeal is the seal operation in isolation: one op
// compresses a full 4096-sample counter-like ring into a chunk. The
// bytes/sample metric is the headline compression ratio (16 bytes raw).
func BenchmarkTSDBChunkSeal(b *testing.B) {
	const n = 4096
	ts, vs := counterSeries(n)
	b.ReportAllocs()
	b.ResetTimer()
	var ck *chunk
	for i := 0; i < b.N; i++ {
		var enc chunkEncoder
		for j := 0; j < n; j++ {
			enc.add(ts[j], vs[j])
		}
		ck = enc.seal()
	}
	b.StopTimer()
	b.ReportMetric(float64(ck.sizeBytes())/float64(ck.count), "bytes/sample")
}

// BenchmarkTSDBChunkDecode iterates one sealed 4096-sample chunk per op
// — the unit cost a query pays per chunk it cannot skip on the header.
func BenchmarkTSDBChunkDecode(b *testing.B) {
	const n = 4096
	ts, vs := counterSeries(n)
	var enc chunkEncoder
	for j := 0; j < n; j++ {
		enc.add(ts[j], vs[j])
	}
	ck := enc.seal()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := ck.iter()
		for it.next() {
		}
	}
}

// BenchmarkTSDBCompressedWindowQuery is BenchmarkTSDBWindowQuery over a
// compressed store: the same 10k samples and the same 10-bucket window,
// but most samples live in sealed chunks and are decoded chunk-at-a-time
// during the single query pass.
func BenchmarkTSDBCompressedWindowQuery(b *testing.B) {
	s := New(Config{Capacity: 1024, Compress: true, MaxChunks: 1 << 20})
	k := SeriesKey{Agent: 1, Fn: 142, UE: 1, Field: FieldThroughputBps}
	for i := 0; i < 10000; i++ {
		s.Append(k, int64(i)*1e6, float64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Window(k, 0, 10000*1e6, 1e9)
	}
}

// BenchmarkTSDBSnapshot serializes a 16-series compressed store per op.
func BenchmarkTSDBSnapshot(b *testing.B) {
	s := New(Config{Capacity: 1024, Compress: true})
	ts, vs := counterSeries(8192)
	for ue := 0; ue < 16; ue++ {
		k := SeriesKey{Agent: 1, Fn: 142, UE: uint16(ue), Field: FieldTxBytes}
		for i := range ts {
			s.Append(k, ts[i], vs[i])
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.WriteSnapshot(discard{}); err != nil {
			b.Fatal(err)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkTSDBWindowQuery runs the 10-bucket windowed aggregate the
// /tsdb/query endpoint serves, over a 10k-sample series.
func BenchmarkTSDBWindowQuery(b *testing.B) {
	s := New(Config{Capacity: 16384})
	k := SeriesKey{Agent: 1, Fn: 142, UE: 1, Field: FieldThroughputBps}
	for i := 0; i < 10000; i++ {
		s.Append(k, int64(i)*1e6, float64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Window(k, 0, 10000*1e6, 1e9)
	}
}
