// Package tsdb is the SDK's in-memory time-series store for SM report
// history: the storage subsystem between the indication fast path and
// the consumers that need more than the latest report — windowed rates,
// means, and percentiles for control loops, SLA checks, and the
// northbound query API (see docs/OBSERVABILITY.md).
//
// The paper's statistics iApp (§5.3) "saves incoming messages to an
// in-memory data structure"; ctrl.Monitor used to retain only the
// latest report per agent/layer. This package gives it bounded history:
// every numeric field of a decoded MAC/RLC/PDCP report becomes a point
// in a scalar series keyed by (agent, RAN function, UE, field), and raw
// SM payloads are archived per (agent, RAN function) in rings of pooled
// buffers.
//
// # Design
//
//   - Lock-striped: series are filed into power-of-two shards by key
//     hash. A shard's RWMutex guards only its map; each series carries
//     its own mutex for ring operations, so appends to different series
//     never serialize on a shard and a long query never blocks ingest
//     on anything but the one series it reads.
//   - Bounded: each series is a fixed-capacity ring (Config.Capacity)
//     with optional age-based retention (Config.MaxAge) pruned lazily
//     on append and query. Memory is O(series × capacity), independent
//     of run length.
//   - Allocation-free at steady state: once a series exists, Append is
//     a map lookup plus two ring writes — no allocation (gated by
//     BenchmarkTSDBAppend in scripts/verify.sh). Raw payload archiving
//     copies into internal/bufpool buffers and recycles the buffer it
//     overwrites, so a steady indication stream archives without
//     touching the heap.
//
// # Ownership
//
// Buffers inside the raw archive belong to the store: AppendRaw copies
// the caller's payload, and readers receive fresh copies (or append
// into a caller-provided slice). See docs/PERFORMANCE.md for the full
// buffer-ownership chain.
package tsdb

import (
	"sync"
	"sync/atomic"
	"time"

	"flexric/internal/bufpool"
)

// Field identifies one scalar column of an SM report. Field names are
// shared across service models — the RAN function ID in the SeriesKey
// disambiguates (MAC TxBits vs RLC TxBytes live under different Fn).
type Field uint8

// Fields covered by the monitoring SMs (MAC/RLC/PDCP stats).
const (
	FieldCQI Field = iota
	FieldMCS
	FieldRBsUsed
	FieldTxBits
	FieldThroughputBps
	FieldTxPackets
	FieldTxBytes
	FieldRxPackets
	FieldRxBytes
	FieldDropPackets
	FieldDropBytes
	FieldBufferBytes
	FieldBufferPkts
	FieldSojournMS
	numFields
)

var fieldNames = [numFields]string{
	FieldCQI:           "cqi",
	FieldMCS:           "mcs",
	FieldRBsUsed:       "rbs_used",
	FieldTxBits:        "tx_bits",
	FieldThroughputBps: "throughput_bps",
	FieldTxPackets:     "tx_packets",
	FieldTxBytes:       "tx_bytes",
	FieldRxPackets:     "rx_packets",
	FieldRxBytes:       "rx_bytes",
	FieldDropPackets:   "drop_packets",
	FieldDropBytes:     "drop_bytes",
	FieldBufferBytes:   "buffer_bytes",
	FieldBufferPkts:    "buffer_pkts",
	FieldSojournMS:     "sojourn_ms",
}

// String returns the field's wire name as used by the HTTP query API.
func (f Field) String() string {
	if int(f) < len(fieldNames) {
		return fieldNames[f]
	}
	return "unknown"
}

// ParseField resolves a wire name to a Field.
func ParseField(s string) (Field, bool) {
	for i, n := range fieldNames {
		if n == s {
			return Field(i), true
		}
	}
	return 0, false
}

// SeriesKey identifies one scalar series: an agent's RAN function, a UE
// within it, and the report field.
type SeriesKey struct {
	Agent uint32
	Fn    uint16
	UE    uint16
	Field Field
}

// Sample is one timestamped point. TS is in nanoseconds; the store does
// not interpret the epoch — wall-clock UnixNano and simulated-time
// nanoseconds both work, as long as one series sticks to one clock.
type Sample struct {
	TS int64   `json:"ts"`
	V  float64 `json:"v"`
}

// Config parameterizes a Store. The zero value takes all defaults.
type Config struct {
	// Capacity is the per-series ring size (count retention). Default
	// 1024 samples; at a 10 ms reporting period that is ~10 s of
	// history per field.
	Capacity int
	// MaxAge drops samples older than now-MaxAge relative to the newest
	// appended timestamp (age retention), pruned lazily. 0 disables.
	MaxAge time.Duration
	// RawCapacity is the per-(agent, fn) raw-payload ring size. Default
	// 64 payloads.
	RawCapacity int
	// Shards is the lock-stripe count, rounded up to a power of two.
	// Default 16.
	Shards int
	// Compress turns the ring into a write head: when it fills (or its
	// oldest sample exceeds MaxAge), it is sealed into an immutable
	// delta-of-delta + XOR compressed chunk (docs/TSDB.md) instead of
	// overwriting the oldest sample, and retention operates on the
	// chunk chain. Off by default — the zero-configuration store keeps
	// the raw overwrite-ring behavior.
	Compress bool
	// MaxChunks bounds the per-series sealed-chunk chain (count
	// retention at chunk granularity, Compress only). The oldest chunk
	// folds into the downsampling tiers when the chain exceeds it.
	// Default 16.
	MaxChunks int
	// Tier1Cap and Tier2Cap bound the per-series 1-second and 1-minute
	// downsampling tier rings, in buckets (Compress only). Defaults
	// 4096 (~68 min at full occupancy) and 2048 (~34 h).
	Tier1Cap int
	Tier2Cap int
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Capacity <= 0 {
		out.Capacity = 1024
	}
	if out.RawCapacity <= 0 {
		out.RawCapacity = 64
	}
	if out.Shards <= 0 {
		out.Shards = 16
	}
	if out.MaxChunks <= 0 {
		out.MaxChunks = 16
	}
	if out.Tier1Cap <= 0 {
		out.Tier1Cap = 4096
	}
	if out.Tier2Cap <= 0 {
		out.Tier2Cap = 2048
	}
	n := 1
	for n < out.Shards {
		n <<= 1
	}
	out.Shards = n
	return out
}

// series is one scalar series: a write-head ring plus, under
// Config.Compress, a chain of sealed compressed chunks and two
// downsampling tiers. ts and vs are parallel circular buffers: entry i
// (0 ≤ i < n) lives at (head+i) % cap, oldest first. chunks holds
// sealed immutable blocks oldest first; t1/t2 are the 1 s / 1 min
// summary rings (nil when compression is off).
type series struct {
	mu     sync.Mutex
	ts     []int64
	vs     []float64
	head   int
	n      int
	chunks []*chunk
	t1, t2 *tier
}

// chunkSamples is the total sample count across sealed chunks.
func (se *series) chunkSamples() int {
	n := 0
	for _, ck := range se.chunks {
		n += ck.count
	}
	return n
}

// rawKey identifies one raw-payload archive ring.
type rawKey struct {
	Agent uint32
	Fn    uint16
}

// rawSeries archives whole SM payloads in a ring of pooled buffers.
type rawSeries struct {
	mu   sync.Mutex
	ts   []int64
	bufs [][]byte
	head int
	n    int
}

type shard struct {
	mu     sync.RWMutex
	series map[SeriesKey]*series
	raw    map[rawKey]*rawSeries
}

// AppendHook observes every stored sample, after it is in the ring. It
// runs on the ingest hot path under the series lock released — the hook
// must not block and must not allocate (the Append ≤1-alloc gate in
// scripts/verify.sh runs with a hook registered). The obs stream hub
// uses it to publish live deltas to control-room clients.
type AppendHook func(k SeriesKey, ts int64, v float64)

// Store is a sharded, bounded, in-memory time-series database.
type Store struct {
	cfg    Config
	maxAge int64 // ns; 0 = disabled
	shards []shard
	mask   uint32
	hook   atomic.Pointer[AppendHook]
}

// New returns a Store with the given configuration.
func New(cfg Config) *Store {
	cfg = cfg.withDefaults()
	s := &Store{
		cfg:    cfg,
		maxAge: int64(cfg.MaxAge),
		shards: make([]shard, cfg.Shards),
		mask:   uint32(cfg.Shards - 1),
	}
	for i := range s.shards {
		s.shards[i].series = make(map[SeriesKey]*series)
		s.shards[i].raw = make(map[rawKey]*rawSeries)
	}
	return s
}

// Config returns the store's resolved configuration.
func (s *Store) Config() Config { return s.cfg }

func (s *Store) shardFor(k SeriesKey) *shard {
	h := k.Agent*0x9e3779b1 ^ uint32(k.Fn)<<16 ^ uint32(k.UE)<<3 ^ uint32(k.Field)
	h ^= h >> 13
	return &s.shards[h&s.mask]
}

func (s *Store) shardForRaw(k rawKey) *shard {
	h := k.Agent*0x9e3779b1 ^ uint32(k.Fn)<<16
	h ^= h >> 13
	return &s.shards[h&s.mask]
}

// Append records one sample. Samples are expected in non-decreasing
// timestamp order per series; an out-of-order sample is still stored
// (rings do not re-sort) but age pruning keys off the newest TS seen.
// Steady-state cost: one shard RLock, one map lookup, one series lock,
// two ring writes — zero allocations once the series exists.
func (s *Store) Append(k SeriesKey, ts int64, v float64) {
	sh := s.shardFor(k)
	sh.mu.RLock()
	se := sh.series[k]
	sh.mu.RUnlock()
	if se == nil {
		se = s.newSeries()
		sh.mu.Lock()
		if cur := sh.series[k]; cur != nil {
			se = cur // lost the race; use the winner
		} else {
			sh.series[k] = se
			tel.series.Add(1)
		}
		sh.mu.Unlock()
	}
	se.mu.Lock()
	c := len(se.ts)
	if se.n == c {
		if s.cfg.Compress {
			// Write head full: seal it into a compressed chunk. The
			// head restarts empty, so this costs one encoder pass per
			// Capacity appends — amortized, off the 0-alloc fast path.
			s.sealLocked(se, ts)
		} else {
			// Ring full: overwrite the oldest.
			se.head = (se.head + 1) % c
			se.n--
			tel.overwritten.Inc()
		}
	}
	if s.maxAge > 0 && s.cfg.Compress && se.n > 0 && se.ts[se.head] < ts-s.maxAge {
		// Age-based seal: the head's oldest sample left the raw
		// window, so move the whole head into the chunk domain where
		// retention folds it into tiers instead of deleting it.
		s.sealLocked(se, ts)
	}
	i := (se.head + se.n) % c
	se.ts[i] = ts
	se.vs[i] = v
	se.n++
	if s.maxAge > 0 && !s.cfg.Compress {
		se.pruneLocked(ts - s.maxAge)
	}
	se.mu.Unlock()
	tel.appends.Inc()
	if h := s.hook.Load(); h != nil {
		(*h)(k, ts, v)
	}
}

// SetAppendHook installs (or, with nil, removes) the store's append
// hook. At most one hook is active; installation is atomic, so it may
// race live appends — samples stored while the swap is in flight may
// see either hook.
func (s *Store) SetAppendHook(h AppendHook) {
	if h == nil {
		s.hook.Store(nil)
		return
	}
	s.hook.Store(&h)
}

// newSeries allocates an empty series shaped by the store's config.
func (s *Store) newSeries() *series {
	se := &series{
		ts: make([]int64, s.cfg.Capacity),
		vs: make([]float64, s.cfg.Capacity),
	}
	if s.cfg.Compress {
		se.t2 = newTier(tier2Width, s.cfg.Tier2Cap, nil)
		se.t1 = newTier(tier1Width, s.cfg.Tier1Cap, se.t2)
	}
	return se
}

// sealLocked compresses the write head into a chunk, appends it to the
// chain, resets the head, and enforces chunk retention. now is the
// newest appended timestamp (age retention cutoff). Caller holds se.mu.
func (s *Store) sealLocked(se *series, now int64) {
	if se.n == 0 {
		return
	}
	start := time.Now()
	var enc chunkEncoder
	c := len(se.ts)
	for i := 0; i < se.n; i++ {
		j := (se.head + i) % c
		enc.add(se.ts[j], se.vs[j])
	}
	ck := enc.seal()
	se.chunks = append(se.chunks, ck)
	se.head, se.n = 0, 0
	tel.chunksSealed.Inc()
	tel.chunkBytes.Add(uint64(ck.sizeBytes()))
	tel.sealLat.Observe(time.Since(start))
	s.retainChunksLocked(se, now)
}

// retainChunksLocked folds chunks that left the raw retention window —
// by chain length (MaxChunks) or age (MaxAge) — into the downsampling
// tiers, oldest first. Caller holds se.mu.
func (s *Store) retainChunksLocked(se *series, now int64) {
	for len(se.chunks) > s.cfg.MaxChunks {
		s.foldOldestLocked(se)
	}
	if s.maxAge > 0 {
		cutoff := now - s.maxAge
		for len(se.chunks) > 0 && se.chunks[0].lastTS < cutoff {
			s.foldOldestLocked(se)
		}
	}
}

// foldOldestLocked decompresses the oldest chunk into tier 1 and drops
// it from the chain. Caller holds se.mu.
func (s *Store) foldOldestLocked(se *series) {
	ck := se.chunks[0]
	copy(se.chunks, se.chunks[1:])
	se.chunks[len(se.chunks)-1] = nil
	se.chunks = se.chunks[:len(se.chunks)-1]
	if se.t1 != nil {
		it := ck.iter()
		for it.next() {
			se.t1.foldSample(it.ts, it.v)
		}
	}
	tel.tierFolds.Inc()
}

// pruneLocked drops samples with TS < cutoff from the tail. Caller
// holds se.mu.
func (se *series) pruneLocked(cutoff int64) {
	c := len(se.ts)
	for se.n > 0 && se.ts[se.head] < cutoff {
		se.head = (se.head + 1) % c
		se.n--
	}
}

// AppendRaw archives one raw SM payload for (agent, fn). The payload is
// copied into a pooled buffer; the caller keeps ownership of its slice.
// When the ring wraps, the overwritten slot's buffer is recycled, so a
// steady stream archives with zero steady-state allocations.
func (s *Store) AppendRaw(agent uint32, fn uint16, ts int64, payload []byte) {
	k := rawKey{Agent: agent, Fn: fn}
	sh := s.shardForRaw(k)
	sh.mu.RLock()
	rs := sh.raw[k]
	sh.mu.RUnlock()
	if rs == nil {
		rs = &rawSeries{
			ts:   make([]int64, s.cfg.RawCapacity),
			bufs: make([][]byte, s.cfg.RawCapacity),
		}
		sh.mu.Lock()
		if cur := sh.raw[k]; cur != nil {
			rs = cur
		} else {
			sh.raw[k] = rs
		}
		sh.mu.Unlock()
	}
	rs.mu.Lock()
	c := len(rs.ts)
	var i int
	if rs.n == c {
		i = rs.head
		rs.head = (rs.head + 1) % c
		rs.n--
		tel.overwritten.Inc()
	} else {
		i = (rs.head + rs.n) % c
	}
	// Reuse the slot's buffer when it fits; otherwise recycle it and
	// fetch one sized for this payload.
	buf := rs.bufs[i]
	if cap(buf) < len(payload) {
		if buf != nil {
			bufpool.Put(buf)
		}
		buf = bufpool.Get(len(payload))
	}
	buf = buf[:len(payload)]
	copy(buf, payload)
	rs.ts[i] = ts
	rs.bufs[i] = buf
	rs.n++
	rs.mu.Unlock()
	tel.appends.Inc()
	tel.rawBytes.Add(uint64(len(payload)))
}

// LastRaw appends a copy of the newest archived payload for (agent, fn)
// to dst (which may be nil) and returns it with its timestamp. ok is
// false when nothing is archived.
func (s *Store) LastRaw(agent uint32, fn uint16, dst []byte) (payload []byte, ts int64, ok bool) {
	k := rawKey{Agent: agent, Fn: fn}
	sh := s.shardForRaw(k)
	sh.mu.RLock()
	rs := sh.raw[k]
	sh.mu.RUnlock()
	if rs == nil {
		return nil, 0, false
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.n == 0 {
		return nil, 0, false
	}
	i := (rs.head + rs.n - 1) % len(rs.ts)
	return append(dst[:0], rs.bufs[i]...), rs.ts[i], true
}

// RawCount returns how many payloads are archived for (agent, fn).
func (s *Store) RawCount(agent uint32, fn uint16) int {
	k := rawKey{Agent: agent, Fn: fn}
	sh := s.shardForRaw(k)
	sh.mu.RLock()
	rs := sh.raw[k]
	sh.mu.RUnlock()
	if rs == nil {
		return 0
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.n
}

// EvictAgent removes every series and raw archive belonging to agent,
// returning the archived buffers to the pool. Wired to the server's
// disconnect hook by ctrl.Monitor so reconnect churn cannot leak
// history.
func (s *Store) EvictAgent(agent uint32) {
	var evicted int64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k := range sh.series {
			if k.Agent == agent {
				delete(sh.series, k)
				evicted++
			}
		}
		for k, rs := range sh.raw {
			if k.Agent != agent {
				continue
			}
			delete(sh.raw, k)
			rs.mu.Lock()
			for j, b := range rs.bufs {
				if b != nil {
					bufpool.Put(b)
					rs.bufs[j] = nil
				}
			}
			rs.n = 0
			rs.mu.Unlock()
		}
		sh.mu.Unlock()
	}
	if evicted > 0 {
		tel.series.Add(-evicted)
		tel.evictions.Add(uint64(evicted))
	}
}

// NumSeries returns the live scalar-series count across all shards.
func (s *Store) NumSeries() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.series)
		sh.mu.RUnlock()
	}
	return n
}
