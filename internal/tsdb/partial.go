package tsdb

import (
	"math"
	"sort"
	"time"
)

// PartialAgg is the mergeable form of Agg: the commutative summary one
// shard computes locally so a federation root can combine per-shard
// results into a fleet-wide aggregate without shipping raw samples.
// Count/Min/Max/Sum (and hence Mean) merge exactly. Percentiles merge
// through a log-scale value histogram (DDSketch-style): each raw sample
// lands in bucket floor(log_gamma |v|), split by sign, with zeros
// counted apart; the union of shard histograms yields fleet percentiles
// accurate to one bucket (a relative-error bound of about
// (gamma-1)/2 ≈ 4%). Tier summaries carry no histogram, so a range
// served only from downsampling tiers degrades percentiles exactly like
// Agg does (P50 = Mean, P95 = P99 = Max).
//
// The JSON form is the shard obs server's /tsdb/partial payload; it is
// part of the federation wire contract (docs/FEDERATION.md).
type PartialAgg struct {
	Count   int     `json:"count"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Sum     float64 `json:"sum"`
	FirstTS int64   `json:"first_ts"`
	LastTS  int64   `json:"last_ts"`

	// Raw-sample bookkeeping for the counter rate: earliest and latest
	// raw sample across every merged input.
	RawN       int     `json:"raw_n"`
	RawFirstTS int64   `json:"raw_first_ts"`
	RawLastTS  int64   `json:"raw_last_ts"`
	FirstV     float64 `json:"first_v"`
	LastV      float64 `json:"last_v"`

	// Log-scale value histogram over raw samples. Keys are bucket
	// indices floor(log_gamma |v|); Go's encoding/json round-trips
	// int-keyed maps as string-keyed objects.
	Zeros int         `json:"zeros,omitempty"`
	Pos   map[int]int `json:"pos,omitempty"`
	Neg   map[int]int `json:"neg,omitempty"`
}

// PartialBucket is one window of a federated windowed query.
type PartialBucket struct {
	FromTS int64      `json:"from_ts"`
	ToTS   int64      `json:"to_ts"`
	Agg    PartialAgg `json:"agg"`
}

// HistGamma is the histogram's bucket growth factor. 1.08 keeps the
// merged-percentile relative error near 4% while a full CQI-to-bytes
// value range (1e0..1e9) still fits in ~270 buckets. Exported so
// consumers comparing percentiles across merges can express tolerances
// in buckets.
const HistGamma = 1.08

const histGamma = HistGamma

var logHistGamma = math.Log(histGamma)

// histIdx maps |v| (> 0) to its bucket index.
func histIdx(abs float64) int {
	return int(math.Floor(math.Log(abs) / logHistGamma))
}

// histRep returns the representative value of bucket idx: the midpoint
// of [gamma^idx, gamma^(idx+1)).
func histRep(idx int) float64 {
	lo := math.Exp(float64(idx) * logHistGamma)
	return lo * (1 + histGamma) / 2
}

// observe folds one raw sample into the partial.
func (p *PartialAgg) observe(ts int64, v float64) {
	if p.Count == 0 {
		p.Min, p.Max = v, v
		p.FirstTS = ts
	} else {
		if v < p.Min {
			p.Min = v
		}
		if v > p.Max {
			p.Max = v
		}
	}
	p.LastTS = ts
	p.Sum += v
	p.Count++
	if p.RawN == 0 {
		p.RawFirstTS, p.FirstV = ts, v
	}
	p.RawLastTS, p.LastV = ts, v
	p.RawN++
	switch {
	case v > 0:
		if p.Pos == nil {
			p.Pos = make(map[int]int)
		}
		p.Pos[histIdx(v)]++
	case v < 0:
		if p.Neg == nil {
			p.Neg = make(map[int]int)
		}
		p.Neg[histIdx(-v)]++
	default:
		p.Zeros++
	}
}

// observeBucket folds one downsampling-tier summary into the partial.
// Tier data carries no per-sample values, so the histogram is untouched
// and percentiles degrade (see type doc).
func (p *PartialAgg) observeBucket(start int64, count uint32, min, max, sum float64) {
	if count == 0 {
		return
	}
	if p.Count == 0 {
		p.Min, p.Max = min, max
		p.FirstTS = start
	} else {
		if min < p.Min {
			p.Min = min
		}
		if max > p.Max {
			p.Max = max
		}
	}
	p.LastTS = start
	p.Sum += sum
	p.Count += int(count)
}

// Merge folds src into p. Merging is commutative and associative up to
// float summation order; the federated golden test pins exact
// count/min/max/mean equality on integer-valued streams.
func (p *PartialAgg) Merge(src *PartialAgg) {
	if src.Count == 0 {
		return
	}
	if p.Count == 0 {
		p.Min, p.Max = src.Min, src.Max
		p.FirstTS = src.FirstTS
	} else {
		if src.Min < p.Min {
			p.Min = src.Min
		}
		if src.Max > p.Max {
			p.Max = src.Max
		}
		if src.FirstTS < p.FirstTS {
			p.FirstTS = src.FirstTS
		}
	}
	if src.LastTS > p.LastTS {
		p.LastTS = src.LastTS
	}
	p.Sum += src.Sum
	p.Count += src.Count
	if src.RawN > 0 {
		if p.RawN == 0 || src.RawFirstTS < p.RawFirstTS {
			p.RawFirstTS, p.FirstV = src.RawFirstTS, src.FirstV
		}
		if p.RawN == 0 || src.RawLastTS > p.RawLastTS {
			p.RawLastTS, p.LastV = src.RawLastTS, src.LastV
		}
		p.RawN += src.RawN
	}
	p.Zeros += src.Zeros
	for idx, n := range src.Pos {
		if p.Pos == nil {
			p.Pos = make(map[int]int, len(src.Pos))
		}
		p.Pos[idx] += n
	}
	for idx, n := range src.Neg {
		if p.Neg == nil {
			p.Neg = make(map[int]int, len(src.Neg))
		}
		p.Neg[idx] += n
	}
}

// quantile walks the histogram in value order — negative buckets by
// descending index (ascending value), zeros, positive buckets by
// ascending index — and returns the representative of the bucket
// holding the rank-q sample, clamped to [Min, Max]. The rank is the
// ceiling of the exact interpolated rank, so the estimate is
// upper-biased like the tier-only degradation (P95 = Max) rather than
// under-reporting tail latencies.
func (p *PartialAgg) quantile(q float64) float64 {
	rank := int(math.Ceil(q / 100 * float64(p.RawN-1)))
	cum := 0
	pick := func(rep float64, n int) (float64, bool) {
		cum += n
		if cum > rank {
			if rep < p.Min {
				rep = p.Min
			}
			if rep > p.Max {
				rep = p.Max
			}
			return rep, true
		}
		return 0, false
	}
	negIdx := make([]int, 0, len(p.Neg))
	for idx := range p.Neg {
		negIdx = append(negIdx, idx)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(negIdx)))
	for _, idx := range negIdx {
		if v, ok := pick(-histRep(idx), p.Neg[idx]); ok {
			return v
		}
	}
	if p.Zeros > 0 {
		if v, ok := pick(0, p.Zeros); ok {
			return v
		}
	}
	posIdx := make([]int, 0, len(p.Pos))
	for idx := range p.Pos {
		posIdx = append(posIdx, idx)
	}
	sort.Ints(posIdx)
	for _, idx := range posIdx {
		if v, ok := pick(histRep(idx), p.Pos[idx]); ok {
			return v
		}
	}
	return p.Max
}

// Finish resolves the partial into a client-facing Agg. ok is false
// when the partial is empty.
func (p *PartialAgg) Finish() (Agg, bool) {
	if p.Count == 0 {
		return Agg{}, false
	}
	a := Agg{
		Count:   p.Count,
		Min:     p.Min,
		Max:     p.Max,
		Mean:    p.Sum / float64(p.Count),
		FirstTS: p.FirstTS,
		LastTS:  p.LastTS,
	}
	if p.RawN > 0 {
		if dt := p.RawLastTS - p.RawFirstTS; dt > 0 {
			a.RatePerS = (p.LastV - p.FirstV) / (float64(dt) / 1e9)
		}
		a.P50 = p.quantile(50)
		a.P95 = p.quantile(95)
		a.P99 = p.quantile(99)
	} else {
		a.P50 = a.Mean
		a.P95 = a.Max
		a.P99 = a.Max
	}
	return a, true
}

// PartialAggregate computes the mergeable aggregate of one series over
// [from, to] — the same data walk as Aggregate, accumulated into the
// federation-mergeable form. ok is false when nothing falls in range.
func (s *Store) PartialAggregate(k SeriesKey, from, to int64) (PartialAgg, bool) {
	defer observeQuery(time.Now())
	se := s.lookup(k)
	if se == nil {
		return PartialAgg{}, false
	}
	var p PartialAgg
	se.mu.Lock()
	se.visitLocked(from, to, p.observeBucket, p.observe)
	se.mu.Unlock()
	return p, p.Count > 0
}

// PartialWindow is Window in mergeable form: [from, to) sliced into
// step-width buckets, each a PartialAgg. Shards answering the same
// (from, to, step) produce aligned bucket lists the root merges
// index-by-index with MergePartialWindows.
func (s *Store) PartialWindow(k SeriesKey, from, to, step int64) []PartialBucket {
	defer observeQuery(time.Now())
	if step <= 0 || to <= from {
		return nil
	}
	const maxBuckets = 4096
	nb := (to - from + step - 1) / step
	if nb > maxBuckets {
		nb = maxBuckets
		to = from + nb*step
	}
	out := make([]PartialBucket, nb)
	for b := int64(0); b < nb; b++ {
		lo := from + b*step
		hi := lo + step
		if hi > to {
			hi = to
		}
		out[b] = PartialBucket{FromTS: lo, ToTS: hi}
	}
	if se := s.lookup(k); se != nil {
		se.mu.Lock()
		se.visitLocked(from, to-1, func(start int64, count uint32, min, max, sum float64) {
			out[(start-from)/step].Agg.observeBucket(start, count, min, max, sum)
		}, func(ts int64, v float64) {
			out[(ts-from)/step].Agg.observe(ts, v)
		})
		se.mu.Unlock()
	}
	return out
}

// MergePartialWindows folds src into dst bucket-by-bucket and returns
// dst. A nil dst adopts a deep copy of src. Bucket lists must come from
// the same (from, to, step) — they are matched by index; a length
// mismatch keeps dst's extent and merges the overlap.
func MergePartialWindows(dst, src []PartialBucket) []PartialBucket {
	if dst == nil {
		dst = make([]PartialBucket, len(src))
		for i := range src {
			dst[i] = PartialBucket{FromTS: src[i].FromTS, ToTS: src[i].ToTS}
		}
	}
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	for i := 0; i < n; i++ {
		dst[i].Agg.Merge(&src[i].Agg)
	}
	return dst
}
