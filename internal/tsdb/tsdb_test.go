package tsdb

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func key(agent uint32, ue uint16, f Field) SeriesKey {
	return SeriesKey{Agent: agent, Fn: 143, UE: ue, Field: f}
}

func TestRingCountRetention(t *testing.T) {
	s := New(Config{Capacity: 4})
	k := key(1, 1, FieldSojournMS)
	for i := 0; i < 10; i++ {
		s.Append(k, int64(i), float64(i))
	}
	got := s.LastK(k, 100, nil)
	if len(got) != 4 {
		t.Fatalf("ring length %d, want 4", len(got))
	}
	for i, sm := range got {
		want := float64(6 + i)
		if sm.V != want || sm.TS != int64(6+i) {
			t.Fatalf("sample %d = %+v, want v=%v", i, sm, want)
		}
	}
}

func TestAgeRetention(t *testing.T) {
	s := New(Config{Capacity: 128, MaxAge: 10 * time.Nanosecond})
	k := key(1, 1, FieldCQI)
	for i := int64(0); i <= 100; i += 10 {
		s.Append(k, i, float64(i))
	}
	// Newest TS is 100; cutoff 90: samples at 90 and 100 survive.
	got := s.LastK(k, 100, nil)
	if len(got) != 2 || got[0].TS != 90 || got[1].TS != 100 {
		t.Fatalf("age retention kept %+v", got)
	}
}

func TestLastKAndRange(t *testing.T) {
	s := New(Config{Capacity: 64})
	k := key(2, 7, FieldTxBytes)
	for i := 0; i < 20; i++ {
		s.Append(k, int64(i*100), float64(i))
	}
	last3 := s.LastK(k, 3, nil)
	if len(last3) != 3 || last3[0].V != 17 || last3[2].V != 19 {
		t.Fatalf("last3 = %+v", last3)
	}
	rng := s.Range(k, 500, 900, nil)
	if len(rng) != 5 || rng[0].TS != 500 || rng[4].TS != 900 {
		t.Fatalf("range = %+v", rng)
	}
	// Missing series.
	if got := s.LastK(key(9, 9, FieldCQI), 5, nil); len(got) != 0 {
		t.Fatalf("missing series returned %+v", got)
	}
	// Reusing dst must not allocate new backing arrays.
	buf := make([]Sample, 0, 32)
	out := s.LastK(k, 10, buf)
	if len(out) != 10 || cap(out) != 32 {
		t.Fatalf("dst reuse: len=%d cap=%d", len(out), cap(out))
	}
}

// TestGoldenWindowedAggregates is the acceptance golden test: a
// 10k-sample series with v(i)=i at ts(i)=i·1e6 ns has analytically
// known aggregates, overall and per 1 s window.
func TestGoldenWindowedAggregates(t *testing.T) {
	s := New(Config{Capacity: 16384})
	k := key(3, 1, FieldThroughputBps)
	const n = 10000
	for i := 0; i < n; i++ {
		s.Append(k, int64(i)*1e6, float64(i))
	}
	agg, ok := s.Aggregate(k, 0, math.MaxInt64)
	if !ok {
		t.Fatal("no aggregate")
	}
	approx := func(name string, got, want float64) {
		t.Helper()
		if math.Abs(got-want) > 1e-6*math.Max(1, math.Abs(want)) {
			t.Fatalf("%s = %v, want %v", name, got, want)
		}
	}
	if agg.Count != n {
		t.Fatalf("count %d", agg.Count)
	}
	approx("min", agg.Min, 0)
	approx("max", agg.Max, 9999)
	approx("mean", agg.Mean, 4999.5)
	// Interpolated order statistics: rank = p/100·(n-1).
	approx("p50", agg.P50, 4999.5)
	approx("p95", agg.P95, 9499.05)
	approx("p99", agg.P99, 9899.01)
	// Counter rate: 9999 units over 9.999 s.
	approx("rate", agg.RatePerS, 9999/9.999)

	// 1 s windows: bucket b holds values [1000b, 1000b+999].
	buckets := s.Window(k, 0, n*1e6, 1e9)
	if len(buckets) != 10 {
		t.Fatalf("%d buckets", len(buckets))
	}
	for b, bk := range buckets {
		base := float64(1000 * b)
		if bk.Agg.Count != 1000 {
			t.Fatalf("bucket %d count %d", b, bk.Agg.Count)
		}
		approx(fmt.Sprintf("bucket %d mean", b), bk.Agg.Mean, base+499.5)
		approx(fmt.Sprintf("bucket %d max", b), bk.Agg.Max, base+999)
		approx(fmt.Sprintf("bucket %d p99", b), bk.Agg.P99, base+989.01)
	}
	// Empty window: continuous buckets with zero Agg.
	empty := s.Window(k, 20e9, 22e9, 1e9)
	if len(empty) != 2 || empty[0].Agg.Count != 0 {
		t.Fatalf("empty windows = %+v", empty)
	}
}

func TestRawArchive(t *testing.T) {
	s := New(Config{RawCapacity: 3})
	payload := func(i int) []byte {
		b := make([]byte, 100)
		for j := range b {
			b[j] = byte(i)
		}
		return b
	}
	for i := 0; i < 5; i++ {
		s.AppendRaw(7, 142, int64(i), payload(i))
	}
	if n := s.RawCount(7, 142); n != 3 {
		t.Fatalf("raw count %d", n)
	}
	got, ts, ok := s.LastRaw(7, 142, nil)
	if !ok || ts != 4 || got[0] != 4 || len(got) != 100 {
		t.Fatalf("last raw: ok=%v ts=%d b=%v", ok, ts, got[:1])
	}
	// The returned slice is a copy: mutating it must not corrupt the
	// archive.
	got[0] = 0xFF
	again, _, _ := s.LastRaw(7, 142, nil)
	if again[0] != 4 {
		t.Fatal("LastRaw must return a copy")
	}
	// dst reuse path.
	buf := make([]byte, 0, 256)
	out, _, _ := s.LastRaw(7, 142, buf)
	if len(out) != 100 || cap(out) != 256 {
		t.Fatalf("dst reuse: len=%d cap=%d", len(out), cap(out))
	}
	if _, _, ok := s.LastRaw(7, 999, nil); ok {
		t.Fatal("missing raw archive must report !ok")
	}
}

func TestEvictAgent(t *testing.T) {
	s := New(Config{Capacity: 16})
	for agent := uint32(1); agent <= 3; agent++ {
		for ue := uint16(1); ue <= 4; ue++ {
			s.Append(key(agent, ue, FieldCQI), 1, 1)
		}
		s.AppendRaw(agent, 142, 1, []byte{1, 2, 3})
	}
	if n := s.NumSeries(); n != 12 {
		t.Fatalf("series %d", n)
	}
	s.EvictAgent(2)
	if n := s.NumSeries(); n != 8 {
		t.Fatalf("series after evict %d", n)
	}
	if n := s.RawCount(2, 142); n != 0 {
		t.Fatalf("raw survived evict: %d", n)
	}
	if len(s.List(2, 0)) != 0 {
		t.Fatal("List shows evicted agent")
	}
	if n := s.RawCount(1, 142); n != 1 {
		t.Fatal("evict touched another agent's archive")
	}
}

func TestList(t *testing.T) {
	s := New(Config{Capacity: 16})
	s.Append(SeriesKey{Agent: 1, Fn: 142, UE: 1, Field: FieldCQI}, 10, 5)
	s.Append(SeriesKey{Agent: 1, Fn: 142, UE: 1, Field: FieldCQI}, 20, 6)
	s.Append(SeriesKey{Agent: 1, Fn: 143, UE: 2, Field: FieldSojournMS}, 30, 7)
	s.Append(SeriesKey{Agent: 2, Fn: 142, UE: 1, Field: FieldMCS}, 40, 8)

	all := s.List(-1, 0)
	if len(all) != 3 {
		t.Fatalf("list all = %+v", all)
	}
	if all[0].Key.Agent != 1 || all[0].Field != "cqi" || all[0].Count != 2 ||
		all[0].OldestTS != 10 || all[0].NewestTS != 20 {
		t.Fatalf("list[0] = %+v", all[0])
	}
	if got := s.List(1, 143); len(got) != 1 || got[0].Key.UE != 2 {
		t.Fatalf("filtered list = %+v", got)
	}
}

func TestParseField(t *testing.T) {
	for f := Field(0); f < numFields; f++ {
		got, ok := ParseField(f.String())
		if !ok || got != f {
			t.Fatalf("roundtrip %v", f)
		}
	}
	if _, ok := ParseField("bogus"); ok {
		t.Fatal("bogus field parsed")
	}
	if Field(200).String() != "unknown" {
		t.Fatal("out-of-range field name")
	}
}

// TestConcurrentAppendQueryEvict is the -race stress: writers, readers,
// and an evictor hammer overlapping keys.
func TestConcurrentAppendQueryEvict(t *testing.T) {
	s := New(Config{Capacity: 64, RawCapacity: 8, Shards: 4})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := int64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				i++
				k := key(uint32(w%2), uint16(i%8), Field(i%int64(numFields)))
				s.Append(k, i, float64(i))
				s.AppendRaw(uint32(w%2), 142, i, []byte{byte(i), byte(w)})
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var dst []Sample
			var raw []byte
			for i := int64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := key(uint32(r%2), uint16(i%8), Field(i%int64(numFields)))
				dst = s.LastK(k, 16, dst)
				s.Aggregate(k, 0, math.MaxInt64)
				s.Window(k, 0, 1e6, 1e4)
				raw, _, _ = s.LastRaw(uint32(r%2), 142, raw)
				s.List(int64(r%2), 0)
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s.EvictAgent(uint32(i % 2))
			time.Sleep(time.Millisecond)
		}
	}()
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestConfigDefaults(t *testing.T) {
	s := New(Config{Shards: 5})
	cfg := s.Config()
	if cfg.Shards != 8 || cfg.Capacity != 1024 || cfg.RawCapacity != 64 {
		t.Fatalf("defaults: %+v", cfg)
	}
}

// TestAppendHook: the hook sees every stored sample with the stored
// key/timestamp/value, uninstalling stops delivery, and the hot path is
// unchanged when no hook is set.
func TestAppendHook(t *testing.T) {
	s := New(Config{Capacity: 8})
	type rec struct {
		k  SeriesKey
		ts int64
		v  float64
	}
	var mu sync.Mutex
	var got []rec
	s.SetAppendHook(func(k SeriesKey, ts int64, v float64) {
		mu.Lock()
		got = append(got, rec{k, ts, v})
		mu.Unlock()
	})
	k := key(1, 2, FieldCQI)
	s.Append(k, 10, 1.5)
	s.Append(k, 20, 2.5)
	s.SetAppendHook(nil)
	s.Append(k, 30, 3.5) // after uninstall: not observed
	mu.Lock()
	defer mu.Unlock()
	want := []rec{{k, 10, 1.5}, {k, 20, 2.5}}
	if len(got) != len(want) {
		t.Fatalf("hook saw %d samples, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("hook[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	// The samples must all be in the store regardless of hook state.
	if n := len(s.LastK(k, 8, nil)); n != 3 {
		t.Errorf("stored %d samples, want 3", n)
	}
}

// TestAppendHookConcurrent races SetAppendHook against live appends —
// the swap is atomic, so this must be clean under -race.
func TestAppendHookConcurrent(t *testing.T) {
	s := New(Config{Capacity: 64})
	k := key(9, 1, FieldMCS)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s.Append(k, int64(i), float64(i))
		}
	}()
	var seen atomic.Uint64
	h := func(SeriesKey, int64, float64) { seen.Add(1) }
	for i := 0; i < 200; i++ {
		s.SetAppendHook(h)
		s.SetAppendHook(nil)
	}
	s.SetAppendHook(h)
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
	if seen.Load() == 0 {
		t.Fatal("hook never fired")
	}
}
