package tsdb

import (
	"sort"
	"time"

	"flexric/internal/metrics"
)

// Agg summarizes the samples of one series over a time range: the
// windowed-aggregate unit control loops consume instead of single
// latest reports.
type Agg struct {
	Count int     `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	// RatePerS is the counter-style rate: (last - first) value delta
	// per second of series time. Meaningful for monotonic fields
	// (tx_bytes, tx_packets); for gauges use Mean.
	RatePerS float64 `json:"rate_per_s"`
	P50      float64 `json:"p50"`
	P95      float64 `json:"p95"`
	P99      float64 `json:"p99"`
	FirstTS  int64   `json:"first_ts"`
	LastTS   int64   `json:"last_ts"`
}

// Bucket is one window of a windowed aggregate query.
type Bucket struct {
	FromTS int64 `json:"from_ts"`
	ToTS   int64 `json:"to_ts"`
	Agg    Agg   `json:"agg"`
}

// SeriesInfo describes one live series for enumeration.
type SeriesInfo struct {
	Key      SeriesKey `json:"key"`
	Field    string    `json:"field"`
	Count    int       `json:"count"`
	OldestTS int64     `json:"oldest_ts"`
	NewestTS int64     `json:"newest_ts"`
}

// lookup returns the series for k, or nil.
func (s *Store) lookup(k SeriesKey) *series {
	sh := s.shardFor(k)
	sh.mu.RLock()
	se := sh.series[k]
	sh.mu.RUnlock()
	return se
}

// LastK appends the newest k samples of the series (oldest first) to
// dst and returns it. A nil dst allocates; callers polling repeatedly
// reuse their slice to stay allocation-free.
func (s *Store) LastK(k SeriesKey, count int, dst []Sample) []Sample {
	defer observeQuery(time.Now())
	se := s.lookup(k)
	if se == nil || count <= 0 {
		return dst[:0]
	}
	se.mu.Lock()
	defer se.mu.Unlock()
	if count > se.n {
		count = se.n
	}
	c := len(se.ts)
	dst = dst[:0]
	for i := se.n - count; i < se.n; i++ {
		j := (se.head + i) % c
		dst = append(dst, Sample{TS: se.ts[j], V: se.vs[j]})
	}
	return dst
}

// Range appends the samples with from ≤ TS ≤ to (oldest first) to dst
// and returns it.
func (s *Store) Range(k SeriesKey, from, to int64, dst []Sample) []Sample {
	defer observeQuery(time.Now())
	dst = dst[:0]
	se := s.lookup(k)
	if se == nil {
		return dst
	}
	se.mu.Lock()
	defer se.mu.Unlock()
	c := len(se.ts)
	for i := 0; i < se.n; i++ {
		j := (se.head + i) % c
		if se.ts[j] < from || se.ts[j] > to {
			continue
		}
		dst = append(dst, Sample{TS: se.ts[j], V: se.vs[j]})
	}
	return dst
}

// Aggregate computes the windowed aggregate of one series over
// [from, to]. ok is false when no sample falls in the range.
func (s *Store) Aggregate(k SeriesKey, from, to int64) (Agg, bool) {
	defer observeQuery(time.Now())
	se := s.lookup(k)
	if se == nil {
		return Agg{}, false
	}
	se.mu.Lock()
	agg, _, ok := se.aggregateLocked(from, to, nil)
	se.mu.Unlock()
	return agg, ok
}

// aggregateLocked computes the aggregate over [from, to] using scratch
// for the percentile sort, returning the (possibly grown) scratch for
// reuse across windows. Caller holds se.mu.
func (se *series) aggregateLocked(from, to int64, scratch []float64) (Agg, []float64, bool) {
	c := len(se.ts)
	vals := scratch[:0]
	var agg Agg
	for i := 0; i < se.n; i++ {
		j := (se.head + i) % c
		ts, v := se.ts[j], se.vs[j]
		if ts < from || ts > to {
			continue
		}
		if agg.Count == 0 {
			agg.Min, agg.Max = v, v
			agg.FirstTS = ts
		} else {
			if v < agg.Min {
				agg.Min = v
			}
			if v > agg.Max {
				agg.Max = v
			}
		}
		agg.LastTS = ts
		agg.Mean += v // sum for now
		agg.Count++
		vals = append(vals, v)
	}
	if agg.Count == 0 {
		return Agg{}, vals, false
	}
	first, last := vals[0], vals[len(vals)-1]
	agg.Mean /= float64(agg.Count)
	if dt := agg.LastTS - agg.FirstTS; dt > 0 {
		agg.RatePerS = (last - first) / (float64(dt) / 1e9)
	}
	sort.Float64s(vals)
	agg.P50 = metrics.PercentileFloats(vals, 50)
	agg.P95 = metrics.PercentileFloats(vals, 95)
	agg.P99 = metrics.PercentileFloats(vals, 99)
	return agg, vals, true
}

// Window slices [from, to) into fixed step-width buckets and aggregates
// each; buckets with no samples are returned with a zero Agg so the
// series of buckets is continuous. step must be positive; the number of
// buckets is capped at 4096 to bound response sizes.
func (s *Store) Window(k SeriesKey, from, to, step int64) []Bucket {
	defer observeQuery(time.Now())
	if step <= 0 || to <= from {
		return nil
	}
	const maxBuckets = 4096
	nb := (to - from + step - 1) / step
	if nb > maxBuckets {
		nb = maxBuckets
		to = from + nb*step
	}
	out := make([]Bucket, 0, nb)
	se := s.lookup(k)
	var scratch []float64
	for b := int64(0); b < nb; b++ {
		lo := from + b*step
		hi := lo + step - 1 // inclusive range per bucket
		if hi >= to {
			hi = to - 1
		}
		bk := Bucket{FromTS: lo, ToTS: hi + 1}
		if se != nil {
			se.mu.Lock()
			agg, grown, ok := se.aggregateLocked(lo, hi, scratch)
			se.mu.Unlock()
			scratch = grown
			if ok {
				bk.Agg = agg
			}
		}
		out = append(out, bk)
	}
	return out
}

// List enumerates live series, optionally filtered: agent < 0 matches
// all agents, fn == 0 all functions. The result is sorted by key for
// stable output.
func (s *Store) List(agent int64, fn uint16) []SeriesInfo {
	defer observeQuery(time.Now())
	var out []SeriesInfo
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, se := range sh.series {
			if agent >= 0 && k.Agent != uint32(agent) {
				continue
			}
			if fn != 0 && k.Fn != fn {
				continue
			}
			se.mu.Lock()
			info := SeriesInfo{Key: k, Field: k.Field.String(), Count: se.n}
			if se.n > 0 {
				c := len(se.ts)
				info.OldestTS = se.ts[se.head]
				info.NewestTS = se.ts[(se.head+se.n-1)%c]
			}
			se.mu.Unlock()
			out = append(out, info)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Key, out[j].Key
		if a.Agent != b.Agent {
			return a.Agent < b.Agent
		}
		if a.Fn != b.Fn {
			return a.Fn < b.Fn
		}
		if a.UE != b.UE {
			return a.UE < b.UE
		}
		return a.Field < b.Field
	})
	return out
}
