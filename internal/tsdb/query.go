package tsdb

import (
	"sort"
	"time"

	"flexric/internal/metrics"
)

// Agg summarizes the samples of one series over a time range: the
// windowed-aggregate unit control loops consume instead of single
// latest reports.
//
// Over compressed series a range may be served partly or wholly from
// downsampling tiers (count/min/max/sum buckets). Count, Min, Max and
// Mean merge exactly across raw and tier data. RatePerS and the
// percentiles need raw samples: with none in range, RatePerS is 0 and
// the percentiles degrade to the documented approximation (P50 = Mean,
// P95 = P99 = Max). See docs/TSDB.md.
type Agg struct {
	Count int     `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	// RatePerS is the counter-style rate: (last - first) value delta
	// per second of series time. Meaningful for monotonic fields
	// (tx_bytes, tx_packets); for gauges use Mean.
	RatePerS float64 `json:"rate_per_s"`
	P50      float64 `json:"p50"`
	P95      float64 `json:"p95"`
	P99      float64 `json:"p99"`
	FirstTS  int64   `json:"first_ts"`
	LastTS   int64   `json:"last_ts"`
}

// Bucket is one window of a windowed aggregate query.
type Bucket struct {
	FromTS int64 `json:"from_ts"`
	ToTS   int64 `json:"to_ts"`
	Agg    Agg   `json:"agg"`
}

// SeriesInfo describes one live series for enumeration. Count is the
// raw retained sample count (write head + sealed chunks); Chunks and
// TierSamples report the compressed-side occupancy (both zero on
// uncompressed stores).
type SeriesInfo struct {
	Key         SeriesKey `json:"key"`
	Field       string    `json:"field"`
	Count       int       `json:"count"`
	Chunks      int       `json:"chunks,omitempty"`
	TierSamples int       `json:"tier_samples,omitempty"`
	OldestTS    int64     `json:"oldest_ts"`
	NewestTS    int64     `json:"newest_ts"`
}

// lookup returns the series for k, or nil.
func (s *Store) lookup(k SeriesKey) *series {
	sh := s.shardFor(k)
	sh.mu.RLock()
	se := sh.series[k]
	sh.mu.RUnlock()
	return se
}

// aggState accumulates one Agg from raw samples and tier buckets,
// visited oldest-first. It reproduces the pre-compression aggregation
// exactly when fed only samples (the golden windowed-aggregate test
// pins this), and merges tier summaries losslessly for
// count/min/max/mean.
type aggState struct {
	agg  Agg
	vals []float64 // raw sample values, for the percentile sort
	// First/last raw sample, in visit order, for the counter rate.
	rawN                  int
	firstRawTS, lastRawTS int64
	firstV, lastV         float64
}

func (a *aggState) addSample(ts int64, v float64) {
	if a.agg.Count == 0 {
		a.agg.Min, a.agg.Max = v, v
		a.agg.FirstTS = ts
	} else {
		if v < a.agg.Min {
			a.agg.Min = v
		}
		if v > a.agg.Max {
			a.agg.Max = v
		}
	}
	a.agg.LastTS = ts
	a.agg.Mean += v // sum until finish
	a.agg.Count++
	a.vals = append(a.vals, v)
	if a.rawN == 0 {
		a.firstRawTS, a.firstV = ts, v
	}
	a.lastRawTS, a.lastV = ts, v
	a.rawN++
}

func (a *aggState) addBucket(start int64, count uint32, min, max, sum float64) {
	if count == 0 {
		return
	}
	if a.agg.Count == 0 {
		a.agg.Min, a.agg.Max = min, max
		a.agg.FirstTS = start
	} else {
		if min < a.agg.Min {
			a.agg.Min = min
		}
		if max > a.agg.Max {
			a.agg.Max = max
		}
	}
	a.agg.LastTS = start
	a.agg.Mean += sum
	a.agg.Count += int(count)
}

func (a *aggState) finish() (Agg, bool) {
	if a.agg.Count == 0 {
		return Agg{}, false
	}
	a.agg.Mean /= float64(a.agg.Count)
	if a.rawN > 0 {
		if dt := a.lastRawTS - a.firstRawTS; dt > 0 {
			a.agg.RatePerS = (a.lastV - a.firstV) / (float64(dt) / 1e9)
		}
		sort.Float64s(a.vals)
		a.agg.P50 = metrics.PercentileFloats(a.vals, 50)
		a.agg.P95 = metrics.PercentileFloats(a.vals, 95)
		a.agg.P99 = metrics.PercentileFloats(a.vals, 99)
	} else {
		// Tier-only range: order statistics are not recoverable from
		// count/min/max/sum summaries. Documented approximation.
		a.agg.P50 = a.agg.Mean
		a.agg.P95 = a.agg.Max
		a.agg.P99 = a.agg.Max
	}
	return a.agg, true
}

// visitLocked walks the series' retained data in time order — tier-2
// buckets, tier-1 buckets, sealed chunks (chunk-at-a-time: blocks
// entirely outside [from, to] are skipped on their headers without
// decompression), then the write head — restricted to [from, to]
// inclusive. Tier summaries go to bucket (nil skips tiers), raw
// samples to sample. Caller holds se.mu.
func (se *series) visitLocked(from, to int64, bucket func(start int64, count uint32, min, max, sum float64), sample func(ts int64, v float64)) {
	if bucket != nil {
		if se.t2 != nil {
			se.t2.visit(from, to, bucket)
		}
		if se.t1 != nil {
			se.t1.visit(from, to, bucket)
		}
	}
	for _, ck := range se.chunks {
		if ck.lastTS < from || ck.firstTS > to {
			continue
		}
		it := ck.iter()
		for it.next() {
			if it.ts < from || it.ts > to {
				continue
			}
			sample(it.ts, it.v)
		}
	}
	c := len(se.ts)
	for i := 0; i < se.n; i++ {
		j := (se.head + i) % c
		if se.ts[j] < from || se.ts[j] > to {
			continue
		}
		sample(se.ts[j], se.vs[j])
	}
}

// LastK appends the newest k samples of the series (oldest first) to
// dst and returns it. A nil dst allocates; callers polling repeatedly
// reuse their slice to stay allocation-free. On compressed series a k
// larger than the write head decompresses the newest chunks to serve
// the tail; tiers never contribute (they hold summaries, not samples).
func (s *Store) LastK(k SeriesKey, count int, dst []Sample) []Sample {
	defer observeQuery(time.Now())
	se := s.lookup(k)
	if se == nil || count <= 0 {
		return dst[:0]
	}
	se.mu.Lock()
	defer se.mu.Unlock()
	dst = dst[:0]
	need := count - se.n
	if need > 0 && len(se.chunks) > 0 {
		// Walk the chain backwards to find the oldest chunk we need,
		// then decompress forward, skipping the surplus prefix.
		total := 0
		first := len(se.chunks)
		for first > 0 && total < need {
			first--
			total += se.chunks[first].count
		}
		skip := total - need
		if skip < 0 {
			skip = 0
		}
		for _, ck := range se.chunks[first:] {
			it := ck.iter()
			for it.next() {
				if skip > 0 {
					skip--
					continue
				}
				dst = append(dst, Sample{TS: it.ts, V: it.v})
			}
		}
	}
	if count > se.n {
		count = se.n
	}
	c := len(se.ts)
	for i := se.n - count; i < se.n; i++ {
		j := (se.head + i) % c
		dst = append(dst, Sample{TS: se.ts[j], V: se.vs[j]})
	}
	return dst
}

// Range appends the raw samples with from ≤ TS ≤ to (oldest first) to
// dst and returns it. Samples already folded into tiers are summaries,
// not samples, and are not returned — use Aggregate or Window to read
// that far back.
func (s *Store) Range(k SeriesKey, from, to int64, dst []Sample) []Sample {
	defer observeQuery(time.Now())
	dst = dst[:0]
	se := s.lookup(k)
	if se == nil {
		return dst
	}
	se.mu.Lock()
	defer se.mu.Unlock()
	se.visitLocked(from, to, nil, func(ts int64, v float64) {
		dst = append(dst, Sample{TS: ts, V: v})
	})
	return dst
}

// Aggregate computes the windowed aggregate of one series over
// [from, to], merging tier summaries, decompressed chunks, and the
// write head. ok is false when nothing falls in the range.
func (s *Store) Aggregate(k SeriesKey, from, to int64) (Agg, bool) {
	defer observeQuery(time.Now())
	se := s.lookup(k)
	if se == nil {
		return Agg{}, false
	}
	var st aggState
	se.mu.Lock()
	se.visitLocked(from, to, st.addBucket, st.addSample)
	se.mu.Unlock()
	return st.finish()
}

// Window slices [from, to) into fixed step-width buckets and aggregates
// each; buckets with no samples are returned with a zero Agg so the
// series of buckets is continuous. step must be positive; the number of
// buckets is capped at 4096 to bound response sizes.
//
// The implementation is a single pass over the retained data — each
// sample (or tier bucket) is dispatched to its window as it is visited
// — rather than one scan per window, so cost is O(samples + windows),
// not O(samples × windows).
func (s *Store) Window(k SeriesKey, from, to, step int64) []Bucket {
	defer observeQuery(time.Now())
	if step <= 0 || to <= from {
		return nil
	}
	const maxBuckets = 4096
	nb := (to - from + step - 1) / step
	if nb > maxBuckets {
		nb = maxBuckets
		to = from + nb*step
	}
	states := make([]aggState, nb)
	if se := s.lookup(k); se != nil {
		se.mu.Lock()
		se.visitLocked(from, to-1, func(start int64, count uint32, min, max, sum float64) {
			states[(start-from)/step].addBucket(start, count, min, max, sum)
		}, func(ts int64, v float64) {
			states[(ts-from)/step].addSample(ts, v)
		})
		se.mu.Unlock()
	}
	out := make([]Bucket, nb)
	for b := int64(0); b < nb; b++ {
		lo := from + b*step
		hi := lo + step
		if hi > to {
			hi = to
		}
		out[b] = Bucket{FromTS: lo, ToTS: hi}
		if agg, ok := states[b].finish(); ok {
			out[b].Agg = agg
		}
	}
	return out
}

// List enumerates live series, optionally filtered: agent < 0 matches
// all agents, fn == 0 all functions. The result is sorted by key for
// stable output.
func (s *Store) List(agent int64, fn uint16) []SeriesInfo {
	defer observeQuery(time.Now())
	var out []SeriesInfo
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, se := range sh.series {
			if agent >= 0 && k.Agent != uint32(agent) {
				continue
			}
			if fn != 0 && k.Fn != fn {
				continue
			}
			se.mu.Lock()
			info := SeriesInfo{
				Key:    k,
				Field:  k.Field.String(),
				Count:  se.n + se.chunkSamples(),
				Chunks: len(se.chunks),
			}
			if se.t1 != nil {
				info.TierSamples = se.t1.samples() + se.t2.samples()
			}
			switch {
			case len(se.chunks) > 0:
				info.OldestTS = se.chunks[0].firstTS
			case se.n > 0:
				info.OldestTS = se.ts[se.head]
			}
			if se.n > 0 {
				info.NewestTS = se.ts[(se.head+se.n-1)%len(se.ts)]
			} else if nc := len(se.chunks); nc > 0 {
				info.NewestTS = se.chunks[nc-1].lastTS
			}
			se.mu.Unlock()
			out = append(out, info)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Key, out[j].Key
		if a.Agent != b.Agent {
			return a.Agent < b.Agent
		}
		if a.Fn != b.Fn {
			return a.Fn < b.Fn
		}
		if a.UE != b.UE {
			return a.UE < b.UE
		}
		return a.Field < b.Field
	})
	return out
}
