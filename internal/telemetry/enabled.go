//go:build !notelemetry

package telemetry

// Enabled reports whether the telemetry layer is compiled in. It is a
// build-time constant: in the default build it is true; building with
// `-tags notelemetry` flips it to false, every instrumentation block
// guarded by `if telemetry.Enabled` is eliminated by the compiler, and
// the SDK's hot paths carry zero measurement cost — the paper's
// zero-overhead co-located configuration.
const Enabled = true
