//go:build !notelemetry

package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexMonotonicAndBounded(t *testing.T) {
	prev := 0
	for ns := int64(1); ns < int64(4*time.Second); ns *= 3 {
		idx := bucketIndex(ns)
		if idx < 0 || idx >= NumBuckets {
			t.Fatalf("ns=%d: index %d out of range", ns, idx)
		}
		if idx < prev {
			t.Fatalf("ns=%d: index %d < previous %d (not monotonic)", ns, idx, prev)
		}
		lo, hi := bucketBounds(idx)
		if ns < lo || ns >= hi {
			t.Fatalf("ns=%d mapped to bucket %d with bounds [%d,%d)", ns, idx, lo, hi)
		}
		prev = idx
	}
	if bucketIndex(0) != 0 {
		t.Fatal("0 must land in the underflow bucket")
	}
	if bucketIndex(int64(time.Minute)) != NumBuckets-1 {
		t.Fatal("1min must land in the overflow bucket")
	}
}

func TestBucketBoundsContiguous(t *testing.T) {
	for i := 0; i < NumBuckets-1; i++ {
		_, hi := bucketBounds(i)
		lo, _ := bucketBounds(i + 1)
		if hi != lo {
			t.Fatalf("gap between bucket %d (hi=%d) and %d (lo=%d)", i, hi, i+1, lo)
		}
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	// 1000 observations spread uniformly over 1..1000 µs.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	// Log-linear buckets bound relative error by 1/subPerOctave.
	checks := []struct {
		p    float64
		want time.Duration
	}{
		{50, 500 * time.Microsecond},
		{95, 950 * time.Microsecond},
		{99, 990 * time.Microsecond},
	}
	for _, c := range checks {
		got := s.Percentile(c.p)
		lo := time.Duration(float64(c.want) * 0.7)
		hi := time.Duration(float64(c.want) * 1.3)
		if got < lo || got > hi {
			t.Errorf("p%g = %v, want within [%v, %v]", c.p, got, lo, hi)
		}
	}
	if s.Percentile(100) > s.Max || s.Percentile(100) == 0 {
		t.Errorf("p100 = %v, max = %v", s.Percentile(100), s.Max)
	}
	if mean := s.Mean(); mean < 400*time.Microsecond || mean > 600*time.Microsecond {
		t.Errorf("mean = %v, want ~500µs", mean)
	}
}

func TestHistogramEmptyAndSingle(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Percentile(99) != 0 || s.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Observe(3 * time.Millisecond)
	s := h.Snapshot()
	p99 := s.Percentile(99)
	if p99 < 2*time.Millisecond || p99 > 4*time.Millisecond {
		t.Fatalf("single-sample p99 = %v, want ~3ms", p99)
	}
	// A single sample's percentile must be capped by the observed max,
	// not inflated to its bucket's upper bound.
	if p99 > s.Max {
		t.Fatalf("p99 %v exceeds max %v", p99, s.Max)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Observe(10 * time.Microsecond)
		b.Observe(10 * time.Millisecond)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	merged := sa
	merged.Merge(sb)
	if merged.Count != 200 {
		t.Fatalf("merged count = %d", merged.Count)
	}
	if merged.Max != sb.Max {
		t.Fatalf("merged max = %v, want %v", merged.Max, sb.Max)
	}
	// Half the mass at 10µs, half at 10ms: p25 in the µs mode, p75 in
	// the ms mode.
	if p := merged.Percentile(25); p > time.Millisecond {
		t.Errorf("p25 = %v, want µs-scale", p)
	}
	if p := merged.Percentile(75); p < time.Millisecond {
		t.Errorf("p75 = %v, want ms-scale", p)
	}
	// Merge must equal observing everything in one histogram.
	var c Histogram
	for i := 0; i < 100; i++ {
		c.Observe(10 * time.Microsecond)
		c.Observe(10 * time.Millisecond)
	}
	direct := c.Snapshot()
	if direct.Buckets != merged.Buckets {
		t.Error("merged buckets differ from direct observation")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w+1) * 100 * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	var inBuckets uint64
	for _, n := range s.Buckets {
		inBuckets += n
	}
	if inBuckets != s.Count {
		t.Fatalf("bucket sum %d != count %d", inBuckets, s.Count)
	}
}

func TestRegistrySnapshotTree(t *testing.T) {
	r := NewRegistry()
	r.Counter("transport.sctpish.frames_sent").Add(7)
	r.Gauge("server.randb.agents").Set(3)
	r.Histogram("e2ap.asn.encode.Indication").Observe(5 * time.Microsecond)

	snap := r.TakeSnapshot()
	if got := snap.Counter("transport.sctpish.frames_sent"); got != 7 {
		t.Errorf("counter via path = %d, want 7", got)
	}
	node := snap.Child("server.randb")
	if node == nil || node.Gauges["agents"] != 3 {
		t.Errorf("gauge subtree missing: %+v", node)
	}
	h := snap.Histogram("e2ap.asn.encode.Indication")
	if h.Count != 1 {
		t.Errorf("histogram count = %d", h.Count)
	}
	if snap.Child("no.such.path") != nil {
		t.Error("absent path must return nil")
	}
	if snap.Counter("no.such.counter") != 0 {
		t.Error("absent counter must read zero")
	}
}

func TestRegistryGetOrCreateAndUnregister(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x.y.c")
	b := r.Counter("x.y.c")
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	a.Inc()
	r.Counter("x.z").Inc()
	r.Unregister("x.y")
	snap := r.TakeSnapshot()
	if snap.Counter("x.y.c") != 0 {
		t.Error("unregistered subtree still visible")
	}
	if snap.Counter("x.z") != 1 {
		t.Error("sibling was dropped by Unregister")
	}
	// The held pointer stays usable after unregistration.
	a.Inc()
	if a.Load() != 2 {
		t.Error("unregistered counter pointer broken")
	}
}

func TestDumpFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.frames").Add(2)
	r.Counter("a.frames").Add(1)
	r.Histogram("c.lat").Observe(time.Millisecond)
	var buf bytes.Buffer
	if err := r.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("dump lines = %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "a.frames 1") || !strings.HasPrefix(lines[1], "b.frames 2") {
		t.Errorf("dump not sorted: %q", out)
	}
	if !strings.Contains(lines[2], "count=1") || !strings.Contains(lines[2], "p99=") {
		t.Errorf("histogram line malformed: %q", lines[2])
	}
}

func TestResetClearsRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	r.Reset()
	if got := r.TakeSnapshot().Counter("a"); got != 0 {
		t.Fatalf("after Reset counter = %d", got)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
}
