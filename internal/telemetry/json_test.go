//go:build !notelemetry

package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// DumpJSON must be deterministic: two dumps of the same registry state
// are byte-identical (encoding/json sorts map keys), so the output is
// diffable and safe to golden-test downstream.
func TestDumpJSONGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("transport.sctpish.frames_out").Add(3)
	r.Counter("transport.sctpish.frames_in").Add(2)
	r.Counter("server.indications").Add(7)
	r.Gauge("server.agents").Set(1)
	r.Histogram("transport.sctpish.send_latency").Observe(100 * time.Microsecond)
	r.Histogram("transport.sctpish.send_latency").Observe(200 * time.Microsecond)

	var a, b bytes.Buffer
	if err := r.DumpJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.DumpJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("DumpJSON not deterministic:\n%s\nvs\n%s", a.String(), b.String())
	}

	// Shape: nested children, summarized histograms, sorted keys.
	var doc struct {
		Counters map[string]uint64 `json:"counters"`
		Children map[string]struct {
			Counters map[string]uint64 `json:"counters"`
			Gauges   map[string]int64  `json:"gauges"`
			Children map[string]struct {
				Counters   map[string]uint64 `json:"counters"`
				Histograms map[string]struct {
					Count  uint64 `json:"count"`
					MeanNS int64  `json:"mean_ns"`
					P95NS  int64  `json:"p95_ns"`
					MaxNS  int64  `json:"max_ns"`
				} `json:"histograms"`
			} `json:"children"`
		} `json:"children"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, a.String())
	}
	srv, ok := doc.Children["server"]
	if !ok {
		t.Fatalf("no server subtree in %s", a.String())
	}
	if srv.Counters["indications"] != 7 || srv.Gauges["agents"] != 1 {
		t.Errorf("server subtree = %+v", srv)
	}
	sctp, ok := doc.Children["transport"].Children["sctpish"]
	if !ok {
		t.Fatalf("no transport.sctpish subtree in %s", a.String())
	}
	if sctp.Counters["frames_out"] != 3 {
		t.Errorf("frames_out = %d, want 3", sctp.Counters["frames_out"])
	}
	h := sctp.Histograms["send_latency"]
	if h.Count != 2 || h.MeanNS <= 0 || h.P95NS <= 0 || h.MaxNS <= 0 {
		t.Errorf("send_latency summary = %+v", h)
	}
}

func TestDumpJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewRegistry().DumpJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "{}\n" {
		t.Errorf("empty registry dump = %q, want {}", got)
	}
}
