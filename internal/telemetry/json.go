package telemetry

import (
	"encoding/json"
	"io"
)

// histogramJSON is the JSON shape of a histogram: a summary rather than
// the 82 raw buckets, which is what dashboards and the /snapshot.json
// endpoint want. All durations are nanoseconds.
type histogramJSON struct {
	Count  uint64 `json:"count"`
	MeanNS int64  `json:"mean_ns"`
	P50NS  int64  `json:"p50_ns"`
	P95NS  int64  `json:"p95_ns"`
	P99NS  int64  `json:"p99_ns"`
	MaxNS  int64  `json:"max_ns"`
}

// snapshotJSON mirrors Snapshot for marshalling. Map-valued fields are
// what makes the output deterministic: encoding/json sorts map keys, so
// two snapshots of the same registry state serialize byte-identically
// (asserted by the golden test).
type snapshotJSON struct {
	Counters   map[string]uint64        `json:"counters,omitempty"`
	Gauges     map[string]int64         `json:"gauges,omitempty"`
	Histograms map[string]histogramJSON `json:"histograms,omitempty"`
	Children   map[string]*Snapshot     `json:"children,omitempty"`
}

// MarshalJSON implements json.Marshaler: subtrees nest under "children",
// histograms serialize as count/mean/percentile summaries.
func (s *Snapshot) MarshalJSON() ([]byte, error) {
	out := snapshotJSON{
		Counters: s.Counters,
		Gauges:   s.Gauges,
		Children: s.Children,
	}
	if len(s.Histograms) > 0 {
		out.Histograms = make(map[string]histogramJSON, len(s.Histograms))
		for label, h := range s.Histograms {
			out.Histograms[label] = histogramJSON{
				Count:  h.Count,
				MeanNS: int64(h.Mean()),
				P50NS:  int64(h.Percentile(50)),
				P95NS:  int64(h.Percentile(95)),
				P99NS:  int64(h.Percentile(99)),
				MaxNS:  int64(h.Max),
			}
		}
	}
	return json.Marshal(out)
}

// DumpJSON writes the registry's snapshot as a single JSON document.
// This is the /snapshot.json endpoint's body. When telemetry is
// compiled out the snapshot is empty and the output is "{}".
func (r *Registry) DumpJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(r.TakeSnapshot())
}

// DumpJSON writes the default registry's snapshot as JSON.
func DumpJSON(w io.Writer) error { return Default.DumpJSON(w) }
