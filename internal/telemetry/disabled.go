//go:build notelemetry

package telemetry

// Enabled is false in this build: the telemetry layer is compiled out.
// Constructors return shared no-op primitives, the registry stays
// empty, and guarded instrumentation blocks are dead-code-eliminated.
const Enabled = false
