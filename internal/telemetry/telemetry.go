// Package telemetry is the SDK's in-band instrumentation layer: the
// continuous, always-on measurement substrate that turns the paper's
// bench-harness numbers (§7: sub-µs controller processing, ~1% CPU at
// 1 ms reporting periods, linear scaling with agents) into quantities
// the running system reports about itself.
//
// Three primitives cover the hot paths:
//
//   - Counter: a monotonically increasing atomic uint64 (frames, bytes,
//     indications, drops).
//   - Gauge: a settable atomic int64 with lock-free reads (live agents,
//     active subscriptions, registry sizes).
//   - Histogram: a fixed-bucket latency histogram, log-spaced from ~1µs
//     to ~1s, with zero-allocation Observe and p50/p95/p99 extraction
//     from snapshots. Snapshots are mergeable, so per-connection
//     histograms aggregate into fleet-wide distributions.
//
// All primitives are registered in a process-wide tree keyed by dotted
// paths ("transport.sctpish.frames_sent"); Snapshot() materializes the
// tree and Dump() renders it expvar-style. Instrumented packages hold
// direct pointers to their primitives, so the hot path never touches the
// registry: an enabled data point costs one or two atomic adds, and a
// latency point adds two monotonic clock reads.
//
// The whole layer compiles to no-ops when the build tag "notelemetry"
// is set (telemetry.Enabled becomes a false constant and every guarded
// block is eliminated), preserving the paper's zero-overhead co-located
// configuration. See docs/OBSERVABILITY.md for the metric catalogue and
// how each exported quantity maps to a paper figure.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count. The zero value is
// ready to use; counters obtained from NewCounter are also registered
// for snapshots.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if !Enabled {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if !Enabled {
		return
	}
	c.v.Add(n)
}

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a last-write-wins instantaneous value with lock-free reads.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if !Enabled {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (which may be negative).
func (g *Gauge) Add(delta int64) {
	if !Enabled {
		return
	}
	g.v.Add(delta)
}

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Registry is a named collection of telemetry primitives. Most code uses
// the process-wide Default registry through the package-level NewCounter
// / NewGauge / NewHistogram functions.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Default is the process-wide registry used by the instrumented SDK
// packages.
var Default = NewRegistry()

// noop instances returned by the constructors when telemetry is compiled
// out: callers keep valid pointers, every method is a no-op, and the
// registry stays empty.
var (
	noopCounter   Counter
	noopGauge     Gauge
	noopHistogram Histogram
)

// Counter returns the counter registered under name, creating it if
// needed. Names are dotted paths; the last segment is the leaf label in
// the snapshot tree.
func (r *Registry) Counter(name string) *Counter {
	if !Enabled {
		return &noopCounter
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if !Enabled {
		return &noopGauge
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it if
// needed.
func (r *Registry) Histogram(name string) *Histogram {
	if !Enabled {
		return &noopHistogram
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = new(Histogram)
		r.hists[name] = h
	}
	return h
}

// Unregister removes every metric whose name equals prefix or starts
// with prefix+"." — used to drop per-connection subtrees when a
// connection closes. The primitives themselves stay valid for any
// holder still incrementing them; they just stop appearing in snapshots.
func (r *Registry) Unregister(prefix string) {
	if !Enabled {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	dotted := prefix + "."
	for name := range r.counters {
		if name == prefix || strings.HasPrefix(name, dotted) {
			delete(r.counters, name)
		}
	}
	for name := range r.gauges {
		if name == prefix || strings.HasPrefix(name, dotted) {
			delete(r.gauges, name)
		}
	}
	for name := range r.hists {
		if name == prefix || strings.HasPrefix(name, dotted) {
			delete(r.hists, name)
		}
	}
}

// Reset zeroes and forgets every registered metric. Experiment harnesses
// call this between runs so each run's snapshot starts from zero.
func (r *Registry) Reset() {
	if !Enabled {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = make(map[string]*Counter)
	r.gauges = make(map[string]*Gauge)
	r.hists = make(map[string]*Histogram)
}

// Package-level conveniences on the Default registry.

// NewCounter returns Default.Counter(name).
func NewCounter(name string) *Counter { return Default.Counter(name) }

// NewGauge returns Default.Gauge(name).
func NewGauge(name string) *Gauge { return Default.Gauge(name) }

// NewHistogram returns Default.Histogram(name).
func NewHistogram(name string) *Histogram { return Default.Histogram(name) }

// Unregister removes a subtree from the Default registry.
func Unregister(prefix string) { Default.Unregister(prefix) }

// Reset clears the Default registry.
func Reset() { Default.Reset() }

// Snapshot is a point-in-time, immutable view of a registry subtree.
// Leaves hold the metrics registered directly at this node's path;
// Children hold deeper paths, keyed by path segment.
type Snapshot struct {
	// Name is the path segment of this node ("" for the root).
	Name string
	// Counters maps leaf label → value.
	Counters map[string]uint64
	// Gauges maps leaf label → value.
	Gauges map[string]int64
	// Histograms maps leaf label → distribution snapshot.
	Histograms map[string]HistogramSnapshot
	// Children maps path segment → subtree, sorted by Keys().
	Children map[string]*Snapshot
}

func newSnapshotNode(name string) *Snapshot {
	return &Snapshot{
		Name:       name,
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
		Children:   make(map[string]*Snapshot),
	}
}

// child returns (creating if needed) the subtree for the dotted path
// above the final segment of name, and the leaf label.
func (s *Snapshot) place(name string) (*Snapshot, string) {
	node := s
	segs := strings.Split(name, ".")
	for _, seg := range segs[:len(segs)-1] {
		next := node.Children[seg]
		if next == nil {
			next = newSnapshotNode(seg)
			node.Children[seg] = next
		}
		node = next
	}
	return node, segs[len(segs)-1]
}

// Child descends a dotted path ("e2ap.asn"), returning nil if absent.
func (s *Snapshot) Child(path string) *Snapshot {
	node := s
	for _, seg := range strings.Split(path, ".") {
		node = node.Children[seg]
		if node == nil {
			return nil
		}
	}
	return node
}

// Counter returns the counter at a dotted path below this node (zero if
// absent).
func (s *Snapshot) Counter(path string) uint64 {
	node, leaf := s.find(path)
	if node == nil {
		return 0
	}
	return node.Counters[leaf]
}

// Histogram returns the histogram snapshot at a dotted path below this
// node (zero-valued if absent).
func (s *Snapshot) Histogram(path string) HistogramSnapshot {
	node, leaf := s.find(path)
	if node == nil {
		return HistogramSnapshot{}
	}
	return node.Histograms[leaf]
}

func (s *Snapshot) find(path string) (*Snapshot, string) {
	i := strings.LastIndexByte(path, '.')
	if i < 0 {
		return s, path
	}
	return s.Child(path[:i]), path[i+1:]
}

// TakeSnapshot materializes the registry as a tree.
func (r *Registry) TakeSnapshot() *Snapshot {
	root := newSnapshotNode("")
	if !Enabled {
		return root
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		node, leaf := root.place(name)
		node.Counters[leaf] = c.Load()
	}
	for name, g := range r.gauges {
		node, leaf := root.place(name)
		node.Gauges[leaf] = g.Load()
	}
	for name, h := range r.hists {
		node, leaf := root.place(name)
		node.Histograms[leaf] = h.Snapshot()
	}
	return root
}

// TakeSnapshot snapshots the Default registry.
func TakeSnapshot() *Snapshot { return Default.TakeSnapshot() }

// Dump writes the registry expvar-style: one sorted "name value" line
// per counter and gauge, and one summary line per histogram.
func (r *Registry) Dump(w io.Writer) error {
	if !Enabled {
		_, err := fmt.Fprintln(w, "# telemetry compiled out (build tag notelemetry)")
		return err
	}
	type line struct{ name, text string }
	r.mu.Lock()
	lines := make([]line, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		lines = append(lines, line{name, fmt.Sprintf("%s %d", name, c.Load())})
	}
	for name, g := range r.gauges {
		lines = append(lines, line{name, fmt.Sprintf("%s %d", name, g.Load())})
	}
	for name, h := range r.hists {
		s := h.Snapshot()
		lines = append(lines, line{name, fmt.Sprintf(
			"%s count=%d mean=%v p50=%v p95=%v p99=%v max=%v",
			name, s.Count, s.Mean(), s.Percentile(50), s.Percentile(95),
			s.Percentile(99), s.Max)})
	}
	r.mu.Unlock()
	sort.Slice(lines, func(i, j int) bool { return lines[i].name < lines[j].name })
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l.text); err != nil {
			return err
		}
	}
	return nil
}

// Dump writes the Default registry to w.
func Dump(w io.Writer) error { return Default.Dump(w) }
