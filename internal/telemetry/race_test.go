package telemetry

import (
	"fmt"
	"io"
	"sync"
	"testing"
	"time"
)

// The transport layer unregisters per-connection subtrees on close
// while the periodic dumper and /snapshot.json read the registry.
// This test has no assertions beyond "no panic": its job is to put
// Unregister, TakeSnapshot, Dump, DumpJSON, and live metric updates in
// flight together under `go test -race`.
func TestUnregisterRacesSnapshotAndDump(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup

	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				scope := fmt.Sprintf("transport.conn%d_%d", g, i)
				c := r.Counter(scope + ".frames_out")
				c.Inc()
				r.Histogram(scope + ".send_latency").Observe(time.Microsecond)
				r.Gauge(scope + ".up").Set(1)
				r.Unregister(scope)
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				r.TakeSnapshot()
				_ = r.Dump(io.Discard)
				_ = r.DumpJSON(io.Discard)
			}
		}()
	}
	wg.Wait()

	snap := r.TakeSnapshot()
	if tr := snap.Child("transport"); tr != nil && len(tr.Children) != 0 {
		t.Errorf("unregistered scopes still present: %d", len(tr.Children))
	}
}
