package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: log-linear (HdrHistogram-style), covering
// ~1µs to ~1s. Durations are bucketed by their power-of-two octave
// (2^minOctave ns ≈ 1µs up to 2^maxOctave ns ≈ 1.07s) with
// subPerOctave linear sub-buckets per octave, giving a worst-case
// relative error of 1/subPerOctave (25%) on any reconstructed
// percentile — plenty for the µs-vs-ms distinctions the paper's figures
// draw. Index 0 is the underflow bucket (<1µs, where the co-located
// pipe transport and FB envelope reads live); the last index is the
// overflow bucket (≥ ~1.07s).
const (
	minOctave    = 10 // 2^10 ns = 1024 ns ≈ 1µs
	maxOctave    = 30 // 2^30 ns ≈ 1.07 s
	subPerOctave = 4
	// NumBuckets is the fixed bucket count: underflow + the log-linear
	// grid + overflow.
	NumBuckets = 2 + (maxOctave-minOctave)*subPerOctave
)

// bucketIndex maps a non-negative duration in nanoseconds to a bucket.
// Pure bit arithmetic: no floats, no bounds table, no allocation.
func bucketIndex(ns int64) int {
	u := uint64(ns)
	if u < 1<<minOctave {
		return 0
	}
	exp := bits.Len64(u) - 1 // floor(log2 ns)
	if exp >= maxOctave {
		return NumBuckets - 1
	}
	sub := (u >> (uint(exp) - 2)) & (subPerOctave - 1)
	return 1 + (exp-minOctave)*subPerOctave + int(sub)
}

// bucketBounds returns the [lo, hi) nanosecond range covered by bucket
// i of the log-linear grid. The underflow bucket is [0, 1µs); the
// overflow bucket is [2^maxOctave, MaxInt64).
func bucketBounds(i int) (lo, hi int64) {
	if i <= 0 {
		return 0, 1 << minOctave
	}
	if i >= NumBuckets-1 {
		return 1 << maxOctave, 1<<63 - 1
	}
	octave := uint((i-1)/subPerOctave + minOctave)
	sub := int64((i - 1) % subPerOctave)
	lo = (int64(subPerOctave) + sub) << (octave - 2)
	hi = (int64(subPerOctave) + sub + 1) << (octave - 2)
	return lo, hi
}

// Histogram records a latency distribution in fixed log-spaced buckets.
// Observe is wait-free and allocation-free: one bucket increment plus
// count/sum updates. The zero value is ready to use; NewHistogram also
// registers the histogram for snapshots.
type Histogram struct {
	count   atomic.Uint64
	sumNS   atomic.Uint64
	maxNS   atomic.Int64
	buckets [NumBuckets]atomic.Uint64
}

// Observe records one duration. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) {
	if !Enabled {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sumNS.Add(uint64(ns))
	for {
		cur := h.maxNS.Load()
		if ns <= cur || h.maxNS.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot copies the histogram state for analysis. The copy is not
// atomic across buckets — concurrent Observes may straddle it — which
// is harmless for monitoring (the error is bounded by the number of
// in-flight observations).
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.SumNS = h.sumNS.Load()
	s.Max = time.Duration(h.maxNS.Load())
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is an immutable copy of a Histogram. Snapshots
// merge, so per-connection distributions can be combined into
// aggregates with identical bucket boundaries.
type HistogramSnapshot struct {
	Count   uint64
	SumNS   uint64
	Max     time.Duration
	Buckets [NumBuckets]uint64
}

// Merge accumulates other into s.
func (s *HistogramSnapshot) Merge(other HistogramSnapshot) {
	s.Count += other.Count
	s.SumNS += other.SumNS
	if other.Max > s.Max {
		s.Max = other.Max
	}
	for i := range s.Buckets {
		s.Buckets[i] += other.Buckets[i]
	}
}

// Mean returns the average observed duration.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNS / s.Count)
}

// Percentile reconstructs the p-th percentile (0..100) by locating the
// bucket holding the rank and interpolating linearly inside it. The
// overflow bucket reports its lower bound (the distribution's tail is
// unresolved past ~1s by design).
func (s HistogramSnapshot) Percentile(p float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	// Rank of the target observation, 1-based.
	rank := p / 100 * float64(s.Count)
	if rank < 1 {
		rank = 1
	}
	var seen float64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if seen+float64(n) >= rank {
			lo, hi := bucketBounds(i)
			if i == NumBuckets-1 {
				return time.Duration(lo)
			}
			// Interpolate the rank's position within this bucket.
			frac := (rank - seen) / float64(n)
			ns := float64(lo) + frac*float64(hi-lo)
			if max := float64(s.Max); ns > max && max > 0 {
				ns = max
			}
			return time.Duration(ns)
		}
		seen += float64(n)
	}
	return s.Max
}
