//go:build notelemetry

package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// With the notelemetry tag the layer must compile to no-ops: constructors
// hand out shared inert primitives, nothing registers, and Dump reports
// that telemetry is compiled out.
func TestCompiledOut(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled must be false under the notelemetry tag")
	}
	c := NewCounter("x.c")
	c.Inc()
	c.Add(5)
	if c.Load() != 0 {
		t.Error("counter must stay zero when compiled out")
	}
	h := NewHistogram("x.h")
	h.Observe(time.Millisecond)
	if h.Count() != 0 {
		t.Error("histogram must stay empty when compiled out")
	}
	g := NewGauge("x.g")
	g.Set(7)
	if g.Load() != 0 {
		t.Error("gauge must stay zero when compiled out")
	}
	if NewCounter("a") != NewCounter("b") {
		t.Error("constructors must return the shared no-op instance")
	}
	snap := TakeSnapshot()
	if len(snap.Children) != 0 || len(snap.Counters) != 0 {
		t.Error("snapshot must be empty when compiled out")
	}
	var buf bytes.Buffer
	if err := Dump(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "compiled out") {
		t.Errorf("dump = %q", buf.String())
	}
}
