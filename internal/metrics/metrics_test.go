package metrics

import (
	"runtime"
	"sort"
	"testing"
	"time"
)

func TestProcessCPUMonotone(t *testing.T) {
	a := ProcessCPU()
	// Burn a little CPU.
	x := 0
	for i := 0; i < 20_000_000; i++ {
		x += i
	}
	_ = x
	b := ProcessCPU()
	if b < a {
		t.Fatalf("CPU time went backwards: %v -> %v", a, b)
	}
	if b == a {
		t.Skip("CPU accounting too coarse on this platform")
	}
}

func TestCPUMeter(t *testing.T) {
	m := StartCPU()
	x := 0
	for i := 0; i < 50_000_000; i++ {
		x += i
	}
	_ = x
	cpu, wall := m.Sample()
	if cpu <= 0 || wall <= 0 {
		t.Fatalf("cpu %v wall %v", cpu, wall)
	}
	if p := m.NormalizedPercent(); p <= 0 || p > 100*float64(64) {
		t.Fatalf("normalized %v%%", p)
	}
	if v := m.CPUPerSimSecond(1000); v <= 0 {
		t.Fatalf("per-sim-second %v", v)
	}
	if v := m.CPUPerSimSecond(0); v != 0 {
		t.Fatalf("zero sim time: %v", v)
	}
}

func TestHeapDelta(t *testing.T) {
	var sink [][]byte
	d := HeapDelta(func() {
		for i := 0; i < 64; i++ {
			sink = append(sink, make([]byte, 1<<20))
		}
	})
	if MB(d) < 32 {
		t.Fatalf("heap delta %.1f MB, expected ~64", MB(d))
	}
	runtime.KeepAlive(sink)
}

func TestPercentile(t *testing.T) {
	var s []time.Duration
	for i := 1; i <= 100; i++ {
		s = append(s, time.Duration(i)*time.Millisecond)
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if p := Percentile(s, 50); p < 49*time.Millisecond || p > 52*time.Millisecond {
		t.Fatalf("p50 %v", p)
	}
	if Percentile(s, 0) != time.Millisecond {
		t.Fatal("p0")
	}
	if Percentile(s, 100) != 100*time.Millisecond {
		t.Fatal("p100")
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty")
	}
}

// TestPercentileInterpolation pins the linear-interpolation contract on
// small samples, where rank truncation used to bias results low.
func TestPercentileInterpolation(t *testing.T) {
	two := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if p := Percentile(two, 50); p != 15*time.Millisecond {
		t.Fatalf("p50 of {10,20}ms = %v, want 15ms", p)
	}
	if p := Percentile(two, 75); p != 17500*time.Microsecond {
		t.Fatalf("p75 of {10,20}ms = %v, want 17.5ms", p)
	}
	one := []time.Duration{42 * time.Millisecond}
	for _, p := range []float64{0, 50, 99, 100} {
		if v := Percentile(one, p); v != 42*time.Millisecond {
			t.Fatalf("p%v of single sample = %v", p, v)
		}
	}
	five := []time.Duration{10, 20, 30, 40, 50}
	if p := Percentile(five, 25); p != 20 {
		t.Fatalf("p25 of 10..50 = %v, want 20", p)
	}
	if p := Percentile(five, 90); p != 46 {
		// rank 3.6 → 40 + 0.6*(50-40)
		t.Fatalf("p90 of 10..50 = %v, want 46", p)
	}
}

// TestPercentileFloats mirrors the duration variant's contract for the
// float64 series internal/tsdb aggregates.
func TestPercentileFloats(t *testing.T) {
	if PercentileFloats(nil, 50) != 0 {
		t.Fatal("empty")
	}
	one := []float64{42}
	for _, p := range []float64{0, 50, 100} {
		if v := PercentileFloats(one, p); v != 42 {
			t.Fatalf("p%v of single sample = %v", p, v)
		}
	}
	five := []float64{10, 20, 30, 40, 50}
	if v := PercentileFloats(five, 50); v != 30 {
		t.Fatalf("p50 = %v", v)
	}
	if v := PercentileFloats(five, 90); v != 46 {
		// rank 3.6 → 40 + 0.6*(50-40)
		t.Fatalf("p90 = %v, want 46", v)
	}
	if v := PercentileFloats(five, 0); v != 10 {
		t.Fatalf("p0 = %v", v)
	}
	if v := PercentileFloats(five, 100); v != 50 {
		t.Fatalf("p100 = %v", v)
	}
}

func TestFmtDuration(t *testing.T) {
	if s := FmtDuration(250 * time.Microsecond); s != "250µs" {
		t.Fatal(s)
	}
	if s := FmtDuration(2500 * time.Microsecond); s != "2.50ms" {
		t.Fatal(s)
	}
}
