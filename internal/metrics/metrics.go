// Package metrics measures CPU and memory consumption of experiment
// scenarios. The paper reports normalized CPU usage (CPU time over wall
// time, normalized by cores) from OS accounting and memory from docker
// stats; this package provides the equivalents available in-process:
// getrusage-based CPU time and runtime heap statistics. It also carries
// the latency-sample helpers (interpolated percentiles, figure-style
// duration formatting) the experiment harness reports with.
//
// For live counters and histograms on running SDK components, see
// internal/telemetry; this package is for offline sample sets collected
// by the harness itself.
package metrics

import (
	"fmt"
	"runtime"
	"syscall"
	"time"
)

// ProcessCPU returns the process's cumulative user+system CPU time.
func ProcessCPU() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}

// CPUMeter measures CPU consumption over an interval.
type CPUMeter struct {
	startCPU  time.Duration
	startWall time.Time
}

// StartCPU begins a measurement interval.
func StartCPU() *CPUMeter {
	return &CPUMeter{startCPU: ProcessCPU(), startWall: time.Now()}
}

// Sample returns the CPU time consumed and wall time elapsed since
// StartCPU.
func (m *CPUMeter) Sample() (cpu, wall time.Duration) {
	return ProcessCPU() - m.startCPU, time.Since(m.startWall)
}

// NormalizedPercent returns CPU time over wall time as a percentage of
// one core — the paper's "normalized CPU usage".
func (m *CPUMeter) NormalizedPercent() float64 {
	cpu, wall := m.Sample()
	if wall <= 0 {
		return 0
	}
	return 100 * float64(cpu) / float64(wall)
}

// CPUPerSimSecond expresses CPU cost against simulated time: CPU seconds
// consumed per simulated second, as a percentage. This is the meaningful
// normalization when the workload runs a discrete-event simulation
// faster than real time.
func (m *CPUMeter) CPUPerSimSecond(simMS int64) float64 {
	if simMS <= 0 {
		return 0
	}
	cpu, _ := m.Sample()
	return 100 * cpu.Seconds() / (float64(simMS) / 1000)
}

// HeapInUse reports live heap bytes after a GC cycle — the steady-state
// memory of the measured structures.
func HeapInUse() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapInuse
}

// HeapDelta runs f and returns the live-heap growth it caused.
func HeapDelta(f func()) uint64 {
	before := HeapInUse()
	f()
	after := HeapInUse()
	if after < before {
		return 0
	}
	return after - before
}

// MB formats bytes as mebibytes.
func MB(b uint64) float64 { return float64(b) / (1 << 20) }

// FmtDuration renders µs-scale durations the way the paper's figures
// label them.
func FmtDuration(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", float64(d.Microseconds()))
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return d.String()
	}
}

// PercentileFloats returns the p-th percentile (0..100) of a sorted
// float64 sample set with linear interpolation between adjacent order
// statistics — the same estimator as Percentile, for the scalar series
// internal/tsdb aggregates.
func PercentileFloats(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if frac == 0 || lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// Percentile returns the p-th percentile (0..100) of samples with linear
// interpolation between adjacent order statistics; the slice is sorted in
// place by the caller beforehand.
func Percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if frac == 0 || lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo] + time.Duration(frac*float64(sorted[lo+1]-sorted[lo]))
}
