package ctrl_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"flexric/internal/agent"
	"flexric/internal/broker"
	"flexric/internal/ctrl"
	"flexric/internal/e2ap"
	"flexric/internal/ran"
	"flexric/internal/server"
	"flexric/internal/sm"
	"flexric/internal/transport"
)

// bs is a simulated base station with a FlexRIC agent and slot loop.
type bs struct {
	cell  *ran.Cell
	agent *agent.Agent
	fns   []agent.RANFunction
	stop  chan struct{}
	done  chan struct{}
}

func startBS(t *testing.T, addr string, nodeID uint64, scheme sm.Scheme, numRB int) *bs {
	t.Helper()
	cell, err := ran.NewCell(ran.PHYConfig{RAT: ran.RAT4G, NumRB: numRB})
	if err != nil {
		t.Fatal(err)
	}
	a := agent.New(agent.Config{
		NodeID: e2ap.GlobalE2NodeID{PLMN: e2ap.PLMN{MCC: 208, MNC: 95}, Type: e2ap.NodeENB, NodeID: nodeID},
	})
	b := &bs{cell: cell, agent: a, stop: make(chan struct{}), done: make(chan struct{})}
	b.fns = []agent.RANFunction{
		sm.NewMACStats(cell, scheme, a),
		sm.NewRLCStats(cell, scheme, a),
		sm.NewPDCPStats(cell, scheme, a),
		sm.NewSliceCtrl(cell, scheme),
		sm.NewTCCtrl(cell, scheme, a),
		sm.NewHW(),
	}
	for _, fn := range b.fns {
		if err := a.RegisterFunction(fn); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Connect(addr); err != nil {
		t.Fatal(err)
	}
	go func() {
		defer close(b.done)
		for {
			select {
			case <-b.stop:
				return
			default:
			}
			cell.Step(1)
			sm.TickAll(b.fns, cell.Now())
			time.Sleep(30 * time.Microsecond)
		}
	}()
	t.Cleanup(func() {
		close(b.stop)
		<-b.done
		a.Close()
	})
	return b
}

func startSrv(t *testing.T) (*server.Server, string) {
	t.Helper()
	s := server.New(server.Config{})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, addr
}

func await(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout: %s", what)
}

func TestMonitorCollectsAllLayers(t *testing.T) {
	s, addr := startSrv(t)
	mon := ctrl.NewMonitor(s, ctrl.MonitorConfig{Scheme: sm.SchemeFB, PeriodMS: 1, Decode: true})
	b := startBS(t, addr, 1, sm.SchemeFB, 25)
	if _, err := b.cell.Attach(1, "", "208.95", 28); err != nil {
		t.Fatal(err)
	}
	if err := b.cell.AddTraffic(1, &ran.Saturating{Flow: ran.FiveTuple{DstIP: 1}, RateBytesPerMS: 3000}); err != nil {
		t.Fatal(err)
	}
	await(t, "agent", func() bool { return len(s.Agents()) == 1 })
	id := s.Agents()[0].ID
	await(t, "all layer reports", func() bool {
		return mon.MAC(id) != nil && mon.RLC(id) != nil && mon.PDCP(id) != nil
	})
	await(t, "nonzero MAC traffic", func() bool {
		rep := mon.MAC(id)
		return len(rep.UEs) == 1 && rep.UEs[0].TxBits > 0
	})
	inds, bytesIn := mon.Counters()
	if inds == 0 || bytesIn == 0 {
		t.Fatalf("counters: %d %d", inds, bytesIn)
	}
}

func TestMonitorRawMode(t *testing.T) {
	s, addr := startSrv(t)
	mon := ctrl.NewMonitor(s, ctrl.MonitorConfig{Scheme: sm.SchemeFB, PeriodMS: 1, Layers: ctrl.MonMAC})
	startBS(t, addr, 1, sm.SchemeFB, 25)
	await(t, "agent", func() bool { return len(s.Agents()) == 1 })
	id := s.Agents()[0].ID
	await(t, "raw payloads", func() bool { return mon.Raw(id, sm.IDMACStats) != nil })
	if mon.MAC(id) != nil {
		t.Fatal("raw mode must not decode")
	}
	if _, err := sm.DecodeMACReport(mon.Raw(id, sm.IDMACStats)); err != nil {
		t.Fatalf("raw payload must stay decodable: %v", err)
	}
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestSlicingControllerREST(t *testing.T) {
	s, addr := startSrv(t)
	sc, err := ctrl.NewSlicingController(s, sm.SchemeASN, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	b := startBS(t, addr, 1, sm.SchemeASN, 25)
	if _, err := b.cell.Attach(1, "", "208.95", 28); err != nil {
		t.Fatal(err)
	}
	await(t, "agent", func() bool { return len(s.Agents()) == 1 })
	base := "http://" + sc.Addr()

	// GET /agents
	resp, err := http.Get(base + "/agents")
	if err != nil {
		t.Fatal(err)
	}
	var agents []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&agents); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(agents) != 1 || agents[0]["supportsSlicing"] != true {
		t.Fatalf("agents: %+v", agents)
	}

	// POST /slices: deploy a 66/34 NVS split.
	resp = postJSON(t, base+"/slices?agent=0", ctrl.SliceConfigJSON{
		Algo: "nvs",
		Slices: []ctrl.SliceParamJSON{
			{ID: 1, Kind: "capacity", Capacity: 0.66, UESched: "pf"},
			{ID: 2, Kind: "capacity", Capacity: 0.34, UESched: "pf"},
		},
	})
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("POST /slices: %s", resp.Status)
	}
	resp.Body.Close()
	if b.cell.SliceMode() != ran.SliceNVS {
		t.Fatal("cell not sliced via REST")
	}

	// POST /assoc.
	resp = postJSON(t, base+"/assoc?agent=0", ctrl.AssocJSON{RNTI: 1, SliceID: 2})
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("POST /assoc: %s", resp.Status)
	}
	resp.Body.Close()
	if b.cell.UE(1).SliceID != 2 {
		t.Fatal("association not applied via REST")
	}

	// GET /slices eventually reflects the configuration.
	await(t, "slice status", func() bool {
		resp, err := http.Get(base + "/slices?agent=0")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return false
		}
		var st sm.SliceStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return false
		}
		return st.Algo == "nvs" && len(st.Slices) == 2
	})

	// GET /stats serves the internal DB.
	await(t, "stats", func() bool {
		resp, err := http.Get(base + "/stats?agent=0")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})

	// Error paths.
	resp = postJSON(t, base+"/slices?agent=0", ctrl.SliceConfigJSON{Algo: "bogus"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus algo: %s", resp.Status)
	}
	resp.Body.Close()
	resp, err = http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing agent param: %s", resp.Status)
	}
	resp.Body.Close()
	// Overbooked set surfaces as a gateway error (SM rejected it).
	resp = postJSON(t, base+"/slices?agent=0", ctrl.SliceConfigJSON{
		Algo: "nvs",
		Slices: []ctrl.SliceParamJSON{
			{ID: 1, Kind: "capacity", Capacity: 0.8},
			{ID: 2, Kind: "capacity", Capacity: 0.8},
		},
	})
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("overbooked: %s", resp.Status)
	}
	resp.Body.Close()
}

func TestTCControllerBrokerAndREST(t *testing.T) {
	brk, brkAddr, err := broker.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer brk.Close()
	s, addr := startSrv(t)
	tcc, err := ctrl.NewTCController(s, sm.SchemeFB, brkAddr, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tcc.Close()

	// xApp side: subscribe to the broker before the BS connects.
	xapp, err := broker.Dial(brkAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer xapp.Close()
	rlcCh, err := xapp.Subscribe("stats.rlc.0", 64)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)

	b := startBS(t, addr, 1, sm.SchemeFB, 25)
	if _, err := b.cell.Attach(1, "", "208.95", 28); err != nil {
		t.Fatal(err)
	}
	await(t, "agent", func() bool { return len(s.Agents()) == 1 })

	// RLC stats arrive via the broker.
	select {
	case m := <-rlcCh:
		if _, err := sm.DecodeRLCReport(m.Payload); err != nil {
			t.Fatalf("broker payload: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no RLC stats via broker")
	}

	// REST: the xApp's three-action remedy.
	base := "http://" + tcc.Addr()
	resp := postJSON(t, base+"/tc?agent=0", ctrl.TCCommandJSON{Op: "addQueue", RNTI: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("addQueue: %s", resp.Status)
	}
	var res ctrl.TCCommandResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if res.Queue != 1 {
		t.Fatalf("queue id %d", res.Queue)
	}
	resp = postJSON(t, base+"/tc?agent=0", ctrl.TCCommandJSON{
		Op: "addFilter", RNTI: 1, Queue: res.Queue, DstPort: 5060, Proto: 17, MatchProto: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("addFilter: %s", resp.Status)
	}
	resp.Body.Close()
	resp = postJSON(t, base+"/tc?agent=0", ctrl.TCCommandJSON{Op: "setPacer", RNTI: 1, Pacer: "bdp", PacerTargetMS: 4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("setPacer: %s", resp.Status)
	}
	resp.Body.Close()

	var st ran.TCStats
	if err := b.cell.WithUE(1, func(u *ran.UE) error { st = u.TC().Stats(); return nil }); err != nil {
		t.Fatal(err)
	}
	if st.Mode != "active" || len(st.Queues) != 2 || st.Filters != 1 {
		t.Fatalf("TC state after REST: %+v", st)
	}

	// Error path: unknown op.
	resp = postJSON(t, base+"/tc?agent=0", ctrl.TCCommandJSON{Op: "explode", RNTI: 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown op: %s", resp.Status)
	}
	resp.Body.Close()
}

func TestRelayTwoHopPing(t *testing.T) {
	// Topology: parent server ← relay ← BS agent (two hops).
	parent, parentAddr := startSrv(t)
	relay, err := ctrl.NewRelay("127.0.0.1:0", parentAddr, e2ap.SchemeASN, transport.KindSCTPish,
		[]uint16{sm.IDHelloWorld})
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()
	// The relay's southbound listen address: read from its server.
	await(t, "relay registered at parent", func() bool { return len(parent.Agents()) == 1 })

	// Find the relay's south address by starting its server on a known
	// port: NewRelay used 127.0.0.1:0, so retrieve via test hook.
	southAddr := relaySouthAddr(t, relay)
	startBS(t, southAddr, 5, sm.SchemeASN, 25)
	await(t, "BS at relay", func() bool { return len(relay.Server().Agents()) == 1 })

	relayID := parent.Agents()[0].ID
	pongs := make(chan *sm.HWPing, 4)
	_, err = parent.Subscribe(relayID, sm.IDHelloWorld,
		sm.EncodeTrigger(sm.SchemeASN, sm.Trigger{PeriodMS: 1}), nil,
		server.SubscriptionCallbacks{
			OnIndication: func(ev server.IndicationEvent) {
				if p, err := sm.DecodeHWPing(ev.Env.IndicationPayload()); err == nil {
					pongs <- p
				}
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	ping := &sm.HWPing{Seq: 11, T0: time.Now().UnixNano(), Data: make([]byte, 100)}
	if err := parent.Control(relayID, sm.IDHelloWorld, nil, sm.EncodeHWPing(sm.SchemeASN, ping), false, nil); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-pongs:
		if p.Seq != 11 {
			t.Fatalf("pong seq %d", p.Seq)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no pong through the relay")
	}
}

// relaySouthAddr extracts the relay's southbound bound address.
func relaySouthAddr(t *testing.T, r *ctrl.Relay) string {
	t.Helper()
	return r.SouthAddr()
}

func TestRecursiveVirtualization(t *testing.T) {
	// The Fig. 15b topology: one shared 50 RB eNB, a virtualization
	// controller, and two tenant slicing controllers at 50 % SLA each.
	scheme := sm.SchemeASN

	// Tenant controllers (standard slicing controllers).
	tenantSrvA, tenantAddrA := startSrv(t)
	scA, err := ctrl.NewSlicingController(tenantSrvA, scheme, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer scA.Close()
	tenantSrvB, tenantAddrB := startSrv(t)
	scB, err := ctrl.NewSlicingController(tenantSrvB, scheme, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer scB.Close()

	// Virtualization controller: A owns UEs 1,2; B owns UEs 3,4.
	vc, southAddr, err := ctrl.NewVirtCtrl(ctrl.VirtConfig{
		Scheme: scheme,
		Tenants: []ctrl.Tenant{
			{Name: "A", SLA: 0.5, Subscribers: map[uint16]bool{1: true, 2: true}},
			{Name: "B", SLA: 0.5, Subscribers: map[uint16]bool{3: true, 4: true}},
		},
		SouthAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()

	// Shared infrastructure: 50 RB eNB with 4 saturating UEs.
	b := startBS(t, southAddr, 1, scheme, 50)
	for i := 1; i <= 4; i++ {
		if _, err := b.cell.Attach(uint16(i), fmt.Sprintf("imsi-%d", i), "208.95", 28); err != nil {
			t.Fatal(err)
		}
		if err := b.cell.AddTraffic(uint16(i), &ran.Saturating{
			Flow: ran.FiveTuple{DstIP: uint32(i)}, RateBytesPerMS: 8000,
		}); err != nil {
			t.Fatal(err)
		}
	}
	await(t, "infra agent at virt layer", func() bool { return b.cell.SliceMode() == ran.SliceNVS })

	// Attach tenants (in order).
	if err := vc.ConnectTenant(0, tenantAddrA); err != nil {
		t.Fatal(err)
	}
	if err := vc.ConnectTenant(1, tenantAddrB); err != nil {
		t.Fatal(err)
	}
	await(t, "tenant controllers see the virtual agent", func() bool {
		return len(tenantSrvA.Agents()) == 1 && len(tenantSrvB.Agents()) == 1
	})

	// Tenant A configures sub-slices 66/34 through its own REST API.
	baseA := "http://" + scA.Addr()
	resp := postJSON(t, baseA+"/slices?agent=0", ctrl.SliceConfigJSON{
		Algo: "nvs",
		Slices: []ctrl.SliceParamJSON{
			{ID: 0, Kind: "capacity", Capacity: 0.66, UESched: "pf"},
			{ID: 1, Kind: "capacity", Capacity: 0.34, UESched: "pf"},
		},
	})
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("tenant A slices: %s", resp.Status)
	}
	resp.Body.Close()
	resp = postJSON(t, baseA+"/assoc?agent=0", ctrl.AssocJSON{RNTI: 2, SliceID: 1})
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("tenant A assoc: %s", resp.Status)
	}
	resp.Body.Close()

	// Physical state: 4 slices (A: 33%/17%, B: default 50%), IDs in
	// disjoint intervals.
	await(t, "physical slices updated", func() bool { return len(b.cell.Slices()) == 3 })
	phys := b.cell.Slices()
	var capSum float64
	for _, c := range phys {
		capSum += c.Capacity
	}
	if capSum > 1.001 || capSum < 0.99 {
		t.Fatalf("physical capacity sum %.3f", capSum)
	}
	// Tenant A's virtual 66% must be physical 33%.
	found := false
	for _, c := range phys {
		if c.ID == 0 && c.Capacity > 0.32 && c.Capacity < 0.34 {
			found = true
		}
	}
	if !found {
		t.Fatalf("tenant A phys slices wrong: %+v", phys)
	}

	// Tenant A cannot exceed its SLA.
	resp = postJSON(t, baseA+"/slices?agent=0", ctrl.SliceConfigJSON{
		Algo: "nvs",
		Slices: []ctrl.SliceParamJSON{
			{ID: 0, Kind: "capacity", Capacity: 0.9},
			{ID: 1, Kind: "capacity", Capacity: 0.9},
		},
	})
	if resp.StatusCode == http.StatusNoContent {
		t.Fatal("tenant must not exceed its SLA")
	}
	resp.Body.Close()

	// Tenant A cannot associate tenant B's UE.
	resp = postJSON(t, baseA+"/assoc?agent=0", ctrl.AssocJSON{RNTI: 3, SliceID: 0})
	if resp.StatusCode == http.StatusNoContent {
		t.Fatal("cross-tenant association must be rejected")
	}
	resp.Body.Close()

	// MAC stats partitioning: tenant A's stats only show UEs 1 and 2.
	await(t, "partitioned stats at tenant A", func() bool {
		rep := scA.Monitor().MAC(0)
		if rep == nil || len(rep.UEs) != 2 {
			return false
		}
		for _, u := range rep.UEs {
			if u.RNTI != 1 && u.RNTI != 2 {
				t.Fatalf("tenant A sees foreign UE %d", u.RNTI)
			}
		}
		return true
	})

	// Isolation: tenant B's UEs together get ~50% of the cell.
	time.Sleep(300 * time.Millisecond) // let EWMAs settle under load
	start3, start4 := b.cell.UEDeliveredBits(3), b.cell.UEDeliveredBits(4)
	startT := b.cell.Now()
	await(t, "throughput window", func() bool { return b.cell.Now() >= startT+2000 })
	elapsed := float64(b.cell.Now() - startT)
	gotB := float64(b.cell.UEDeliveredBits(3)-start3+b.cell.UEDeliveredBits(4)-start4) / elapsed * 1000 / 1e6
	cellMbps := float64(ran.CellCapacityBits(50, 28)) * 1000 / 1e6
	if gotB < 0.42*cellMbps || gotB > 0.58*cellMbps {
		t.Fatalf("tenant B throughput %.1f Mbps, want ~50%% of %.1f", gotB, cellMbps)
	}
}
