package ctrl_test

import (
	"testing"
	"time"

	"flexric/internal/ctrl"
	"flexric/internal/e2ap"
	"flexric/internal/ran"
	"flexric/internal/sm"
)

func TestXAppHostMergingAndFanOut(t *testing.T) {
	s, addr := startSrv(t)
	host := ctrl.NewXAppHost(s)
	b := startBS(t, addr, 1, sm.SchemeFB, 25)
	if _, err := b.cell.Attach(1, "", "208.95", 28); err != nil {
		t.Fatal(err)
	}
	if err := b.cell.AddTraffic(1, &ran.Saturating{Flow: ran.FiveTuple{DstIP: 1}, RateBytesPerMS: 3000}); err != nil {
		t.Fatal(err)
	}
	await(t, "agent", func() bool { return len(s.Agents()) == 1 })
	agentID := s.Agents()[0].ID

	x1, err := host.Deploy("kpimon-1", 16)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := host.Deploy("kpimon-2", 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := host.Deploy("kpimon-1", 16); err == nil {
		t.Fatal("duplicate deploy must fail")
	}
	if len(host.XApps()) != 2 {
		t.Fatalf("xapps: %v", host.XApps())
	}

	trigger := sm.EncodeTrigger(sm.SchemeFB, sm.Trigger{PeriodMS: 1})
	actions := []e2ap.Action{{ID: 1, Type: e2ap.ActionReport}}
	if err := x1.Subscribe(agentID, sm.IDMACStats, trigger, actions); err != nil {
		t.Fatal(err)
	}
	// Identical subscription from the second xApp: merged, not re-sent.
	if err := x2.Subscribe(agentID, sm.IDMACStats, trigger, actions); err != nil {
		t.Fatal(err)
	}
	if host.MergedSubscriptions() != 1 {
		t.Fatalf("merged subscriptions: %d, want 1", host.MergedSubscriptions())
	}

	// Both inboxes receive the same stream.
	for _, x := range []*ctrl.HostedXApp{x1, x2} {
		select {
		case ev := <-x.Inbox:
			if ev.FnID != sm.IDMACStats {
				t.Fatalf("%s: event %+v", x.Name(), ev)
			}
			if _, err := sm.DecodeMACReport(ev.Payload); err != nil {
				t.Fatalf("%s: payload: %v", x.Name(), err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("%s: no events", x.Name())
		}
	}

	// The SM database holds the latest payload.
	await(t, "latest payload in DB", func() bool {
		return host.Latest(agentID, sm.IDMACStats) != nil
	})
	if _, err := sm.DecodeMACReport(host.Latest(agentID, sm.IDMACStats)); err != nil {
		t.Fatalf("latest: %v", err)
	}

	// Free-form DB.
	host.DBPut("policy/threshold", []byte("42"))
	if string(host.DBGet("policy/threshold")) != "42" {
		t.Fatal("db get/put")
	}
	if host.DBGet("missing") != nil {
		t.Fatal("missing key must be nil")
	}

	// One member leaves: the E2 subscription survives for the other.
	if err := x1.Unsubscribe(agentID, sm.IDMACStats, trigger, actions); err != nil {
		t.Fatal(err)
	}
	if host.MergedSubscriptions() != 1 {
		t.Fatalf("subscription dropped too early: %d", host.MergedSubscriptions())
	}
	drain(x2.Inbox)
	select {
	case <-x2.Inbox:
	case <-time.After(10 * time.Second):
		t.Fatal("surviving member stopped receiving")
	}
	if err := x1.Unsubscribe(agentID, sm.IDMACStats, trigger, actions); err == nil {
		t.Fatal("double unsubscribe must fail")
	}

	// Last member leaves: the E2 subscription is deleted.
	if err := x2.Unsubscribe(agentID, sm.IDMACStats, trigger, actions); err != nil {
		t.Fatal(err)
	}
	await(t, "merged subscription removed", func() bool {
		return host.MergedSubscriptions() == 0
	})
}

func drain(ch chan ctrl.HostEvent) {
	for {
		select {
		case <-ch:
		default:
			return
		}
	}
}

func TestXAppHostUndeployCleansUp(t *testing.T) {
	s, addr := startSrv(t)
	host := ctrl.NewXAppHost(s)
	startBS(t, addr, 1, sm.SchemeFB, 25)
	await(t, "agent", func() bool { return len(s.Agents()) == 1 })
	agentID := s.Agents()[0].ID

	x, err := host.Deploy("temp", 8)
	if err != nil {
		t.Fatal(err)
	}
	trigger := sm.EncodeTrigger(sm.SchemeFB, sm.Trigger{PeriodMS: 1})
	if err := x.Subscribe(agentID, sm.IDMACStats, trigger, nil); err != nil {
		t.Fatal(err)
	}
	if host.MergedSubscriptions() != 1 {
		t.Fatal("subscription missing")
	}
	if err := host.Undeploy("temp"); err != nil {
		t.Fatal(err)
	}
	await(t, "cleanup", func() bool { return host.MergedSubscriptions() == 0 })
	if len(host.XApps()) != 0 {
		t.Fatal("xapp still listed")
	}
	// Inbox closed.
	if _, ok := <-x.Inbox; ok {
		// Drain any buffered events; channel must eventually close.
		for range x.Inbox {
		}
	}
	if err := host.Undeploy("temp"); err == nil {
		t.Fatal("double undeploy must fail")
	}
}

func TestXAppHostControl(t *testing.T) {
	s, addr := startSrv(t)
	host := ctrl.NewXAppHost(s)
	b := startBS(t, addr, 1, sm.SchemeFB, 25)
	if _, err := b.cell.Attach(1, "", "208.95", 28); err != nil {
		t.Fatal(err)
	}
	await(t, "agent", func() bool { return len(s.Agents()) == 1 })
	agentID := s.Agents()[0].ID
	x, err := host.Deploy("tc-xapp", 8)
	if err != nil {
		t.Fatal(err)
	}
	out := make(chan []byte, 1)
	if err := x.Control(agentID, sm.IDTrafficCtrl, nil,
		sm.EncodeTCControl(sm.SchemeFB, &sm.TCControl{Op: sm.OpAddQueue, RNTI: 1}),
		func(o []byte, err error) {
			if err != nil {
				t.Errorf("control: %v", err)
			}
			out <- o
		}); err != nil {
		t.Fatal(err)
	}
	select {
	case o := <-out:
		oc, err := sm.DecodeTCOutcome(o)
		if err != nil || oc.Queue != 1 {
			t.Fatalf("outcome %+v %v", oc, err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no control outcome")
	}
}
