package ctrl_test

import (
	"net/http"
	"strings"
	"testing"

	"flexric/internal/a1"
	"flexric/internal/ctrl"
	"flexric/internal/sm"
)

func newA1StoreWithPolicy(t *testing.T) *a1.Store {
	t.Helper()
	store := a1.NewStore()
	if _, err := store.Create(a1.Policy{
		ID: "sla-1", TypeID: a1.TypeSliceSLA, Agent: 0, WindowMS: 500,
		Targets: []a1.SliceTarget{{SliceID: 1, MinThroughputMbps: 10}},
	}); err != nil {
		t.Fatal(err)
	}
	return store
}

// TestSlicingRESTMethodAndContentEnforcement: the slicing northbound
// must reject wrong methods with 405 + Allow (matching the obs mux's
// enforcement) and non-JSON POST bodies with 415, and must propagate
// control-plane failures as 502.
func TestSlicingRESTMethodAndContentEnforcement(t *testing.T) {
	s, _ := startSrv(t)
	sc, err := ctrl.NewSlicingController(s, sm.SchemeFB, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	base := "http://" + sc.Addr()

	do := func(method, url, contentType, body string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(method, url, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	// 405 with Allow on both mutating routes.
	resp := do(http.MethodDelete, base+"/slices?agent=0", "", "")
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != "GET, POST" {
		t.Fatalf("DELETE /slices: %s allow=%q", resp.Status, resp.Header.Get("Allow"))
	}
	resp = do(http.MethodGet, base+"/assoc?agent=0", "", "")
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != "POST" {
		t.Fatalf("GET /assoc: %s allow=%q", resp.Status, resp.Header.Get("Allow"))
	}

	// 415 for non-JSON and missing content types.
	resp = do(http.MethodPost, base+"/slices?agent=0", "text/plain", `{"algo":"nvs"}`)
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("text/plain POST /slices: %s", resp.Status)
	}
	resp = do(http.MethodPost, base+"/assoc?agent=0", "", `{"rnti":1,"sliceId":2}`)
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("untyped POST /assoc: %s", resp.Status)
	}

	// A charset parameter is still JSON.
	resp = do(http.MethodPost, base+"/slices?agent=0", "application/json; charset=utf-8", `{"algo":"bogus"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("charset POST /slices: %s", resp.Status)
	}

	// apply failure propagation: no agent 0 is connected, so a valid
	// body reaches apply and the control-plane error surfaces as 502.
	resp = postJSON(t, base+"/slices?agent=0", ctrl.SliceConfigJSON{
		Algo:   "nvs",
		Slices: []ctrl.SliceParamJSON{{ID: 1, Kind: "capacity", Capacity: 0.5}},
	})
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("POST /slices without agent: %s", resp.Status)
	}
	resp.Body.Close()
	resp = postJSON(t, base+"/assoc?agent=0", ctrl.AssocJSON{RNTI: 1, SliceID: 1})
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("POST /assoc without agent: %s", resp.Status)
	}
	resp.Body.Close()
}

// TestTopologyWithA1 verifies the snapshot reflects the policy plane:
// count, per-policy verdicts, and target slice IDs.
func TestTopologyWithA1(t *testing.T) {
	s, _ := startSrv(t)
	store := newA1StoreWithPolicy(t)
	topo := ctrl.NewTopology(s, ctrl.TopoWithA1(store))
	snap := topo.Snapshot()
	if snap.A1Policies != 1 || len(snap.SLA) != 1 {
		t.Fatalf("snapshot %+v", snap)
	}
	sla := snap.SLA[0]
	if sla.Policy != "sla-1" || sla.Status != "NOT_APPLIED" || len(sla.Slices) != 1 || sla.Slices[0] != 1 {
		t.Fatalf("sla %+v", sla)
	}
}
