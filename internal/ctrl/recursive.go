package ctrl

import (
	"fmt"
	"sync"

	"flexric/internal/agent"
	"flexric/internal/e2ap"
	"flexric/internal/nvs"
	"flexric/internal/resilience"
	"flexric/internal/server"
	"flexric/internal/sm"
	"flexric/internal/transport"
)

// VirtCtrl is the recursive virtualization controller of §6.2
// (Fig. 14a, Table 5): it terminates the shared infrastructure's agents
// on its southbound (server library), and reuses the agent library as
// its northbound communication interface to recursively expose the E2
// interface to multiple guest (tenant) controllers. Its iApps implement
// the SM-specific virtualization layer:
//
//   - SC SM virtualization: tenants configure sub-slices within a
//     virtual base station of 100 % resources; shares are scaled by the
//     tenant's SLA per Appendix B and slice IDs are remapped into
//     disjoint physical intervals, so no tenant can exceed its SLA and
//     conflicts are impossible by construction.
//   - MAC statistics partitioning: each tenant only sees its own
//     subscribers' UEs.
type VirtCtrl struct {
	srv   *server.Server
	north *agent.Agent

	scheme  sm.Scheme
	tenants []Tenant
	virt    []*nvs.Virtualizer

	mu         sync.Mutex
	south      server.AgentID
	southReady bool
	// virtSlices holds each tenant's current virtual slice set.
	virtSlices [][]nvs.Config
	// northSubs maps (tenant, north request) → south subscription.
	northSubs map[vSubKey]server.SubID
}

type vSubKey struct {
	tenant int
	req    e2ap.RequestID
}

// Tenant is one guest operator of the shared infrastructure.
type Tenant struct {
	Name string
	// SLA is the operator's physical resource share in (0,1].
	SLA float64
	// Subscribers lists the RNTIs of the tenant's UEs.
	Subscribers map[uint16]bool
}

// owns reports whether the tenant serves the UE.
func (t Tenant) owns(rnti uint16) bool { return t.Subscribers[rnti] }

// VirtConfig parameterizes a VirtCtrl.
type VirtConfig struct {
	Scheme    sm.Scheme
	E2Scheme  e2ap.Scheme
	Transport transport.Kind
	Tenants   []Tenant
	// SouthAddr is where infrastructure agents connect.
	SouthAddr string
	// Resilience configures the southbound server's keepalive and
	// subscription retention: an infrastructure agent that drops and
	// redials within RetainFor is re-admitted under its old AgentID and
	// every tenant-mapped south subscription is replayed, so tenant
	// streams survive transient south faults without the tenants ever
	// noticing. Nil keeps the pre-resilience behavior.
	Resilience *resilience.Config
}

// NewVirtCtrl starts the virtualization controller. Tenant controllers
// are attached afterwards with ConnectTenant, in tenant order.
func NewVirtCtrl(cfg VirtConfig) (*VirtCtrl, string, error) {
	if len(cfg.Tenants) == 0 {
		return nil, "", fmt.Errorf("ctrl: no tenants")
	}
	total := 0.0
	v := &VirtCtrl{
		scheme:     cfg.Scheme,
		tenants:    cfg.Tenants,
		virtSlices: make([][]nvs.Config, len(cfg.Tenants)),
		northSubs:  make(map[vSubKey]server.SubID),
	}
	for i, t := range cfg.Tenants {
		vr, err := nvs.NewVirtualizer(uint32(i), t.SLA)
		if err != nil {
			return nil, "", fmt.Errorf("ctrl: tenant %s: %w", t.Name, err)
		}
		v.virt = append(v.virt, vr)
		total += t.SLA
	}
	if total > 1+1e-9 {
		return nil, "", fmt.Errorf("ctrl: tenant SLAs total %.3f > 1", total)
	}

	v.srv = server.New(server.Config{Scheme: cfg.E2Scheme, Transport: cfg.Transport, Resilience: cfg.Resilience})
	v.srv.OnAgentConnect(func(info server.AgentInfo) { v.onSouthAgent(info) })
	addr, err := v.srv.Start(cfg.SouthAddr)
	if err != nil {
		return nil, "", err
	}

	v.north = agent.New(agent.Config{
		NodeID: e2ap.GlobalE2NodeID{
			PLMN: e2ap.PLMN{MCC: 208, MNC: 95}, Type: e2ap.NodeENB, NodeID: 8000,
		},
		Scheme:    cfg.E2Scheme,
		Transport: cfg.Transport,
	})
	fns := []agent.RANFunction{
		&vSliceFn{v: v},
		&vStatsFn{v: v, fnID: sm.IDMACStats, oid: "virt-mac"},
	}
	for _, fn := range fns {
		if err := v.north.RegisterFunction(fn); err != nil {
			v.srv.Close()
			return nil, "", err
		}
	}
	return v, addr, nil
}

// ConnectTenant attaches tenant i's guest controller (connect in tenant
// order: the agent library's controller IDs must line up with tenants).
func (v *VirtCtrl) ConnectTenant(i int, ctrlAddr string) error {
	if i < 0 || i >= len(v.tenants) {
		return fmt.Errorf("ctrl: no tenant %d", i)
	}
	id, err := v.north.Connect(ctrlAddr)
	if err != nil {
		return err
	}
	if int(id) != i {
		return fmt.Errorf("ctrl: tenant %d got controller id %d; connect tenants in order", i, id)
	}
	return nil
}

// Close tears the virtualization controller down.
func (v *VirtCtrl) Close() error {
	v.north.Close()
	return v.srv.Close()
}

// onSouthAgent installs the initial physical slice configuration: one
// default slice per tenant at its SLA, with every subscriber associated,
// so inter-tenant isolation holds before tenants configure anything.
func (v *VirtCtrl) onSouthAgent(info server.AgentInfo) {
	if !info.HasFunction(sm.IDSliceCtrl) {
		return
	}
	v.mu.Lock()
	v.south = info.ID
	v.southReady = true
	for i := range v.tenants {
		if v.virtSlices[i] == nil {
			v.virtSlices[i] = []nvs.Config{{ID: 0, Kind: nvs.KindCapacity, Capacity: 1.0, UESched: "pf"}}
		}
	}
	v.mu.Unlock()
	_ = v.pushPhysical()
	v.syncAssociations()
}

// pushPhysical recomputes the combined physical slice set from all
// tenants' virtual sets and installs it on the infrastructure.
func (v *VirtCtrl) pushPhysical() error {
	v.mu.Lock()
	if !v.southReady {
		v.mu.Unlock()
		return fmt.Errorf("ctrl: no southbound agent")
	}
	south := v.south
	var phys []nvs.Config
	for i := range v.tenants {
		p, err := v.virt[i].ToPhysical(v.virtSlices[i])
		if err != nil {
			v.mu.Unlock()
			return err
		}
		phys = append(phys, p...)
	}
	v.mu.Unlock()
	ctl := &sm.SliceControl{Op: sm.OpConfigureSlices, Slices: sm.ParamsFromNVS(phys)}
	return v.controlSouth(south, sm.IDSliceCtrl, sm.EncodeSliceControl(v.scheme, ctl))
}

// syncAssociations points every subscriber at its tenant's default
// physical slice (virtual slice 0).
func (v *VirtCtrl) syncAssociations() {
	v.mu.Lock()
	south := v.south
	type assoc struct {
		rnti uint16
		phys uint32
	}
	var all []assoc
	for i, t := range v.tenants {
		pid, err := v.virt[i].PhysicalID(0)
		if err != nil {
			continue
		}
		for rnti := range t.Subscribers {
			all = append(all, assoc{rnti, pid})
		}
	}
	v.mu.Unlock()
	for _, a := range all {
		ctl := &sm.SliceControl{Op: sm.OpAssociateUE, RNTI: a.rnti, SliceID: a.phys}
		_ = v.controlSouth(south, sm.IDSliceCtrl, sm.EncodeSliceControl(v.scheme, ctl))
	}
}

func (v *VirtCtrl) controlSouth(south server.AgentID, fnID uint16, payload []byte) error {
	ch := make(chan error, 1)
	if err := v.srv.Control(south, fnID, nil, payload, true,
		func(_ []byte, err error) { ch <- err }); err != nil {
		return err
	}
	return <-ch
}

// --- SC SM virtualization iApp ---

type vSliceFn struct {
	v *VirtCtrl
}

// Definition implements agent.RANFunction.
func (f *vSliceFn) Definition() e2ap.RANFunctionItem {
	return e2ap.RANFunctionItem{ID: sm.IDSliceCtrl, Revision: 1, OID: "virt-sc"}
}

// OnSubscription proxies SC SM status reports, mapped into the tenant's
// virtual view.
func (f *vSliceFn) OnSubscription(ctrl agent.ControllerID, req *e2ap.SubscriptionRequest, tx agent.IndicationSender) error {
	v := f.v
	tenant := int(ctrl)
	if tenant >= len(v.tenants) {
		return fmt.Errorf("ctrl: unknown tenant %d", tenant)
	}
	v.mu.Lock()
	ready := v.southReady
	south := v.south
	v.mu.Unlock()
	if !ready {
		return fmt.Errorf("ctrl: no southbound agent")
	}
	sub, err := v.srv.Subscribe(south, sm.IDSliceCtrl, req.EventTrigger, req.Actions,
		server.SubscriptionCallbacks{
			OnIndication: func(ev server.IndicationEvent) {
				st, err := sm.DecodeSliceStatus(ev.Env.IndicationPayload())
				if err != nil {
					return
				}
				vst := v.virtualizeStatus(tenant, st)
				_ = tx.SendIndication(1, e2ap.IndicationReport, nil, sm.EncodeSliceStatus(v.scheme, vst))
			},
		})
	if err != nil {
		return err
	}
	v.mu.Lock()
	v.northSubs[vSubKey{tenant, req.RequestID}] = sub
	v.mu.Unlock()
	return nil
}

// virtualizeStatus filters and rescales a physical slice status into the
// tenant's virtual view.
func (v *VirtCtrl) virtualizeStatus(tenant int, st *sm.SliceStatus) *sm.SliceStatus {
	phys := sm.ToNVS(st.Slices)
	virt := v.virt[tenant].ToVirtual(phys)
	out := &sm.SliceStatus{Algo: st.Algo, Slices: sm.ParamsFromNVS(virt)}
	for _, ua := range st.UEs {
		if !v.tenants[tenant].owns(ua.RNTI) {
			continue
		}
		vid, ok := v.virt[tenant].VirtualID(ua.SliceID)
		if !ok {
			continue
		}
		out.UEs = append(out.UEs, sm.UESliceAssoc{RNTI: ua.RNTI, SliceID: vid})
	}
	return out
}

// OnSubscriptionDelete implements agent.RANFunction.
func (f *vSliceFn) OnSubscriptionDelete(ctrl agent.ControllerID, req *e2ap.SubscriptionDeleteRequest) error {
	return f.v.deleteNorthSub(int(ctrl), req.RequestID, sm.IDSliceCtrl)
}

func (v *VirtCtrl) deleteNorthSub(tenant int, req e2ap.RequestID, fnID uint16) error {
	key := vSubKey{tenant, req}
	v.mu.Lock()
	sub, ok := v.northSubs[key]
	delete(v.northSubs, key)
	v.mu.Unlock()
	if !ok {
		return fmt.Errorf("ctrl: unknown subscription")
	}
	return v.srv.Unsubscribe(sub, fnID)
}

// OnControl applies a tenant's virtual slice control.
func (f *vSliceFn) OnControl(ctrl agent.ControllerID, req *e2ap.ControlRequest) ([]byte, error) {
	v := f.v
	tenant := int(ctrl)
	if tenant >= len(v.tenants) {
		return nil, fmt.Errorf("ctrl: unknown tenant %d", tenant)
	}
	c, err := sm.DecodeSliceControl(req.Payload)
	if err != nil {
		return nil, err
	}
	switch c.Op {
	case sm.OpConfigureSlices:
		virt := sm.ToNVS(c.Slices)
		// Virtual admission control happens inside ToPhysical: a tenant
		// can never occupy more than its SLA.
		if _, err := v.virt[tenant].ToPhysical(virt); err != nil {
			return nil, err
		}
		v.mu.Lock()
		v.virtSlices[tenant] = virt
		v.mu.Unlock()
		if err := v.pushPhysical(); err != nil {
			return nil, err
		}
		return nil, nil
	case sm.OpAssociateUE:
		if !v.tenants[tenant].owns(c.RNTI) {
			return nil, fmt.Errorf("ctrl: UE %d is not tenant %s's subscriber", c.RNTI, v.tenants[tenant].Name)
		}
		pid, err := v.virt[tenant].PhysicalID(c.SliceID)
		if err != nil {
			return nil, err
		}
		v.mu.Lock()
		south := v.south
		ready := v.southReady
		v.mu.Unlock()
		if !ready {
			return nil, fmt.Errorf("ctrl: no southbound agent")
		}
		ctl := &sm.SliceControl{Op: sm.OpAssociateUE, RNTI: c.RNTI, SliceID: pid}
		return nil, v.controlSouth(south, sm.IDSliceCtrl, sm.EncodeSliceControl(v.scheme, ctl))
	case sm.OpDisableSlicing:
		return nil, fmt.Errorf("ctrl: tenants cannot disable shared-infrastructure slicing")
	default:
		return nil, fmt.Errorf("ctrl: unknown slice op %d", c.Op)
	}
}

// --- MAC statistics partitioning iApp ---

type vStatsFn struct {
	v    *VirtCtrl
	fnID uint16
	oid  string
}

// Definition implements agent.RANFunction.
func (f *vStatsFn) Definition() e2ap.RANFunctionItem {
	return e2ap.RANFunctionItem{ID: f.fnID, Revision: 1, OID: f.oid}
}

// OnSubscription proxies MAC stats southbound and partitions the reports
// per tenant: "the MAC statistics SM is sliced by only revealing UEs to
// a controller which are among the respective operator's subscribers."
func (f *vStatsFn) OnSubscription(ctrl agent.ControllerID, req *e2ap.SubscriptionRequest, tx agent.IndicationSender) error {
	v := f.v
	tenant := int(ctrl)
	if tenant >= len(v.tenants) {
		return fmt.Errorf("ctrl: unknown tenant %d", tenant)
	}
	v.mu.Lock()
	ready := v.southReady
	south := v.south
	v.mu.Unlock()
	if !ready {
		return fmt.Errorf("ctrl: no southbound agent")
	}
	sub, err := v.srv.Subscribe(south, f.fnID, req.EventTrigger, req.Actions,
		server.SubscriptionCallbacks{
			OnIndication: func(ev server.IndicationEvent) {
				rep, err := sm.DecodeMACReport(ev.Env.IndicationPayload())
				if err != nil {
					return
				}
				part := &sm.MACReport{CellTimeMS: rep.CellTimeMS}
				for _, u := range rep.UEs {
					if v.tenants[tenant].owns(u.RNTI) {
						part.UEs = append(part.UEs, u)
					}
				}
				_ = tx.SendIndication(1, e2ap.IndicationReport, nil, sm.EncodeMACReport(v.scheme, part))
			},
		})
	if err != nil {
		return err
	}
	v.mu.Lock()
	v.northSubs[vSubKey{tenant, req.RequestID}] = sub
	v.mu.Unlock()
	return nil
}

// OnSubscriptionDelete implements agent.RANFunction.
func (f *vStatsFn) OnSubscriptionDelete(ctrl agent.ControllerID, req *e2ap.SubscriptionDeleteRequest) error {
	return f.v.deleteNorthSub(int(ctrl), req.RequestID, f.fnID)
}

// OnControl implements agent.RANFunction.
func (f *vStatsFn) OnControl(agent.ControllerID, *e2ap.ControlRequest) ([]byte, error) {
	return nil, fmt.Errorf("ctrl: stats partitioning has no control endpoint")
}
