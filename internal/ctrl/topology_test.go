package ctrl_test

import (
	"encoding/json"
	"testing"
	"time"

	"flexric/internal/agent"
	"flexric/internal/ctrl"
	"flexric/internal/e2ap"
	"flexric/internal/ran"
	"flexric/internal/server"
	"flexric/internal/sm"
	"flexric/internal/tsdb"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestTopologySnapshot: the snapshot reflects connected agents, their
// function inventory, the live subscription count, and monitor state —
// and serializes to JSON cleanly.
func TestTopologySnapshot(t *testing.T) {
	srv := server.New(server.Config{Scheme: e2ap.SchemeFB})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	store := tsdb.New(tsdb.Config{Capacity: 128})
	mon := ctrl.NewMonitor(srv, ctrl.MonitorConfig{
		Scheme: sm.SchemeFB, PeriodMS: 1, Layers: ctrl.MonMAC, Decode: true, TSDB: store,
	})
	topo := ctrl.NewTopology(srv, ctrl.TopoWithMonitor(mon))

	cell, err := ran.NewCell(ran.PHYConfig{RAT: ran.RAT4G, NumRB: 25})
	if err != nil {
		t.Fatal(err)
	}
	a := agent.New(agent.Config{
		NodeID: e2ap.GlobalE2NodeID{PLMN: e2ap.PLMN{MCC: 208, MNC: 95}, Type: e2ap.NodeENB, NodeID: 7},
		Scheme: e2ap.SchemeFB,
	})
	fns := []agent.RANFunction{sm.NewMACStats(cell, sm.SchemeFB, a)}
	for _, fn := range fns {
		if err := a.RegisterFunction(fn); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Connect(addr); err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, err := cell.Attach(1, "", "208.95", 20); err != nil {
		t.Fatal(err)
	}

	waitFor(t, "subscription", func() bool { return srv.NumSubscriptions() == 1 })
	waitFor(t, "ingest", func() bool {
		for i := 0; i < 5; i++ {
			cell.Step(1)
			sm.TickAll(fns, cell.Now())
		}
		n, _ := mon.Counters()
		return n > 0 && store.NumSeries() > 0
	})

	snap := topo.Snapshot()
	if len(snap.Agents) != 1 {
		t.Fatalf("agents = %+v, want 1", snap.Agents)
	}
	ag := snap.Agents[0]
	if len(ag.Functions) != 1 || ag.Functions[0] != "mac" {
		t.Errorf("functions = %v, want [mac]", ag.Functions)
	}
	if ag.Node == "" || ag.Addr == "" {
		t.Errorf("agent identity empty: %+v", ag)
	}
	if snap.Subscriptions != 1 {
		t.Errorf("subscriptions = %d, want 1", snap.Subscriptions)
	}
	if snap.Indications == 0 || snap.Series == 0 {
		t.Errorf("monitor state missing: indications=%d series=%d", snap.Indications, snap.Series)
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not JSON-serializable: %v", err)
	}

	// Disconnect: the agent leaves the snapshot.
	a.Close()
	waitFor(t, "agent removal", func() bool { return len(topo.Snapshot().Agents) == 0 })
}

// TestTopologyWithFederation: the federation tier rides the snapshot
// verbatim and serializes under the "federation" key.
func TestTopologyWithFederation(t *testing.T) {
	srv := server.New(server.Config{Scheme: e2ap.SchemeFB})
	if _, err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	fed := map[string]any{"members": []string{"s0", "s1"}, "failovers": 1}
	topo := ctrl.NewTopology(srv, ctrl.TopoWithFederation(func() any { return fed }))
	snap := topo.Snapshot()
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]json.RawMessage
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(out["federation"], &got); err != nil {
		t.Fatalf("federation key missing or malformed: %v", err)
	}
	if got["failovers"] != float64(1) {
		t.Fatalf("federation tier = %v", got)
	}
	// Without the option the key is omitted entirely.
	b2, _ := json.Marshal(ctrl.NewTopology(srv).Snapshot())
	var out2 map[string]json.RawMessage
	_ = json.Unmarshal(b2, &out2)
	if _, ok := out2["federation"]; ok {
		t.Fatal("federation key present without TopoWithFederation")
	}
}

// TestFnName covers known and unknown function IDs.
func TestFnName(t *testing.T) {
	if got := ctrl.FnName(sm.IDMACStats); got != "mac" {
		t.Errorf("FnName(mac) = %q", got)
	}
	if got := ctrl.FnName(9999); got != "fn9999" {
		t.Errorf("FnName(9999) = %q", got)
	}
}
