package ctrl

import (
	"sort"
	"time"

	"flexric/internal/a1"
	"flexric/internal/server"
	"flexric/internal/sm"
)

// Topology assembles the controller-state snapshot the control room's
// topology panel renders: connected agents with their RAN functions,
// live subscription count, monitor ingest counters, and (when a slicing
// controller is attached) per-agent slice state. It is a read-only view
// over state the server, monitor, and slicing controller already hold —
// Snapshot takes no locks beyond theirs and is safe to call from the
// obs stream hub's flush tick.
type Topology struct {
	srv        *server.Server
	mon        *Monitor
	slicing    *SlicingController
	policies   *a1.Store
	federation func() any
}

// TopologyOption configures a Topology.
type TopologyOption func(*Topology)

// TopoWithMonitor includes the monitor's ingest counters and attached
// store occupancy in snapshots.
func TopoWithMonitor(m *Monitor) TopologyOption {
	return func(t *Topology) { t.mon = m }
}

// TopoWithSlicing includes per-agent slice status in snapshots.
func TopoWithSlicing(sc *SlicingController) TopologyOption {
	return func(t *Topology) { t.slicing = sc }
}

// TopoWithA1 includes the A1 policy plane in snapshots: the active
// policy count and each policy's current SLA verdict, so /topology.json
// shows the closed loop next to the slice state it steers.
func TopoWithA1(st *a1.Store) TopologyOption {
	return func(t *Topology) { t.policies = st }
}

// TopoWithFederation includes a federation-tier summary in snapshots —
// the root controller's shard registry (live/dead shards, per-shard
// agent sets, failover count). fn is typically federation.Root.Snapshot;
// the indirection keeps ctrl decoupled from the federation package.
func TopoWithFederation(fn func() any) TopologyOption {
	return func(t *Topology) { t.federation = fn }
}

// NewTopology builds a topology view over a server.
func NewTopology(srv *server.Server, opts ...TopologyOption) *Topology {
	t := &Topology{srv: srv}
	for _, o := range opts {
		o(t)
	}
	return t
}

// TopologyAgent is one connected agent in a snapshot.
type TopologyAgent struct {
	ID        int      `json:"id"`
	Node      string   `json:"node"`
	Addr      string   `json:"addr"`
	Functions []string `json:"functions"`
}

// TopologySlice is one agent's slice state in a snapshot.
type TopologySlice struct {
	Agent  int               `json:"agent"`
	Algo   string            `json:"algo"`
	Slices []sm.SliceParams  `json:"slices,omitempty"`
	UEs    []sm.UESliceAssoc `json:"ues,omitempty"`
}

// TopologySLA is one A1 policy's live verdict in a snapshot.
type TopologySLA struct {
	Policy  string   `json:"policy"`
	Agent   int      `json:"agent"`
	Slices  []uint32 `json:"slices,omitempty"` // slice IDs under targets
	Status  string   `json:"status"`
	Reason  string   `json:"reason,omitempty"`
	Version uint64   `json:"version"`
}

// TopologySnapshot is one point-in-time view of controller state.
type TopologySnapshot struct {
	TS            int64           `json:"ts"`
	Agents        []TopologyAgent `json:"agents"`
	Subscriptions int             `json:"subscriptions"`
	Indications   uint64          `json:"indications,omitempty"`
	BytesIn       uint64          `json:"bytes_in,omitempty"`
	Series        int             `json:"series,omitempty"`
	Slices        []TopologySlice `json:"slices,omitempty"`
	A1Policies    int             `json:"a1_policies,omitempty"`
	SLA           []TopologySLA   `json:"sla,omitempty"`
	Federation    any             `json:"federation,omitempty"`
}

// fnNames maps the shipped service-model IDs to short names; unknown
// functions render as "fn<id>".
var fnNames = map[uint16]string{
	sm.IDHelloWorld:  "hello",
	sm.IDMACStats:    "mac",
	sm.IDRLCStats:    "rlc",
	sm.IDPDCPStats:   "pdcp",
	sm.IDSliceCtrl:   "slice",
	sm.IDTrafficCtrl: "tc",
	sm.IDKPM:         "kpm",
	sm.IDRRC:         "rrc",
}

// FnName returns the short name for a RAN function ID.
func FnName(id uint16) string {
	if n, ok := fnNames[id]; ok {
		return n
	}
	return "fn" + itoa(uint64(id))
}

// itoa avoids pulling strconv into the hot snapshot path dependencies;
// topology snapshots are cold, this is just a tiny decimal formatter.
func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Snapshot materializes the current topology.
func (t *Topology) Snapshot() TopologySnapshot {
	snap := TopologySnapshot{
		TS:            time.Now().UnixNano(),
		Subscriptions: t.srv.NumSubscriptions(),
	}
	for _, ai := range t.srv.Agents() {
		ta := TopologyAgent{
			ID:   int(ai.ID),
			Node: ai.NodeID.String(),
			Addr: ai.Addr,
		}
		for _, fn := range ai.Functions {
			ta.Functions = append(ta.Functions, FnName(fn.ID))
		}
		snap.Agents = append(snap.Agents, ta)
	}
	sort.Slice(snap.Agents, func(i, j int) bool { return snap.Agents[i].ID < snap.Agents[j].ID })
	if t.mon != nil {
		snap.Indications, snap.BytesIn = t.mon.Counters()
		if db := t.mon.TSDB(); db != nil {
			snap.Series = db.NumSeries()
		}
	}
	if t.slicing != nil {
		for id, st := range t.slicing.Status() {
			snap.Slices = append(snap.Slices, TopologySlice{
				Agent:  int(id),
				Algo:   st.Algo,
				Slices: st.Slices,
				UEs:    st.UEs,
			})
		}
		sort.Slice(snap.Slices, func(i, j int) bool { return snap.Slices[i].Agent < snap.Slices[j].Agent })
	}
	if t.policies != nil {
		for _, st := range t.policies.List() {
			sla := TopologySLA{
				Policy:  st.Policy.ID,
				Agent:   st.Policy.Agent,
				Status:  string(st.Status),
				Reason:  st.Reason,
				Version: st.Policy.Version,
			}
			for _, tgt := range st.Policy.Targets {
				sla.Slices = append(sla.Slices, tgt.SliceID)
			}
			snap.SLA = append(snap.SLA, sla)
		}
		snap.A1Policies = len(snap.SLA)
	}
	if t.federation != nil {
		snap.Federation = t.federation()
	}
	return snap
}
