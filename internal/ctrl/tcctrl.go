package ctrl

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"flexric/internal/broker"
	"flexric/internal/e2ap"
	"flexric/internal/server"
	"flexric/internal/sm"
)

// TCController is the flow-based traffic control specialization of
// §6.1.1 (Table 3): iApps forward RLC and TC statistics to a message
// broker (the Redis role), and a TC SM manager relays REST POST commands
// to the agent. The xApp subscribes to the broker channels and posts
// control commands — functionally isolated from the controller.
//
// Broker channels: "stats.rlc.<agent>" and "stats.tc.<agent>" carry raw
// SM payloads. REST: POST /tc?agent=N with TCCommandJSON.
type TCController struct {
	srv    *server.Server
	scheme sm.Scheme
	pub    *broker.Client
	http   *http.Server
	lis    net.Listener
}

// TCCommandJSON is the REST body for POST /tc.
type TCCommandJSON struct {
	Op   string `json:"op"` // addQueue | removeQueue | addFilter | setPacer
	RNTI uint16 `json:"rnti"`

	Queue uint32 `json:"queue,omitempty"`

	SrcIP      uint32 `json:"srcIp,omitempty"`
	DstIP      uint32 `json:"dstIp,omitempty"`
	SrcPort    uint16 `json:"srcPort,omitempty"`
	DstPort    uint16 `json:"dstPort,omitempty"`
	Proto      uint8  `json:"proto,omitempty"`
	MatchProto bool   `json:"matchProto,omitempty"`

	Pacer         string `json:"pacer,omitempty"` // "none" | "bdp"
	PacerTargetMS uint32 `json:"pacerTargetMs,omitempty"`
}

// TCCommandResult is the REST response for POST /tc.
type TCCommandResult struct {
	Queue uint32 `json:"queue,omitempty"`
}

// NewTCController attaches the TC specialization: stats forwarding to
// the broker at brokerAddr and a REST endpoint on httpAddr.
func NewTCController(srv *server.Server, scheme sm.Scheme, brokerAddr, httpAddr string) (*TCController, error) {
	pub, err := broker.Dial(brokerAddr)
	if err != nil {
		return nil, err
	}
	c := &TCController{srv: srv, scheme: scheme, pub: pub}

	srv.OnAgentConnect(func(info server.AgentInfo) {
		if info.HasFunction(sm.IDRLCStats) {
			ch := fmt.Sprintf("stats.rlc.%d", info.ID)
			_, _ = srv.Subscribe(info.ID, sm.IDRLCStats,
				sm.EncodeTrigger(scheme, sm.Trigger{PeriodMS: 10}),
				[]e2ap.Action{{ID: 1, Type: e2ap.ActionReport}},
				server.SubscriptionCallbacks{
					OnIndication: func(ev server.IndicationEvent) {
						_ = c.pub.PublishTraced(ch, ev.Env.IndicationPayload(), ev.Trace)
					},
				})
		}
		if info.HasFunction(sm.IDTrafficCtrl) {
			ch := fmt.Sprintf("stats.tc.%d", info.ID)
			_, _ = srv.Subscribe(info.ID, sm.IDTrafficCtrl,
				sm.EncodeTrigger(scheme, sm.Trigger{PeriodMS: 10}),
				[]e2ap.Action{{ID: 1, Type: e2ap.ActionReport}},
				server.SubscriptionCallbacks{
					OnIndication: func(ev server.IndicationEvent) {
						_ = c.pub.PublishTraced(ch, ev.Env.IndicationPayload(), ev.Trace)
					},
				})
		}
	})

	mux := http.NewServeMux()
	mux.HandleFunc("/tc", c.handleTC)
	lis, err := net.Listen("tcp", httpAddr)
	if err != nil {
		pub.Close()
		return nil, err
	}
	c.lis = lis
	c.http = &http.Server{Handler: mux}
	go func() { _ = c.http.Serve(lis) }()
	return c, nil
}

// Addr returns the REST northbound address.
func (c *TCController) Addr() string { return c.lis.Addr().String() }

// Close stops the REST server and broker connection.
func (c *TCController) Close() error {
	c.pub.Close()
	return c.http.Close()
}

func (c *TCController) handleTC(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	id, err := agentParam(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var body TCCommandJSON
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctl, err := tcControlFromJSON(&body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	outcome, err := c.apply(id, ctl)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	res := TCCommandResult{}
	if outcome != nil {
		if oc, err := sm.DecodeTCOutcome(outcome); err == nil {
			res.Queue = oc.Queue
		}
	}
	writeJSON(w, res)
}

func tcControlFromJSON(body *TCCommandJSON) (*sm.TCControl, error) {
	ctl := &sm.TCControl{
		RNTI:       body.RNTI,
		Queue:      body.Queue,
		SrcIP:      body.SrcIP,
		DstIP:      body.DstIP,
		SrcPort:    body.SrcPort,
		DstPort:    body.DstPort,
		Proto:      body.Proto,
		MatchProto: body.MatchProto,
	}
	switch body.Op {
	case "addQueue":
		ctl.Op = sm.OpAddQueue
	case "removeQueue":
		ctl.Op = sm.OpRemoveQueue
	case "addFilter":
		ctl.Op = sm.OpAddFilter
	case "setPacer":
		ctl.Op = sm.OpSetPacer
		switch body.Pacer {
		case "bdp":
			ctl.Pacer = 1
		case "", "none":
			ctl.Pacer = 0
		default:
			return nil, fmt.Errorf("unknown pacer %q", body.Pacer)
		}
		ctl.PacerTargetMS = body.PacerTargetMS
	default:
		return nil, fmt.Errorf("unknown op %q", body.Op)
	}
	return ctl, nil
}

func (c *TCController) apply(id server.AgentID, ctl *sm.TCControl) ([]byte, error) {
	type res struct {
		out []byte
		err error
	}
	ch := make(chan res, 1)
	if err := c.srv.Control(id, sm.IDTrafficCtrl, nil,
		sm.EncodeTCControl(c.scheme, ctl), true,
		func(out []byte, err error) { ch <- res{out, err} }); err != nil {
		return nil, err
	}
	select {
	case r := <-ch:
		return r.out, r.err
	case <-time.After(5 * time.Second):
		return nil, errors.New("tc control timed out")
	}
}
