package ctrl

import (
	"encoding/json"
	"errors"
	"fmt"
	"mime"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"flexric/internal/server"
	"flexric/internal/sm"
	"flexric/internal/tsdb"
)

// SlicingController is the RAT-unaware slicing specialization of §6.1.2
// (Table 4): an internal DB for RAN stats (cf. FlexRAN's RIB), an SC SM
// manager relaying REST commands, and an HTTP GET/POST northbound usable
// with nothing but curl.
//
// REST interface:
//
//	GET  /agents          → connected agents
//	GET  /stats?agent=N   → latest MAC report (internal DB)
//	GET  /stats/agg?agent=N&ue=R&field=F&window_ms=W
//	                      → windowed aggregate over the last W ms of the
//	                        UE's MAC series (tsdb.Agg JSON)
//	GET  /slices?agent=N  → latest SC SM status report
//	POST /slices?agent=N  → body SliceConfigJSON: configure slices
//	POST /assoc?agent=N   → body AssocJSON: associate UE to slice
type SlicingController struct {
	srv    *server.Server
	mon    *Monitor
	scheme sm.Scheme
	http   *http.Server
	lis    net.Listener
	store  *tsdb.Store

	mu     sync.Mutex
	status map[server.AgentID]*sm.SliceStatus
}

// SlicingOption configures a SlicingController.
type SlicingOption func(*slicingOptions)

type slicingOptions struct {
	store *tsdb.Store
}

// WithTSDB serves /stats/agg from an externally owned store (fed by the
// caller's Monitor) instead of a private one fed by the controller's
// internal MAC monitor. Use it when one process-wide store backs both
// the observability endpoints and the slicing northbound.
func WithTSDB(st *tsdb.Store) SlicingOption {
	return func(o *slicingOptions) { o.store = st }
}

// SliceConfigJSON is the REST body for POST /slices.
type SliceConfigJSON struct {
	Algo   string           `json:"algo"` // "nvs" or "none"
	Slices []SliceParamJSON `json:"slices"`
}

// SliceParamJSON is one slice in SliceConfigJSON.
type SliceParamJSON struct {
	ID        uint32  `json:"id"`
	Kind      string  `json:"kind"` // "capacity" or "rate"
	Capacity  float64 `json:"capacity,omitempty"`
	RateRsv   float64 `json:"rateRsv,omitempty"`
	RateRef   float64 `json:"rateRef,omitempty"`
	NoSharing bool    `json:"noSharing,omitempty"`
	UESched   string  `json:"ueSched,omitempty"`
}

// AssocJSON is the REST body for POST /assoc.
type AssocJSON struct {
	RNTI    uint16 `json:"rnti"`
	SliceID uint32 `json:"sliceId"`
}

// NewSlicingController attaches the slicing specialization to a server
// and serves its REST northbound on httpAddr (":0" picks a port).
func NewSlicingController(srv *server.Server, scheme sm.Scheme, httpAddr string, opts ...SlicingOption) (*SlicingController, error) {
	var o slicingOptions
	for _, opt := range opts {
		opt(&o)
	}
	c := &SlicingController{
		srv:    srv,
		scheme: scheme,
		status: make(map[server.AgentID]*sm.SliceStatus),
	}
	// Internal DB for RAN stats, as in Table 4. Without WithTSDB the
	// controller owns its store and its monitor feeds it; with it, the
	// external store is already fed by the caller's monitor and the
	// internal one only keeps the latest-report map for /stats.
	monCfg := MonitorConfig{Scheme: scheme, PeriodMS: 10, Layers: MonMAC, Decode: true}
	if o.store != nil {
		c.store = o.store
	} else {
		c.store = tsdb.New(tsdb.Config{})
		monCfg.TSDB = c.store
	}
	c.mon = NewMonitor(srv, monCfg)
	// Evict the per-agent slice status when an agent leaves; without
	// this the map grows forever under agent churn (the monitor maps
	// and tsdb series are evicted by the Monitor's own hook).
	srv.OnAgentDisconnect(func(info server.AgentInfo) {
		c.mu.Lock()
		delete(c.status, info.ID)
		c.mu.Unlock()
	})
	// Track SC SM status reports.
	srv.OnAgentConnect(func(info server.AgentInfo) {
		if !info.HasFunction(sm.IDSliceCtrl) {
			return
		}
		id := info.ID
		_, _ = srv.Subscribe(id, sm.IDSliceCtrl,
			sm.EncodeTrigger(scheme, sm.Trigger{PeriodMS: 100}), nil,
			server.SubscriptionCallbacks{
				OnIndication: func(ev server.IndicationEvent) {
					if st, err := sm.DecodeSliceStatus(ev.Env.IndicationPayload()); err == nil {
						c.mu.Lock()
						c.status[id] = st
						c.mu.Unlock()
					}
				},
			})
	})

	mux := http.NewServeMux()
	mux.HandleFunc("/agents", c.handleAgents)
	mux.HandleFunc("/stats", c.handleStats)
	mux.HandleFunc("/stats/agg", c.handleStatsAgg)
	mux.HandleFunc("/slices", c.handleSlices)
	mux.HandleFunc("/assoc", c.handleAssoc)
	lis, err := net.Listen("tcp", httpAddr)
	if err != nil {
		return nil, err
	}
	c.lis = lis
	c.http = &http.Server{Handler: mux}
	go func() { _ = c.http.Serve(lis) }()
	return c, nil
}

// Addr returns the REST northbound address.
func (c *SlicingController) Addr() string { return c.lis.Addr().String() }

// Close stops the REST server (the E2 server is owned by the caller).
func (c *SlicingController) Close() error { return c.http.Close() }

// Status returns a copy of the latest slice status per agent — the
// slice panel of the topology snapshot (see NewTopology).
func (c *SlicingController) Status() map[server.AgentID]*sm.SliceStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[server.AgentID]*sm.SliceStatus, len(c.status))
	for id, st := range c.status {
		cp := *st
		out[id] = &cp
	}
	return out
}

// Monitor exposes the internal stats DB.
func (c *SlicingController) Monitor() *Monitor { return c.mon }

// TSDB exposes the time-series store behind /stats/agg.
func (c *SlicingController) TSDB() *tsdb.Store { return c.store }

func agentParam(r *http.Request) (server.AgentID, error) {
	v := r.URL.Query().Get("agent")
	if v == "" {
		return 0, errors.New("missing agent parameter")
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("bad agent parameter: %v", err)
	}
	return server.AgentID(n), nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// requireJSON gates POST bodies on Content-Type application/json (any
// charset); anything else is 415, matching the A1 northbound's body
// handling.
func requireJSON(w http.ResponseWriter, r *http.Request) bool {
	mt, _, err := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if err != nil || mt != "application/json" {
		http.Error(w, "unsupported content type: want application/json", http.StatusUnsupportedMediaType)
		return false
	}
	return true
}

func (c *SlicingController) handleAgents(w http.ResponseWriter, r *http.Request) {
	type agentJSON struct {
		ID     int      `json:"id"`
		Node   string   `json:"node"`
		FnIDs  []uint16 `json:"ranFunctions"`
		Sliced bool     `json:"supportsSlicing"`
	}
	var out []agentJSON
	for _, a := range c.srv.Agents() {
		aj := agentJSON{ID: int(a.ID), Node: a.NodeID.String(), Sliced: a.HasFunction(sm.IDSliceCtrl)}
		for _, f := range a.Functions {
			aj.FnIDs = append(aj.FnIDs, f.ID)
		}
		out = append(out, aj)
	}
	writeJSON(w, out)
}

func (c *SlicingController) handleStats(w http.ResponseWriter, r *http.Request) {
	id, err := agentParam(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	rep := c.mon.MAC(id)
	if rep == nil {
		http.Error(w, "no stats yet", http.StatusNotFound)
		return
	}
	writeJSON(w, rep)
}

// handleStatsAgg serves windowed aggregates over a UE's MAC series: the
// decision input for slicing policies that want a stable signal instead
// of the single latest report.
func (c *SlicingController) handleStatsAgg(w http.ResponseWriter, r *http.Request) {
	id, err := agentParam(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	q := r.URL.Query()
	ue, err := strconv.Atoi(q.Get("ue"))
	if err != nil || ue < 0 || ue > 0xFFFF {
		http.Error(w, "bad ue parameter", http.StatusBadRequest)
		return
	}
	field, ok := tsdb.ParseField(q.Get("field"))
	if !ok {
		http.Error(w, "unknown field", http.StatusBadRequest)
		return
	}
	windowMS := int64(1000)
	if v := q.Get("window_ms"); v != "" {
		if windowMS, err = strconv.ParseInt(v, 10, 64); err != nil || windowMS <= 0 {
			http.Error(w, "bad window_ms parameter", http.StatusBadRequest)
			return
		}
	}
	now := time.Now().UnixNano()
	k := tsdb.SeriesKey{Agent: uint32(id), Fn: sm.IDMACStats, UE: uint16(ue), Field: field}
	agg, ok := c.store.Aggregate(k, now-windowMS*int64(time.Millisecond), now)
	if !ok {
		http.Error(w, "no samples in window", http.StatusNotFound)
		return
	}
	writeJSON(w, agg)
}

func (c *SlicingController) handleSlices(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		w.Header().Set("Allow", "GET, POST")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	id, err := agentParam(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodGet:
		c.mu.Lock()
		st := c.status[id]
		c.mu.Unlock()
		if st == nil {
			http.Error(w, "no slice status yet", http.StatusNotFound)
			return
		}
		writeJSON(w, st)
	case http.MethodPost:
		if !requireJSON(w, r) {
			return
		}
		var body SliceConfigJSON
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		ctl, err := sliceControlFromJSON(&body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := c.apply(id, ctl); err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}
}

func (c *SlicingController) handleAssoc(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	id, err := agentParam(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if !requireJSON(w, r) {
		return
	}
	var body AssocJSON
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctl := &sm.SliceControl{Op: sm.OpAssociateUE, RNTI: body.RNTI, SliceID: body.SliceID}
	if err := c.apply(id, ctl); err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func sliceControlFromJSON(body *SliceConfigJSON) (*sm.SliceControl, error) {
	if body.Algo == "none" {
		return &sm.SliceControl{Op: sm.OpDisableSlicing}, nil
	}
	if body.Algo != "nvs" && body.Algo != "" {
		return nil, fmt.Errorf("unknown algo %q", body.Algo)
	}
	ctl := &sm.SliceControl{Op: sm.OpConfigureSlices}
	for _, s := range body.Slices {
		p := sm.SliceParams{ID: s.ID, NoSharing: s.NoSharing, UESched: s.UESched}
		switch s.Kind {
		case "", "capacity":
			p.Kind = 0
			p.CapacityQ = uint32(s.Capacity * 1_000_000)
		case "rate":
			p.Kind = 1
			p.RateRsv = s.RateRsv
			p.RateRef = s.RateRef
		default:
			return nil, fmt.Errorf("unknown slice kind %q", s.Kind)
		}
		ctl.Slices = append(ctl.Slices, p)
	}
	return ctl, nil
}

// apply sends an SC SM control and waits for the ack.
func (c *SlicingController) apply(id server.AgentID, ctl *sm.SliceControl) error {
	errCh := make(chan error, 1)
	if err := c.srv.Control(id, sm.IDSliceCtrl, nil,
		sm.EncodeSliceControl(c.scheme, ctl), true,
		func(_ []byte, err error) { errCh <- err }); err != nil {
		return err
	}
	select {
	case err := <-errCh:
		return err
	case <-time.After(5 * time.Second):
		return errors.New("slice control timed out")
	}
}
