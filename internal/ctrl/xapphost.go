package ctrl

import (
	"crypto/sha256"
	"fmt"
	"sync"

	"flexric/internal/e2ap"
	"flexric/internal/server"
)

// XAppHost is the §6.3 controller specialization: "a simple-to-use
// O-RAN RIC replacement, hosting xApps that implement standard O-RAN use
// cases" without the cluster. It implements, as SM-independent iApps,
// the services the O-RAN architecture requires to host xApps:
//
//  1. a messaging infrastructure between xApps and the controller
//     (per-xApp event inboxes);
//  2. subscription management, "e.g., merging identical subscriptions" —
//     xApps requesting the same (agent, function, trigger, actions)
//     share one E2 subscription, fanned out locally;
//  3. xApp management (deploy/undeploy with cleanup);
//  4. a database for xApps to write and read information gathered
//     through SMs (latest indication per agent/function, plus a
//     free-form keyspace).
type XAppHost struct {
	srv *server.Server

	mu     sync.Mutex
	xapps  map[string]*HostedXApp
	merged map[mergeKey]*mergedSub
	db     map[string][]byte

	// latest holds the most recent indication payload per
	// (agent, function) for late-joining xApps.
	latest map[latestKey][]byte
}

type mergeKey struct {
	agent   server.AgentID
	fnID    uint16
	trigger [32]byte // hash of trigger ++ actions
}

type latestKey struct {
	agent server.AgentID
	fnID  uint16
}

type mergedSub struct {
	sub     server.SubID
	fnID    uint16
	members map[*HostedXApp]bool
}

// HostEvent is one message delivered to an xApp's inbox.
type HostEvent struct {
	Agent server.AgentID
	FnID  uint16
	// Payload is the SM-encoded indication message.
	Payload []byte
}

// HostedXApp is one deployed xApp.
type HostedXApp struct {
	host *XAppHost
	name string
	// Inbox delivers indication events; overflow drops (the xApp is too
	// slow), never blocking the E2 path.
	Inbox chan HostEvent

	mu   sync.Mutex
	subs map[mergeKey]bool
	gone bool
}

// NewXAppHost attaches the hosting specialization to a server.
func NewXAppHost(srv *server.Server) *XAppHost {
	return &XAppHost{
		srv:    srv,
		xapps:  make(map[string]*HostedXApp),
		merged: make(map[mergeKey]*mergedSub),
		db:     make(map[string][]byte),
		latest: make(map[latestKey][]byte),
	}
}

// Deploy registers an xApp by name (unique within the host).
func (h *XAppHost) Deploy(name string, inboxDepth int) (*HostedXApp, error) {
	if inboxDepth <= 0 {
		inboxDepth = 256
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.xapps[name]; dup {
		return nil, fmt.Errorf("ctrl: xapp %q already deployed", name)
	}
	x := &HostedXApp{
		host:  h,
		name:  name,
		Inbox: make(chan HostEvent, inboxDepth),
		subs:  make(map[mergeKey]bool),
	}
	h.xapps[name] = x
	return x, nil
}

// Undeploy removes an xApp, releasing its subscriptions (merged
// subscriptions survive while other members remain).
func (h *XAppHost) Undeploy(name string) error {
	h.mu.Lock()
	x := h.xapps[name]
	delete(h.xapps, name)
	h.mu.Unlock()
	if x == nil {
		return fmt.Errorf("ctrl: no xapp %q", name)
	}
	x.mu.Lock()
	x.gone = true
	keys := make([]mergeKey, 0, len(x.subs))
	for k := range x.subs {
		keys = append(keys, k)
	}
	x.subs = make(map[mergeKey]bool)
	x.mu.Unlock()
	for _, k := range keys {
		h.leave(k, x)
	}
	close(x.Inbox)
	return nil
}

// XApps lists deployed xApp names.
func (h *XAppHost) XApps() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.xapps))
	for n := range h.xapps {
		out = append(out, n)
	}
	return out
}

// MergedSubscriptions reports how many distinct E2 subscriptions the
// host maintains (diagnostics for the merging behaviour).
func (h *XAppHost) MergedSubscriptions() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.merged)
}

// DBPut stores a value in the xApp database.
func (h *XAppHost) DBPut(key string, value []byte) {
	h.mu.Lock()
	h.db[key] = append([]byte(nil), value...)
	h.mu.Unlock()
}

// DBGet reads a value from the xApp database (nil if absent).
func (h *XAppHost) DBGet(key string) []byte {
	h.mu.Lock()
	defer h.mu.Unlock()
	if v, ok := h.db[key]; ok {
		return append([]byte(nil), v...)
	}
	return nil
}

// Latest returns the most recent indication payload seen for an
// (agent, function) pair — the SM database service.
func (h *XAppHost) Latest(agent server.AgentID, fnID uint16) []byte {
	h.mu.Lock()
	defer h.mu.Unlock()
	if v, ok := h.latest[latestKey{agent, fnID}]; ok {
		return append([]byte(nil), v...)
	}
	return nil
}

func hashSub(trigger []byte, actions []e2ap.Action) [32]byte {
	hsh := sha256.New()
	hsh.Write(trigger)
	for _, a := range actions {
		hsh.Write([]byte{a.ID, byte(a.Type)})
		hsh.Write(a.Definition)
	}
	var out [32]byte
	copy(out[:], hsh.Sum(nil))
	return out
}

// Subscribe joins the xApp to a (possibly shared) E2 subscription.
func (x *HostedXApp) Subscribe(agent server.AgentID, fnID uint16, trigger []byte, actions []e2ap.Action) error {
	h := x.host
	key := mergeKey{agent: agent, fnID: fnID, trigger: hashSub(trigger, actions)}

	h.mu.Lock()
	if ms, ok := h.merged[key]; ok {
		// Identical subscription exists: merge.
		ms.members[x] = true
		h.mu.Unlock()
		x.mu.Lock()
		x.subs[key] = true
		x.mu.Unlock()
		return nil
	}
	ms := &mergedSub{fnID: fnID, members: map[*HostedXApp]bool{x: true}}
	h.merged[key] = ms
	h.mu.Unlock()

	sub, err := h.srv.Subscribe(agent, fnID, trigger, actions, server.SubscriptionCallbacks{
		OnIndication: func(ev server.IndicationEvent) { h.fanOut(key, ev) },
		OnFailure: func(cause e2ap.Cause) {
			h.mu.Lock()
			delete(h.merged, key)
			h.mu.Unlock()
		},
		OnDeleted: func() {
			h.mu.Lock()
			delete(h.merged, key)
			h.mu.Unlock()
		},
	})
	if err != nil {
		h.mu.Lock()
		delete(h.merged, key)
		h.mu.Unlock()
		return err
	}
	h.mu.Lock()
	ms.sub = sub
	h.mu.Unlock()
	x.mu.Lock()
	x.subs[key] = true
	x.mu.Unlock()
	return nil
}

// Unsubscribe leaves a subscription; the E2 subscription is deleted once
// the last member leaves.
func (x *HostedXApp) Unsubscribe(agent server.AgentID, fnID uint16, trigger []byte, actions []e2ap.Action) error {
	key := mergeKey{agent: agent, fnID: fnID, trigger: hashSub(trigger, actions)}
	x.mu.Lock()
	member := x.subs[key]
	delete(x.subs, key)
	x.mu.Unlock()
	if !member {
		return fmt.Errorf("ctrl: xapp %s is not subscribed", x.name)
	}
	return x.host.leave(key, x)
}

func (h *XAppHost) leave(key mergeKey, x *HostedXApp) error {
	h.mu.Lock()
	ms := h.merged[key]
	if ms == nil {
		h.mu.Unlock()
		return nil
	}
	delete(ms.members, x)
	last := len(ms.members) == 0
	sub := ms.sub
	fnID := ms.fnID
	if last {
		delete(h.merged, key)
	}
	h.mu.Unlock()
	if last {
		return h.srv.Unsubscribe(sub, fnID)
	}
	return nil
}

// fanOut delivers one indication to every member xApp and the SM
// database.
func (h *XAppHost) fanOut(key mergeKey, ev server.IndicationEvent) {
	payload := append([]byte(nil), ev.Env.IndicationPayload()...)
	h.mu.Lock()
	h.latest[latestKey{ev.Agent, key.fnID}] = payload
	ms := h.merged[key]
	var members []*HostedXApp
	if ms != nil {
		members = make([]*HostedXApp, 0, len(ms.members))
		for m := range ms.members {
			members = append(members, m)
		}
	}
	h.mu.Unlock()
	for _, m := range members {
		m.mu.Lock()
		gone := m.gone
		m.mu.Unlock()
		if gone {
			continue
		}
		select {
		case m.Inbox <- HostEvent{Agent: ev.Agent, FnID: key.fnID, Payload: payload}:
		default: // slow xApp: drop rather than stall the E2 path
		}
	}
}

// Control forwards a control message on behalf of the xApp.
func (x *HostedXApp) Control(agent server.AgentID, fnID uint16, header, payload []byte, done func(outcome []byte, err error)) error {
	return x.host.srv.Control(agent, fnID, header, payload, done != nil, done)
}

// Name returns the xApp's name.
func (x *HostedXApp) Name() string { return x.name }
