package ctrl

import (
	"strings"
	"testing"

	"flexric/internal/sm"
)

// TestSliceControlFromJSON covers the REST-body-to-SM translation,
// including every validation error path.
func TestSliceControlFromJSON(t *testing.T) {
	t.Run("disable", func(t *testing.T) {
		ctl, err := sliceControlFromJSON(&SliceConfigJSON{Algo: "none"})
		if err != nil || ctl.Op != sm.OpDisableSlicing {
			t.Fatalf("ctl %+v err %v", ctl, err)
		}
	})

	t.Run("capacity and default kind", func(t *testing.T) {
		ctl, err := sliceControlFromJSON(&SliceConfigJSON{
			Algo: "nvs",
			Slices: []SliceParamJSON{
				{ID: 1, Kind: "capacity", Capacity: 0.66, UESched: "pf"},
				{ID: 2, Capacity: 0.34}, // empty kind defaults to capacity
			},
		})
		if err != nil || ctl.Op != sm.OpConfigureSlices || len(ctl.Slices) != 2 {
			t.Fatalf("ctl %+v err %v", ctl, err)
		}
		if ctl.Slices[0].Kind != 0 || ctl.Slices[0].CapacityQ != 660_000 || ctl.Slices[0].UESched != "pf" {
			t.Fatalf("slice 0: %+v", ctl.Slices[0])
		}
		if ctl.Slices[1].Kind != 0 || ctl.Slices[1].CapacityQ != 340_000 {
			t.Fatalf("slice 1: %+v", ctl.Slices[1])
		}
	})

	t.Run("rate kind", func(t *testing.T) {
		ctl, err := sliceControlFromJSON(&SliceConfigJSON{
			Algo:   "nvs",
			Slices: []SliceParamJSON{{ID: 3, Kind: "rate", RateRsv: 1.5, RateRef: 6.0}},
		})
		if err != nil {
			t.Fatal(err)
		}
		s := ctl.Slices[0]
		if s.Kind != 1 || s.RateRsv != 1.5 || s.RateRef != 6.0 || s.CapacityQ != 0 {
			t.Fatalf("slice: %+v", s)
		}
	})

	t.Run("unknown algo", func(t *testing.T) {
		_, err := sliceControlFromJSON(&SliceConfigJSON{Algo: "static"})
		if err == nil || !strings.Contains(err.Error(), `unknown algo "static"`) {
			t.Fatalf("err %v", err)
		}
	})

	t.Run("unknown kind", func(t *testing.T) {
		_, err := sliceControlFromJSON(&SliceConfigJSON{
			Algo:   "nvs",
			Slices: []SliceParamJSON{{ID: 1, Kind: "weighted"}},
		})
		if err == nil || !strings.Contains(err.Error(), `unknown slice kind "weighted"`) {
			t.Fatalf("err %v", err)
		}
	})
}
