package ctrl_test

import (
	"sync/atomic"
	"testing"
	"time"

	"flexric/internal/agent"
	"flexric/internal/ctrl"
	"flexric/internal/e2ap"
	"flexric/internal/faultinject"
	"flexric/internal/ran"
	"flexric/internal/resilience"
	"flexric/internal/server"
	"flexric/internal/sm"
)

// TestVirtCtrlSouthReconnect: a tenant's proxied subscription survives a
// southbound infrastructure drop. The south agent's connection is
// force-closed by a fault plan after 150 frames; the agent redials
// (resilience backoff), the VirtCtrl's southbound server re-admits it
// within the retention window and replays the tenant-mapped south
// subscription, and the tenant's partitioned MAC stream resumes — the
// tenant never re-subscribes, never sees the fault.
func TestVirtCtrlSouthReconnect(t *testing.T) {
	scheme := sm.SchemeFB

	tenantSrv, tenantAddr := startSrv(t)
	vc, southAddr, err := ctrl.NewVirtCtrl(ctrl.VirtConfig{
		Scheme: scheme,
		Tenants: []ctrl.Tenant{
			{Name: "A", SLA: 1.0, Subscribers: map[uint16]bool{1: true}},
		},
		SouthAddr: "127.0.0.1:0",
		Resilience: &resilience.Config{
			KeepaliveInterval: 20 * time.Millisecond,
			RetainFor:         5 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()

	// South infrastructure: agent wrapped in a one-shot drop plan, with
	// resilience so it redials on its own.
	plan := faultinject.MustParse("drop@150")
	cell, err := ran.NewCell(ran.PHYConfig{RAT: ran.RAT4G, NumRB: 25})
	if err != nil {
		t.Fatal(err)
	}
	a := agent.New(agent.Config{
		NodeID: e2ap.GlobalE2NodeID{PLMN: e2ap.PLMN{MCC: 208, MNC: 95}, Type: e2ap.NodeENB, NodeID: 1},
		Resilience: &resilience.Config{
			KeepaliveInterval: 20 * time.Millisecond,
			Backoff:           resilience.BackoffPolicy{Base: 10 * time.Millisecond, Max: 50 * time.Millisecond},
		},
		WrapConn: plan.WrapConn,
	})
	fns := []agent.RANFunction{
		sm.NewMACStats(cell, scheme, a),
		sm.NewSliceCtrl(cell, scheme),
	}
	for _, fn := range fns {
		if err := a.RegisterFunction(fn); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Connect(southAddr); err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, err := cell.Attach(1, "", "208.95", 28); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			cell.Step(1)
			sm.TickAll(fns, cell.Now())
			time.Sleep(100 * time.Microsecond)
		}
	}()
	defer func() { close(stop); <-done }()

	if err := vc.ConnectTenant(0, tenantAddr); err != nil {
		t.Fatal(err)
	}
	await(t, "virtual agent at tenant", func() bool { return len(tenantSrv.Agents()) == 1 })

	// The tenant subscribes ONCE; the count must keep rising across the
	// injected south drop.
	var inds atomic.Int64
	northID := tenantSrv.Agents()[0].ID
	if _, err := tenantSrv.Subscribe(northID, sm.IDMACStats,
		sm.EncodeTrigger(scheme, sm.Trigger{PeriodMS: 1}), nil,
		server.SubscriptionCallbacks{OnIndication: func(ev server.IndicationEvent) {
			if rep, err := sm.DecodeMACReport(ev.Env.IndicationPayload()); err == nil && len(rep.UEs) == 1 {
				inds.Add(1)
			}
		}}); err != nil {
		t.Fatal(err)
	}

	// The plan kills the south connection after 150 frames; an agent
	// emitting 1 ms-period indications burns through that almost
	// immediately, so reaching 400 indications on the SAME tenant
	// subscription proves the south leg died, reconnected, and was
	// replayed. If replay were broken the count would stall near 150.
	await(t, "tenant stream across south drop", func() bool { return inds.Load() >= 400 })
	if got := plan.DropsFired(); got != 1 {
		t.Fatalf("drop plan fired %d times, want 1", got)
	}
}
