package ctrl_test

import (
	"encoding/json"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flexric/internal/agent"
	"flexric/internal/ctrl"
	"flexric/internal/e2ap"
	"flexric/internal/ran"
	"flexric/internal/resilience"
	"flexric/internal/server"
	"flexric/internal/sm"
	"flexric/internal/transport"
	"flexric/internal/tsdb"
)

// TestMonitorTSDBIngest verifies that a monitor with an attached store
// fans decoded MAC/RLC/PDCP reports into per-UE, per-field series and
// that windowed aggregates over them carry real traffic.
func TestMonitorTSDBIngest(t *testing.T) {
	st := tsdb.New(tsdb.Config{Capacity: 4096})
	s, addr := startSrv(t)
	mon := ctrl.NewMonitor(s, ctrl.MonitorConfig{Scheme: sm.SchemeFB, PeriodMS: 1, Decode: true, TSDB: st})
	b := startBS(t, addr, 1, sm.SchemeFB, 25)
	if _, err := b.cell.Attach(1, "", "208.95", 28); err != nil {
		t.Fatal(err)
	}
	if err := b.cell.AddTraffic(1, &ran.Saturating{Flow: ran.FiveTuple{DstIP: 1}, RateBytesPerMS: 3000}); err != nil {
		t.Fatal(err)
	}
	await(t, "agent", func() bool { return len(s.Agents()) == 1 })
	id := s.Agents()[0].ID
	if mon.TSDB() != st {
		t.Fatal("TSDB accessor")
	}

	macKey := tsdb.SeriesKey{Agent: uint32(id), Fn: sm.IDMACStats, UE: 1, Field: tsdb.FieldTxBits}
	rlcKey := tsdb.SeriesKey{Agent: uint32(id), Fn: sm.IDRLCStats, UE: 1, Field: tsdb.FieldTxBytes}
	pdcpKey := tsdb.SeriesKey{Agent: uint32(id), Fn: sm.IDPDCPStats, UE: 1, Field: tsdb.FieldTxBytes}
	await(t, "series with traffic on all layers", func() bool {
		for _, k := range []tsdb.SeriesKey{macKey, rlcKey, pdcpKey} {
			agg, ok := st.Aggregate(k, 0, math.MaxInt64)
			if !ok || agg.Count < 5 || agg.Max == 0 {
				return false
			}
		}
		return true
	})

	// The windowed view over the counter series must show positive flow:
	// tx_bytes is monotonic, so the rate over the whole window is > 0.
	agg, ok := st.Aggregate(rlcKey, 0, math.MaxInt64)
	if !ok || agg.RatePerS <= 0 {
		t.Fatalf("rlc tx_bytes rate = %+v", agg)
	}
	if agg.P99 < agg.P50 || agg.Max < agg.P99 {
		t.Fatalf("percentile ordering: %+v", agg)
	}
	// History, not a snapshot: LastK returns multiple distinct samples.
	samples := st.LastK(rlcKey, 10, nil)
	if len(samples) < 5 {
		t.Fatalf("only %d samples", len(samples))
	}
	if samples[0].TS >= samples[len(samples)-1].TS {
		t.Fatal("samples not in time order")
	}
	// MAC layer exposes the radio fields too.
	cqiKey := macKey
	cqiKey.Field = tsdb.FieldCQI
	if _, ok := st.Aggregate(cqiKey, 0, math.MaxInt64); !ok {
		t.Fatal("no cqi series")
	}
}

// TestMonitorRawModeTSDB covers the raw-payload archive path: payloads
// land in the store's pooled ring, stay decodable, and the latest-map
// path is bypassed entirely.
func TestMonitorRawModeTSDB(t *testing.T) {
	st := tsdb.New(tsdb.Config{RawCapacity: 16})
	s, addr := startSrv(t)
	mon := ctrl.NewMonitor(s, ctrl.MonitorConfig{Scheme: sm.SchemeFB, PeriodMS: 1, Layers: ctrl.MonMAC, TSDB: st})
	startBS(t, addr, 1, sm.SchemeFB, 25)
	await(t, "agent", func() bool { return len(s.Agents()) == 1 })
	id := s.Agents()[0].ID
	await(t, "raw archive", func() bool { return st.RawCount(uint32(id), sm.IDMACStats) > 0 })
	raw := mon.Raw(id, sm.IDMACStats)
	if raw == nil {
		t.Fatal("Raw() must read from the archive")
	}
	if _, err := sm.DecodeMACReport(raw); err != nil {
		t.Fatalf("archived payload must stay decodable: %v", err)
	}
	if mon.MAC(id) != nil {
		t.Fatal("raw mode must not decode")
	}
	// Deep history accumulates, not just the latest payload.
	await(t, "ring fills", func() bool { return st.RawCount(uint32(id), sm.IDMACStats) == 16 })
}

// fastRes mirrors the resilience test config: no keepalives (the test
// kills the transport directly), tight backoff, and a retention window
// the test controls.
func fastRes(retain time.Duration) *resilience.Config {
	return &resilience.Config{
		KeepaliveInterval: -1,
		DeadAfter:         -1,
		Backoff:           resilience.BackoffPolicy{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond},
		RetainFor:         retain,
	}
}

// connCapture records the latest dialed transport so the test can kill
// the live connection without closing the agent.
type connCapture struct {
	mu sync.Mutex
	c  transport.Conn
}

func (cc *connCapture) wrap(c transport.Conn) transport.Conn {
	cc.mu.Lock()
	cc.c = c
	cc.mu.Unlock()
	return c
}

func (cc *connCapture) kill() {
	cc.mu.Lock()
	c := cc.c
	cc.mu.Unlock()
	c.Close()
}

// TestMonitorTSDBReconnectChurn is the state-leak acceptance test: a
// resilient agent whose transport dies keeps its AgentID on reconnect,
// so its series survive and keep growing; only after the agent stays
// gone past the retention window does the disconnect hook fire and the
// store evict every series and raw ring of that agent.
func TestMonitorTSDBReconnectChurn(t *testing.T) {
	st := tsdb.New(tsdb.Config{Capacity: 1024})
	s := server.New(server.Config{
		Scheme:     e2ap.SchemeFB,
		Transport:  transport.KindSCTPish,
		Resilience: fastRes(250 * time.Millisecond),
	})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ctrl.NewMonitor(s, ctrl.MonitorConfig{Scheme: sm.SchemeFB, PeriodMS: 1, Layers: ctrl.MonMAC, Decode: true, TSDB: st})
	var reconnects atomic.Int32
	s.OnAgentReconnect(func(server.AgentInfo) { reconnects.Add(1) })

	cell, err := ran.NewCell(ran.PHYConfig{RAT: ran.RAT4G, NumRB: 25})
	if err != nil {
		t.Fatal(err)
	}
	cap := &connCapture{}
	a := agent.New(agent.Config{
		NodeID:     e2ap.GlobalE2NodeID{PLMN: e2ap.PLMN{MCC: 208, MNC: 95}, Type: e2ap.NodeENB, NodeID: 7},
		Scheme:     e2ap.SchemeFB,
		Transport:  transport.KindSCTPish,
		Resilience: fastRes(0),
		WrapConn:   cap.wrap,
	})
	fns := []agent.RANFunction{sm.NewMACStats(cell, sm.SchemeFB, a)}
	for _, fn := range fns {
		if err := a.RegisterFunction(fn); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Connect(addr); err != nil {
		t.Fatal(err)
	}
	closed := false
	t.Cleanup(func() {
		if !closed {
			a.Close()
		}
	})
	if _, err := cell.Attach(1, "", "208.95", 28); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			cell.Step(1)
			sm.TickAll(fns, cell.Now())
			time.Sleep(30 * time.Microsecond)
		}
	}()
	t.Cleanup(func() { close(stop); <-done })

	await(t, "agent", func() bool { return len(s.Agents()) == 1 })
	id := s.Agents()[0].ID
	k := tsdb.SeriesKey{Agent: uint32(id), Fn: sm.IDMACStats, UE: 1, Field: tsdb.FieldCQI}
	await(t, "series before churn", func() bool {
		agg, ok := st.Aggregate(k, 0, math.MaxInt64)
		return ok && agg.Count > 10
	})

	// Churn: kill the transport twice; the supervisor re-associates
	// under the same AgentID each time and history must survive.
	for round := 0; round < 2; round++ {
		before := reconnects.Load()
		cap.kill()
		await(t, "reconnect", func() bool { return reconnects.Load() > before })
		if len(s.Agents()) != 1 || s.Agents()[0].ID != id {
			t.Fatalf("round %d: AgentID not reused", round)
		}
		if st.NumSeries() == 0 {
			t.Fatalf("round %d: series evicted across reconnect", round)
		}
		agg, _ := st.Aggregate(k, 0, math.MaxInt64)
		await(t, "series grows after reconnect", func() bool {
			now, ok := st.Aggregate(k, 0, math.MaxInt64)
			return ok && now.LastTS > agg.LastTS
		})
	}

	// Final departure: stop the agent for good. Retention expires, the
	// disconnect hook fires, and every series of the agent is evicted.
	closed = true
	a.Close()
	await(t, "eviction after retention", func() bool { return st.NumSeries() == 0 })
}

// TestSlicingStatsAgg exercises the windowed-aggregate northbound: the
// slicing controller's /stats/agg endpoint serves tsdb.Agg JSON from
// its internal store.
func TestSlicingStatsAgg(t *testing.T) {
	s, addr := startSrv(t)
	sc, err := ctrl.NewSlicingController(s, sm.SchemeASN, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	b := startBS(t, addr, 1, sm.SchemeASN, 25)
	if _, err := b.cell.Attach(1, "", "208.95", 28); err != nil {
		t.Fatal(err)
	}
	if err := b.cell.AddTraffic(1, &ran.Saturating{Flow: ran.FiveTuple{DstIP: 1}, RateBytesPerMS: 3000}); err != nil {
		t.Fatal(err)
	}
	await(t, "agent", func() bool { return len(s.Agents()) == 1 })
	base := "http://" + sc.Addr()

	var agg tsdb.Agg
	await(t, "windowed aggregate", func() bool {
		resp, err := http.Get(base + "/stats/agg?agent=0&ue=1&field=throughput_bps&window_ms=10000")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return false
		}
		if err := json.NewDecoder(resp.Body).Decode(&agg); err != nil {
			return false
		}
		return agg.Count >= 5 && agg.Max > 0
	})
	if agg.Mean <= 0 || agg.P95 < agg.P50 {
		t.Fatalf("aggregate shape: %+v", agg)
	}

	// Error paths.
	for _, url := range []string{
		base + "/stats/agg?ue=1&field=cqi",                     // missing agent
		base + "/stats/agg?agent=0&ue=1&field=bogus",           // unknown field
		base + "/stats/agg?agent=0&ue=-1&field=cqi",            // bad ue
		base + "/stats/agg?agent=0&ue=1&field=cqi&window_ms=0", // bad window
	} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: %s", url, resp.Status)
		}
	}
	resp, err := http.Get(base + "/stats/agg?agent=9&ue=1&field=cqi")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown agent: %s", resp.Status)
	}
}

// TestMonitorTSDBCompressed runs the live ingest pipeline against a
// store in chunk-compression mode: a tiny write head forces seals at
// experiment timescale, and windowed aggregates spanning sealed chunks
// must stay coherent (monotone counters keep a positive rate, counts
// keep growing) while the store reports a real compression ratio.
func TestMonitorTSDBCompressed(t *testing.T) {
	st := tsdb.New(tsdb.Config{Capacity: 64, Compress: true})
	s, addr := startSrv(t)
	ctrl.NewMonitor(s, ctrl.MonitorConfig{Scheme: sm.SchemeFB, PeriodMS: 1, Layers: ctrl.MonMAC, Decode: true, TSDB: st})
	b := startBS(t, addr, 1, sm.SchemeFB, 25)
	if _, err := b.cell.Attach(1, "", "208.95", 28); err != nil {
		t.Fatal(err)
	}
	if err := b.cell.AddTraffic(1, &ran.Saturating{Flow: ran.FiveTuple{DstIP: 1}, RateBytesPerMS: 3000}); err != nil {
		t.Fatal(err)
	}
	await(t, "agent", func() bool { return len(s.Agents()) == 1 })
	id := s.Agents()[0].ID
	k := tsdb.SeriesKey{Agent: uint32(id), Fn: sm.IDMACStats, UE: 1, Field: tsdb.FieldTxBits}

	// Enough reports to overflow the 64-sample head repeatedly.
	await(t, "chunks seal under live ingest", func() bool {
		return st.Stats().Chunks > 0
	})
	await(t, "history spans head+chunks", func() bool {
		agg, ok := st.Aggregate(k, 0, math.MaxInt64)
		return ok && agg.Count > 64
	})
	agg, _ := st.Aggregate(k, 0, math.MaxInt64)
	if agg.RatePerS <= 0 {
		t.Fatalf("tx_bits rate over compressed history: %+v", agg)
	}
	// LastK deeper than the write head decompresses chunks.
	samples := st.LastK(k, 200, nil)
	if len(samples) <= 64 {
		t.Fatalf("LastK returned only %d samples", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].TS < samples[i-1].TS {
			t.Fatal("decompressed samples out of order")
		}
	}
	stats := st.Stats()
	if stats.BytesPerSample <= 0 || stats.BytesPerSample >= 16 {
		t.Fatalf("bytes/sample = %v", stats.BytesPerSample)
	}
}
