package ctrl_test

import (
	"testing"
	"time"

	"flexric/internal/agent"
	"flexric/internal/ctrl"
	"flexric/internal/e2ap"
	"flexric/internal/ran"
	"flexric/internal/sm"
	"flexric/internal/tsdb"
)

// startShardedBS is startBS with a multi-shard cell, so the monitoring
// SMs emit one report payload per shard.
func startShardedBS(t *testing.T, addr string, nodeID uint64, scheme sm.Scheme, shards int) *bs {
	t.Helper()
	cell, err := ran.NewCellWithOptions(ran.PHYConfig{RAT: ran.RAT4G, NumRB: 25},
		ran.CellOptions{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	a := agent.New(agent.Config{
		NodeID: e2ap.GlobalE2NodeID{PLMN: e2ap.PLMN{MCC: 208, MNC: 95}, Type: e2ap.NodeENB, NodeID: nodeID},
	})
	b := &bs{cell: cell, agent: a, stop: make(chan struct{}), done: make(chan struct{})}
	b.fns = []agent.RANFunction{
		sm.NewMACStats(cell, scheme, a),
		sm.NewRLCStats(cell, scheme, a),
		sm.NewPDCPStats(cell, scheme, a),
	}
	for _, fn := range b.fns {
		if err := a.RegisterFunction(fn); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Connect(addr); err != nil {
		t.Fatal(err)
	}
	go func() {
		defer close(b.done)
		for {
			select {
			case <-b.stop:
				return
			default:
			}
			cell.Step(1)
			sm.TickAll(b.fns, cell.Now())
			time.Sleep(30 * time.Microsecond)
		}
	}()
	t.Cleanup(func() {
		close(b.stop)
		<-b.done
		a.Close()
	})
	return b
}

// TestMonitorMergesShardReports: a 4-shard cell reports each layer as
// one payload per shard; the monitor's latest-report view must merge
// the shards of one cell time back into the full UE list, through the
// ingest pipeline path (IngestWorkers > 0).
func TestMonitorMergesShardReports(t *testing.T) {
	s, addr := startSrv(t)
	db := tsdb.New(tsdb.Config{Capacity: 256})
	mon := ctrl.NewMonitor(s, ctrl.MonitorConfig{
		Scheme: sm.SchemeFB, PeriodMS: 1, Decode: true,
		TSDB: db, IngestWorkers: 2,
	})
	// Shutdown order matters with IngestWorkers: the server must stop
	// delivering before the pipes close. Both Closes are idempotent, so
	// the startSrv cleanup's second s.Close is a no-op.
	defer func() {
		s.Close()
		mon.Close()
	}()
	b := startShardedBS(t, addr, 1, sm.SchemeFB, 4)

	const nUE = 8
	for i := 1; i <= nUE; i++ {
		if _, err := b.cell.Attach(uint16(i), "", "208.95", 20); err != nil {
			t.Fatal(err)
		}
		if err := b.cell.AddTraffic(uint16(i), &ran.Saturating{
			Flow: ran.FiveTuple{DstIP: uint32(i)}, RateBytesPerMS: 500}); err != nil {
			t.Fatal(err)
		}
	}
	await(t, "agent", func() bool { return len(s.Agents()) == 1 })
	id := s.Agents()[0].ID

	fullReport := func(rep *sm.MACReport) bool {
		if rep == nil || len(rep.UEs) != nUE {
			return false
		}
		seen := map[uint16]bool{}
		for _, u := range rep.UEs {
			if seen[u.RNTI] {
				return false // duplicate: merged across cell times
			}
			seen[u.RNTI] = true
		}
		return true
	}
	await(t, "merged MAC report with all UEs exactly once", func() bool {
		return fullReport(mon.MAC(id))
	})
	await(t, "merged RLC report", func() bool {
		rep := mon.RLC(id)
		return rep != nil && len(rep.UEs) == nUE
	})
	await(t, "merged PDCP report", func() bool {
		rep := mon.PDCP(id)
		return rep != nil && len(rep.UEs) == nUE
	})
	// The pipeline must have ingested every shard's UEs into the store
	// exactly once per report period: every UE has a series.
	await(t, "tsdb series for all UEs", func() bool {
		for i := 1; i <= nUE; i++ {
			k := tsdb.SeriesKey{Agent: uint32(id), Fn: sm.IDMACStats, UE: uint16(i), Field: tsdb.FieldTxBits}
			if len(db.LastK(k, 1, nil)) == 0 {
				return false
			}
		}
		return true
	})
}

// TestMonitorEmptyCellHeartbeat: a cell with no attached UEs still
// reports once per period (the empty heartbeat payload), so liveness
// monitoring keeps working.
func TestMonitorEmptyCellHeartbeat(t *testing.T) {
	s, addr := startSrv(t)
	mon := ctrl.NewMonitor(s, ctrl.MonitorConfig{Scheme: sm.SchemeFB, PeriodMS: 1, Decode: true})
	startShardedBS(t, addr, 1, sm.SchemeFB, 4)
	await(t, "agent", func() bool { return len(s.Agents()) == 1 })
	id := s.Agents()[0].ID
	await(t, "empty MAC heartbeat", func() bool {
		rep := mon.MAC(id)
		return rep != nil && len(rep.UEs) == 0
	})
}
