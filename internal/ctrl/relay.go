package ctrl

import (
	"fmt"
	"sync"

	"flexric/internal/agent"
	"flexric/internal/e2ap"
	"flexric/internal/server"
	"flexric/internal/transport"
)

// Relay is the two-hop FlexRIC controller of §5.4's RTT experiment: it
// terminates agents on its southbound (server library) and exposes them
// to a parent controller through the agent library on its northbound —
// "we use a relaying controller to emulate two hops, which, unlike O-RAN
// RIC, is not imposed by FlexRIC but added to carry out a fair
// comparison". It demonstrates the recursive composition of Fig. 2.
type Relay struct {
	srv       *server.Server
	north     *agent.Agent
	southAddr string

	mu    sync.Mutex
	south server.AgentID
	ready bool
	// northSubs maps northbound subscription → southbound subscription,
	// so deletes can be forwarded.
	northSubs map[e2ap.RequestID]server.SubID
}

// relayFn proxies one RAN function ID through the relay.
type relayFn struct {
	r    *Relay
	def  e2ap.RANFunctionItem
	fnID uint16
}

// NewRelay builds a relay: it listens for agents on southAddr and
// connects as an agent to the parent controller at parentAddr, exposing
// the given RAN function IDs. The first southbound agent is the relayed
// target.
func NewRelay(southAddr, parentAddr string, scheme e2ap.Scheme, kind transport.Kind, fnIDs []uint16) (*Relay, error) {
	r := &Relay{northSubs: make(map[e2ap.RequestID]server.SubID)}
	r.srv = server.New(server.Config{Scheme: scheme, Transport: kind})
	ready := make(chan struct{})
	var once sync.Once
	r.srv.OnAgentConnect(func(info server.AgentInfo) {
		r.mu.Lock()
		if !r.ready {
			r.south = info.ID
			r.ready = true
		}
		r.mu.Unlock()
		once.Do(func() { close(ready) })
	})
	bound, err := r.srv.Start(southAddr)
	if err != nil {
		return nil, err
	}
	r.southAddr = bound

	r.north = agent.New(agent.Config{
		NodeID: e2ap.GlobalE2NodeID{
			PLMN: e2ap.PLMN{MCC: 208, MNC: 95}, Type: e2ap.NodeENB, NodeID: 9000,
		},
		Scheme:    scheme,
		Transport: kind,
	})
	for _, id := range fnIDs {
		fn := &relayFn{r: r, fnID: id, def: e2ap.RANFunctionItem{ID: id, Revision: 1, OID: "relay"}}
		if err := r.north.RegisterFunction(fn); err != nil {
			r.srv.Close()
			return nil, err
		}
	}
	if _, err := r.north.Connect(parentAddr); err != nil {
		r.srv.Close()
		return nil, err
	}
	return r, nil
}

// SouthAddr returns the southbound listen address agents dial.
func (r *Relay) SouthAddr() string { return r.southAddr }

// Close tears the relay down.
func (r *Relay) Close() error {
	r.north.Close()
	return r.srv.Close()
}

// Server exposes the southbound server (e.g. to read its bound address
// via Agents, or for tests).
func (r *Relay) Server() *server.Server { return r.srv }

func (r *Relay) target() (server.AgentID, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.ready {
		return 0, fmt.Errorf("ctrl: relay has no southbound agent yet")
	}
	return r.south, nil
}

// Definition implements agent.RANFunction.
func (f *relayFn) Definition() e2ap.RANFunctionItem { return f.def }

// OnSubscription implements agent.RANFunction: proxy the subscription to
// the southbound agent and pump indications back up.
func (f *relayFn) OnSubscription(ctrl agent.ControllerID, req *e2ap.SubscriptionRequest, tx agent.IndicationSender) error {
	south, err := f.r.target()
	if err != nil {
		return err
	}
	sub, err := f.r.srv.Subscribe(south, f.fnID, req.EventTrigger, req.Actions,
		server.SubscriptionCallbacks{
			OnIndication: func(ev server.IndicationEvent) {
				// Relay hop: forward the SM payload upward unchanged.
				_ = tx.SendIndication(1, e2ap.IndicationReport,
					ev.Env.IndicationHeader(), ev.Env.IndicationPayload())
			},
		})
	if err != nil {
		return err
	}
	f.r.mu.Lock()
	f.r.northSubs[req.RequestID] = sub
	f.r.mu.Unlock()
	return nil
}

// OnSubscriptionDelete implements agent.RANFunction.
func (f *relayFn) OnSubscriptionDelete(ctrl agent.ControllerID, req *e2ap.SubscriptionDeleteRequest) error {
	f.r.mu.Lock()
	sub, ok := f.r.northSubs[req.RequestID]
	delete(f.r.northSubs, req.RequestID)
	f.r.mu.Unlock()
	if !ok {
		return fmt.Errorf("ctrl: relay: unknown subscription")
	}
	return f.r.srv.Unsubscribe(sub, f.fnID)
}

// OnControl implements agent.RANFunction: forward the control message to
// the southbound agent.
func (f *relayFn) OnControl(ctrl agent.ControllerID, req *e2ap.ControlRequest) ([]byte, error) {
	south, err := f.r.target()
	if err != nil {
		return nil, err
	}
	if !req.AckRequested {
		return nil, f.r.srv.Control(south, f.fnID, req.Header, req.Payload, false, nil)
	}
	type res struct {
		out []byte
		err error
	}
	ch := make(chan res, 1)
	if err := f.r.srv.Control(south, f.fnID, req.Header, req.Payload, true,
		func(out []byte, err error) { ch <- res{out, err} }); err != nil {
		return nil, err
	}
	rr := <-ch
	return rr.out, rr.err
}
