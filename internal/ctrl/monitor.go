// Package ctrl provides the controller specializations of §6, composed
// from the FlexRIC server library, iApps, and northbound communication
// interfaces: a monitoring controller (the "statistics iApp" of §5.3), a
// RAT-unaware slicing controller with a REST northbound (§6.1.2, Table
// 4), a flow-based traffic controller with a message-broker northbound
// (§6.1.1, Table 3), a relaying controller (the two-hop setup of §5.4),
// and a recursive virtualization controller (§6.2, Table 5).
package ctrl

import (
	"sync"
	"sync/atomic"

	"flexric/internal/e2ap"
	"flexric/internal/server"
	"flexric/internal/sm"
	"flexric/internal/trace"
)

// MonitorLayers selects which monitoring SMs the controller subscribes
// to (bitmask).
type MonitorLayers uint8

// Monitorable layers.
const (
	MonMAC MonitorLayers = 1 << iota
	MonRLC
	MonPDCP
)

// MonAll subscribes to all monitoring SMs.
const MonAll = MonMAC | MonRLC | MonPDCP

// Monitor is the statistics controller specialization of §5.3: an iApp
// that subscribes to the monitoring SMs of every connecting agent and
// "saves incoming messages to an in-memory data structure". Unlike
// FlexRAN's RIB there is no history ring and no per-poll copying: only
// the latest report per agent/layer is retained, and consumers are
// event-driven.
type Monitor struct {
	srv      *server.Server
	scheme   sm.Scheme
	periodMS uint32
	layers   MonitorLayers
	// DecodeReports controls whether payloads are materialized into
	// report structs (true) or stored as raw SM bytes (false). The raw
	// mode matches the Fig. 8 setup, where the iApp archives messages.
	decode bool

	mu   sync.Mutex
	mac  map[server.AgentID]*sm.MACReport
	rlc  map[server.AgentID]*sm.RLCReport
	pdcp map[server.AgentID]*sm.PDCPReport
	raw  map[server.AgentID]map[uint16][]byte

	indications atomic.Uint64
	bytesIn     atomic.Uint64
}

// MonitorConfig parameterizes a Monitor.
type MonitorConfig struct {
	Scheme   sm.Scheme
	PeriodMS uint32
	Layers   MonitorLayers
	// Decode materializes reports; false stores raw payload copies.
	Decode bool
}

// NewMonitor attaches a monitoring iApp to the server. It subscribes to
// the selected layers of every agent as it connects.
func NewMonitor(srv *server.Server, cfg MonitorConfig) *Monitor {
	if cfg.PeriodMS == 0 {
		cfg.PeriodMS = 1
	}
	if cfg.Layers == 0 {
		cfg.Layers = MonAll
	}
	m := &Monitor{
		srv:      srv,
		scheme:   cfg.Scheme,
		periodMS: cfg.PeriodMS,
		layers:   cfg.Layers,
		decode:   cfg.Decode,
		mac:      make(map[server.AgentID]*sm.MACReport),
		rlc:      make(map[server.AgentID]*sm.RLCReport),
		pdcp:     make(map[server.AgentID]*sm.PDCPReport),
		raw:      make(map[server.AgentID]map[uint16][]byte),
	}
	srv.OnAgentConnect(func(info server.AgentInfo) { m.onAgent(info) })
	srv.OnAgentDisconnect(func(info server.AgentInfo) {
		m.mu.Lock()
		delete(m.mac, info.ID)
		delete(m.rlc, info.ID)
		delete(m.pdcp, info.ID)
		delete(m.raw, info.ID)
		m.mu.Unlock()
	})
	return m
}

func (m *Monitor) onAgent(info server.AgentInfo) {
	type layerSub struct {
		flag MonitorLayers
		fnID uint16
	}
	for _, l := range []layerSub{
		{MonMAC, sm.IDMACStats},
		{MonRLC, sm.IDRLCStats},
		{MonPDCP, sm.IDPDCPStats},
	} {
		if m.layers&l.flag == 0 || !info.HasFunction(l.fnID) {
			continue
		}
		fnID := l.fnID
		_, _ = m.srv.Subscribe(info.ID, fnID,
			sm.EncodeTrigger(m.scheme, sm.Trigger{PeriodMS: m.periodMS}),
			[]e2ap.Action{{ID: 1, Type: e2ap.ActionReport}},
			server.SubscriptionCallbacks{
				OnIndication: func(ev server.IndicationEvent) { m.store(ev, fnID) },
			})
	}
}

func (m *Monitor) store(ev server.IndicationEvent, fnID uint16) {
	// The controller-callback stage of the per-indication trace: SM
	// decode (when enabled) + database update.
	sp := trace.StartChild(ev.Trace, "ctrl.monitor.store")
	defer sp.End()
	payload := ev.Env.IndicationPayload()
	m.indications.Add(1)
	m.bytesIn.Add(uint64(len(payload)))
	if !m.decode {
		cp := append([]byte(nil), payload...)
		m.mu.Lock()
		per := m.raw[ev.Agent]
		if per == nil {
			per = make(map[uint16][]byte)
			m.raw[ev.Agent] = per
		}
		per[fnID] = cp
		m.mu.Unlock()
		return
	}
	switch fnID {
	case sm.IDMACStats:
		if rep, err := sm.DecodeMACReport(payload); err == nil {
			m.mu.Lock()
			m.mac[ev.Agent] = rep
			m.mu.Unlock()
		}
	case sm.IDRLCStats:
		if rep, err := sm.DecodeRLCReport(payload); err == nil {
			m.mu.Lock()
			m.rlc[ev.Agent] = rep
			m.mu.Unlock()
		}
	case sm.IDPDCPStats:
		if rep, err := sm.DecodePDCPReport(payload); err == nil {
			m.mu.Lock()
			m.pdcp[ev.Agent] = rep
			m.mu.Unlock()
		}
	}
}

// MAC returns the latest MAC report for an agent (decode mode only).
func (m *Monitor) MAC(id server.AgentID) *sm.MACReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.mac[id]
}

// RLC returns the latest RLC report for an agent.
func (m *Monitor) RLC(id server.AgentID) *sm.RLCReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rlc[id]
}

// PDCP returns the latest PDCP report for an agent.
func (m *Monitor) PDCP(id server.AgentID) *sm.PDCPReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pdcp[id]
}

// Raw returns the latest raw payload for (agent, function) in raw mode.
func (m *Monitor) Raw(id server.AgentID, fnID uint16) []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	if per := m.raw[id]; per != nil {
		return per[fnID]
	}
	return nil
}

// Counters reports total indications and payload bytes received.
func (m *Monitor) Counters() (indications, bytes uint64) {
	return m.indications.Load(), m.bytesIn.Load()
}
