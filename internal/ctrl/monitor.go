// Package ctrl provides the controller specializations of §6, composed
// from the FlexRIC server library, iApps, and northbound communication
// interfaces: a monitoring controller (the "statistics iApp" of §5.3), a
// RAT-unaware slicing controller with a REST northbound (§6.1.2, Table
// 4), a flow-based traffic controller with a message-broker northbound
// (§6.1.1, Table 3), a relaying controller (the two-hop setup of §5.4),
// and a recursive virtualization controller (§6.2, Table 5).
package ctrl

import (
	"sync"
	"sync/atomic"
	"time"

	"flexric/internal/bufpool"
	"flexric/internal/e2ap"
	"flexric/internal/server"
	"flexric/internal/sm"
	"flexric/internal/trace"
	"flexric/internal/tsdb"
)

// MonitorLayers selects which monitoring SMs the controller subscribes
// to (bitmask).
type MonitorLayers uint8

// Monitorable layers.
const (
	MonMAC MonitorLayers = 1 << iota
	MonRLC
	MonPDCP
)

// MonAll subscribes to all monitoring SMs.
const MonAll = MonMAC | MonRLC | MonPDCP

// Monitor is the statistics controller specialization of §5.3: an iApp
// that subscribes to the monitoring SMs of every connecting agent and
// "saves incoming messages to an in-memory data structure". The latest
// report per agent/layer is retained for event-driven consumers; when a
// tsdb.Store is attached, every decoded report is additionally broken
// into per-(agent, function, UE, field) series so control loops can
// query windowed history instead of a single snapshot, and raw-mode
// payloads are archived in the store's pooled ring instead of a
// freshly allocated copy per indication.
type Monitor struct {
	srv      *server.Server
	scheme   sm.Scheme
	periodMS uint32
	layers   MonitorLayers
	// DecodeReports controls whether payloads are materialized into
	// report structs (true) or stored as raw SM bytes (false). The raw
	// mode matches the Fig. 8 setup, where the iApp archives messages.
	decode      bool
	db          *tsdb.Store
	seriesAgent func(server.AgentInfo) uint32
	retain      bool

	mu   sync.Mutex
	mac  map[server.AgentID]*sm.MACReport
	rlc  map[server.AgentID]*sm.RLCReport
	pdcp map[server.AgentID]*sm.PDCPReport
	raw  map[server.AgentID]map[uint16][]byte
	sid  map[server.AgentID]uint32 // SeriesAgent remap, when configured

	// pipes, when non-nil, carry decode + tsdb-ingest work off the
	// server's receive goroutines onto a fixed worker pool, hashed by
	// (agent, function) so each report stream stays ordered.
	pipes     []chan ingestJob
	wg        sync.WaitGroup
	closeOnce sync.Once

	indications atomic.Uint64
	bytesIn     atomic.Uint64
}

// ingestJob is one indication handed to an ingest pipeline. The payload
// is a pooled copy (the receive buffer is recycled as soon as the server
// callback returns) and is returned to the pool after ingest.
type ingestJob struct {
	agent   server.AgentID
	fnID    uint16
	payload []byte
	tc      trace.Context
}

// MonitorConfig parameterizes a Monitor.
type MonitorConfig struct {
	Scheme   sm.Scheme
	PeriodMS uint32
	Layers   MonitorLayers
	// Decode materializes reports; false stores raw payload copies.
	Decode bool
	// TSDB, when non-nil, receives every decoded report as per-field
	// time series and every raw-mode payload into its archive ring.
	// The monitor evicts an agent's series when it disconnects.
	TSDB *tsdb.Store
	// IngestWorkers > 0 moves report decode and database ingest onto
	// that many pipeline goroutines, hashed by (agent, function): the
	// server's receive loops only copy the payload and enqueue, so a
	// slow database never backs up into the transport reads of other
	// agents. 0 keeps the historical inline behavior. With workers
	// enabled, call Close after the server has stopped.
	IngestWorkers int
	// SeriesAgent, when non-nil, maps a connecting agent to the uint32
	// agent component of its tsdb series keys (default: the
	// transport-assigned server.AgentID). Federation shards key series
	// by the agent's global E2 node ID so a shard's snapshot stays
	// meaningful when its agents re-home to the ring successor.
	SeriesAgent func(server.AgentInfo) uint32
	// RetainSeries keeps an agent's tsdb series across disconnects
	// instead of evicting them. The default eviction protects the
	// single-controller monitor, whose series are keyed by the
	// transport-assigned AgentID — an ID the server reuses, so stale
	// history would bleed into the next agent's series. A federation
	// shard keys series by the global node ID (collision-free) and
	// retains them: a transient keepalive flap must not destroy the
	// history a failover takeover just restored, mirroring how the
	// resilience layer retains a lost agent's subscriptions.
	RetainSeries bool
}

// NewMonitor attaches a monitoring iApp to the server. It subscribes to
// the selected layers of every agent as it connects.
func NewMonitor(srv *server.Server, cfg MonitorConfig) *Monitor {
	if cfg.PeriodMS == 0 {
		cfg.PeriodMS = 1
	}
	if cfg.Layers == 0 {
		cfg.Layers = MonAll
	}
	m := &Monitor{
		srv:         srv,
		scheme:      cfg.Scheme,
		periodMS:    cfg.PeriodMS,
		layers:      cfg.Layers,
		decode:      cfg.Decode,
		db:          cfg.TSDB,
		seriesAgent: cfg.SeriesAgent,
		retain:      cfg.RetainSeries,
		mac:         make(map[server.AgentID]*sm.MACReport),
		rlc:         make(map[server.AgentID]*sm.RLCReport),
		pdcp:        make(map[server.AgentID]*sm.PDCPReport),
		raw:         make(map[server.AgentID]map[uint16][]byte),
		sid:         make(map[server.AgentID]uint32),
	}
	if cfg.IngestWorkers > 0 {
		m.pipes = make([]chan ingestJob, cfg.IngestWorkers)
		for i := range m.pipes {
			pipe := make(chan ingestJob, 256)
			m.pipes[i] = pipe
			m.wg.Add(1)
			go func() {
				defer m.wg.Done()
				for job := range pipe {
					m.ingestOne(job.tc, job.agent, job.fnID, job.payload)
					bufpool.Put(job.payload)
				}
			}()
		}
	}
	srv.OnAgentConnect(func(info server.AgentInfo) { m.onAgent(info) })
	srv.OnAgentDisconnect(func(info server.AgentInfo) {
		sid := m.seriesID(info.ID)
		m.mu.Lock()
		delete(m.mac, info.ID)
		delete(m.rlc, info.ID)
		delete(m.pdcp, info.ID)
		delete(m.raw, info.ID)
		delete(m.sid, info.ID)
		m.mu.Unlock()
		if m.db != nil && !m.retain {
			m.db.EvictAgent(sid)
		}
	})
	return m
}

// seriesID resolves the tsdb agent-key component for a connected agent:
// the SeriesAgent remap when configured, else the server.AgentID.
func (m *Monitor) seriesID(id server.AgentID) uint32 {
	if m.seriesAgent == nil {
		return uint32(id)
	}
	m.mu.Lock()
	v, ok := m.sid[id]
	m.mu.Unlock()
	if ok {
		return v
	}
	return uint32(id)
}

func (m *Monitor) onAgent(info server.AgentInfo) {
	if m.seriesAgent != nil {
		mapped := m.seriesAgent(info)
		m.mu.Lock()
		m.sid[info.ID] = mapped
		m.mu.Unlock()
	}
	type layerSub struct {
		flag MonitorLayers
		fnID uint16
	}
	for _, l := range []layerSub{
		{MonMAC, sm.IDMACStats},
		{MonRLC, sm.IDRLCStats},
		{MonPDCP, sm.IDPDCPStats},
	} {
		if m.layers&l.flag == 0 || !info.HasFunction(l.fnID) {
			continue
		}
		fnID := l.fnID
		_, _ = m.srv.Subscribe(info.ID, fnID,
			sm.EncodeTrigger(m.scheme, sm.Trigger{PeriodMS: m.periodMS}),
			[]e2ap.Action{{ID: 1, Type: e2ap.ActionReport}},
			server.SubscriptionCallbacks{
				OnIndication: func(ev server.IndicationEvent) { m.store(ev, fnID) },
			})
	}
}

func (m *Monitor) store(ev server.IndicationEvent, fnID uint16) {
	// The controller-callback stage of the per-indication trace: SM
	// decode (when enabled) + database update.
	sp := trace.StartChild(ev.Trace, "ctrl.monitor.store")
	defer sp.End()
	payload := ev.Env.IndicationPayload()
	m.indications.Add(1)
	m.bytesIn.Add(uint64(len(payload)))
	if m.pipes != nil {
		// Hand off to the ingest pipeline for this (agent, function)
		// stream. The payload aliases the transport's recycled receive
		// buffer, so it is copied into a pooled buffer first. The send
		// blocks when the pipeline is full: backpressure reaches the
		// one slow agent instead of dropping its reports.
		cp := append(bufpool.Get(len(payload))[:0], payload...)
		h := (uint32(ev.Agent)*31 + uint32(fnID)) % uint32(len(m.pipes))
		m.pipes[h] <- ingestJob{agent: ev.Agent, fnID: fnID, payload: cp, tc: sp.Context()}
		return
	}
	m.ingestOne(sp.Context(), ev.Agent, fnID, payload)
}

// ingestOne decodes (or archives) one indication payload and updates the
// latest-report maps and the attached time-series store. Per-shard
// reports carrying the same CellTimeMS are merged: the UE lists append
// onto the retained report (copy-on-write, so a reader holding the
// previous pointer never observes mutation).
func (m *Monitor) ingestOne(tc trace.Context, agent server.AgentID, fnID uint16, payload []byte) {
	if !m.decode {
		if m.db != nil {
			// Archive into the pooled raw ring: the store copies the
			// payload into a reused slot buffer, so the per-indication
			// allocation of the map path disappears.
			asp := trace.StartChild(tc, "tsdb.append")
			m.db.AppendRaw(m.seriesID(agent), fnID, time.Now().UnixNano(), payload)
			asp.End()
			return
		}
		cp := append([]byte(nil), payload...)
		m.mu.Lock()
		per := m.raw[agent]
		if per == nil {
			per = make(map[uint16][]byte)
			m.raw[agent] = per
		}
		per[fnID] = cp
		m.mu.Unlock()
		return
	}
	switch fnID {
	case sm.IDMACStats:
		if rep, err := sm.DecodeMACReport(payload); err == nil {
			m.ingestMAC(tc, agent, rep) // only this shard's UEs, pre-merge
			m.mu.Lock()
			if cur := m.mac[agent]; cur != nil && cur.CellTimeMS == rep.CellTimeMS {
				rep.UEs = append(cur.UEs[:len(cur.UEs):len(cur.UEs)], rep.UEs...)
			}
			m.mac[agent] = rep
			m.mu.Unlock()
		}
	case sm.IDRLCStats:
		if rep, err := sm.DecodeRLCReport(payload); err == nil {
			m.ingestRLC(tc, agent, rep)
			m.mu.Lock()
			if cur := m.rlc[agent]; cur != nil && cur.CellTimeMS == rep.CellTimeMS {
				rep.UEs = append(cur.UEs[:len(cur.UEs):len(cur.UEs)], rep.UEs...)
			}
			m.rlc[agent] = rep
			m.mu.Unlock()
		}
	case sm.IDPDCPStats:
		if rep, err := sm.DecodePDCPReport(payload); err == nil {
			m.ingestPDCP(tc, agent, rep)
			m.mu.Lock()
			if cur := m.pdcp[agent]; cur != nil && cur.CellTimeMS == rep.CellTimeMS {
				rep.UEs = append(cur.UEs[:len(cur.UEs):len(cur.UEs)], rep.UEs...)
			}
			m.pdcp[agent] = rep
			m.mu.Unlock()
		}
	}
}

// ingestMAC fans a decoded MAC report into per-UE, per-field series.
func (m *Monitor) ingestMAC(tc trace.Context, agent server.AgentID, rep *sm.MACReport) {
	if m.db == nil {
		return
	}
	asp := trace.StartChild(tc, "tsdb.append")
	defer asp.End()
	now := time.Now().UnixNano()
	k := tsdb.SeriesKey{Agent: m.seriesID(agent), Fn: sm.IDMACStats}
	for i := range rep.UEs {
		u := &rep.UEs[i]
		k.UE = u.RNTI
		k.Field = tsdb.FieldCQI
		m.db.Append(k, now, float64(u.CQI))
		k.Field = tsdb.FieldMCS
		m.db.Append(k, now, float64(u.MCS))
		k.Field = tsdb.FieldRBsUsed
		m.db.Append(k, now, float64(u.RBsUsed))
		k.Field = tsdb.FieldTxBits
		m.db.Append(k, now, float64(u.TxBits))
		k.Field = tsdb.FieldThroughputBps
		m.db.Append(k, now, u.ThroughputBps)
	}
}

// ingestRLC fans a decoded RLC report into per-UE, per-field series.
func (m *Monitor) ingestRLC(tc trace.Context, agent server.AgentID, rep *sm.RLCReport) {
	if m.db == nil {
		return
	}
	asp := trace.StartChild(tc, "tsdb.append")
	defer asp.End()
	now := time.Now().UnixNano()
	k := tsdb.SeriesKey{Agent: m.seriesID(agent), Fn: sm.IDRLCStats}
	for i := range rep.UEs {
		u := &rep.UEs[i]
		k.UE = u.RNTI
		k.Field = tsdb.FieldTxPackets
		m.db.Append(k, now, float64(u.TxPackets))
		k.Field = tsdb.FieldTxBytes
		m.db.Append(k, now, float64(u.TxBytes))
		k.Field = tsdb.FieldRxPackets
		m.db.Append(k, now, float64(u.RxPackets))
		k.Field = tsdb.FieldRxBytes
		m.db.Append(k, now, float64(u.RxBytes))
		k.Field = tsdb.FieldDropPackets
		m.db.Append(k, now, float64(u.DropPackets))
		k.Field = tsdb.FieldDropBytes
		m.db.Append(k, now, float64(u.DropBytes))
		k.Field = tsdb.FieldBufferBytes
		m.db.Append(k, now, float64(u.BufferBytes))
		k.Field = tsdb.FieldBufferPkts
		m.db.Append(k, now, float64(u.BufferPkts))
		k.Field = tsdb.FieldSojournMS
		m.db.Append(k, now, float64(u.SojournMS))
	}
}

// ingestPDCP fans a decoded PDCP report into per-UE, per-field series.
func (m *Monitor) ingestPDCP(tc trace.Context, agent server.AgentID, rep *sm.PDCPReport) {
	if m.db == nil {
		return
	}
	asp := trace.StartChild(tc, "tsdb.append")
	defer asp.End()
	now := time.Now().UnixNano()
	k := tsdb.SeriesKey{Agent: m.seriesID(agent), Fn: sm.IDPDCPStats}
	for i := range rep.UEs {
		u := &rep.UEs[i]
		k.UE = u.RNTI
		k.Field = tsdb.FieldTxPackets
		m.db.Append(k, now, float64(u.TxPackets))
		k.Field = tsdb.FieldTxBytes
		m.db.Append(k, now, float64(u.TxBytes))
	}
}

// MAC returns the latest MAC report for an agent (decode mode only).
func (m *Monitor) MAC(id server.AgentID) *sm.MACReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.mac[id]
}

// RLC returns the latest RLC report for an agent.
func (m *Monitor) RLC(id server.AgentID) *sm.RLCReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rlc[id]
}

// PDCP returns the latest PDCP report for an agent.
func (m *Monitor) PDCP(id server.AgentID) *sm.PDCPReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pdcp[id]
}

// Raw returns the latest raw payload for (agent, function) in raw mode.
// With an attached tsdb.Store the archive ring is authoritative and the
// returned slice is the caller's copy; without one it aliases the
// monitor's latest-payload map as before.
func (m *Monitor) Raw(id server.AgentID, fnID uint16) []byte {
	if m.db != nil {
		payload, _, ok := m.db.LastRaw(m.seriesID(id), fnID, nil)
		if !ok {
			return nil
		}
		return payload
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if per := m.raw[id]; per != nil {
		return per[fnID]
	}
	return nil
}

// TSDB returns the attached time-series store, or nil.
func (m *Monitor) TSDB() *tsdb.Store { return m.db }

// Counters reports total indications and payload bytes received.
func (m *Monitor) Counters() (indications, bytes uint64) {
	return m.indications.Load(), m.bytesIn.Load()
}

// Close drains and stops the ingest pipelines (no-op without
// IngestWorkers). Call it only after the server has stopped delivering
// indications; it is idempotent.
func (m *Monitor) Close() {
	m.closeOnce.Do(func() {
		for _, p := range m.pipes {
			close(p)
		}
		m.wg.Wait()
	})
}
