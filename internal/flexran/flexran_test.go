package flexran

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"flexric/internal/ran"
)

func TestProtocolRoundTrip(t *testing.T) {
	msgs := []struct {
		t MsgType
		m any
	}{
		{MsgHello, &Hello{BSID: 7}},
		{MsgStatsRequest, &StatsRequest{PeriodMS: 1, Flags: FlagMAC | FlagRLC | FlagPDCP}},
		{MsgStatsReport, &StatsReport{BSID: 7, TimeMS: 99, UEs: []UEStats{
			{RNTI: 1, CQI: 15, MCS: 28, RBsUsed: 100, MACTxBits: 1e6, RLCTxPkts: 10, RLCTxB: 1e4, RLCBufB: 500, PDCPTxPkt: 10, PDCPTxB: 1e4},
		}}},
		{MsgEchoRequest, &Echo{Seq: 3, T0: 123, Data: bytes.Repeat([]byte{1}, 100)}},
		{MsgEchoReply, &Echo{Seq: 4, T0: 456, Data: []byte{9}}},
	}
	for _, c := range msgs {
		wire, err := Encode(c.t, c.m)
		if err != nil {
			t.Fatalf("encode %d: %v", c.t, err)
		}
		gt, gm, err := Decode(wire)
		if err != nil || gt != c.t {
			t.Fatalf("decode %d: %v %v", c.t, gt, err)
		}
		if !reflect.DeepEqual(gm, c.m) {
			t.Fatalf("round-trip %d:\n got %+v\nwant %+v", c.t, gm, c.m)
		}
	}
}

func TestProtocolErrors(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Fatal("empty must fail")
	}
	if _, _, err := Decode([]byte{99}); err == nil {
		t.Fatal("unknown type must fail")
	}
	if _, err := Encode(MsgHello, struct{}{}); err == nil {
		t.Fatal("unknown struct must fail")
	}
}

func TestSingleEncodingSmallerThanDouble(t *testing.T) {
	// FlexRAN does not double-encode: its echo message must be smaller
	// than both FlexRIC E2AP encodings carrying the same 100 B payload
	// (Fig. 7b: "FlexRAN has the smallest signaling rate").
	wire, err := Encode(MsgEchoRequest, &Echo{Seq: 1, T0: 1, Data: make([]byte, 100)})
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) > 130 {
		t.Fatalf("echo wire %d B for 100 B payload", len(wire))
	}
}

func TestEndToEndStatsAndEcho(t *testing.T) {
	ctrl, addr, err := NewController("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()

	cell, err := ran.NewCell(ran.PHYConfig{RAT: ran.RAT4G, NumRB: 25})
	if err != nil {
		t.Fatal(err)
	}
	ue, err := cell.Attach(1, "", "208.95", 28)
	if err != nil {
		t.Fatal(err)
	}
	ue.AddSource(&ran.Saturating{Flow: ran.FiveTuple{DstIP: 1}, RateBytesPerMS: 5000})

	ag, err := NewAgent(7, cell, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ag.Close()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && len(ctrl.Agents()) == 0 {
		time.Sleep(2 * time.Millisecond)
	}
	if len(ctrl.Agents()) != 1 {
		t.Fatal("agent not registered")
	}
	if err := ctrl.RequestStats(7, 1, FlagMAC|FlagRLC|FlagPDCP); err != nil {
		t.Fatal(err)
	}
	// Drive the cell+agent for 100 simulated ms.
	waitStats := time.Now().Add(5 * time.Second)
	for time.Now().Before(waitStats) {
		cell.Step(1)
		ag.Tick(cell.Now())
		if rep, ok := ctrl.Poll()[7]; ok && len(rep.UEs) == 1 && rep.UEs[0].MACTxBits > 0 {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	rep := ctrl.Poll()[7]
	if rep == nil || len(rep.UEs) != 1 || rep.UEs[0].MACTxBits == 0 {
		t.Fatalf("polled report: %+v", rep)
	}
	if rep.UEs[0].CQI == 0 || rep.UEs[0].PDCPTxB == 0 {
		t.Fatalf("layer stats missing: %+v", rep.UEs[0])
	}

	// Echo round-trip.
	replies := make(chan *Echo, 1)
	ctrl.SubscribeEcho(replies)
	if err := ctrl.Echo(7, &Echo{Seq: 9, T0: time.Now().UnixNano(), Data: make([]byte, 100)}); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-replies:
		if e.Seq != 9 {
			t.Fatalf("echo seq %d", e.Seq)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no echo reply")
	}

	// RequestStats to an unknown agent fails.
	if err := ctrl.RequestStats(99, 1, FlagMAC); err == nil {
		t.Fatal("unknown agent must fail")
	}
	if err := ctrl.Echo(99, &Echo{}); err == nil {
		t.Fatal("echo to unknown agent must fail")
	}
}

func TestPollLoopCountsAndStops(t *testing.T) {
	ctrl, _, err := NewController("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	stop := make(chan struct{})
	done := make(chan uint64, 1)
	go func() { done <- ctrl.PollLoop(time.Millisecond, stop) }()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	polls := <-done
	if polls < 10 {
		t.Fatalf("polls %d, want >=10", polls)
	}
}

func TestRIBHistoryBounded(t *testing.T) {
	ctrl := &Controller{rib: map[uint64]*ribEntry{1: {bsID: 1}}, agents: map[uint64]*ctrlAgent{}}
	for i := 0; i < 3*ribHistoryDepth; i++ {
		ctrl.storeReport(&StatsReport{BSID: 1, TimeMS: int64(i)})
	}
	e := ctrl.rib[1]
	if len(e.history) != ribHistoryDepth {
		t.Fatalf("history %d, want %d", len(e.history), ribHistoryDepth)
	}
	// Poll returns the most recent report.
	rep := ctrl.Poll()[1]
	if rep.TimeMS != int64(3*ribHistoryDepth-1) {
		t.Fatalf("latest report time %d", rep.TimeMS)
	}
}
