package flexran

import (
	"sync"

	"flexric/internal/ran"
	"flexric/internal/transport"
)

// Agent is the FlexRAN agent: it pushes bundled all-layer statistics to
// the controller at the configured period and answers echo requests.
type Agent struct {
	bsID uint64
	cell *ran.Cell
	tc   transport.Conn

	mu       sync.Mutex
	periodMS int64
	flags    uint32
	nextDue  int64

	done chan struct{}
}

// NewAgent connects a FlexRAN agent for the given cell to a controller.
func NewAgent(bsID uint64, cell *ran.Cell, addr string) (*Agent, error) {
	tc, err := transport.Dial(transport.KindSCTPish, addr)
	if err != nil {
		return nil, err
	}
	a := &Agent{bsID: bsID, cell: cell, tc: tc, done: make(chan struct{})}
	wire, err := Encode(MsgHello, &Hello{BSID: bsID})
	if err != nil {
		tc.Close()
		return nil, err
	}
	if err := tc.Send(wire); err != nil {
		tc.Close()
		return nil, err
	}
	go a.recvLoop()
	return a, nil
}

// Close disconnects the agent.
func (a *Agent) Close() error {
	select {
	case <-a.done:
	default:
		close(a.done)
	}
	return a.tc.Close()
}

func (a *Agent) recvLoop() {
	for {
		wire, err := a.tc.Recv()
		if err != nil {
			return
		}
		t, msg, err := Decode(wire)
		if err != nil {
			continue
		}
		switch t {
		case MsgStatsRequest:
			req := msg.(*StatsRequest)
			a.mu.Lock()
			a.periodMS = int64(req.PeriodMS)
			a.flags = req.Flags
			a.nextDue = 0
			a.mu.Unlock()
		case MsgEchoRequest:
			echo := msg.(*Echo)
			if out, err := Encode(MsgEchoReply, echo); err == nil {
				_ = a.tc.Send(out)
			}
		}
	}
}

// Tick drives periodic reporting from the base station's slot loop.
func (a *Agent) Tick(now int64) {
	a.mu.Lock()
	due := a.periodMS > 0 && now >= a.nextDue
	if due {
		a.nextDue = now + a.periodMS
	}
	flags := a.flags
	a.mu.Unlock()
	if !due {
		return
	}
	rep := &StatsReport{BSID: a.bsID, TimeMS: now}
	a.cell.WithUEs(func(ues []*ran.UE) {
		for _, u := range ues {
			var s UEStats
			s.RNTI = u.RNTI
			if flags&FlagMAC != 0 {
				m := u.MACStats()
				s.CQI = uint8(m.CQI)
				s.MCS = uint8(m.MCS)
				s.RBsUsed = m.RBsUsed
				s.MACTxBits = m.TxBits
			}
			if flags&FlagRLC != 0 {
				r := u.RLC().Stats()
				s.RLCTxPkts = r.TxPackets
				s.RLCTxB = r.TxBytes
				s.RLCBufB = uint64(r.BufferBytes)
			}
			if flags&FlagPDCP != 0 {
				p := u.PDCPStats()
				s.PDCPTxPkt = p.TxPackets
				s.PDCPTxB = p.TxBytes
			}
			rep.UEs = append(rep.UEs, s)
		}
	})
	if wire, err := Encode(MsgStatsReport, rep); err == nil {
		_ = a.tc.Send(wire)
	}
}
