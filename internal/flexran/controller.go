package flexran

import (
	"fmt"
	"sync"
	"time"

	"flexric/internal/transport"
)

// Controller is the FlexRAN master controller with its RAN information
// base (RIB). Applications read the RIB by polling — there is no
// notification path, matching the original's design.
type Controller struct {
	lis transport.Listener

	mu     sync.Mutex
	agents map[uint64]*ctrlAgent
	rib    map[uint64]*ribEntry

	echoMu   sync.Mutex
	echoSubs []chan *Echo

	wg sync.WaitGroup
}

type ctrlAgent struct {
	bsID uint64
	tc   transport.Conn
}

// ribEntry stores per-BS state. FlexRAN's RIB keeps a history window of
// full report copies per base station — the coarse memory organization
// behind the 3× memory footprint of Fig. 8a.
type ribEntry struct {
	bsID    uint64
	history []*StatsReport // ring of deep-copied reports
	next    int
}

// ribHistoryDepth is the per-BS report history window.
const ribHistoryDepth = 1024

// NewController starts a FlexRAN controller listening on addr. The
// returned address is the bound listen address.
func NewController(addr string) (*Controller, string, error) {
	lis, err := transport.Listen(transport.KindSCTPish, addr)
	if err != nil {
		return nil, "", err
	}
	c := &Controller{
		lis:    lis,
		agents: make(map[uint64]*ctrlAgent),
		rib:    make(map[uint64]*ribEntry),
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			tc, err := lis.Accept()
			if err != nil {
				return
			}
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				c.serve(tc)
			}()
		}
	}()
	return c, lis.Addr(), nil
}

// Close shuts the controller down.
func (c *Controller) Close() error {
	c.lis.Close()
	c.mu.Lock()
	for _, a := range c.agents {
		a.tc.Close()
	}
	c.mu.Unlock()
	c.wg.Wait()
	return nil
}

func (c *Controller) serve(tc transport.Conn) {
	defer tc.Close()
	var bsID uint64
	registered := false
	for {
		wire, err := tc.Recv()
		if err != nil {
			break
		}
		t, msg, err := Decode(wire)
		if err != nil {
			continue
		}
		switch t {
		case MsgHello:
			bsID = msg.(*Hello).BSID
			registered = true
			c.mu.Lock()
			c.agents[bsID] = &ctrlAgent{bsID: bsID, tc: tc}
			c.rib[bsID] = &ribEntry{bsID: bsID, history: make([]*StatsReport, 0, ribHistoryDepth)}
			c.mu.Unlock()
		case MsgStatsReport:
			rep := msg.(*StatsReport)
			c.storeReport(rep)
		case MsgEchoReply:
			echo := msg.(*Echo)
			c.echoMu.Lock()
			for _, ch := range c.echoSubs {
				select {
				case ch <- echo:
				default:
				}
			}
			c.echoMu.Unlock()
		}
	}
	if registered {
		c.mu.Lock()
		delete(c.agents, bsID)
		delete(c.rib, bsID)
		c.mu.Unlock()
	}
}

// storeReport deep-copies the report into the RIB history ring.
func (c *Controller) storeReport(rep *StatsReport) {
	cp := &StatsReport{BSID: rep.BSID, TimeMS: rep.TimeMS, UEs: append([]UEStats(nil), rep.UEs...)}
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.rib[rep.BSID]
	if e == nil {
		return
	}
	if len(e.history) < ribHistoryDepth {
		e.history = append(e.history, cp)
	} else {
		e.history[e.next] = cp
		e.next = (e.next + 1) % ribHistoryDepth
	}
}

// RequestStats configures the reporting of one agent.
func (c *Controller) RequestStats(bsID uint64, periodMS, flags uint32) error {
	c.mu.Lock()
	a := c.agents[bsID]
	c.mu.Unlock()
	if a == nil {
		return fmt.Errorf("flexran: no agent %d", bsID)
	}
	wire, err := Encode(MsgStatsRequest, &StatsRequest{PeriodMS: periodMS, Flags: flags})
	if err != nil {
		return err
	}
	return a.tc.Send(wire)
}

// Echo sends a ping to an agent; the reply is delivered to channels
// registered with SubscribeEcho.
func (c *Controller) Echo(bsID uint64, e *Echo) error {
	c.mu.Lock()
	a := c.agents[bsID]
	c.mu.Unlock()
	if a == nil {
		return fmt.Errorf("flexran: no agent %d", bsID)
	}
	wire, err := Encode(MsgEchoRequest, e)
	if err != nil {
		return err
	}
	return a.tc.Send(wire)
}

// SubscribeEcho registers a channel receiving echo replies.
func (c *Controller) SubscribeEcho(ch chan *Echo) {
	c.echoMu.Lock()
	c.echoSubs = append(c.echoSubs, ch)
	c.echoMu.Unlock()
}

// Agents lists the registered base stations.
func (c *Controller) Agents() []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]uint64, 0, len(c.agents))
	for id := range c.agents {
		out = append(out, id)
	}
	return out
}

// Poll returns a deep-copied snapshot of the latest report of every base
// station. This is the application API: FlexRAN applications call Poll
// on a timer (e.g. every 1 ms), paying a copy whether or not anything
// changed — the polling overhead the FlexRIC event-driven design avoids.
func (c *Controller) Poll() map[uint64]*StatsReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[uint64]*StatsReport, len(c.rib))
	for id, e := range c.rib {
		if len(e.history) == 0 {
			continue
		}
		last := e.history[len(e.history)-1]
		if len(e.history) == ribHistoryDepth {
			idx := e.next - 1
			if idx < 0 {
				idx = ribHistoryDepth - 1
			}
			last = e.history[idx]
		}
		out[id] = &StatsReport{
			BSID:   last.BSID,
			TimeMS: last.TimeMS,
			UEs:    append([]UEStats(nil), last.UEs...),
		}
	}
	return out
}

// PollLoop polls the RIB every period until stop is closed, returning
// the number of polls performed. It emulates a FlexRAN application.
func (c *Controller) PollLoop(period time.Duration, stop <-chan struct{}) uint64 {
	t := time.NewTicker(period)
	defer t.Stop()
	var polls uint64
	for {
		select {
		case <-stop:
			return polls
		case <-t.C:
			_ = c.Poll()
			polls++
		}
	}
}
