// Package flexran re-creates the FlexRAN SD-RAN controller (Foukas et
// al., CoNEXT'16) as the comparison baseline of §5.1, §5.2 and §5.3.
//
// Faithful to the original's measured properties:
//
//   - a custom south-bound protocol tightly coupled to the control
//     operations, encoded with the Protobuf wire format — a single
//     encoding pass (no E2AP/E2SM double encoding);
//   - applications POLL the controller's RIB for updates instead of
//     being notified ("FlexRAN adds overhead by requiring applications
//     to poll for new messages"), so the application-visible latency is
//     quantized to the polling period (1 ms in the paper);
//   - the controller's RIB stores deep-copied per-UE records per report,
//     the coarse memory organization behind its 3× memory footprint.
package flexran

import (
	"fmt"

	"flexric/internal/encoding/protowire"
)

// MsgType enumerates FlexRAN protocol messages.
type MsgType uint8

// FlexRAN protocol messages.
const (
	MsgHello MsgType = iota + 1
	MsgStatsRequest
	MsgStatsReport
	MsgEchoRequest
	MsgEchoReply
)

// Hello announces an agent.
type Hello struct {
	BSID uint64
}

// StatsRequest configures periodic reporting.
type StatsRequest struct {
	PeriodMS uint32
	// Flags selects layers (bitmask: 1 MAC, 2 RLC, 4 PDCP).
	Flags uint32
}

// Layer flags in StatsRequest.
const (
	FlagMAC  = 1
	FlagRLC  = 2
	FlagPDCP = 4
)

// UEStats is one UE's combined statistics in a report (FlexRAN bundles
// all layers in one message).
type UEStats struct {
	RNTI      uint16
	CQI       uint8
	MCS       uint8
	RBsUsed   uint64
	MACTxBits uint64
	RLCTxPkts uint64
	RLCTxB    uint64
	RLCBufB   uint64
	PDCPTxPkt uint64
	PDCPTxB   uint64
}

// StatsReport is the periodic agent report.
type StatsReport struct {
	BSID   uint64
	TimeMS int64
	UEs    []UEStats
}

// Echo is the ping message of the §5.2 RTT comparison.
type Echo struct {
	Seq  uint64
	T0   int64
	Data []byte
}

// Encode serializes one protocol message (type byte + protobuf body).
func Encode(t MsgType, msg any) ([]byte, error) {
	e := protowire.NewEncoder(256)
	switch m := msg.(type) {
	case *Hello:
		e.Uint64(1, m.BSID)
	case *StatsRequest:
		e.Uint64(1, uint64(m.PeriodMS))
		e.Uint64(2, uint64(m.Flags))
	case *StatsReport:
		e.Uint64(1, m.BSID)
		e.Int64(2, m.TimeMS)
		for i := range m.UEs {
			u := &m.UEs[i]
			inner := protowire.NewEncoder(96)
			inner.Uint64(1, uint64(u.RNTI))
			inner.Uint64(2, uint64(u.CQI))
			inner.Uint64(3, uint64(u.MCS))
			inner.Uint64(4, u.RBsUsed)
			inner.Uint64(5, u.MACTxBits)
			inner.Uint64(6, u.RLCTxPkts)
			inner.Uint64(7, u.RLCTxB)
			inner.Uint64(8, u.RLCBufB)
			inner.Uint64(9, u.PDCPTxPkt)
			inner.Uint64(10, u.PDCPTxB)
			e.Embedded(3, inner.Bytes())
		}
	case *Echo:
		e.Uint64(1, m.Seq)
		e.Int64(2, m.T0)
		e.BytesField(3, m.Data)
	default:
		return nil, fmt.Errorf("flexran: unknown message %T", msg)
	}
	out := make([]byte, 1+e.Len())
	out[0] = byte(t)
	copy(out[1:], e.Bytes())
	return out, nil
}

// Decode parses one protocol message.
func Decode(wire []byte) (MsgType, any, error) {
	if len(wire) == 0 {
		return 0, nil, fmt.Errorf("flexran: empty message")
	}
	t := MsgType(wire[0])
	d := protowire.NewDecoder(wire[1:])
	switch t {
	case MsgHello:
		m := &Hello{}
		for d.More() {
			f, w, err := d.Tag()
			if err != nil {
				return 0, nil, err
			}
			if f == 1 && w == protowire.TypeVarint {
				if m.BSID, err = d.Uint64(); err != nil {
					return 0, nil, err
				}
			} else if err := d.Skip(w); err != nil {
				return 0, nil, err
			}
		}
		return t, m, nil
	case MsgStatsRequest:
		m := &StatsRequest{}
		for d.More() {
			f, w, err := d.Tag()
			if err != nil {
				return 0, nil, err
			}
			v, err := d.Uint64()
			if err != nil {
				return 0, nil, err
			}
			switch f {
			case 1:
				m.PeriodMS = uint32(v)
			case 2:
				m.Flags = uint32(v)
			default:
				_ = w
			}
		}
		return t, m, nil
	case MsgStatsReport:
		m := &StatsReport{}
		for d.More() {
			f, w, err := d.Tag()
			if err != nil {
				return 0, nil, err
			}
			switch f {
			case 1:
				if m.BSID, err = d.Uint64(); err != nil {
					return 0, nil, err
				}
			case 2:
				if m.TimeMS, err = d.Int64(); err != nil {
					return 0, nil, err
				}
			case 3:
				sub, err := d.Bytes()
				if err != nil {
					return 0, nil, err
				}
				u, err := decodeUE(sub)
				if err != nil {
					return 0, nil, err
				}
				m.UEs = append(m.UEs, u)
			default:
				if err := d.Skip(w); err != nil {
					return 0, nil, err
				}
			}
		}
		return t, m, nil
	case MsgEchoRequest, MsgEchoReply:
		m := &Echo{}
		for d.More() {
			f, w, err := d.Tag()
			if err != nil {
				return 0, nil, err
			}
			switch f {
			case 1:
				if m.Seq, err = d.Uint64(); err != nil {
					return 0, nil, err
				}
			case 2:
				if m.T0, err = d.Int64(); err != nil {
					return 0, nil, err
				}
			case 3:
				b, err := d.Bytes()
				if err != nil {
					return 0, nil, err
				}
				m.Data = append([]byte(nil), b...)
			default:
				if err := d.Skip(w); err != nil {
					return 0, nil, err
				}
			}
		}
		return t, m, nil
	default:
		return 0, nil, fmt.Errorf("flexran: unknown message type %d", t)
	}
}

func decodeUE(b []byte) (UEStats, error) {
	d := protowire.NewDecoder(b)
	var u UEStats
	for d.More() {
		f, w, err := d.Tag()
		if err != nil {
			return u, err
		}
		if w != protowire.TypeVarint {
			if err := d.Skip(w); err != nil {
				return u, err
			}
			continue
		}
		v, err := d.Uint64()
		if err != nil {
			return u, err
		}
		switch f {
		case 1:
			u.RNTI = uint16(v)
		case 2:
			u.CQI = uint8(v)
		case 3:
			u.MCS = uint8(v)
		case 4:
			u.RBsUsed = v
		case 5:
			u.MACTxBits = v
		case 6:
			u.RLCTxPkts = v
		case 7:
			u.RLCTxB = v
		case 8:
			u.RLCBufB = v
		case 9:
			u.PDCPTxPkt = v
		case 10:
			u.PDCPTxB = v
		}
	}
	return u, nil
}
