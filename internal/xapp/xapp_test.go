package xapp_test

import (
	"testing"
	"time"

	"flexric/internal/agent"
	"flexric/internal/broker"
	"flexric/internal/ctrl"
	"flexric/internal/e2ap"
	"flexric/internal/ran"
	"flexric/internal/server"
	"flexric/internal/sm"
	"flexric/internal/xapp"
)

// This test drives the full §6.1.1 story end to end: VoIP + Cubic share
// a bearer, the TC xApp watches sojourn via the broker, applies its
// three-action remedy over REST, and the cell's TC state changes.
func TestTCXAppAppliesRemedy(t *testing.T) {
	brk, brkAddr, err := broker.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer brk.Close()
	srv := server.New(server.Config{})
	e2Addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tcc, err := ctrl.NewTCController(srv, sm.SchemeFB, brkAddr, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tcc.Close()

	cell, err := ran.NewCell(ran.PHYConfig{RAT: ran.RAT4G, NumRB: 25})
	if err != nil {
		t.Fatal(err)
	}
	a := agent.New(agent.Config{
		NodeID: e2ap.GlobalE2NodeID{PLMN: e2ap.PLMN{MCC: 208, MNC: 95}, Type: e2ap.NodeENB, NodeID: 1},
	})
	fns := []agent.RANFunction{
		sm.NewRLCStats(cell, sm.SchemeFB, a),
		sm.NewTCCtrl(cell, sm.SchemeFB, a),
	}
	for _, fn := range fns {
		if err := a.RegisterFunction(fn); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Connect(e2Addr); err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	if _, err := cell.Attach(1, "", "208.95", 28); err != nil {
		t.Fatal(err)
	}
	voip := &ran.CBR{Flow: ran.FiveTuple{DstIP: 1, DstPort: 5060, Proto: ran.ProtoUDP}, Size: 172, IntervalMS: 20, ReturnDelayMS: 10}
	if err := cell.AddTraffic(1, voip); err != nil {
		t.Fatal(err)
	}
	if err := cell.AddTraffic(1, &ran.CubicFlow{Flow: ran.FiveTuple{DstIP: 1, DstPort: 5001, Proto: ran.ProtoTCP}}); err != nil {
		t.Fatal(err)
	}

	x, err := xapp.NewTCXApp("http://"+tcc.Addr(), brkAddr, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	x.FilterDstPort = 5060
	x.FilterProto = 17
	runDone := make(chan error, 1)
	go func() { runDone <- x.Run() }()

	// Drive the slot loop until the remedy lands (bufferbloat builds up
	// within a few simulated seconds).
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			cell.Step(1)
			sm.TickAll(fns, cell.Now())
			time.Sleep(20 * time.Microsecond)
		}
	}()
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("xapp run: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("xApp never applied the remedy")
	}
	close(stop)
	x.Close()
	if !x.Applied() {
		t.Fatal("Applied() must report true")
	}
	// The remedy was a windowed decision: the trailing sojourn window
	// must hold enough samples with a p95 beyond the limit.
	agg, ok := x.SojournAgg()
	if !ok || agg.Count < x.MinWindowSamples {
		t.Fatalf("windowed sojourn aggregate too thin: %+v (ok=%v)", agg, ok)
	}
	if agg.P95 <= float64(x.SojournLimitMS) {
		t.Fatalf("remedy fired below the windowed limit: %+v", agg)
	}
	var st ran.TCStats
	if err := cell.WithUE(1, func(u *ran.UE) error { st = u.TC().Stats(); return nil }); err != nil {
		t.Fatal(err)
	}
	if st.Mode != "active" || len(st.Queues) != 2 || st.Filters != 1 || st.Pacer != ran.PacerBDP {
		t.Fatalf("remedy not applied: %+v", st)
	}
}

func TestSliceXApp(t *testing.T) {
	srv := server.New(server.Config{})
	e2Addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sc, err := ctrl.NewSlicingController(srv, sm.SchemeASN, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()

	cell, err := ran.NewCell(ran.PHYConfig{RAT: ran.RAT5G, NumRB: 106})
	if err != nil {
		t.Fatal(err)
	}
	a := agent.New(agent.Config{
		NodeID: e2ap.GlobalE2NodeID{PLMN: e2ap.PLMN{MCC: 208, MNC: 95}, Type: e2ap.NodeGNB, NodeID: 2},
	})
	fns := []agent.RANFunction{
		sm.NewMACStats(cell, sm.SchemeASN, a),
		sm.NewSliceCtrl(cell, sm.SchemeASN),
	}
	for _, fn := range fns {
		if err := a.RegisterFunction(fn); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Connect(e2Addr); err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, err := cell.Attach(1, "", "208.95", 20); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			cell.Step(1)
			sm.TickAll(fns, cell.Now())
			time.Sleep(20 * time.Microsecond)
		}
	}()

	x := xapp.NewSliceXApp("http://"+sc.Addr(), 0)
	if err := x.Deploy(ctrl.SliceConfigJSON{
		Algo: "nvs",
		Slices: []ctrl.SliceParamJSON{
			{ID: 1, Kind: "capacity", Capacity: 0.5},
			{ID: 2, Kind: "capacity", Capacity: 0.5},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := x.Associate(1, 1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if st, err := x.Status(); err == nil && st.Algo == "nvs" && len(st.Slices) == 2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	st, err := x.Status()
	if err != nil || st.Algo != "nvs" {
		t.Fatalf("status: %+v %v", st, err)
	}
	deadline = time.Now().Add(10 * time.Second)
	gotStats := false
	for time.Now().Before(deadline) {
		if rep, err := x.Stats(); err == nil && len(rep.UEs) == 1 {
			gotStats = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !gotStats {
		t.Fatal("no stats via xApp")
	}
	// The windowed view: aggregated CQI over the trailing window, served
	// from the controller's time-series store instead of the latest
	// report. The attached UE reports a constant CQI, so the windowed
	// percentiles collapse onto it.
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		agg, err := x.AggStats(1, "cqi", 5000)
		if err == nil && agg.Count >= 5 {
			if agg.Max <= 0 || agg.P95 < agg.P50 || agg.Mean > agg.Max {
				t.Fatalf("aggregate shape: %+v", agg)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("no windowed aggregate via xApp")
}
