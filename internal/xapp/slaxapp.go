package xapp

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"flexric/internal/a1"
	"flexric/internal/ctrl"
	"flexric/internal/sm"
	"flexric/internal/telemetry"
	"flexric/internal/trace"
	"flexric/internal/tsdb"
)

// SLAXApp is the closed loop that makes the slicing plane self-driving:
// every enforcement tick it reads the active A1 policies, evaluates
// their per-slice targets against windowed tsdb percentiles (p50
// throughput summed over the slice's UEs, worst-UE p95 RLC sojourn),
// and — when a violation survives the hysteresis filter and the
// per-policy cooldown — shifts NVS capacity weights through the
// slicing controller's REST northbound (plus an optional TC pacer
// remedy for latency violations). Verdicts land back in the policy
// store as status transitions, so /a1/status and the control-room a1
// channel show the loop working.
//
// Like every xApp it talks only to northbounds: the policy store
// (shared contract), the tsdb (read-only), and the controllers' REST
// endpoints — never the E2 plane directly.
type SLAXApp struct {
	cfg  SLAConfig
	rest *RESTClient
	tc   *RESTClient

	mu sync.Mutex
	rt map[string]*polRuntime

	stop chan struct{}
	done chan struct{}
}

// SLAConfig wires an SLAXApp.
type SLAConfig struct {
	// Policies is the A1 policy store to enforce.
	Policies *a1.Store
	// TSDB is the monitoring store the percentile windows read.
	TSDB *tsdb.Store
	// SlicingBase is the slicing controller's REST base URL.
	SlicingBase string
	// TCBase is the traffic-control REST base URL for latency remedies
	// (empty = NVS weight remedies only).
	TCBase string
	// TickMS is the enforcement tick period (default 500; Run only).
	TickMS int
	// HysteresisTicks is how many consecutive violated ticks are needed
	// before a VIOLATED transition and a remedy (default 2).
	HysteresisTicks int
	// StepShare is the capacity share granted to a violated slice per
	// remedy (default 0.10).
	StepShare float64
	// MinShare is the floor no donor slice is squeezed below (default
	// 0.05).
	MinShare float64
	// MinWindowSamples is how many samples a window needs before its
	// aggregate is trusted (default 3).
	MinWindowSamples int
	// PacerTargetMS is the BDP pacer target installed on latency
	// remedies when TCBase is set (default 4).
	PacerTargetMS uint32
}

// polRuntime is the per-policy hysteresis/cooldown state.
type polRuntime struct {
	version      uint64 // runtime resets when the policy version moves
	violTicks    int
	lastRemedyNS int64
}

var slaTel = struct {
	ticks      *telemetry.Counter
	evaluated  *telemetry.Counter
	violations *telemetry.Counter
	remedies   *telemetry.Counter
	tcRemedies *telemetry.Counter
	tickLat    *telemetry.Histogram
}{
	ticks:      telemetry.NewCounter("a1.enforce.ticks"),
	evaluated:  telemetry.NewCounter("a1.enforce.evaluated"),
	violations: telemetry.NewCounter("a1.enforce.violations"),
	remedies:   telemetry.NewCounter("a1.enforce.remedies"),
	tcRemedies: telemetry.NewCounter("a1.enforce.tc_remedies"),
	tickLat:    telemetry.NewHistogram("a1.enforce.latency"),
}

// NewSLAXApp builds the loop; call Run (ticker) or EnforceOnce
// (deterministic, for tests and experiments).
func NewSLAXApp(cfg SLAConfig) *SLAXApp {
	if cfg.TickMS <= 0 {
		cfg.TickMS = 500
	}
	if cfg.HysteresisTicks <= 0 {
		cfg.HysteresisTicks = 2
	}
	if cfg.StepShare <= 0 {
		cfg.StepShare = 0.10
	}
	if cfg.MinShare <= 0 {
		cfg.MinShare = 0.05
	}
	if cfg.MinWindowSamples <= 0 {
		cfg.MinWindowSamples = 3
	}
	if cfg.PacerTargetMS == 0 {
		cfg.PacerTargetMS = 4
	}
	x := &SLAXApp{
		cfg:  cfg,
		rest: NewRESTClient(cfg.SlicingBase),
		rt:   make(map[string]*polRuntime),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if cfg.TCBase != "" {
		x.tc = NewRESTClient(cfg.TCBase)
	}
	return x
}

// Run ticks EnforceOnce every TickMS until Close.
func (x *SLAXApp) Run() {
	defer close(x.done)
	tick := time.NewTicker(time.Duration(x.cfg.TickMS) * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-x.stop:
			return
		case <-tick.C:
			x.EnforceOnce()
		}
	}
}

// Close stops a running loop. Safe to call without Run only if Run is
// never started afterwards.
func (x *SLAXApp) Close() {
	select {
	case <-x.stop:
	default:
		close(x.stop)
	}
	<-x.done
}

// SliceEval is one slice target's evaluation inside a decision.
type SliceEval struct {
	SliceID        uint32  `json:"sliceId"`
	UEs            int     `json:"ues"`
	ThroughputMbps float64 `json:"throughputMbps"` // p50 per UE, summed
	LatencyMSP95   float64 `json:"latencyMsP95"`   // worst UE p95
	Samples        int     `json:"samples"`
	Violated       bool    `json:"violated"`
	Reason         string  `json:"reason,omitempty"`
}

// PolicyDecision is what one enforcement tick concluded for one
// policy.
type PolicyDecision struct {
	PolicyID  string             `json:"policyId"`
	Agent     int                `json:"agent"`
	Status    a1.Status          `json:"status"`
	Reason    string             `json:"reason,omitempty"`
	Slices    []SliceEval        `json:"slices,omitempty"`
	Remedied  bool               `json:"remedied"`
	NewShares map[uint32]float64 `json:"newShares,omitempty"`
}

// EnforceOnce runs one enforcement tick over every policy and returns
// the decisions. It is the loop body of Run, exported so tests and
// experiments can drive the loop deterministically.
func (x *SLAXApp) EnforceOnce() []PolicyDecision {
	sp := trace.StartRoot("a1.enforce")
	defer sp.End()
	t0 := time.Now()
	defer func() { slaTel.tickLat.Observe(time.Since(t0)) }()
	slaTel.ticks.Inc()

	var decisions []PolicyDecision
	for _, agent := range x.cfg.Policies.Agents() {
		// One status fetch per agent covers all its policies this tick.
		var status sm.SliceStatus
		statusErr := x.rest.GetJSON(fmt.Sprintf("/slices?agent=%d", agent), &status)
		for _, st := range x.cfg.Policies.ActiveFor(agent) {
			psp := trace.StartChild(sp.Context(), "a1.enforce.policy")
			d := x.enforcePolicy(psp, st, &status, statusErr)
			psp.End()
			decisions = append(decisions, d)
		}
	}
	return decisions
}

// enforcePolicy evaluates one policy against the agent's slice status
// and records the verdict in the store.
func (x *SLAXApp) enforcePolicy(sp trace.Span, st a1.State, status *sm.SliceStatus, statusErr error) PolicyDecision {
	slaTel.evaluated.Inc()
	pol := st.Policy
	d := PolicyDecision{PolicyID: pol.ID, Agent: pol.Agent}
	rt := x.runtime(pol.ID, pol.Version)

	if statusErr != nil || status.Algo != "nvs" {
		rt.violTicks = 0
		d.Status = a1.StatusNotApplied
		d.Reason = "no NVS slice configuration on agent"
		if statusErr != nil {
			d.Reason = "no slice status from agent"
		}
		x.cfg.Policies.SetStatus(pol.ID, d.Status, d.Reason)
		return d
	}

	// Slice membership from the status report.
	members := make(map[uint32][]uint16)
	for _, a := range status.UEs {
		members[a.SliceID] = append(members[a.SliceID], a.RNTI)
	}

	now := time.Now().UnixNano()
	violated := make(map[uint32]bool)
	var firstReason string
	for _, tgt := range pol.Targets {
		ev := x.evalTarget(pol.Agent, tgt, members[tgt.SliceID], pol.WindowMS, now)
		d.Slices = append(d.Slices, ev)
		if ev.Violated {
			violated[tgt.SliceID] = true
			if firstReason == "" {
				firstReason = ev.Reason
			}
		}
	}

	if len(violated) == 0 {
		rt.violTicks = 0
		d.Status = a1.StatusEnforced
		d.Reason = "all targets met"
		x.cfg.Policies.SetStatus(pol.ID, d.Status, d.Reason)
		return d
	}

	// A violation this tick; hold the previous status until it survives
	// the hysteresis filter.
	rt.violTicks++
	if rt.violTicks < x.cfg.HysteresisTicks {
		d.Status = st.Status
		d.Reason = fmt.Sprintf("violation pending hysteresis (%d/%d): %s",
			rt.violTicks, x.cfg.HysteresisTicks, firstReason)
		return d
	}

	slaTel.violations.Inc()
	d.Status = a1.StatusViolated
	d.Reason = firstReason
	x.cfg.Policies.SetStatus(pol.ID, d.Status, d.Reason)

	// Remedy, rate-limited by the per-policy cooldown.
	cooldown := pol.CooldownMS
	if cooldown == 0 {
		cooldown = 2 * pol.WindowMS
	}
	if now-rt.lastRemedyNS < cooldown*int64(time.Millisecond) {
		return d
	}
	rsp := trace.StartChild(sp.Context(), "a1.enforce.remedy")
	shares, err := x.remedyWeights(pol.Agent, status, violated)
	rsp.End()
	if err == nil && shares != nil {
		rt.lastRemedyNS = now
		d.Remedied = true
		d.NewShares = shares
		slaTel.remedies.Inc()
	}
	if x.tc != nil {
		x.remedyLatency(pol.Agent, d.Slices, members)
	}
	return d
}

// runtime returns (and resets on version change) the per-policy
// hysteresis/cooldown state.
func (x *SLAXApp) runtime(id string, version uint64) *polRuntime {
	x.mu.Lock()
	defer x.mu.Unlock()
	rt := x.rt[id]
	if rt == nil || rt.version != version {
		rt = &polRuntime{version: version}
		x.rt[id] = rt
	}
	return rt
}

// evalTarget evaluates one slice target over the trailing window using
// the single-pass Window query (one bucket spanning the whole window).
func (x *SLAXApp) evalTarget(agent int, tgt a1.SliceTarget, rntis []uint16, windowMS int64, now int64) SliceEval {
	ev := SliceEval{SliceID: tgt.SliceID, UEs: len(rntis)}
	if len(rntis) == 0 {
		ev.Reason = "no UEs associated"
		return ev
	}
	from := now - windowMS*int64(time.Millisecond)
	window := now - from

	if tgt.MinThroughputMbps > 0 {
		sum, samples := 0.0, math.MaxInt
		for _, rnti := range rntis {
			k := tsdb.SeriesKey{Agent: uint32(agent), Fn: sm.IDMACStats, UE: rnti, Field: tsdb.FieldThroughputBps}
			buckets := x.cfg.TSDB.Window(k, from, now, window)
			if len(buckets) == 0 || buckets[0].Agg.Count == 0 {
				samples = 0
				continue
			}
			sum += buckets[0].Agg.P50
			if buckets[0].Agg.Count < samples {
				samples = buckets[0].Agg.Count
			}
		}
		if samples == math.MaxInt {
			samples = 0
		}
		ev.ThroughputMbps = sum / 1e6
		ev.Samples = samples
		if samples >= x.cfg.MinWindowSamples && ev.ThroughputMbps < tgt.MinThroughputMbps {
			ev.Violated = true
			ev.Reason = fmt.Sprintf("slice %d p50 throughput %.1f Mbps < target %.1f",
				tgt.SliceID, ev.ThroughputMbps, tgt.MinThroughputMbps)
		}
	}

	if tgt.MaxLatencyMS > 0 {
		worst, samples := 0.0, 0
		for _, rnti := range rntis {
			k := tsdb.SeriesKey{Agent: uint32(agent), Fn: sm.IDRLCStats, UE: rnti, Field: tsdb.FieldSojournMS}
			buckets := x.cfg.TSDB.Window(k, from, now, window)
			if len(buckets) == 0 || buckets[0].Agg.Count == 0 {
				continue
			}
			if buckets[0].Agg.P95 > worst {
				worst = buckets[0].Agg.P95
			}
			samples += buckets[0].Agg.Count
		}
		ev.LatencyMSP95 = worst
		if samples >= x.cfg.MinWindowSamples && worst > tgt.MaxLatencyMS {
			ev.Violated = true
			if ev.Reason != "" {
				ev.Reason += "; "
			}
			ev.Reason += fmt.Sprintf("slice %d p95 sojourn %.1f ms > target %.1f",
				tgt.SliceID, worst, tgt.MaxLatencyMS)
		}
	}
	return ev
}

// remedyWeights shifts NVS capacity shares toward the violated slices:
// each violated slice gains StepShare, funded proportionally by the
// non-violated slices' headroom above MinShare, and the new layout is
// POSTed to the slicing northbound. Returns the new shares, or (nil,
// nil) when no shift is possible (rate-kind slices present, violated
// slice already at max, or no donor headroom).
func (x *SLAXApp) remedyWeights(agent int, status *sm.SliceStatus, violated map[uint32]bool) (map[uint32]float64, error) {
	shares := make(map[uint32]float64, len(status.Slices))
	scheds := make(map[uint32]string, len(status.Slices))
	for _, s := range status.Slices {
		if s.Kind != 0 {
			return nil, nil // mixed rate-kind layouts are not adjusted
		}
		shares[s.ID] = float64(s.CapacityQ) / 1e6
		scheds[s.ID] = s.UESched
	}
	if len(shares) < 2 {
		return nil, nil // nothing to take from
	}

	// Donor headroom above the floor.
	surplus := 0.0
	for id, sh := range shares {
		if !violated[id] && sh > x.cfg.MinShare {
			surplus += sh - x.cfg.MinShare
		}
	}
	want := x.cfg.StepShare * float64(len(violated))
	grant := math.Min(want, surplus)
	if grant <= 1e-9 {
		return nil, nil // donors already squeezed to the floor
	}

	next := make(map[uint32]float64, len(shares))
	for id, sh := range shares {
		switch {
		case violated[id]:
			next[id] = sh + grant/float64(len(violated))
		case sh > x.cfg.MinShare:
			next[id] = sh - grant*(sh-x.cfg.MinShare)/surplus
		default:
			next[id] = sh
		}
	}

	cfg := ctrl.SliceConfigJSON{Algo: "nvs"}
	ids := make([]uint32, 0, len(next))
	for id := range next {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		cfg.Slices = append(cfg.Slices, ctrl.SliceParamJSON{
			ID: id, Kind: "capacity", Capacity: next[id], UESched: scheds[id],
		})
	}
	if err := x.rest.PostJSON(fmt.Sprintf("/slices?agent=%d", agent), cfg, nil); err != nil {
		return nil, err
	}
	return next, nil
}

// remedyLatency installs the BDP pacer on the worst UE of each
// latency-violated slice through the TC northbound — the same remedy
// the TC xApp applies, driven by policy instead of a watch loop.
func (x *SLAXApp) remedyLatency(agent int, evals []SliceEval, members map[uint32][]uint16) {
	for _, ev := range evals {
		if !ev.Violated || ev.LatencyMSP95 == 0 {
			continue
		}
		for _, rnti := range members[ev.SliceID] {
			if err := x.tc.PostJSON(fmt.Sprintf("/tc?agent=%d", agent), ctrl.TCCommandJSON{
				Op: "setPacer", RNTI: rnti, Pacer: "bdp", PacerTargetMS: x.cfg.PacerTargetMS,
			}, nil); err == nil {
				slaTel.tcRemedies.Inc()
			}
		}
	}
}
