package xapp

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"flexric/internal/a1"
	"flexric/internal/ctrl"
	"flexric/internal/sm"
	"flexric/internal/tsdb"
)

// fakeNorthbound stands in for the slicing + TC controllers' REST
// surface: GET /slices serves a canned sm.SliceStatus, POST /slices and
// POST /tc record what the loop sent.
type fakeNorthbound struct {
	mu     sync.Mutex
	status *sm.SliceStatus // nil => 404, exercising the statusErr path
	slices []ctrl.SliceConfigJSON
	tc     []ctrl.TCCommandJSON
	srv    *httptest.Server
}

func newFakeNorthbound(t *testing.T) *fakeNorthbound {
	t.Helper()
	f := &fakeNorthbound{}
	mux := http.NewServeMux()
	mux.HandleFunc("/slices", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		switch r.Method {
		case http.MethodGet:
			if f.status == nil {
				http.Error(w, "no slice status yet", http.StatusNotFound)
				return
			}
			_ = json.NewEncoder(w).Encode(f.status)
		case http.MethodPost:
			var body ctrl.SliceConfigJSON
			if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			f.slices = append(f.slices, body)
			w.WriteHeader(http.StatusOK)
		}
	})
	mux.HandleFunc("/tc", func(w http.ResponseWriter, r *http.Request) {
		var body ctrl.TCCommandJSON
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		f.mu.Lock()
		f.tc = append(f.tc, body)
		f.mu.Unlock()
		w.WriteHeader(http.StatusOK)
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeNorthbound) setStatus(st *sm.SliceStatus) {
	f.mu.Lock()
	f.status = st
	f.mu.Unlock()
}

func (f *fakeNorthbound) slicePosts() []ctrl.SliceConfigJSON {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]ctrl.SliceConfigJSON(nil), f.slices...)
}

func (f *fakeNorthbound) tcPosts() []ctrl.TCCommandJSON {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]ctrl.TCCommandJSON(nil), f.tc...)
}

// nvsStatus is the canonical two-slice NVS layout the tests use:
// slice 1 (0.3, UE 17) and slice 2 (0.7, UE 18).
func nvsStatus() *sm.SliceStatus {
	return &sm.SliceStatus{
		Algo: "nvs",
		Slices: []sm.SliceParams{
			{ID: 1, Kind: 0, CapacityQ: 300_000, UESched: "pf"},
			{ID: 2, Kind: 0, CapacityQ: 700_000, UESched: "pf"},
		},
		UEs: []sm.UESliceAssoc{{RNTI: 17, SliceID: 1}, {RNTI: 18, SliceID: 2}},
	}
}

// fillWindow appends n samples of value v over the trailing second so
// windowed percentile queries see them.
func fillWindow(st *tsdb.Store, agent uint32, fn uint16, ue uint16, field tsdb.Field, n int, v float64) {
	now := time.Now().UnixNano()
	for i := 0; i < n; i++ {
		ts := now - int64(n-i)*int64(50*time.Millisecond)
		st.Append(tsdb.SeriesKey{Agent: agent, Fn: fn, UE: ue, Field: field}, ts, v)
	}
}

func newSLAFixture(t *testing.T, f *fakeNorthbound, pol a1.Policy, tcBase string) (*SLAXApp, *a1.Store, *tsdb.Store) {
	t.Helper()
	store := a1.NewStore()
	if _, err := store.Create(pol); err != nil {
		t.Fatal(err)
	}
	ts := tsdb.New(tsdb.Config{Capacity: 256})
	x := NewSLAXApp(SLAConfig{
		Policies:        store,
		TSDB:            ts,
		SlicingBase:     f.srv.URL,
		TCBase:          tcBase,
		HysteresisTicks: 2,
	})
	return x, store, ts
}

func slaPolicy() a1.Policy {
	return a1.Policy{
		ID: "sla-slice1", TypeID: a1.TypeSliceSLA, Agent: 0, Priority: 10,
		WindowMS: 1000,
		Targets:  []a1.SliceTarget{{SliceID: 1, MinThroughputMbps: 45}},
	}
}

func TestSLANotAppliedPaths(t *testing.T) {
	f := newFakeNorthbound(t)
	x, store, _ := newSLAFixture(t, f, slaPolicy(), "")

	// No status at all from the agent.
	ds := x.EnforceOnce()
	if len(ds) != 1 || ds[0].Status != a1.StatusNotApplied || ds[0].Reason != "no slice status from agent" {
		t.Fatalf("decisions %+v", ds)
	}

	// Status present but not NVS.
	f.setStatus(&sm.SliceStatus{Algo: "none"})
	ds = x.EnforceOnce()
	if ds[0].Status != a1.StatusNotApplied || ds[0].Reason != "no NVS slice configuration on agent" {
		t.Fatalf("decisions %+v", ds)
	}
	st, _ := store.Get("sla-slice1")
	if st.Status != a1.StatusNotApplied {
		t.Fatalf("store status %v", st.Status)
	}
}

func TestSLAEnforcedWhenTargetsMet(t *testing.T) {
	f := newFakeNorthbound(t)
	f.setStatus(nvsStatus())
	x, store, ts := newSLAFixture(t, f, slaPolicy(), "")
	// 60 Mbps p50 on the slice-1 UE: comfortably above the 45 Mbps target.
	fillWindow(ts, 0, sm.IDMACStats, 17, tsdb.FieldThroughputBps, 6, 60e6)

	ds := x.EnforceOnce()
	if ds[0].Status != a1.StatusEnforced || ds[0].Reason != "all targets met" {
		t.Fatalf("decision %+v", ds[0])
	}
	if len(ds[0].Slices) != 1 || ds[0].Slices[0].Violated || math.Abs(ds[0].Slices[0].ThroughputMbps-60) > 1 {
		t.Fatalf("slice eval %+v", ds[0].Slices)
	}
	st, _ := store.Get("sla-slice1")
	if st.Status != a1.StatusEnforced {
		t.Fatalf("store status %v", st.Status)
	}
	if got := f.slicePosts(); len(got) != 0 {
		t.Fatalf("unexpected remedy %+v", got)
	}
}

func TestSLAInsufficientSamplesDoNotViolate(t *testing.T) {
	f := newFakeNorthbound(t)
	f.setStatus(nvsStatus())
	x, _, ts := newSLAFixture(t, f, slaPolicy(), "")
	// Throughput is below target but only 2 samples exist — under the
	// default MinWindowSamples of 3 the window is not trusted.
	fillWindow(ts, 0, sm.IDMACStats, 17, tsdb.FieldThroughputBps, 2, 10e6)

	ds := x.EnforceOnce()
	if ds[0].Status != a1.StatusEnforced {
		t.Fatalf("decision %+v", ds[0])
	}
	if ds[0].Slices[0].Violated || ds[0].Slices[0].Samples != 2 {
		t.Fatalf("slice eval %+v", ds[0].Slices[0])
	}
}

func TestSLAHysteresisRemedyAndCooldown(t *testing.T) {
	f := newFakeNorthbound(t)
	f.setStatus(nvsStatus())
	x, store, ts := newSLAFixture(t, f, slaPolicy(), "")
	// Slice 1 stuck at 20 Mbps p50, below the 45 Mbps target.
	fillWindow(ts, 0, sm.IDMACStats, 17, tsdb.FieldThroughputBps, 6, 20e6)

	// Tick 1: violation observed but held by hysteresis — no transition,
	// no remedy.
	ds := x.EnforceOnce()
	if ds[0].Status != a1.StatusNotApplied || ds[0].Remedied {
		t.Fatalf("tick1 %+v", ds[0])
	}
	if st, _ := store.Get("sla-slice1"); st.Status != a1.StatusNotApplied {
		t.Fatalf("tick1 store %v", st.Status)
	}

	// Tick 2: hysteresis satisfied — VIOLATED transition plus a weight
	// remedy shifting capacity from slice 2 to slice 1.
	ds = x.EnforceOnce()
	if ds[0].Status != a1.StatusViolated || !ds[0].Remedied {
		t.Fatalf("tick2 %+v", ds[0])
	}
	if math.Abs(ds[0].NewShares[1]-0.4) > 1e-6 || math.Abs(ds[0].NewShares[2]-0.6) > 1e-6 {
		t.Fatalf("tick2 shares %+v", ds[0].NewShares)
	}
	posts := f.slicePosts()
	if len(posts) != 1 || posts[0].Algo != "nvs" || len(posts[0].Slices) != 2 {
		t.Fatalf("remedy posts %+v", posts)
	}
	if posts[0].Slices[0].ID != 1 || math.Abs(posts[0].Slices[0].Capacity-0.4) > 1e-6 ||
		posts[0].Slices[0].Kind != "capacity" || posts[0].Slices[0].UESched != "pf" {
		t.Fatalf("remedy slice layout %+v", posts[0].Slices)
	}
	if st, _ := store.Get("sla-slice1"); st.Status != a1.StatusViolated {
		t.Fatalf("tick2 store %v", st.Status)
	}

	// Tick 3: still violated, but inside the cooldown (2×WindowMS = 2 s)
	// — status stays VIOLATED and no second remedy fires.
	ds = x.EnforceOnce()
	if ds[0].Status != a1.StatusViolated || ds[0].Remedied {
		t.Fatalf("tick3 %+v", ds[0])
	}
	if got := f.slicePosts(); len(got) != 1 {
		t.Fatalf("cooldown ignored, posts %+v", got)
	}

	// Recovery: throughput back above target — ENFORCED again and the
	// hysteresis counter resets.
	fillWindow(ts, 0, sm.IDMACStats, 17, tsdb.FieldThroughputBps, 6, 80e6)
	ds = x.EnforceOnce()
	if ds[0].Status != a1.StatusEnforced {
		t.Fatalf("recovery %+v", ds[0])
	}
	st, _ := store.Get("sla-slice1")
	if st.Status != a1.StatusEnforced || st.Transitions < 2 {
		t.Fatalf("recovery store %+v", st)
	}
}

func TestSLALatencyRemedyViaTC(t *testing.T) {
	f := newFakeNorthbound(t)
	f.setStatus(nvsStatus())
	pol := a1.Policy{
		ID: "sla-lat", TypeID: a1.TypeSliceSLA, Agent: 0,
		WindowMS: 1000,
		Targets:  []a1.SliceTarget{{SliceID: 2, MaxLatencyMS: 5}},
	}
	x, _, ts := newSLAFixture(t, f, pol, f.srv.URL)
	// Slice-2 UE sojourn p95 ~ 30 ms, way over the 5 ms budget.
	fillWindow(ts, 0, sm.IDRLCStats, 18, tsdb.FieldSojournMS, 6, 30)

	x.EnforceOnce() // held by hysteresis
	ds := x.EnforceOnce()
	if ds[0].Status != a1.StatusViolated {
		t.Fatalf("decision %+v", ds[0])
	}
	tc := f.tcPosts()
	if len(tc) != 1 || tc[0].Op != "setPacer" || tc[0].RNTI != 18 || tc[0].Pacer != "bdp" || tc[0].PacerTargetMS != 4 {
		t.Fatalf("tc posts %+v", tc)
	}
}

func TestSLARuntimeResetsOnPolicyUpdate(t *testing.T) {
	f := newFakeNorthbound(t)
	f.setStatus(nvsStatus())
	x, store, ts := newSLAFixture(t, f, slaPolicy(), "")
	fillWindow(ts, 0, sm.IDMACStats, 17, tsdb.FieldThroughputBps, 6, 20e6)

	x.EnforceOnce() // violTicks = 1
	// Updating the policy bumps its version; the hysteresis counter must
	// restart rather than carry over into the new enforcement window.
	p := slaPolicy()
	p.Targets[0].MinThroughputMbps = 50
	if _, err := store.Update("sla-slice1", p); err != nil {
		t.Fatal(err)
	}
	ds := x.EnforceOnce()
	if ds[0].Status != a1.StatusNotApplied || ds[0].Remedied {
		t.Fatalf("post-update tick should be hysteresis-held: %+v", ds[0])
	}
}

// BenchmarkSLAEnforceTick measures one enforcement tick over a fleet of
// policies against a live (local) northbound and a warm tsdb window.
func BenchmarkSLAEnforceTick(b *testing.B) {
	f := &fakeNorthbound{}
	status := nvsStatus()
	mux := http.NewServeMux()
	mux.HandleFunc("/slices", func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet {
			_ = json.NewEncoder(w).Encode(status)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	f.srv = httptest.NewServer(mux)
	defer f.srv.Close()

	store := a1.NewStore()
	const nPolicies = 8
	for i := 0; i < nPolicies; i++ {
		if _, err := store.Create(a1.Policy{
			ID: fmt.Sprintf("p%d", i), TypeID: a1.TypeSliceSLA, Agent: 0,
			WindowMS: 1000,
			Targets:  []a1.SliceTarget{{SliceID: 1, MinThroughputMbps: 45}},
		}); err != nil {
			b.Fatal(err)
		}
	}
	ts := tsdb.New(tsdb.Config{Capacity: 256})
	fillWindow(ts, 0, sm.IDMACStats, 17, tsdb.FieldThroughputBps, 16, 60e6)
	x := NewSLAXApp(SLAConfig{Policies: store, TSDB: ts, SlicingBase: f.srv.URL})

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ds := x.EnforceOnce(); len(ds) != nPolicies {
			b.Fatalf("decisions %d", len(ds))
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(nPolicies*b.N)/b.Elapsed().Seconds(), "policies/s")
}
