package xapp

import (
	"fmt"

	"flexric/internal/ctrl"
	"flexric/internal/sm"
	"flexric/internal/tsdb"
)

// SliceXApp is the slicing xApp of §6.1.2 — in the paper a plain curl
// command line against the controller's REST interface; here a thin
// typed wrapper over the same interface. It is oblivious of the RAT.
type SliceXApp struct {
	rest  *RESTClient
	agent int
}

// NewSliceXApp returns a slicing xApp against a slicing controller's
// REST base URL.
func NewSliceXApp(restBase string, agent int) *SliceXApp {
	return &SliceXApp{rest: NewRESTClient(restBase), agent: agent}
}

// Deploy installs a slice configuration.
func (x *SliceXApp) Deploy(cfg ctrl.SliceConfigJSON) error {
	return x.rest.PostJSON(fmt.Sprintf("/slices?agent=%d", x.agent), cfg, nil)
}

// Associate assigns a UE to a slice.
func (x *SliceXApp) Associate(rnti uint16, sliceID uint32) error {
	return x.rest.PostJSON(fmt.Sprintf("/assoc?agent=%d", x.agent),
		ctrl.AssocJSON{RNTI: rnti, SliceID: sliceID}, nil)
}

// Status fetches the current slice status report.
func (x *SliceXApp) Status() (*sm.SliceStatus, error) {
	var st sm.SliceStatus
	if err := x.rest.GetJSON(fmt.Sprintf("/slices?agent=%d", x.agent), &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Stats fetches the latest MAC report from the controller's internal DB.
func (x *SliceXApp) Stats() (*sm.MACReport, error) {
	var rep sm.MACReport
	if err := x.rest.GetJSON(fmt.Sprintf("/stats?agent=%d", x.agent), &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// AggStats fetches the windowed aggregate of one UE's MAC field over
// the trailing windowMS milliseconds — the stable signal slicing
// policies should decide on instead of a single latest report. field is
// a tsdb field name ("throughput_bps", "cqi", ...).
func (x *SliceXApp) AggStats(rnti uint16, field string, windowMS int64) (*tsdb.Agg, error) {
	var agg tsdb.Agg
	path := fmt.Sprintf("/stats/agg?agent=%d&ue=%d&field=%s&window_ms=%d",
		x.agent, rnti, field, windowMS)
	if err := x.rest.GetJSON(path, &agg); err != nil {
		return nil, err
	}
	return &agg, nil
}
