package xapp

import (
	"fmt"
	"sync/atomic"
	"time"

	"flexric/internal/broker"
	"flexric/internal/ctrl"
	"flexric/internal/sm"
	"flexric/internal/tsdb"
)

// TCXApp is the traffic-control xApp of §6.1.1. It subscribes to RLC
// statistics through the controller's message broker and, "once the xApp
// notices that the sojourn time of the packets belonging to the
// low-latency flow increase beyond a limit, it decides to perform three
// actions": create a second FIFO queue, install a 5-tuple filter for the
// low-latency flow, and load the 5G-BDP pacer.
//
// The decision is windowed, not snapshot-based: every report's sojourn
// sample lands in a local time-series store, and the remedy fires only
// when the p95 over the trailing window exceeds the limit with enough
// samples present — one transient spike in a single report cannot
// trigger the three-action sequence.
type TCXApp struct {
	rest   *RESTClient
	broker *broker.Client
	agent  int
	rnti   uint16
	db     *tsdb.Store

	// SojournLimitMS triggers the remedy (default 50 ms).
	SojournLimitMS int64
	// SojournWindowMS is the trailing window the decision aggregates
	// over (default 200 ms of wall time).
	SojournWindowMS int64
	// MinWindowSamples is how many reports must fall inside the window
	// before the aggregate is trusted (default 3).
	MinWindowSamples int
	// Filter is the low-latency flow's 5-tuple (DstPort+Proto is enough
	// for the VoIP flow).
	FilterDstPort uint16
	FilterProto   uint8
	// PacerTargetMS is the BDP pacer's DRB delay target (default 4 ms).
	PacerTargetMS uint32

	applied atomic.Bool
	stop    chan struct{}
	done    chan struct{}
}

// NewTCXApp builds the xApp against a TC controller's northbound (REST
// base URL + broker address).
func NewTCXApp(restBase, brokerAddr string, agent int, rnti uint16) (*TCXApp, error) {
	bc, err := broker.Dial(brokerAddr)
	if err != nil {
		return nil, err
	}
	return &TCXApp{
		rest:             NewRESTClient(restBase),
		broker:           bc,
		agent:            agent,
		rnti:             rnti,
		db:               tsdb.New(tsdb.Config{Capacity: 256}),
		SojournLimitMS:   50,
		SojournWindowMS:  200,
		MinWindowSamples: 3,
		PacerTargetMS:    4,
		stop:             make(chan struct{}),
		done:             make(chan struct{}),
	}, nil
}

// Run watches the RLC stats channel until stopped. It returns after
// Close.
func (x *TCXApp) Run() error {
	defer close(x.done)
	ch, err := x.broker.Subscribe(fmt.Sprintf("stats.rlc.%d", x.agent), 256)
	if err != nil {
		return err
	}
	for {
		select {
		case <-x.stop:
			return nil
		case msg, ok := <-ch:
			if !ok {
				return broker.ErrClosed
			}
			rep, err := sm.DecodeRLCReport(msg.Payload)
			if err != nil {
				continue
			}
			now := time.Now().UnixNano()
			k := tsdb.SeriesKey{Agent: uint32(x.agent), Fn: sm.IDRLCStats, UE: x.rnti, Field: tsdb.FieldSojournMS}
			for _, u := range rep.UEs {
				if u.RNTI != x.rnti {
					continue
				}
				x.db.Append(k, now, float64(u.SojournMS))
			}
			if agg, ok := x.SojournAgg(); ok &&
				agg.Count >= x.MinWindowSamples && agg.P95 > float64(x.SojournLimitMS) {
				if err := x.applyRemedy(); err == nil {
					return nil // remedy applied; the xApp's job is done
				}
			}
		}
	}
}

// SojournAgg returns the windowed aggregate the remedy decision reads:
// the trailing SojournWindowMS of the watched UE's sojourn series. ok
// is false while the window is still empty.
func (x *TCXApp) SojournAgg() (tsdb.Agg, bool) {
	now := time.Now().UnixNano()
	k := tsdb.SeriesKey{Agent: uint32(x.agent), Fn: sm.IDRLCStats, UE: x.rnti, Field: tsdb.FieldSojournMS}
	return x.db.Aggregate(k, now-x.SojournWindowMS*int64(time.Millisecond), now)
}

// Close stops the xApp.
func (x *TCXApp) Close() {
	select {
	case <-x.stop:
	default:
		close(x.stop)
	}
	<-x.done
	x.broker.Close()
}

// Applied reports whether the remedy has been installed.
func (x *TCXApp) Applied() bool { return x.applied.Load() }

// applyRemedy performs the three-action sequence via REST.
func (x *TCXApp) applyRemedy() error {
	if x.applied.Load() {
		return nil
	}
	path := fmt.Sprintf("/tc?agent=%d", x.agent)
	// Action 1: second FIFO queue.
	var res ctrl.TCCommandResult
	if err := x.rest.PostJSON(path, ctrl.TCCommandJSON{Op: "addQueue", RNTI: x.rnti}, &res); err != nil {
		return err
	}
	// Action 2: 5-tuple filter segregating the low-latency flow.
	if err := x.rest.PostJSON(path, ctrl.TCCommandJSON{
		Op: "addFilter", RNTI: x.rnti, Queue: res.Queue,
		DstPort: x.FilterDstPort, Proto: x.FilterProto, MatchProto: x.FilterProto != 0,
	}, nil); err != nil {
		return err
	}
	// Action 3: the 5G-BDP pacer.
	if err := x.rest.PostJSON(path, ctrl.TCCommandJSON{
		Op: "setPacer", RNTI: x.rnti, Pacer: "bdp", PacerTargetMS: x.PacerTargetMS,
	}, nil); err != nil {
		return err
	}
	x.applied.Store(true)
	return nil
}
