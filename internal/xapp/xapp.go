// Package xapp provides external-application (xApp) building blocks: a
// REST client for the controllers' northbound interfaces and ready-made
// xApp logics — the traffic-control xApp of §6.1.1 (watch sojourn times
// via the broker, apply the queue/filter/pacer remedy via REST) and the
// slicing xApp of §6.1.2.
//
// xApps talk only to controller northbounds (broker channels and HTTP),
// staying functionally isolated from the controller, as the paper's
// specializations mandate (Tables 3 and 4).
package xapp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// RESTClient wraps a controller's HTTP northbound.
type RESTClient struct {
	Base string // e.g. "http://127.0.0.1:8080"
	HTTP *http.Client
}

// NewRESTClient returns a client for the given base URL.
func NewRESTClient(base string) *RESTClient {
	return &RESTClient{Base: base, HTTP: &http.Client{Timeout: 10 * time.Second}}
}

// PostJSON sends body as JSON and decodes the response into out (unless
// out is nil or the response has no content).
func (c *RESTClient) PostJSON(path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.HTTP.Post(c.Base+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("xapp: POST %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	if out == nil || resp.StatusCode == http.StatusNoContent {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// GetJSON fetches path and decodes the JSON response into out.
func (c *RESTClient) GetJSON(path string, out any) error {
	resp, err := c.HTTP.Get(c.Base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("xapp: GET %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
