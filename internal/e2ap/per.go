package e2ap

import (
	"fmt"

	"flexric/internal/encoding/asn1per"
	"flexric/internal/trace"
)

// PERCodec encodes E2AP messages in the ASN.1-PER-style bit format.
// Envelope() performs a full decode pass (PER fields are bit-packed
// sequentially, so routing fields cannot be reached without parsing),
// which is the CPU cost the paper attributes to ASN.1 on the controller
// (Fig. 8b). Not safe for concurrent use.
type PERCodec struct {
	w asn1per.Writer
	// wa is the append-path writer: it adopts the caller's destination
	// buffer for the duration of one encodeAppend, keeping w's scratch
	// (and the Encode contract) untouched.
	wa asn1per.Writer
	r  asn1per.Reader
	// denv is the reused dispatch view handed out by envelope(); see
	// the Codec.Envelope validity contract.
	denv decodedEnvelope
}

// NewPERCodec returns a PER-style codec with preallocated scratch space.
func NewPERCodec() *PERCodec { return &PERCodec{} }

// Name implements Codec.
func (*PERCodec) Name() string { return string(SchemeASN) }

func (c *PERCodec) encode(pdu PDU) ([]byte, error) {
	c.w.Reset()
	return c.encodeInto(&c.w, pdu)
}

func (c *PERCodec) encodeAppend(dst []byte, pdu PDU) ([]byte, error) {
	c.wa.ResetAppend(dst)
	out, err := c.encodeInto(&c.wa, pdu)
	c.wa.ResetAppend(nil) // do not retain the caller's buffer
	return out, err
}

func (c *PERCodec) encodeInto(w *asn1per.Writer, pdu PDU) ([]byte, error) {
	w.WriteBits(uint64(pdu.MsgType()), 8)
	if err := c.encodeBody(w, pdu); err != nil {
		return nil, err
	}
	return w.Bytes(), nil
}

func (c *PERCodec) encodeBody(w *asn1per.Writer, pdu PDU) error {
	switch m := pdu.(type) {
	case *SetupRequest:
		w.WriteBits(uint64(m.TransactionID), 8)
		perPutNodeID(w, m.NodeID)
		w.WriteLength(len(m.RANFunctions))
		for i := range m.RANFunctions {
			perPutRANFunction(w, &m.RANFunctions[i])
		}
		w.WriteLength(len(m.Components))
		for i := range m.Components {
			perPutComponent(w, &m.Components[i])
		}
	case *SetupResponse:
		w.WriteBits(uint64(m.TransactionID), 8)
		perPutPLMN(w, m.RICID.PLMN)
		w.WriteBits(uint64(m.RICID.RICID), 20)
		perPutU16s(w, m.Accepted)
		w.WriteLength(len(m.Rejected))
		for _, rj := range m.Rejected {
			w.WriteBits(uint64(rj.ID), 16)
			perPutCause(w, rj.Cause)
		}
	case *SetupFailure:
		w.WriteBits(uint64(m.TransactionID), 8)
		perPutCause(w, m.Cause)
		w.WriteBits(uint64(m.TimeToWaitMS), 32)
	case *ResetRequest:
		w.WriteBits(uint64(m.TransactionID), 8)
		perPutCause(w, m.Cause)
	case *ResetResponse:
		w.WriteBits(uint64(m.TransactionID), 8)
	case *ErrorIndication:
		w.WriteBits(uint64(m.TransactionID), 8)
		w.WriteBool(m.HasRequestID)
		if m.HasRequestID {
			perPutReqID(w, m.RequestID)
		}
		w.WriteBits(uint64(m.RANFunctionID), 16)
		perPutCause(w, m.Cause)
	case *ServiceUpdate:
		w.WriteBits(uint64(m.TransactionID), 8)
		w.WriteLength(len(m.Added))
		for i := range m.Added {
			perPutRANFunction(w, &m.Added[i])
		}
		w.WriteLength(len(m.Modified))
		for i := range m.Modified {
			perPutRANFunction(w, &m.Modified[i])
		}
		perPutU16s(w, m.Deleted)
	case *ServiceUpdateAck:
		w.WriteBits(uint64(m.TransactionID), 8)
		perPutU16s(w, m.Accepted)
		w.WriteLength(len(m.Rejected))
		for _, rj := range m.Rejected {
			w.WriteBits(uint64(rj.ID), 16)
			perPutCause(w, rj.Cause)
		}
	case *ServiceUpdateFailure:
		w.WriteBits(uint64(m.TransactionID), 8)
		perPutCause(w, m.Cause)
		w.WriteBits(uint64(m.TimeToWaitMS), 32)
	case *ServiceQuery:
		w.WriteBits(uint64(m.TransactionID), 8)
		perPutU16s(w, m.Accepted)
	case *NodeConfigUpdate:
		w.WriteBits(uint64(m.TransactionID), 8)
		w.WriteLength(len(m.Components))
		for i := range m.Components {
			perPutComponent(w, &m.Components[i])
		}
	case *NodeConfigUpdateAck:
		w.WriteBits(uint64(m.TransactionID), 8)
		w.WriteLength(len(m.Accepted))
		for _, id := range m.Accepted {
			w.WriteString(id)
		}
	case *NodeConfigUpdateFailure:
		w.WriteBits(uint64(m.TransactionID), 8)
		perPutCause(w, m.Cause)
		w.WriteBits(uint64(m.TimeToWaitMS), 32)
	case *ConnectionUpdate:
		w.WriteBits(uint64(m.TransactionID), 8)
		perPutConnItems(w, m.Add)
		perPutConnItems(w, m.Remove)
		perPutConnItems(w, m.Modify)
	case *ConnectionUpdateAck:
		w.WriteBits(uint64(m.TransactionID), 8)
		perPutConnItems(w, m.Setup)
		w.WriteLength(len(m.Failed))
		for _, f := range m.Failed {
			w.WriteString(f.Item.TNLAddress)
			w.WriteBits(uint64(f.Item.Usage), 8)
			perPutCause(w, f.Cause)
		}
	case *ConnectionUpdateFailure:
		w.WriteBits(uint64(m.TransactionID), 8)
		perPutCause(w, m.Cause)
		w.WriteBits(uint64(m.TimeToWaitMS), 32)
	case *SubscriptionRequest:
		perPutReqID(w, m.RequestID)
		w.WriteBits(uint64(m.RANFunctionID), 16)
		w.WriteOctets(m.EventTrigger)
		w.WriteLength(len(m.Actions))
		for _, a := range m.Actions {
			w.WriteBits(uint64(a.ID), 8)
			if err := w.WriteEnum(int(a.Type), 3); err != nil {
				return err
			}
			w.WriteOctets(a.Definition)
		}
		perPutTrace(w, m.Trace)
	case *SubscriptionResponse:
		perPutReqID(w, m.RequestID)
		w.WriteBits(uint64(m.RANFunctionID), 16)
		w.WriteOctets(m.Admitted)
		w.WriteLength(len(m.NotAdmitted))
		for _, na := range m.NotAdmitted {
			w.WriteBits(uint64(na.ID), 8)
			perPutCause(w, na.Cause)
		}
	case *SubscriptionFailure:
		perPutReqID(w, m.RequestID)
		w.WriteBits(uint64(m.RANFunctionID), 16)
		perPutCause(w, m.Cause)
	case *SubscriptionDeleteRequest:
		perPutReqID(w, m.RequestID)
		w.WriteBits(uint64(m.RANFunctionID), 16)
	case *SubscriptionDeleteResponse:
		perPutReqID(w, m.RequestID)
		w.WriteBits(uint64(m.RANFunctionID), 16)
	case *SubscriptionDeleteFailure:
		perPutReqID(w, m.RequestID)
		w.WriteBits(uint64(m.RANFunctionID), 16)
		perPutCause(w, m.Cause)
	case *Indication:
		perPutReqID(w, m.RequestID)
		w.WriteBits(uint64(m.RANFunctionID), 16)
		w.WriteBits(uint64(m.ActionID), 8)
		w.WriteBits(uint64(m.SN), 32)
		if err := w.WriteEnum(int(m.Class), 2); err != nil {
			return err
		}
		w.WriteOctets(m.Header)
		w.WriteOctets(m.Payload)
		w.WriteBool(m.CallProcessID != nil)
		if m.CallProcessID != nil {
			w.WriteOctets(m.CallProcessID)
		}
		perPutTrace(w, m.Trace)
	case *ControlRequest:
		perPutReqID(w, m.RequestID)
		w.WriteBits(uint64(m.RANFunctionID), 16)
		w.WriteBool(m.CallProcessID != nil)
		if m.CallProcessID != nil {
			w.WriteOctets(m.CallProcessID)
		}
		w.WriteOctets(m.Header)
		w.WriteOctets(m.Payload)
		w.WriteBool(m.AckRequested)
		perPutTrace(w, m.Trace)
	case *ControlAck:
		perPutReqID(w, m.RequestID)
		w.WriteBits(uint64(m.RANFunctionID), 16)
		w.WriteBool(m.CallProcessID != nil)
		if m.CallProcessID != nil {
			w.WriteOctets(m.CallProcessID)
		}
		w.WriteOctets(m.Outcome)
	case *ControlFailure:
		perPutReqID(w, m.RequestID)
		w.WriteBits(uint64(m.RANFunctionID), 16)
		w.WriteBool(m.CallProcessID != nil)
		if m.CallProcessID != nil {
			w.WriteOctets(m.CallProcessID)
		}
		perPutCause(w, m.Cause)
		w.WriteOctets(m.Outcome)
	default:
		return fmt.Errorf("%w: %T", ErrUnknownType, pdu)
	}
	return nil
}

func (c *PERCodec) decode(wire []byte) (PDU, error) {
	r := &c.r
	r.Reset(wire)
	tv, err := r.ReadBits(8)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	if tv >= uint64(NumMessageTypes) {
		return nil, fmt.Errorf("%w: type %d", ErrUnknownType, tv)
	}
	pdu, err := perDecodeBody(r, MessageType(tv))
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrBadMessage, MessageType(tv), err)
	}
	return pdu, nil
}

func (c *PERCodec) envelope(wire []byte) (Envelope, error) {
	pdu, err := c.decode(wire)
	if err != nil {
		return nil, err
	}
	// Reuse the codec-owned view instead of boxing a fresh one per
	// message (see the Codec.Envelope validity contract).
	c.denv.pdu = pdu
	return &c.denv, nil
}

func perDecodeBody(r *asn1per.Reader, t MessageType) (PDU, error) {
	switch t {
	case TypeSetupRequest:
		m := &SetupRequest{}
		if err := perGetU8(r, &m.TransactionID); err != nil {
			return nil, err
		}
		var err error
		if m.NodeID, err = perGetNodeID(r); err != nil {
			return nil, err
		}
		n, err := r.ReadCount()
		if err != nil {
			return nil, err
		}
		if n > 0 {
			m.RANFunctions = make([]RANFunctionItem, n)
			for i := range m.RANFunctions {
				if err := perGetRANFunction(r, &m.RANFunctions[i]); err != nil {
					return nil, err
				}
			}
		}
		if n, err = r.ReadCount(); err != nil {
			return nil, err
		}
		if n > 0 {
			m.Components = make([]E2NodeComponentConfig, n)
			for i := range m.Components {
				if err := perGetComponent(r, &m.Components[i]); err != nil {
					return nil, err
				}
			}
		}
		return m, nil
	case TypeSetupResponse:
		m := &SetupResponse{}
		if err := perGetU8(r, &m.TransactionID); err != nil {
			return nil, err
		}
		var err error
		if m.RICID.PLMN, err = perGetPLMN(r); err != nil {
			return nil, err
		}
		v, err := r.ReadBits(20)
		if err != nil {
			return nil, err
		}
		m.RICID.RICID = uint32(v)
		if m.Accepted, err = perGetU16s(r); err != nil {
			return nil, err
		}
		n, err := r.ReadCount()
		if err != nil {
			return nil, err
		}
		if n > 0 {
			m.Rejected = make([]RejectedFunction, n)
			for i := range m.Rejected {
				id, err := r.ReadBits(16)
				if err != nil {
					return nil, err
				}
				m.Rejected[i].ID = uint16(id)
				if m.Rejected[i].Cause, err = perGetCause(r); err != nil {
					return nil, err
				}
			}
		}
		return m, nil
	case TypeSetupFailure:
		m := &SetupFailure{}
		if err := perGetFailure(r, &m.TransactionID, &m.Cause, &m.TimeToWaitMS); err != nil {
			return nil, err
		}
		return m, nil
	case TypeResetRequest:
		m := &ResetRequest{}
		if err := perGetU8(r, &m.TransactionID); err != nil {
			return nil, err
		}
		var err error
		if m.Cause, err = perGetCause(r); err != nil {
			return nil, err
		}
		return m, nil
	case TypeResetResponse:
		m := &ResetResponse{}
		if err := perGetU8(r, &m.TransactionID); err != nil {
			return nil, err
		}
		return m, nil
	case TypeErrorIndication:
		m := &ErrorIndication{}
		if err := perGetU8(r, &m.TransactionID); err != nil {
			return nil, err
		}
		has, err := r.ReadBool()
		if err != nil {
			return nil, err
		}
		m.HasRequestID = has
		if has {
			if m.RequestID, err = perGetReqID(r); err != nil {
				return nil, err
			}
		}
		rf, err := r.ReadBits(16)
		if err != nil {
			return nil, err
		}
		m.RANFunctionID = uint16(rf)
		if m.Cause, err = perGetCause(r); err != nil {
			return nil, err
		}
		return m, nil
	case TypeServiceUpdate:
		m := &ServiceUpdate{}
		if err := perGetU8(r, &m.TransactionID); err != nil {
			return nil, err
		}
		var err error
		if m.Added, err = perGetRANFunctions(r); err != nil {
			return nil, err
		}
		if m.Modified, err = perGetRANFunctions(r); err != nil {
			return nil, err
		}
		if m.Deleted, err = perGetU16s(r); err != nil {
			return nil, err
		}
		return m, nil
	case TypeServiceUpdateAck:
		m := &ServiceUpdateAck{}
		if err := perGetU8(r, &m.TransactionID); err != nil {
			return nil, err
		}
		var err error
		if m.Accepted, err = perGetU16s(r); err != nil {
			return nil, err
		}
		n, err := r.ReadCount()
		if err != nil {
			return nil, err
		}
		if n > 0 {
			m.Rejected = make([]RejectedFunction, n)
			for i := range m.Rejected {
				id, err := r.ReadBits(16)
				if err != nil {
					return nil, err
				}
				m.Rejected[i].ID = uint16(id)
				if m.Rejected[i].Cause, err = perGetCause(r); err != nil {
					return nil, err
				}
			}
		}
		return m, nil
	case TypeServiceUpdateFailure:
		m := &ServiceUpdateFailure{}
		if err := perGetFailure(r, &m.TransactionID, &m.Cause, &m.TimeToWaitMS); err != nil {
			return nil, err
		}
		return m, nil
	case TypeServiceQuery:
		m := &ServiceQuery{}
		if err := perGetU8(r, &m.TransactionID); err != nil {
			return nil, err
		}
		var err error
		if m.Accepted, err = perGetU16s(r); err != nil {
			return nil, err
		}
		return m, nil
	case TypeNodeConfigUpdate:
		m := &NodeConfigUpdate{}
		if err := perGetU8(r, &m.TransactionID); err != nil {
			return nil, err
		}
		n, err := r.ReadCount()
		if err != nil {
			return nil, err
		}
		if n > 0 {
			m.Components = make([]E2NodeComponentConfig, n)
			for i := range m.Components {
				if err := perGetComponent(r, &m.Components[i]); err != nil {
					return nil, err
				}
			}
		}
		return m, nil
	case TypeNodeConfigUpdateAck:
		m := &NodeConfigUpdateAck{}
		if err := perGetU8(r, &m.TransactionID); err != nil {
			return nil, err
		}
		n, err := r.ReadCount()
		if err != nil {
			return nil, err
		}
		if n > 0 {
			m.Accepted = make([]string, n)
			for i := range m.Accepted {
				if m.Accepted[i], err = r.ReadString(); err != nil {
					return nil, err
				}
			}
		}
		return m, nil
	case TypeNodeConfigUpdateFailure:
		m := &NodeConfigUpdateFailure{}
		if err := perGetFailure(r, &m.TransactionID, &m.Cause, &m.TimeToWaitMS); err != nil {
			return nil, err
		}
		return m, nil
	case TypeConnectionUpdate:
		m := &ConnectionUpdate{}
		if err := perGetU8(r, &m.TransactionID); err != nil {
			return nil, err
		}
		var err error
		if m.Add, err = perGetConnItems(r); err != nil {
			return nil, err
		}
		if m.Remove, err = perGetConnItems(r); err != nil {
			return nil, err
		}
		if m.Modify, err = perGetConnItems(r); err != nil {
			return nil, err
		}
		return m, nil
	case TypeConnectionUpdateAck:
		m := &ConnectionUpdateAck{}
		if err := perGetU8(r, &m.TransactionID); err != nil {
			return nil, err
		}
		var err error
		if m.Setup, err = perGetConnItems(r); err != nil {
			return nil, err
		}
		n, err := r.ReadCount()
		if err != nil {
			return nil, err
		}
		if n > 0 {
			m.Failed = make([]ConnectionFailedItem, n)
			for i := range m.Failed {
				if m.Failed[i].Item.TNLAddress, err = r.ReadString(); err != nil {
					return nil, err
				}
				u, err := r.ReadBits(8)
				if err != nil {
					return nil, err
				}
				m.Failed[i].Item.Usage = uint8(u)
				if m.Failed[i].Cause, err = perGetCause(r); err != nil {
					return nil, err
				}
			}
		}
		return m, nil
	case TypeConnectionUpdateFailure:
		m := &ConnectionUpdateFailure{}
		if err := perGetFailure(r, &m.TransactionID, &m.Cause, &m.TimeToWaitMS); err != nil {
			return nil, err
		}
		return m, nil
	case TypeSubscriptionRequest:
		m := &SubscriptionRequest{}
		var err error
		if m.RequestID, err = perGetReqID(r); err != nil {
			return nil, err
		}
		rf, err := r.ReadBits(16)
		if err != nil {
			return nil, err
		}
		m.RANFunctionID = uint16(rf)
		if m.EventTrigger, err = r.ReadOctets(); err != nil {
			return nil, err
		}
		n, err := r.ReadCount()
		if err != nil {
			return nil, err
		}
		if n > 0 {
			m.Actions = make([]Action, n)
			for i := range m.Actions {
				id, err := r.ReadBits(8)
				if err != nil {
					return nil, err
				}
				m.Actions[i].ID = uint8(id)
				at, err := r.ReadEnum(3)
				if err != nil {
					return nil, err
				}
				m.Actions[i].Type = ActionType(at)
				if m.Actions[i].Definition, err = r.ReadOctets(); err != nil {
					return nil, err
				}
			}
		}
		if m.Trace, err = perGetTrace(r); err != nil {
			return nil, err
		}
		return m, nil
	case TypeSubscriptionResponse:
		m := &SubscriptionResponse{}
		var err error
		if m.RequestID, err = perGetReqID(r); err != nil {
			return nil, err
		}
		rf, err := r.ReadBits(16)
		if err != nil {
			return nil, err
		}
		m.RANFunctionID = uint16(rf)
		adm, err := r.ReadOctets()
		if err != nil {
			return nil, err
		}
		if len(adm) > 0 {
			m.Admitted = adm
		}
		n, err := r.ReadCount()
		if err != nil {
			return nil, err
		}
		if n > 0 {
			m.NotAdmitted = make([]ActionNotAdmitted, n)
			for i := range m.NotAdmitted {
				id, err := r.ReadBits(8)
				if err != nil {
					return nil, err
				}
				m.NotAdmitted[i].ID = uint8(id)
				if m.NotAdmitted[i].Cause, err = perGetCause(r); err != nil {
					return nil, err
				}
			}
		}
		return m, nil
	case TypeSubscriptionFailure:
		m := &SubscriptionFailure{}
		var err error
		if m.RequestID, m.RANFunctionID, err = perGetFuncHdr(r); err != nil {
			return nil, err
		}
		if m.Cause, err = perGetCause(r); err != nil {
			return nil, err
		}
		return m, nil
	case TypeSubscriptionDeleteRequest:
		m := &SubscriptionDeleteRequest{}
		var err error
		if m.RequestID, m.RANFunctionID, err = perGetFuncHdr(r); err != nil {
			return nil, err
		}
		return m, nil
	case TypeSubscriptionDeleteResponse:
		m := &SubscriptionDeleteResponse{}
		var err error
		if m.RequestID, m.RANFunctionID, err = perGetFuncHdr(r); err != nil {
			return nil, err
		}
		return m, nil
	case TypeSubscriptionDeleteFailure:
		m := &SubscriptionDeleteFailure{}
		var err error
		if m.RequestID, m.RANFunctionID, err = perGetFuncHdr(r); err != nil {
			return nil, err
		}
		if m.Cause, err = perGetCause(r); err != nil {
			return nil, err
		}
		return m, nil
	case TypeIndication:
		m := &Indication{}
		var err error
		if m.RequestID, m.RANFunctionID, err = perGetFuncHdr(r); err != nil {
			return nil, err
		}
		a, err := r.ReadBits(8)
		if err != nil {
			return nil, err
		}
		m.ActionID = uint8(a)
		sn, err := r.ReadBits(32)
		if err != nil {
			return nil, err
		}
		m.SN = uint32(sn)
		cl, err := r.ReadEnum(2)
		if err != nil {
			return nil, err
		}
		m.Class = IndicationClass(cl)
		if m.Header, err = r.ReadOctets(); err != nil {
			return nil, err
		}
		if m.Payload, err = r.ReadOctets(); err != nil {
			return nil, err
		}
		has, err := r.ReadBool()
		if err != nil {
			return nil, err
		}
		if has {
			if m.CallProcessID, err = r.ReadOctets(); err != nil {
				return nil, err
			}
		}
		if m.Trace, err = perGetTrace(r); err != nil {
			return nil, err
		}
		return m, nil
	case TypeControlRequest:
		m := &ControlRequest{}
		var err error
		if m.RequestID, m.RANFunctionID, err = perGetFuncHdr(r); err != nil {
			return nil, err
		}
		has, err := r.ReadBool()
		if err != nil {
			return nil, err
		}
		if has {
			if m.CallProcessID, err = r.ReadOctets(); err != nil {
				return nil, err
			}
		}
		if m.Header, err = r.ReadOctets(); err != nil {
			return nil, err
		}
		if m.Payload, err = r.ReadOctets(); err != nil {
			return nil, err
		}
		if m.AckRequested, err = r.ReadBool(); err != nil {
			return nil, err
		}
		if m.Trace, err = perGetTrace(r); err != nil {
			return nil, err
		}
		return m, nil
	case TypeControlAck:
		m := &ControlAck{}
		var err error
		if m.RequestID, m.RANFunctionID, err = perGetFuncHdr(r); err != nil {
			return nil, err
		}
		has, err := r.ReadBool()
		if err != nil {
			return nil, err
		}
		if has {
			if m.CallProcessID, err = r.ReadOctets(); err != nil {
				return nil, err
			}
		}
		if m.Outcome, err = r.ReadOctets(); err != nil {
			return nil, err
		}
		return m, nil
	case TypeControlFailure:
		m := &ControlFailure{}
		var err error
		if m.RequestID, m.RANFunctionID, err = perGetFuncHdr(r); err != nil {
			return nil, err
		}
		has, err := r.ReadBool()
		if err != nil {
			return nil, err
		}
		if has {
			if m.CallProcessID, err = r.ReadOctets(); err != nil {
				return nil, err
			}
		}
		if m.Cause, err = perGetCause(r); err != nil {
			return nil, err
		}
		if m.Outcome, err = r.ReadOctets(); err != nil {
			return nil, err
		}
		return m, nil
	default:
		return nil, ErrUnknownType
	}
}

// --- shared field helpers ---

func perPutReqID(w *asn1per.Writer, id RequestID) {
	w.WriteBits(uint64(id.Requestor), 16)
	w.WriteBits(uint64(id.Instance), 16)
}

func perGetReqID(r *asn1per.Reader) (RequestID, error) {
	rq, err := r.ReadBits(16)
	if err != nil {
		return RequestID{}, err
	}
	in, err := r.ReadBits(16)
	if err != nil {
		return RequestID{}, err
	}
	return RequestID{Requestor: uint16(rq), Instance: uint16(in)}, nil
}

func perGetFuncHdr(r *asn1per.Reader) (RequestID, uint16, error) {
	id, err := perGetReqID(r)
	if err != nil {
		return RequestID{}, 0, err
	}
	rf, err := r.ReadBits(16)
	if err != nil {
		return RequestID{}, 0, err
	}
	return id, uint16(rf), nil
}

func perPutCause(w *asn1per.Writer, c Cause) {
	_ = w.WriteEnum(int(c.Type), 5)
	w.WriteBits(uint64(c.Value), 8)
}

func perGetCause(r *asn1per.Reader) (Cause, error) {
	t, err := r.ReadEnum(5)
	if err != nil {
		return Cause{}, err
	}
	v, err := r.ReadBits(8)
	if err != nil {
		return Cause{}, err
	}
	return Cause{Type: CauseType(t), Value: uint8(v)}, nil
}

func perPutPLMN(w *asn1per.Writer, p PLMN) {
	_ = w.WriteConstrainedInt(int64(p.MCC), 0, 999)
	_ = w.WriteConstrainedInt(int64(p.MNC), 0, 999)
}

func perGetPLMN(r *asn1per.Reader) (PLMN, error) {
	mcc, err := r.ReadConstrainedInt(0, 999)
	if err != nil {
		return PLMN{}, err
	}
	mnc, err := r.ReadConstrainedInt(0, 999)
	if err != nil {
		return PLMN{}, err
	}
	return PLMN{MCC: uint16(mcc), MNC: uint16(mnc)}, nil
}

func perPutNodeID(w *asn1per.Writer, n GlobalE2NodeID) {
	perPutPLMN(w, n.PLMN)
	_ = w.WriteEnum(int(n.Type), 6)
	w.WriteUint(n.NodeID)
}

func perGetNodeID(r *asn1per.Reader) (GlobalE2NodeID, error) {
	p, err := perGetPLMN(r)
	if err != nil {
		return GlobalE2NodeID{}, err
	}
	t, err := r.ReadEnum(6)
	if err != nil {
		return GlobalE2NodeID{}, err
	}
	id, err := r.ReadUint()
	if err != nil {
		return GlobalE2NodeID{}, err
	}
	return GlobalE2NodeID{PLMN: p, Type: NodeType(t), NodeID: id}, nil
}

func perPutRANFunction(w *asn1per.Writer, f *RANFunctionItem) {
	w.WriteBits(uint64(f.ID), 16)
	w.WriteBits(uint64(f.Revision), 16)
	w.WriteString(f.OID)
	w.WriteOctets(f.Definition)
}

func perGetRANFunction(r *asn1per.Reader, f *RANFunctionItem) error {
	id, err := r.ReadBits(16)
	if err != nil {
		return err
	}
	f.ID = uint16(id)
	rev, err := r.ReadBits(16)
	if err != nil {
		return err
	}
	f.Revision = uint16(rev)
	if f.OID, err = r.ReadString(); err != nil {
		return err
	}
	f.Definition, err = r.ReadOctets()
	return err
}

func perGetRANFunctions(r *asn1per.Reader) ([]RANFunctionItem, error) {
	n, err := r.ReadCount()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]RANFunctionItem, n)
	for i := range out {
		if err := perGetRANFunction(r, &out[i]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func perPutComponent(w *asn1per.Writer, c *E2NodeComponentConfig) {
	w.WriteBits(uint64(c.InterfaceType), 8)
	w.WriteString(c.ComponentID)
	w.WriteOctets(c.Request)
	w.WriteOctets(c.Response)
}

func perGetComponent(r *asn1per.Reader, c *E2NodeComponentConfig) error {
	it, err := r.ReadBits(8)
	if err != nil {
		return err
	}
	c.InterfaceType = uint8(it)
	if c.ComponentID, err = r.ReadString(); err != nil {
		return err
	}
	if c.Request, err = r.ReadOctets(); err != nil {
		return err
	}
	c.Response, err = r.ReadOctets()
	return err
}

func perPutConnItems(w *asn1per.Writer, items []ConnectionItem) {
	w.WriteLength(len(items))
	for _, it := range items {
		w.WriteString(it.TNLAddress)
		w.WriteBits(uint64(it.Usage), 8)
	}
}

func perGetConnItems(r *asn1per.Reader) ([]ConnectionItem, error) {
	n, err := r.ReadCount()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]ConnectionItem, n)
	for i := range out {
		if out[i].TNLAddress, err = r.ReadString(); err != nil {
			return nil, err
		}
		u, err := r.ReadBits(8)
		if err != nil {
			return nil, err
		}
		out[i].Usage = uint8(u)
	}
	return out, nil
}

func perPutU16s(w *asn1per.Writer, vals []uint16) {
	w.WriteLength(len(vals))
	for _, v := range vals {
		w.WriteBits(uint64(v), 16)
	}
}

func perGetU16s(r *asn1per.Reader) ([]uint16, error) {
	n, err := r.ReadCount()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]uint16, n)
	for i := range out {
		v, err := r.ReadBits(16)
		if err != nil {
			return nil, err
		}
		out[i] = uint16(v)
	}
	return out, nil
}

func perGetU8(r *asn1per.Reader, dst *uint8) error {
	v, err := r.ReadBits(8)
	if err != nil {
		return err
	}
	*dst = uint8(v)
	return nil
}

// perPutTrace appends the optional trace context: a presence bit, then
// TraceID and SpanID as two 64-bit fields. It trails the message body so
// untraced messages cost exactly one bit.
func perPutTrace(w *asn1per.Writer, tc trace.Context) {
	w.WriteBool(tc.Valid())
	if tc.Valid() {
		w.WriteBits(tc.TraceID, 64)
		w.WriteBits(tc.SpanID, 64)
	}
}

func perGetTrace(r *asn1per.Reader) (trace.Context, error) {
	has, err := r.ReadBool()
	if err != nil || !has {
		return trace.Context{}, err
	}
	var tc trace.Context
	if tc.TraceID, err = r.ReadBits(64); err != nil {
		return trace.Context{}, err
	}
	if tc.SpanID, err = r.ReadBits(64); err != nil {
		return trace.Context{}, err
	}
	return tc, nil
}

func perGetFailure(r *asn1per.Reader, tid *uint8, cause *Cause, ttw *uint32) error {
	if err := perGetU8(r, tid); err != nil {
		return err
	}
	c, err := perGetCause(r)
	if err != nil {
		return err
	}
	*cause = c
	v, err := r.ReadBits(32)
	if err != nil {
		return err
	}
	*ttw = uint32(v)
	return nil
}
