package e2ap

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// samplePDUs returns one fully-populated instance of every E2AP message.
func samplePDUs() []PDU {
	cause := Cause{Type: CauseRICService, Value: 7}
	plmn := PLMN{MCC: 208, MNC: 95}
	fns := []RANFunctionItem{
		{ID: 2, Revision: 1, OID: "1.3.6.1.4.1.1.2.2", Definition: []byte{1, 2, 3}},
		{ID: 142, Revision: 3, OID: "1.3.6.1.4.1.1.2.142", Definition: []byte{9}},
	}
	comps := []E2NodeComponentConfig{
		{InterfaceType: 4, ComponentID: "f1-du-0", Request: []byte{0xA}, Response: []byte{0xB, 0xC}},
	}
	conns := []ConnectionItem{{TNLAddress: "10.0.0.1:36421", Usage: 2}}
	return []PDU{
		&SetupRequest{TransactionID: 1, NodeID: GlobalE2NodeID{PLMN: plmn, Type: NodeDU, NodeID: 3584}, RANFunctions: fns, Components: comps},
		&SetupResponse{TransactionID: 1, RICID: GlobalRICID{PLMN: plmn, RICID: 0xABCDE}, Accepted: []uint16{2, 142}, Rejected: []RejectedFunction{{ID: 9, Cause: cause}}},
		&SetupFailure{TransactionID: 1, Cause: cause, TimeToWaitMS: 5000},
		&ResetRequest{TransactionID: 2, Cause: cause},
		&ResetResponse{TransactionID: 2},
		&ErrorIndication{TransactionID: 3, HasRequestID: true, RequestID: RequestID{10, 20}, RANFunctionID: 2, Cause: cause},
		&ServiceUpdate{TransactionID: 4, Added: fns[:1], Modified: fns[1:], Deleted: []uint16{77}},
		&ServiceUpdateAck{TransactionID: 4, Accepted: []uint16{2}, Rejected: []RejectedFunction{{ID: 3, Cause: cause}}},
		&ServiceUpdateFailure{TransactionID: 4, Cause: cause, TimeToWaitMS: 100},
		&ServiceQuery{TransactionID: 5, Accepted: []uint16{2, 142}},
		&NodeConfigUpdate{TransactionID: 6, Components: comps},
		&NodeConfigUpdateAck{TransactionID: 6, Accepted: []string{"f1-du-0"}},
		&NodeConfigUpdateFailure{TransactionID: 6, Cause: cause, TimeToWaitMS: 10},
		&ConnectionUpdate{TransactionID: 7, Add: conns, Remove: nil, Modify: conns},
		&ConnectionUpdateAck{TransactionID: 7, Setup: conns, Failed: []ConnectionFailedItem{{Item: conns[0], Cause: cause}}},
		&ConnectionUpdateFailure{TransactionID: 7, Cause: cause, TimeToWaitMS: 42},
		&SubscriptionRequest{RequestID: RequestID{1, 2}, RANFunctionID: 2, EventTrigger: []byte{1, 0, 0}, Actions: []Action{{ID: 1, Type: ActionReport, Definition: []byte{5, 5}}, {ID: 2, Type: ActionPolicy}}},
		&SubscriptionResponse{RequestID: RequestID{1, 2}, RANFunctionID: 2, Admitted: []uint8{1}, NotAdmitted: []ActionNotAdmitted{{ID: 2, Cause: cause}}},
		&SubscriptionFailure{RequestID: RequestID{1, 2}, RANFunctionID: 2, Cause: cause},
		&SubscriptionDeleteRequest{RequestID: RequestID{1, 2}, RANFunctionID: 2},
		&SubscriptionDeleteResponse{RequestID: RequestID{1, 2}, RANFunctionID: 2},
		&SubscriptionDeleteFailure{RequestID: RequestID{1, 2}, RANFunctionID: 2, Cause: cause},
		&Indication{RequestID: RequestID{1, 2}, RANFunctionID: 2, ActionID: 1, SN: 99, Class: IndicationReport, Header: []byte{0x1, 2}, Payload: bytes.Repeat([]byte{0x42}, 100), CallProcessID: []byte{7}},
		&ControlRequest{RequestID: RequestID{3, 4}, RANFunctionID: 142, CallProcessID: []byte{8}, Header: []byte{1}, Payload: []byte{2, 3}, AckRequested: true},
		&ControlAck{RequestID: RequestID{3, 4}, RANFunctionID: 142, CallProcessID: []byte{8}, Outcome: []byte{0}},
		&ControlFailure{RequestID: RequestID{3, 4}, RANFunctionID: 142, Cause: cause, Outcome: []byte{1}},
	}
}

func codecs(t testing.TB) []Codec {
	t.Helper()
	return []Codec{NewPERCodec(), NewFlatCodec()}
}

func TestAllMessagesCovered(t *testing.T) {
	pdus := samplePDUs()
	if len(pdus) != NumMessageTypes {
		t.Fatalf("sample set has %d messages, want %d", len(pdus), NumMessageTypes)
	}
	seen := make(map[MessageType]bool)
	for _, p := range pdus {
		if seen[p.MsgType()] {
			t.Fatalf("duplicate sample for %s", p.MsgType())
		}
		seen[p.MsgType()] = true
	}
}

func TestRoundTripAllMessagesBothCodecs(t *testing.T) {
	for _, c := range codecs(t) {
		for _, pdu := range samplePDUs() {
			wire, err := c.Encode(pdu)
			if err != nil {
				t.Fatalf("%s encode %s: %v", c.Name(), pdu.MsgType(), err)
			}
			// Copy: codecs may reuse their scratch buffer.
			wire = append([]byte(nil), wire...)
			got, err := c.Decode(wire)
			if err != nil {
				t.Fatalf("%s decode %s: %v", c.Name(), pdu.MsgType(), err)
			}
			if !reflect.DeepEqual(got, pdu) {
				t.Errorf("%s round-trip %s:\n got %+v\nwant %+v", c.Name(), pdu.MsgType(), got, pdu)
			}
		}
	}
}

func TestCrossCodecIndependence(t *testing.T) {
	// A message encoded with one codec must not decode as valid with
	// crossed expectations silently producing the same struct. (They may
	// error or produce different content; they must never be trusted.)
	per, fb := NewPERCodec(), NewFlatCodec()
	pdu := &SubscriptionRequest{RequestID: RequestID{1, 2}, RANFunctionID: 3, EventTrigger: []byte{1}}
	pw, err := per.Encode(pdu)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := fb.Decode(append([]byte(nil), pw...)); err == nil {
		if reflect.DeepEqual(got, pdu) {
			t.Fatal("flat codec decoded PER bytes as the identical message")
		}
	}
}

func TestEnvelopeRouting(t *testing.T) {
	for _, c := range codecs(t) {
		ind := &Indication{
			RequestID:     RequestID{Requestor: 42, Instance: 7},
			RANFunctionID: 142,
			ActionID:      3,
			SN:            1000,
			Header:        []byte{1, 2},
			Payload:       []byte{3, 4, 5},
		}
		wire, err := c.Encode(ind)
		if err != nil {
			t.Fatal(err)
		}
		wire = append([]byte(nil), wire...)
		env, err := c.Envelope(wire)
		if err != nil {
			t.Fatalf("%s envelope: %v", c.Name(), err)
		}
		if env.Type() != TypeIndication {
			t.Fatalf("%s type: %s", c.Name(), env.Type())
		}
		if env.RequestID() != ind.RequestID {
			t.Fatalf("%s reqid: %v", c.Name(), env.RequestID())
		}
		if env.RANFunctionID() != 142 {
			t.Fatalf("%s ranfunc: %d", c.Name(), env.RANFunctionID())
		}
		if !bytes.Equal(env.IndicationPayload(), ind.Payload) {
			t.Fatalf("%s payload: %v", c.Name(), env.IndicationPayload())
		}
		if !bytes.Equal(env.IndicationHeader(), ind.Header) {
			t.Fatalf("%s header: %v", c.Name(), env.IndicationHeader())
		}
		pdu, err := env.PDU()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(pdu, ind) {
			t.Fatalf("%s PDU: %+v", c.Name(), pdu)
		}
	}
}

func TestEnvelopeNonFunctional(t *testing.T) {
	for _, c := range codecs(t) {
		wire, err := c.Encode(&ResetResponse{TransactionID: 9})
		if err != nil {
			t.Fatal(err)
		}
		env, err := c.Envelope(append([]byte(nil), wire...))
		if err != nil {
			t.Fatal(err)
		}
		if env.RequestID() != (RequestID{}) || env.RANFunctionID() != 0 {
			t.Fatalf("%s: global procedure must report zero routing fields", c.Name())
		}
		if env.IndicationPayload() != nil {
			t.Fatalf("%s: non-indication must have nil payload", c.Name())
		}
	}
}

func TestFlatEnvelopeZeroCopyPayload(t *testing.T) {
	c := NewFlatCodec()
	ind := &Indication{RequestID: RequestID{1, 1}, RANFunctionID: 1, Payload: []byte{10, 20, 30}}
	wire, err := c.Encode(ind)
	if err != nil {
		t.Fatal(err)
	}
	wire = append([]byte(nil), wire...)
	env, _ := c.Envelope(wire)
	p := env.IndicationPayload()
	// Mutating the wire must be visible through the payload view: proof
	// that no copy happened.
	p0 := &p[0]
	env2, _ := c.Envelope(wire)
	if &env2.IndicationPayload()[0] != p0 {
		t.Fatal("flat envelope payload must alias the wire buffer")
	}
}

func TestWireSizeComparison(t *testing.T) {
	// The paper: FB messages carry 30-40 B extra vs ASN.1 (Fig. 7b).
	per, fb := NewPERCodec(), NewFlatCodec()
	ind := &Indication{RequestID: RequestID{1, 2}, RANFunctionID: 3, Payload: bytes.Repeat([]byte{1}, 100)}
	pw, err := per.Encode(ind)
	if err != nil {
		t.Fatal(err)
	}
	perLen := len(pw)
	fw, err := fb.Encode(ind)
	if err != nil {
		t.Fatal(err)
	}
	fbLen := len(fw)
	if fbLen <= perLen {
		t.Fatalf("flat (%d B) should be larger than PER (%d B)", fbLen, perLen)
	}
	over := fbLen - perLen
	if over < 10 || over > 80 {
		t.Fatalf("flat overhead %d B, expected tens of bytes", over)
	}
}

func TestDecodeErrors(t *testing.T) {
	for _, c := range codecs(t) {
		if _, err := c.Decode(nil); err == nil {
			t.Fatalf("%s: empty input must fail", c.Name())
		}
		if _, err := c.Envelope([]byte{0xFF}); err == nil {
			t.Fatalf("%s: garbage envelope must fail", c.Name())
		}
	}
	// PER: valid type byte, truncated body.
	if _, err := NewPERCodec().Decode([]byte{byte(TypeSubscriptionRequest)}); err == nil {
		t.Fatal("PER truncated body must fail")
	}
	// Unknown message type.
	if _, err := NewPERCodec().Decode([]byte{200, 0, 0}); err == nil {
		t.Fatal("PER unknown type must fail")
	}
}

func TestUnknownPDUType(t *testing.T) {
	for _, c := range codecs(t) {
		if _, err := c.Encode(fakePDU{}); err == nil {
			t.Fatalf("%s: encoding unknown PDU type must fail", c.Name())
		}
	}
}

// fakePDU claims a valid message type but is not a known struct; codecs
// must reject it rather than mis-serialize.
type fakePDU struct{}

func (fakePDU) MsgType() MessageType { return TypeIndication }

func randomIndication(rng *rand.Rand) *Indication {
	n := rng.Intn(200)
	payload := make([]byte, n)
	rng.Read(payload)
	var pl []byte
	if n > 0 {
		pl = payload
	}
	hdr := make([]byte, 1+rng.Intn(16))
	rng.Read(hdr)
	ind := &Indication{
		RequestID:     RequestID{Requestor: uint16(rng.Uint32()), Instance: uint16(rng.Uint32())},
		RANFunctionID: uint16(rng.Uint32()),
		ActionID:      uint8(rng.Uint32()),
		SN:            rng.Uint32(),
		Class:         IndicationClass(rng.Intn(2)),
		Header:        hdr,
		Payload:       pl,
	}
	if rng.Intn(2) == 0 {
		cp := make([]byte, 1+rng.Intn(8))
		rng.Read(cp)
		ind.CallProcessID = cp
	}
	return ind
}

func TestQuickIndicationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, c := range codecs(t) {
		for i := 0; i < 500; i++ {
			ind := randomIndication(rng)
			wire, err := c.Encode(ind)
			if err != nil {
				t.Fatalf("%s: %v", c.Name(), err)
			}
			got, err := c.Decode(append([]byte(nil), wire...))
			if err != nil {
				t.Fatalf("%s: %v", c.Name(), err)
			}
			if !reflect.DeepEqual(got, ind) {
				t.Fatalf("%s iter %d:\n got %+v\nwant %+v", c.Name(), i, got, ind)
			}
		}
	}
}

func TestQuickDecodersNeverPanic(t *testing.T) {
	f := func(b []byte) bool {
		for _, c := range []Codec{NewPERCodec(), NewFlatCodec()} {
			if pdu, err := c.Decode(b); err == nil && pdu == nil {
				return false
			}
			if env, err := c.Envelope(b); err == nil {
				_ = env.RequestID()
				_ = env.RANFunctionID()
				_ = env.IndicationPayload()
				_, _ = env.PDU()
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Fatal(err)
	}
}

func TestMessageTypeStrings(t *testing.T) {
	if TypeIndication.String() != "Indication" {
		t.Fatal(TypeIndication.String())
	}
	if MessageType(250).String() == "" {
		t.Fatal("out-of-range type must still format")
	}
	if NodeDU.String() != "DU" || NodeType(99).String() == "" {
		t.Fatal("node type strings")
	}
}

func BenchmarkEncodeIndicationPER(b *testing.B) {
	benchEncodeIndication(b, NewPERCodec())
}

func BenchmarkEncodeIndicationFlat(b *testing.B) {
	benchEncodeIndication(b, NewFlatCodec())
}

func benchEncodeIndication(b *testing.B, c Codec) {
	ind := &Indication{
		RequestID:     RequestID{1, 2},
		RANFunctionID: 142,
		SN:            1,
		Payload:       bytes.Repeat([]byte{0x2A}, 1500),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(ind); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnvelopePER(b *testing.B) { benchEnvelope(b, NewPERCodec()) }

func BenchmarkEnvelopeFlat(b *testing.B) { benchEnvelope(b, NewFlatCodec()) }

// benchEnvelope measures the dispatch-path cost difference that drives
// Fig. 8b: PER must decode, flat reads slots in place.
func benchEnvelope(b *testing.B, c Codec) {
	ind := &Indication{
		RequestID:     RequestID{1, 2},
		RANFunctionID: 142,
		SN:            1,
		Payload:       bytes.Repeat([]byte{0x2A}, 1500),
	}
	wire, err := c.Encode(ind)
	if err != nil {
		b.Fatal(err)
	}
	wire = append([]byte(nil), wire...)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env, err := c.Envelope(wire)
		if err != nil {
			b.Fatal(err)
		}
		if env.RANFunctionID() != 142 {
			b.Fatal("bad routing")
		}
	}
}
