package e2ap

import (
	"errors"
	"fmt"

	"flexric/internal/trace"
)

// Codec errors.
var (
	// ErrUnknownType reports a message type the codec cannot handle.
	ErrUnknownType = errors.New("e2ap: unknown message type")
	// ErrBadMessage reports a structurally invalid wire message.
	ErrBadMessage = errors.New("e2ap: malformed message")
)

// Codec translates between the E2AP intermediate representation and a wire
// format. Implementations are NOT safe for concurrent use — each
// connection owns its codec instances, which lets them reuse scratch
// buffers without locking (the encode path of a 1 ms-period indication
// stream must not allocate per message).
type Codec interface {
	// Name identifies the encoding scheme ("asn" or "fb").
	Name() string
	// Encode serializes pdu. The returned slice is valid until the next
	// Encode call on this codec.
	Encode(pdu PDU) ([]byte, error)
	// EncodeAppend serializes pdu and appends the wire bytes to dst
	// (which may be nil), returning the extended slice. Unlike Encode,
	// the codec retains nothing: the caller owns the result, which
	// makes this the allocation-free building block of the indication
	// fast path when dst comes from internal/bufpool. On error dst's
	// contents are unspecified and the caller should discard it.
	EncodeAppend(dst []byte, pdu PDU) ([]byte, error)
	// Decode fully materializes a PDU from wire bytes.
	Decode(wire []byte) (PDU, error)
	// Envelope extracts the routing information (type, request ID, RAN
	// function ID) needed to dispatch a message. For zero-copy formats
	// this is O(1) and defers everything else; for formats with an
	// explicit decode pass it is equivalent to Decode. This asymmetry is
	// the controller-scalability effect measured in Fig. 8b. The
	// returned Envelope is a reused view: it (and any PDU or payload
	// slice obtained through it that aliases wire) is valid only until
	// the next Envelope call on this codec — receive loops dispatch one
	// message fully before reading the next, which is what lets them
	// recycle frame buffers.
	Envelope(wire []byte) (Envelope, error)
}

// Envelope is a cheaply-obtained view of a wire message, sufficient for
// dispatch. PDU() materializes the full message on demand.
type Envelope interface {
	// Type identifies the E2AP procedure.
	Type() MessageType
	// RequestID returns the RIC request ID for functional procedures
	// (zero for global procedures).
	RequestID() RequestID
	// RANFunctionID returns the addressed RAN function for functional
	// procedures (zero otherwise).
	RANFunctionID() uint16
	// PDU fully decodes the message. Implementations may cache.
	PDU() (PDU, error)
	// IndicationPayload returns the SM-encoded indication message for
	// TypeIndication envelopes without materializing the PDU; nil
	// otherwise. The slice may alias the wire buffer.
	IndicationPayload() []byte
	// IndicationHeader is the header analogue of IndicationPayload.
	IndicationHeader() []byte
	// Trace returns the distributed-tracing context carried by the
	// message (zero when the message was not sampled or the procedure
	// does not carry one). Like RequestID it must not require a full
	// decode on zero-copy formats.
	Trace() trace.Context
}

// TraceOf extracts the trace context stamped into a PDU at creation;
// zero for procedures that do not carry one.
func TraceOf(pdu PDU) trace.Context {
	switch m := pdu.(type) {
	case *SubscriptionRequest:
		return m.Trace
	case *Indication:
		return m.Trace
	case *ControlRequest:
		return m.Trace
	default:
		return trace.Context{}
	}
}

// decodedEnvelope wraps an already-materialized PDU (used by codecs with
// an explicit decode pass, where Envelope == Decode).
type decodedEnvelope struct {
	pdu PDU
}

func (d decodedEnvelope) Type() MessageType { return d.pdu.MsgType() }

func (d decodedEnvelope) RequestID() RequestID {
	switch m := d.pdu.(type) {
	case *SubscriptionRequest:
		return m.RequestID
	case *SubscriptionResponse:
		return m.RequestID
	case *SubscriptionFailure:
		return m.RequestID
	case *SubscriptionDeleteRequest:
		return m.RequestID
	case *SubscriptionDeleteResponse:
		return m.RequestID
	case *SubscriptionDeleteFailure:
		return m.RequestID
	case *Indication:
		return m.RequestID
	case *ControlRequest:
		return m.RequestID
	case *ControlAck:
		return m.RequestID
	case *ControlFailure:
		return m.RequestID
	case *ErrorIndication:
		return m.RequestID
	default:
		return RequestID{}
	}
}

func (d decodedEnvelope) RANFunctionID() uint16 {
	switch m := d.pdu.(type) {
	case *SubscriptionRequest:
		return m.RANFunctionID
	case *SubscriptionResponse:
		return m.RANFunctionID
	case *SubscriptionFailure:
		return m.RANFunctionID
	case *SubscriptionDeleteRequest:
		return m.RANFunctionID
	case *SubscriptionDeleteResponse:
		return m.RANFunctionID
	case *SubscriptionDeleteFailure:
		return m.RANFunctionID
	case *Indication:
		return m.RANFunctionID
	case *ControlRequest:
		return m.RANFunctionID
	case *ControlAck:
		return m.RANFunctionID
	case *ControlFailure:
		return m.RANFunctionID
	case *ErrorIndication:
		return m.RANFunctionID
	default:
		return 0
	}
}

func (d decodedEnvelope) PDU() (PDU, error) { return d.pdu, nil }

func (d decodedEnvelope) IndicationPayload() []byte {
	if m, ok := d.pdu.(*Indication); ok {
		return m.Payload
	}
	return nil
}

func (d decodedEnvelope) IndicationHeader() []byte {
	if m, ok := d.pdu.(*Indication); ok {
		return m.Header
	}
	return nil
}

func (d decodedEnvelope) Trace() trace.Context { return TraceOf(d.pdu) }

// Scheme names the two encoding schemes the SDK ships.
type Scheme string

// Shipped encoding schemes.
const (
	SchemeASN Scheme = "asn" // ASN.1-PER-style
	SchemeFB  Scheme = "fb"  // FlatBuffers-style
)

// NewCodec returns a fresh codec instance for the scheme. Each connection
// (or goroutine) must use its own instance.
func NewCodec(s Scheme) (Codec, error) {
	switch s {
	case SchemeASN:
		return NewPERCodec(), nil
	case SchemeFB:
		return NewFlatCodec(), nil
	default:
		return nil, fmt.Errorf("e2ap: unknown scheme %q", s)
	}
}

// MustCodec is NewCodec that panics on error, for tests and examples.
func MustCodec(s Scheme) Codec {
	c, err := NewCodec(s)
	if err != nil {
		panic(err)
	}
	return c
}
