package e2ap

import (
	"testing"

	"flexric/internal/trace"
)

// The trace context must survive the wire in both schemes, be readable
// from the cheap Envelope view, and cost nothing when absent.
func TestTraceRoundTrip(t *testing.T) {
	tc := trace.Context{TraceID: 0xDEADBEEFCAFE0001, SpanID: 0x1234567890ABCDEF}
	msgs := []PDU{
		&SubscriptionRequest{
			RequestID:     RequestID{Requestor: 7, Instance: 9},
			RANFunctionID: 2,
			EventTrigger:  []byte{1, 2},
			Actions:       []Action{{ID: 1, Type: ActionReport, Definition: []byte{3}}},
			Trace:         tc,
		},
		&Indication{
			RequestID:     RequestID{Requestor: 7, Instance: 9},
			RANFunctionID: 2,
			ActionID:      1,
			SN:            42,
			Header:        []byte{4, 5},
			Payload:       []byte{6, 7, 8},
			Trace:         tc,
		},
		&ControlRequest{
			RequestID:     RequestID{Requestor: 7, Instance: 9},
			RANFunctionID: 2,
			Header:        []byte{9},
			Payload:       []byte{10, 11},
			AckRequested:  true,
			Trace:         tc,
		},
	}
	for _, scheme := range []Scheme{SchemeASN, SchemeFB} {
		c := MustCodec(scheme)
		for _, pdu := range msgs {
			wire, err := c.Encode(pdu)
			if err != nil {
				t.Fatalf("%s/%s: encode: %v", scheme, pdu.MsgType(), err)
			}
			wire = append([]byte(nil), wire...) // codec reuses its buffer

			dec, err := c.Decode(wire)
			if err != nil {
				t.Fatalf("%s/%s: decode: %v", scheme, pdu.MsgType(), err)
			}
			if got := TraceOf(dec); got != tc {
				t.Errorf("%s/%s: Decode trace = %+v, want %+v", scheme, pdu.MsgType(), got, tc)
			}

			env, err := c.Envelope(wire)
			if err != nil {
				t.Fatalf("%s/%s: envelope: %v", scheme, pdu.MsgType(), err)
			}
			if got := env.Trace(); got != tc {
				t.Errorf("%s/%s: Envelope trace = %+v, want %+v", scheme, pdu.MsgType(), got, tc)
			}
		}
	}
}

// Untraced messages must round-trip with a zero context, not a garbage
// one, and non-traced procedures must report zero from the envelope.
func TestTraceAbsent(t *testing.T) {
	for _, scheme := range []Scheme{SchemeASN, SchemeFB} {
		c := MustCodec(scheme)
		ind := &Indication{RequestID: RequestID{Requestor: 1}, RANFunctionID: 3, Payload: []byte{1}}
		wire, err := c.Encode(ind)
		if err != nil {
			t.Fatal(err)
		}
		wire = append([]byte(nil), wire...)
		dec, err := c.Decode(wire)
		if err != nil {
			t.Fatal(err)
		}
		if got := TraceOf(dec); got.Valid() {
			t.Errorf("%s: untraced indication decoded with trace %+v", scheme, got)
		}
		env, err := c.Envelope(wire)
		if err != nil {
			t.Fatal(err)
		}
		if env.Trace().Valid() {
			t.Errorf("%s: untraced envelope reports trace %+v", scheme, env.Trace())
		}

		wire2, err := c.Encode(&SetupResponse{TransactionID: 1})
		if err != nil {
			t.Fatal(err)
		}
		wire2 = append([]byte(nil), wire2...)
		env2, err := c.Envelope(wire2)
		if err != nil {
			t.Fatal(err)
		}
		if env2.Trace().Valid() {
			t.Errorf("%s: setup response reports trace %+v", scheme, env2.Trace())
		}
	}
}
