package e2ap

import (
	"sync/atomic"
	"time"

	"flexric/internal/telemetry"
)

// Telemetry: every codec operation is timed into per-scheme,
// per-PDU-type histograms —
//
//	e2ap.<scheme>.encode.<Type>    Encode latency
//	e2ap.<scheme>.decode.<Type>    Decode latency
//	e2ap.<scheme>.envelope         Envelope (dispatch-view) latency
//	e2ap.<scheme>.encode_errors    (counter)
//	e2ap.<scheme>.decode_errors    (counter)
//
// The envelope histogram is deliberately typeless and separate from
// decode: its asymmetry between schemes (a full PER decode pass vs an
// O(1) flat slot read) is the controller-scalability mechanism of
// Fig. 8b, now observable on a live system. Histograms are created
// lazily on first use, so a deployment that only ever carries
// indications registers only indication rows. The exported Encode /
// Decode / Envelope methods below wrap the codecs' private
// implementations; with the notelemetry build tag they collapse to
// direct calls.

// codecTel holds the lazily-created instruments, indexed by scheme.
var codecTel [2]struct {
	enc, dec [NumMessageTypes]atomic.Pointer[telemetry.Histogram]
	env      atomic.Pointer[telemetry.Histogram]
	encErr   atomic.Pointer[telemetry.Counter]
	decErr   atomic.Pointer[telemetry.Counter]
}

func schemeIdx(s Scheme) int {
	if s == SchemeFB {
		return 1
	}
	return 0
}

func (s Scheme) telemetryName() string {
	if s == SchemeFB {
		return "fb"
	}
	return "asn"
}

// telHist lazily resolves a histogram cell. A creation race is benign:
// the registry's get-or-create returns the same instance to every
// racer.
func telHist(p *atomic.Pointer[telemetry.Histogram], name func() string) *telemetry.Histogram {
	h := p.Load()
	if h == nil {
		h = telemetry.NewHistogram(name())
		p.Store(h)
	}
	return h
}

func telCount(p *atomic.Pointer[telemetry.Counter], name func() string) *telemetry.Counter {
	c := p.Load()
	if c == nil {
		c = telemetry.NewCounter(name())
		p.Store(c)
	}
	return c
}

func observeCodec(scheme Scheme, op string, t MessageType, d time.Duration) {
	i := schemeIdx(scheme)
	var cell *atomic.Pointer[telemetry.Histogram]
	if op == "encode" {
		cell = &codecTel[i].enc[t]
	} else {
		cell = &codecTel[i].dec[t]
	}
	telHist(cell, func() string {
		return "e2ap." + scheme.telemetryName() + "." + op + "." + t.String()
	}).Observe(d)
}

func observeEnvelope(scheme Scheme, d time.Duration) {
	i := schemeIdx(scheme)
	telHist(&codecTel[i].env, func() string {
		return "e2ap." + scheme.telemetryName() + ".envelope"
	}).Observe(d)
}

func countCodecError(scheme Scheme, op string) {
	i := schemeIdx(scheme)
	var cell *atomic.Pointer[telemetry.Counter]
	if op == "encode" {
		cell = &codecTel[i].encErr
	} else {
		cell = &codecTel[i].decErr
	}
	telCount(cell, func() string {
		return "e2ap." + scheme.telemetryName() + "." + op + "_errors"
	}).Inc()
}

// Encode implements Codec.
func (c *PERCodec) Encode(pdu PDU) ([]byte, error) {
	if !telemetry.Enabled {
		return c.encode(pdu)
	}
	t0 := time.Now()
	wire, err := c.encode(pdu)
	if err != nil {
		countCodecError(SchemeASN, "encode")
		return nil, err
	}
	observeCodec(SchemeASN, "encode", pdu.MsgType(), time.Since(t0))
	return wire, nil
}

// EncodeAppend implements Codec. It shares Encode's histogram: the
// operation is the same encode pass, only the buffer discipline differs.
func (c *PERCodec) EncodeAppend(dst []byte, pdu PDU) ([]byte, error) {
	if !telemetry.Enabled {
		return c.encodeAppend(dst, pdu)
	}
	t0 := time.Now()
	wire, err := c.encodeAppend(dst, pdu)
	if err != nil {
		countCodecError(SchemeASN, "encode")
		return nil, err
	}
	observeCodec(SchemeASN, "encode", pdu.MsgType(), time.Since(t0))
	return wire, nil
}

// Decode implements Codec.
func (c *PERCodec) Decode(wire []byte) (PDU, error) {
	if !telemetry.Enabled {
		return c.decode(wire)
	}
	t0 := time.Now()
	pdu, err := c.decode(wire)
	if err != nil {
		countCodecError(SchemeASN, "decode")
		return nil, err
	}
	observeCodec(SchemeASN, "decode", pdu.MsgType(), time.Since(t0))
	return pdu, nil
}

// Envelope implements Codec. PER has no random access: the full decode
// pass is unavoidable, and the envelope histogram records its cost.
func (c *PERCodec) Envelope(wire []byte) (Envelope, error) {
	if !telemetry.Enabled {
		return c.envelope(wire)
	}
	t0 := time.Now()
	env, err := c.envelope(wire)
	if err != nil {
		countCodecError(SchemeASN, "decode")
		return nil, err
	}
	observeEnvelope(SchemeASN, time.Since(t0))
	return env, nil
}

// Encode implements Codec.
func (c *FlatCodec) Encode(pdu PDU) ([]byte, error) {
	if !telemetry.Enabled {
		return c.encode(pdu)
	}
	t0 := time.Now()
	wire, err := c.encode(pdu)
	if err != nil {
		countCodecError(SchemeFB, "encode")
		return nil, err
	}
	observeCodec(SchemeFB, "encode", pdu.MsgType(), time.Since(t0))
	return wire, nil
}

// EncodeAppend implements Codec. It shares Encode's histogram: the
// operation is the same encode pass, only the buffer discipline differs.
func (c *FlatCodec) EncodeAppend(dst []byte, pdu PDU) ([]byte, error) {
	if !telemetry.Enabled {
		return c.encodeAppend(dst, pdu)
	}
	t0 := time.Now()
	wire, err := c.encodeAppend(dst, pdu)
	if err != nil {
		countCodecError(SchemeFB, "encode")
		return nil, err
	}
	observeCodec(SchemeFB, "encode", pdu.MsgType(), time.Since(t0))
	return wire, nil
}

// Decode implements Codec.
func (c *FlatCodec) Decode(wire []byte) (PDU, error) {
	if !telemetry.Enabled {
		return c.decode(wire)
	}
	t0 := time.Now()
	pdu, err := c.decode(wire)
	if err != nil {
		countCodecError(SchemeFB, "decode")
		return nil, err
	}
	observeCodec(SchemeFB, "decode", pdu.MsgType(), time.Since(t0))
	return pdu, nil
}

// Envelope implements Codec: O(1) slot reads, no decode pass — the
// envelope histogram records exactly that near-constant cost.
func (c *FlatCodec) Envelope(wire []byte) (Envelope, error) {
	if !telemetry.Enabled {
		return c.envelope(wire)
	}
	t0 := time.Now()
	env, err := c.envelope(wire)
	if err != nil {
		countCodecError(SchemeFB, "decode")
		return nil, err
	}
	observeEnvelope(SchemeFB, time.Since(t0))
	return env, nil
}
