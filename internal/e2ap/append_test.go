package e2ap

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// The append-style encoders must be byte-identical to Encode: the wire
// format is the protocol contract, and EncodeAppend differs only in
// buffer discipline. Checked for every PDU type, both codecs, with nil
// and non-empty prefixes.
func TestEncodeAppendMatchesEncode(t *testing.T) {
	prefixes := [][]byte{nil, {}, []byte("prefix-bytes"), bytes.Repeat([]byte{0xA5}, 37)}
	for _, c := range codecs(t) {
		for _, pdu := range samplePDUs() {
			want, err := c.Encode(pdu)
			if err != nil {
				t.Fatalf("%s encode %s: %v", c.Name(), pdu.MsgType(), err)
			}
			want = append([]byte(nil), want...)
			for _, prefix := range prefixes {
				dst := append([]byte(nil), prefix...)
				out, err := c.EncodeAppend(dst, pdu)
				if err != nil {
					t.Fatalf("%s append %s: %v", c.Name(), pdu.MsgType(), err)
				}
				if !bytes.Equal(out[:len(prefix)], prefix) {
					t.Fatalf("%s append %s: prefix clobbered", c.Name(), pdu.MsgType())
				}
				if got := out[len(prefix):]; !bytes.Equal(got, want) {
					t.Fatalf("%s append %s: appended bytes differ from Encode\n got %x\nwant %x",
						c.Name(), pdu.MsgType(), got, want)
				}
			}
		}
	}
}

// Appended output must decode like freshly encoded output, even when
// several messages share one buffer back to back — the exact shape the
// batched indication path produces.
func TestEncodeAppendBackToBackDecodes(t *testing.T) {
	for _, c := range codecs(t) {
		var buf []byte
		var bounds []int
		pdus := samplePDUs()
		for _, pdu := range pdus {
			out, err := c.EncodeAppend(buf, pdu)
			if err != nil {
				t.Fatalf("%s append %s: %v", c.Name(), pdu.MsgType(), err)
			}
			buf = out
			bounds = append(bounds, len(buf))
		}
		start := 0
		for i, pdu := range pdus {
			wire := buf[start:bounds[i]]
			start = bounds[i]
			env, err := c.Envelope(wire)
			if err != nil {
				t.Fatalf("%s envelope appended %s: %v", c.Name(), pdu.MsgType(), err)
			}
			if env.Type() != pdu.MsgType() {
				t.Fatalf("%s appended %s decoded as %s", c.Name(), pdu.MsgType(), env.Type())
			}
		}
	}
}

// Property check over randomized indications and prefixes: the hot-path
// message shape with arbitrary header/payload contents and lengths.
func TestEncodeAppendIndicationProperty(t *testing.T) {
	for _, c := range codecs(t) {
		c := c
		prop := func(prefix, header, payload []byte, sn uint32, action uint8) bool {
			pdu := &Indication{
				RequestID:     RequestID{7, 9},
				RANFunctionID: 142,
				ActionID:      action,
				SN:            sn,
				Class:         IndicationReport,
				Header:        header,
				Payload:       payload,
			}
			want, err := c.Encode(pdu)
			if err != nil {
				return false
			}
			want = append([]byte(nil), want...)
			out, err := c.EncodeAppend(append([]byte(nil), prefix...), pdu)
			if err != nil {
				return false
			}
			return bytes.Equal(out[:len(prefix)], prefix) && bytes.Equal(out[len(prefix):], want)
		}
		cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(4))}
		if err := quick.Check(prop, cfg); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

// FuzzEncodeAppendIndication drives the same identity with fuzzed
// buffers (run with `go test -fuzz=FuzzEncodeAppendIndication`; seeds
// execute as regular unit tests).
func FuzzEncodeAppendIndication(f *testing.F) {
	f.Add([]byte{}, []byte{1, 2}, []byte{3, 4, 5})
	f.Add([]byte("pfx"), []byte{}, bytes.Repeat([]byte{0x42}, 300))
	f.Add(bytes.Repeat([]byte{0xFF}, 64), []byte{0}, []byte{})
	f.Fuzz(func(t *testing.T, prefix, header, payload []byte) {
		pdu := &Indication{
			RequestID:     RequestID{1, 2},
			RANFunctionID: 3,
			ActionID:      4,
			SN:            5,
			Class:         IndicationInsert,
			Header:        header,
			Payload:       payload,
		}
		for _, c := range []Codec{NewPERCodec(), NewFlatCodec()} {
			want, err := c.Encode(pdu)
			if err != nil {
				t.Fatalf("%s encode: %v", c.Name(), err)
			}
			want = append([]byte(nil), want...)
			out, err := c.EncodeAppend(append([]byte(nil), prefix...), pdu)
			if err != nil {
				t.Fatalf("%s append: %v", c.Name(), err)
			}
			if !bytes.Equal(out[:len(prefix)], prefix) || !bytes.Equal(out[len(prefix):], want) {
				t.Fatalf("%s: appended encoding diverges from Encode", c.Name())
			}
		}
	})
}
