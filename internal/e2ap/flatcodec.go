package e2ap

import (
	"fmt"

	"flexric/internal/encoding/flat"
	"flexric/internal/trace"
)

// FlatCodec encodes E2AP messages in the FlatBuffers-style zero-copy
// format. Envelope() is O(1): the message type and routing fields live in
// fixed root-table slots and are read directly from the wire bytes, and an
// indication's SM payload is returned as an aliased sub-slice without any
// decode pass. This is the mechanism behind the controller CPU advantage
// in Fig. 8b ("FB's design avoids an explicit decoding step, reading
// directly from raw bytes"). Not safe for concurrent use.
type FlatCodec struct {
	b flat.Builder
	// ab is the append-path builder: it adopts the caller's destination
	// buffer for the duration of one encodeAppend, keeping b's scratch
	// (and the Encode contract) untouched.
	ab flat.Builder
	// env is the reused dispatch view handed out by envelope(); see the
	// Codec.Envelope validity contract.
	env flatEnvelope
}

// NewFlatCodec returns a FlatBuffers-style codec.
func NewFlatCodec() *FlatCodec {
	c := &FlatCodec{}
	c.b = *flat.NewBuilder(512)
	return c
}

// Name implements Codec.
func (*FlatCodec) Name() string { return string(SchemeFB) }

// Root-table slot layout, shared by all message types so that Envelope can
// read routing fields without knowing the type:
//
//	slot 0: message type (u8)
//	slot 1: request ID, requestor<<16|instance (u32) — functional msgs
//	slot 2: RAN function ID (u32) — functional msgs
//	slot 3: transaction ID (u8) — global msgs
//	slot 4: cause, type<<8|value (u32)
//	slot 5+: per-type fields
const (
	slType = iota
	slReqID
	slRANFunc
	slTransaction
	slCause
	slA // first per-type slot
	slB
	slC
	slD
	slE
	slF
	// Trace context slots, shared across traced message types so that
	// Envelope.Trace is an O(1) slot read without knowing the type.
	slTraceID
	slTraceSpan
	numSlots
)

func packReqID(id RequestID) uint32 { return uint32(id.Requestor)<<16 | uint32(id.Instance) }
func unpackReqID(v uint32) RequestID {
	return RequestID{Requestor: uint16(v >> 16), Instance: uint16(v)}
}
func packCause(c Cause) uint32   { return uint32(c.Type)<<8 | uint32(c.Value) }
func unpackCause(v uint32) Cause { return Cause{Type: CauseType(v >> 8), Value: uint8(v)} }

func (c *FlatCodec) encode(pdu PDU) ([]byte, error) {
	b := &c.b
	b.Reset()
	if err := encodeFlatInto(b, pdu); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

func (c *FlatCodec) encodeAppend(dst []byte, pdu PDU) ([]byte, error) {
	b := &c.ab
	b.ResetAppend(dst)
	err := encodeFlatInto(b, pdu)
	// Positions inside the message are base-relative, so the appended
	// bytes are identical to a from-scratch Encode of the same PDU.
	out := b.BytesWithPrefix()
	b.Detach() // do not retain the caller's buffer
	if err != nil {
		return nil, err
	}
	return out, nil
}

// encodeFlatInto builds pdu into b, which the caller has Reset (or
// ResetAppend'ed).
func encodeFlatInto(b *flat.Builder, pdu PDU) error {
	// Out-of-line values must exist before the root table starts, so each
	// case first creates refs, then fills slots.
	type ref struct {
		slot int
		pos  uint32
	}
	var refs [8]ref
	nref := 0
	addRef := func(slot int, pos uint32) {
		refs[nref] = ref{slot, pos}
		nref++
	}
	var scalars func(b *flat.Builder)

	switch m := pdu.(type) {
	case *SetupRequest:
		addRef(slA, flatPutNodeID(b, m.NodeID))
		addRef(slB, flatPutRANFunctions(b, m.RANFunctions))
		addRef(slC, flatPutComponents(b, m.Components))
		tid := m.TransactionID
		scalars = func(b *flat.Builder) { b.AddUint8(slTransaction, tid) }
	case *SetupResponse:
		addRef(slB, flatPutU16s(b, m.Accepted))
		addRef(slC, flatPutRejected(b, m.Rejected))
		tid, ric := m.TransactionID, m.RICID
		scalars = func(b *flat.Builder) {
			b.AddUint8(slTransaction, tid)
			b.AddUint64(slA, uint64(packPLMN(ric.PLMN))<<32|uint64(ric.RICID))
		}
	case *SetupFailure:
		tid, cause, ttw := m.TransactionID, m.Cause, m.TimeToWaitMS
		scalars = func(b *flat.Builder) {
			b.AddUint8(slTransaction, tid)
			b.AddUint32(slCause, packCause(cause))
			b.AddUint32(slA, ttw)
		}
	case *ResetRequest:
		tid, cause := m.TransactionID, m.Cause
		scalars = func(b *flat.Builder) {
			b.AddUint8(slTransaction, tid)
			b.AddUint32(slCause, packCause(cause))
		}
	case *ResetResponse:
		tid := m.TransactionID
		scalars = func(b *flat.Builder) { b.AddUint8(slTransaction, tid) }
	case *ErrorIndication:
		mm := *m
		scalars = func(b *flat.Builder) {
			b.AddUint8(slTransaction, mm.TransactionID)
			if mm.HasRequestID {
				b.AddUint32(slReqID, packReqID(mm.RequestID))
			}
			b.AddUint32(slRANFunc, uint32(mm.RANFunctionID))
			b.AddUint32(slCause, packCause(mm.Cause))
		}
	case *ServiceUpdate:
		addRef(slA, flatPutRANFunctions(b, m.Added))
		addRef(slB, flatPutRANFunctions(b, m.Modified))
		addRef(slC, flatPutU16s(b, m.Deleted))
		tid := m.TransactionID
		scalars = func(b *flat.Builder) { b.AddUint8(slTransaction, tid) }
	case *ServiceUpdateAck:
		addRef(slA, flatPutU16s(b, m.Accepted))
		addRef(slB, flatPutRejected(b, m.Rejected))
		tid := m.TransactionID
		scalars = func(b *flat.Builder) { b.AddUint8(slTransaction, tid) }
	case *ServiceUpdateFailure:
		tid, cause, ttw := m.TransactionID, m.Cause, m.TimeToWaitMS
		scalars = func(b *flat.Builder) {
			b.AddUint8(slTransaction, tid)
			b.AddUint32(slCause, packCause(cause))
			b.AddUint32(slA, ttw)
		}
	case *ServiceQuery:
		addRef(slA, flatPutU16s(b, m.Accepted))
		tid := m.TransactionID
		scalars = func(b *flat.Builder) { b.AddUint8(slTransaction, tid) }
	case *NodeConfigUpdate:
		addRef(slA, flatPutComponents(b, m.Components))
		tid := m.TransactionID
		scalars = func(b *flat.Builder) { b.AddUint8(slTransaction, tid) }
	case *NodeConfigUpdateAck:
		ids := make([]uint32, len(m.Accepted))
		for i, s := range m.Accepted {
			ids[i] = b.CreateString(s)
		}
		addRef(slA, b.CreateRefVector(ids))
		tid := m.TransactionID
		scalars = func(b *flat.Builder) { b.AddUint8(slTransaction, tid) }
	case *NodeConfigUpdateFailure:
		tid, cause, ttw := m.TransactionID, m.Cause, m.TimeToWaitMS
		scalars = func(b *flat.Builder) {
			b.AddUint8(slTransaction, tid)
			b.AddUint32(slCause, packCause(cause))
			b.AddUint32(slA, ttw)
		}
	case *ConnectionUpdate:
		addRef(slA, flatPutConnItems(b, m.Add))
		addRef(slB, flatPutConnItems(b, m.Remove))
		addRef(slC, flatPutConnItems(b, m.Modify))
		tid := m.TransactionID
		scalars = func(b *flat.Builder) { b.AddUint8(slTransaction, tid) }
	case *ConnectionUpdateAck:
		addRef(slA, flatPutConnItems(b, m.Setup))
		fails := make([]uint32, len(m.Failed))
		for i, f := range m.Failed {
			addr := b.CreateString(f.Item.TNLAddress)
			b.StartTable(3)
			b.AddRef(0, addr)
			b.AddUint8(1, f.Item.Usage)
			b.AddUint32(2, packCause(f.Cause))
			fails[i] = b.EndTable()
		}
		addRef(slB, b.CreateRefVector(fails))
		tid := m.TransactionID
		scalars = func(b *flat.Builder) { b.AddUint8(slTransaction, tid) }
	case *ConnectionUpdateFailure:
		tid, cause, ttw := m.TransactionID, m.Cause, m.TimeToWaitMS
		scalars = func(b *flat.Builder) {
			b.AddUint8(slTransaction, tid)
			b.AddUint32(slCause, packCause(cause))
			b.AddUint32(slA, ttw)
		}
	case *SubscriptionRequest:
		if m.EventTrigger != nil {
			addRef(slA, b.CreateByteVector(m.EventTrigger))
		}
		acts := make([]uint32, len(m.Actions))
		for i, a := range m.Actions {
			var defRef uint32
			hasDef := a.Definition != nil
			if hasDef {
				defRef = b.CreateByteVector(a.Definition)
			}
			b.StartTable(3)
			b.AddUint8(0, a.ID)
			b.AddUint8(1, uint8(a.Type))
			if hasDef {
				b.AddRef(2, defRef)
			}
			acts[i] = b.EndTable()
		}
		addRef(slB, b.CreateRefVector(acts))
		id, rf, tr := m.RequestID, m.RANFunctionID, m.Trace
		scalars = func(b *flat.Builder) {
			b.AddUint32(slReqID, packReqID(id))
			b.AddUint32(slRANFunc, uint32(rf))
			if tr.Valid() {
				b.AddUint64(slTraceID, tr.TraceID)
				b.AddUint64(slTraceSpan, tr.SpanID)
			}
		}
	case *SubscriptionResponse:
		if m.Admitted != nil {
			addRef(slA, b.CreateByteVector(m.Admitted))
		}
		nas := make([]uint32, len(m.NotAdmitted))
		for i, na := range m.NotAdmitted {
			b.StartTable(2)
			b.AddUint8(0, na.ID)
			b.AddUint32(1, packCause(na.Cause))
			nas[i] = b.EndTable()
		}
		addRef(slB, b.CreateRefVector(nas))
		id, rf := m.RequestID, m.RANFunctionID
		scalars = func(b *flat.Builder) {
			b.AddUint32(slReqID, packReqID(id))
			b.AddUint32(slRANFunc, uint32(rf))
		}
	case *SubscriptionFailure:
		id, rf, cause := m.RequestID, m.RANFunctionID, m.Cause
		scalars = func(b *flat.Builder) {
			b.AddUint32(slReqID, packReqID(id))
			b.AddUint32(slRANFunc, uint32(rf))
			b.AddUint32(slCause, packCause(cause))
		}
	case *SubscriptionDeleteRequest:
		id, rf := m.RequestID, m.RANFunctionID
		scalars = func(b *flat.Builder) {
			b.AddUint32(slReqID, packReqID(id))
			b.AddUint32(slRANFunc, uint32(rf))
		}
	case *SubscriptionDeleteResponse:
		id, rf := m.RequestID, m.RANFunctionID
		scalars = func(b *flat.Builder) {
			b.AddUint32(slReqID, packReqID(id))
			b.AddUint32(slRANFunc, uint32(rf))
		}
	case *SubscriptionDeleteFailure:
		id, rf, cause := m.RequestID, m.RANFunctionID, m.Cause
		scalars = func(b *flat.Builder) {
			b.AddUint32(slReqID, packReqID(id))
			b.AddUint32(slRANFunc, uint32(rf))
			b.AddUint32(slCause, packCause(cause))
		}
	case *Indication:
		if m.Header != nil {
			addRef(slB, b.CreateByteVector(m.Header))
		}
		if m.Payload != nil {
			addRef(slC, b.CreateByteVector(m.Payload))
		}
		if m.CallProcessID != nil {
			addRef(slD, b.CreateByteVector(m.CallProcessID))
		}
		mm := *m
		scalars = func(b *flat.Builder) {
			b.AddUint32(slReqID, packReqID(mm.RequestID))
			b.AddUint32(slRANFunc, uint32(mm.RANFunctionID))
			b.AddUint64(slA, uint64(mm.ActionID)<<40|uint64(mm.Class)<<32|uint64(mm.SN))
			if mm.Trace.Valid() {
				b.AddUint64(slTraceID, mm.Trace.TraceID)
				b.AddUint64(slTraceSpan, mm.Trace.SpanID)
			}
		}
	case *ControlRequest:
		if m.CallProcessID != nil {
			addRef(slA, b.CreateByteVector(m.CallProcessID))
		}
		if m.Header != nil {
			addRef(slB, b.CreateByteVector(m.Header))
		}
		if m.Payload != nil {
			addRef(slC, b.CreateByteVector(m.Payload))
		}
		id, rf, ack, tr := m.RequestID, m.RANFunctionID, m.AckRequested, m.Trace
		scalars = func(b *flat.Builder) {
			b.AddUint32(slReqID, packReqID(id))
			b.AddUint32(slRANFunc, uint32(rf))
			b.AddBool(slD, ack)
			if tr.Valid() {
				b.AddUint64(slTraceID, tr.TraceID)
				b.AddUint64(slTraceSpan, tr.SpanID)
			}
		}
	case *ControlAck:
		if m.CallProcessID != nil {
			addRef(slA, b.CreateByteVector(m.CallProcessID))
		}
		if m.Outcome != nil {
			addRef(slB, b.CreateByteVector(m.Outcome))
		}
		id, rf := m.RequestID, m.RANFunctionID
		scalars = func(b *flat.Builder) {
			b.AddUint32(slReqID, packReqID(id))
			b.AddUint32(slRANFunc, uint32(rf))
		}
	case *ControlFailure:
		if m.CallProcessID != nil {
			addRef(slA, b.CreateByteVector(m.CallProcessID))
		}
		if m.Outcome != nil {
			addRef(slB, b.CreateByteVector(m.Outcome))
		}
		id, rf, cause := m.RequestID, m.RANFunctionID, m.Cause
		scalars = func(b *flat.Builder) {
			b.AddUint32(slReqID, packReqID(id))
			b.AddUint32(slRANFunc, uint32(rf))
			b.AddUint32(slCause, packCause(cause))
		}
	default:
		return fmt.Errorf("%w: %T", ErrUnknownType, pdu)
	}

	b.StartTable(numSlots)
	b.AddUint8(slType, uint8(pdu.MsgType()))
	for i := 0; i < nref; i++ {
		b.AddRef(refs[i].slot, refs[i].pos)
	}
	if scalars != nil {
		scalars(b)
	}
	b.Finish(b.EndTable())
	return nil
}

func (c *FlatCodec) envelope(wire []byte) (Envelope, error) {
	tab, err := flat.GetRoot(wire)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	t := tab.Uint8(slType)
	if int(t) >= NumMessageTypes {
		return nil, fmt.Errorf("%w: type %d", ErrUnknownType, t)
	}
	// Reuse the codec-owned view instead of allocating one per message;
	// clearing the cached PDU is what keeps a stale full decode from
	// leaking into the next message (see the Codec.Envelope contract).
	c.env = flatEnvelope{tab: tab, typ: MessageType(t)}
	return &c.env, nil
}

func (c *FlatCodec) decode(wire []byte) (PDU, error) {
	env, err := c.envelope(wire)
	if err != nil {
		return nil, err
	}
	return env.PDU()
}

// flatEnvelope is a lazy view over a flat-encoded message.
type flatEnvelope struct {
	tab flat.Table
	typ MessageType
	pdu PDU // cached full decode
}

func (e *flatEnvelope) Type() MessageType { return e.typ }

func (e *flatEnvelope) RequestID() RequestID { return unpackReqID(e.tab.Uint32(slReqID)) }

func (e *flatEnvelope) RANFunctionID() uint16 { return uint16(e.tab.Uint32(slRANFunc)) }

func (e *flatEnvelope) IndicationPayload() []byte {
	if e.typ != TypeIndication {
		return nil
	}
	return e.tab.Bytes(slC)
}

func (e *flatEnvelope) IndicationHeader() []byte {
	if e.typ != TypeIndication {
		return nil
	}
	return e.tab.Bytes(slB)
}

func (e *flatEnvelope) Trace() trace.Context {
	return trace.Context{TraceID: e.tab.Uint64(slTraceID), SpanID: e.tab.Uint64(slTraceSpan)}
}

func (e *flatEnvelope) PDU() (PDU, error) {
	if e.pdu != nil {
		return e.pdu, nil
	}
	pdu, err := flatDecodeBody(e.tab, e.typ)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrBadMessage, e.typ, err)
	}
	e.pdu = pdu
	return pdu, nil
}

func flatDecodeBody(tab flat.Table, t MessageType) (PDU, error) {
	cp := func(b []byte) []byte {
		if len(b) == 0 {
			return nil
		}
		out := make([]byte, len(b))
		copy(out, b)
		return out
	}
	switch t {
	case TypeSetupRequest:
		return &SetupRequest{
			TransactionID: tab.Uint8(slTransaction),
			NodeID:        flatGetNodeID(tab.SubTable(slA)),
			RANFunctions:  flatGetRANFunctions(tab, slB),
			Components:    flatGetComponents(tab, slC),
		}, nil
	case TypeSetupResponse:
		v := tab.Uint64(slA)
		return &SetupResponse{
			TransactionID: tab.Uint8(slTransaction),
			RICID:         GlobalRICID{PLMN: unpackPLMN(uint32(v >> 32)), RICID: uint32(v)},
			Accepted:      flatGetU16s(tab, slB),
			Rejected:      flatGetRejected(tab, slC),
		}, nil
	case TypeSetupFailure:
		return &SetupFailure{
			TransactionID: tab.Uint8(slTransaction),
			Cause:         unpackCause(tab.Uint32(slCause)),
			TimeToWaitMS:  tab.Uint32(slA),
		}, nil
	case TypeResetRequest:
		return &ResetRequest{
			TransactionID: tab.Uint8(slTransaction),
			Cause:         unpackCause(tab.Uint32(slCause)),
		}, nil
	case TypeResetResponse:
		return &ResetResponse{TransactionID: tab.Uint8(slTransaction)}, nil
	case TypeErrorIndication:
		return &ErrorIndication{
			TransactionID: tab.Uint8(slTransaction),
			HasRequestID:  tab.Has(slReqID),
			RequestID:     unpackReqID(tab.Uint32(slReqID)),
			RANFunctionID: uint16(tab.Uint32(slRANFunc)),
			Cause:         unpackCause(tab.Uint32(slCause)),
		}, nil
	case TypeServiceUpdate:
		return &ServiceUpdate{
			TransactionID: tab.Uint8(slTransaction),
			Added:         flatGetRANFunctions(tab, slA),
			Modified:      flatGetRANFunctions(tab, slB),
			Deleted:       flatGetU16s(tab, slC),
		}, nil
	case TypeServiceUpdateAck:
		return &ServiceUpdateAck{
			TransactionID: tab.Uint8(slTransaction),
			Accepted:      flatGetU16s(tab, slA),
			Rejected:      flatGetRejected(tab, slB),
		}, nil
	case TypeServiceUpdateFailure:
		return &ServiceUpdateFailure{
			TransactionID: tab.Uint8(slTransaction),
			Cause:         unpackCause(tab.Uint32(slCause)),
			TimeToWaitMS:  tab.Uint32(slA),
		}, nil
	case TypeServiceQuery:
		return &ServiceQuery{
			TransactionID: tab.Uint8(slTransaction),
			Accepted:      flatGetU16s(tab, slA),
		}, nil
	case TypeNodeConfigUpdate:
		return &NodeConfigUpdate{
			TransactionID: tab.Uint8(slTransaction),
			Components:    flatGetComponents(tab, slA),
		}, nil
	case TypeNodeConfigUpdateAck:
		m := &NodeConfigUpdateAck{TransactionID: tab.Uint8(slTransaction)}
		n := tab.VectorLen(slA)
		if n > 0 {
			m.Accepted = make([]string, n)
			for i := 0; i < n; i++ {
				m.Accepted[i] = string(tab.BytesVectorAt(slA, i))
			}
		}
		return m, nil
	case TypeNodeConfigUpdateFailure:
		return &NodeConfigUpdateFailure{
			TransactionID: tab.Uint8(slTransaction),
			Cause:         unpackCause(tab.Uint32(slCause)),
			TimeToWaitMS:  tab.Uint32(slA),
		}, nil
	case TypeConnectionUpdate:
		return &ConnectionUpdate{
			TransactionID: tab.Uint8(slTransaction),
			Add:           flatGetConnItems(tab, slA),
			Remove:        flatGetConnItems(tab, slB),
			Modify:        flatGetConnItems(tab, slC),
		}, nil
	case TypeConnectionUpdateAck:
		m := &ConnectionUpdateAck{
			TransactionID: tab.Uint8(slTransaction),
			Setup:         flatGetConnItems(tab, slA),
		}
		n := tab.VectorLen(slB)
		if n > 0 {
			m.Failed = make([]ConnectionFailedItem, n)
			for i := 0; i < n; i++ {
				ft := tab.RefVectorAt(slB, i)
				m.Failed[i] = ConnectionFailedItem{
					Item:  ConnectionItem{TNLAddress: ft.String(0), Usage: ft.Uint8(1)},
					Cause: unpackCause(ft.Uint32(2)),
				}
			}
		}
		return m, nil
	case TypeConnectionUpdateFailure:
		return &ConnectionUpdateFailure{
			TransactionID: tab.Uint8(slTransaction),
			Cause:         unpackCause(tab.Uint32(slCause)),
			TimeToWaitMS:  tab.Uint32(slA),
		}, nil
	case TypeSubscriptionRequest:
		m := &SubscriptionRequest{
			RequestID:     unpackReqID(tab.Uint32(slReqID)),
			RANFunctionID: uint16(tab.Uint32(slRANFunc)),
			EventTrigger:  cp(tab.Bytes(slA)),
			Trace:         flatGetTrace(tab),
		}
		n := tab.VectorLen(slB)
		if n > 0 {
			m.Actions = make([]Action, n)
			for i := 0; i < n; i++ {
				at := tab.RefVectorAt(slB, i)
				m.Actions[i] = Action{
					ID:         at.Uint8(0),
					Type:       ActionType(at.Uint8(1)),
					Definition: cp(at.Bytes(2)),
				}
			}
		}
		return m, nil
	case TypeSubscriptionResponse:
		m := &SubscriptionResponse{
			RequestID:     unpackReqID(tab.Uint32(slReqID)),
			RANFunctionID: uint16(tab.Uint32(slRANFunc)),
			Admitted:      cp(tab.Bytes(slA)),
		}
		n := tab.VectorLen(slB)
		if n > 0 {
			m.NotAdmitted = make([]ActionNotAdmitted, n)
			for i := 0; i < n; i++ {
				at := tab.RefVectorAt(slB, i)
				m.NotAdmitted[i] = ActionNotAdmitted{ID: at.Uint8(0), Cause: unpackCause(at.Uint32(1))}
			}
		}
		return m, nil
	case TypeSubscriptionFailure:
		return &SubscriptionFailure{
			RequestID:     unpackReqID(tab.Uint32(slReqID)),
			RANFunctionID: uint16(tab.Uint32(slRANFunc)),
			Cause:         unpackCause(tab.Uint32(slCause)),
		}, nil
	case TypeSubscriptionDeleteRequest:
		return &SubscriptionDeleteRequest{
			RequestID:     unpackReqID(tab.Uint32(slReqID)),
			RANFunctionID: uint16(tab.Uint32(slRANFunc)),
		}, nil
	case TypeSubscriptionDeleteResponse:
		return &SubscriptionDeleteResponse{
			RequestID:     unpackReqID(tab.Uint32(slReqID)),
			RANFunctionID: uint16(tab.Uint32(slRANFunc)),
		}, nil
	case TypeSubscriptionDeleteFailure:
		return &SubscriptionDeleteFailure{
			RequestID:     unpackReqID(tab.Uint32(slReqID)),
			RANFunctionID: uint16(tab.Uint32(slRANFunc)),
			Cause:         unpackCause(tab.Uint32(slCause)),
		}, nil
	case TypeIndication:
		v := tab.Uint64(slA)
		return &Indication{
			RequestID:     unpackReqID(tab.Uint32(slReqID)),
			RANFunctionID: uint16(tab.Uint32(slRANFunc)),
			ActionID:      uint8(v >> 40),
			Class:         IndicationClass(uint8(v >> 32)),
			SN:            uint32(v),
			Header:        cp(tab.Bytes(slB)),
			Payload:       cp(tab.Bytes(slC)),
			CallProcessID: cp(tab.Bytes(slD)),
			Trace:         flatGetTrace(tab),
		}, nil
	case TypeControlRequest:
		return &ControlRequest{
			RequestID:     unpackReqID(tab.Uint32(slReqID)),
			RANFunctionID: uint16(tab.Uint32(slRANFunc)),
			CallProcessID: cp(tab.Bytes(slA)),
			Header:        cp(tab.Bytes(slB)),
			Payload:       cp(tab.Bytes(slC)),
			AckRequested:  tab.Bool(slD),
			Trace:         flatGetTrace(tab),
		}, nil
	case TypeControlAck:
		return &ControlAck{
			RequestID:     unpackReqID(tab.Uint32(slReqID)),
			RANFunctionID: uint16(tab.Uint32(slRANFunc)),
			CallProcessID: cp(tab.Bytes(slA)),
			Outcome:       cp(tab.Bytes(slB)),
		}, nil
	case TypeControlFailure:
		return &ControlFailure{
			RequestID:     unpackReqID(tab.Uint32(slReqID)),
			RANFunctionID: uint16(tab.Uint32(slRANFunc)),
			CallProcessID: cp(tab.Bytes(slA)),
			Cause:         unpackCause(tab.Uint32(slCause)),
			Outcome:       cp(tab.Bytes(slB)),
		}, nil
	default:
		return nil, ErrUnknownType
	}
}

// --- shared helpers ---

// flatGetTrace reads the trace-context slots; absent slots read as zero,
// which is exactly the invalid Context.
func flatGetTrace(tab flat.Table) trace.Context {
	return trace.Context{TraceID: tab.Uint64(slTraceID), SpanID: tab.Uint64(slTraceSpan)}
}

func packPLMN(p PLMN) uint32   { return uint32(p.MCC)<<10 | uint32(p.MNC) }
func unpackPLMN(v uint32) PLMN { return PLMN{MCC: uint16(v >> 10), MNC: uint16(v & 0x3FF)} }

func flatPutNodeID(b *flat.Builder, n GlobalE2NodeID) uint32 {
	b.StartTable(3)
	b.AddUint32(0, packPLMN(n.PLMN))
	b.AddUint8(1, uint8(n.Type))
	b.AddUint64(2, n.NodeID)
	return b.EndTable()
}

func flatGetNodeID(t flat.Table) GlobalE2NodeID {
	return GlobalE2NodeID{
		PLMN:   unpackPLMN(t.Uint32(0)),
		Type:   NodeType(t.Uint8(1)),
		NodeID: t.Uint64(2),
	}
}

func flatPutRANFunctions(b *flat.Builder, fns []RANFunctionItem) uint32 {
	refs := make([]uint32, len(fns))
	for i, f := range fns {
		oid := b.CreateString(f.OID)
		var def uint32
		hasDef := f.Definition != nil
		if hasDef {
			def = b.CreateByteVector(f.Definition)
		}
		b.StartTable(4)
		b.AddUint32(0, uint32(f.ID))
		b.AddUint32(1, uint32(f.Revision))
		b.AddRef(2, oid)
		if hasDef {
			b.AddRef(3, def)
		}
		refs[i] = b.EndTable()
	}
	return b.CreateRefVector(refs)
}

func flatGetRANFunctions(tab flat.Table, slot int) []RANFunctionItem {
	n := tab.VectorLen(slot)
	if n == 0 {
		return nil
	}
	out := make([]RANFunctionItem, n)
	for i := 0; i < n; i++ {
		ft := tab.RefVectorAt(slot, i)
		out[i] = RANFunctionItem{
			ID:       uint16(ft.Uint32(0)),
			Revision: uint16(ft.Uint32(1)),
			OID:      ft.String(2),
		}
		if d := ft.Bytes(3); len(d) > 0 {
			out[i].Definition = append([]byte(nil), d...)
		}
	}
	return out
}

func flatPutComponents(b *flat.Builder, cs []E2NodeComponentConfig) uint32 {
	refs := make([]uint32, len(cs))
	for i, c := range cs {
		id := b.CreateString(c.ComponentID)
		var req, resp uint32
		hasReq, hasResp := c.Request != nil, c.Response != nil
		if hasReq {
			req = b.CreateByteVector(c.Request)
		}
		if hasResp {
			resp = b.CreateByteVector(c.Response)
		}
		b.StartTable(4)
		b.AddUint8(0, c.InterfaceType)
		b.AddRef(1, id)
		if hasReq {
			b.AddRef(2, req)
		}
		if hasResp {
			b.AddRef(3, resp)
		}
		refs[i] = b.EndTable()
	}
	return b.CreateRefVector(refs)
}

func flatGetComponents(tab flat.Table, slot int) []E2NodeComponentConfig {
	n := tab.VectorLen(slot)
	if n == 0 {
		return nil
	}
	out := make([]E2NodeComponentConfig, n)
	for i := 0; i < n; i++ {
		ft := tab.RefVectorAt(slot, i)
		out[i] = E2NodeComponentConfig{
			InterfaceType: ft.Uint8(0),
			ComponentID:   ft.String(1),
		}
		if d := ft.Bytes(2); len(d) > 0 {
			out[i].Request = append([]byte(nil), d...)
		}
		if d := ft.Bytes(3); len(d) > 0 {
			out[i].Response = append([]byte(nil), d...)
		}
	}
	return out
}

func flatPutConnItems(b *flat.Builder, items []ConnectionItem) uint32 {
	refs := make([]uint32, len(items))
	for i, it := range items {
		addr := b.CreateString(it.TNLAddress)
		b.StartTable(2)
		b.AddRef(0, addr)
		b.AddUint8(1, it.Usage)
		refs[i] = b.EndTable()
	}
	return b.CreateRefVector(refs)
}

func flatGetConnItems(tab flat.Table, slot int) []ConnectionItem {
	n := tab.VectorLen(slot)
	if n == 0 {
		return nil
	}
	out := make([]ConnectionItem, n)
	for i := 0; i < n; i++ {
		ft := tab.RefVectorAt(slot, i)
		out[i] = ConnectionItem{TNLAddress: ft.String(0), Usage: ft.Uint8(1)}
	}
	return out
}

func flatPutRejected(b *flat.Builder, rj []RejectedFunction) uint32 {
	refs := make([]uint32, len(rj))
	for i, r := range rj {
		b.StartTable(2)
		b.AddUint32(0, uint32(r.ID))
		b.AddUint32(1, packCause(r.Cause))
		refs[i] = b.EndTable()
	}
	return b.CreateRefVector(refs)
}

func flatGetRejected(tab flat.Table, slot int) []RejectedFunction {
	n := tab.VectorLen(slot)
	if n == 0 {
		return nil
	}
	out := make([]RejectedFunction, n)
	for i := 0; i < n; i++ {
		ft := tab.RefVectorAt(slot, i)
		out[i] = RejectedFunction{ID: uint16(ft.Uint32(0)), Cause: unpackCause(ft.Uint32(1))}
	}
	return out
}

func flatPutU16s(b *flat.Builder, vals []uint16) uint32 {
	u := make([]uint64, len(vals))
	for i, v := range vals {
		u[i] = uint64(v)
	}
	return b.CreateUint64Vector(u)
}

func flatGetU16s(tab flat.Table, slot int) []uint16 {
	n := tab.VectorLen(slot)
	if n == 0 {
		return nil
	}
	out := make([]uint16, n)
	for i := 0; i < n; i++ {
		out[i] = uint16(tab.Uint64VectorAt(slot, i))
	}
	return out
}
