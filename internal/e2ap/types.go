// Package e2ap models the O-RAN E2 Application Protocol as an
// encoding-independent intermediate representation.
//
// This is FlexRIC's §4.3 abstraction: every E2AP procedure is a plain Go
// struct ("without loss of information and independent of any particular
// encoding/decoding algorithm"), and pluggable codecs translate the IR to
// and from wire formats. Two codecs ship with the SDK — an ASN.1-PER-style
// codec (compact, explicit decode pass) and a FlatBuffers-style codec
// (larger, zero-copy lazy reads) — matching the paper's implementation,
// which covers the E2AP message set in both schemes.
//
// All 26 E2AP messages of O-RAN.WG3.E2AP-v01.01 are represented: the
// global procedures (setup, reset, error indication, service update/query,
// node configuration update, connection update) and the functional
// procedures (subscription, subscription delete, indication, control).
package e2ap

import (
	"fmt"

	"flexric/internal/trace"
)

// MessageType enumerates the E2AP procedures.
type MessageType uint8

// The 26 E2AP message types.
const (
	TypeSetupRequest MessageType = iota
	TypeSetupResponse
	TypeSetupFailure
	TypeResetRequest
	TypeResetResponse
	TypeErrorIndication
	TypeServiceUpdate
	TypeServiceUpdateAck
	TypeServiceUpdateFailure
	TypeServiceQuery
	TypeNodeConfigUpdate
	TypeNodeConfigUpdateAck
	TypeNodeConfigUpdateFailure
	TypeConnectionUpdate
	TypeConnectionUpdateAck
	TypeConnectionUpdateFailure
	TypeSubscriptionRequest
	TypeSubscriptionResponse
	TypeSubscriptionFailure
	TypeSubscriptionDeleteRequest
	TypeSubscriptionDeleteResponse
	TypeSubscriptionDeleteFailure
	TypeIndication
	TypeControlRequest
	TypeControlAck
	TypeControlFailure

	numMessageTypes // sentinel
)

// NumMessageTypes is the number of E2AP procedures (26).
const NumMessageTypes = int(numMessageTypes)

var typeNames = [...]string{
	"SetupRequest", "SetupResponse", "SetupFailure",
	"ResetRequest", "ResetResponse", "ErrorIndication",
	"ServiceUpdate", "ServiceUpdateAck", "ServiceUpdateFailure", "ServiceQuery",
	"NodeConfigUpdate", "NodeConfigUpdateAck", "NodeConfigUpdateFailure",
	"ConnectionUpdate", "ConnectionUpdateAck", "ConnectionUpdateFailure",
	"SubscriptionRequest", "SubscriptionResponse", "SubscriptionFailure",
	"SubscriptionDeleteRequest", "SubscriptionDeleteResponse", "SubscriptionDeleteFailure",
	"Indication", "ControlRequest", "ControlAck", "ControlFailure",
}

func (t MessageType) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("MessageType(%d)", uint8(t))
}

// PDU is implemented by every E2AP message struct.
type PDU interface {
	// MsgType identifies the E2AP procedure.
	MsgType() MessageType
}

// RequestID identifies a RIC request: the requestor (iApp/xApp) and a
// per-requestor instance, as in E2AP's RICrequestID.
type RequestID struct {
	Requestor uint16
	Instance  uint16
}

func (r RequestID) String() string { return fmt.Sprintf("req(%d/%d)", r.Requestor, r.Instance) }

// PLMN is a public land mobile network identity (MCC + MNC).
type PLMN struct {
	MCC uint16 // 3 digits
	MNC uint16 // 2-3 digits
}

func (p PLMN) String() string { return fmt.Sprintf("%03d.%02d", p.MCC, p.MNC) }

// NodeType classifies an E2 node, including disaggregated parts.
type NodeType uint8

// E2 node types.
const (
	NodeENB  NodeType = iota // 4G monolithic
	NodeGNB                  // 5G monolithic
	NodeCU                   // centralized unit
	NodeDU                   // distributed unit
	NodeCUUP                 // CU user plane
	NodeCUCP                 // CU control plane
)

var nodeTypeNames = [...]string{"eNB", "gNB", "CU", "DU", "CU-UP", "CU-CP"}

func (n NodeType) String() string {
	if int(n) < len(nodeTypeNames) {
		return nodeTypeNames[n]
	}
	return fmt.Sprintf("NodeType(%d)", uint8(n))
}

// GlobalE2NodeID globally identifies an E2 node. For disaggregated
// deployments, nodes that belong to the same logical base station share
// NodeID and differ in Type; the server's RAN management merges them.
type GlobalE2NodeID struct {
	PLMN   PLMN
	Type   NodeType
	NodeID uint64
}

func (g GlobalE2NodeID) String() string {
	return fmt.Sprintf("%s/%s/%d", g.PLMN, g.Type, g.NodeID)
}

// GlobalRICID identifies the RIC in setup responses.
type GlobalRICID struct {
	PLMN  PLMN
	RICID uint32 // 20 bits
}

// CauseType groups causes per E2AP's Cause CHOICE.
type CauseType uint8

// Cause groups.
const (
	CauseRICRequest CauseType = iota
	CauseRICService
	CauseTransport
	CauseProtocol
	CauseMisc
)

// Cause carries a failure reason.
type Cause struct {
	Type  CauseType
	Value uint8
}

func (c Cause) String() string { return fmt.Sprintf("cause(%d:%d)", c.Type, c.Value) }

// ActionType distinguishes the E2SM action classes (Appendix A.3).
type ActionType uint8

// RIC action types.
const (
	ActionReport ActionType = iota
	ActionInsert
	ActionPolicy
)

// Action is a requested RIC action within a subscription.
type Action struct {
	ID         uint8
	Type       ActionType
	Definition []byte // SM-encoded action definition
}

// ActionNotAdmitted reports a rejected action.
type ActionNotAdmitted struct {
	ID    uint8
	Cause Cause
}

// RANFunctionItem describes a RAN function exposed by an E2 node.
type RANFunctionItem struct {
	ID         uint16
	Revision   uint16
	OID        string // service model object identifier
	Definition []byte // SM-encoded RAN function definition
}

// RejectedFunction reports a RAN function the RIC refused.
type RejectedFunction struct {
	ID    uint16
	Cause Cause
}

// E2NodeComponentConfig carries per-component configuration for
// disaggregated nodes.
type E2NodeComponentConfig struct {
	InterfaceType uint8 // NG, Xn, E1, F1, W1, S1, X2
	ComponentID   string
	Request       []byte
	Response      []byte
}

// ConnectionItem describes a TNL association in connection updates.
type ConnectionItem struct {
	TNLAddress string // transport address, e.g. "host:port"
	Usage      uint8  // RIC service, support, both
}

// ConnectionFailedItem reports a TNL association that failed to set up.
type ConnectionFailedItem struct {
	Item  ConnectionItem
	Cause Cause
}

// IndicationClass distinguishes report and insert indications.
type IndicationClass uint8

// Indication classes.
const (
	IndicationReport IndicationClass = iota
	IndicationInsert
)

// --- Global procedures ---

// SetupRequest initiates the E2 association from node to RIC.
type SetupRequest struct {
	TransactionID uint8
	NodeID        GlobalE2NodeID
	RANFunctions  []RANFunctionItem
	Components    []E2NodeComponentConfig
}

func (*SetupRequest) MsgType() MessageType { return TypeSetupRequest }

// SetupResponse accepts the E2 association.
type SetupResponse struct {
	TransactionID uint8
	RICID         GlobalRICID
	Accepted      []uint16 // accepted RAN function IDs
	Rejected      []RejectedFunction
}

func (*SetupResponse) MsgType() MessageType { return TypeSetupResponse }

// SetupFailure rejects the E2 association.
type SetupFailure struct {
	TransactionID uint8
	Cause         Cause
	TimeToWaitMS  uint32
}

func (*SetupFailure) MsgType() MessageType { return TypeSetupFailure }

// ResetRequest asks the peer to drop all E2 state.
type ResetRequest struct {
	TransactionID uint8
	Cause         Cause
}

func (*ResetRequest) MsgType() MessageType { return TypeResetRequest }

// ResetResponse confirms a reset.
type ResetResponse struct {
	TransactionID uint8
}

func (*ResetResponse) MsgType() MessageType { return TypeResetResponse }

// ErrorIndication reports a protocol error outside a procedure. All
// fields are optional; zero values mean "not present" except HasRequestID.
type ErrorIndication struct {
	TransactionID uint8
	HasRequestID  bool
	RequestID     RequestID
	RANFunctionID uint16
	Cause         Cause
}

func (*ErrorIndication) MsgType() MessageType { return TypeErrorIndication }

// ServiceUpdate announces added/modified/deleted RAN functions.
type ServiceUpdate struct {
	TransactionID uint8
	Added         []RANFunctionItem
	Modified      []RANFunctionItem
	Deleted       []uint16
}

func (*ServiceUpdate) MsgType() MessageType { return TypeServiceUpdate }

// ServiceUpdateAck acknowledges a service update.
type ServiceUpdateAck struct {
	TransactionID uint8
	Accepted      []uint16
	Rejected      []RejectedFunction
}

func (*ServiceUpdateAck) MsgType() MessageType { return TypeServiceUpdateAck }

// ServiceUpdateFailure rejects a service update.
type ServiceUpdateFailure struct {
	TransactionID uint8
	Cause         Cause
	TimeToWaitMS  uint32
}

func (*ServiceUpdateFailure) MsgType() MessageType { return TypeServiceUpdateFailure }

// ServiceQuery asks the node to report its RAN functions.
type ServiceQuery struct {
	TransactionID uint8
	Accepted      []uint16 // functions the RIC currently accepts
}

func (*ServiceQuery) MsgType() MessageType { return TypeServiceQuery }

// NodeConfigUpdate announces component configuration changes.
type NodeConfigUpdate struct {
	TransactionID uint8
	Components    []E2NodeComponentConfig
}

func (*NodeConfigUpdate) MsgType() MessageType { return TypeNodeConfigUpdate }

// NodeConfigUpdateAck acknowledges a configuration update.
type NodeConfigUpdateAck struct {
	TransactionID uint8
	Accepted      []string // component IDs
}

func (*NodeConfigUpdateAck) MsgType() MessageType { return TypeNodeConfigUpdateAck }

// NodeConfigUpdateFailure rejects a configuration update.
type NodeConfigUpdateFailure struct {
	TransactionID uint8
	Cause         Cause
	TimeToWaitMS  uint32
}

func (*NodeConfigUpdateFailure) MsgType() MessageType { return TypeNodeConfigUpdateFailure }

// ConnectionUpdate manages additional TNL associations (multi-controller).
type ConnectionUpdate struct {
	TransactionID uint8
	Add           []ConnectionItem
	Remove        []ConnectionItem
	Modify        []ConnectionItem
}

func (*ConnectionUpdate) MsgType() MessageType { return TypeConnectionUpdate }

// ConnectionUpdateAck acknowledges a connection update.
type ConnectionUpdateAck struct {
	TransactionID uint8
	Setup         []ConnectionItem
	Failed        []ConnectionFailedItem
}

func (*ConnectionUpdateAck) MsgType() MessageType { return TypeConnectionUpdateAck }

// ConnectionUpdateFailure rejects a connection update.
type ConnectionUpdateFailure struct {
	TransactionID uint8
	Cause         Cause
	TimeToWaitMS  uint32
}

func (*ConnectionUpdateFailure) MsgType() MessageType { return TypeConnectionUpdateFailure }

// --- Functional procedures ---

// SubscriptionRequest subscribes to event triggers in a RAN function.
type SubscriptionRequest struct {
	RequestID     RequestID
	RANFunctionID uint16
	EventTrigger  []byte // SM-encoded event trigger definition
	Actions       []Action
	// Trace is the distributed-tracing context stamped at creation and
	// carried across the wire by both codecs; zero when not sampled.
	Trace trace.Context
}

func (*SubscriptionRequest) MsgType() MessageType { return TypeSubscriptionRequest }

// SubscriptionResponse admits (some) requested actions.
type SubscriptionResponse struct {
	RequestID     RequestID
	RANFunctionID uint16
	Admitted      []uint8
	NotAdmitted   []ActionNotAdmitted
}

func (*SubscriptionResponse) MsgType() MessageType { return TypeSubscriptionResponse }

// SubscriptionFailure rejects a subscription entirely.
type SubscriptionFailure struct {
	RequestID     RequestID
	RANFunctionID uint16
	Cause         Cause
}

func (*SubscriptionFailure) MsgType() MessageType { return TypeSubscriptionFailure }

// SubscriptionDeleteRequest removes a subscription.
type SubscriptionDeleteRequest struct {
	RequestID     RequestID
	RANFunctionID uint16
}

func (*SubscriptionDeleteRequest) MsgType() MessageType { return TypeSubscriptionDeleteRequest }

// SubscriptionDeleteResponse confirms a subscription removal.
type SubscriptionDeleteResponse struct {
	RequestID     RequestID
	RANFunctionID uint16
}

func (*SubscriptionDeleteResponse) MsgType() MessageType { return TypeSubscriptionDeleteResponse }

// SubscriptionDeleteFailure rejects a subscription removal.
type SubscriptionDeleteFailure struct {
	RequestID     RequestID
	RANFunctionID uint16
	Cause         Cause
}

func (*SubscriptionDeleteFailure) MsgType() MessageType { return TypeSubscriptionDeleteFailure }

// Indication carries SM report/insert data from node to RIC. Header and
// Payload are SM-encoded: E2 enforces the double encoding the paper
// evaluates in §5.2 (inner E2SM pass, outer E2AP pass).
type Indication struct {
	RequestID     RequestID
	RANFunctionID uint16
	ActionID      uint8
	SN            uint32 // sequence number
	Class         IndicationClass
	Header        []byte // SM-encoded indication header
	Payload       []byte // SM-encoded indication message
	CallProcessID []byte // optional
	// Trace is the distributed-tracing context stamped at creation and
	// carried across the wire by both codecs; zero when not sampled.
	Trace trace.Context
}

func (*Indication) MsgType() MessageType { return TypeIndication }

// ControlRequest triggers an SM-specific action in a RAN function.
type ControlRequest struct {
	RequestID     RequestID
	RANFunctionID uint16
	CallProcessID []byte // optional
	Header        []byte // SM-encoded control header
	Payload       []byte // SM-encoded control message
	AckRequested  bool
	// Trace is the distributed-tracing context stamped at creation and
	// carried across the wire by both codecs; zero when not sampled.
	Trace trace.Context
}

func (*ControlRequest) MsgType() MessageType { return TypeControlRequest }

// ControlAck confirms a control request.
type ControlAck struct {
	RequestID     RequestID
	RANFunctionID uint16
	CallProcessID []byte
	Outcome       []byte // SM-encoded control outcome
}

func (*ControlAck) MsgType() MessageType { return TypeControlAck }

// ControlFailure rejects a control request.
type ControlFailure struct {
	RequestID     RequestID
	RANFunctionID uint16
	CallProcessID []byte
	Cause         Cause
	Outcome       []byte
}

func (*ControlFailure) MsgType() MessageType { return TypeControlFailure }
