package nvs

import (
	"errors"
	"fmt"
)

// This file implements Appendix B of the FlexRIC paper: virtualizing NVS
// so multiple guest controllers can each manage sub-slices within an SLA-
// bounded share of the physical base station.
//
// An operator with SLA q (fraction of physical resources) sees a virtual
// base station with 100 % resources. Its virtual capacity slices are
// scaled by q on the way down:
//
//	c_phys = q · c_virt
//
// and its virtual rate slices keep their reserved rate but have the
// reference rate scaled *up* by 1/q:
//
//	r_ref,phys = r_ref,virt / q
//
// (the paper's example: a 5 Mbps slice over a 50 Mbps virtual reference in
// a q=0.5 network maps to 5 Mbps over 100 Mbps physical — a 5 % share).
// Because virtual admission control bounds Σ(c_virt + rsv/ref_virt) ≤ 1,
// the physical demand of the tenant is bounded by q: no controller can
// exceed its SLA, so tenants can never conflict.

// ErrBadSLA reports an SLA outside (0,1].
var ErrBadSLA = errors.New("nvs: SLA must be in (0,1]")

// Virtualizer maps one tenant's virtual slice configurations onto the
// physical resource space and back. It also remaps slice IDs into a
// disjoint per-tenant interval so tenants may choose IDs freely (paper:
// "virtual IDs in the range 0-9 into physical IDs in disjoint intervals").
type Virtualizer struct {
	// SLA is the tenant's physical resource share q.
	SLA float64
	// Tenant selects the disjoint physical ID interval.
	Tenant uint32
}

// IDSpan is the size of each tenant's physical slice-ID interval; virtual
// IDs must be < IDSpan.
const IDSpan = 10

// NewVirtualizer validates q and returns a Virtualizer for the tenant.
func NewVirtualizer(tenant uint32, q float64) (*Virtualizer, error) {
	if q <= 0 || q > 1 {
		return nil, fmt.Errorf("%w: %v", ErrBadSLA, q)
	}
	return &Virtualizer{SLA: q, Tenant: tenant}, nil
}

// PhysicalID maps a tenant-local virtual slice ID into the tenant's
// disjoint physical interval.
func (v *Virtualizer) PhysicalID(virtID uint32) (uint32, error) {
	if virtID >= IDSpan {
		return 0, fmt.Errorf("nvs: virtual slice id %d outside [0,%d)", virtID, IDSpan)
	}
	return v.Tenant*IDSpan + virtID, nil
}

// VirtualID inverts PhysicalID; ok is false when the physical ID does not
// belong to this tenant.
func (v *Virtualizer) VirtualID(physID uint32) (uint32, bool) {
	if physID/IDSpan != v.Tenant {
		return 0, false
	}
	return physID % IDSpan, true
}

// ToPhysical validates the tenant's virtual slice set against virtual
// admission control (Σ ≤ 1, i.e. Σ physical ≤ SLA) and returns the
// physical slice configurations.
func (v *Virtualizer) ToPhysical(virt []Config) ([]Config, error) {
	total := 0.0
	out := make([]Config, len(virt))
	for i, c := range virt {
		d, err := c.demand()
		if err != nil {
			return nil, err
		}
		total += d
		pid, err := v.PhysicalID(c.ID)
		if err != nil {
			return nil, err
		}
		p := c
		p.ID = pid
		switch c.Kind {
		case KindCapacity:
			p.Capacity = c.Capacity * v.SLA
		case KindRate:
			p.RateRef = c.RateRef / v.SLA
		}
		out[i] = p
	}
	const eps = 1e-9
	if total > 1+eps {
		return nil, fmt.Errorf("%w: tenant %d Σ=%.4f", ErrOverbooked, v.Tenant, total)
	}
	return out, nil
}

// ToVirtual maps physical slice configurations belonging to this tenant
// back into the tenant's virtual view; foreign slices are skipped.
func (v *Virtualizer) ToVirtual(phys []Config) []Config {
	var out []Config
	for _, c := range phys {
		vid, ok := v.VirtualID(c.ID)
		if !ok {
			continue
		}
		p := c
		p.ID = vid
		switch c.Kind {
		case KindCapacity:
			p.Capacity = c.Capacity / v.SLA
		case KindRate:
			p.RateRef = c.RateRef * v.SLA
		}
		out = append(out, p)
	}
	return out
}

// PhysicalDemand returns the total physical resource fraction a virtual
// slice set would occupy, which by construction is ≤ SLA when the set
// passes virtual admission control.
func (v *Virtualizer) PhysicalDemand(virt []Config) (float64, error) {
	phys, err := v.ToPhysical(virt)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, c := range phys {
		d, err := c.demand()
		if err != nil {
			return 0, err
		}
		total += d
	}
	return total, nil
}
