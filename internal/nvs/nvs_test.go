package nvs

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAdmissionControl(t *testing.T) {
	s := NewScheduler()
	ok := []Config{
		{ID: 1, Kind: KindCapacity, Capacity: 0.5},
		{ID: 2, Kind: KindRate, RateRsv: 10e6, RateRef: 20e6}, // 0.5
	}
	if err := s.Admit(ok); err != nil {
		t.Fatalf("exact fit must be admitted: %v", err)
	}
	over := []Config{
		{ID: 1, Kind: KindCapacity, Capacity: 0.6},
		{ID: 2, Kind: KindCapacity, Capacity: 0.5},
	}
	if err := s.Admit(over); err == nil {
		t.Fatal("overbooked set must be rejected")
	}
}

func TestAdmitRejectsInvalid(t *testing.T) {
	s := NewScheduler()
	cases := [][]Config{
		{{ID: 1, Kind: KindCapacity, Capacity: 0}},
		{{ID: 1, Kind: KindCapacity, Capacity: 1.5}},
		{{ID: 1, Kind: KindRate, RateRsv: 0, RateRef: 10}},
		{{ID: 1, Kind: KindRate, RateRsv: 20, RateRef: 10}},
		{{ID: 1, Kind: KindCapacity, Capacity: 0.3}, {ID: 1, Kind: KindCapacity, Capacity: 0.3}},
		{{ID: 1, Kind: SliceKind(9), Capacity: 0.3}},
	}
	for i, c := range cases {
		if err := s.Admit(c); err == nil {
			t.Fatalf("case %d: invalid config admitted", i)
		}
	}
}

// runShares drives the scheduler for n intervals with the given activity
// and returns the fraction of intervals granted to each slice.
func runShares(s *Scheduler, active map[uint32]bool, n int) map[uint32]float64 {
	counts := make(map[uint32]float64)
	for i := 0; i < n; i++ {
		id, ok := s.Pick(active)
		if ok {
			counts[id]++
		}
		s.Update(id, ok, 1e6)
	}
	for k := range counts {
		counts[k] /= float64(n)
	}
	return counts
}

func TestIsolationEqualSlices(t *testing.T) {
	// Two 50% capacity slices, both active: each must receive ~50%.
	s := NewScheduler()
	if err := s.Admit([]Config{
		{ID: 1, Kind: KindCapacity, Capacity: 0.5},
		{ID: 2, Kind: KindCapacity, Capacity: 0.5},
	}); err != nil {
		t.Fatal(err)
	}
	got := runShares(s, map[uint32]bool{1: true, 2: true}, 20000)
	for id, share := range got {
		if math.Abs(share-0.5) > 0.02 {
			t.Fatalf("slice %d share %.3f, want ~0.5", id, share)
		}
	}
}

func TestIsolationAsymmetricSlices(t *testing.T) {
	// Fig. 13a time instance 4: 66/34 split must hold under saturation.
	s := NewScheduler()
	if err := s.Admit([]Config{
		{ID: 1, Kind: KindCapacity, Capacity: 0.66},
		{ID: 2, Kind: KindCapacity, Capacity: 0.34},
	}); err != nil {
		t.Fatal(err)
	}
	got := runShares(s, map[uint32]bool{1: true, 2: true}, 30000)
	if math.Abs(got[1]-0.66) > 0.02 || math.Abs(got[2]-0.34) > 0.02 {
		t.Fatalf("shares %.3f/%.3f, want 0.66/0.34", got[1], got[2])
	}
}

func TestSharingWhenIdle(t *testing.T) {
	// Fig. 13b lower graph: when slice 2 idles, slice 1 (66%) takes all.
	s := NewScheduler()
	if err := s.Admit([]Config{
		{ID: 1, Kind: KindCapacity, Capacity: 0.66},
		{ID: 2, Kind: KindCapacity, Capacity: 0.34},
	}); err != nil {
		t.Fatal(err)
	}
	got := runShares(s, map[uint32]bool{1: true, 2: false}, 10000)
	if got[1] < 0.999 {
		t.Fatalf("active slice share %.3f, want ~1.0 (work conservation)", got[1])
	}
}

func TestNoSharingCapsSlice(t *testing.T) {
	// Fig. 13b upper graph: sharing disabled wastes the idle slice's
	// resources — the active slice stays at its reservation.
	s := NewScheduler()
	if err := s.Admit([]Config{
		{ID: 1, Kind: KindCapacity, Capacity: 0.66, NoSharing: true},
		{ID: 2, Kind: KindCapacity, Capacity: 0.34, NoSharing: true},
	}); err != nil {
		t.Fatal(err)
	}
	got := runShares(s, map[uint32]bool{1: true, 2: false}, 30000)
	if math.Abs(got[1]-0.66) > 0.03 {
		t.Fatalf("no-sharing slice got %.3f, want ~0.66", got[1])
	}
}

func TestRateSliceGuarantee(t *testing.T) {
	// A rate slice reserving 25% competes with a 75% capacity slice.
	s := NewScheduler()
	if err := s.Admit([]Config{
		{ID: 1, Kind: KindRate, RateRsv: 5e6, RateRef: 20e6}, // 25 %
		{ID: 2, Kind: KindCapacity, Capacity: 0.75},
	}); err != nil {
		t.Fatal(err)
	}
	// Each granted interval achieves the reference rate (20 Mbps), so the
	// rate slice needs 25% of intervals to meet its 5 Mbps reservation.
	active := map[uint32]bool{1: true, 2: true}
	grants := map[uint32]int{}
	const n = 40000
	for i := 0; i < n; i++ {
		id, ok := s.Pick(active)
		if ok {
			grants[id]++
		}
		s.Update(id, ok, 20e6)
	}
	share1 := float64(grants[1]) / n
	if math.Abs(share1-0.25) > 0.02 {
		t.Fatalf("rate slice share %.3f, want ~0.25", share1)
	}
}

func TestReconfigurationKeepsState(t *testing.T) {
	s := NewScheduler()
	if err := s.Admit([]Config{{ID: 1, Kind: KindCapacity, Capacity: 1.0}}); err != nil {
		t.Fatal(err)
	}
	runShares(s, map[uint32]bool{1: true}, 1000)
	before := s.AvgShare(1)
	if before == 0 {
		t.Fatal("expected nonzero average after activity")
	}
	// Reconfigure with the same slice plus a new one.
	if err := s.Admit([]Config{
		{ID: 1, Kind: KindCapacity, Capacity: 0.5},
		{ID: 2, Kind: KindCapacity, Capacity: 0.5},
	}); err != nil {
		t.Fatal(err)
	}
	if s.AvgShare(1) != before {
		t.Fatal("surviving slice state must be retained across Admit")
	}
	if s.AvgShare(2) != 0 {
		t.Fatal("new slice must start fresh")
	}
}

func TestPickNoActive(t *testing.T) {
	s := NewScheduler()
	if err := s.Admit([]Config{{ID: 1, Kind: KindCapacity, Capacity: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Pick(map[uint32]bool{}); ok {
		t.Fatal("no active slice must yield ok=false")
	}
}

// Property: for random admissible capacity-slice sets under saturation,
// every slice's achieved share is at least its reservation (within EWMA
// noise) — the NVS guarantee.
func TestQuickIsolationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		raw := make([]float64, n)
		sum := 0.0
		for i := range raw {
			raw[i] = 0.05 + rng.Float64()
			sum += raw[i]
		}
		cfgs := make([]Config, n)
		active := make(map[uint32]bool, n)
		for i := range raw {
			cfgs[i] = Config{ID: uint32(i), Kind: KindCapacity, Capacity: raw[i] / sum}
			active[uint32(i)] = true
		}
		s := NewScheduler()
		if err := s.Admit(cfgs); err != nil {
			return false
		}
		got := runShares(s, active, 30000)
		for i := range raw {
			want := cfgs[i].Capacity
			if got[uint32(i)] < want-0.04 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestVirtualizerIDMapping(t *testing.T) {
	v, err := NewVirtualizer(3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	pid, err := v.PhysicalID(7)
	if err != nil || pid != 37 {
		t.Fatalf("PhysicalID: %d %v", pid, err)
	}
	if _, err := v.PhysicalID(IDSpan); err == nil {
		t.Fatal("virtual id out of range must fail")
	}
	vid, ok := v.VirtualID(37)
	if !ok || vid != 7 {
		t.Fatalf("VirtualID: %d %v", vid, ok)
	}
	if _, ok := v.VirtualID(12); ok {
		t.Fatal("foreign physical id must not map")
	}
}

func TestVirtualizerPaperExample(t *testing.T) {
	// Appendix B example: 100 Mbps BS shared 50/50; tenant creates a
	// 5 Mbps slice over 50 Mbps virtual reference (10% virtual) → maps to
	// 5 Mbps over 100 Mbps physical (5% = 10% of the 50% SLA).
	v, err := NewVirtualizer(0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	phys, err := v.ToPhysical([]Config{{ID: 1, Kind: KindRate, RateRsv: 5e6, RateRef: 50e6}})
	if err != nil {
		t.Fatal(err)
	}
	if phys[0].RateRsv != 5e6 {
		t.Fatalf("reserved rate must pass through: %v", phys[0].RateRsv)
	}
	if phys[0].RateRef != 100e6 {
		t.Fatalf("reference rate must scale to 100 Mbps: %v", phys[0].RateRef)
	}
	d, err := v.PhysicalDemand([]Config{{ID: 1, Kind: KindRate, RateRsv: 5e6, RateRef: 50e6}})
	if err != nil || math.Abs(d-0.05) > 1e-12 {
		t.Fatalf("physical demand %v, want 0.05", d)
	}
}

func TestVirtualizerSLAEnforcement(t *testing.T) {
	v, _ := NewVirtualizer(1, 0.5)
	// 100% virtual → 50% physical: allowed.
	full := []Config{{ID: 0, Kind: KindCapacity, Capacity: 1.0}}
	phys, err := v.ToPhysical(full)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(phys[0].Capacity-0.5) > 1e-12 {
		t.Fatalf("physical capacity %v, want 0.5", phys[0].Capacity)
	}
	// 120% virtual: rejected, tenant can never exceed its SLA.
	over := []Config{
		{ID: 0, Kind: KindCapacity, Capacity: 0.7},
		{ID: 1, Kind: KindCapacity, Capacity: 0.5},
	}
	if _, err := v.ToPhysical(over); err == nil {
		t.Fatal("virtual overbooking must be rejected")
	}
}

func TestVirtualizerRoundTrip(t *testing.T) {
	v, _ := NewVirtualizer(2, 0.25)
	virt := []Config{
		{ID: 1, Kind: KindCapacity, Capacity: 0.6},
		{ID: 2, Kind: KindRate, RateRsv: 1e6, RateRef: 10e6},
	}
	phys, err := v.ToPhysical(virt)
	if err != nil {
		t.Fatal(err)
	}
	back := v.ToVirtual(phys)
	if len(back) != len(virt) {
		t.Fatalf("round-trip lost slices: %d", len(back))
	}
	for i := range virt {
		if back[i].ID != virt[i].ID {
			t.Fatalf("id %d != %d", back[i].ID, virt[i].ID)
		}
		if math.Abs(back[i].Capacity-virt[i].Capacity) > 1e-12 {
			t.Fatalf("capacity %v != %v", back[i].Capacity, virt[i].Capacity)
		}
		if virt[i].Kind == KindRate && math.Abs(back[i].RateRef-virt[i].RateRef) > 1e-6 {
			t.Fatalf("rate ref %v != %v", back[i].RateRef, virt[i].RateRef)
		}
	}
	// Foreign slices are invisible.
	if got := v.ToVirtual([]Config{{ID: 5, Kind: KindCapacity, Capacity: 0.1}}); got != nil {
		t.Fatal("foreign slice leaked into virtual view")
	}
}

func TestVirtualizerBadSLA(t *testing.T) {
	for _, q := range []float64{0, -0.5, 1.5} {
		if _, err := NewVirtualizer(0, q); err == nil {
			t.Fatalf("SLA %v must be rejected", q)
		}
	}
}

// Property: two tenants with SLAs q and 1-q can never jointly overbook
// the physical base station if both pass virtual admission control.
func TestQuickTenantsNeverConflict(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := 0.1 + 0.8*rng.Float64()
		vA, _ := NewVirtualizer(0, q)
		vB, _ := NewVirtualizer(1, 1-q)
		mkSet := func(rng *rand.Rand) []Config {
			n := 1 + rng.Intn(3)
			cfgs := make([]Config, n)
			rem := 1.0
			for i := 0; i < n; i++ {
				c := rem * (0.2 + 0.7*rng.Float64())
				if i == n-1 {
					c = rem * 0.9
				}
				cfgs[i] = Config{ID: uint32(i), Kind: KindCapacity, Capacity: c}
				rem -= c
			}
			return cfgs
		}
		dA, err := vA.PhysicalDemand(mkSet(rng))
		if err != nil {
			return false
		}
		dB, err := vB.PhysicalDemand(mkSet(rng))
		if err != nil {
			return false
		}
		return dA+dB <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPickUpdate(b *testing.B) {
	s := NewScheduler()
	cfgs := make([]Config, 8)
	active := make(map[uint32]bool, 8)
	for i := range cfgs {
		cfgs[i] = Config{ID: uint32(i), Kind: KindCapacity, Capacity: 1.0 / 8}
		active[uint32(i)] = true
	}
	if err := s.Admit(cfgs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id, ok := s.Pick(active)
		s.Update(id, ok, 1e6)
	}
}
