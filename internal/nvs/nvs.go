// Package nvs implements the NVS wireless-resource virtualization
// algorithm (Kokku et al., IEEE/ACM ToN 2012 [26]) used by FlexRIC's
// slicing control service model, plus the Appendix-B virtualization
// arithmetic that lets recursive controllers expose scaled virtual
// resource shares to tenants.
//
// NVS defines two slice types: capacity slices, reserving a fraction c of
// base-station resources, and rate slices, reserving a rate r_rsv against
// a reference rate r_ref. Admission control requires
//
//	Σ c_s + Σ r_rsv,s / r_ref,s ≤ 1 .
//
// Each scheduling interval, NVS grants the slot to the slice with the
// largest ratio of reserved share to exponentially-averaged received
// share, which simultaneously guarantees reservations (isolation) and
// redistributes unused resources (work conservation / sharing) — the two
// properties demonstrated in Fig. 13.
package nvs

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// SliceKind distinguishes NVS slice types.
type SliceKind uint8

// NVS slice kinds.
const (
	// KindCapacity reserves a fraction of base-station resources.
	KindCapacity SliceKind = iota
	// KindRate reserves a rate (bits/s) against a reference rate.
	KindRate
)

// Config describes one NVS slice.
type Config struct {
	ID   uint32
	Kind SliceKind
	// Capacity is the reserved resource share in (0,1] for KindCapacity.
	Capacity float64
	// RateRsv and RateRef are the reserved and reference rates in bits/s
	// for KindRate.
	RateRsv float64
	RateRef float64
	// Share: when false the slice also receives surplus resources left
	// idle by other slices (work conservation); when true it is limited
	// to its reservation even if the spectrum would otherwise idle.
	// The NVS default is sharing enabled (Share=false means "do not
	// prevent sharing"); Fig. 13b contrasts both.
	NoSharing bool
	// UESched names the per-slice user scheduler ("pf", "rr"); consumed
	// by the MAC integration, opaque here.
	UESched string
}

// demand returns the admission-control weight of the slice.
func (c Config) demand() (float64, error) {
	switch c.Kind {
	case KindCapacity:
		if c.Capacity <= 0 || c.Capacity > 1 {
			return 0, fmt.Errorf("nvs: slice %d: capacity %v outside (0,1]", c.ID, c.Capacity)
		}
		return c.Capacity, nil
	case KindRate:
		if c.RateRsv <= 0 || c.RateRef <= 0 {
			return 0, fmt.Errorf("nvs: slice %d: rates must be positive", c.ID)
		}
		if c.RateRsv > c.RateRef {
			return 0, fmt.Errorf("nvs: slice %d: reserved rate exceeds reference", c.ID)
		}
		return c.RateRsv / c.RateRef, nil
	default:
		return 0, fmt.Errorf("nvs: slice %d: unknown kind %d", c.ID, c.Kind)
	}
}

// ErrOverbooked reports that admission control rejected a configuration.
var ErrOverbooked = errors.New("nvs: total reservations exceed capacity")

// movingAvgWindow is the effective averaging horizon (in scheduling
// intervals) of the exponential moving averages; NVS suggests averaging
// over a window much longer than one interval.
const movingAvgWindow = 256.0

const emaAlpha = 1.0 / movingAvgWindow

type sliceState struct {
	cfg Config
	// avgShare is the EWMA of the fraction of intervals granted.
	avgShare float64
	// avgRate is the EWMA of the achieved rate (bits/s), for rate slices.
	avgRate float64
	active  bool // has traffic pending this interval
}

// Scheduler is an NVS slice scheduler. It decides, per scheduling
// interval, which slice owns the interval's resources. Safe for
// concurrent use.
type Scheduler struct {
	mu     sync.Mutex
	slices map[uint32]*sliceState
	order  []uint32 // deterministic iteration order
}

// NewScheduler returns an empty NVS scheduler.
func NewScheduler() *Scheduler {
	return &Scheduler{slices: make(map[uint32]*sliceState)}
}

// Admit validates cfgs as a complete slice set and installs it,
// replacing the previous configuration. State of surviving slice IDs is
// retained so reconfiguration does not reset averages.
func (s *Scheduler) Admit(cfgs []Config) error {
	total := 0.0
	seen := make(map[uint32]bool, len(cfgs))
	for _, c := range cfgs {
		if seen[c.ID] {
			return fmt.Errorf("nvs: duplicate slice id %d", c.ID)
		}
		seen[c.ID] = true
		d, err := c.demand()
		if err != nil {
			return err
		}
		total += d
	}
	const eps = 1e-9
	if total > 1+eps {
		return fmt.Errorf("%w: Σ=%.4f", ErrOverbooked, total)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	next := make(map[uint32]*sliceState, len(cfgs))
	order := make([]uint32, 0, len(cfgs))
	for _, c := range cfgs {
		st := s.slices[c.ID]
		if st == nil {
			st = &sliceState{}
		}
		st.cfg = c
		next[c.ID] = st
		order = append(order, c.ID)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	s.slices = next
	s.order = order
	return nil
}

// Slices returns the current slice configurations in ID order.
func (s *Scheduler) Slices() []Config {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Config, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.slices[id].cfg)
	}
	return out
}

// Pick selects the slice that owns the next scheduling interval.
// active[id] reports whether a slice has pending traffic; inactive slices
// are skipped (their averages still decay, which is what redistributes
// their resources). ok is false when no active slice exists.
//
// The caller must afterwards call Update with the selected slice and the
// rate it achieved in the interval.
func (s *Scheduler) Pick(active map[uint32]bool) (id uint32, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	best := -1.0
	for _, sid := range s.order {
		st := s.slices[sid]
		st.active = active[sid]
		if !st.active {
			continue
		}
		if st.cfg.NoSharing && st.avgShare >= s.reservedShareLocked(st) {
			// Slice at (or above) its reservation and sharing disabled:
			// it may not take surplus.
			continue
		}
		w := s.weightLocked(st)
		if w > best {
			best = w
			id = sid
			ok = true
		}
	}
	return id, ok
}

// reservedShareLocked is the slice's admitted resource fraction.
func (s *Scheduler) reservedShareLocked(st *sliceState) float64 {
	if st.cfg.Kind == KindCapacity {
		return st.cfg.Capacity
	}
	return st.cfg.RateRsv / st.cfg.RateRef
}

// weightLocked computes the NVS selection weight: reserved over received.
func (s *Scheduler) weightLocked(st *sliceState) float64 {
	const floor = 1e-9
	switch st.cfg.Kind {
	case KindRate:
		return st.cfg.RateRsv / (st.avgRate + floor)
	default:
		return st.cfg.Capacity / (st.avgShare + floor)
	}
}

// Update records the outcome of one scheduling interval: selected is the
// slice granted the interval (or none if !any), and achievedRate its
// realized rate in bits/s over the interval.
func (s *Scheduler) Update(selected uint32, any bool, achievedRate float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sid := range s.order {
		st := s.slices[sid]
		granted := 0.0
		rate := 0.0
		if any && sid == selected {
			granted = 1.0
			rate = achievedRate
		}
		st.avgShare = (1-emaAlpha)*st.avgShare + emaAlpha*granted
		st.avgRate = (1-emaAlpha)*st.avgRate + emaAlpha*rate
	}
}

// AvgShare returns the EWMA share granted to slice id (0 if unknown).
func (s *Scheduler) AvgShare(id uint32) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.slices[id]; ok {
		return st.avgShare
	}
	return 0
}
