// Package core is the FlexRIC SDK facade: the paper's primary
// contribution is the pair of libraries — agent and server — plus the
// E2 protocol abstraction that lets specialized controllers be composed
// from iApps (§3, Fig. 1). This package re-exports the SDK's entry
// points so downstream users assemble agents, controllers and service
// models from a single import; the implementations live in the
// subsystem packages (internal/agent, internal/server, internal/e2ap,
// internal/sm).
package core

import (
	"flexric/internal/agent"
	"flexric/internal/e2ap"
	"flexric/internal/server"
	"flexric/internal/transport"
)

// The SDK's two libraries (Fig. 1).
type (
	// Agent extends a base station with E2 connectivity (§4.1).
	Agent = agent.Agent
	// AgentConfig parameterizes an Agent.
	AgentConfig = agent.Config
	// Server is the controller core that multiplexes agents and
	// dispatches messages to iApps (§4.2).
	Server = server.Server
	// ServerConfig parameterizes a Server.
	ServerConfig = server.Config
)

// The generic RAN function API (§4.1.1) and its controller-side dual.
type (
	// RANFunction is implemented by controllable RAN functionality.
	RANFunction = agent.RANFunction
	// IndicationSender lets RAN functions emit reports/inserts.
	IndicationSender = agent.IndicationSender
	// ControllerID identifies one of an agent's controllers (§4.1.2).
	ControllerID = agent.ControllerID
	// SubscriptionCallbacks deliver subscription events to iApps.
	SubscriptionCallbacks = server.SubscriptionCallbacks
	// IndicationEvent is one dispatched indication.
	IndicationEvent = server.IndicationEvent
	// AgentID identifies a connected agent within a server.
	AgentID = server.AgentID
	// AgentInfo describes a connected agent.
	AgentInfo = server.AgentInfo
	// RANEntity is a (possibly disaggregated) base station in the RAN
	// database.
	RANEntity = server.RANEntity
)

// The E2 protocol abstraction (§4.3): intermediate representation plus
// pluggable encodings and transports.
type (
	// Codec translates the E2AP IR to and from a wire format.
	Codec = e2ap.Codec
	// Envelope is the cheaply-decoded routing view of a message.
	Envelope = e2ap.Envelope
	// Scheme names an E2AP encoding scheme.
	Scheme = e2ap.Scheme
	// TransportKind names a wire transport.
	TransportKind = transport.Kind
)

// Shipped encoding schemes and transports.
const (
	// SchemeASN is the O-RAN-standard ASN.1-PER-style encoding.
	SchemeASN = e2ap.SchemeASN
	// SchemeFB is the FlatBuffers-style zero-copy encoding.
	SchemeFB = e2ap.SchemeFB
	// TransportSCTPish is the SCTP-like framed transport.
	TransportSCTPish = transport.KindSCTPish
	// TransportPipe is the in-process transport for co-located
	// deployments.
	TransportPipe = transport.KindPipe
)

// NewAgent returns an agent library instance for a base station.
func NewAgent(cfg AgentConfig) *Agent { return agent.New(cfg) }

// NewServer returns a server library instance for a controller.
func NewServer(cfg ServerConfig) *Server { return server.New(cfg) }

// NewCodec returns a codec instance for the scheme.
func NewCodec(s Scheme) (Codec, error) { return e2ap.NewCodec(s) }
