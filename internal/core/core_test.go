package core_test

import (
	"testing"
	"time"

	"flexric/internal/core"
	"flexric/internal/e2ap"
	"flexric/internal/sm"
)

// The facade must be sufficient to assemble a working deployment.
func TestFacadeAssemblesDeployment(t *testing.T) {
	srv := core.NewServer(core.ServerConfig{Scheme: core.SchemeFB, Transport: core.TransportPipe})
	addr, err := srv.Start("core-facade")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	a := core.NewAgent(core.AgentConfig{
		NodeID:    e2ap.GlobalE2NodeID{PLMN: e2ap.PLMN{MCC: 1, MNC: 1}, Type: e2ap.NodeGNB, NodeID: 1},
		Scheme:    core.SchemeFB,
		Transport: core.TransportPipe,
	})
	if err := a.RegisterFunction(sm.NewHW()); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Connect(addr); err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && len(srv.Agents()) == 0 {
		time.Sleep(2 * time.Millisecond)
	}
	if len(srv.Agents()) != 1 {
		t.Fatal("agent did not connect through the facade types")
	}
	if !srv.Agents()[0].HasFunction(sm.IDHelloWorld) {
		t.Fatal("function not announced")
	}
}

func TestFacadeCodec(t *testing.T) {
	for _, s := range []core.Scheme{core.SchemeASN, core.SchemeFB} {
		c, err := core.NewCodec(s)
		if err != nil {
			t.Fatal(err)
		}
		wire, err := c.Encode(&e2ap.ResetRequest{TransactionID: 5})
		if err != nil {
			t.Fatal(err)
		}
		env, err := c.Envelope(append([]byte(nil), wire...))
		if err != nil {
			t.Fatal(err)
		}
		if env.Type() != e2ap.TypeResetRequest {
			t.Fatalf("%s: %v", s, env.Type())
		}
	}
	if _, err := core.NewCodec(core.Scheme("nope")); err == nil {
		t.Fatal("unknown scheme must fail")
	}
}
