package ran

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"
)

// The scale tier: benchmarks the sharded/active-set core against the
// frozen pre-change per-UE loop (baseline.go) on a cells × UEs fleet
// with a configurable idle fraction. scripts/bench.sh drives the full
// footprint (SCALE_CELLS=1000 SCALE_UES_PER_CELL=1000, i.e. 1M UEs on
// one box); the defaults keep `go test -bench` runs small.
//
//	SCALE_CELLS         cells in the fleet            (default 4)
//	SCALE_UES_PER_CELL  UEs attached per cell         (default 1000)
//	SCALE_IDLE_PCT      % of UEs with sparse traffic  (default 90)
//	SCALE_SHARDS        UE shards per cell            (default 4)
//	SCALE_IDLE_MS       CBR period of the idle cohort (default 200)
//
// Busy UEs run continuously saturating flows; "idle" UEs send one small
// CBR packet every SCALE_IDLE_MS with staggered phases, so at any slot
// well over SCALE_IDLE_PCT% of the fleet is parked.

func scaleEnv(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

type scaleCfg struct {
	cells, uesPerCell, idlePct, shards, idleMS int
}

func scaleCfgFromEnv() scaleCfg {
	return scaleCfg{
		cells:      scaleEnv("SCALE_CELLS", 4),
		uesPerCell: scaleEnv("SCALE_UES_PER_CELL", 1000),
		idlePct:    scaleEnv("SCALE_IDLE_PCT", 90),
		shards:     scaleEnv("SCALE_SHARDS", 4),
		idleMS:     scaleEnv("SCALE_IDLE_MS", 200),
	}
}

// scaleRLCBufBytes sizes the per-UE RLC buffer for scale fleets. The
// package default (3 MB) models one well-provisioned DRB; at a million
// UEs that is neither deployable (gigabytes of queue per cell) nor
// measurable (the busy cohort needs >1000 warm-up slots just to fill
// its buffers, so a bench window measures the fill transient instead of
// drop-tail steady state). 256 KB keeps the same bufferbloat dynamics
// at scale-realistic memory cost, for both engines alike.
const scaleRLCBufBytes = 256 << 10

// scaleSources builds the traffic mix for UE i of a cell; identical for
// the sharded and baseline fleets.
func scaleSources(cfg scaleCfg, i int) []TrafficSource {
	flow := FiveTuple{DstIP: uint32(i + 1), DstPort: 5001, Proto: ProtoUDP}
	if i*100 < cfg.uesPerCell*(100-cfg.idlePct) { // busy cohort
		return []TrafficSource{&Saturating{Flow: flow, PktSize: 1500, RateBytesPerMS: 3000}}
	}
	return []TrafficSource{&CBR{Flow: flow, Size: 172,
		IntervalMS: int64(cfg.idleMS), StartMS: int64(i % cfg.idleMS)}}
}

func heapAllocMB() float64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return float64(m.HeapAlloc) / (1 << 20)
}

// Fleets are cached across the benchmark framework's b.N escalations:
// building a million-UE fleet is far more expensive than stepping it.
var shardedScale struct {
	key        string
	fleet      *Fleet
	total      int
	bytesPerUE float64
}

func shardedScaleFleet(b *testing.B, cfg scaleCfg) *Fleet {
	key := fmt.Sprintf("%+v", cfg)
	if shardedScale.key == key {
		return shardedScale.fleet
	}
	if shardedScale.fleet != nil {
		shardedScale.fleet.Close()
		shardedScale.fleet = nil
	}
	before := heapAllocMB()
	cells := make([]*Cell, cfg.cells)
	for ci := range cells {
		c, err := NewCellWithOptions(PHYConfig{RAT: RAT4G, NumRB: 25, Band: 7},
			CellOptions{Shards: cfg.shards})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < cfg.uesPerCell; i++ {
			u, err := c.Attach(uint16(i+1), "", "208.95", 20)
			if err != nil {
				b.Fatal(err)
			}
			for _, s := range scaleSources(cfg, i) {
				u.AddSource(s)
			}
			u.RLC().MaxBytes = scaleRLCBufBytes
		}
		cells[ci] = c
	}
	f := NewFleet(cells, 0, nil)
	f.Step(2 * cfg.idleMS) // warm up: backlogs filled, wake heap populated
	total := cfg.cells * cfg.uesPerCell
	shardedScale.key, shardedScale.fleet, shardedScale.total = key, f, total
	shardedScale.bytesPerUE = (heapAllocMB() - before) * (1 << 20) / float64(total)
	return f
}

func BenchmarkScaleShardedStep(b *testing.B) {
	cfg := scaleCfgFromEnv()
	f := shardedScaleFleet(b, cfg)
	f.ResetSlotStats()
	b.ResetTimer()
	f.Step(b.N)
	b.StopTimer()
	sec := b.Elapsed().Seconds()
	if sec > 0 {
		b.ReportMetric(float64(shardedScale.total)*float64(b.N)/sec, "ue_slots/s")
	}
	_, p99, _ := f.SlotLatencyNS()
	b.ReportMetric(float64(p99), "p99_slot_ns")
	b.ReportMetric(shardedScale.bytesPerUE, "bytes/ue")
}

var baselineScale struct {
	key   string
	cells []*baselineCell
	total int
}

func baselineScaleCells(b *testing.B, cfg scaleCfg) []*baselineCell {
	key := fmt.Sprintf("%+v", cfg)
	if baselineScale.key == key {
		return baselineScale.cells
	}
	cells := make([]*baselineCell, cfg.cells)
	for ci := range cells {
		c, err := newBaselineCell(PHYConfig{RAT: RAT4G, NumRB: 25, Band: 7})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < cfg.uesPerCell; i++ {
			u := c.attach(uint16(i+1), 20)
			for _, s := range scaleSources(cfg, i) {
				u.addSource(s)
			}
			u.rlc.MaxBytes = scaleRLCBufBytes
		}
		cells[ci] = c
	}
	for _, c := range cells {
		c.step(2 * cfg.idleMS)
	}
	baselineScale.key, baselineScale.cells = key, cells
	baselineScale.total = cfg.cells * cfg.uesPerCell
	return cells
}

// BenchmarkScaleBaselineStep is the pre-change per-UE loop on the same
// footprint — the denominator of the scale tier's speedup claim.
func BenchmarkScaleBaselineStep(b *testing.B) {
	cfg := scaleCfgFromEnv()
	cells := baselineScaleCells(b, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range cells {
			c.step(1)
		}
	}
	b.StopTimer()
	sec := b.Elapsed().Seconds()
	if sec > 0 {
		b.ReportMetric(float64(baselineScale.total)*float64(b.N)/sec, "ue_slots/s")
	}
}

// TestScaleSmoke is the CI-footprint scale check wired into verify.sh:
// 4 cells × 10k UEs at ≥95% idle must step in real time-ish and, above
// all, must not allocate per parked UE — the gate is allocations per
// UE-slot across the whole fleet (workload packet emission included).
func TestScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const (
		nCells  = 4
		nUEs    = 10000
		slots   = 400
		maxAPUS = 0.05 // allocs per UE-slot
	)
	cells := make([]*Cell, nCells)
	for ci := range cells {
		c, err := NewCellWithOptions(PHYConfig{RAT: RAT4G, NumRB: 25, Band: 7},
			CellOptions{Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < nUEs; i++ {
			u, err := c.Attach(uint16(i+1), "", "208.95", 20)
			if err != nil {
				t.Fatal(err)
			}
			switch {
			case i < nUEs/100: // 1% saturating
				u.AddSource(&Saturating{Flow: FiveTuple{DstIP: uint32(i + 1)},
					PktSize: 1500, RateBytesPerMS: 3000})
			case i < nUEs/20: // 4% sparse CBR
				u.AddSource(&CBR{Flow: FiveTuple{DstIP: uint32(i + 1)}, Size: 172,
					IntervalMS: 50, StartMS: int64(i % 50)})
			} // 95% source-less
			u.RLC().MaxBytes = scaleRLCBufBytes
		}
		cells[ci] = c
	}
	f := NewFleet(cells, 0, nil)
	defer f.Close()
	f.Step(200) // warm-up: drop-tail steady state and populated wake heaps

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	f.Step(slots)
	runtime.ReadMemStats(&after)

	ueSlots := float64(nCells*nUEs) * slots
	apus := float64(after.Mallocs-before.Mallocs) / ueSlots
	if apus > maxAPUS {
		t.Fatalf("allocs/UE-slot %.4f exceeds gate %.2f (%d mallocs over %d UE-slots)",
			apus, maxAPUS, after.Mallocs-before.Mallocs, int64(ueSlots))
	}
	for i, c := range cells {
		if c.TotalTxBits() == 0 {
			t.Fatalf("cell %d delivered nothing", i)
		}
	}
	_, p99, _ := f.SlotLatencyNS()
	t.Logf("scale smoke: %d UEs, %.4f allocs/UE-slot, p99 slot %.2fms",
		nCells*nUEs, apus, float64(p99)/1e6)
}
