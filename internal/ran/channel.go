package ran

import (
	"fmt"
	"math/rand"
)

// ChannelProcess models radio-quality variation over time: each TTI it
// yields the UE's current MCS. The paper's evaluation pins MCS (28 on
// LTE, 20 on NR) for reproducibility, but the TC experiment's motivation
// — "the RLC sublayer is provided with large buffers to absorb the
// brusque changes that the radio channel may suffer" — needs a varying
// channel, which this interface provides.
type ChannelProcess interface {
	// NextMCS advances the process by one TTI.
	NextMCS(now int64) int
}

// FixedChannel pins the MCS (the evaluation default).
type FixedChannel int

// NextMCS implements ChannelProcess.
func (f FixedChannel) NextMCS(int64) int { return int(f) }

// RandomWalkChannel is a bounded random walk over MCS indices,
// deterministic for a given seed: a simple fading model with tunable
// coherence (steps happen every CoherenceMS).
type RandomWalkChannel struct {
	Min, Max int
	// CoherenceMS is the interval between walk steps (default 10 ms).
	CoherenceMS int64
	Seed        int64

	rng     *rand.Rand
	current int
	nextAt  int64
}

// NextMCS implements ChannelProcess.
func (w *RandomWalkChannel) NextMCS(now int64) int {
	if w.rng == nil {
		w.rng = rand.New(rand.NewSource(w.Seed))
		if w.Max <= 0 || w.Max > MaxMCS {
			w.Max = MaxMCS
		}
		if w.Min < 0 {
			w.Min = 0
		}
		if w.Min > w.Max {
			w.Min = w.Max
		}
		w.current = (w.Min + w.Max) / 2
		if w.CoherenceMS <= 0 {
			w.CoherenceMS = 10
		}
		w.nextAt = now
	}
	for now >= w.nextAt {
		w.nextAt += w.CoherenceMS
		switch w.rng.Intn(3) {
		case 0:
			if w.current > w.Min {
				w.current--
			}
		case 1:
			if w.current < w.Max {
				w.current++
			}
		}
	}
	return w.current
}

// SetChannel installs a channel process for the UE under the cell lock.
// A nil process freezes the UE at its current MCS.
func (c *Cell) SetChannel(rnti uint16, proc ChannelProcess) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ue, ok := c.byID[rnti]
	if !ok {
		return fmt.Errorf("ran: no UE with RNTI %d", rnti)
	}
	ue.channel = proc
	return nil
}
