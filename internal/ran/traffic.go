package ran

import "math"

// TrafficSource generates downlink packets for one UE. Tick is called
// once per TTI with the current simulator time; emit injects a packet
// into the UE's bearer path.
//
// Sources are only ticked while their UE is in the cell's active set. A
// source that also implements Waker tells the cell when it next needs a
// tick, letting the UE park in between (idle UEs cost nothing per TTI);
// sources without Waker are assumed due every TTI, which keeps their UE
// permanently active.
type TrafficSource interface {
	Tick(now int64, emit func(*Packet))
}

// Waker is the optional scheduling contract of a TrafficSource: given
// that Tick(now) just ran, NextWakeup returns the next time (> now) at
// which Tick would do work, or -1 if it never will again. Answers <= now
// are treated as now+1.
type Waker interface {
	NextWakeup(now int64) int64
}

// CBR is a constant-bit-rate source: one packet of Size bytes every
// IntervalMS. With Size=172 and IntervalMS=20 it reproduces the paper's
// G.711 VoIP flow (irtt, 64 kbps). It records per-packet round-trip
// times assuming a fixed uplink return delay, like irtt does.
type CBR struct {
	Flow       FiveTuple
	Size       int
	IntervalMS int64
	// StartMS delays the first packet.
	StartMS int64
	// ReturnDelayMS models the uplink (reply) path; irtt echoes are
	// small and skip the bloated downlink buffer.
	ReturnDelayMS int64

	seq     uint64
	sent    uint64
	recvd   uint64
	dropped uint64
	rtts    []int64

	// Per-packet callbacks, allocated once (packets are per-TTI hot).
	deliverFn func(p *Packet, dnow int64)
	dropFn    func(p *Packet, dnow int64)
}

// Tick implements TrafficSource.
func (c *CBR) Tick(now int64, emit func(*Packet)) {
	if now < c.StartMS || c.IntervalMS <= 0 {
		return
	}
	if (now-c.StartMS)%c.IntervalMS != 0 {
		return
	}
	if c.deliverFn == nil {
		c.deliverFn = func(p *Packet, dnow int64) {
			c.recvd++
			c.rtts = append(c.rtts, (dnow-p.Sent)+c.ReturnDelayMS)
		}
		c.dropFn = func(*Packet, int64) { c.dropped++ }
	}
	c.seq++
	c.sent++
	p := newPacket()
	p.Flow, p.Size, p.Seq, p.Sent = c.Flow, c.Size, c.seq, now
	p.onDeliver = c.deliverFn
	p.onDrop = c.dropFn
	emit(p)
}

// NextWakeup implements Waker: the next grid point of the CBR schedule.
func (c *CBR) NextWakeup(now int64) int64 {
	if c.IntervalMS <= 0 {
		return -1
	}
	if now < c.StartMS {
		return c.StartMS
	}
	return c.StartMS + ((now-c.StartMS)/c.IntervalMS+1)*c.IntervalMS
}

// RTTs returns the recorded round-trip samples in ms.
func (c *CBR) RTTs() []int64 { return c.rtts }

// Counters returns sent/received/dropped packet counts.
func (c *CBR) Counters() (sent, recvd, dropped uint64) { return c.sent, c.recvd, c.dropped }

// Saturating is an iperf-UDP-like source that emits RateBytesPerMS every
// TTI, enough to exhaust any slice share when RateBytesPerMS exceeds the
// cell drain rate.
type Saturating struct {
	Flow           FiveTuple
	PktSize        int
	RateBytesPerMS int
	StartMS        int64
	StopMS         int64 // 0 = never

	seq     uint64
	carry   int
	dropped uint64
	dropFn  func(p *Packet, dnow int64)
}

// Tick implements TrafficSource.
func (s *Saturating) Tick(now int64, emit func(*Packet)) {
	if now < s.StartMS || (s.StopMS > 0 && now >= s.StopMS) {
		return
	}
	if s.dropFn == nil {
		s.dropFn = func(*Packet, int64) { s.dropped++ }
	}
	size := s.PktSize
	if size <= 0 {
		size = 1500
	}
	budget := s.RateBytesPerMS + s.carry
	for budget >= size {
		s.seq++
		p := newPacket()
		p.Flow, p.Size, p.Seq, p.Sent = s.Flow, size, s.seq, now
		p.onDrop = s.dropFn
		emit(p)
		budget -= size
	}
	s.carry = budget
}

// NextWakeup implements Waker: due every TTI inside [StartMS, StopMS).
func (s *Saturating) NextWakeup(now int64) int64 {
	if s.StopMS > 0 && now+1 >= s.StopMS {
		return -1
	}
	if now < s.StartMS {
		return s.StartMS
	}
	return now + 1
}

// Dropped returns packets lost to queue overflow.
func (s *Saturating) Dropped() uint64 { return s.dropped }

// CubicFlow models a TCP Cubic bulk transfer (the iperf3 flow of
// §6.1.1). It is loss-based: the window grows until a drop-tail loss in
// the RLC buffer, so when it shares a FIFO with latency-sensitive
// traffic it bloats the buffer — the phenomenon of Fig. 11a.
//
// The model is self-clocked through the simulator: packets are emitted
// while bytes in flight are below cwnd; deliveries generate ACKs after
// AckDelayMS (uplink path); drops trigger Cubic's multiplicative
// decrease and window-growth epoch reset.
type CubicFlow struct {
	Flow FiveTuple
	// MSS is the segment size (default 1448).
	MSS int
	// AckDelayMS is the uplink ACK path delay (default 10 ms).
	AckDelayMS int64
	StartMS    int64

	cwnd     float64 // segments
	ssthresh float64
	wMax     float64
	epoch    int64 // epoch start time, -1 when unset
	inflight int   // segments in flight
	seq      uint64
	recover  uint64 // loss-recovery horizon

	acks []pendingAck

	delivered uint64 // segments
	losses    uint64

	deliverFn func(p *Packet, dnow int64)
	dropFn    func(p *Packet, dnow int64)
}

type pendingAck struct {
	due int64
	seq uint64
}

// Cubic constants (RFC 8312): C scaling and β multiplicative decrease.
const (
	cubicC    = 0.4
	cubicBeta = 0.7
)

func (f *CubicFlow) mss() int {
	if f.MSS > 0 {
		return f.MSS
	}
	return 1448
}

func (f *CubicFlow) ackDelay() int64 {
	if f.AckDelayMS > 0 {
		return f.AckDelayMS
	}
	return 10
}

// Tick implements TrafficSource.
func (f *CubicFlow) Tick(now int64, emit func(*Packet)) {
	if now < f.StartMS {
		return
	}
	if f.cwnd == 0 {
		f.cwnd = 10 // RFC 6928 initial window
		f.ssthresh = math.Inf(1)
		f.epoch = -1
		f.deliverFn = func(p *Packet, dnow int64) {
			f.acks = append(f.acks, pendingAck{due: dnow + f.ackDelay(), seq: p.Seq})
		}
		f.dropFn = func(p *Packet, dnow int64) { f.onLoss(p.Seq, dnow) }
	}
	// Process due ACKs.
	i := 0
	for ; i < len(f.acks) && f.acks[i].due <= now; i++ {
		f.inflight--
		f.delivered++
		f.onAck(now)
	}
	if i > 0 {
		f.acks = append(f.acks[:0], f.acks[i:]...)
	}
	// Emit while the window allows.
	for f.inflight < int(f.cwnd) {
		f.seq++
		f.inflight++
		p := newPacket()
		p.Flow, p.Size, p.Seq, p.Sent = f.Flow, f.mss(), f.seq, now
		p.onDeliver = f.deliverFn
		p.onDrop = f.dropFn
		emit(p)
	}
}

// onAck applies Cubic window growth.
func (f *CubicFlow) onAck(now int64) {
	if f.cwnd < f.ssthresh {
		f.cwnd++ // slow start
		return
	}
	if f.epoch < 0 {
		f.epoch = now
		if f.wMax < f.cwnd {
			f.wMax = f.cwnd
		}
	}
	t := float64(now-f.epoch) / 1000.0
	k := math.Cbrt(f.wMax * (1 - cubicBeta) / cubicC)
	target := cubicC*math.Pow(t-k, 3) + f.wMax
	if target > f.cwnd {
		// Approach the cubic target gradually (per-ACK increase).
		f.cwnd += (target - f.cwnd) / f.cwnd
	} else {
		f.cwnd += 0.01 // TCP-friendly floor
	}
}

// onLoss applies multiplicative decrease once per window of loss.
func (f *CubicFlow) onLoss(seq uint64, now int64) {
	f.inflight--
	if seq <= f.recover {
		return // still recovering from the same loss event
	}
	f.losses++
	f.recover = f.seq
	f.wMax = f.cwnd
	f.cwnd *= cubicBeta
	if f.cwnd < 2 {
		f.cwnd = 2
	}
	f.ssthresh = f.cwnd
	f.epoch = -1
}

// NextWakeup implements Waker: a Cubic flow is self-clocked through the
// simulator (pending ACKs and window growth every TTI), so once started
// it is always due next slot.
func (f *CubicFlow) NextWakeup(now int64) int64 {
	if now < f.StartMS {
		return f.StartMS
	}
	return now + 1
}

// Stats returns delivered segments and loss events.
func (f *CubicFlow) Stats() (delivered, losses uint64) { return f.delivered, f.losses }

// Cwnd returns the current congestion window in segments.
func (f *CubicFlow) Cwnd() float64 { return f.cwnd }
