package ran

// PDCPStats are the counters exported by the PDCP monitoring SM. (SDAP
// is accounted with PDCP: the simulator's SDAP is the mapping of flows
// onto the single default DRB, refined by the TC sublayer.)
type PDCPStats struct {
	TxPackets uint64
	TxBytes   uint64
	// SDU sizes are informational for the stats SM payloads.
	LastSDUBytes int
}

// MACUEStats are the per-UE counters exported by the MAC monitoring SM.
type MACUEStats struct {
	RNTI uint16
	CQI  int
	MCS  int
	// RBsUsed is cumulative scheduled resource blocks.
	RBsUsed uint64
	// TxBits is cumulative MAC transport bits delivered.
	TxBits uint64
	// ThroughputBps is an exponentially-averaged delivered rate.
	ThroughputBps float64
}

// UE is one attached user with its downlink bearer path. The cold bearer
// structures (RLC queue, TC sublayer, PDCP counters, traffic sources)
// live here; the per-TTI hot state (MCS, PF average, rate EWMAs, slot
// accumulators) lives in the owning shard's struct-of-arrays buffers,
// addressed by (sh, slot).
type UE struct {
	RNTI uint16
	IMSI string
	// PLMNID is the selected network ("208.95"), used for
	// UE-to-controller and UE-to-slice association.
	PLMNID string
	// SliceID associates the UE to a scheduling slice.
	SliceID uint32

	// channel, when set, drives MCS variation per TTI.
	channel ChannelProcess

	tc   *TC
	rlc  *RLCQueue
	pdcp PDCPStats
	mac  MACUEStats

	sources []TrafficSource

	// sh/slot address the hot state in the shard's SoA buffers; sh is
	// nil after Detach (lastMCS then preserves the final MCS).
	sh      *shard
	slot    int32
	lastMCS int32
	// allIdx is the UE's position in the cell registry (swap-remove).
	allIdx int32

	// emit is the Tick callback, allocated once; tickNow carries the
	// current slot into it so ticking stays allocation-free.
	emit    func(*Packet)
	tickNow int64

	// deliveredBits accumulates for external rate sampling.
	deliveredBits uint64
}

func newUE(rnti uint16, imsi, plmn string, mcs int) *UE {
	ue := &UE{RNTI: rnti, IMSI: imsi, PLMNID: plmn, lastMCS: int32(mcs)}
	ue.rlc = &RLCQueue{}
	ue.tc = NewTC(func(p *Packet, now int64) bool {
		ue.pdcp.TxPackets++
		ue.pdcp.TxBytes += uint64(p.Size)
		ue.pdcp.LastSDUBytes = p.Size
		return ue.rlc.Enqueue(p, now)
	})
	ue.mac.RNTI = rnti
	ue.emit = func(p *Packet) { ue.Submit(p, ue.tickNow) }
	return ue
}

// Submit hands a downlink packet to the UE's bearer path (SDAP entry)
// and wakes the UE if it was parked.
func (u *UE) Submit(p *Packet, now int64) bool {
	ok := u.tc.Submit(p, now)
	if u.sh != nil {
		u.sh.activate(u.slot)
	}
	return ok
}

// AddSource attaches a traffic generator to the UE and wakes it so the
// next TTI evaluates the source's schedule.
func (u *UE) AddSource(s TrafficSource) {
	u.sources = append(u.sources, s)
	if u.sh != nil {
		u.sh.activate(u.slot)
	}
}

// TC exposes the UE's traffic-control sublayer for the TC SM.
func (u *UE) TC() *TC { return u.tc }

// RLC exposes the UE's RLC queue for the RLC SM.
func (u *UE) RLC() *RLCQueue { return u.rlc }

// PDCPStats snapshots the PDCP counters.
func (u *UE) PDCPStats() PDCPStats { return u.pdcp }

// MCS returns the UE's current modulation-and-coding scheme. For a UE
// with a channel process the value is folded to the cell clock first, so
// a parked UE still reads current radio quality (NextMCS catch-up is
// call-cadence independent, so this never perturbs the trajectory).
func (u *UE) MCS() int {
	if u.sh == nil {
		return int(u.lastMCS)
	}
	if u.channel != nil {
		u.sh.mcs[u.slot] = int32(u.channel.NextMCS(u.sh.cell.Now()))
	}
	return int(u.sh.mcs[u.slot])
}

// MACStats snapshots the MAC counters.
func (u *UE) MACStats() MACUEStats {
	s := u.mac
	s.MCS = u.MCS()
	s.CQI = CQIFromMCS(s.MCS)
	if u.sh != nil {
		s.ThroughputBps = u.sh.thrView(u.slot)
	}
	return s
}

// DeliveredBits returns cumulative delivered MAC bits (for throughput
// sampling by experiments).
func (u *UE) DeliveredBits() uint64 { return u.deliveredBits }

// hasData reports whether the UE needs scheduling this TTI.
func (u *UE) hasData() bool { return u.rlc.HasData() }

// tickTraffic generates this TTI's application traffic.
func (u *UE) tickTraffic(now int64) {
	u.tickNow = now
	for _, s := range u.sources {
		s.Tick(now, u.emit)
	}
}

// nextWakeup returns the earliest future TTI (> now) at which any of the
// UE's traffic sources is due, or -1 when none ever will be. Sources
// that don't implement Waker are assumed due every TTI.
func (u *UE) nextWakeup(now int64) int64 {
	min := int64(-1)
	for _, s := range u.sources {
		var at int64
		if w, ok := s.(Waker); ok {
			at = w.NextWakeup(now)
			if at < 0 {
				continue // source finished
			}
			if at <= now {
				at = now + 1
			}
		} else {
			at = now + 1
		}
		if min < 0 || at < min {
			min = at
		}
	}
	return min
}

// drain transmits up to rbs resource blocks worth of data and updates
// MAC accounting. It returns the bits actually sent. A UE may be
// drained several times within one TTI (scheduler chunks); per-TTI rate
// statistics are finalized by shard.postUE.
func (u *UE) drain(rbs int, now int64) int {
	sh, slot := u.sh, u.slot
	budgetBits := rbs * BitsPerRB(int(sh.mcs[slot]))
	usedBytes := u.rlc.Drain(budgetBits/8, now)
	bits := usedBytes * 8
	u.mac.RBsUsed += uint64(rbs)
	u.mac.TxBits += uint64(bits)
	u.deliveredBits += uint64(bits)
	sh.ttiBits[slot] += int32(bits)
	sh.ttiBytes[slot] += int32(usedBytes)
	return bits
}
