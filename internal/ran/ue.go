package ran

// PDCPStats are the counters exported by the PDCP monitoring SM. (SDAP
// is accounted with PDCP: the simulator's SDAP is the mapping of flows
// onto the single default DRB, refined by the TC sublayer.)
type PDCPStats struct {
	TxPackets uint64
	TxBytes   uint64
	// SDU sizes are informational for the stats SM payloads.
	LastSDUBytes int
}

// MACUEStats are the per-UE counters exported by the MAC monitoring SM.
type MACUEStats struct {
	RNTI uint16
	CQI  int
	MCS  int
	// RBsUsed is cumulative scheduled resource blocks.
	RBsUsed uint64
	// TxBits is cumulative MAC transport bits delivered.
	TxBits uint64
	// ThroughputBps is an exponentially-averaged delivered rate.
	ThroughputBps float64
}

// UE is one attached user with its downlink bearer path.
type UE struct {
	RNTI uint16
	IMSI string
	// PLMNID is the selected network ("208.95"), used for
	// UE-to-controller and UE-to-slice association.
	PLMNID string
	// SliceID associates the UE to a scheduling slice.
	SliceID uint32

	// MCS is the current modulation-and-coding scheme (radio quality).
	MCS int
	// channel, when set, drives MCS variation per TTI.
	channel ChannelProcess

	tc   *TC
	rlc  *RLCQueue
	pdcp PDCPStats
	mac  MACUEStats

	sources []TrafficSource

	// drainEWMA tracks recent RLC drain in bytes/TTI for the BDP pacer.
	drainEWMA float64
	// ttiBits/ttiBytes accumulate within the current TTI (a UE may be
	// drained in several scheduler chunks) and feed the EWMAs once per
	// slot via finishTTI.
	ttiBits  int
	ttiBytes int

	// pf is the proportional-fair average throughput state (bits/TTI).
	pf float64

	// deliveredBits accumulates for external rate sampling.
	deliveredBits uint64
}

func newUE(rnti uint16, imsi, plmn string, mcs int) *UE {
	ue := &UE{RNTI: rnti, IMSI: imsi, PLMNID: plmn, MCS: mcs}
	ue.rlc = &RLCQueue{}
	ue.tc = NewTC(func(p *Packet, now int64) bool {
		ue.pdcp.TxPackets++
		ue.pdcp.TxBytes += uint64(p.Size)
		ue.pdcp.LastSDUBytes = p.Size
		return ue.rlc.Enqueue(p, now)
	})
	ue.mac.RNTI = rnti
	ue.mac.MCS = mcs
	ue.mac.CQI = CQIFromMCS(mcs)
	return ue
}

// Submit hands a downlink packet to the UE's bearer path (SDAP entry).
func (u *UE) Submit(p *Packet, now int64) bool { return u.tc.Submit(p, now) }

// AddSource attaches a traffic generator to the UE.
func (u *UE) AddSource(s TrafficSource) { u.sources = append(u.sources, s) }

// TC exposes the UE's traffic-control sublayer for the TC SM.
func (u *UE) TC() *TC { return u.tc }

// RLC exposes the UE's RLC queue for the RLC SM.
func (u *UE) RLC() *RLCQueue { return u.rlc }

// PDCPStats snapshots the PDCP counters.
func (u *UE) PDCPStats() PDCPStats { return u.pdcp }

// MACStats snapshots the MAC counters.
func (u *UE) MACStats() MACUEStats {
	s := u.mac
	s.MCS = u.MCS
	s.CQI = CQIFromMCS(u.MCS)
	return s
}

// DeliveredBits returns cumulative delivered MAC bits (for throughput
// sampling by experiments).
func (u *UE) DeliveredBits() uint64 { return u.deliveredBits }

// hasData reports whether the UE needs scheduling this TTI.
func (u *UE) hasData() bool { return u.rlc.HasData() }

// tickTraffic generates this TTI's application traffic.
func (u *UE) tickTraffic(now int64) {
	for _, s := range u.sources {
		s.Tick(now, func(p *Packet) { u.Submit(p, now) })
	}
}

// pumpTC runs the TC scheduler/pacer for this TTI.
func (u *UE) pumpTC(now int64) {
	u.tc.Pump(now, u.rlc.Backlog(), int(u.drainEWMA)+1)
}

// drain transmits up to rbs resource blocks worth of data and updates
// MAC accounting. It returns the bits actually sent. A UE may be
// drained several times within one TTI (scheduler chunks); per-TTI rate
// statistics are finalized by finishTTI.
func (u *UE) drain(rbs int, now int64) int {
	budgetBits := rbs * BitsPerRB(u.MCS)
	usedBytes := u.rlc.Drain(budgetBits/8, now)
	bits := usedBytes * 8
	u.mac.RBsUsed += uint64(rbs)
	u.mac.TxBits += uint64(bits)
	u.deliveredBits += uint64(bits)
	u.ttiBits += bits
	u.ttiBytes += usedBytes
	return bits
}

// finishTTI folds the slot's transmissions into the rate EWMAs; called
// once per TTI for every attached UE (idle slots decay the averages).
func (u *UE) finishTTI() {
	const alpha = 1.0 / 64
	u.drainEWMA = (1-alpha)*u.drainEWMA + alpha*float64(u.ttiBytes)
	u.mac.ThroughputBps = (1-alpha)*u.mac.ThroughputBps + alpha*float64(u.ttiBits)*1000/TTI
	u.ttiBits = 0
	u.ttiBytes = 0
}
