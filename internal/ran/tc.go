package ran

import "fmt"

// The TC (traffic control) sublayer sits between SDAP and PDCP in the
// downlink path (Fig. 10). It abstracts flow configuration within the RAN
// the way OpenFlow abstracts flows in a switch (§6.1.1): an OSI classifier
// segregates packets into queues, a scheduler pulls from active queues,
// and a pacer limits submission into the DRB so the RLC buffer never
// bloats. Queues, filters, scheduler and pacer are all reconfigurable at
// runtime through the TC service model.

// TCMatch is a 5-tuple classifier rule; zero-valued fields are wildcards
// except Proto, which has an explicit wildcard flag.
type TCMatch struct {
	SrcIP, DstIP     uint32
	SrcPort, DstPort uint16
	Proto            Proto
	MatchProto       bool
}

// Matches reports whether the flow satisfies the rule.
func (m TCMatch) Matches(f FiveTuple) bool {
	if m.SrcIP != 0 && m.SrcIP != f.SrcIP {
		return false
	}
	if m.DstIP != 0 && m.DstIP != f.DstIP {
		return false
	}
	if m.SrcPort != 0 && m.SrcPort != f.SrcPort {
		return false
	}
	if m.DstPort != 0 && m.DstPort != f.DstPort {
		return false
	}
	if m.MatchProto && m.Proto != f.Proto {
		return false
	}
	return true
}

// TCFilter binds a classifier rule to a destination queue.
type TCFilter struct {
	Match TCMatch
	Queue int
}

// PacerKind selects the TC pacing policy.
type PacerKind uint8

// Pacer kinds.
const (
	// PacerNone submits everything immediately (bloats the DRB).
	PacerNone PacerKind = iota
	// PacerBDP is the 5G-BDP pacer [19,21]: it backlogs packets in the
	// TC queues and submits just enough to keep the DRB buffer at a
	// small delay target — full utilization without bloat.
	PacerBDP
)

// TCQueueStats are per-queue counters exported by the TC monitoring SM.
type TCQueueStats struct {
	ID          int
	EnqPackets  uint64
	EnqBytes    uint64
	DeqPackets  uint64
	DeqBytes    uint64
	DropPackets uint64
	BufferBytes int
	BufferPkts  int
	// SojournMS is the sojourn of the most recently dequeued packet.
	SojournMS int64
}

// TCStats aggregates the TC sublayer state.
type TCStats struct {
	Mode    string // "transparent" or "active"
	Pacer   PacerKind
	Queues  []TCQueueStats
	Filters int
}

type tcQueue struct {
	id    int
	pkts  []*Packet
	head  int
	bytes int
	stats TCQueueStats
}

// tcQueueCap bounds a TC queue (bytes); generous, since the pacer is what
// creates backlog here deliberately.
const tcQueueCap = 8 << 20

func (q *tcQueue) enqueue(p *Packet, now int64) bool {
	if q.bytes+p.Size > tcQueueCap {
		q.stats.DropPackets++
		p.Drop(now)
		releasePacket(p)
		return false
	}
	p.EnqueueTC = now
	q.pkts = append(q.pkts, p)
	q.bytes += p.Size
	q.stats.EnqPackets++
	q.stats.EnqBytes += uint64(p.Size)
	return true
}

func (q *tcQueue) peek() *Packet {
	if q.head >= len(q.pkts) {
		return nil
	}
	return q.pkts[q.head]
}

func (q *tcQueue) pop(now int64) *Packet {
	p := q.pkts[q.head]
	q.pkts[q.head] = nil
	q.head++
	q.bytes -= p.Size
	q.stats.DeqPackets++
	q.stats.DeqBytes += uint64(p.Size)
	q.stats.SojournMS = now - p.EnqueueTC
	if q.head == len(q.pkts) {
		q.pkts = q.pkts[:0]
		q.head = 0
	} else if q.head > 64 && q.head*2 >= len(q.pkts) {
		n := copy(q.pkts, q.pkts[q.head:])
		for i := n; i < len(q.pkts); i++ {
			q.pkts[i] = nil
		}
		q.pkts = q.pkts[:n]
		q.head = 0
	}
	return p
}

// TC is the traffic-control sublayer of one UE's downlink path.
type TC struct {
	active  bool
	queues  []*tcQueue
	filters []TCFilter
	pacer   PacerKind
	// pacerTargetMS is the DRB delay target of the BDP pacer.
	pacerTargetMS int64
	rrNext        int // round-robin cursor

	// downstream submits a packet to PDCP/RLC; returns false on drop.
	downstream func(p *Packet, now int64) bool
}

// NewTC returns a TC sublayer in transparent mode feeding downstream.
func NewTC(downstream func(p *Packet, now int64) bool) *TC {
	return &TC{downstream: downstream, pacerTargetMS: 4}
}

// Activate switches from transparent mode to active mode with one default
// FIFO queue (id 0). Idempotent.
func (t *TC) Activate() {
	if t.active {
		return
	}
	t.active = true
	if len(t.queues) == 0 {
		t.queues = []*tcQueue{{id: 0}}
	}
}

// Active reports whether the TC sublayer is classifying traffic.
func (t *TC) Active() bool { return t.active }

// AddQueue creates a new FIFO queue and returns its ID. Activates the
// sublayer if needed (the xApp's "first action" in §6.1.1).
func (t *TC) AddQueue() int {
	t.Activate()
	id := 0
	for _, q := range t.queues {
		if q.id >= id {
			id = q.id + 1
		}
	}
	t.queues = append(t.queues, &tcQueue{id: id})
	return id
}

// RemoveQueue deletes queue id, reassigning its filters to queue 0 and
// flushing its packets downstream. Queue 0 cannot be removed.
func (t *TC) RemoveQueue(id int, now int64) error {
	if id == 0 {
		return fmt.Errorf("ran: default TC queue cannot be removed")
	}
	for i, q := range t.queues {
		if q.id != id {
			continue
		}
		for p := q.peek(); p != nil; p = q.peek() {
			t.downstream(q.pop(now), now)
		}
		t.queues = append(t.queues[:i], t.queues[i+1:]...)
		kept := t.filters[:0]
		for _, f := range t.filters {
			if f.Queue != id {
				kept = append(kept, f)
			}
		}
		t.filters = kept
		return nil
	}
	return fmt.Errorf("ran: no TC queue %d", id)
}

// AddFilter installs a classifier rule (the xApp's "second action").
func (t *TC) AddFilter(f TCFilter) error {
	t.Activate()
	found := false
	for _, q := range t.queues {
		if q.id == f.Queue {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("ran: TC filter targets unknown queue %d", f.Queue)
	}
	t.filters = append(t.filters, f)
	return nil
}

// SetPacer selects the pacing policy (the xApp's "third action"); target
// is the DRB delay target in ms for PacerBDP (0 keeps the current value).
func (t *TC) SetPacer(kind PacerKind, targetMS int64) {
	t.Activate()
	t.pacer = kind
	if targetMS > 0 {
		t.pacerTargetMS = targetMS
	}
}

// classify returns the queue for a flow: first matching filter wins,
// otherwise the default queue 0.
func (t *TC) classify(f FiveTuple) *tcQueue {
	for _, fl := range t.filters {
		if fl.Match.Matches(f) {
			for _, q := range t.queues {
				if q.id == fl.Queue {
					return q
				}
			}
		}
	}
	return t.queues[0]
}

// Submit accepts a packet from SDAP. In transparent mode it forwards
// directly downstream; in active mode it enqueues into the classified
// queue for the scheduler/pacer to pump.
func (t *TC) Submit(p *Packet, now int64) bool {
	if !t.active {
		return t.downstream(p, now)
	}
	return t.classify(p.Flow).enqueue(p, now)
}

// Pump runs one TTI of the TC scheduler: a round-robin pass over active
// queues, bounded by the pacer's allowance. drbBacklog is the current RLC
// buffer occupancy in bytes and drainPerTTI the recent RLC drain rate in
// bytes per TTI (together they define the BDP pacing target).
func (t *TC) Pump(now int64, drbBacklog, drainPerTTI int) {
	if !t.active {
		return
	}
	allowance := 1 << 30 // effectively unbounded
	if t.pacer == PacerBDP {
		// Keep the DRB holding no more than pacerTarget worth of drain:
		// enough to never starve the MAC, too little to bloat.
		target := int(t.pacerTargetMS)*drainPerTTI + 2*1500
		allowance = target - drbBacklog
		if allowance <= 0 {
			return
		}
	}
	// Round-robin over queues, one packet per visit, until the allowance
	// is spent or no queue has data.
	n := len(t.queues)
	idle := 0
	for allowance > 0 && idle < n {
		q := t.queues[t.rrNext%n]
		t.rrNext++
		p := q.peek()
		if p == nil {
			idle++
			continue
		}
		idle = 0
		if t.pacer == PacerBDP && p.Size > allowance && drbBacklog > 0 {
			// Next packet exceeds the remaining allowance; try next TTI.
			break
		}
		t.downstream(q.pop(now), now)
		allowance -= p.Size
	}
}

// Backlog returns the bytes currently held in the TC queues (0 in
// transparent mode). The cell's park decision uses it: a UE with TC
// backlog must keep pumping even when the RLC is momentarily empty.
func (t *TC) Backlog() int {
	n := 0
	for _, q := range t.queues {
		n += q.bytes
	}
	return n
}

// Stats snapshots the TC sublayer state.
func (t *TC) Stats() TCStats {
	mode := "transparent"
	if t.active {
		mode = "active"
	}
	s := TCStats{Mode: mode, Pacer: t.pacer, Filters: len(t.filters)}
	for _, q := range t.queues {
		qs := q.stats
		qs.ID = q.id
		qs.BufferBytes = q.bytes
		qs.BufferPkts = len(q.pkts) - q.head
		s.Queues = append(s.Queues, qs)
	}
	return s
}

// QueueSojournMS returns the head-of-line sojourn of queue id at now, or
// 0 when idle/unknown.
func (t *TC) QueueSojournMS(id int, now int64) int64 {
	for _, q := range t.queues {
		if q.id == id {
			if p := q.peek(); p != nil {
				return now - p.EnqueueTC
			}
			return 0
		}
	}
	return 0
}
