package ran

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flexric/internal/nvs"
)

// goldenCell builds a deterministic mixed busy/idle workload: saturating
// flows that stop mid-run, Cubic bulk transfers, sparse CBR (mostly
// idle), random-walk channels, permanently idle UEs, and optionally NVS
// slicing and active TC pacers. Two cells built with the same arguments
// carry independent but identically seeded source/channel state.
func goldenCell(t testing.TB, opts CellOptions, withNVS, withTC bool) *Cell {
	t.Helper()
	c, err := NewCellWithOptions(PHYConfig{RAT: RAT4G, NumRB: 25, Band: 7}, opts)
	if err != nil {
		t.Fatal(err)
	}
	const nUE = 96
	for i := 1; i <= nUE; i++ {
		mcs := 4 + (i*7)%24
		u, err := c.Attach(uint16(i), "", "208.95", mcs)
		if err != nil {
			t.Fatal(err)
		}
		flow := FiveTuple{DstIP: uint32(i), DstPort: 5001, Proto: ProtoUDP}
		switch i % 6 {
		case 0: // busy, then idle after StopMS
			u.AddSource(&Saturating{Flow: flow, RateBytesPerMS: 2500,
				StartMS: int64(i % 40), StopMS: int64(300 + i%150)})
		case 1: // self-clocked bulk flow
			u.AddSource(&CubicFlow{Flow: flow, StartMS: int64(i % 50)})
		case 2, 3: // sparse CBR: idle between grid points
			u.AddSource(&CBR{Flow: flow, Size: 172,
				IntervalMS: int64(40 + 20*(i%5)), StartMS: int64(i % 37), ReturnDelayMS: 10})
		case 4: // fading channel + low-rate CBR
			u.AddSource(&CBR{Flow: flow, Size: 600, IntervalMS: 100, StartMS: int64(i % 90)})
			if err := c.SetChannel(uint16(i), &RandomWalkChannel{
				Min: 3, Max: 28, CoherenceMS: 7, Seed: int64(i)}); err != nil {
				t.Fatal(err)
			}
		case 5: // permanently idle
		}
		if withNVS {
			if err := c.AssociateUE(uint16(i), uint32(i%2)); err != nil {
				t.Fatal(err)
			}
		}
		if withTC && i%4 == 1 {
			if err := c.WithUE(uint16(i), func(u *UE) error {
				u.TC().SetPacer(PacerBDP, 4)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if withNVS {
		if err := c.ConfigureSlices([]nvs.Config{
			{ID: 0, Kind: nvs.KindCapacity, Capacity: 0.6, UESched: "pf"},
			{ID: 1, Kind: nvs.KindCapacity, Capacity: 0.4, UESched: "rr"},
		}); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// requireSameState asserts bit-identical hot state between two cells
// that ran the same workload: clocks, delivered bits, PDCP counters,
// bearer backlogs, and the full SoA row (MCS, PF, EWMAs, fold times,
// wake times, activity) of every UE.
func requireSameState(t *testing.T, a, b *Cell, tag string) {
	t.Helper()
	if a.Now() != b.Now() {
		t.Fatalf("%s: clocks diverge: %d vs %d", tag, a.Now(), b.Now())
	}
	if a.TotalTxBits() != b.TotalTxBits() {
		t.Fatalf("%s: totalTxBits diverge: %d vs %d", tag, a.TotalTxBits(), b.TotalTxBits())
	}
	au, bu := a.UEs(), b.UEs()
	if len(au) != len(bu) {
		t.Fatalf("%s: UE counts diverge: %d vs %d", tag, len(au), len(bu))
	}
	feq := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	for i := range au {
		x, y := au[i], bu[i]
		if x.RNTI != y.RNTI {
			t.Fatalf("%s: RNTI order diverges at %d: %d vs %d", tag, i, x.RNTI, y.RNTI)
		}
		if x.deliveredBits != y.deliveredBits {
			t.Fatalf("%s: UE %d deliveredBits %d vs %d", tag, x.RNTI, x.deliveredBits, y.deliveredBits)
		}
		if x.pdcp != y.pdcp {
			t.Fatalf("%s: UE %d pdcp %+v vs %+v", tag, x.RNTI, x.pdcp, y.pdcp)
		}
		if x.rlc.Backlog() != y.rlc.Backlog() || x.tc.Backlog() != y.tc.Backlog() {
			t.Fatalf("%s: UE %d backlogs diverge: rlc %d/%d tc %d/%d", tag, x.RNTI,
				x.rlc.Backlog(), y.rlc.Backlog(), x.tc.Backlog(), y.tc.Backlog())
		}
		sx, sy := x.sh, y.sh
		if sx.mcs[x.slot] != sy.mcs[y.slot] {
			t.Fatalf("%s: UE %d MCS %d vs %d", tag, x.RNTI, sx.mcs[x.slot], sy.mcs[y.slot])
		}
		if !feq(sx.pf[x.slot], sy.pf[y.slot]) {
			t.Fatalf("%s: UE %d pf %v vs %v", tag, x.RNTI, sx.pf[x.slot], sy.pf[y.slot])
		}
		if !feq(sx.drainEWMA[x.slot], sy.drainEWMA[y.slot]) {
			t.Fatalf("%s: UE %d drainEWMA %v vs %v", tag, x.RNTI, sx.drainEWMA[x.slot], sy.drainEWMA[y.slot])
		}
		if !feq(sx.thrBps[x.slot], sy.thrBps[y.slot]) {
			t.Fatalf("%s: UE %d thrBps %v vs %v", tag, x.RNTI, sx.thrBps[x.slot], sy.thrBps[y.slot])
		}
		if sx.ewmaAt[x.slot] != sy.ewmaAt[y.slot] {
			t.Fatalf("%s: UE %d ewmaAt %d vs %d", tag, x.RNTI, sx.ewmaAt[x.slot], sy.ewmaAt[y.slot])
		}
		if sx.nextWake[x.slot] != sy.nextWake[y.slot] {
			t.Fatalf("%s: UE %d nextWake %d vs %d", tag, x.RNTI, sx.nextWake[x.slot], sy.nextWake[y.slot])
		}
		if (sx.activePos[x.slot] >= 0) != (sy.activePos[y.slot] >= 0) {
			t.Fatalf("%s: UE %d activity diverges: %v vs %v", tag, x.RNTI,
				sx.activePos[x.slot] >= 0, sy.activePos[y.slot] >= 0)
		}
	}
}

// mutateBoth applies the same control-plane sequence to both cells:
// detach, re-attach (exercising slot reuse), mid-run traffic adds, TC
// reconfiguration of a parked UE, and a slicing toggle.
func mutateBoth(t *testing.T, phase int, cells ...*Cell) {
	t.Helper()
	for _, c := range cells {
		switch phase {
		case 0:
			for _, r := range []uint16{6, 12, 95} { // idle and busy victims
				if err := c.Detach(r); err != nil {
					t.Fatal(err)
				}
			}
		case 1:
			for _, r := range []uint16{200, 201} {
				if _, err := c.Attach(r, "", "208.95", 15); err != nil {
					t.Fatal(err)
				}
				if err := c.AddTraffic(r, &CBR{Flow: FiveTuple{DstIP: uint32(r)},
					Size: 300, IntervalMS: 30, StartMS: c.Now() + 5}); err != nil {
					t.Fatal(err)
				}
			}
		case 2: // poke a parked idle UE with a TC mutation
			if err := c.WithUE(11, func(u *UE) error {
				u.TC().Activate()
				u.TC().SetPacer(PacerBDP, 6)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		case 3:
			c.DisableSlicing()
		}
	}
}

// TestGoldenShardedVsDense pins the tentpole equivalence claim: the
// wakeup-heap engine and the exhaustive-scan reference engine produce
// bit-identical trajectories (delivered bits, EWMAs, PF state, MCS,
// park/wake times) for mixed busy/idle workloads, across slicing modes,
// TC pacers, shard counts and mid-run attach/detach/control churn.
func TestGoldenShardedVsDense(t *testing.T) {
	for _, tc := range []struct {
		name   string
		shards int
		nvs    bool
		tc     bool
	}{
		{"1shard-pf", 1, false, false},
		{"1shard-nvs-tc", 1, true, true},
		{"4shard-pf-tc", 4, false, true},
		{"4shard-nvs", 4, true, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sharded := goldenCell(t, CellOptions{Shards: tc.shards}, tc.nvs, tc.tc)
			dense := goldenCell(t, CellOptions{Shards: tc.shards, Dense: true}, tc.nvs, tc.tc)
			// Uneven chunk sizes so comparisons land mid-wake-cycle.
			for phase, chunk := range []int{1, 7, 250, 601, 1000, 137} {
				sharded.Step(chunk)
				dense.Step(chunk)
				requireSameState(t, sharded, dense, tc.name)
				if phase < 4 {
					mutateBoth(t, phase, sharded, dense)
					requireSameState(t, sharded, dense, tc.name+"-postmutate")
				}
			}
		})
	}
}

// TestGoldenBaselineDeliveredBits compares the sharded core against the
// frozen pre-change per-UE loop (baseline.go). The EWMA representations
// legitimately differ (eager per-slot decay vs closed-form folding), but
// for TC-free workloads — where EWMAs feed no behavior — the delivered
// traffic must match exactly.
func TestGoldenBaselineDeliveredBits(t *testing.T) {
	cell, err := NewCell(PHYConfig{RAT: RAT4G, NumRB: 25, Band: 7})
	if err != nil {
		t.Fatal(err)
	}
	base, err := newBaselineCell(PHYConfig{RAT: RAT4G, NumRB: 25, Band: 7})
	if err != nil {
		t.Fatal(err)
	}
	const nUE = 64
	for i := 1; i <= nUE; i++ {
		mcs := 4 + (i*5)%24
		u, err := cell.Attach(uint16(i), "", "208.95", mcs)
		if err != nil {
			t.Fatal(err)
		}
		bu := base.attach(uint16(i), mcs)
		flow := FiveTuple{DstIP: uint32(i), DstPort: 5001, Proto: ProtoUDP}
		switch i % 4 {
		case 0:
			u.AddSource(&Saturating{Flow: flow, RateBytesPerMS: 2000,
				StartMS: int64(i % 30), StopMS: int64(400 + i%90)})
			bu.addSource(&Saturating{Flow: flow, RateBytesPerMS: 2000,
				StartMS: int64(i % 30), StopMS: int64(400 + i%90)})
		case 1:
			u.AddSource(&CubicFlow{Flow: flow, StartMS: int64(i % 40)})
			bu.addSource(&CubicFlow{Flow: flow, StartMS: int64(i % 40)})
		case 2:
			u.AddSource(&CBR{Flow: flow, Size: 172, IntervalMS: int64(20 + 10*(i%7)), StartMS: int64(i % 23)})
			bu.addSource(&CBR{Flow: flow, Size: 172, IntervalMS: int64(20 + 10*(i%7)), StartMS: int64(i % 23)})
		case 3: // idle, some with fading channels
			if i%8 == 3 {
				ch := func() ChannelProcess {
					return &RandomWalkChannel{Min: 3, Max: 28, CoherenceMS: 5, Seed: int64(i)}
				}
				if err := cell.SetChannel(uint16(i), ch()); err != nil {
					t.Fatal(err)
				}
				bu.channel = ch()
			}
		}
	}
	cell.Step(2500)
	base.step(2500)
	if cell.TotalTxBits() != base.totalTxBits {
		t.Fatalf("totalTxBits diverge: sharded %d vs baseline %d", cell.TotalTxBits(), base.totalTxBits)
	}
	for _, bu := range base.ues {
		if got := cell.UEDeliveredBits(bu.rnti); got != bu.deliveredBits {
			t.Fatalf("UE %d deliveredBits: sharded %d vs baseline %d", bu.rnti, got, bu.deliveredBits)
		}
		if u := cell.UE(bu.rnti); u.PDCPStats() != bu.pdcp {
			t.Fatalf("UE %d pdcp: sharded %+v vs baseline %+v", bu.rnti, u.PDCPStats(), bu.pdcp)
		}
	}
}

// TestIdleUEsLeaveActiveSet asserts the active-set semantics directly:
// with sparse CBR traffic the worked set shrinks to near zero between
// grid points, and a permanently idle UE is visited exactly never.
func TestIdleUEsLeaveActiveSet(t *testing.T) {
	c := mustCell(t, PHYConfig{RAT: RAT4G, NumRB: 25, Band: 7})
	idle, _ := c.Attach(1, "", "208.95", 20)
	cbr, _ := c.Attach(2, "", "208.95", 20)
	cbr.AddSource(&CBR{Flow: FiveTuple{DstIP: 2}, Size: 100, IntervalMS: 500, StartMS: 100})
	c.Step(50) // before StartMS: both parked
	sh1, sh2 := idle.sh, cbr.sh
	if sh1.activePos[idle.slot] >= 0 {
		t.Fatal("source-less UE still in active set")
	}
	if sh2.activePos[cbr.slot] >= 0 {
		t.Fatal("pre-start CBR UE still in active set")
	}
	if w := sh2.nextWake[cbr.slot]; w != 100 {
		t.Fatalf("CBR wake at %d, want 100", w)
	}
	c.Step(100) // across the first grid point: packet emitted and drained
	if cbr.DeliveredBits() != 800 {
		t.Fatalf("CBR delivered %d bits, want 800", cbr.DeliveredBits())
	}
	if sh2.activePos[cbr.slot] >= 0 {
		t.Fatal("CBR UE should be parked again after draining")
	}
	if idle.DeliveredBits() != 0 || sh1.nextWake[idle.slot] != -1 {
		t.Fatal("idle UE was disturbed")
	}
}

// TestDetachIsSwapRemove pins the O(1) detach + slot-reuse behavior and
// the lazily sorted UEs() view.
func TestDetachIsSwapRemove(t *testing.T) {
	c := mustCell(t, PHYConfig{RAT: RAT4G, NumRB: 25, Band: 7})
	for i := 1; i <= 100; i++ {
		if _, err := c.Attach(uint16(i), "", "208.95", 10); err != nil {
			t.Fatal(err)
		}
	}
	sh := c.UE(1).sh
	slots := len(sh.ues)
	for i := 1; i <= 100; i += 2 {
		if err := c.Detach(uint16(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.NumUEs(); got != 50 {
		t.Fatalf("NumUEs %d, want 50", got)
	}
	ues := c.UEs()
	for i := 1; i < len(ues); i++ {
		if ues[i-1].RNTI >= ues[i].RNTI {
			t.Fatalf("UEs() not sorted after churn: %d >= %d", ues[i-1].RNTI, ues[i].RNTI)
		}
	}
	if c.UE(1) != nil {
		t.Fatal("detached UE still resolvable")
	}
	// Freed slots are recycled: re-attaching must not grow the arrays.
	for i := 1; i <= 100; i += 2 {
		if _, err := c.Attach(uint16(i), "", "208.95", 10); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(sh.ues); got != slots {
		t.Fatalf("slot arrays grew %d -> %d despite free list", slots, got)
	}
	if err := c.Detach(999); err == nil {
		t.Fatal("detaching unknown RNTI must fail")
	}
}

// TestControlNotStarvedByLongStep is the regression test for the old
// Step(n) holding the cell mutex for the whole n-TTI loop: control calls
// must get the lock between TTIs, so WithUE completes while a long Step
// is still running.
func TestControlNotStarvedByLongStep(t *testing.T) {
	c := mustCell(t, PHYConfig{RAT: RAT5G, NumRB: 106, Band: 78})
	for i := 1; i <= 64; i++ {
		u, _ := c.Attach(uint16(i), "", "208.95", 20)
		u.AddSource(&Saturating{Flow: FiveTuple{DstIP: uint32(i)}, RateBytesPerMS: 1 << 16})
	}
	c.Step(10) // warm up backlogs so every TTI does real work

	var stepDone atomic.Bool
	go func() {
		c.Step(5000)
		stepDone.Store(true)
	}()
	duringStep := 0
	var worst time.Duration
	for !stepDone.Load() {
		t0 := time.Now()
		if err := c.WithUE(1, func(u *UE) error { _ = u.MACStats(); return nil }); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(t0); d > worst {
			worst = d
		}
		if !stepDone.Load() {
			duringStep++
		}
		time.Sleep(time.Millisecond)
	}
	if duringStep < 3 {
		t.Fatalf("only %d control calls completed while Step ran (starved); worst wait %v",
			duringStep, worst)
	}
	t.Logf("%d control calls during Step, worst wait %v", duringStep, worst)
}

// TestStepConcurrencyStress races Step against attach/detach, slicing
// reconfiguration, traffic adds and stats snapshots. Run with -race it
// is the memory-safety proof for the per-TTI locking scheme.
func TestStepConcurrencyStress(t *testing.T) {
	c := mustCell(t, PHYConfig{RAT: RAT4G, NumRB: 25, Band: 7})
	for i := 1; i <= 24; i++ {
		u, _ := c.Attach(uint16(i), "", "208.95", 15)
		if i%3 == 0 {
			u.AddSource(&Saturating{Flow: FiveTuple{DstIP: uint32(i)}, RateBytesPerMS: 2000})
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // slot loop
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				c.Step(10)
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rnti := uint16(1000 + 100*g)
			for i := 0; i < 150; i++ {
				switch i % 5 {
				case 0:
					if _, err := c.Attach(rnti, "", "208.95", 12); err == nil {
						_ = c.AddTraffic(rnti, &CBR{Flow: FiveTuple{DstIP: uint32(rnti)},
							Size: 200, IntervalMS: 10})
					}
				case 1:
					_ = c.Detach(rnti)
				case 2:
					_ = c.WithUE(uint16(1+i%24), func(u *UE) error {
						_ = u.MACStats()
						_ = u.TC().Stats()
						return nil
					})
				case 3:
					_ = c.ConfigureSlices([]nvs.Config{
						{ID: 0, Kind: nvs.KindCapacity, Capacity: 1.0, UESched: "pf"}})
					c.DisableSlicing()
				case 4:
					_ = c.UEs()
					_ = c.UEDeliveredBits(uint16(1 + i%24))
					_ = c.TotalTxBits()
				}
			}
		}(g)
	}
	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestFleetStepsCellsInLockstep covers the multi-cell worker pool:
// lockstep clocks, traffic progress in every cell, latency stats, and
// the inline single-worker path.
func TestFleetStepsCellsInLockstep(t *testing.T) {
	for _, workers := range []int{1, 3} {
		cells := make([]*Cell, 5)
		for i := range cells {
			c := mustCell(t, PHYConfig{RAT: RAT4G, NumRB: 25, Band: 7})
			u, _ := c.Attach(1, "", "208.95", 20)
			u.AddSource(&Saturating{Flow: FiveTuple{DstIP: 1}, RateBytesPerMS: 5000})
			cells[i] = c
		}
		var hookCalls int64
		f := NewFleet(cells, workers, func(now int64) { hookCalls++ })
		f.Step(40)
		for i, c := range cells {
			if c.Now() != 40 {
				t.Fatalf("workers=%d: cell %d at t=%d, want 40", workers, i, c.Now())
			}
			if c.TotalTxBits() == 0 {
				t.Fatalf("workers=%d: cell %d delivered nothing", workers, i)
			}
		}
		if f.Now() != 40 || hookCalls != 40 {
			t.Fatalf("workers=%d: fleet now %d hooks %d, want 40/40", workers, f.Now(), hookCalls)
		}
		p50, p99, max := f.SlotLatencyNS()
		if p50 <= 0 || p99 < p50 || max < p99 {
			t.Fatalf("workers=%d: latency stats inconsistent: p50=%d p99=%d max=%d", workers, p50, p99, max)
		}
		f.ResetSlotStats()
		if _, _, m := f.SlotLatencyNS(); m != 0 {
			t.Fatalf("workers=%d: stats survived reset", workers)
		}
		f.Close()
		f.Close() // idempotent
	}
}
