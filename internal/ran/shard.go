package ran

import "slices"

// The sharded cell core. A cell's UEs are split across a fixed number of
// shards; each shard keeps the per-UE hot state (MCS, PF average, rate
// EWMAs, per-TTI accumulators, wakeup bookkeeping) in struct-of-arrays
// buffers so a TTI sweep touches dense cache lines instead of chasing a
// pointer per UE. The cold bearer structures (RLC queue, TC sublayer,
// PDCP counters, traffic sources) stay on the UE object.
//
// A shard also maintains the *active set*: the slots that must be
// processed this TTI. Idle UEs cost nothing per slot — their traffic
// sources register a wakeup time in a min-heap, and the EWMA decay for
// the slots they skipped is applied lazily in closed form when they
// reactivate (see decayPow). docs/PERFORMANCE.md describes the layout
// and the lazy-decay math.

// ewmaAlpha is the per-TTI smoothing factor of the drain-rate and
// throughput EWMAs (historically the alpha of UE.finishTTI).
const ewmaAlpha = 1.0 / 64

// ewmaDecay is the per-idle-slot EWMA multiplier, 63/64 — exactly
// representable in a float64, so closed-form folding is deterministic.
const ewmaDecay = 1 - ewmaAlpha

// decayPow returns ewmaDecay^k by binary exponentiation. The fold is
// deterministic (same k ⇒ bit-identical result), which is what the
// golden equivalence test pins: the dense reference engine and the
// sharded engine share this exact arithmetic. For large k the result
// underflows to zero, which is the correct limit for a decaying average.
func decayPow(k int64) float64 {
	r := 1.0
	b := ewmaDecay
	for k > 0 {
		if k&1 == 1 {
			r *= b
		}
		b *= b
		k >>= 1
	}
	return r
}

// wakeEntry is one pending wakeup in a shard's min-heap. Entries are
// lazily deleted: gen guards slot reuse after Detach, and the at ==
// nextWake[slot] check guards re-parks that superseded the entry.
type wakeEntry struct {
	at   int64
	slot int32
	gen  uint32
}

// shard holds the hot state for a subset of a cell's UEs. All access is
// under the owning cell's mutex.
type shard struct {
	cell *Cell

	// ues is slot-indexed; nil marks a free slot (listed in free).
	ues  []*UE
	free []int32

	// Struct-of-arrays hot state, parallel to ues.
	mcs       []int32
	pf        []float64 // proportional-fair average (bits/TTI)
	drainEWMA []float64 // recent RLC drain, bytes/TTI (BDP pacer input)
	thrBps    []float64 // delivered-rate EWMA (MAC stats)
	ttiBits   []int32   // accumulators within the current TTI
	ttiBytes  []int32
	ewmaAt    []int64  // last TTI folded into the EWMAs
	nextWake  []int64  // earliest future TTI a source is due; -1 = never
	gen       []uint32 // slot generation, bumped on Detach

	// active is the worked set (unordered, swap-removed); activePos maps
	// slot -> index in active, -1 when parked.
	active    []int32
	activePos []int32

	wake []wakeEntry // min-heap on at (unused by the dense engine)

	slotOrder []int32 // per-TTI scratch: active slots in slot order
}

func newShard(c *Cell) *shard { return &shard{cell: c} }

// addUE places u in a free slot (or grows the arrays) and initializes
// its hot state. New UEs are parked: they enter the active set when a
// source registers a wakeup or a control poke activates them.
func (sh *shard) addUE(u *UE, mcs int, now int64) {
	var slot int32
	if n := len(sh.free); n > 0 {
		slot = sh.free[n-1]
		sh.free = sh.free[:n-1]
		sh.ues[slot] = u
		sh.mcs[slot] = int32(mcs)
		sh.pf[slot] = 0
		sh.drainEWMA[slot] = 0
		sh.thrBps[slot] = 0
		sh.ttiBits[slot] = 0
		sh.ttiBytes[slot] = 0
		sh.ewmaAt[slot] = now
		sh.nextWake[slot] = -1
		sh.activePos[slot] = -1
	} else {
		slot = int32(len(sh.ues))
		sh.ues = append(sh.ues, u)
		sh.mcs = append(sh.mcs, int32(mcs))
		sh.pf = append(sh.pf, 0)
		sh.drainEWMA = append(sh.drainEWMA, 0)
		sh.thrBps = append(sh.thrBps, 0)
		sh.ttiBits = append(sh.ttiBits, 0)
		sh.ttiBytes = append(sh.ttiBytes, 0)
		sh.ewmaAt = append(sh.ewmaAt, now)
		sh.nextWake = append(sh.nextWake, -1)
		sh.gen = append(sh.gen, 0)
		sh.activePos = append(sh.activePos, -1)
	}
	u.sh, u.slot = sh, slot
}

// removeUE frees u's slot in O(1). The generation bump invalidates any
// wake-heap entries still pointing at the slot.
func (sh *shard) removeUE(u *UE) {
	slot := u.slot
	sh.deactivate(slot)
	sh.gen[slot]++
	sh.ues[slot] = nil
	sh.free = append(sh.free, slot)
	u.lastMCS = sh.mcs[slot]
	u.sh = nil
}

// activate inserts slot into the worked set; no-op if already active or
// freed.
func (sh *shard) activate(slot int32) {
	if sh.activePos[slot] >= 0 || sh.ues[slot] == nil {
		return
	}
	sh.activePos[slot] = int32(len(sh.active))
	sh.active = append(sh.active, slot)
}

// deactivate swap-removes slot from the worked set; no-op if parked.
func (sh *shard) deactivate(slot int32) {
	pos := sh.activePos[slot]
	if pos < 0 {
		return
	}
	last := int32(len(sh.active) - 1)
	moved := sh.active[last]
	sh.active[pos] = moved
	sh.activePos[moved] = pos
	sh.active = sh.active[:last]
	sh.activePos[slot] = -1
}

// pushWake queues a wakeup for slot at time at.
func (sh *shard) pushWake(at int64, slot int32) {
	sh.wake = append(sh.wake, wakeEntry{at: at, slot: slot, gen: sh.gen[slot]})
	i := len(sh.wake) - 1
	for i > 0 {
		p := (i - 1) / 2
		if sh.wake[p].at <= sh.wake[i].at {
			break
		}
		sh.wake[p], sh.wake[i] = sh.wake[i], sh.wake[p]
		i = p
	}
}

// popDueWakes activates every slot whose wakeup time has arrived.
// Entries that were invalidated by Detach (gen mismatch) or superseded
// by a re-park with a different wake time (at mismatch) are discarded,
// so a UE is only ever woken at exactly the time the dense reference
// engine would process it — that is what keeps the two engines
// bit-identical.
func (sh *shard) popDueWakes(now int64) {
	for len(sh.wake) > 0 && sh.wake[0].at <= now {
		e := sh.wake[0]
		n := len(sh.wake) - 1
		sh.wake[0] = sh.wake[n]
		sh.wake = sh.wake[:n]
		i := 0
		for {
			l := 2*i + 1
			if l >= n {
				break
			}
			m := l
			if r := l + 1; r < n && sh.wake[r].at < sh.wake[l].at {
				m = r
			}
			if sh.wake[i].at <= sh.wake[m].at {
				break
			}
			sh.wake[i], sh.wake[m] = sh.wake[m], sh.wake[i]
			i = m
		}
		if e.gen == sh.gen[e.slot] && sh.ues[e.slot] != nil && sh.nextWake[e.slot] == e.at {
			sh.activate(e.slot)
		}
	}
}

// scanWake is the dense engine's discovery pass: it visits every slot
// and activates the ones whose wakeup time has arrived. Same outcome as
// popDueWakes, found by exhaustive scan instead of the heap — the
// cross-check the golden equivalence test relies on.
func (sh *shard) scanWake(now int64) {
	for slot := range sh.ues {
		s := int32(slot)
		if sh.ues[s] == nil || sh.activePos[s] >= 0 {
			continue
		}
		if w := sh.nextWake[s]; w >= 0 && w <= now {
			sh.activate(s)
		}
	}
}

// foldIdle applies the EWMA decay for the slots a UE skipped while
// parked, in closed form, bringing ewmaAt up to now-1 so the ordinary
// per-TTI update can run for now.
func (sh *shard) foldIdle(slot int32, now int64) {
	if at := sh.ewmaAt[slot]; at < now-1 {
		f := decayPow(now - 1 - at)
		sh.drainEWMA[slot] *= f
		sh.thrBps[slot] *= f
		sh.ewmaAt[slot] = now - 1
	}
}

// preUE runs the per-UE first phase of a TTI: idle-gap fold, channel
// advance, traffic generation, and the TC pump.
func (sh *shard) preUE(slot int32, now int64) {
	u := sh.ues[slot]
	sh.foldIdle(slot, now)
	if u.channel != nil {
		sh.mcs[slot] = int32(u.channel.NextMCS(now))
	}
	u.tickTraffic(now)
	u.tc.Pump(now, u.rlc.Backlog(), int(sh.drainEWMA[slot])+1)
}

// postUE folds the slot's transmissions into the EWMAs and decides
// whether the UE can leave the worked set. A UE parks when it has no
// bearer backlog and no source due by the next TTI; its next wakeup (if
// any) goes to the heap (sharded engine) or is left for the scan (dense
// engine).
func (sh *shard) postUE(slot int32, now int64) {
	u := sh.ues[slot]
	sh.drainEWMA[slot] = ewmaDecay*sh.drainEWMA[slot] + ewmaAlpha*float64(sh.ttiBytes[slot])
	sh.thrBps[slot] = ewmaDecay*sh.thrBps[slot] + ewmaAlpha*float64(sh.ttiBits[slot])*1000/TTI
	sh.ttiBits[slot], sh.ttiBytes[slot] = 0, 0
	sh.ewmaAt[slot] = now
	if u.rlc.HasData() || u.tc.Backlog() > 0 {
		return
	}
	w := u.nextWakeup(now)
	sh.nextWake[slot] = w
	if w >= 0 && w <= now+1 {
		return // due again next TTI: staying active beats heap churn
	}
	sh.deactivate(slot)
	if !sh.cell.dense && w >= 0 {
		sh.pushWake(w, slot)
	}
}

// orderActive snapshots the active set in slot order into slotOrder.
// The worked set itself is unordered (swap-removal); scheduling and the
// post-TTI sweep iterate the ordered copy so candidate order — which
// PF/RR tie-breaking depends on — is canonical regardless of how slots
// entered the set.
func (sh *shard) orderActive() {
	sh.slotOrder = append(sh.slotOrder[:0], sh.active...)
	slices.Sort(sh.slotOrder)
}

// thrView returns the throughput EWMA as of the cell clock, folding any
// pending idle decay without mutating state (parked UEs keep their lazy
// bookkeeping; snapshots still see the eager-equivalent value).
func (sh *shard) thrView(slot int32) float64 {
	gap := sh.cell.Now() - sh.ewmaAt[slot]
	if gap <= 0 {
		return sh.thrBps[slot]
	}
	return sh.thrBps[slot] * decayPow(gap)
}
