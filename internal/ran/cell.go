package ran

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"flexric/internal/nvs"
)

// Cell is one simulated base station cell: PHY capacity, MAC scheduler,
// and per-UE bearer paths. A Cell advances in 1 ms TTIs via Step; all
// methods are safe for concurrent use, so service models may snapshot
// statistics and apply control while the slot loop runs — the same
// concurrency the FlexRIC agent has with a real user plane.
//
// UEs are partitioned across fixed struct-of-arrays shards with an
// active-set sweep per TTI (see shard.go): idle UEs cost nothing per
// slot, which is what lets one box simulate million-UE fleets. The cell
// mutex is taken per TTI, not per Step call, so control-plane calls are
// never starved by a long Step.
type Cell struct {
	cfg   PHYConfig
	dense bool

	mu sync.Mutex
	// now is atomic so the clock is readable from inside WithUE/WithUEs
	// closures and SM callbacks without re-taking the cell lock.
	now       atomic.Int64
	all       []*UE // attach registry; swap-removed on Detach
	byID      map[uint16]*UE
	shards    []*shard
	nextShard int
	mac       *mac

	totalTxBits uint64

	// sorted caches the RNTI-ordered view of all; rebuilt only after an
	// attach/detach dirtied it.
	sorted    []*UE
	sortDirty bool

	cands        []*UE // per-TTI scheduling candidates (reused)
	shardScratch []*UE // WithShardUEs scratch (reused under mu)

	attachHooks []func(ue *UE)
}

// CellOptions tunes the simulation engine; the zero value is the
// production default (one shard, wakeup-heap active set).
type CellOptions struct {
	// Shards is the number of struct-of-arrays UE shards (default 1).
	// More shards split report payloads and ingest pipelines into
	// independently processed batches; UEs are assigned round-robin.
	Shards int
	// Dense disables the wakeup heap: every attached slot is scanned
	// each TTI to discover due UEs. Same arithmetic, exhaustive
	// discovery — the reference engine for the golden equivalence test
	// and the scale benchmarks.
	Dense bool
}

// NewCell returns a cell with the given radio configuration and default
// engine options.
func NewCell(cfg PHYConfig) (*Cell, error) {
	return NewCellWithOptions(cfg, CellOptions{})
}

// NewCellWithOptions returns a cell with explicit engine options.
func NewCellWithOptions(cfg PHYConfig, opts CellOptions) (*Cell, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opts.Shards <= 0 {
		opts.Shards = 1
	}
	c := &Cell{
		cfg:   cfg,
		dense: opts.Dense,
		byID:  make(map[uint16]*UE),
		mac:   newMAC(),
	}
	c.shards = make([]*shard, opts.Shards)
	for i := range c.shards {
		c.shards[i] = newShard(c)
	}
	return c, nil
}

// Config returns the cell's radio configuration.
func (c *Cell) Config() PHYConfig { return c.cfg }

// Now returns the simulator time in ms. Safe to call from anywhere,
// including WithUE/WithUEs closures.
func (c *Cell) Now() int64 { return c.now.Load() }

// NumShards returns the number of UE shards.
func (c *Cell) NumShards() int { return len(c.shards) }

// OnUEAttach registers a hook invoked (synchronously, under no lock) for
// every new UE; this backs the RRC UE-notification SM (§6.1.2).
func (c *Cell) OnUEAttach(f func(ue *UE)) {
	c.mu.Lock()
	c.attachHooks = append(c.attachHooks, f)
	c.mu.Unlock()
}

// Attach adds a UE. The RNTI must be unique within the cell.
func (c *Cell) Attach(rnti uint16, imsi, plmn string, mcs int) (*UE, error) {
	c.mu.Lock()
	if _, dup := c.byID[rnti]; dup {
		c.mu.Unlock()
		return nil, fmt.Errorf("ran: duplicate RNTI %d", rnti)
	}
	ue := newUE(rnti, imsi, plmn, mcs)
	sh := c.shards[c.nextShard]
	c.nextShard = (c.nextShard + 1) % len(c.shards)
	sh.addUE(ue, mcs, c.now.Load())
	ue.allIdx = int32(len(c.all))
	c.all = append(c.all, ue)
	c.byID[rnti] = ue
	c.sortDirty = true
	hooks := append([]func(ue *UE){}, c.attachHooks...)
	c.mu.Unlock()
	for _, h := range hooks {
		h(ue)
	}
	return ue, nil
}

// Detach removes a UE in O(1) (swap-remove in the registry and the
// shard's active set; the freed slot is recycled).
func (c *Cell) Detach(rnti uint16) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ue, ok := c.byID[rnti]
	if !ok {
		return fmt.Errorf("ran: no UE with RNTI %d", rnti)
	}
	delete(c.byID, rnti)
	last := len(c.all) - 1
	moved := c.all[last]
	c.all[ue.allIdx] = moved
	moved.allIdx = ue.allIdx
	c.all[last] = nil
	c.all = c.all[:last]
	c.sortDirty = true
	ue.sh.removeUE(ue)
	return nil
}

// UE returns the UE with the given RNTI, or nil.
func (c *Cell) UE(rnti uint16) *UE {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.byID[rnti]
}

// NumUEs returns the number of attached UEs.
func (c *Cell) NumUEs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.all)
}

// UEs returns the attached UEs in RNTI order. The sorted view is cached
// and only rebuilt after attach/detach churn.
func (c *Cell) UEs() []*UE {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sortDirty {
		c.sorted = append(c.sorted[:0], c.all...)
		sort.Slice(c.sorted, func(i, j int) bool { return c.sorted[i].RNTI < c.sorted[j].RNTI })
		c.sortDirty = false
	}
	return append([]*UE(nil), c.sorted...)
}

// Step advances the cell by n TTIs: traffic generation, TC pumping, and
// MAC scheduling. The cell mutex is released between TTIs, so control
// calls (WithUE, ConfigureSlices, ...) wait at most one slot even while
// a multi-second Step runs.
func (c *Cell) Step(n int) {
	for i := 0; i < n; i++ {
		c.mu.Lock()
		c.stepTTI(c.now.Add(TTI))
		c.mu.Unlock()
	}
}

// stepTTI runs one slot under the cell mutex.
func (c *Cell) stepTTI(now int64) {
	// Phase 1: wake due UEs and run per-UE pre-work (idle fold, channel
	// advance, traffic sources, TC pump) over the active sets.
	for _, sh := range c.shards {
		if c.dense {
			sh.scanWake(now)
		} else {
			sh.popDueWakes(now)
		}
		for _, slot := range sh.active {
			sh.preUE(slot, now)
		}
	}
	// Phase 2: MAC scheduling over backlogged UEs in canonical
	// (shard, slot) order.
	c.cands = c.cands[:0]
	for _, sh := range c.shards {
		sh.orderActive()
		for _, slot := range sh.slotOrder {
			if u := sh.ues[slot]; u != nil && u.hasData() {
				c.cands = append(c.cands, u)
			}
		}
	}
	c.totalTxBits += uint64(c.mac.schedule(c.cands, c.cfg.NumRB, now))
	// Phase 3: EWMA roll-up and park decisions.
	for _, sh := range c.shards {
		for _, slot := range sh.slotOrder {
			sh.postUE(slot, now)
		}
	}
}

// poke puts a UE into the worked set so the next TTI re-evaluates its
// activity (used after control-plane mutations that may create backlog
// or attach sources). Idempotent; must run under the cell mutex unless
// the caller owns the single-threaded setup phase.
func (c *Cell) poke(u *UE) {
	if u != nil && u.sh != nil {
		u.sh.activate(u.slot)
	}
}

// ConfigureSlices installs an NVS slice set (the SC SM control path).
func (c *Cell) ConfigureSlices(cfgs []nvs.Config) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mac.configureSlices(cfgs)
}

// DisableSlicing returns to the shared proportional-fair pool.
func (c *Cell) DisableSlicing() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mac.disableSlicing()
}

// SliceMode reports the current slice-scheduler algorithm.
func (c *Cell) SliceMode() SliceMode {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mac.mode
}

// Slices returns the admitted NVS slice configurations.
func (c *Cell) Slices() []nvs.Config {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mac.nvs.Slices()
}

// AssociateUE assigns a UE to a slice (SC SM UE association).
func (c *Cell) AssociateUE(rnti uint16, sliceID uint32) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ue, ok := c.byID[rnti]
	if !ok {
		return fmt.Errorf("ran: no UE with RNTI %d", rnti)
	}
	ue.SliceID = sliceID
	return nil
}

// AddTraffic attaches a traffic generator to a UE under the cell lock,
// safe while the slot loop runs. (UE.AddSource is the lock-free variant
// for single-threaded setup before stepping begins.)
func (c *Cell) AddTraffic(rnti uint16, s TrafficSource) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ue, ok := c.byID[rnti]
	if !ok {
		return fmt.Errorf("ran: no UE with RNTI %d", rnti)
	}
	ue.AddSource(s)
	return nil
}

// UEDeliveredBits returns a UE's cumulative delivered MAC bits under the
// cell lock, safe while the slot loop runs (0 for unknown UEs).
func (c *Cell) UEDeliveredBits(rnti uint16) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ue, ok := c.byID[rnti]; ok {
		return ue.deliveredBits
	}
	return 0
}

// TotalTxBits returns cumulative downlink MAC bits across all UEs.
func (c *Cell) TotalTxBits() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totalTxBits
}

// CapacityBits returns the per-TTI cell capacity at the given MCS.
func (c *Cell) CapacityBits(mcs int) int { return CellCapacityBits(c.cfg.NumRB, mcs) }

// WithUE runs f with the UE's bearer structures under the cell lock —
// the access path service models use so snapshots are consistent with
// the slot loop. The UE is poked back into the worked set afterwards:
// control mutations (TC queue flushes, new filters, pacer changes) may
// have created backlog while it was parked.
func (c *Cell) WithUE(rnti uint16, f func(ue *UE) error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ue, ok := c.byID[rnti]
	if !ok {
		return fmt.Errorf("ran: no UE with RNTI %d", rnti)
	}
	err := f(ue)
	c.poke(ue)
	return err
}

// WithUEs runs f over all UEs under the cell lock. The slice is in
// attach/registry order and must not be retained or mutated; use WithUE
// for per-UE control mutations so activity is re-evaluated.
func (c *Cell) WithUEs(f func(ues []*UE)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f(c.all)
}

// WithShardUEs runs f over shard i's UEs (slot order) under the cell
// lock. The slice is reused scratch: it must not be retained. Per-shard
// report builders use this so each shard becomes one indication batch.
func (c *Cell) WithShardUEs(i int, f func(ues []*UE)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.shards) {
		f(nil)
		return
	}
	sh := c.shards[i]
	c.shardScratch = c.shardScratch[:0]
	for _, u := range sh.ues {
		if u != nil {
			c.shardScratch = append(c.shardScratch, u)
		}
	}
	f(c.shardScratch)
}
