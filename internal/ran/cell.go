package ran

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"flexric/internal/nvs"
)

// Cell is one simulated base station cell: PHY capacity, MAC scheduler,
// and per-UE bearer paths. A Cell advances in 1 ms TTIs via Step; all
// methods are safe for concurrent use, so service models may snapshot
// statistics and apply control while the slot loop runs — the same
// concurrency the FlexRIC agent has with a real user plane.
type Cell struct {
	cfg PHYConfig

	mu sync.Mutex
	// now is atomic so the clock is readable from inside WithUE/WithUEs
	// closures and SM callbacks without re-taking the cell lock.
	now  atomic.Int64
	ues  []*UE
	byID map[uint16]*UE
	mac  *mac

	totalTxBits uint64

	attachHooks []func(ue *UE)
}

// NewCell returns a cell with the given radio configuration.
func NewCell(cfg PHYConfig) (*Cell, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Cell{cfg: cfg, byID: make(map[uint16]*UE), mac: newMAC()}, nil
}

// Config returns the cell's radio configuration.
func (c *Cell) Config() PHYConfig { return c.cfg }

// Now returns the simulator time in ms. Safe to call from anywhere,
// including WithUE/WithUEs closures.
func (c *Cell) Now() int64 { return c.now.Load() }

// OnUEAttach registers a hook invoked (synchronously, under no lock) for
// every new UE; this backs the RRC UE-notification SM (§6.1.2).
func (c *Cell) OnUEAttach(f func(ue *UE)) {
	c.mu.Lock()
	c.attachHooks = append(c.attachHooks, f)
	c.mu.Unlock()
}

// Attach adds a UE. The RNTI must be unique within the cell.
func (c *Cell) Attach(rnti uint16, imsi, plmn string, mcs int) (*UE, error) {
	c.mu.Lock()
	if _, dup := c.byID[rnti]; dup {
		c.mu.Unlock()
		return nil, fmt.Errorf("ran: duplicate RNTI %d", rnti)
	}
	ue := newUE(rnti, imsi, plmn, mcs)
	c.ues = append(c.ues, ue)
	c.byID[rnti] = ue
	hooks := append([]func(ue *UE){}, c.attachHooks...)
	c.mu.Unlock()
	for _, h := range hooks {
		h(ue)
	}
	return ue, nil
}

// Detach removes a UE.
func (c *Cell) Detach(rnti uint16) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ue, ok := c.byID[rnti]
	if !ok {
		return fmt.Errorf("ran: no UE with RNTI %d", rnti)
	}
	delete(c.byID, rnti)
	for i, u := range c.ues {
		if u == ue {
			c.ues = append(c.ues[:i], c.ues[i+1:]...)
			break
		}
	}
	return nil
}

// UE returns the UE with the given RNTI, or nil.
func (c *Cell) UE(rnti uint16) *UE {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.byID[rnti]
}

// UEs returns the attached UEs in RNTI order.
func (c *Cell) UEs() []*UE {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := append([]*UE(nil), c.ues...)
	sort.Slice(out, func(i, j int) bool { return out[i].RNTI < out[j].RNTI })
	return out
}

// Step advances the cell by n TTIs: traffic generation, TC pumping, and
// MAC scheduling.
func (c *Cell) Step(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := 0; i < n; i++ {
		now := c.now.Add(TTI)
		for _, ue := range c.ues {
			if ue.channel != nil {
				ue.MCS = ue.channel.NextMCS(now)
			}
			ue.tickTraffic(now)
		}
		for _, ue := range c.ues {
			ue.pumpTC(now)
		}
		bits := c.mac.schedule(c.ues, c.cfg.NumRB, now)
		c.totalTxBits += uint64(bits)
		for _, ue := range c.ues {
			ue.finishTTI()
		}
	}
}

// ConfigureSlices installs an NVS slice set (the SC SM control path).
func (c *Cell) ConfigureSlices(cfgs []nvs.Config) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mac.configureSlices(cfgs)
}

// DisableSlicing returns to the shared proportional-fair pool.
func (c *Cell) DisableSlicing() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mac.disableSlicing()
}

// SliceMode reports the current slice-scheduler algorithm.
func (c *Cell) SliceMode() SliceMode {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mac.mode
}

// Slices returns the admitted NVS slice configurations.
func (c *Cell) Slices() []nvs.Config {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mac.nvs.Slices()
}

// AssociateUE assigns a UE to a slice (SC SM UE association).
func (c *Cell) AssociateUE(rnti uint16, sliceID uint32) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ue, ok := c.byID[rnti]
	if !ok {
		return fmt.Errorf("ran: no UE with RNTI %d", rnti)
	}
	ue.SliceID = sliceID
	return nil
}

// AddTraffic attaches a traffic generator to a UE under the cell lock,
// safe while the slot loop runs. (UE.AddSource is the lock-free variant
// for single-threaded setup before stepping begins.)
func (c *Cell) AddTraffic(rnti uint16, s TrafficSource) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ue, ok := c.byID[rnti]
	if !ok {
		return fmt.Errorf("ran: no UE with RNTI %d", rnti)
	}
	ue.AddSource(s)
	return nil
}

// UEDeliveredBits returns a UE's cumulative delivered MAC bits under the
// cell lock, safe while the slot loop runs (0 for unknown UEs).
func (c *Cell) UEDeliveredBits(rnti uint16) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ue, ok := c.byID[rnti]; ok {
		return ue.deliveredBits
	}
	return 0
}

// TotalTxBits returns cumulative downlink MAC bits across all UEs.
func (c *Cell) TotalTxBits() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totalTxBits
}

// CapacityBits returns the per-TTI cell capacity at the given MCS.
func (c *Cell) CapacityBits(mcs int) int { return CellCapacityBits(c.cfg.NumRB, mcs) }

// WithUE runs f with the UE's bearer structures under the cell lock —
// the access path service models use so snapshots are consistent with
// the slot loop.
func (c *Cell) WithUE(rnti uint16, f func(ue *UE) error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ue, ok := c.byID[rnti]
	if !ok {
		return fmt.Errorf("ran: no UE with RNTI %d", rnti)
	}
	return f(ue)
}

// WithUEs runs f over all UEs under the cell lock.
func (c *Cell) WithUEs(f func(ues []*UE)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f(c.ues)
}
