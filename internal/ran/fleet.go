package ran

import (
	"runtime"
	"sort"
	"sync"
	"time"
)

// Fleet steps many cells in lockstep off one slot clock. Cells are the
// unit of parallelism (each has its own mutex and UE shards): a fixed
// worker pool sweeps a static stride of cells every TTI with a barrier
// between slots, and an optional afterSlot hook runs on the caller's
// goroutine once all cells have finished the slot — the place to tick
// agents or service models against a consistent fleet time.
//
// Fleet also records wall-clock slot-loop latency so scale benchmarks
// can report p50/p99/max without instrumenting the hot path themselves.
type Fleet struct {
	cells     []*Cell
	workers   int
	afterSlot func(now int64)
	now       int64

	start []chan struct{}
	wg    sync.WaitGroup
	done  bool

	mu  sync.Mutex
	lat []int64 // slot latencies (ns), fleetLatCap ring
	pos int
	n   int
}

// fleetLatCap bounds the latency sample ring (newest samples win).
const fleetLatCap = 1 << 16

// NewFleet builds a fleet over cells. workers <= 0 selects GOMAXPROCS;
// with one worker (or one cell) stepping runs inline on the caller's
// goroutine with no synchronization. afterSlot may be nil.
func NewFleet(cells []*Cell, workers int, afterSlot func(now int64)) *Fleet {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers < 1 {
		workers = 1
	}
	f := &Fleet{cells: cells, workers: workers, afterSlot: afterSlot}
	if workers > 1 {
		f.start = make([]chan struct{}, workers)
		for w := 0; w < workers; w++ {
			f.start[w] = make(chan struct{}, 1)
			go func(w int) {
				for range f.start[w] {
					for j := w; j < len(f.cells); j += f.workers {
						f.cells[j].Step(1)
					}
					f.wg.Done()
				}
			}(w)
		}
	}
	return f
}

// Cells returns the fleet's cells.
func (f *Fleet) Cells() []*Cell { return f.cells }

// Now returns the fleet slot clock in ms (every cell is at this time
// between Step calls).
func (f *Fleet) Now() int64 { return f.now }

// Step advances every cell by n TTIs, slot by slot (barrier per slot).
func (f *Fleet) Step(n int) {
	for i := 0; i < n; i++ {
		t0 := time.Now()
		if f.workers == 1 {
			for _, c := range f.cells {
				c.Step(1)
			}
		} else {
			f.wg.Add(f.workers)
			for _, ch := range f.start {
				ch <- struct{}{}
			}
			f.wg.Wait()
		}
		f.now++
		f.record(time.Since(t0).Nanoseconds())
		if f.afterSlot != nil {
			f.afterSlot(f.now)
		}
	}
}

func (f *Fleet) record(ns int64) {
	f.mu.Lock()
	if cap(f.lat) == 0 {
		f.lat = make([]int64, fleetLatCap)
	}
	f.lat[f.pos] = ns
	f.pos = (f.pos + 1) % fleetLatCap
	if f.n < fleetLatCap {
		f.n++
	}
	f.mu.Unlock()
}

// SlotLatencyNS returns the p50, p99 and max wall-clock slot-loop
// latency in nanoseconds over the recorded window (zeros when no slots
// have been stepped).
func (f *Fleet) SlotLatencyNS() (p50, p99, max int64) {
	f.mu.Lock()
	samples := append([]int64(nil), f.lat[:f.n]...)
	f.mu.Unlock()
	if len(samples) == 0 {
		return 0, 0, 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	at := func(q float64) int64 {
		i := int(q * float64(len(samples)-1))
		return samples[i]
	}
	return at(0.50), at(0.99), samples[len(samples)-1]
}

// ResetSlotStats clears the latency window (call after warm-up).
func (f *Fleet) ResetSlotStats() {
	f.mu.Lock()
	f.pos, f.n = 0, 0
	f.mu.Unlock()
}

// Close stops the worker pool. The fleet must not be stepped after.
func (f *Fleet) Close() {
	if f.done {
		return
	}
	f.done = true
	for _, ch := range f.start {
		close(ch)
	}
}
