package ran

// Disaggregation support: a base station may run monolithic or split into
// a centralized unit (CU: SDAP/PDCP/RRC) and a distributed unit (DU:
// RLC/MAC/PHY). FlexRIC "natively supports such disaggregation through
// the selection of appropriate RAN functions" (§4.1.1): each node exposes
// only the layers it hosts, and the server's RAN management merges CU and
// DU agents of the same base station into one RAN entity.

// Layer names a RAN protocol sublayer.
type Layer string

// RAN sublayers.
const (
	LayerSDAP Layer = "sdap"
	LayerPDCP Layer = "pdcp"
	LayerRRC  Layer = "rrc"
	LayerRLC  Layer = "rlc"
	LayerMAC  Layer = "mac"
	LayerPHY  Layer = "phy"
	LayerTC   Layer = "tc"
)

// NodeKind distinguishes deployment shapes.
type NodeKind uint8

// Node kinds.
const (
	NodeMonolithic NodeKind = iota
	NodeCU
	NodeDU
)

func (k NodeKind) String() string {
	switch k {
	case NodeCU:
		return "CU"
	case NodeDU:
		return "DU"
	default:
		return "BS"
	}
}

// Node is the view of a (possibly disaggregated) base station part over
// the shared cell. BSID identifies the logical base station: CU and DU of
// the same station share it.
type Node struct {
	Kind NodeKind
	BSID uint64
	cell *Cell
}

// NewMonolithicNode wraps a cell as a complete base station.
func NewMonolithicNode(bsID uint64, cell *Cell) *Node {
	return &Node{Kind: NodeMonolithic, BSID: bsID, cell: cell}
}

// Split returns CU and DU node views over one cell, sharing the base
// station identity.
func Split(bsID uint64, cell *Cell) (cu, du *Node) {
	return &Node{Kind: NodeCU, BSID: bsID, cell: cell},
		&Node{Kind: NodeDU, BSID: bsID, cell: cell}
}

// Cell returns the underlying cell.
func (n *Node) Cell() *Cell { return n.cell }

// Layers lists the sublayers this node hosts; RAN functions for absent
// layers must not be registered by the agent.
func (n *Node) Layers() []Layer {
	switch n.Kind {
	case NodeCU:
		return []Layer{LayerSDAP, LayerTC, LayerPDCP, LayerRRC}
	case NodeDU:
		return []Layer{LayerRLC, LayerMAC, LayerPHY}
	default:
		return []Layer{LayerSDAP, LayerTC, LayerPDCP, LayerRRC, LayerRLC, LayerMAC, LayerPHY}
	}
}

// HasLayer reports whether the node hosts the given sublayer.
func (n *Node) HasLayer(l Layer) bool {
	for _, h := range n.Layers() {
		if h == l {
			return true
		}
	}
	return false
}
