package ran

// baselineCell is a frozen copy of the per-UE slot loop as it existed
// before the sharded/active-set core: every attached UE is visited on
// every TTI (channel advance, traffic tick, TC pump, EWMA roll-up), the
// scheduler re-filters and re-allocates its working slices each slot,
// and all hot state lives behind a pointer per UE. It exists solely as
// the honest comparator for the scale benchmarks — do not "fix" it —
// and as the deliveredBits-equivalence reference for TC-free workloads
// (EWMA trajectories differ in representation: this loop decays eagerly
// every slot, the sharded core folds idle gaps in closed form).
type baselineCell struct {
	cfg         PHYConfig
	now         int64
	ues         []*baselineUE
	totalTxBits uint64
}

type baselineUE struct {
	rnti    uint16
	mcs     int
	channel ChannelProcess

	tc   *TC
	rlc  *RLCQueue
	pdcp PDCPStats

	sources []TrafficSource

	drainEWMA float64
	thrBps    float64
	ttiBits   int
	ttiBytes  int
	pf        float64

	deliveredBits uint64
}

func newBaselineCell(cfg PHYConfig) (*baselineCell, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &baselineCell{cfg: cfg}, nil
}

func (c *baselineCell) attach(rnti uint16, mcs int) *baselineUE {
	u := &baselineUE{rnti: rnti, mcs: mcs}
	u.rlc = &RLCQueue{}
	u.tc = NewTC(func(p *Packet, now int64) bool {
		u.pdcp.TxPackets++
		u.pdcp.TxBytes += uint64(p.Size)
		u.pdcp.LastSDUBytes = p.Size
		return u.rlc.Enqueue(p, now)
	})
	c.ues = append(c.ues, u)
	return u
}

func (u *baselineUE) addSource(s TrafficSource) { u.sources = append(u.sources, s) }

// step is the pre-change Cell.Step body: four full-fleet passes per TTI.
func (c *baselineCell) step(n int) {
	for i := 0; i < n; i++ {
		c.now += TTI
		now := c.now
		for _, u := range c.ues {
			if u.channel != nil {
				u.mcs = u.channel.NextMCS(now)
			}
			for _, s := range u.sources {
				s.Tick(now, func(p *Packet) { u.tc.Submit(p, now) })
			}
		}
		for _, u := range c.ues {
			u.tc.Pump(now, u.rlc.Backlog(), int(u.drainEWMA)+1)
		}
		c.totalTxBits += uint64(c.schedule(now))
		for _, u := range c.ues {
			const alpha = 1.0 / 64
			u.drainEWMA = (1-alpha)*u.drainEWMA + alpha*float64(u.ttiBytes)
			u.thrBps = (1-alpha)*u.thrBps + alpha*float64(u.ttiBits)*1000/TTI
			u.ttiBits = 0
			u.ttiBytes = 0
		}
	}
}

// schedule is the pre-change shared-pool PF path: activeUEs +
// scheduleUEs, including their per-TTI slice allocations.
func (c *baselineCell) schedule(now int64) int {
	var active []*baselineUE
	for _, u := range c.ues {
		if u.rlc.HasData() {
			active = append(active, u)
		}
	}
	numRB := c.cfg.NumRB
	if len(active) == 0 || numRB <= 0 {
		return 0
	}
	const pfAlpha = 1.0 / 128
	totalBits := 0
	remaining := numRB
	sent := make([]int, len(active))
	chunk := numRB / (4 * len(active))
	if chunk < 1 {
		chunk = 1
	}
	live := len(active)
	dead := make([]bool, len(active))
	for remaining > 0 && live > 0 {
		best := -1
		bestMetric := -1.0
		for i, u := range active {
			if dead[i] {
				continue
			}
			inst := float64(BitsPerRB(u.mcs))
			metric := inst / (u.pf + 1e-9)
			if metric > bestMetric {
				bestMetric = metric
				best = i
			}
		}
		if best < 0 {
			break
		}
		rbs := chunk
		if rbs > remaining {
			rbs = remaining
		}
		u := active[best]
		budgetBits := rbs * BitsPerRB(u.mcs)
		usedBytes := u.rlc.Drain(budgetBits/8, now)
		bits := usedBytes * 8
		u.deliveredBits += uint64(bits)
		u.ttiBits += bits
		u.ttiBytes += usedBytes
		totalBits += bits
		sent[best] += bits
		remaining -= rbs
		u.pf += pfAlpha * float64(bits)
		if !u.rlc.HasData() {
			dead[best] = true
			live--
		}
	}
	_ = sent // the old loop allocated (and never read) this; kept for cost fidelity
	for _, u := range active {
		u.pf = (1 - pfAlpha) * u.pf
	}
	return totalBits
}
