package ran

import (
	"math"
	"testing"

	"flexric/internal/nvs"
)

func mustCell(t testing.TB, cfg PHYConfig) *Cell {
	t.Helper()
	c, err := NewCell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func lteCell(t testing.TB) *Cell {
	return mustCell(t, PHYConfig{RAT: RAT4G, NumRB: 25, Band: 7})
}

func nrCell(t testing.TB) *Cell {
	return mustCell(t, PHYConfig{RAT: RAT5G, NumRB: 106, Band: 78})
}

func TestPHYCapacityShape(t *testing.T) {
	// 25 RB @ MCS 28 (5 MHz LTE) should land in the mid-teens Mbps; the
	// paper's Fig. 15 dashed line (dedicated 25 RB eNB) is ~15-20 Mbps.
	lte := float64(CellCapacityBits(25, 28)) * 1000 / 1e6
	if lte < 12 || lte > 25 {
		t.Fatalf("LTE 25RB@28 capacity %.1f Mbps, want 12-25", lte)
	}
	// 106 RB @ MCS 20 (20 MHz NR): Fig. 13a shows ~60 Mbps cell rate.
	nr := float64(CellCapacityBits(106, 20)) * 1000 / 1e6
	if nr < 45 || nr > 75 {
		t.Fatalf("NR 106RB@20 capacity %.1f Mbps, want 45-75", nr)
	}
	// Monotone in MCS.
	for m := 1; m <= MaxMCS; m++ {
		if BitsPerRB(m) < BitsPerRB(m-1) {
			t.Fatalf("BitsPerRB not monotone at MCS %d", m)
		}
	}
	// Clamping.
	if BitsPerRB(-1) != BitsPerRB(0) || BitsPerRB(99) != BitsPerRB(MaxMCS) {
		t.Fatal("MCS clamping broken")
	}
}

func TestCQIFromMCS(t *testing.T) {
	if CQIFromMCS(28) != 15 || CQIFromMCS(0) != 1 {
		t.Fatalf("CQI mapping: %d %d", CQIFromMCS(28), CQIFromMCS(0))
	}
}

func TestAttachDetach(t *testing.T) {
	c := lteCell(t)
	if _, err := c.Attach(1, "imsi-1", "208.95", 28); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Attach(1, "imsi-dup", "208.95", 28); err == nil {
		t.Fatal("duplicate RNTI must fail")
	}
	if c.UE(1) == nil {
		t.Fatal("UE lookup failed")
	}
	if err := c.Detach(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Detach(1); err == nil {
		t.Fatal("double detach must fail")
	}
	if c.UE(1) != nil {
		t.Fatal("UE still present after detach")
	}
}

func TestAttachHook(t *testing.T) {
	c := lteCell(t)
	var got []uint16
	c.OnUEAttach(func(ue *UE) { got = append(got, ue.RNTI) })
	if _, err := c.Attach(7, "i", "208.95", 20); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("attach hook: %v", got)
	}
}

// runSaturated attaches n UEs with saturating traffic and returns per-UE
// throughput in Mbps over the given duration.
func runSaturated(t *testing.T, c *Cell, n int, mcs int, ms int) map[uint16]float64 {
	t.Helper()
	for i := 0; i < n; i++ {
		rnti := uint16(i + 1)
		ue, err := c.Attach(rnti, "", "208.95", mcs)
		if err != nil {
			t.Fatal(err)
		}
		ue.AddSource(&Saturating{
			Flow:           FiveTuple{DstIP: uint32(rnti), DstPort: 5001, Proto: ProtoUDP},
			RateBytesPerMS: 2 * CellCapacityBits(c.Config().NumRB, mcs) / 8,
		})
	}
	c.Step(ms)
	out := make(map[uint16]float64)
	for _, ue := range c.UEs() {
		out[ue.RNTI] = float64(ue.DeliveredBits()) / float64(ms) * 1000 / 1e6
	}
	return out
}

func TestEqualShareWithoutSlicing(t *testing.T) {
	c := nrCell(t)
	thr := runSaturated(t, c, 3, 20, 4000)
	cellMbps := float64(CellCapacityBits(106, 20)) * 1000 / 1e6
	total := 0.0
	for _, v := range thr {
		total += v
	}
	if math.Abs(total-cellMbps)/cellMbps > 0.05 {
		t.Fatalf("total %.1f Mbps, want ~cell capacity %.1f", total, cellMbps)
	}
	for rnti, v := range thr {
		if math.Abs(v-cellMbps/3)/(cellMbps/3) > 0.1 {
			t.Fatalf("UE %d got %.1f Mbps, want ~%.1f (equal PF share)", rnti, v, cellMbps/3)
		}
	}
}

func TestNVSSliceIsolationInCell(t *testing.T) {
	// Fig. 13a instance 3: white UE alone in slice 1 (50 %), two UEs in
	// slice 2 (50 %): white UE gets ~half the cell.
	c := nrCell(t)
	for i := 1; i <= 3; i++ {
		ue, err := c.Attach(uint16(i), "", "208.95", 20)
		if err != nil {
			t.Fatal(err)
		}
		ue.AddSource(&Saturating{
			Flow:           FiveTuple{DstIP: uint32(i), Proto: ProtoUDP},
			RateBytesPerMS: 2 * CellCapacityBits(106, 20) / 8,
		})
	}
	if err := c.ConfigureSlices([]nvs.Config{
		{ID: 1, Kind: nvs.KindCapacity, Capacity: 0.5},
		{ID: 2, Kind: nvs.KindCapacity, Capacity: 0.5},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.AssociateUE(1, 1); err != nil {
		t.Fatal(err)
	}
	_ = c.AssociateUE(2, 2)
	_ = c.AssociateUE(3, 2)
	c.Step(6000)
	cellMbps := float64(CellCapacityBits(106, 20)) * 1000 / 1e6
	u1 := float64(c.UE(1).DeliveredBits()) / 6000 * 1000 / 1e6
	if math.Abs(u1-cellMbps/2)/(cellMbps/2) > 0.08 {
		t.Fatalf("sliced UE1 %.1f Mbps, want ~%.1f (50%%)", u1, cellMbps/2)
	}
}

func TestNVSSharingVsStaticInCell(t *testing.T) {
	// Fig. 13b: slices 66/34, slice-2 UE inactive. With sharing, slice 1
	// takes ~everything; with NoSharing it is capped near 66 %.
	run := func(noShare bool) float64 {
		c := nrCell(t)
		ue1, _ := c.Attach(1, "", "208.95", 20)
		ue1.AddSource(&Saturating{Flow: FiveTuple{DstIP: 1}, RateBytesPerMS: 2 * CellCapacityBits(106, 20) / 8})
		if _, err := c.Attach(2, "", "208.95", 20); err != nil {
			t.Fatal(err)
		}
		if err := c.ConfigureSlices([]nvs.Config{
			{ID: 1, Kind: nvs.KindCapacity, Capacity: 0.66, NoSharing: noShare},
			{ID: 2, Kind: nvs.KindCapacity, Capacity: 0.34, NoSharing: noShare},
		}); err != nil {
			t.Fatal(err)
		}
		_ = c.AssociateUE(1, 1)
		_ = c.AssociateUE(2, 2)
		c.Step(6000)
		return float64(c.UE(1).DeliveredBits()) / 6000 * 1000 / 1e6
	}
	cellMbps := float64(CellCapacityBits(106, 20)) * 1000 / 1e6
	shared := run(false)
	static := run(true)
	if shared < 0.95*cellMbps {
		t.Fatalf("sharing: %.1f Mbps, want ~full cell %.1f", shared, cellMbps)
	}
	if math.Abs(static-0.66*cellMbps)/(0.66*cellMbps) > 0.08 {
		t.Fatalf("static: %.1f Mbps, want ~%.1f (66%%)", static, 0.66*cellMbps)
	}
	// The paper: sharing increases the active slice's throughput by ~50%.
	gain := shared / static
	if gain < 1.3 || gain > 1.8 {
		t.Fatalf("sharing gain %.2fx, want ~1.5x", gain)
	}
}

func TestRLCDrainAndSojourn(t *testing.T) {
	q := &RLCQueue{}
	now := int64(0)
	delivered := 0
	p := &Packet{Size: 1000, Sent: now}
	p.onDeliver = func(*Packet, int64) { delivered++ }
	if !q.Enqueue(p, now) {
		t.Fatal("enqueue failed")
	}
	if q.Backlog() != 1000 {
		t.Fatalf("backlog %d", q.Backlog())
	}
	// Drain 400 B/TTI: the packet completes on the 3rd drain at t=3.
	for i := 0; i < 3; i++ {
		now++
		q.Drain(400, now)
	}
	if delivered != 1 {
		t.Fatalf("delivered %d", delivered)
	}
	st := q.Stats()
	if st.SojournMS != 3 {
		t.Fatalf("sojourn %d ms, want 3", st.SojournMS)
	}
	if st.TxBytes != 1000 || st.BufferBytes != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestRLCDropTail(t *testing.T) {
	q := &RLCQueue{MaxBytes: 2500}
	drops := 0
	mk := func() *Packet {
		p := &Packet{Size: 1000}
		p.onDrop = func(*Packet, int64) { drops++ }
		return p
	}
	if !q.Enqueue(mk(), 0) || !q.Enqueue(mk(), 0) {
		t.Fatal("first two must fit")
	}
	if q.Enqueue(mk(), 0) {
		t.Fatal("third must be dropped (2500 B cap)")
	}
	if drops != 1 {
		t.Fatalf("drop callbacks: %d", drops)
	}
	st := q.Stats()
	if st.DropPackets != 1 || st.DropBytes != 1000 {
		t.Fatalf("drop stats %+v", st)
	}
}

func TestRLCOldestSojourn(t *testing.T) {
	q := &RLCQueue{}
	q.Enqueue(&Packet{Size: 10}, 5)
	if got := q.OldestSojournMS(25); got != 20 {
		t.Fatalf("oldest sojourn %d, want 20", got)
	}
	q.Drain(10, 26)
	if got := q.OldestSojournMS(30); got != 0 {
		t.Fatalf("empty queue sojourn %d", got)
	}
}

func TestRLCCompaction(t *testing.T) {
	q := &RLCQueue{}
	for i := 0; i < 500; i++ {
		q.Enqueue(&Packet{Size: 100}, int64(i))
		q.Drain(100, int64(i))
	}
	if q.Backlog() != 0 {
		t.Fatalf("backlog %d after full drain", q.Backlog())
	}
	st := q.Stats()
	if st.TxPackets != 500 {
		t.Fatalf("tx %d", st.TxPackets)
	}
}

func TestTCClassifier(t *testing.T) {
	var forwarded []*Packet
	tc := NewTC(func(p *Packet, now int64) bool {
		forwarded = append(forwarded, p)
		return true
	})
	// Transparent: straight through.
	tc.Submit(&Packet{Flow: FiveTuple{DstPort: 9}, Size: 10}, 0)
	if len(forwarded) != 1 {
		t.Fatal("transparent mode must forward immediately")
	}
	// Activate with a VoIP queue.
	q := tc.AddQueue()
	if q != 1 {
		t.Fatalf("new queue id %d, want 1", q)
	}
	if err := tc.AddFilter(TCFilter{Match: TCMatch{DstPort: 5060, Proto: ProtoUDP, MatchProto: true}, Queue: q}); err != nil {
		t.Fatal(err)
	}
	voip := &Packet{Flow: FiveTuple{DstPort: 5060, Proto: ProtoUDP}, Size: 172}
	bulk := &Packet{Flow: FiveTuple{DstPort: 5001, Proto: ProtoTCP}, Size: 1448}
	tc.Submit(voip, 1)
	tc.Submit(bulk, 1)
	if len(forwarded) != 1 {
		t.Fatal("active mode must queue, not forward")
	}
	st := tc.Stats()
	if st.Mode != "active" || len(st.Queues) != 2 {
		t.Fatalf("stats %+v", st)
	}
	if st.Queues[1].EnqPackets != 1 || st.Queues[0].EnqPackets != 1 {
		t.Fatalf("classification wrong: %+v", st.Queues)
	}
	// Pump with no pacer: everything forwards.
	tc.Pump(2, 0, 1500)
	if len(forwarded) != 3 {
		t.Fatalf("forwarded %d after pump", len(forwarded))
	}
}

func TestTCMatchWildcards(t *testing.T) {
	all := TCMatch{}
	if !all.Matches(FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: ProtoTCP}) {
		t.Fatal("empty match must be wildcard")
	}
	m := TCMatch{SrcIP: 9}
	if m.Matches(FiveTuple{SrcIP: 8}) || !m.Matches(FiveTuple{SrcIP: 9}) {
		t.Fatal("src ip match")
	}
	mp := TCMatch{Proto: ProtoUDP, MatchProto: true}
	if mp.Matches(FiveTuple{Proto: ProtoTCP}) || !mp.Matches(FiveTuple{Proto: ProtoUDP}) {
		t.Fatal("proto match")
	}
}

func TestTCPacerBoundsDRB(t *testing.T) {
	// With the BDP pacer, the TC only submits enough to keep the DRB at
	// the delay target.
	var drb int
	tc := NewTC(func(p *Packet, now int64) bool {
		drb += p.Size
		return true
	})
	tc.AddQueue()
	tc.SetPacer(PacerBDP, 4)
	for i := 0; i < 100; i++ {
		tc.Submit(&Packet{Size: 1448, Seq: uint64(i)}, 0)
	}
	drainPerTTI := 2000 // bytes/ms
	tc.Pump(1, drb, drainPerTTI)
	target := 4*drainPerTTI + 2*1500
	if drb == 0 {
		t.Fatal("pacer must not starve the DRB")
	}
	if drb > target+1448 {
		t.Fatalf("DRB %d exceeds pacing target %d", drb, target)
	}
	// Next pump with DRB still full: nothing more submitted.
	before := drb
	tc.Pump(2, drb, drainPerTTI)
	if drb != before {
		t.Fatal("pacer overfilled an already-full DRB")
	}
}

func TestTCRemoveQueue(t *testing.T) {
	var fwd int
	tc := NewTC(func(p *Packet, now int64) bool { fwd++; return true })
	q := tc.AddQueue()
	if err := tc.AddFilter(TCFilter{Match: TCMatch{DstPort: 1}, Queue: q}); err != nil {
		t.Fatal(err)
	}
	tc.Submit(&Packet{Flow: FiveTuple{DstPort: 1}, Size: 10}, 0)
	if err := tc.RemoveQueue(q, 1); err != nil {
		t.Fatal(err)
	}
	if fwd != 1 {
		t.Fatal("queued packets must flush downstream on queue removal")
	}
	if err := tc.RemoveQueue(0, 1); err == nil {
		t.Fatal("default queue must not be removable")
	}
	if err := tc.RemoveQueue(42, 1); err == nil {
		t.Fatal("unknown queue must error")
	}
	if err := tc.AddFilter(TCFilter{Queue: 42}); err == nil {
		t.Fatal("filter to unknown queue must error")
	}
}

func TestCBRSource(t *testing.T) {
	c := lteCell(t)
	ue, _ := c.Attach(1, "", "208.95", 28)
	voip := &CBR{Flow: FiveTuple{DstPort: 5060, Proto: ProtoUDP}, Size: 172, IntervalMS: 20, ReturnDelayMS: 10}
	ue.AddSource(voip)
	c.Step(1000)
	sent, recvd, dropped := voip.Counters()
	if sent != 50 {
		t.Fatalf("sent %d packets in 1 s, want 50", sent)
	}
	if recvd != sent || dropped != 0 {
		t.Fatalf("recvd %d dropped %d", recvd, dropped)
	}
	rtts := voip.RTTs()
	if len(rtts) != 50 {
		t.Fatalf("rtt samples %d", len(rtts))
	}
	// Unloaded cell: RTT ≈ return delay + ≤1ms queueing.
	for _, r := range rtts {
		if r < 10 || r > 15 {
			t.Fatalf("unloaded RTT %d ms, want ~10", r)
		}
	}
}

func TestCubicFillsBufferAndBacksOff(t *testing.T) {
	c := lteCell(t)
	ue, _ := c.Attach(1, "", "208.95", 28)
	flow := &CubicFlow{Flow: FiveTuple{DstPort: 5001, Proto: ProtoTCP}}
	ue.AddSource(flow)
	c.Step(30000)
	delivered, losses := flow.Stats()
	if delivered == 0 {
		t.Fatal("cubic flow delivered nothing")
	}
	if losses == 0 {
		t.Fatal("loss-based CC must eventually overflow the RLC buffer")
	}
	// Link utilization should stay high (loss-based CC keeps queue full).
	capBits := float64(CellCapacityBits(25, 28)) * 30000
	gotBits := float64(delivered) * 1448 * 8
	if gotBits < 0.7*capBits {
		t.Fatalf("utilization %.0f%%, want ≥70%%", 100*gotBits/capBits)
	}
}

func TestBufferbloatAndTCRemedy(t *testing.T) {
	// The Fig. 11 mechanism: transparent mode lets a Cubic flow bloat the
	// RLC queue so VoIP suffers; a second TC queue + filter + BDP pacer
	// protects it.
	run := func(useTC bool) (maxVoipRTT int64) {
		c := lteCell(t)
		ue, _ := c.Attach(1, "", "208.95", 28)
		voipFlow := FiveTuple{DstIP: 1, DstPort: 5060, Proto: ProtoUDP}
		voip := &CBR{Flow: voipFlow, Size: 172, IntervalMS: 20, ReturnDelayMS: 10}
		ue.AddSource(voip)
		ue.AddSource(&CubicFlow{Flow: FiveTuple{DstIP: 1, DstPort: 5001, Proto: ProtoTCP}, StartMS: 5000})
		if useTC {
			q := ue.TC().AddQueue()
			if err := ue.TC().AddFilter(TCFilter{
				Match: TCMatch{DstPort: 5060, Proto: ProtoUDP, MatchProto: true},
				Queue: q,
			}); err != nil {
				t.Fatal(err)
			}
			ue.TC().SetPacer(PacerBDP, 4)
		}
		c.Step(30000)
		for _, r := range voip.RTTs() {
			if r > maxVoipRTT {
				maxVoipRTT = r
			}
		}
		return maxVoipRTT
	}
	transparent := run(false)
	protected := run(true)
	if transparent < 200 {
		t.Fatalf("transparent-mode VoIP RTT max %d ms; bufferbloat should push it to hundreds of ms", transparent)
	}
	if protected > 60 {
		t.Fatalf("TC-protected VoIP RTT max %d ms, want < 60", protected)
	}
	// Paper: ~4x improvement; we only require a strong separation.
	if transparent < 4*protected {
		t.Fatalf("improvement %.1fx, want ≥4x (transparent %d, protected %d)",
			float64(transparent)/float64(protected), transparent, protected)
	}
}

func TestSplitNodes(t *testing.T) {
	c := lteCell(t)
	cu, du := Split(77, c)
	if cu.BSID != du.BSID {
		t.Fatal("CU and DU must share the BS identity")
	}
	if !cu.HasLayer(LayerPDCP) || cu.HasLayer(LayerMAC) {
		t.Fatal("CU layers wrong")
	}
	if !du.HasLayer(LayerMAC) || du.HasLayer(LayerPDCP) {
		t.Fatal("DU layers wrong")
	}
	mono := NewMonolithicNode(78, c)
	for _, l := range []Layer{LayerSDAP, LayerPDCP, LayerRRC, LayerRLC, LayerMAC, LayerPHY, LayerTC} {
		if !mono.HasLayer(l) {
			t.Fatalf("monolithic node missing %s", l)
		}
	}
	if cu.Cell() != c || du.Cell() != c {
		t.Fatal("nodes must expose the shared cell")
	}
}

func TestRRSchedulerEqualShare(t *testing.T) {
	c := nrCell(t)
	for i := 1; i <= 2; i++ {
		ue, _ := c.Attach(uint16(i), "", "208.95", 20)
		ue.AddSource(&Saturating{Flow: FiveTuple{DstIP: uint32(i)}, RateBytesPerMS: 1 << 20})
	}
	if err := c.ConfigureSlices([]nvs.Config{{ID: 0, Kind: nvs.KindCapacity, Capacity: 1.0, UESched: "rr"}}); err != nil {
		t.Fatal(err)
	}
	c.Step(3000)
	u1 := float64(c.UE(1).DeliveredBits())
	u2 := float64(c.UE(2).DeliveredBits())
	if math.Abs(u1-u2)/u1 > 0.05 {
		t.Fatalf("RR shares diverge: %v vs %v", u1, u2)
	}
}

func TestInvalidConfigs(t *testing.T) {
	if _, err := NewCell(PHYConfig{NumRB: 0}); err == nil {
		t.Fatal("zero RB cell must fail")
	}
	if _, err := NewCell(PHYConfig{NumRB: 1000}); err == nil {
		t.Fatal("absurd RB count must fail")
	}
	if _, err := ParseUESched("fifo"); err == nil {
		t.Fatal("unknown sched must fail")
	}
	c := lteCell(t)
	if err := c.AssociateUE(9, 1); err == nil {
		t.Fatal("associating unknown UE must fail")
	}
	if err := c.WithUE(9, func(*UE) error { return nil }); err == nil {
		t.Fatal("WithUE unknown must fail")
	}
}

func TestMACStatsAccounting(t *testing.T) {
	c := lteCell(t)
	ue, _ := c.Attach(1, "", "208.95", 28)
	ue.AddSource(&Saturating{Flow: FiveTuple{DstIP: 1}, RateBytesPerMS: 1 << 20})
	c.Step(100)
	ms := ue.MACStats()
	if ms.TxBits == 0 || ms.RBsUsed == 0 {
		t.Fatalf("MAC stats empty: %+v", ms)
	}
	if ms.CQI != CQIFromMCS(28) || ms.MCS != 28 {
		t.Fatalf("CQI/MCS: %+v", ms)
	}
	ps := ue.PDCPStats()
	if ps.TxPackets == 0 || ps.TxBytes == 0 {
		t.Fatalf("PDCP stats empty: %+v", ps)
	}
	if c.TotalTxBits() != ms.TxBits {
		t.Fatalf("cell total %d != ue %d", c.TotalTxBits(), ms.TxBits)
	}
}

func BenchmarkCellStep3UE(b *testing.B) { benchCellStep(b, 3) }

func BenchmarkCellStep32UE(b *testing.B) { benchCellStep(b, 32) }

func benchCellStep(b *testing.B, n int) {
	c, err := NewCell(PHYConfig{RAT: RAT4G, NumRB: 25})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		ue, err := c.Attach(uint16(i+1), "", "208.95", 28)
		if err != nil {
			b.Fatal(err)
		}
		ue.AddSource(&Saturating{Flow: FiveTuple{DstIP: uint32(i)}, RateBytesPerMS: 20000})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step(1)
	}
}
