// Package ran implements a slot-driven (1 ms TTI) discrete-event radio
// access network user-plane simulator: PHY capacity model, MAC scheduling
// with slice and UE schedulers, RLC buffering (including the bufferbloat
// dynamics of §6.1.1), PDCP/SDAP accounting, the TC sublayer (classifier,
// queues, pacer), traffic generation with a loss-based Cubic congestion-
// control model, and CU/DU disaggregation.
//
// It substitutes for the paper's OpenAirInterface 4G/5G user plane and
// "L2 simulator": the SDK experiments exercise per-TTI statistics
// generation, slice scheduling and queueing behaviour, all of which this
// simulator reproduces (see DESIGN.md, substitution table).
package ran

import "fmt"

// TTI is the transmission time interval in milliseconds. Both 4G and the
// paper's NR numerology-0 configuration use 1 ms.
const TTI = 1

// RAT identifies the radio access technology of a cell.
type RAT uint8

// Supported RATs.
const (
	RAT4G RAT = iota
	RAT5G
)

func (r RAT) String() string {
	if r == RAT4G {
		return "4G"
	}
	return "5G"
}

// MaxMCS is the highest modulation-and-coding-scheme index.
const MaxMCS = 28

// mcsEfficiency maps MCS index to spectral efficiency in bits per
// resource element, following the 3GPP 64QAM CQI/MCS tables closely
// enough for throughput shape (MCS 28 ≈ 5.5 b/RE, MCS 20 ≈ 3.9 b/RE).
var mcsEfficiency = [MaxMCS + 1]float64{
	0.15, 0.19, 0.23, 0.30, 0.37, 0.44, 0.59, 0.74, 0.88, 1.03,
	1.18, 1.33, 1.48, 1.70, 1.91, 2.16, 2.41, 2.57, 2.87, 3.26,
	3.90, 4.21, 4.52, 4.82, 5.12, 5.33, 5.55, 5.55, 5.55,
}

// dataREsPerRB is the number of resource elements per resource block per
// TTI usable for data after control/reference-signal overhead
// (12 subcarriers × 14 symbols minus ~20 % overhead).
const dataREsPerRB = 134

// BitsPerRB returns the transport capacity of one resource block in one
// TTI at the given MCS.
func BitsPerRB(mcs int) int {
	if mcs < 0 {
		mcs = 0
	}
	if mcs > MaxMCS {
		mcs = MaxMCS
	}
	return int(mcsEfficiency[mcs] * dataREsPerRB)
}

// CellCapacityBits returns the aggregate downlink capacity of numRB
// resource blocks in one TTI at the given MCS.
func CellCapacityBits(numRB, mcs int) int { return numRB * BitsPerRB(mcs) }

// CQIFromMCS inverts the (approximate) CQI→MCS mapping used by the MAC
// stats service model: MCS ≈ 2·CQI − 2 ⇒ CQI ≈ (MCS + 2) / 2.
func CQIFromMCS(mcs int) int {
	cqi := (mcs + 2) / 2
	if cqi < 1 {
		cqi = 1
	}
	if cqi > 15 {
		cqi = 15
	}
	return cqi
}

// PHYConfig describes a cell's radio configuration.
type PHYConfig struct {
	RAT RAT
	// NumRB is the carrier bandwidth in resource blocks (25 ⇒ 5 MHz LTE,
	// 50 ⇒ 10 MHz LTE, 106 ⇒ 20 MHz NR).
	NumRB int
	// Band is informational (e.g. 7 for LTE band 7, 78 for n78).
	Band int
}

// Validate checks the configuration.
func (c PHYConfig) Validate() error {
	if c.NumRB <= 0 || c.NumRB > 275 {
		return fmt.Errorf("ran: NumRB %d outside (0,275]", c.NumRB)
	}
	return nil
}
