package ran

// Proto identifies a transport protocol in a packet 5-tuple.
type Proto uint8

// Transport protocols.
const (
	ProtoUDP Proto = 17
	ProtoTCP Proto = 6
)

// FiveTuple identifies a flow, as used by the TC SM's OSI classifier
// (§6.1.1: "source and destination addresses and ports, as well as,
// protocol").
type FiveTuple struct {
	SrcIP   uint32
	DstIP   uint32
	SrcPort uint16
	DstPort uint16
	Proto   Proto
}

// Packet is a downlink user-plane packet traversing
// SDAP → TC → PDCP → RLC → MAC.
type Packet struct {
	Flow FiveTuple
	Size int // bytes
	Seq  uint64
	// EnqueueTC/EnqueueRLC are simulator timestamps (ms) stamped as the
	// packet enters each buffer, for sojourn-time accounting.
	EnqueueTC  int64
	EnqueueRLC int64
	// Sent is when the application handed the packet to the network.
	Sent int64
	// onDeliver, if set, is invoked when the MAC completes transmission
	// (used by traffic sources for ACK/RTT bookkeeping).
	onDeliver func(p *Packet, now int64)
	// onDrop, if set, is invoked when a queue discards the packet.
	onDrop func(p *Packet, now int64)
}

// Deliver runs the delivery callback.
func (p *Packet) Deliver(now int64) {
	if p.onDeliver != nil {
		p.onDeliver(p, now)
	}
}

// Drop runs the drop callback.
func (p *Packet) Drop(now int64) {
	if p.onDrop != nil {
		p.onDrop(p, now)
	}
}
