package ran

import "sync"

// Proto identifies a transport protocol in a packet 5-tuple.
type Proto uint8

// Transport protocols.
const (
	ProtoUDP Proto = 17
	ProtoTCP Proto = 6
)

// FiveTuple identifies a flow, as used by the TC SM's OSI classifier
// (§6.1.1: "source and destination addresses and ports, as well as,
// protocol").
type FiveTuple struct {
	SrcIP   uint32
	DstIP   uint32
	SrcPort uint16
	DstPort uint16
	Proto   Proto
}

// Packet is a downlink user-plane packet traversing
// SDAP → TC → PDCP → RLC → MAC.
type Packet struct {
	Flow FiveTuple
	Size int // bytes
	Seq  uint64
	// EnqueueTC/EnqueueRLC are simulator timestamps (ms) stamped as the
	// packet enters each buffer, for sojourn-time accounting.
	EnqueueTC  int64
	EnqueueRLC int64
	// Sent is when the application handed the packet to the network.
	Sent int64
	// onDeliver, if set, is invoked when the MAC completes transmission
	// (used by traffic sources for ACK/RTT bookkeeping).
	onDeliver func(p *Packet, now int64)
	// onDrop, if set, is invoked when a queue discards the packet.
	onDrop func(p *Packet, now int64)
	// pooled marks packets obtained from pktPool; only those are
	// recycled at end of life. Caller-constructed packets (tests,
	// external Submit users) stay owned by their creators.
	pooled bool
}

// pktPool recycles Packets through the SDAP → TC → PDCP → RLC → MAC
// lifecycle. At million-UE footprints the traffic sources emit tens of
// thousands of packets per TTI; without recycling those allocations keep
// the garbage collector re-scanning a multi-gigabyte, pointer-dense heap
// (every queued packet carries two callback pointers) and GC dominates
// the slot loop.
var pktPool = sync.Pool{New: func() any { return new(Packet) }}

// newPacket returns a zeroed pool packet. The packet must reach one of
// the bearer-path death sites (MAC delivery or a queue drop), where it
// is released back to the pool.
func newPacket() *Packet {
	p := pktPool.Get().(*Packet)
	*p = Packet{pooled: true}
	return p
}

// releasePacket returns a dead packet to the pool. The caller must hold
// the packet's final reference: delivery/drop callbacks have already
// run, and after release any traffic source in the process may hand the
// packet out again. Non-pool packets are left untouched.
func releasePacket(p *Packet) {
	if !p.pooled {
		return
	}
	*p = Packet{}
	pktPool.Put(p)
}

// Deliver runs the delivery callback.
func (p *Packet) Deliver(now int64) {
	if p.onDeliver != nil {
		p.onDeliver(p, now)
	}
}

// Drop runs the drop callback.
func (p *Packet) Drop(now int64) {
	if p.onDrop != nil {
		p.onDrop(p, now)
	}
}
