package ran

import (
	"fmt"

	"flexric/internal/nvs"
)

// The MAC scheduler implements the two-level structure of the slicing
// control SM (Fig. 12): "Upon the MAC scheduling phase, first the slice
// scheduler distributes resources among slices, and for each selected
// slice, the corresponding UE scheduler distributes resources among the
// UEs."

// SliceMode selects the slice-scheduler algorithm.
type SliceMode uint8

// Slice scheduler algorithms.
const (
	// SliceNone disables slicing: all UEs share one scheduler pool.
	SliceNone SliceMode = iota
	// SliceNVS uses the NVS algorithm (isolation + sharing).
	SliceNVS
)

func (m SliceMode) String() string {
	if m == SliceNVS {
		return "nvs"
	}
	return "none"
}

// UESched selects the per-slice user scheduler.
type UESched uint8

// User scheduler algorithms.
const (
	// SchedPF is proportional fair.
	SchedPF UESched = iota
	// SchedRR is round robin.
	SchedRR
)

// ParseUESched maps SM string names to scheduler constants.
func ParseUESched(s string) (UESched, error) {
	switch s {
	case "", "pf":
		return SchedPF, nil
	case "rr":
		return SchedRR, nil
	default:
		return 0, fmt.Errorf("ran: unknown UE scheduler %q", s)
	}
}

type mac struct {
	mode    SliceMode
	nvs     *nvs.Scheduler
	ueSched map[uint32]UESched // per-slice user scheduler
	rrCur   int                // round-robin rotation cursor

	// Per-TTI scratch, reused across slots to keep scheduling
	// allocation-free.
	dead        []bool
	members     []*UE
	sliceActive map[uint32]bool
}

func newMAC() *mac {
	return &mac{
		nvs:         nvs.NewScheduler(),
		ueSched:     make(map[uint32]UESched),
		sliceActive: make(map[uint32]bool),
	}
}

// configureSlices installs the NVS slice set and per-slice UE schedulers.
func (m *mac) configureSlices(cfgs []nvs.Config) error {
	if err := m.nvs.Admit(cfgs); err != nil {
		return err
	}
	m.mode = SliceNVS
	for _, c := range cfgs {
		sched, err := ParseUESched(c.UESched)
		if err != nil {
			return err
		}
		m.ueSched[c.ID] = sched
	}
	return nil
}

// disableSlicing returns to the shared-pool scheduler.
func (m *mac) disableSlicing() { m.mode = SliceNone }

// schedule runs one TTI: selects UEs, drains their RLC queues against the
// cell capacity, and returns total transmitted bits. cands are the
// backlogged UEs in canonical (shard, slot) order — the cell pre-filters
// on hasData so idle UEs never reach the scheduler.
func (m *mac) schedule(cands []*UE, numRB int, now int64) int {
	switch m.mode {
	case SliceNVS:
		return m.scheduleNVS(cands, numRB, now)
	default:
		return m.scheduleUEs(cands, SchedPF, numRB, now)
	}
}

func (m *mac) scheduleNVS(cands []*UE, numRB int, now int64) int {
	// Build slice activity from the backlogged candidates.
	clear(m.sliceActive)
	for _, u := range cands {
		m.sliceActive[u.SliceID] = true
	}
	id, ok := m.nvs.Pick(m.sliceActive)
	if !ok {
		m.nvs.Update(0, false, 0)
		return 0
	}
	m.members = m.members[:0]
	for _, u := range cands {
		if u.SliceID == id {
			m.members = append(m.members, u)
		}
	}
	bits := m.scheduleUEs(m.members, m.ueSched[id], numRB, now)
	// Achieved rate over the interval in bits/s.
	m.nvs.Update(id, true, float64(bits)*1000/TTI)
	return bits
}

// scheduleUEs distributes numRB blocks among the given UEs using the
// selected policy and drains their queues. Work-conserving: blocks
// unused by a drained UE are offered to the others.
func (m *mac) scheduleUEs(ues []*UE, policy UESched, numRB int, now int64) int {
	if len(ues) == 0 || numRB <= 0 {
		return 0
	}
	const pfAlpha = 1.0 / 128
	totalBits := 0
	remaining := numRB
	// Allocate in chunks to bound per-TTI work for large bandwidths.
	chunk := numRB / (4 * len(ues))
	if chunk < 1 {
		chunk = 1
	}
	live := len(ues)
	if cap(m.dead) < len(ues) {
		m.dead = make([]bool, len(ues))
	}
	dead := m.dead[:len(ues)]
	for i := range dead {
		dead[i] = false
	}
	for remaining > 0 && live > 0 {
		// Pick the next UE per policy.
		best := -1
		switch policy {
		case SchedRR:
			for i := 0; i < len(ues); i++ {
				cand := (m.rrCur + i) % len(ues)
				if !dead[cand] {
					best = cand
					m.rrCur = cand + 1
					break
				}
			}
		default: // PF: max instantaneous-over-average rate
			bestMetric := -1.0
			for i, u := range ues {
				if dead[i] {
					continue
				}
				inst := float64(BitsPerRB(int(u.sh.mcs[u.slot])))
				metric := inst / (u.sh.pf[u.slot] + 1e-9)
				if metric > bestMetric {
					bestMetric = metric
					best = i
				}
			}
		}
		if best < 0 {
			break
		}
		rbs := chunk
		if rbs > remaining {
			rbs = remaining
		}
		u := ues[best]
		bits := u.drain(rbs, now)
		totalBits += bits
		remaining -= rbs
		// Tentatively raise the PF average so subsequent chunks in this
		// TTI spread across UEs.
		u.sh.pf[u.slot] += pfAlpha * float64(bits)
		if !u.hasData() {
			dead[best] = true
			live--
		}
	}
	// Finalize PF averages: decay everyone, credit what they received.
	for _, u := range ues {
		u.sh.pf[u.slot] = (1 - pfAlpha) * u.sh.pf[u.slot]
	}
	return totalBits
}
