package ran

import "testing"

func TestFixedChannel(t *testing.T) {
	c := lteCell(t)
	ue, _ := c.Attach(1, "", "208.95", 10)
	if err := c.SetChannel(1, FixedChannel(22)); err != nil {
		t.Fatal(err)
	}
	c.Step(5)
	if ue.MCS() != 22 {
		t.Fatalf("MCS %d, want 22", ue.MCS())
	}
	if err := c.SetChannel(9, FixedChannel(1)); err == nil {
		t.Fatal("unknown UE must fail")
	}
}

func TestRandomWalkChannelBoundsAndDeterminism(t *testing.T) {
	run := func(seed int64) []int {
		w := &RandomWalkChannel{Min: 5, Max: 20, CoherenceMS: 2, Seed: seed}
		var out []int
		for now := int64(1); now <= 2000; now++ {
			m := w.NextMCS(now)
			if m < 5 || m > 20 {
				t.Fatalf("MCS %d escaped [5,20]", m)
			}
			out = append(out, m)
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must be deterministic")
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should diverge")
	}
	// The walk must actually move.
	moved := false
	for i := 1; i < len(a); i++ {
		if a[i] != a[i-1] {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("random walk never moved")
	}
}

func TestRandomWalkClampsConfig(t *testing.T) {
	w := &RandomWalkChannel{Min: -5, Max: 99, Seed: 1}
	m := w.NextMCS(1)
	if m < 0 || m > MaxMCS {
		t.Fatalf("initial MCS %d outside valid range", m)
	}
}

func TestChannelVariationAffectsThroughput(t *testing.T) {
	// A varying channel changes the delivered rate over time; the RLC
	// buffer absorbs it (the bufferbloat precondition).
	c := lteCell(t)
	ue, _ := c.Attach(1, "", "208.95", 28)
	ue.AddSource(&Saturating{Flow: FiveTuple{DstIP: 1}, RateBytesPerMS: 1 << 20})
	if err := c.SetChannel(1, &RandomWalkChannel{Min: 3, Max: 28, CoherenceMS: 20, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	var rates []uint64
	last := uint64(0)
	for i := 0; i < 10; i++ {
		c.Step(500)
		now := ue.DeliveredBits()
		rates = append(rates, now-last)
		last = now
	}
	varied := false
	for i := 1; i < len(rates); i++ {
		d := int64(rates[i]) - int64(rates[i-1])
		if d < 0 {
			d = -d
		}
		if float64(d) > 0.1*float64(rates[i-1]) {
			varied = true
			break
		}
	}
	if !varied {
		t.Fatalf("throughput never varied >10%%: %v", rates)
	}
}
