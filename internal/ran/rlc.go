package ran

// RLCQueue models one RLC entity's downlink buffer for a data radio
// bearer (DRB). The paper (§6.1.1): "the RLC sublayer is provided with
// large buffers to absorb the brusque changes that the radio channel may
// suffer" — which is exactly what makes it the bufferbloat locus when a
// loss-based congestion controller shares it.
//
// The queue is byte-bounded drop-tail. Packets are drained in FIFO order
// by the MAC; partial packets carry over between TTIs (segmentation).
type RLCQueue struct {
	// MaxBytes bounds the buffer; 0 means the package default.
	MaxBytes int

	pkts    []*Packet
	head    int // index of first unsent packet
	headRem int // unsent bytes remaining of pkts[head]
	bytes   int // total queued bytes

	stats RLCStats
}

// DefaultRLCBufBytes reflects the "large buffers" of production RLC
// configurations (3 MB ≈ hundreds of ms of backlog at tens of Mbps).
const DefaultRLCBufBytes = 3 << 20

// RLCStats are the counters exported by the RLC monitoring SM.
type RLCStats struct {
	TxPackets   uint64 // packets fully transmitted
	TxBytes     uint64
	RxPackets   uint64 // packets accepted into the buffer
	RxBytes     uint64
	DropPackets uint64 // drop-tail losses
	DropBytes   uint64
	BufferBytes int   // current backlog
	BufferPkts  int   // current queued packets
	SojournMS   int64 // sojourn time of the most recently dequeued packet
}

func (q *RLCQueue) limit() int {
	if q.MaxBytes > 0 {
		return q.MaxBytes
	}
	return DefaultRLCBufBytes
}

// Enqueue accepts p at time now, or drops it when the buffer is full.
// It reports whether the packet was accepted.
func (q *RLCQueue) Enqueue(p *Packet, now int64) bool {
	if q.bytes+p.Size > q.limit() {
		q.stats.DropPackets++
		q.stats.DropBytes += uint64(p.Size)
		p.Drop(now)
		releasePacket(p)
		return false
	}
	p.EnqueueRLC = now
	q.pkts = append(q.pkts, p)
	q.bytes += p.Size
	q.stats.RxPackets++
	q.stats.RxBytes += uint64(p.Size)
	return true
}

// Drain transmits up to budget bytes at time now, invoking delivery
// callbacks for every packet whose last byte leaves the buffer. It
// returns the bytes actually consumed.
func (q *RLCQueue) Drain(budget int, now int64) int {
	used := 0
	for budget > 0 && q.head < len(q.pkts) {
		p := q.pkts[q.head]
		rem := q.headRem
		if rem == 0 {
			rem = p.Size
		}
		take := rem
		if take > budget {
			take = budget
		}
		budget -= take
		used += take
		rem -= take
		if rem > 0 {
			q.headRem = rem
			break
		}
		// Packet fully transmitted.
		q.headRem = 0
		q.pkts[q.head] = nil
		q.head++
		q.bytes -= p.Size
		q.stats.TxPackets++
		q.stats.TxBytes += uint64(p.Size)
		q.stats.SojournMS = now - p.EnqueueRLC
		p.Deliver(now)
		releasePacket(p)
	}
	// A fully drained queue resets in place, so the next enqueue reuses
	// the slice capacity instead of regrowing past the dead prefix.
	if q.head == len(q.pkts) {
		q.pkts = q.pkts[:0]
		q.head = 0
	} else if q.head > 64 && q.head*2 >= len(q.pkts) {
		// Compact once the dead prefix grows.
		n := copy(q.pkts, q.pkts[q.head:])
		for i := n; i < len(q.pkts); i++ {
			q.pkts[i] = nil
		}
		q.pkts = q.pkts[:n]
		q.head = 0
	}
	return used
}

// Backlog returns the queued bytes.
func (q *RLCQueue) Backlog() int { return q.bytes }

// HasData reports whether any bytes remain to transmit.
func (q *RLCQueue) HasData() bool { return q.bytes > 0 }

// OldestSojournMS returns how long the head-of-line packet has been
// queued, or 0 when empty. This is the live sojourn signal the TC xApp
// monitors in Fig. 11.
func (q *RLCQueue) OldestSojournMS(now int64) int64 {
	if q.head >= len(q.pkts) {
		return 0
	}
	return now - q.pkts[q.head].EnqueueRLC
}

// Stats returns a snapshot of the RLC counters.
func (q *RLCQueue) Stats() RLCStats {
	s := q.stats
	s.BufferBytes = q.bytes
	s.BufferPkts = len(q.pkts) - q.head
	return s
}
