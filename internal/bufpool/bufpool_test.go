package bufpool

import (
	"sync"
	"testing"
)

func TestGetLenAndClassCap(t *testing.T) {
	cases := []struct {
		n, wantCap int
	}{
		{0, 64}, {1, 64}, {64, 64}, {65, 128}, {1500, 2048},
		{4096, 4096}, {maxClassSize, maxClassSize},
	}
	for _, c := range cases {
		b := Get(c.n)
		if len(b) != c.n {
			t.Fatalf("Get(%d): len=%d", c.n, len(b))
		}
		if cap(b) != c.wantCap {
			t.Fatalf("Get(%d): cap=%d, want %d", c.n, cap(b), c.wantCap)
		}
		Put(b)
	}
}

func TestGetOversizeBypassesPool(t *testing.T) {
	b := Get(maxClassSize + 1)
	if len(b) != maxClassSize+1 {
		t.Fatalf("len=%d", len(b))
	}
	Put(b) // must be a no-op, not a panic
}

func TestPutRejectsTiny(t *testing.T) {
	Put(make([]byte, 0, minClassSize-1)) // dropped silently
	Put(nil)
}

// TestRecycle proves a Put buffer is handed back by Get (same backing
// array) when the class free list is otherwise empty.
func TestRecycle(t *testing.T) {
	// Drain the class so the next Put/Get pair must meet.
	for {
		select {
		case <-classes[classFor(100)]:
			continue
		default:
		}
		break
	}
	b := Get(100)
	b[0] = 0xAB
	Put(b)
	c := Get(100)
	if &b[0] != &c[0] {
		t.Fatal("Get did not recycle the Put buffer")
	}
	Put(c)
}

// TestPutFiledByFloorClass proves an append-grown buffer (cap between
// classes) recycles into the class it can actually serve.
func TestPutFiledByFloorClass(t *testing.T) {
	odd := make([]byte, 0, 96) // between the 64 B and 128 B classes
	Put(odd)
	// It must never come back from the 128 B class (cap too small).
	for i := 0; i < perClass+1; i++ {
		b := Get(128)
		if cap(b) < 128 {
			t.Fatalf("Get(128) returned cap %d", cap(b))
		}
	}
}

// TestConcurrentGetPutRace is the -race pool-reuse stress test: many
// goroutines Get, write a signature, resize by re-slicing, verify, and
// Put. Any aliasing bug (two owners of one array) trips the race
// detector via the conflicting signature writes.
func TestConcurrentGetPutRace(t *testing.T) {
	const goroutines = 8
	const rounds = 2000
	sizes := []int{1, 63, 64, 200, 1500, 5000, 70000}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(sig byte) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				n := sizes[i%len(sizes)]
				b := Get(n)
				if len(b) != n {
					t.Errorf("len=%d want %d", len(b), n)
					return
				}
				for j := range b {
					b[j] = sig
				}
				// Resize within capacity, as append-style encoders do.
				b = b[:cap(b)]
				b = b[:n]
				for j := range b {
					if b[j] != sig {
						t.Errorf("buffer shared while owned: got %x want %x", b[j], sig)
						return
					}
				}
				Put(b)
			}
		}(byte(g + 1))
	}
	wg.Wait()
}

func BenchmarkGetPut(b *testing.B) {
	b.ReportAllocs()
	// Warm the class so the steady state is measured.
	Put(Get(1500))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := Get(1500)
		Put(buf)
	}
}
