// Package bufpool recycles []byte frame buffers for the indication fast
// path. Every steady-state allocation between "RAN function produces a
// report" and "iApp callback returns" is either eliminated by an
// append-style API or funneled through this pool, which is what lets
// BenchmarkIndicationFastPath (gated in verify.sh) hold ≤2 allocs/op.
//
// # Design
//
// Buffers are filed into power-of-two size classes (64 B … 64 KiB),
// each backed by a fixed-capacity free list implemented as a buffered
// channel of []byte. A channel — not a sync.Pool — because Put'ing a
// []byte into a sync.Pool boxes the slice header into an interface{},
// which is itself one heap allocation per recycle; channel send/receive
// of a []byte moves the header without boxing, so the steady-state
// Get/Put cycle performs zero allocations. The price is a bounded pool:
// when a class's free list is full, Put drops the buffer for the GC to
// collect, which is the desired backpressure anyway.
//
// # Ownership contract
//
//   - Get(n) transfers ownership of the returned buffer to the caller.
//     Its contents are NOT zeroed — callers must overwrite all n bytes.
//   - Put(b) transfers ownership back. The caller must not read or
//     write b (or any slice aliasing its array) after Put: the same
//     array may be handed out by a concurrent Get immediately.
//   - Put accepts any []byte (including buffers not born from Get);
//     buffers with useless capacity (< the smallest class) or larger
//     than the biggest class are dropped.
//   - Double-Put is a caller bug the pool cannot detect: the same array
//     would be handed to two Gets. The -race stress test in
//     bufpool_test.go exists to catch exactly such misuse in the
//     transports and codecs layered on top.
package bufpool

const (
	// minClassBits..maxClassBits give classes 64 B, 128 B, … 64 KiB:
	// SM reports for 1–64 UEs, E2AP frames and broker frames all land
	// in this range (MaxMessageSize-sized outliers bypass the pool).
	minClassBits = 6
	maxClassBits = 16
	numClasses   = maxClassBits - minClassBits + 1

	minClassSize = 1 << minClassBits
	maxClassSize = 1 << maxClassBits

	// perClass bounds each free list. 256 × 64 KiB ≈ 16 MiB worst-case
	// retention for the top class; real workloads cluster in the small
	// classes.
	perClass = 256
)

// classes[i] holds free buffers with cap == 1<<(minClassBits+i).
var classes [numClasses]chan []byte

func init() {
	for i := range classes {
		classes[i] = make(chan []byte, perClass)
	}
}

// classFor returns the smallest class index whose size fits n, or -1
// when n exceeds the biggest class.
func classFor(n int) int {
	if n > maxClassSize {
		return -1
	}
	c := 0
	for (minClassSize << c) < n {
		c++
	}
	return c
}

// Get returns a buffer of length n. The buffer's capacity is the size
// of the smallest class fitting n; contents are arbitrary. Requests
// larger than the biggest class fall through to make.
func Get(n int) []byte {
	c := classFor(n)
	if c < 0 {
		return make([]byte, n)
	}
	select {
	case b := <-classes[c]:
		return b[:n]
	default:
		return make([]byte, n, minClassSize<<c)
	}
}

// Put recycles b. Only the capacity matters: the buffer is filed under
// the largest class not exceeding cap(b), so a Get-grown-by-append
// buffer still recycles into a (possibly smaller) class it can serve.
// After Put the caller must not touch b again.
func Put(b []byte) {
	c := cap(b)
	if c < minClassSize || c > maxClassSize {
		return
	}
	idx := 0
	for (minClassSize << (idx + 1)) <= c {
		idx++
	}
	select {
	case classes[idx] <- b[:0]:
	default: // class full: let the GC have it
	}
}
