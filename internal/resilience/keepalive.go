package resilience

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"flexric/internal/telemetry"
	"flexric/internal/transport"
)

// WrapConn returns c with keepalive emission and dead-peer detection
// per the config (call WithDefaults first; non-positive
// KeepaliveInterval and DeadAfter disable the respective behavior, and
// if both are disabled c is returned unchanged).
//
// The wire format is a zero-length frame: no E2AP codec ever emits an
// empty message, so keepalives cannot collide with protocol traffic,
// and the wrapper filters them out of Recv before the protocol layer
// looks. Keepalives are sent only when the connection has been idle for
// a full interval — a busy indication stream is its own liveness
// signal. Dead-peer detection re-arms a receive deadline before every
// blocking read; if nothing arrives within DeadAfter, Recv returns
// ErrPeerDead and the connection must be abandoned.
//
// The wrapper preserves RecvTimer when the inner connection measures
// reassembly. It does not expose RecvDeadliner: the deadline is owned
// by the dead-peer detector.
func (c Config) WrapConn(tc transport.Conn) transport.Conn {
	if tc == nil || (c.KeepaliveInterval <= 0 && c.DeadAfter <= 0) {
		return tc
	}
	k := &kaConn{
		inner:     tc,
		interval:  c.KeepaliveInterval,
		deadAfter: c.DeadAfter,
		done:      make(chan struct{}),
		tel: kaTel{
			sent:  telemetry.NewCounter("resilience.keepalives_sent"),
			recvd: telemetry.NewCounter("resilience.keepalives_recv"),
			dead:  telemetry.NewCounter("resilience.dead_peers"),
		},
	}
	if c.DeadAfter > 0 {
		// Dead-peer detection needs receive deadlines; a transport
		// without them degrades to keepalive emission only.
		k.rd, _ = tc.(transport.RecvDeadliner)
	}
	k.lastSendNS.Store(time.Now().UnixNano())
	if c.KeepaliveInterval > 0 {
		go k.keepaliveLoop()
	}
	if _, ok := tc.(transport.RecvTimer); ok {
		return &kaConnTimer{k}
	}
	return k
}

type kaTel struct {
	sent  *telemetry.Counter
	recvd *telemetry.Counter
	dead  *telemetry.Counter
}

// kaConn filters keepalives and polices peer liveness around an inner
// connection.
type kaConn struct {
	inner     transport.Conn
	rd        transport.RecvDeadliner // nil: no dead-peer detection
	interval  time.Duration
	deadAfter time.Duration

	// sendMu serializes application sends with the keepalive loop: the
	// transport contract forbids concurrent Sends.
	sendMu     sync.Mutex
	lastSendNS atomic.Int64

	closeOnce sync.Once
	done      chan struct{}

	tel kaTel
}

// Send implements transport.Conn. The added cost over the inner Send is
// one mutex and one atomic store — zero allocations (gated by
// BenchmarkResilienceSendHotPath).
func (k *kaConn) Send(b []byte) error {
	k.sendMu.Lock()
	err := k.inner.Send(b)
	k.sendMu.Unlock()
	if err == nil {
		k.lastSendNS.Store(time.Now().UnixNano())
	}
	return err
}

// SendBatch implements transport.BatchSender with the same liveness
// bookkeeping as Send; the inner batch path (a single vectored write on
// the stream transport) is preserved through the wrapper, keeping the
// batch fast path available on resilient connections.
func (k *kaConn) SendBatch(msgs [][]byte) error {
	k.sendMu.Lock()
	err := transport.SendBatch(k.inner, msgs)
	k.sendMu.Unlock()
	if err == nil {
		k.lastSendNS.Store(time.Now().UnixNano())
	}
	return err
}

// Recv implements transport.Conn. Keepalive frames are consumed
// silently; a receive deadline armed before every blocking read turns a
// silent peer into ErrPeerDead.
func (k *kaConn) Recv() ([]byte, error) { return k.recv(nil) }

// RecvBuf implements transport.BufRecver, forwarding the recycled
// buffer to the inner connection.
func (k *kaConn) RecvBuf(dst []byte) ([]byte, error) { return k.recv(dst) }

func (k *kaConn) recv(dst []byte) ([]byte, error) {
	for {
		if k.rd != nil {
			if err := k.rd.SetRecvDeadline(time.Now().Add(k.deadAfter)); err != nil {
				return nil, err
			}
		}
		b, err := transport.RecvBuf(k.inner, dst)
		if err != nil {
			if errors.Is(err, transport.ErrTimeout) {
				k.tel.dead.Inc()
				return nil, ErrPeerDead
			}
			return nil, err
		}
		if len(b) == 0 {
			// A consumed keepalive: dst has been handed to the inner
			// connection already, so the empty frame we got back is the
			// buffer to recycle on the next read.
			dst = b
			k.tel.recvd.Inc()
			continue
		}
		return b, nil
	}
}

// Close implements transport.Conn, stopping the keepalive loop.
func (k *kaConn) Close() error {
	k.closeOnce.Do(func() { close(k.done) })
	return k.inner.Close()
}

// RemoteAddr implements transport.Conn.
func (k *kaConn) RemoteAddr() string { return k.inner.RemoteAddr() }

// keepaliveLoop emits a zero-length frame whenever a full interval
// passes without an application send. It exits when the connection
// closes or a keepalive fails (the peer will be detected dead by its
// own reader; ours surfaces the error on the next Recv or Send).
func (k *kaConn) keepaliveLoop() {
	t := time.NewTicker(k.interval)
	defer t.Stop()
	for {
		select {
		case <-k.done:
			return
		case now := <-t.C:
			idle := now.UnixNano() - k.lastSendNS.Load()
			if idle < int64(k.interval) {
				continue
			}
			k.sendMu.Lock()
			err := k.inner.Send(nil)
			k.sendMu.Unlock()
			if err != nil {
				return
			}
			k.lastSendNS.Store(time.Now().UnixNano())
			k.tel.sent.Inc()
		}
	}
}

// kaConnTimer additionally forwards RecvTimer for inner connections
// that measure frame reassembly (the stream transport).
type kaConnTimer struct {
	*kaConn
}

// LastRecvDuration implements transport.RecvTimer.
func (k *kaConnTimer) LastRecvDuration() time.Duration {
	return k.inner.(transport.RecvTimer).LastRecvDuration()
}
