package resilience

import (
	"testing"

	"flexric/internal/transport"
)

// nullConn is an inner connection whose Send costs nothing and
// allocates nothing, so the benchmark isolates the wrapper's overhead.
type nullConn struct{}

func (nullConn) Send([]byte) error     { return nil }
func (nullConn) Recv() ([]byte, error) { <-make(chan struct{}); return nil, nil }
func (nullConn) Close() error          { return nil }
func (nullConn) RemoteAddr() string    { return "null" }

// BenchmarkResilienceSendHotPath gates the documented contract of
// kaConn.Send: the resilience wrapper adds one mutex and one atomic
// store to the indication hot path — and zero allocations (enforced at
// 0 allocs/op by scripts/verify.sh).
func BenchmarkResilienceSendHotPath(b *testing.B) {
	cfg := Config{}.WithDefaults()
	tc := cfg.WrapConn(nullConn{})
	defer tc.Close()
	if _, ok := tc.(*kaConn); !ok {
		b.Fatalf("WrapConn returned %T, want *kaConn", tc)
	}
	frame := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tc.Send(frame); err != nil {
			b.Fatal(err)
		}
	}
}

var _ transport.Conn = nullConn{}
