// Package resilience is the connection-lifecycle layer of the SDK: it
// turns the transport's fail-fast connections into endpoints that
// notice dead peers, survive drops, and come back. The paper's E2 agent
// "recovers the connection" to the RIC (§4.3); this package provides
// the mechanisms that recovery is built from:
//
//   - Keepalive + dead-peer detection (WrapConn): zero-length keepalive
//     frames flow whenever a connection goes idle, and a receive
//     deadline re-armed on every delivery converts a silent peer into
//     ErrPeerDead instead of a Recv that blocks forever. Zero-length
//     frames are free for this purpose — no E2AP codec emits an empty
//     message — and are filtered out before the application sees them,
//     so the wrapper is invisible to the protocol layer.
//
//   - Backoff: capped exponential retry delays with seeded jitter, the
//     schedule the agent's reconnect supervisor walks between redial
//     attempts (see internal/agent).
//
// The server-side half of recovery — retaining a disconnected agent's
// subscriptions and replaying them on reconnect — lives in
// internal/server and is configured through the same Config.
//
// Everything here is always compiled in (it is a production feature,
// unlike internal/faultinject); the keepalive send path adds zero
// allocations so the wrapper is safe on the hot path.
package resilience

import (
	"errors"
	"time"
)

// ErrPeerDead reports a connection whose peer stopped responding: no
// frame (not even a keepalive) arrived within Config.DeadAfter.
var ErrPeerDead = errors.New("resilience: peer dead")

// Defaults applied by Config.WithDefaults.
const (
	// DefaultKeepaliveInterval is how long a connection may sit idle
	// before a keepalive frame is emitted.
	DefaultKeepaliveInterval = 1 * time.Second
	// DefaultDeadAfter declares a peer dead after three missed
	// keepalive intervals.
	DefaultDeadAfter = 3 * DefaultKeepaliveInterval
	// DefaultRetainFor is how long the server keeps a disconnected
	// agent's subscriptions for replay before dropping them for good.
	DefaultRetainFor = 30 * time.Second
)

// Config selects the resilience behaviors for one endpoint. The zero
// value (via WithDefaults) enables keepalives, dead-peer detection, the
// default backoff schedule, and unlimited reconnect attempts.
type Config struct {
	// KeepaliveInterval is the idle period after which a keepalive
	// frame is sent. Negative disables keepalive emission.
	KeepaliveInterval time.Duration
	// DeadAfter is the receive deadline re-armed on every delivery: if
	// nothing arrives for this long the peer is declared dead. Negative
	// disables dead-peer detection. It should comfortably exceed
	// KeepaliveInterval (the default is 3x).
	DeadAfter time.Duration
	// Backoff shapes the reconnect schedule (agent side).
	Backoff BackoffPolicy
	// MaxAttempts bounds consecutive failed reconnect attempts before
	// the agent's supervisor gives up; 0 means retry forever.
	MaxAttempts int
	// RetainFor is how long the server retains a disconnected agent's
	// subscriptions for replay on reconnect; negative disables
	// retention (disconnect drops everything immediately, the
	// pre-resilience behavior).
	RetainFor time.Duration
}

// WithDefaults returns c with zero fields replaced by the documented
// defaults. Negative durations mean "disabled" and are preserved.
func (c Config) WithDefaults() Config {
	if c.KeepaliveInterval == 0 {
		c.KeepaliveInterval = DefaultKeepaliveInterval
	}
	if c.DeadAfter == 0 {
		c.DeadAfter = 3 * c.KeepaliveInterval
		if c.DeadAfter <= 0 {
			c.DeadAfter = DefaultDeadAfter
		}
	}
	if c.RetainFor == 0 {
		c.RetainFor = DefaultRetainFor
	}
	c.Backoff = c.Backoff.withDefaults()
	return c
}
