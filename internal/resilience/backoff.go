package resilience

import (
	"math/rand"
	"time"
)

// BackoffPolicy describes a capped exponential retry schedule with
// jitter: attempt k (0-based) waits Base*Multiplier^k, capped at Max,
// then stretched by a random factor in [1-Jitter, 1+Jitter). Jitter is
// seeded, so a given policy produces one reproducible schedule — chaos
// runs replay exactly.
type BackoffPolicy struct {
	// Base is the first delay. Default 100ms.
	Base time.Duration
	// Max caps every delay (before jitter). Default 5s.
	Max time.Duration
	// Multiplier is the per-attempt growth factor. Default 2.
	Multiplier float64
	// Jitter is the random stretch fraction in [0, 1). Default 0.2.
	// Negative disables jitter.
	Jitter float64
	// Seed drives the jitter sequence. Default 1.
	Seed int64
}

func (p BackoffPolicy) withDefaults() BackoffPolicy {
	if p.Base <= 0 {
		p.Base = 100 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 5 * time.Second
	}
	if p.Multiplier <= 1 {
		p.Multiplier = 2
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// Backoff walks a BackoffPolicy's schedule. Not safe for concurrent
// use; each reconnect supervisor owns one.
type Backoff struct {
	p       BackoffPolicy
	rng     *rand.Rand
	attempt int
}

// NewBackoff returns a schedule walker for p (zero fields defaulted).
func NewBackoff(p BackoffPolicy) *Backoff {
	p = p.withDefaults()
	return &Backoff{p: p, rng: rand.New(rand.NewSource(p.Seed))}
}

// Next returns the delay before the next attempt and advances the
// schedule.
func (b *Backoff) Next() time.Duration {
	d := float64(b.p.Base)
	for i := 0; i < b.attempt; i++ {
		d *= b.p.Multiplier
		if d >= float64(b.p.Max) {
			d = float64(b.p.Max)
			break
		}
	}
	if d > float64(b.p.Max) {
		d = float64(b.p.Max)
	}
	b.attempt++
	if b.p.Jitter > 0 {
		d *= 1 - b.p.Jitter + 2*b.p.Jitter*b.rng.Float64()
	}
	return time.Duration(d)
}

// Attempt reports how many delays have been handed out since the last
// Reset.
func (b *Backoff) Attempt() int { return b.attempt }

// Reset rewinds the schedule to the first delay; called after a
// successful reconnect so the next failure starts cheap again.
func (b *Backoff) Reset() { b.attempt = 0 }
