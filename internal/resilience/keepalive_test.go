package resilience

import (
	"errors"
	"testing"
	"time"

	"flexric/internal/transport"
)

func pipePair(t *testing.T, name string) (client, server transport.Conn) {
	t.Helper()
	l, err := transport.Listen(transport.KindPipe, name)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	accepted := make(chan transport.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	c, err := transport.Dial(transport.KindPipe, name)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, <-accepted
}

// An idle wrapped connection must emit zero-length keepalive frames.
func TestKeepaliveEmission(t *testing.T) {
	client, server := pipePair(t, "res-emit")
	cfg := Config{KeepaliveInterval: 30 * time.Millisecond, DeadAfter: -1}
	wc := cfg.WrapConn(client)
	defer wc.Close()
	deadline := time.After(3 * time.Second)
	got := make(chan []byte, 1)
	go func() {
		b, err := server.Recv()
		if err == nil {
			got <- b
		}
	}()
	select {
	case b := <-got:
		if len(b) != 0 {
			t.Fatalf("first idle frame = %q, want zero-length keepalive", b)
		}
	case <-deadline:
		t.Fatal("no keepalive within 3s of idling")
	}
}

// Application traffic suppresses keepalives, and incoming keepalives
// are filtered out of Recv.
func TestKeepaliveFilteredAndSuppressed(t *testing.T) {
	client, server := pipePair(t, "res-filter")
	cfg := Config{KeepaliveInterval: 40 * time.Millisecond, DeadAfter: -1}
	wc := cfg.WrapConn(client)
	defer wc.Close()

	// Keep the client busy for several intervals: the peer must see
	// only application frames.
	stop := time.Now().Add(200 * time.Millisecond)
	n := 0
	for time.Now().Before(stop) {
		if err := wc.Send([]byte("data")); err != nil {
			t.Fatal(err)
		}
		n++
		time.Sleep(10 * time.Millisecond)
	}
	for i := 0; i < n; i++ {
		b, err := server.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if len(b) == 0 {
			t.Fatal("keepalive emitted while traffic was flowing")
		}
	}

	// Keepalives from the peer are invisible to the wrapped Recv.
	if err := server.Send(nil); err != nil {
		t.Fatal(err)
	}
	if err := server.Send([]byte("real")); err != nil {
		t.Fatal(err)
	}
	b, err := wc.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "real" {
		t.Fatalf("Recv = %q, want the keepalive filtered out", b)
	}
}

// A peer that goes fully silent must surface as ErrPeerDead within
// DeadAfter.
func TestDeadPeerDetection(t *testing.T) {
	client, _ := pipePair(t, "res-dead")
	cfg := Config{KeepaliveInterval: -1, DeadAfter: 80 * time.Millisecond}
	wc := cfg.WrapConn(client)
	defer wc.Close()
	t0 := time.Now()
	_, err := wc.Recv()
	if !errors.Is(err, ErrPeerDead) {
		t.Fatalf("Recv from silent peer = %v, want ErrPeerDead", err)
	}
	if elapsed := time.Since(t0); elapsed > 5*time.Second {
		t.Fatalf("dead-peer detection took %v", elapsed)
	}
}

// A peer that only sends keepalives stays alive: each keepalive re-arms
// the deadline, so Recv keeps blocking until real data arrives.
func TestKeepalivesKeepPeerAlive(t *testing.T) {
	client, server := pipePair(t, "res-alive")
	cfg := Config{KeepaliveInterval: -1, DeadAfter: 120 * time.Millisecond}
	wc := cfg.WrapConn(client)
	defer wc.Close()

	// The peer idles past DeadAfter in total, but never past it between
	// keepalives; then speaks.
	go func() {
		for i := 0; i < 6; i++ {
			time.Sleep(50 * time.Millisecond)
			if err := server.Send(nil); err != nil {
				return
			}
		}
		_ = server.Send([]byte("finally"))
	}()
	b, err := wc.Recv()
	if err != nil {
		t.Fatalf("Recv = %v, want keepalives to hold the peer alive", err)
	}
	if string(b) != "finally" {
		t.Fatalf("Recv = %q", b)
	}
}

// Wrapping must be the identity when both behaviors are disabled, and
// must preserve RecvTimer exactly where the inner conn has it.
func TestWrapConnInterfaces(t *testing.T) {
	client, _ := pipePair(t, "res-iface")
	off := Config{KeepaliveInterval: -1, DeadAfter: -1}
	if off.WrapConn(client) != client {
		t.Error("fully disabled config must not wrap")
	}

	cfg := Config{KeepaliveInterval: -1, DeadAfter: time.Second}
	wp := cfg.WrapConn(client)
	if _, ok := wp.(transport.RecvTimer); ok {
		t.Error("wrapped pipe conn must not implement RecvTimer")
	}
	if _, ok := wp.(transport.RecvDeadliner); ok {
		t.Error("wrapper must own the receive deadline, not re-expose it")
	}
	wp.Close()

	l, err := transport.Listen(transport.KindSCTPish, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err == nil {
			defer c.Close()
			_, _ = c.Recv()
		}
	}()
	sc, err := transport.Dial(transport.KindSCTPish, l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	ws := cfg.WrapConn(sc)
	defer ws.Close()
	if _, ok := ws.(transport.RecvTimer); !ok {
		t.Error("wrapped stream conn must implement RecvTimer")
	}
	if got, want := ws.RemoteAddr(), sc.RemoteAddr(); got != want {
		t.Errorf("RemoteAddr = %q, want %q", got, want)
	}
}
