package resilience

import (
	"testing"
	"time"
)

// Without jitter the schedule is exactly capped-exponential.
func TestBackoffGrowthAndCap(t *testing.T) {
	b := NewBackoff(BackoffPolicy{
		Base:       100 * time.Millisecond,
		Max:        time.Second,
		Multiplier: 2,
		Jitter:     -1, // disabled
	})
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		time.Second,
		time.Second,
	}
	for i, w := range want {
		if got := b.Next(); got != w {
			t.Errorf("attempt %d: %v, want %v", i, got, w)
		}
	}
	if b.Attempt() != len(want) {
		t.Errorf("Attempt = %d, want %d", b.Attempt(), len(want))
	}
	b.Reset()
	if got := b.Next(); got != want[0] {
		t.Errorf("after Reset: %v, want %v", got, want[0])
	}
}

// Jitter must stay inside the documented envelope and be reproducible
// for a given seed.
func TestBackoffJitterSeeded(t *testing.T) {
	p := BackoffPolicy{Base: 100 * time.Millisecond, Max: time.Second, Multiplier: 2, Jitter: 0.2, Seed: 42}
	a, b := NewBackoff(p), NewBackoff(p)
	base := NewBackoff(BackoffPolicy{Base: p.Base, Max: p.Max, Multiplier: p.Multiplier, Jitter: -1})
	for i := 0; i < 8; i++ {
		da, db, raw := a.Next(), b.Next(), base.Next()
		if da != db {
			t.Fatalf("attempt %d: same seed diverged (%v vs %v)", i, da, db)
		}
		lo := time.Duration(float64(raw) * 0.8)
		hi := time.Duration(float64(raw) * 1.2)
		if da < lo || da > hi {
			t.Errorf("attempt %d: %v outside [%v, %v]", i, da, lo, hi)
		}
	}
	// A different seed should produce a different schedule.
	p2 := p
	p2.Seed = 43
	c := NewBackoff(p2)
	same := true
	d := NewBackoff(p)
	for i := 0; i < 8; i++ {
		if c.Next() != d.Next() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}
}

// The zero policy must resolve to the documented defaults.
func TestBackoffDefaults(t *testing.T) {
	p := BackoffPolicy{}.withDefaults()
	if p.Base != 100*time.Millisecond || p.Max != 5*time.Second || p.Multiplier != 2 || p.Jitter != 0.2 || p.Seed != 1 {
		t.Errorf("defaults = %+v", p)
	}
	c := Config{}.WithDefaults()
	if c.KeepaliveInterval != DefaultKeepaliveInterval {
		t.Errorf("KeepaliveInterval = %v", c.KeepaliveInterval)
	}
	if c.DeadAfter != 3*DefaultKeepaliveInterval {
		t.Errorf("DeadAfter = %v", c.DeadAfter)
	}
	if c.RetainFor != DefaultRetainFor {
		t.Errorf("RetainFor = %v", c.RetainFor)
	}
	// Negative means disabled and must be preserved.
	d := Config{KeepaliveInterval: -1, DeadAfter: -1, RetainFor: -1}.WithDefaults()
	if d.KeepaliveInterval != -1 || d.DeadAfter != -1 || d.RetainFor != -1 {
		t.Errorf("disabled fields not preserved: %+v", d)
	}
}
