//go:build notrace

package trace

// Enabled is false under the notrace tag: span operations compile to
// no-ops and the ring is never written.
const Enabled = false
