//go:build !notrace

package trace

import (
	"sync"
	"testing"
	"time"
)

// reset restores the package's global state after a test.
func reset(t *testing.T) {
	t.Cleanup(func() {
		SetSampleEvery(0)
		SetCapacity(DefaultCapacity)
	})
	SetCapacity(DefaultCapacity)
}

func TestRootChildLinkage(t *testing.T) {
	reset(t)
	SetSampleEvery(1)

	root := StartRoot("root")
	if !root.Context().Valid() {
		t.Fatal("root must be sampled at rate 1")
	}
	child := StartChild(root.Context(), "child")
	grand := StartChild(child.Context(), "grand")
	grand.End()
	child.End()
	root.End()

	spans := Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]SpanData{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	r, c, g := byName["root"], byName["child"], byName["grand"]
	if r.TraceID == 0 || c.TraceID != r.TraceID || g.TraceID != r.TraceID {
		t.Errorf("trace IDs must match: %d %d %d", r.TraceID, c.TraceID, g.TraceID)
	}
	if r.Parent != 0 {
		t.Errorf("root parent = %d, want 0", r.Parent)
	}
	if c.Parent != r.SpanID || g.Parent != c.SpanID {
		t.Errorf("parent linkage broken: child.Parent=%d root=%d grand.Parent=%d child=%d",
			c.Parent, r.SpanID, g.Parent, c.SpanID)
	}
	for _, s := range spans {
		if s.DurationNS < 0 || s.StartNS == 0 {
			t.Errorf("span %q has StartNS=%d DurationNS=%d", s.Name, s.StartNS, s.DurationNS)
		}
	}
}

func TestUnsampledIsInert(t *testing.T) {
	reset(t)
	SetSampleEvery(0)

	sp := StartRoot("nope")
	if sp.Context().Valid() {
		t.Fatal("rate 0 must not sample")
	}
	child := StartChild(sp.Context(), "child")
	child.End()
	Record(sp.Context(), "retro", time.Now(), time.Millisecond)
	sp.End()
	if n := len(Snapshot()); n != 0 {
		t.Fatalf("recorded %d spans with sampling off", n)
	}
}

func TestSamplingOneInN(t *testing.T) {
	reset(t)
	SetSampleEvery(4)

	sampled := 0
	for i := 0; i < 40; i++ {
		sp := StartRoot("s")
		if sp.Context().Valid() {
			sampled++
		}
		sp.End()
	}
	if sampled != 10 {
		t.Errorf("sampled %d of 40 at rate 1-in-4, want 10", sampled)
	}
}

func TestRingEviction(t *testing.T) {
	reset(t)
	SetSampleEvery(1)
	SetCapacity(4)

	var last Context
	for i := 0; i < 10; i++ {
		sp := StartRoot("r")
		last = sp.Context()
		sp.End()
	}
	spans := Snapshot()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want ring capacity 4", len(spans))
	}
	// Oldest-first order; the newest root must have survived eviction.
	if spans[3].SpanID != last.SpanID {
		t.Errorf("newest span evicted: last=%d got=%d", last.SpanID, spans[3].SpanID)
	}
}

func TestRecordRetroactive(t *testing.T) {
	reset(t)
	SetSampleEvery(1)

	root := StartRoot("root")
	start := time.Now().Add(-5 * time.Millisecond)
	Record(root.Context(), "retro", start, 5*time.Millisecond)
	root.End()

	for _, s := range Snapshot() {
		if s.Name != "retro" {
			continue
		}
		if s.Parent != root.Context().SpanID {
			t.Errorf("retro parent = %d, want %d", s.Parent, root.Context().SpanID)
		}
		if s.DurationNS != int64(5*time.Millisecond) {
			t.Errorf("retro duration = %d", s.DurationNS)
		}
		return
	}
	t.Fatal("retroactive span not recorded")
}

func TestReset(t *testing.T) {
	reset(t)
	SetSampleEvery(1)
	sp := StartRoot("r")
	sp.End()
	Reset()
	if n := len(Snapshot()); n != 0 {
		t.Fatalf("snapshot has %d spans after Reset", n)
	}
}

// TestDisabledPathZeroAlloc is the package-level statement of the
// acceptance criterion enforced in CI by BenchmarkTraceDisabled: with
// sampling off, the full per-message span choreography allocates
// nothing.
func TestDisabledPathZeroAlloc(t *testing.T) {
	reset(t)
	SetSampleEvery(0)
	t0 := time.Now()
	allocs := testing.AllocsPerRun(200, func() {
		sp := StartRoot("agent.indication")
		child := StartChild(sp.Context(), "transport.send")
		child.End()
		Record(sp.Context(), "transport.recv", t0, time.Microsecond)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled trace path allocates: %.1f allocs/op", allocs)
	}
}

// The sampled path must not allocate either: spans are values and the
// ring is pre-allocated.
func TestSampledPathZeroAlloc(t *testing.T) {
	reset(t)
	SetSampleEvery(1)
	allocs := testing.AllocsPerRun(200, func() {
		sp := StartRoot("agent.indication")
		child := StartChild(sp.Context(), "transport.send")
		child.End()
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("sampled trace path allocates: %.1f allocs/op", allocs)
	}
}

// Concurrent producers and snapshot readers: correctness is covered by
// the assertions above; this exists so `go test -race` exercises the
// collector.
func TestConcurrentRecordAndSnapshot(t *testing.T) {
	reset(t)
	SetSampleEvery(1)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := StartRoot("w")
				c := StartChild(sp.Context(), "c")
				c.End()
				sp.End()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			Snapshot()
		}
	}()
	wg.Wait()
	if n := len(Snapshot()); n == 0 {
		t.Fatal("no spans recorded")
	}
}

// TestTailHook: sampled spans reach the tail hook as they finish, in
// End order, and uninstalling stops delivery without touching the ring.
func TestTailHook(t *testing.T) {
	reset(t)
	SetSampleEvery(1)
	var mu sync.Mutex
	var names []string
	SetTailHook(func(d SpanData) {
		mu.Lock()
		names = append(names, d.Name)
		mu.Unlock()
	})
	t.Cleanup(func() { SetTailHook(nil) })

	root := StartRoot("tail.root")
	child := StartChild(root.Context(), "tail.child")
	child.End()
	root.End()
	SetTailHook(nil)
	late := StartRoot("tail.late")
	late.End()

	mu.Lock()
	defer mu.Unlock()
	if len(names) != 2 || names[0] != "tail.child" || names[1] != "tail.root" {
		t.Fatalf("tail hook saw %v, want [tail.child tail.root]", names)
	}
	// The ring keeps recording independently of the hook.
	if n := len(Snapshot()); n != 3 {
		t.Fatalf("ring has %d spans, want 3", n)
	}
}
