//go:build !notrace

package trace

// Enabled reports whether the tracing layer is compiled in. Like
// telemetry.Enabled it is a build-time constant: `-tags notrace` flips
// it to false and every `if trace.Enabled` block is eliminated by the
// compiler. Even when compiled in, tracing stays inert until
// SetSampleEvery selects a rate (the default is 0 = off).
const Enabled = true
