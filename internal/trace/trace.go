// Package trace is the SDK's distributed-tracing layer: lock-light span
// recording for one E2 control-loop iteration, end to end. A trace is
// born where a message is born (subscription or indication creation),
// its context rides inside the E2AP PDU across the wire, and every
// stage along the path — transport send/recv, agent SM fill, server
// dispatch, broker fan-out, controller callback — records a span linked
// to it. The result turns the paper's aggregate latency claims (Table 2,
// Fig. 6/7) into per-message evidence: where inside ONE iteration the
// time goes.
//
// Cost model, mirroring internal/telemetry:
//
//   - Enabled is a build-time constant (false under `-tags notrace`),
//     so guarded blocks vanish from the binary entirely.
//   - At runtime, sampling defaults to off (SetSampleEvery(0)); the
//     disabled path of every operation is branch-only and allocates
//     nothing, so tracing support does not perturb the paper's
//     CPU-bound experiments (verified by BenchmarkTraceDisabled).
//   - Sampled spans are value types recorded into a pre-allocated ring
//     under a mutex: bounded memory, no per-span allocation, and the
//     mutex is only ever contended by sampled traffic.
package trace

import (
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Context identifies a position in a trace: the trace it belongs to and
// the span that is the current parent. It is the unit that crosses the
// wire (16 bytes: TraceID then SpanID, big-endian in both codecs). The
// zero Context means "not sampled" and makes every operation a no-op.
type Context struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the context belongs to a sampled trace.
func (c Context) Valid() bool { return c.TraceID != 0 }

// Span is an in-progress measurement. It is a value type so the
// unsampled path costs nothing: a zero Span's End is a single branch.
type Span struct {
	ctx    Context
	parent uint64
	name   string
	start  time.Time
}

// SpanData is one finished span as stored in the ring and returned by
// Snapshot.
type SpanData struct {
	TraceID    uint64
	SpanID     uint64
	Parent     uint64 // span ID of the parent; 0 for a root
	Name       string
	StartNS    int64 // wall-clock start, Unix nanoseconds
	DurationNS int64
}

// DefaultCapacity is the ring size at init: bounded memory regardless
// of how long a traced run lasts (4096 spans ≈ 300 KiB).
const DefaultCapacity = 4096

var (
	// sampleEvery is the sampling knob: 0 = off (default), 1 = every
	// root, N = one root in N.
	sampleEvery atomic.Uint32
	rootSeq     atomic.Uint64 // counts StartRoot calls for 1-in-N sampling
	idSeq       atomic.Uint64 // span/trace ID generator, see init
)

func init() {
	// Seed IDs from wall clock and PID so traces from distinct
	// processes (controller and agent binaries sharing a wire) cannot
	// collide within a practical run. IDs then increment atomically.
	idSeq.Store(uint64(time.Now().UnixNano())<<8 ^ uint64(os.Getpid()))
}

func nextID() uint64 {
	id := idSeq.Add(1)
	if id == 0 { // wrap guard: 0 means "invalid"
		id = idSeq.Add(1)
	}
	return id
}

// collector is the bounded ring of finished spans. A plain mutex, not a
// lock-free scheme: only sampled spans ever take it, and correctness
// under the race detector beats shaving nanoseconds off a path that is
// off by default.
type collector struct {
	mu   sync.Mutex
	buf  []SpanData
	next int // index of the next write
	n    int // number of valid entries (≤ len(buf))
}

var col = collector{buf: make([]SpanData, DefaultCapacity)}

// TailHook observes every finished span as it is recorded, before it
// enters the ring — the live feed behind the control room's span-tree
// tail (internal/obs). It runs on the span-End path of whatever
// goroutine finished the span: keep it non-blocking. Only sampled spans
// reach it, so an unsampled run pays a single atomic load.
type TailHook func(SpanData)

var tailHook atomic.Pointer[TailHook]

// SetTailHook installs (or, with nil, removes) the process-wide span
// tail hook. At most one hook is active.
func SetTailHook(h TailHook) {
	if !Enabled {
		return
	}
	if h == nil {
		tailHook.Store(nil)
		return
	}
	tailHook.Store(&h)
}

func (c *collector) record(d SpanData) {
	if h := tailHook.Load(); h != nil {
		(*h)(d)
	}
	c.mu.Lock()
	if len(c.buf) != 0 {
		c.buf[c.next] = d
		c.next = (c.next + 1) % len(c.buf)
		if c.n < len(c.buf) {
			c.n++
		}
	}
	c.mu.Unlock()
}

// SetSampleEvery sets the sampling rate: 0 disables tracing (the
// default), 1 samples every root span, n samples one root in n.
// Child spans inherit the root's decision via the Context.
func SetSampleEvery(n uint32) {
	if !Enabled {
		return
	}
	sampleEvery.Store(n)
}

// SampleEvery returns the current sampling rate.
func SampleEvery() uint32 {
	if !Enabled {
		return 0
	}
	return sampleEvery.Load()
}

// SetCapacity resizes the span ring, dropping any recorded spans.
// n ≤ 0 disables recording entirely.
func SetCapacity(n int) {
	if !Enabled {
		return
	}
	if n < 0 {
		n = 0
	}
	col.mu.Lock()
	col.buf = make([]SpanData, n)
	col.next, col.n = 0, 0
	col.mu.Unlock()
}

// Reset drops all recorded spans, keeping the capacity. Tests use it
// between runs.
func Reset() {
	if !Enabled {
		return
	}
	col.mu.Lock()
	for i := range col.buf {
		col.buf[i] = SpanData{}
	}
	col.next, col.n = 0, 0
	col.mu.Unlock()
}

// StartRoot begins a new trace if the sampler elects this call, and
// returns a zero Span otherwise. The sampling decision is made exactly
// once, here: everything downstream keys off Context.Valid.
func StartRoot(name string) Span {
	if !Enabled {
		return Span{}
	}
	n := sampleEvery.Load()
	if n == 0 {
		return Span{}
	}
	if n > 1 && rootSeq.Add(1)%uint64(n) != 0 {
		return Span{}
	}
	return Span{
		ctx:   Context{TraceID: nextID(), SpanID: nextID()},
		name:  name,
		start: time.Now(),
	}
}

// StartChild begins a span under parent. With an invalid parent (the
// trace was not sampled, or tracing is off) it returns a zero Span.
func StartChild(parent Context, name string) Span {
	if !Enabled || !parent.Valid() {
		return Span{}
	}
	return Span{
		ctx:    Context{TraceID: parent.TraceID, SpanID: nextID()},
		parent: parent.SpanID,
		name:   name,
		start:  time.Now(),
	}
}

// Context returns the span's context, for stamping into a PDU or
// parenting further children. Zero for an unsampled span.
func (s *Span) Context() Context { return s.ctx }

// End finishes the span and records it. No-op for a zero Span.
func (s *Span) End() {
	if !Enabled || !s.ctx.Valid() {
		return
	}
	col.record(SpanData{
		TraceID:    s.ctx.TraceID,
		SpanID:     s.ctx.SpanID,
		Parent:     s.parent,
		Name:       s.name,
		StartNS:    s.start.UnixNano(),
		DurationNS: int64(time.Since(s.start)),
	})
}

// Record adds a retroactive child span under parent: a stage whose
// duration was measured out of band (e.g. transport reassembly timed on
// the receive path before the trace context was decoded).
func Record(parent Context, name string, start time.Time, d time.Duration) {
	if !Enabled || !parent.Valid() {
		return
	}
	col.record(SpanData{
		TraceID:    parent.TraceID,
		SpanID:     nextID(),
		Parent:     parent.SpanID,
		Name:       name,
		StartNS:    start.UnixNano(),
		DurationNS: int64(d),
	})
}

// Snapshot copies the recorded spans, oldest first.
func Snapshot() []SpanData {
	if !Enabled {
		return nil
	}
	col.mu.Lock()
	defer col.mu.Unlock()
	out := make([]SpanData, 0, col.n)
	if col.n == len(col.buf) {
		out = append(out, col.buf[col.next:]...)
		out = append(out, col.buf[:col.next]...)
	} else {
		out = append(out, col.buf[:col.n]...)
	}
	return out
}
