//go:build notrace

package trace

import (
	"testing"
	"time"
)

// With the notrace tag the layer must compile to no-ops: sampling can
// never be enabled, spans are never valid, and nothing is recorded.
func TestCompiledOut(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled must be false under the notrace tag")
	}
	SetSampleEvery(1)
	if SampleEvery() != 0 {
		t.Error("sampling must stay off when compiled out")
	}
	sp := StartRoot("r")
	if sp.Context().Valid() {
		t.Error("spans must never be valid when compiled out")
	}
	child := StartChild(sp.Context(), "c")
	child.End()
	Record(sp.Context(), "retro", time.Now(), time.Millisecond)
	sp.End()
	if spans := Snapshot(); spans != nil {
		t.Errorf("snapshot = %v, want nil", spans)
	}
	allocs := testing.AllocsPerRun(200, func() {
		s := StartRoot("r")
		c := StartChild(s.Context(), "c")
		c.End()
		s.End()
	})
	if allocs != 0 {
		t.Fatalf("compiled-out path allocates: %.1f allocs/op", allocs)
	}
}
