package ws

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// newPair returns a connected (server, client) Conn pair over loopback
// TCP, plus the client's raw socket for byte-level tests.
func newPair(t *testing.T) (*Conn, *Conn, net.Conn) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := lis.Accept()
		ch <- res{c, err}
	}()
	cc, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	srv := &Conn{c: r.c, br: bufio.NewReader(r.c)}
	cli := &Conn{c: cc, br: bufio.NewReader(cc), client: true}
	t.Cleanup(func() { srv.Close(); cli.Close() })
	return srv, cli, cc
}

func TestHandshakeAndEcho(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c, err := Upgrade(w, r)
		if err != nil {
			return
		}
		defer c.Close()
		for {
			op, msg, err := c.ReadMessage()
			if err != nil {
				return
			}
			if err := c.WriteMessage(op, msg); err != nil {
				return
			}
		}
	}))
	defer hs.Close()

	c, err := Dial(hs.URL, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	want := []byte(`{"op":"subscribe","ch":"tsdb"}`)
	if err := c.WriteText(want); err != nil {
		t.Fatal(err)
	}
	op, got, err := c.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if op != OpText || !bytes.Equal(got, want) {
		t.Fatalf("echo = %d %q, want text %q", op, got, want)
	}
	if err := c.CloseHandshake(CloseNormal, "done", time.Second); err != nil {
		t.Fatalf("close handshake: %v", err)
	}
}

func TestUpgradeRejectsPlainGet(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, err := Upgrade(w, r); err == nil {
			t.Error("Upgrade accepted a non-upgrade request")
		}
	}))
	defer hs.Close()
	resp, err := http.Get(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("plain GET = %d, want 400", resp.StatusCode)
	}
}

// TestFragmentedMessage reassembles a three-fragment text message with a
// ping interleaved between fragments (RFC 6455 §5.4: control frames MAY
// be injected in the middle of a fragmented message).
func TestFragmentedMessage(t *testing.T) {
	srv, cli, _ := newPair(t)
	got := make(chan []byte, 1)
	srvErr := make(chan error, 1)
	go func() {
		op, msg, err := srv.ReadMessage()
		if err != nil {
			srvErr <- err
			return
		}
		if op != OpText {
			srvErr <- errors.New("wrong opcode")
			return
		}
		got <- msg
	}()
	if err := cli.writeFrame(OpText, false, []byte("one ")); err != nil {
		t.Fatal(err)
	}
	if err := cli.writeFrame(OpContinuation, false, []byte("two ")); err != nil {
		t.Fatal(err)
	}
	if err := cli.WritePing([]byte("keepalive")); err != nil {
		t.Fatal(err)
	}
	if err := cli.writeFrame(OpContinuation, true, []byte("three")); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-got:
		if string(msg) != "one two three" {
			t.Fatalf("assembled %q", msg)
		}
	case err := <-srvErr:
		t.Fatal(err)
	case <-time.After(2 * time.Second):
		t.Fatal("server did not assemble the message")
	}
	// The interleaved ping must have been answered; the client reader
	// counts the pong. Unblock it with a data frame.
	if err := srv.WriteText([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cli.ReadMessage(); err != nil {
		t.Fatal(err)
	}
	if n := cli.Pongs(); n != 1 {
		t.Fatalf("client pongs = %d, want 1", n)
	}
}

// TestContinuationWithoutStart: a continuation frame with no message in
// progress is a protocol error (close 1002).
func TestContinuationWithoutStart(t *testing.T) {
	srv, cli, _ := newPair(t)
	errCh := make(chan error, 1)
	go func() {
		_, _, err := srv.ReadMessage()
		errCh <- err
	}()
	if err := cli.writeFrame(OpContinuation, true, []byte("orphan")); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("orphan continuation accepted")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("server did not reject orphan continuation")
	}
}

// TestUnmaskedClientFrameRejected: the server must fail the connection
// with status 1002 when a client frame arrives unmasked (§5.1).
func TestUnmaskedClientFrameRejected(t *testing.T) {
	srv, _, raw := newPair(t)
	errCh := make(chan error, 1)
	go func() {
		_, _, err := srv.ReadMessage()
		errCh <- err
	}()
	// Raw unmasked text frame: FIN|text, len 3, "abc".
	if _, err := raw.Write([]byte{0x81, 0x03, 'a', 'b', 'c'}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("unmasked client frame accepted")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("server did not reject unmasked frame")
	}
	// The server's parting close frame must carry 1002.
	_ = raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	var hdr [2]byte
	if _, err := io.ReadFull(raw, hdr[:]); err != nil {
		t.Fatalf("reading close frame: %v", err)
	}
	if Opcode(hdr[0]&0x0F) != OpClose {
		t.Fatalf("opcode = %#x, want close", hdr[0])
	}
	payload := make([]byte, hdr[1]&0x7F)
	if _, err := io.ReadFull(raw, payload); err != nil {
		t.Fatal(err)
	}
	if len(payload) < 2 || binary.BigEndian.Uint16(payload) != CloseProtocolError {
		t.Fatalf("close payload = %v, want code 1002", payload)
	}
}

// TestMidFrameCut: a connection cut in the middle of a frame surfaces
// as a read error, not a hang or a phantom message.
func TestMidFrameCut(t *testing.T) {
	srv, _, raw := newPair(t)
	errCh := make(chan error, 1)
	go func() {
		_, _, err := srv.ReadMessage()
		errCh <- err
	}()
	// Masked text frame claiming 16 payload bytes, but only 3 arrive.
	if _, err := raw.Write([]byte{0x81, 0x80 | 16, 1, 2, 3, 4, 'x', 'y', 'z'}); err != nil {
		t.Fatal(err)
	}
	raw.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("mid-frame cut produced a message")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("server hung on mid-frame cut")
	}
}

func TestCloseHandshake(t *testing.T) {
	srv, cli, _ := newPair(t)
	srvDone := make(chan error, 1)
	go func() {
		_, _, err := srv.ReadMessage()
		srvDone <- err
	}()
	if err := cli.CloseHandshake(CloseNormal, "bye", 2*time.Second); err != nil {
		t.Fatalf("client close handshake: %v", err)
	}
	select {
	case err := <-srvDone:
		var ce *CloseError
		if !errors.As(err, &ce) {
			t.Fatalf("server got %v, want CloseError", err)
		}
		if ce.Code != CloseNormal || ce.Reason != "bye" {
			t.Fatalf("server close = %d %q, want 1000 \"bye\"", ce.Code, ce.Reason)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("server did not observe the close")
	}
}

// TestExtendedLengths exercises the 16-bit and 64-bit payload length
// encodings in both directions.
func TestExtendedLengths(t *testing.T) {
	for _, n := range []int{125, 126, 200, 0xFFFF, 0x10000, 70_000} {
		srv, cli, _ := newPair(t)
		payload := bytes.Repeat([]byte{0xA5}, n)
		type result struct {
			msg []byte
			err error
		}
		got := make(chan result, 1)
		go func() {
			_, msg, err := srv.ReadMessage()
			got <- result{msg, err}
		}()
		if err := cli.WriteMessage(OpBinary, payload); err != nil {
			t.Fatalf("n=%d write: %v", n, err)
		}
		select {
		case r := <-got:
			if r.err != nil {
				t.Fatalf("n=%d read: %v", n, r.err)
			}
			if !bytes.Equal(r.msg, payload) {
				t.Fatalf("n=%d payload mismatch (%d bytes back)", n, len(r.msg))
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("n=%d timed out", n)
		}
		srv.Close()
		cli.Close()
	}
}

// TestOversizeMessage: exceeding MaxMessageSize fails the connection
// with close code 1009, including across fragments.
func TestOversizeMessage(t *testing.T) {
	srv, cli, _ := newPair(t)
	srv.MaxMessageSize = 64
	errCh := make(chan error, 1)
	go func() {
		_, _, err := srv.ReadMessage()
		errCh <- err
	}()
	if err := cli.writeFrame(OpBinary, false, bytes.Repeat([]byte{1}, 48)); err != nil {
		t.Fatal(err)
	}
	if err := cli.writeFrame(OpContinuation, true, bytes.Repeat([]byte{2}, 48)); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("oversize message accepted")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("server did not enforce the size limit")
	}
}
