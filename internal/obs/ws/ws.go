// Package ws is a minimal RFC 6455 WebSocket implementation over the
// standard library — net/http Hijacker on the server side, a raw TCP
// dial on the client side, no third-party dependencies. It exists so the
// observability layer can push live telemetry to a browser control room
// (docs/CONTROLROOM.md) without growing the module's dependency graph,
// and doubles as a reusable transport for a future browser-xApp path.
//
// Scope: the subset of RFC 6455 a same-origin dashboard needs —
// handshake, masked client frames, fragmentation, interleaved control
// frames, ping/pong, and the close handshake. No extensions
// (permessage-deflate is intentionally absent), no subprotocol
// negotiation.
//
// Concurrency: one reader, any number of writers. ReadMessage must be
// called from a single goroutine; Write* methods are serialized by an
// internal mutex so a pong reply, a fan-out frame, and a shutdown close
// frame cannot interleave on the wire.
package ws

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Opcode is a WebSocket frame opcode.
type Opcode byte

// Frame opcodes (RFC 6455 §5.2).
const (
	OpContinuation Opcode = 0x0
	OpText         Opcode = 0x1
	OpBinary       Opcode = 0x2
	OpClose        Opcode = 0x8
	OpPing         Opcode = 0x9
	OpPong         Opcode = 0xA
)

// Close status codes (RFC 6455 §7.4.1).
const (
	CloseNormal          = 1000
	CloseGoingAway       = 1001
	CloseProtocolError   = 1002
	CloseTooBig          = 1009
	CloseInternalError   = 1011
	closeNoStatusOnFrame = 1005 // never sent on the wire
)

// CloseError is returned by ReadMessage when the peer completes (or
// initiates) the close handshake. Code 1005 means the close frame
// carried no status.
type CloseError struct {
	Code   uint16
	Reason string
}

func (e *CloseError) Error() string {
	return fmt.Sprintf("ws: closed %d %q", e.Code, e.Reason)
}

// ErrTooBig is the cause recorded when an incoming message exceeds
// MaxMessageSize; the connection is failed with status 1009.
var ErrTooBig = errors.New("ws: message exceeds size limit")

// DefaultMaxMessage bounds an assembled incoming message (all fragments)
// unless Conn.MaxMessageSize overrides it.
const DefaultMaxMessage = 1 << 20

// maxControlPayload is the RFC 6455 §5.5 bound on control frames.
const maxControlPayload = 125

// Conn is one WebSocket connection, either role. Created by Upgrade
// (server) or Dial (client).
type Conn struct {
	c      net.Conn
	br     *bufio.Reader // may hold bytes buffered before the hijack
	client bool          // client role: mask outgoing, require unmasked incoming

	// MaxMessageSize bounds one assembled incoming message; 0 means
	// DefaultMaxMessage. Oversize messages fail the connection with
	// close code 1009.
	MaxMessageSize int
	// WriteTimeout bounds each frame write; 0 means no deadline. The
	// hub sets it so one stuck client cannot wedge a writer goroutine.
	WriteTimeout time.Duration

	wmu        sync.Mutex
	wroteClose bool

	pongMu   sync.Mutex
	pongs    uint64 // pongs received, for keepalive liveness checks
	lastPong time.Time
}

// Pongs returns how many pong frames the reader has consumed — the
// liveness signal for application-level keepalive.
func (c *Conn) Pongs() uint64 {
	c.pongMu.Lock()
	defer c.pongMu.Unlock()
	return c.pongs
}

// LastPong returns when the most recent pong arrived (zero if none).
func (c *Conn) LastPong() time.Time {
	c.pongMu.Lock()
	defer c.pongMu.Unlock()
	return c.lastPong
}

func (c *Conn) notePong() {
	c.pongMu.Lock()
	c.pongs++
	c.lastPong = time.Now()
	c.pongMu.Unlock()
}

// maxMsg resolves the incoming-message bound.
func (c *Conn) maxMsg() int {
	if c.MaxMessageSize > 0 {
		return c.MaxMessageSize
	}
	return DefaultMaxMessage
}

// frame is one parsed frame header + payload.
type frame struct {
	fin     bool
	op      Opcode
	payload []byte
}

// readFrame parses one frame, unmasking in place. It enforces the
// masking rule for the connection's role and the control-frame bounds.
func (c *Conn) readFrame(limit int) (frame, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return frame{}, err
	}
	fin := hdr[0]&0x80 != 0
	if hdr[0]&0x70 != 0 {
		return frame{}, c.fail(CloseProtocolError, "reserved bits set")
	}
	op := Opcode(hdr[0] & 0x0F)
	masked := hdr[1]&0x80 != 0
	// §5.1: clients MUST mask, servers MUST NOT. A server receiving an
	// unmasked frame (or a client receiving a masked one) fails the
	// connection with 1002.
	if !c.client && !masked {
		return frame{}, c.fail(CloseProtocolError, "client frame not masked")
	}
	if c.client && masked {
		return frame{}, c.fail(CloseProtocolError, "server frame masked")
	}
	n := int(hdr[1] & 0x7F)
	switch n {
	case 126:
		var ext [2]byte
		if _, err := io.ReadFull(c.br, ext[:]); err != nil {
			return frame{}, err
		}
		n = int(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err := io.ReadFull(c.br, ext[:]); err != nil {
			return frame{}, err
		}
		v := binary.BigEndian.Uint64(ext[:])
		if v > uint64(c.maxMsg()) {
			return frame{}, c.fail(CloseTooBig, ErrTooBig.Error())
		}
		n = int(v)
	}
	if op.isControl() {
		// Control frames ride outside the message size budget; RFC 6455
		// bounds them at 125 bytes instead.
		if n > maxControlPayload {
			return frame{}, c.fail(CloseProtocolError, "control frame too long")
		}
		if !fin {
			return frame{}, c.fail(CloseProtocolError, "fragmented control frame")
		}
	} else if n > limit {
		return frame{}, c.fail(CloseTooBig, ErrTooBig.Error())
	}
	var mask [4]byte
	if masked {
		if _, err := io.ReadFull(c.br, mask[:]); err != nil {
			return frame{}, err
		}
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(c.br, payload); err != nil {
		return frame{}, err
	}
	if masked {
		for i := range payload {
			payload[i] ^= mask[i&3]
		}
	}
	return frame{fin: fin, op: op, payload: payload}, nil
}

func (op Opcode) isControl() bool { return op >= OpClose }

// ReadMessage returns the next complete data message, reassembling
// fragments. Control frames are handled transparently: pings are
// answered with pongs, pongs are counted (see Pongs), and a close frame
// completes the close handshake and surfaces as *CloseError. Transport
// errors (including a mid-frame connection cut) surface as-is.
func (c *Conn) ReadMessage() (Opcode, []byte, error) {
	limit := c.maxMsg()
	var (
		msgOp Opcode
		buf   []byte
		inMsg bool
	)
	for {
		f, err := c.readFrame(limit - len(buf))
		if err != nil {
			return 0, nil, err
		}
		switch {
		case f.op == OpPing:
			// §5.5.2: respond with a pong carrying the same payload.
			// Best-effort — a write race with a concurrent close is fine.
			_ = c.writeFrame(OpPong, true, f.payload)
			continue
		case f.op == OpPong:
			c.notePong()
			continue
		case f.op == OpClose:
			ce := &CloseError{Code: closeNoStatusOnFrame}
			if len(f.payload) >= 2 {
				ce.Code = binary.BigEndian.Uint16(f.payload)
				ce.Reason = string(f.payload[2:])
			}
			// Echo the close (completing the handshake) unless we
			// initiated it, then tear down the transport.
			c.wmu.Lock()
			if !c.wroteClose {
				c.wroteClose = true
				_ = c.writeFrameLocked(OpClose, true, f.payload)
			}
			c.wmu.Unlock()
			_ = c.c.Close()
			return 0, nil, ce
		case f.op == OpContinuation:
			if !inMsg {
				return 0, nil, c.fail(CloseProtocolError, "continuation without start")
			}
			buf = append(buf, f.payload...)
		case f.op == OpText || f.op == OpBinary:
			if inMsg {
				return 0, nil, c.fail(CloseProtocolError, "data frame inside fragmented message")
			}
			msgOp, inMsg = f.op, true
			buf = f.payload
		default:
			return 0, nil, c.fail(CloseProtocolError, "unknown opcode")
		}
		if inMsg && f.fin {
			return msgOp, buf, nil
		}
	}
}

// fail sends a close frame with the given code (best effort), closes the
// transport, and returns the protocol error.
func (c *Conn) fail(code uint16, reason string) error {
	_ = c.writeClose(code, reason)
	_ = c.c.Close()
	return fmt.Errorf("ws: protocol error (%d): %s", code, reason)
}

// WriteMessage sends one unfragmented data message.
func (c *Conn) WriteMessage(op Opcode, payload []byte) error {
	if op != OpText && op != OpBinary {
		return errors.New("ws: WriteMessage requires a data opcode")
	}
	return c.writeFrame(op, true, payload)
}

// WriteText sends a text message.
func (c *Conn) WriteText(payload []byte) error { return c.writeFrame(OpText, true, payload) }

// WritePing sends a ping control frame.
func (c *Conn) WritePing(payload []byte) error { return c.writeFrame(OpPing, true, payload) }

// WriteClose sends a close frame with a status code; the first close
// written wins, later calls are no-ops (the handshake echo must not be
// followed by more frames, §5.5.1).
func (c *Conn) WriteClose(code uint16, reason string) error { return c.writeClose(code, reason) }

func (c *Conn) writeClose(code uint16, reason string) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.wroteClose {
		return nil
	}
	c.wroteClose = true
	if len(reason) > maxControlPayload-2 {
		reason = reason[:maxControlPayload-2]
	}
	payload := make([]byte, 2+len(reason))
	binary.BigEndian.PutUint16(payload, code)
	copy(payload[2:], reason)
	return c.writeFrameLocked(OpClose, true, payload)
}

// CloseHandshake performs an orderly client- or server-initiated close:
// write the close frame, then read until the peer's echo (or timeout),
// then close the transport. Data frames that race the close are drained
// and dropped.
func (c *Conn) CloseHandshake(code uint16, reason string, timeout time.Duration) error {
	if err := c.writeClose(code, reason); err != nil {
		_ = c.c.Close()
		return err
	}
	if timeout > 0 {
		_ = c.c.SetReadDeadline(time.Now().Add(timeout))
	}
	for {
		_, _, err := c.ReadMessage()
		var ce *CloseError
		if errors.As(err, &ce) {
			return nil // peer echoed; ReadMessage already closed the conn
		}
		if err != nil {
			_ = c.c.Close()
			return err
		}
	}
}

// Close tears the transport down without a close handshake.
func (c *Conn) Close() error { return c.c.Close() }

// SetReadDeadline bounds subsequent reads on the underlying transport.
// It lets a caller that wrote a close frame cap how long a separate
// reader goroutine may drain for the peer's echo without reading the
// connection itself — only one goroutine may ever read a Conn.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.c.SetReadDeadline(t) }

// writeFrame serializes one frame under the write lock.
func (c *Conn) writeFrame(op Opcode, fin bool, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.wroteClose {
		return errors.New("ws: write after close")
	}
	return c.writeFrameLocked(op, fin, payload)
}

func (c *Conn) writeFrameLocked(op Opcode, fin bool, payload []byte) error {
	if c.WriteTimeout > 0 {
		_ = c.c.SetWriteDeadline(time.Now().Add(c.WriteTimeout))
		defer c.c.SetWriteDeadline(time.Time{})
	}
	var hdr [14]byte
	n := 0
	b0 := byte(op)
	if fin {
		b0 |= 0x80
	}
	hdr[0] = b0
	n = 2
	switch l := len(payload); {
	case l < 126:
		hdr[1] = byte(l)
	case l <= 0xFFFF:
		hdr[1] = 126
		binary.BigEndian.PutUint16(hdr[2:], uint16(l))
		n = 4
	default:
		hdr[1] = 127
		binary.BigEndian.PutUint64(hdr[2:], uint64(l))
		n = 10
	}
	if c.client {
		hdr[1] |= 0x80
		var mask [4]byte
		binary.LittleEndian.PutUint32(mask[:], rand.Uint32())
		copy(hdr[n:], mask[:])
		n += 4
		// Mask a copy so the caller's buffer is not clobbered.
		masked := make([]byte, len(payload))
		for i, b := range payload {
			masked[i] = b ^ mask[i&3]
		}
		payload = masked
	}
	if _, err := c.c.Write(hdr[:n]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := c.c.Write(payload); err != nil {
			return err
		}
	}
	return nil
}
