package ws

import (
	"bufio"
	"crypto/sha1"
	"encoding/base64"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// wsGUID is the fixed RFC 6455 §1.3 key-derivation constant.
const wsGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// acceptKey derives the Sec-WebSocket-Accept value from the client key.
func acceptKey(key string) string {
	h := sha1.Sum([]byte(key + wsGUID))
	return base64.StdEncoding.EncodeToString(h[:])
}

// headerHasToken reports whether a comma-separated header contains the
// token (case-insensitive) — needed because "Connection: keep-alive,
// Upgrade" is a legal handshake.
func headerHasToken(h http.Header, name, token string) bool {
	for _, v := range h.Values(name) {
		for _, part := range strings.Split(v, ",") {
			if strings.EqualFold(strings.TrimSpace(part), token) {
				return true
			}
		}
	}
	return false
}

// IsUpgrade reports whether the request asks for a WebSocket upgrade,
// so a handler can branch to an SSE or plain-HTTP fallback.
func IsUpgrade(r *http.Request) bool {
	return headerHasToken(r.Header, "Connection", "upgrade") &&
		strings.EqualFold(r.Header.Get("Upgrade"), "websocket")
}

// Upgrade performs the server side of the opening handshake and hijacks
// the connection. On failure it writes the HTTP error itself and
// returns a non-nil error; the caller must not touch w afterwards
// either way.
func Upgrade(w http.ResponseWriter, r *http.Request) (*Conn, error) {
	if r.Method != http.MethodGet {
		http.Error(w, "websocket: method not allowed", http.StatusMethodNotAllowed)
		return nil, errors.New("ws: handshake method not GET")
	}
	if !IsUpgrade(r) {
		http.Error(w, "websocket: not an upgrade request", http.StatusBadRequest)
		return nil, errors.New("ws: not an upgrade request")
	}
	if v := r.Header.Get("Sec-WebSocket-Version"); v != "13" {
		w.Header().Set("Sec-WebSocket-Version", "13")
		http.Error(w, "websocket: unsupported version", http.StatusUpgradeRequired)
		return nil, fmt.Errorf("ws: unsupported version %q", v)
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		http.Error(w, "websocket: missing Sec-WebSocket-Key", http.StatusBadRequest)
		return nil, errors.New("ws: missing Sec-WebSocket-Key")
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		http.Error(w, "websocket: hijacking unsupported", http.StatusInternalServerError)
		return nil, errors.New("ws: ResponseWriter is not a Hijacker")
	}
	nc, brw, err := hj.Hijack()
	if err != nil {
		return nil, fmt.Errorf("ws: hijack: %w", err)
	}
	// The response goes out through the hijacked buffer so any bytes the
	// HTTP server buffered stay ordered.
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + acceptKey(key) + "\r\n\r\n"
	_ = nc.SetWriteDeadline(time.Now().Add(5 * time.Second))
	if _, err := brw.WriteString(resp); err != nil {
		nc.Close()
		return nil, err
	}
	if err := brw.Flush(); err != nil {
		nc.Close()
		return nil, err
	}
	_ = nc.SetWriteDeadline(time.Time{})
	_ = nc.SetReadDeadline(time.Time{})
	return &Conn{c: nc, br: brw.Reader}, nil
}

// Dial opens a client connection to rawURL (ws://host[:port]/path;
// http:// is accepted as an alias). timeout bounds the TCP connect and
// the handshake round trip; 0 means 5 s.
func Dial(rawURL string, timeout time.Duration) (*Conn, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, fmt.Errorf("ws: dial: %w", err)
	}
	switch u.Scheme {
	case "ws", "http", "":
	default:
		return nil, fmt.Errorf("ws: unsupported scheme %q (no TLS support)", u.Scheme)
	}
	host := u.Host
	if u.Port() == "" {
		host = net.JoinHostPort(u.Hostname(), "80")
	}
	nc, err := net.DialTimeout("tcp", host, timeout)
	if err != nil {
		return nil, err
	}
	path := u.RequestURI()
	if path == "" {
		path = "/"
	}
	var nonce [16]byte
	for i := 0; i < len(nonce); i += 4 {
		v := rand.Uint32()
		nonce[i], nonce[i+1], nonce[i+2], nonce[i+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	}
	key := base64.StdEncoding.EncodeToString(nonce[:])
	req := "GET " + path + " HTTP/1.1\r\n" +
		"Host: " + u.Host + "\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Key: " + key + "\r\n" +
		"Sec-WebSocket-Version: 13\r\n\r\n"
	_ = nc.SetDeadline(time.Now().Add(timeout))
	if _, err := nc.Write([]byte(req)); err != nil {
		nc.Close()
		return nil, err
	}
	br := bufio.NewReader(nc)
	resp, err := http.ReadResponse(br, &http.Request{Method: http.MethodGet})
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("ws: handshake response: %w", err)
	}
	if resp.StatusCode != http.StatusSwitchingProtocols {
		nc.Close()
		return nil, fmt.Errorf("ws: handshake rejected: %s", resp.Status)
	}
	if got := resp.Header.Get("Sec-WebSocket-Accept"); got != acceptKey(key) {
		nc.Close()
		return nil, fmt.Errorf("ws: bad Sec-WebSocket-Accept %q", got)
	}
	_ = nc.SetDeadline(time.Time{})
	return &Conn{c: nc, br: br, client: true}, nil
}
