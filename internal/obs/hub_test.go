package obs

import (
	"encoding/json"
	"testing"
	"time"

	"flexric/internal/tsdb"
)

func TestGlobMatch(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"*", "mac.0.1.cqi", true},
		{"*", "", true},
		{"mac.*", "mac.0.1.cqi", true},
		{"mac.*", "rlc.0.1.tx_bytes", false},
		{"mac.*.cqi", "mac.0.1.cqi", true},
		{"mac.*.cqi", "mac.0.1.mcs", false},
		{"*.cqi", "mac.12.3.cqi", true},
		{"mac.0.1.cqi", "mac.0.1.cqi", true},
		{"mac.0.1.cqi", "mac.0.1.cq", false},
		{"mac.0.1.cq", "mac.0.1.cqi", false},
		{"*mac*", "mac.0.1.cqi", true},
		{"a*b*c", "axxbyyc", true},
		{"a*b*c", "axxbyy", false},
		{"", "", true},
		{"", "x", false},
	}
	for _, c := range cases {
		if got := globMatch(c.pattern, c.s); got != c.want {
			t.Errorf("globMatch(%q, %q) = %v, want %v", c.pattern, c.s, got, c.want)
		}
	}
}

func TestSeriesName(t *testing.T) {
	fld, ok := tsdb.ParseField("cqi")
	if !ok {
		t.Fatal("no cqi field")
	}
	k := tsdb.SeriesKey{Agent: 3, Fn: 142, UE: 7, Field: fld}
	if got := seriesName(k); got != "mac.3.7.cqi" {
		t.Errorf("seriesName = %q, want mac.3.7.cqi", got)
	}
	k.Fn = 9999
	if got := seriesName(k); got != "fn9999.3.7.cqi" {
		t.Errorf("seriesName = %q, want fn9999.3.7.cqi", got)
	}
}

// drainFrames empties a client queue, decoding each frame's "ch".
func drainFrames(c *streamClient) map[string]int {
	got := map[string]int{}
	for {
		select {
		case b := <-c.q:
			var f struct {
				Ch string `json:"ch"`
			}
			_ = json.Unmarshal(b, &f)
			got[f.Ch]++
		default:
			return got
		}
	}
}

// TestHubFanout drives the hub directly (no HTTP): subscribe, append,
// and expect batched tsdb frames with the right series names.
func TestHubFanout(t *testing.T) {
	st := tsdb.New(tsdb.Config{Capacity: 256})
	h := newHub(st, nil, nil, 5)
	defer h.close()

	c := h.attach()
	if c == nil {
		t.Fatal("attach returned nil")
	}
	// Hello frame arrives immediately.
	select {
	case b := <-c.q:
		var hello helloFrame
		if err := json.Unmarshal(b, &hello); err != nil || hello.Ch != "hello" {
			t.Fatalf("first frame = %s, err=%v", b, err)
		}
	case <-time.After(time.Second):
		t.Fatal("no hello frame")
	}

	c.handle([]byte(`{"op":"subscribe","ch":"tsdb","glob":"mac.*"}`))
	if h.tsdbSubs.Load() != 1 {
		t.Fatalf("tsdbSubs = %d, want 1", h.tsdbSubs.Load())
	}

	fld, _ := tsdb.ParseField("cqi")
	mac := tsdb.SeriesKey{Agent: 0, Fn: 142, UE: 1, Field: fld}
	rlc := tsdb.SeriesKey{Agent: 0, Fn: 143, UE: 1, Field: fld}
	now := time.Now().UnixNano()
	for i := 0; i < 10; i++ {
		st.Append(mac, now+int64(i)*1e6, float64(i))
		st.Append(rlc, now+int64(i)*1e6, float64(i)) // filtered out by glob
	}

	deadline := time.Now().Add(5 * time.Second)
	var frame tsdbFrame
	for time.Now().Before(deadline) {
		select {
		case b := <-c.q:
			if err := json.Unmarshal(b, &frame); err != nil {
				t.Fatalf("bad frame %s: %v", b, err)
			}
			if frame.Ch == ChanTSDB {
				goto got
			}
		case <-time.After(50 * time.Millisecond):
		}
	}
	t.Fatal("no tsdb frame")
got:
	if len(frame.Series) != 1 || frame.Series[0].Name != "mac.0.1.cqi" {
		t.Fatalf("series = %+v, want only mac.0.1.cqi", frame.Series)
	}
	if len(frame.Series[0].Samples) == 0 {
		t.Fatal("no samples in frame")
	}

	// Unsubscribe releases the producer gate.
	c.handle([]byte(`{"op":"unsubscribe","ch":"tsdb"}`))
	if h.tsdbSubs.Load() != 0 {
		t.Fatalf("tsdbSubs after unsubscribe = %d, want 0", h.tsdbSubs.Load())
	}
	// Protocol errors answer on the error channel instead of killing
	// the connection.
	c.handle([]byte(`{"op":"subscribe","ch":"nope"}`))
	c.handle([]byte(`not json`))
	c.handle([]byte(`{"op":"ping"}`))
	got := drainFrames(c)
	if got["error"] != 2 || got["pong"] != 1 {
		t.Fatalf("control replies = %v, want 2 errors + 1 pong", got)
	}
	h.detach(c)
	if h.NumClients() != 0 {
		t.Fatalf("NumClients = %d after detach", h.NumClients())
	}
}

// TestHubBackfill: subscribing with window_ms replays recent history
// as one backfill-tagged frame.
func TestHubBackfill(t *testing.T) {
	st := tsdb.New(tsdb.Config{Capacity: 256})
	h := newHub(st, nil, nil, 5)
	defer h.close()

	fld, _ := tsdb.ParseField("cqi")
	k := tsdb.SeriesKey{Agent: 2, Fn: 142, UE: 4, Field: fld}
	now := time.Now().UnixNano()
	for i := 0; i < 20; i++ {
		st.Append(k, now-int64(20-i)*1e6, float64(i))
	}

	c := h.attach()
	<-c.q // hello
	c.handle([]byte(`{"op":"subscribe","ch":"tsdb","glob":"mac.*","window_ms":60000}`))
	select {
	case b := <-c.q:
		var frame tsdbFrame
		if err := json.Unmarshal(b, &frame); err != nil {
			t.Fatal(err)
		}
		if !frame.Backfill {
			t.Fatalf("frame not tagged backfill: %s", b)
		}
		if len(frame.Series) != 1 || frame.Series[0].Name != "mac.2.4.cqi" {
			t.Fatalf("backfill series = %+v", frame.Series)
		}
		if len(frame.Series[0].Samples) != 20 {
			t.Fatalf("backfill samples = %d, want 20", len(frame.Series[0].Samples))
		}
	case <-time.After(time.Second):
		t.Fatal("no backfill frame")
	}
	h.detach(c)
}

// TestSlowClientDrop: a client that never drains its queue loses its
// oldest frames; the producer side never blocks.
func TestSlowClientDrop(t *testing.T) {
	st := tsdb.New(tsdb.Config{Capacity: 64})
	h := newHub(st, nil, nil, 5)
	defer h.close()

	c := h.attach()
	before := streamTel.dropped.Load()
	// 3x the queue depth; enqueue must return promptly every time.
	done := make(chan struct{})
	go func() {
		for i := 0; i < clientQueueLen*3; i++ {
			c.enqueue([]byte(`{"ch":"pong"}`))
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("enqueue blocked on a slow client")
	}
	if len(c.q) > clientQueueLen {
		t.Fatalf("queue overflowed: %d", len(c.q))
	}
	if streamTel.dropped.Load() == before {
		t.Fatal("no dropped-frame telemetry recorded")
	}
	h.detach(c)
}

// TestTelemetryChannel: the first frame is a full dump, later frames
// are deltas of changed metrics only.
func TestTelemetryChannel(t *testing.T) {
	h := newHub(nil, nil, nil, 5)
	defer h.close()

	probe := tsdb.New(tsdb.Config{Capacity: 16}) // its appends move tsdb.appends
	c := h.attach()
	<-c.q // hello
	c.handle([]byte(`{"op":"subscribe","ch":"telemetry","glob":"tsdb.*"}`))

	var full telemetryFrame
	select {
	case b := <-c.q:
		if err := json.Unmarshal(b, &full); err != nil || full.Ch != ChanTelemetry {
			t.Fatalf("frame %s err %v", b, err)
		}
		if !full.Full {
			t.Fatalf("first telemetry frame not full: %s", b)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no full telemetry frame")
	}

	fld, _ := tsdb.ParseField("cqi")
	probe.Append(tsdb.SeriesKey{Agent: 9, Fn: 142, UE: 9, Field: fld}, time.Now().UnixNano(), 1)

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case b := <-c.q:
			var f telemetryFrame
			if err := json.Unmarshal(b, &f); err != nil || f.Ch != ChanTelemetry {
				continue
			}
			if f.Full {
				t.Fatalf("unexpected second full frame: %s", b)
			}
			if _, ok := f.Metrics["tsdb.appends"]; ok {
				return // delta observed
			}
		case <-time.After(50 * time.Millisecond):
		}
	}
	t.Fatal("no telemetry delta frame for tsdb.appends")
}
