package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"

	"flexric/internal/trace"
)

// SpanNode is one span in the /traces response, with its children
// nested beneath it.
type SpanNode struct {
	SpanID     uint64      `json:"span_id"`
	Parent     uint64      `json:"parent,omitempty"`
	Name       string      `json:"name"`
	StartNS    int64       `json:"start_ns"`
	DurationNS int64       `json:"duration_ns"`
	Children   []*SpanNode `json:"children,omitempty"`
}

// TraceTree is one trace in the /traces response.
type TraceTree struct {
	TraceID uint64      `json:"trace_id"`
	Spans   int         `json:"spans"`
	Roots   []*SpanNode `json:"roots"`
}

// handleTraces serves GET /traces?limit=N: the N most recently active
// traces, each as a span tree with per-stage durations.
func handleTraces(w http.ResponseWriter, r *http.Request) {
	limit := 16
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		limit = n
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(BuildTraceTrees(trace.Snapshot(), limit))
}

// BuildTraceTrees groups spans by trace and nests them by parent span
// ID, returning the `limit` most recently active traces, most recent
// first. Spans whose parent fell out of the ring (or never ended)
// surface as additional roots rather than being dropped.
func BuildTraceTrees(spans []trace.SpanData, limit int) []TraceTree {
	// spans is oldest-first; walk backwards to rank traces by recency.
	order := make([]uint64, 0, limit)
	seen := make(map[uint64]bool)
	for i := len(spans) - 1; i >= 0 && len(order) < limit; i-- {
		id := spans[i].TraceID
		if !seen[id] {
			seen[id] = true
			order = append(order, id)
		}
	}

	byTrace := make(map[uint64][]trace.SpanData, len(order))
	for _, s := range spans {
		if seen[s.TraceID] {
			byTrace[s.TraceID] = append(byTrace[s.TraceID], s)
		}
	}

	out := make([]TraceTree, 0, len(order))
	for _, id := range order {
		group := byTrace[id]
		nodes := make(map[uint64]*SpanNode, len(group))
		for _, s := range group {
			nodes[s.SpanID] = &SpanNode{
				SpanID:     s.SpanID,
				Parent:     s.Parent,
				Name:       s.Name,
				StartNS:    s.StartNS,
				DurationNS: s.DurationNS,
			}
		}
		tree := TraceTree{TraceID: id, Spans: len(group)}
		for _, s := range group {
			n := nodes[s.SpanID]
			if p := nodes[s.Parent]; p != nil && s.Parent != s.SpanID {
				p.Children = append(p.Children, n)
			} else {
				tree.Roots = append(tree.Roots, n)
			}
		}
		for _, n := range nodes {
			sortByStart(n.Children)
		}
		sortByStart(tree.Roots)
		out = append(out, tree)
	}
	return out
}

func sortByStart(ns []*SpanNode) {
	sort.Slice(ns, func(i, j int) bool { return ns[i].StartNS < ns[j].StartNS })
}
