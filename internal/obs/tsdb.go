package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"flexric/internal/trace"
	"flexric/internal/tsdb"
)

// RAN-function aliases accepted wherever a numeric fn is expected, so
// curl users can say fn=mac instead of fn=142. The IDs mirror the sm
// package's registry (obs stays decoupled from it; a test cross-checks
// the values).
var fnAliases = map[string]uint16{
	"mac":  142,
	"rlc":  143,
	"pdcp": 144,
}

// FnAlias resolves a RAN-function alias for tests and tooling.
func FnAlias(name string) (uint16, bool) {
	fn, ok := fnAliases[name]
	return fn, ok
}

func parseFn(v string) (uint16, bool) {
	if fn, ok := fnAliases[v]; ok {
		return fn, true
	}
	n, err := strconv.ParseUint(v, 10, 16)
	if err != nil {
		return 0, false
	}
	return uint16(n), true
}

// handleTSDBPartial serves GET /tsdb/partial: the federation fan-out
// endpoint. It merges every matching series into one mergeable
// tsdb.PartialAgg (or, with step_ms, aligned PartialBuckets) that the
// root combines across shards. agent and ue accept "all" as wildcards
// (fn and field stay required — a cross-field merge is meaningless);
// from/to are absolute Unix-ns bounds.
//
//	GET /tsdb/partial?agent=all&fn=mac&ue=all&field=throughput_bps&from=N&to=N[&step_ms=S]
func handleTSDBPartial(st *tsdb.Store) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sp := trace.StartRoot("obs.tsdb.partial")
		defer sp.End()
		q := r.URL.Query()
		agent := int64(-1)
		if v := q.Get("agent"); v != "all" {
			n, err := strconv.ParseUint(v, 10, 32)
			if err != nil {
				http.Error(w, "bad agent parameter", http.StatusBadRequest)
				return
			}
			agent = int64(n)
		}
		fn, ok := parseFn(q.Get("fn"))
		if !ok {
			http.Error(w, "bad fn parameter", http.StatusBadRequest)
			return
		}
		ue := int64(-1)
		if v := q.Get("ue"); v != "all" {
			n, err := strconv.ParseUint(v, 10, 16)
			if err != nil {
				http.Error(w, "bad ue parameter", http.StatusBadRequest)
				return
			}
			ue = int64(n)
		}
		field, ok := tsdb.ParseField(q.Get("field"))
		if !ok {
			http.Error(w, "unknown field", http.StatusBadRequest)
			return
		}
		from, err1 := strconv.ParseInt(q.Get("from"), 10, 64)
		to, err2 := strconv.ParseInt(q.Get("to"), 10, 64)
		if err1 != nil || err2 != nil || to <= from {
			http.Error(w, "bad from/to parameters", http.StatusBadRequest)
			return
		}
		stepNS := int64(0)
		if v := q.Get("step_ms"); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n <= 0 {
				http.Error(w, "bad step_ms parameter", http.StatusBadRequest)
				return
			}
			stepNS = n * int64(time.Millisecond)
		}

		var resp partialResponse
		for _, info := range st.List(agent, fn) {
			k := info.Key
			if k.Field != field || (ue >= 0 && k.UE != uint16(ue)) {
				continue
			}
			resp.Series++
			if stepNS > 0 {
				resp.Buckets = tsdb.MergePartialWindows(resp.Buckets, st.PartialWindow(k, from, to, stepNS))
			} else if p, ok := st.PartialAggregate(k, from, to); ok {
				resp.Agg.Merge(&p)
			}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	}
}

// partialResponse is the /tsdb/partial envelope: the merged partial of
// every matching series (Series counts them), as one aggregate or as
// aligned windows when step_ms is given.
type partialResponse struct {
	Series  int                  `json:"series"`
	Agg     tsdb.PartialAgg      `json:"agg"`
	Buckets []tsdb.PartialBucket `json:"buckets,omitempty"`
}

// handleTSDBSeries serves GET /tsdb/series?agent=N&fn=F: the live
// series inventory, optionally filtered by agent and/or RAN function.
func handleTSDBSeries(st *tsdb.Store) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sp := trace.StartRoot("obs.tsdb.series")
		defer sp.End()
		agent := int64(-1)
		if v := r.URL.Query().Get("agent"); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n < 0 {
				http.Error(w, "bad agent parameter", http.StatusBadRequest)
				return
			}
			agent = n
		}
		var fn uint16
		if v := r.URL.Query().Get("fn"); v != "" {
			var ok bool
			if fn, ok = parseFn(v); !ok {
				http.Error(w, "bad fn parameter", http.StatusBadRequest)
				return
			}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(st.List(agent, fn))
	}
}

// handleTSDBStats serves GET /tsdb/stats: the store-wide occupancy and
// compression-efficiency summary (series/chunk counts, bytes per
// compressed sample, tier occupancy, raw-archive size).
func handleTSDBStats(st *tsdb.Store) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sp := trace.StartRoot("obs.tsdb.stats")
		defer sp.End()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(st.Stats())
	}
}

// queryResponse is the /tsdb/query envelope; exactly one of the result
// fields is set, matching the query mode.
type queryResponse struct {
	Key     tsdb.SeriesKey `json:"key"`
	Field   string         `json:"field"`
	Samples []tsdb.Sample  `json:"samples,omitempty"`
	Agg     *tsdb.Agg      `json:"agg,omitempty"`
	Buckets []tsdb.Bucket  `json:"buckets,omitempty"`
}

// handleTSDBQuery serves GET /tsdb/query over one series, identified by
// agent, fn (numeric or mac/rlc/pdcp alias), ue, and field. Exactly one
// query mode applies:
//
//	last=K                     newest K samples
//	window_ms=W                aggregate over the last W ms of wall time
//	window_ms=W&step_ms=S      that window as S-ms buckets
//	from=NS&to=NS[&step_ms=S]  absolute Unix-ns range, aggregate or buckets
func handleTSDBQuery(st *tsdb.Store) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sp := trace.StartRoot("obs.tsdb.query")
		defer sp.End()
		q := r.URL.Query()
		agent, err := strconv.ParseUint(q.Get("agent"), 10, 32)
		if err != nil {
			http.Error(w, "bad agent parameter", http.StatusBadRequest)
			return
		}
		fn, ok := parseFn(q.Get("fn"))
		if !ok {
			http.Error(w, "bad fn parameter", http.StatusBadRequest)
			return
		}
		ue, err := strconv.ParseUint(q.Get("ue"), 10, 16)
		if err != nil {
			http.Error(w, "bad ue parameter", http.StatusBadRequest)
			return
		}
		field, ok := tsdb.ParseField(q.Get("field"))
		if !ok {
			http.Error(w, "unknown field", http.StatusBadRequest)
			return
		}
		k := tsdb.SeriesKey{Agent: uint32(agent), Fn: fn, UE: uint16(ue), Field: field}
		resp := queryResponse{Key: k, Field: field.String()}

		stepNS := int64(0)
		if v := q.Get("step_ms"); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n <= 0 {
				http.Error(w, "bad step_ms parameter", http.StatusBadRequest)
				return
			}
			stepNS = n * int64(time.Millisecond)
		}

		switch {
		case q.Get("last") != "":
			n, err := strconv.Atoi(q.Get("last"))
			if err != nil || n <= 0 {
				http.Error(w, "bad last parameter", http.StatusBadRequest)
				return
			}
			resp.Samples = st.LastK(k, n, nil)
			if len(resp.Samples) == 0 {
				http.Error(w, "no samples", http.StatusNotFound)
				return
			}
		case q.Get("window_ms") != "":
			wms, err := strconv.ParseInt(q.Get("window_ms"), 10, 64)
			if err != nil || wms <= 0 {
				http.Error(w, "bad window_ms parameter", http.StatusBadRequest)
				return
			}
			now := time.Now().UnixNano()
			from := now - wms*int64(time.Millisecond)
			if stepNS > 0 {
				resp.Buckets = st.Window(k, from, now, stepNS)
			} else {
				agg, ok := st.Aggregate(k, from, now)
				if !ok {
					http.Error(w, "no samples in window", http.StatusNotFound)
					return
				}
				resp.Agg = &agg
			}
		case q.Get("from") != "" && q.Get("to") != "":
			from, err1 := strconv.ParseInt(q.Get("from"), 10, 64)
			to, err2 := strconv.ParseInt(q.Get("to"), 10, 64)
			if err1 != nil || err2 != nil || to <= from {
				http.Error(w, "bad from/to parameters", http.StatusBadRequest)
				return
			}
			if stepNS > 0 {
				resp.Buckets = st.Window(k, from, to, stepNS)
			} else {
				agg, ok := st.Aggregate(k, from, to)
				if !ok {
					http.Error(w, "no samples in range", http.StatusNotFound)
					return
				}
				resp.Agg = &agg
			}
		default:
			http.Error(w, "need last, window_ms, or from/to", http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	}
}
