package obs

import (
	"bytes"
	"encoding/json"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"flexric/internal/a1"
	"flexric/internal/telemetry"
	"flexric/internal/trace"
	"flexric/internal/tsdb"
)

// The control-room stream hub: fans live controller state out to
// browser/WS/SSE clients over four push channels plus a topology feed.
//
//	tsdb       per-sample deltas from the monitoring store, batched per
//	           flush tick and filtered by a series-name glob
//	telemetry  counter/gauge/histogram deltas vs the client's last frame
//	spans      the tail of the trace ring (spans as they finish)
//	topology   agents / subscriptions / slices snapshot, sent on change
//	a1         policy store events (create/update/delete/status), with
//	           the current policy states backfilled on subscribe
//
// Producers never block: the tsdb append hook and trace tail hook write
// into fixed-capacity drop-oldest rings gated on atomic subscriber
// counts (zero work when nobody listens, zero allocations either way),
// and per-client send queues drop their oldest frame when a slow client
// falls behind. A single flush loop at baseTick drains the rings and
// builds frames; clients flush on every Nth tick per their requested
// flush_ms.

// Stream channel names.
const (
	ChanTSDB      = "tsdb"
	ChanTelemetry = "telemetry"
	ChanSpans     = "spans"
	ChanTopology  = "topology"
	ChanA1        = "a1"
)

const (
	// DefaultFlushMS is the hub's base flush tick; per-client flush_ms
	// values are rounded up to a multiple of it.
	DefaultFlushMS = 100

	// clientQueueLen bounds each client's send queue (frames).
	clientQueueLen = 64
	// pendingDeltaCap bounds the hub-wide tsdb delta ring (samples
	// buffered between flush ticks).
	pendingDeltaCap = 16384
	// pendingSpanCap bounds the hub-wide span tail ring.
	pendingSpanCap = 2048
	// pendingA1Cap bounds the hub-wide policy event ring.
	pendingA1Cap = 1024
	// clientAccCap bounds each client's between-flush accumulators.
	clientAccCap = 16384
	// backfillMaxSeries caps how many series one subscribe backfills.
	backfillMaxSeries = 512
)

var streamTel = struct {
	clients     *telemetry.Gauge
	frames      *telemetry.Counter
	dropped     *telemetry.Counter
	ringDropped *telemetry.Counter
	fanout      *telemetry.Histogram
}{
	clients:     telemetry.NewGauge("obs.stream.clients"),
	frames:      telemetry.NewCounter("obs.stream.frames"),
	dropped:     telemetry.NewCounter("obs.stream.dropped_frames"),
	ringDropped: telemetry.NewCounter("obs.stream.ring_dropped"),
	fanout:      telemetry.NewHistogram("obs.stream.fanout"),
}

// delta is one tsdb append captured by the hook.
type delta struct {
	k  tsdb.SeriesKey
	ts int64
	v  float64
}

// Hub owns the stream state and the flush loop.
type Hub struct {
	store   *tsdb.Store // nil when no store is mounted
	topoFn  func() any  // nil when no topology source is mounted
	a1Store *a1.Store   // nil when no policy store is mounted

	baseTick time.Duration

	// Subscriber counts gate the producer-side hooks: when zero, the
	// hooks return before taking any lock.
	tsdbSubs atomic.Int64
	spanSubs atomic.Int64
	a1Subs   atomic.Int64

	dmu    sync.Mutex
	deltas []delta // fixed-cap drop-oldest ring
	dHead  int     // index of oldest entry
	dLen   int

	smu    sync.Mutex
	spans  []trace.SpanData
	spHead int
	spLen  int

	amu    sync.Mutex
	a1Evs  []a1.Event
	a1Head int
	a1Len  int

	cmu     sync.Mutex
	clients map[*streamClient]struct{}
	closed  bool

	stop chan struct{}
	done chan struct{}

	// appendHookFn keeps the installed hook reachable so SetAppendHook
	// uninstall can be matched in tests; trace tail hook is global.
	hookInstalled bool
}

// newHub builds a hub and installs the producer hooks. flushMS <= 0
// selects DefaultFlushMS.
func newHub(store *tsdb.Store, topoFn func() any, a1Store *a1.Store, flushMS int) *Hub {
	if flushMS <= 0 {
		flushMS = DefaultFlushMS
	}
	h := &Hub{
		store:    store,
		topoFn:   topoFn,
		a1Store:  a1Store,
		baseTick: time.Duration(flushMS) * time.Millisecond,
		deltas:   make([]delta, pendingDeltaCap),
		spans:    make([]trace.SpanData, pendingSpanCap),
		a1Evs:    make([]a1.Event, pendingA1Cap),
		clients:  make(map[*streamClient]struct{}),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if store != nil {
		store.SetAppendHook(h.onAppend)
		h.hookInstalled = true
	}
	if a1Store != nil {
		a1Store.SetHook(h.onA1Event)
	}
	trace.SetTailHook(h.onSpan)
	go h.flushLoop()
	return h
}

// onAppend is the tsdb producer hook. It runs on the store's Append
// hot path: no allocations, one mutex, and an atomic early-out when no
// client subscribes to the tsdb channel.
func (h *Hub) onAppend(k tsdb.SeriesKey, ts int64, v float64) {
	if h.tsdbSubs.Load() == 0 {
		return
	}
	h.dmu.Lock()
	if h.dLen == len(h.deltas) {
		// Drop the oldest pending delta rather than blocking or growing.
		h.dHead = (h.dHead + 1) % len(h.deltas)
		h.dLen--
		streamTel.ringDropped.Inc()
	}
	h.deltas[(h.dHead+h.dLen)%len(h.deltas)] = delta{k: k, ts: ts, v: v}
	h.dLen++
	h.dmu.Unlock()
}

// onA1Event is the policy store hook; same contract as onAppend,
// except events keep flowing with zero subscribers only in the sense
// that the atomic check skips the ring work — the store still fires
// the hook, which is cheap and rare (policy mutations, not samples).
func (h *Hub) onA1Event(e a1.Event) {
	if h.a1Subs.Load() == 0 {
		return
	}
	h.amu.Lock()
	if h.a1Len == len(h.a1Evs) {
		h.a1Head = (h.a1Head + 1) % len(h.a1Evs)
		h.a1Len--
		streamTel.ringDropped.Inc()
	}
	h.a1Evs[(h.a1Head+h.a1Len)%len(h.a1Evs)] = e
	h.a1Len++
	h.amu.Unlock()
}

// onSpan is the trace tail hook; same contract as onAppend.
func (h *Hub) onSpan(d trace.SpanData) {
	if h.spanSubs.Load() == 0 {
		return
	}
	h.smu.Lock()
	if h.spLen == len(h.spans) {
		h.spHead = (h.spHead + 1) % len(h.spans)
		h.spLen--
		streamTel.ringDropped.Inc()
	}
	h.spans[(h.spHead+h.spLen)%len(h.spans)] = d
	h.spLen++
	h.smu.Unlock()
}

// close detaches every client (each gets a shutdown signal so WS
// handlers can send a going-away close frame), stops the flush loop,
// and uninstalls the producer hooks.
func (h *Hub) close() {
	h.cmu.Lock()
	if h.closed {
		h.cmu.Unlock()
		return
	}
	h.closed = true
	clients := make([]*streamClient, 0, len(h.clients))
	for c := range h.clients {
		clients = append(clients, c)
	}
	h.cmu.Unlock()

	close(h.stop)
	<-h.done
	if h.hookInstalled {
		h.store.SetAppendHook(nil)
	}
	if h.a1Store != nil {
		h.a1Store.SetHook(nil)
	}
	trace.SetTailHook(nil)
	for _, c := range clients {
		h.detach(c)
	}
}

// NumClients reports the attached client count (tests, topology).
func (h *Hub) NumClients() int {
	h.cmu.Lock()
	defer h.cmu.Unlock()
	return len(h.clients)
}

// ---------------------------------------------------------------------
// Clients and subscriptions

// clientSub is one channel subscription of one client.
type clientSub struct {
	glob  string
	every int // flush on every Nth base tick
}

// streamClient is one attached WS or SSE consumer. The hub writes
// marshaled frames into q; the transport handler drains it. enqueue
// never blocks: when q is full the oldest frame is dropped.
type streamClient struct {
	h *Hub
	q chan []byte
	// shutdown closes when the hub detaches the client; transports use
	// it to send a close frame and return.
	shutdown chan struct{}
	once     sync.Once

	mu       sync.Mutex
	subs     map[string]*clientSub
	tick     uint64
	acc      []delta // pending tsdb deltas for this client
	accDrop  bool
	spanAcc  []trace.SpanData
	a1Acc    []a1.Event
	prevTel  map[string]float64
	lastTopo []byte
	// closed flips under mu when detach releases the channel counters;
	// a subscribe racing the detach must not resurrect one.
	closed bool
}

// attach registers a new client and enqueues its hello frame. Returns
// nil when the hub is closed.
func (h *Hub) attach() *streamClient {
	c := &streamClient{
		h:        h,
		q:        make(chan []byte, clientQueueLen),
		shutdown: make(chan struct{}),
		subs:     make(map[string]*clientSub),
	}
	h.cmu.Lock()
	if h.closed {
		h.cmu.Unlock()
		return nil
	}
	h.clients[c] = struct{}{}
	n := len(h.clients)
	h.cmu.Unlock()
	streamTel.clients.Set(int64(n))
	c.enqueue(marshalFrame(helloFrame{
		Ch:          "hello",
		Channels:    []string{ChanTSDB, ChanTelemetry, ChanSpans, ChanTopology, ChanA1},
		BaseFlushMS: int(h.baseTick / time.Millisecond),
	}))
	return c
}

// detach removes a client and releases its channel subscriptions.
func (h *Hub) detach(c *streamClient) {
	h.cmu.Lock()
	_, ok := h.clients[c]
	delete(h.clients, c)
	n := len(h.clients)
	h.cmu.Unlock()
	if !ok {
		return
	}
	streamTel.clients.Set(int64(n))
	c.mu.Lock()
	c.closed = true
	for ch := range c.subs {
		h.subCount(ch).Add(-1)
		delete(c.subs, ch)
	}
	c.mu.Unlock()
	c.once.Do(func() { close(c.shutdown) })
}

// subCount returns the gating counter for a channel; channels without
// a producer hook share a dummy counter.
func (h *Hub) subCount(ch string) *atomic.Int64 {
	switch ch {
	case ChanTSDB:
		return &h.tsdbSubs
	case ChanSpans:
		return &h.spanSubs
	case ChanA1:
		return &h.a1Subs
	}
	return &dummyCount
}

var dummyCount atomic.Int64

func (c *streamClient) enqueue(b []byte) {
	for {
		select {
		case c.q <- b:
			streamTel.frames.Inc()
			return
		default:
		}
		// Queue full: drop the oldest frame. The slow client loses
		// history; the producer never blocks.
		select {
		case <-c.q:
			streamTel.dropped.Inc()
		default:
		}
	}
}

// request is one client->server protocol message.
type request struct {
	Op       string `json:"op"` // subscribe | unsubscribe | ping
	Ch       string `json:"ch"`
	Glob     string `json:"glob,omitempty"`
	WindowMS int64  `json:"window_ms,omitempty"`
	FlushMS  int    `json:"flush_ms,omitempty"`
}

type helloFrame struct {
	Ch          string   `json:"ch"`
	Channels    []string `json:"channels"`
	BaseFlushMS int      `json:"base_flush_ms"`
}

type errorFrame struct {
	Ch    string `json:"ch"`
	Error string `json:"error"`
}

func marshalFrame(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		// Frames are built from plain structs; this cannot fail.
		return []byte(`{"ch":"error","error":"marshal"}`)
	}
	return b
}

// handle processes one protocol request from the client's transport.
func (c *streamClient) handle(raw []byte) {
	var req request
	if err := json.Unmarshal(raw, &req); err != nil {
		c.enqueue(marshalFrame(errorFrame{Ch: "error", Error: "bad request: " + err.Error()}))
		return
	}
	switch req.Op {
	case "ping":
		c.enqueue([]byte(`{"ch":"pong"}`))
	case "subscribe":
		c.subscribe(req)
	case "unsubscribe":
		c.unsubscribe(req.Ch)
	default:
		c.enqueue(marshalFrame(errorFrame{Ch: "error", Error: "unknown op " + strconv.Quote(req.Op)}))
	}
}

func validChannel(ch string) bool {
	switch ch {
	case ChanTSDB, ChanTelemetry, ChanSpans, ChanTopology, ChanA1:
		return true
	}
	return false
}

func (c *streamClient) subscribe(req request) {
	if !validChannel(req.Ch) {
		c.enqueue(marshalFrame(errorFrame{Ch: "error", Error: "unknown channel " + strconv.Quote(req.Ch)}))
		return
	}
	if req.Ch == ChanTSDB && c.h.store == nil {
		c.enqueue(marshalFrame(errorFrame{Ch: "error", Error: "no tsdb store mounted"}))
		return
	}
	if req.Ch == ChanTopology && c.h.topoFn == nil {
		c.enqueue(marshalFrame(errorFrame{Ch: "error", Error: "no topology source mounted"}))
		return
	}
	if req.Ch == ChanA1 && c.h.a1Store == nil {
		c.enqueue(marshalFrame(errorFrame{Ch: "error", Error: "no policy store mounted"}))
		return
	}
	glob := req.Glob
	if glob == "" {
		glob = "*"
	}
	every := 1
	if req.FlushMS > 0 {
		every = int((time.Duration(req.FlushMS)*time.Millisecond + c.h.baseTick - 1) / c.h.baseTick)
		if every < 1 {
			every = 1
		}
	}
	sub := &clientSub{glob: glob, every: every}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	_, had := c.subs[req.Ch]
	c.subs[req.Ch] = sub
	if req.Ch == ChanTelemetry {
		c.prevTel = nil // force a full dump on the next flush
	}
	if req.Ch == ChanTopology {
		c.lastTopo = nil // force a snapshot on the next flush
	}
	// The counter update must share the critical section with the map
	// insert: a detach between them would release a count this add then
	// resurrects, leaking the producer gate.
	if !had {
		c.h.subCount(req.Ch).Add(1)
	}
	c.mu.Unlock()
	if req.Ch == ChanTSDB && req.WindowMS > 0 {
		c.backfill(glob, req.WindowMS)
	}
	if req.Ch == ChanA1 {
		c.backfillA1(glob)
	}
}

func (c *streamClient) unsubscribe(ch string) {
	c.mu.Lock()
	_, had := c.subs[ch]
	delete(c.subs, ch)
	if had {
		c.h.subCount(ch).Add(-1)
	}
	c.mu.Unlock()
}

// ---------------------------------------------------------------------
// Series naming and glob matching

// fnAliasNames is the reverse of fnAliases, for series-name rendering.
var fnAliasNames = func() map[uint16]string {
	m := make(map[uint16]string, len(fnAliases))
	for name, id := range fnAliases {
		m[id] = name
	}
	return m
}()

// seriesName renders a series key as the dotted wire name
// <fn>.<agent>.<ue>.<field>, e.g. "mac.0.1.cqi".
func seriesName(k tsdb.SeriesKey) string {
	fn, ok := fnAliasNames[k.Fn]
	if !ok {
		fn = "fn" + strconv.FormatUint(uint64(k.Fn), 10)
	}
	return fn + "." + strconv.FormatUint(uint64(k.Agent), 10) + "." +
		strconv.FormatUint(uint64(k.UE), 10) + "." + k.Field.String()
}

// globMatch reports whether s matches pattern, where '*' matches any
// run of characters (including empty and across dots).
func globMatch(pattern, s string) bool {
	// Iterative wildcard match with backtracking to the last '*'.
	p, i := 0, 0
	star, mark := -1, 0
	for i < len(s) {
		switch {
		case p < len(pattern) && pattern[p] == '*':
			star = p
			mark = i
			p++
		case p < len(pattern) && pattern[p] == s[i]:
			p++
			i++
		case star >= 0:
			p = star + 1
			mark++
			i = mark
		default:
			return false
		}
	}
	for p < len(pattern) && pattern[p] == '*' {
		p++
	}
	return p == len(pattern)
}

// ---------------------------------------------------------------------
// Frame building

// samplePair is one (timestamp, value) pair on the wire. The timestamp
// is Unix *milliseconds* so it survives the float64 JSON round-trip
// exactly (Unix nanoseconds exceed 2^53).
type samplePair [2]float64

func pair(tsNS int64, v float64) samplePair {
	return samplePair{float64(tsNS / int64(time.Millisecond)), v}
}

type seriesFrameEntry struct {
	Name    string       `json:"name"`
	Samples []samplePair `json:"samples"`
}

type tsdbFrame struct {
	Ch       string             `json:"ch"`
	Series   []seriesFrameEntry `json:"series"`
	Backfill bool               `json:"backfill,omitempty"`
	Partial  bool               `json:"partial,omitempty"`
	Dropped  bool               `json:"dropped,omitempty"`
}

type telemetryFrame struct {
	Ch      string             `json:"ch"`
	Full    bool               `json:"full,omitempty"`
	Metrics map[string]float64 `json:"metrics"`
}

type spanFrameEntry struct {
	TraceID    uint64 `json:"trace_id"`
	SpanID     uint64 `json:"span_id"`
	Parent     uint64 `json:"parent,omitempty"`
	Name       string `json:"name"`
	StartNS    int64  `json:"start_ns"`
	DurationNS int64  `json:"duration_ns"`
}

type spansFrame struct {
	Ch    string           `json:"ch"`
	Spans []spanFrameEntry `json:"spans"`
}

type topologyFrame struct {
	Ch       string          `json:"ch"`
	Topology json.RawMessage `json:"topology"`
}

// a1EventWire is one policy event on the wire. Backfill frames carry
// the current states as type "state" events.
type a1EventWire struct {
	Type    string  `json:"type"`
	ID      string  `json:"id"`
	Agent   int     `json:"agent"`
	Status  string  `json:"status"`
	Reason  string  `json:"reason,omitempty"`
	Version uint64  `json:"version"`
	TS      float64 `json:"ts"` // Unix milliseconds
}

type a1Frame struct {
	Ch       string        `json:"ch"`
	Backfill bool          `json:"backfill,omitempty"`
	Events   []a1EventWire `json:"events"`
}

func a1Wire(typ string, tsNS int64, st a1.State) a1EventWire {
	return a1EventWire{
		Type:    typ,
		ID:      st.Policy.ID,
		Agent:   st.Policy.Agent,
		Status:  string(st.Status),
		Reason:  st.Reason,
		Version: st.Policy.Version,
		TS:      float64(tsNS / int64(time.Millisecond)),
	}
}

// backfillA1 sends the current policy states matching glob (on the
// policy ID) so a fresh dashboard starts with the live picture.
func (c *streamClient) backfillA1(glob string) {
	frame := a1Frame{Ch: ChanA1, Backfill: true}
	for _, st := range c.h.a1Store.List() {
		if !globMatch(glob, st.Policy.ID) {
			continue
		}
		frame.Events = append(frame.Events, a1Wire("state", st.UpdatedNS, st))
	}
	c.enqueue(marshalFrame(frame))
}

// backfill sends the recent history of every series matching glob as
// one frame, so a fresh dashboard starts with context instead of an
// empty chart.
func (c *streamClient) backfill(glob string, windowMS int64) {
	now := time.Now().UnixNano()
	from := now - windowMS*int64(time.Millisecond)
	frame := tsdbFrame{Ch: ChanTSDB, Backfill: true}
	for _, info := range c.h.store.List(-1, 0) {
		name := seriesName(info.Key)
		if !globMatch(glob, name) {
			continue
		}
		if len(frame.Series) == backfillMaxSeries {
			frame.Partial = true
			break
		}
		samples := c.h.store.Range(info.Key, from, now, nil)
		if len(samples) == 0 {
			continue
		}
		e := seriesFrameEntry{Name: name, Samples: make([]samplePair, len(samples))}
		for i, s := range samples {
			e.Samples[i] = pair(s.TS, s.V)
		}
		frame.Series = append(frame.Series, e)
	}
	sort.Slice(frame.Series, func(i, j int) bool { return frame.Series[i].Name < frame.Series[j].Name })
	c.enqueue(marshalFrame(frame))
}

// flattenTelemetry walks a snapshot tree into dotted-name scalars.
// Histograms contribute .count, .mean_ns and .max_ns leaves.
func flattenTelemetry(s *telemetry.Snapshot, prefix string, out map[string]float64) {
	for name, v := range s.Counters {
		out[prefix+name] = float64(v)
	}
	for name, v := range s.Gauges {
		out[prefix+name] = float64(v)
	}
	for name, h := range s.Histograms {
		out[prefix+name+".count"] = float64(h.Count)
		out[prefix+name+".mean_ns"] = float64(h.Mean())
		out[prefix+name+".max_ns"] = float64(h.Max)
	}
	for seg, child := range s.Children {
		flattenTelemetry(child, prefix+seg+".", out)
	}
}

// ---------------------------------------------------------------------
// Flush loop

func (h *Hub) flushLoop() {
	defer close(h.done)
	tick := time.NewTicker(h.baseTick)
	defer tick.Stop()
	var (
		deltaScratch []delta
		nameScratch  []string
		spanScratch  []trace.SpanData
		a1Scratch    []a1.Event
	)
	for {
		select {
		case <-h.stop:
			return
		case <-tick.C:
		}
		t0 := time.Now()

		// Drain the producer rings into scratch buffers.
		deltaScratch = deltaScratch[:0]
		h.dmu.Lock()
		for i := 0; i < h.dLen; i++ {
			deltaScratch = append(deltaScratch, h.deltas[(h.dHead+i)%len(h.deltas)])
		}
		h.dHead, h.dLen = 0, 0
		h.dmu.Unlock()
		nameScratch = nameScratch[:0]
		for _, d := range deltaScratch {
			nameScratch = append(nameScratch, seriesName(d.k))
		}

		spanScratch = spanScratch[:0]
		h.smu.Lock()
		for i := 0; i < h.spLen; i++ {
			spanScratch = append(spanScratch, h.spans[(h.spHead+i)%len(h.spans)])
		}
		h.spHead, h.spLen = 0, 0
		h.smu.Unlock()

		a1Scratch = a1Scratch[:0]
		h.amu.Lock()
		for i := 0; i < h.a1Len; i++ {
			a1Scratch = append(a1Scratch, h.a1Evs[(h.a1Head+i)%len(h.a1Evs)])
		}
		h.a1Head, h.a1Len = 0, 0
		h.amu.Unlock()

		h.cmu.Lock()
		clients := make([]*streamClient, 0, len(h.clients))
		for c := range h.clients {
			clients = append(clients, c)
		}
		h.cmu.Unlock()

		// Per-tick lazies, shared across clients due this tick.
		var telFlat map[string]float64
		var topoBytes []byte
		for _, c := range clients {
			c.flushTick(deltaScratch, nameScratch, spanScratch, a1Scratch, &telFlat, &topoBytes)
		}
		streamTel.fanout.Observe(time.Since(t0))
	}
}

// flushTick accumulates this tick's data into the client and emits
// frames for every subscription due on this tick.
func (c *streamClient) flushTick(deltas []delta, names []string, spans []trace.SpanData, a1Evs []a1.Event, telFlat *map[string]float64, topoBytes *[]byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tick++

	// Accumulate into per-client buffers (bounded, drop-oldest).
	if sub := c.subs[ChanTSDB]; sub != nil {
		for i, d := range deltas {
			if !globMatch(sub.glob, names[i]) {
				continue
			}
			if len(c.acc) == clientAccCap {
				copy(c.acc, c.acc[1:])
				c.acc = c.acc[:clientAccCap-1]
				c.accDrop = true
				streamTel.ringDropped.Inc()
			}
			c.acc = append(c.acc, d)
		}
	}
	if c.subs[ChanSpans] != nil {
		c.spanAcc = append(c.spanAcc, spans...)
		if len(c.spanAcc) > clientAccCap {
			c.spanAcc = c.spanAcc[len(c.spanAcc)-clientAccCap:]
		}
	}
	if c.subs[ChanA1] != nil {
		c.a1Acc = append(c.a1Acc, a1Evs...)
		if len(c.a1Acc) > clientAccCap {
			c.a1Acc = c.a1Acc[len(c.a1Acc)-clientAccCap:]
		}
	}

	if sub := c.subs[ChanTSDB]; sub != nil && c.tick%uint64(sub.every) == 0 && len(c.acc) > 0 {
		frame := tsdbFrame{Ch: ChanTSDB, Dropped: c.accDrop}
		byName := make(map[string]int)
		for _, d := range c.acc {
			name := seriesName(d.k)
			idx, ok := byName[name]
			if !ok {
				idx = len(frame.Series)
				byName[name] = idx
				frame.Series = append(frame.Series, seriesFrameEntry{Name: name})
			}
			frame.Series[idx].Samples = append(frame.Series[idx].Samples, pair(d.ts, d.v))
		}
		sort.Slice(frame.Series, func(i, j int) bool { return frame.Series[i].Name < frame.Series[j].Name })
		c.acc = c.acc[:0]
		c.accDrop = false
		c.enqueue(marshalFrame(frame))
	}

	if sub := c.subs[ChanTelemetry]; sub != nil && c.tick%uint64(sub.every) == 0 {
		if *telFlat == nil {
			m := make(map[string]float64)
			flattenTelemetry(telemetry.TakeSnapshot(), "", m)
			*telFlat = m
		}
		full := c.prevTel == nil
		frame := telemetryFrame{Ch: ChanTelemetry, Full: full, Metrics: make(map[string]float64)}
		for name, v := range *telFlat {
			if !globMatch(sub.glob, name) {
				continue
			}
			if full || c.prevTel[name] != v {
				frame.Metrics[name] = v
			}
		}
		if c.prevTel == nil {
			c.prevTel = make(map[string]float64, len(*telFlat))
		}
		for name, v := range *telFlat {
			c.prevTel[name] = v
		}
		if full || len(frame.Metrics) > 0 {
			c.enqueue(marshalFrame(frame))
		}
	}

	if sub := c.subs[ChanSpans]; sub != nil && c.tick%uint64(sub.every) == 0 && len(c.spanAcc) > 0 {
		frame := spansFrame{Ch: ChanSpans}
		for _, d := range c.spanAcc {
			if !globMatch(sub.glob, d.Name) {
				continue
			}
			frame.Spans = append(frame.Spans, spanFrameEntry{
				TraceID: d.TraceID, SpanID: d.SpanID, Parent: d.Parent,
				Name: d.Name, StartNS: d.StartNS, DurationNS: d.DurationNS,
			})
		}
		c.spanAcc = c.spanAcc[:0]
		if len(frame.Spans) > 0 {
			c.enqueue(marshalFrame(frame))
		}
	}

	if sub := c.subs[ChanA1]; sub != nil && c.tick%uint64(sub.every) == 0 && len(c.a1Acc) > 0 {
		frame := a1Frame{Ch: ChanA1}
		for _, e := range c.a1Acc {
			if !globMatch(sub.glob, e.State.Policy.ID) {
				continue
			}
			frame.Events = append(frame.Events, a1Wire(string(e.Type), e.TS, e.State))
		}
		c.a1Acc = c.a1Acc[:0]
		if len(frame.Events) > 0 {
			c.enqueue(marshalFrame(frame))
		}
	}

	if sub := c.subs[ChanTopology]; sub != nil && c.tick%uint64(sub.every) == 0 {
		if *topoBytes == nil && c.h.topoFn != nil {
			b, err := json.Marshal(c.h.topoFn())
			if err == nil {
				*topoBytes = b
			}
		}
		if *topoBytes != nil && !bytes.Equal(*topoBytes, c.lastTopo) {
			c.lastTopo = append(c.lastTopo[:0], *topoBytes...)
			c.enqueue(marshalFrame(topologyFrame{Ch: ChanTopology, Topology: *topoBytes}))
		}
	}
}
