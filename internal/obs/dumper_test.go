package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer serializes writes so the test can read while the dumper's
// goroutine writes.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) dumps() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return strings.Count(b.buf.String(), "--- telemetry ---")
}

// The periodic dumper must actually stop on Stop — no writes after it
// returns — and flush one final dump so the tail interval is reported.
// This is the shutdown behavior the binaries previously lacked (the
// ticker goroutine was abandoned on SIGINT).
func TestDumperStopsAndFlushes(t *testing.T) {
	var buf syncBuffer
	d := NewDumper(&buf, 5*time.Millisecond, false)

	deadline := time.Now().Add(2 * time.Second)
	for buf.dumps() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("periodic dumper never fired twice")
		}
		time.Sleep(time.Millisecond)
	}

	d.Stop()
	after := buf.dumps()
	if before := after - 1; before < 2 {
		t.Fatalf("expected final flush on Stop: %d dumps total", after)
	}
	time.Sleep(30 * time.Millisecond)
	if got := buf.dumps(); got != after {
		t.Fatalf("dumper wrote after Stop: %d -> %d", after, got)
	}

	d.Stop() // idempotent
	if got := buf.dumps(); got != after {
		t.Fatalf("second Stop dumped again: %d -> %d", after, got)
	}
}

// With no period and onExit set (the -telemetry flag), Stop performs
// exactly one dump.
func TestDumperOnExitOnly(t *testing.T) {
	var buf syncBuffer
	d := NewDumper(&buf, 0, true)
	time.Sleep(10 * time.Millisecond)
	if got := buf.dumps(); got != 0 {
		t.Fatalf("dumped %d times before Stop", got)
	}
	d.Stop()
	if got := buf.dumps(); got != 1 {
		t.Fatalf("on-exit dump count = %d, want 1", got)
	}
}

// With neither flag, the dumper is inert.
func TestDumperDisabled(t *testing.T) {
	var buf syncBuffer
	d := NewDumper(&buf, 0, false)
	d.Stop()
	if got := buf.dumps(); got != 0 {
		t.Fatalf("disabled dumper dumped %d times", got)
	}
}
