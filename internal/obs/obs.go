// Package obs is the SDK's live-introspection surface: a small HTTP
// server exposing the telemetry registry (text and JSON), the tracing
// ring as per-trace span trees, net/http/pprof, and — with WithStream —
// the control room: a WebSocket/SSE streaming layer plus an embedded
// browser dashboard. Mounted in the flexric-ctrl and flexric-agent
// binaries via the -obs flag.
//
// Endpoints:
//
//	GET /                 embedded control-room dashboard (WithStream only)
//	GET /metrics          telemetry text dump (same as the -telemetry flags)
//	GET /snapshot.json    telemetry snapshot as a JSON tree
//	GET /traces?limit=N   most recent N traces as JSON span trees
//	GET /tsdb/series      live time-series inventory (WithTSDB only)
//	GET /tsdb/query       samples / windowed aggregates (WithTSDB only)
//	GET /tsdb/stats       store occupancy & compression stats (WithTSDB only)
//	GET /tsdb/partial     mergeable partial aggregates for federation fan-out
//	GET /topology.json    controller topology snapshot (WithTopology only)
//	GET /federation.json  federation-tier snapshot (WithFederation only)
//	GET /a1/...           A1 policy northbound (WithA1 only; see internal/a1)
//	GET /stream/ws        WebSocket push stream (WithStream only)
//	GET /stream/sse       server-sent-events push stream (WithStream only)
//	GET /debug/pprof/     standard pprof index (profile, heap, trace, ...)
//
// All endpoints except /a1/ are GET-only; other methods get 405 with
// an Allow header. Each route counts obs.http.requests.<route> and
// observes obs.http.latency.<route> (for the stream routes the
// "latency" is the connection lifetime); the /a1/ routes do their own
// method enforcement (they accept POST/PUT/DELETE) and count under
// a1.http.* instead.
package obs

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"flexric/internal/a1"
	"flexric/internal/telemetry"
	"flexric/internal/tsdb"
)

// Server is the observability HTTP server.
type Server struct {
	lis  net.Listener
	http *http.Server
	hub  *Hub // nil unless WithStream
}

// Option configures optional surfaces of the observability server.
type Option func(*options)

type options struct {
	store    *tsdb.Store
	stream   bool
	flushMS  int
	topoFn   func() any
	a1Store  *a1.Store
	fedFn    func() any
	fedQuery http.HandlerFunc
}

// WithTSDB mounts the /tsdb/series, /tsdb/query, and /tsdb/stats
// endpoints over the given store, and makes it the source of the
// stream hub's tsdb channel when WithStream is also set.
func WithTSDB(st *tsdb.Store) Option {
	return func(o *options) { o.store = st }
}

// WithStream mounts the control room: the /stream/ws and /stream/sse
// push endpoints and the dashboard at /. flushMS sets the hub's base
// flush tick (<= 0 selects DefaultFlushMS). The stream hub installs
// the process-global trace tail hook and the store's append hook for
// as long as the server runs, so it is opt-in rather than always-on.
func WithStream(flushMS int) Option {
	return func(o *options) { o.stream = true; o.flushMS = flushMS }
}

// WithTopology mounts /topology.json and the stream hub's topology
// channel over fn, which must return a JSON-marshalable snapshot (the
// controller passes ctrl.Topology.Snapshot; obs stays decoupled from
// the ctrl package).
func WithTopology(fn func() any) Option {
	return func(o *options) { o.topoFn = fn }
}

// WithA1 mounts the A1 policy northbound (/a1/policies,
// /a1/policies/{id}, /a1/status, /a1/types) over the given store, and
// makes it the source of the stream hub's a1 channel when WithStream
// is also set.
func WithA1(st *a1.Store) Option {
	return func(o *options) { o.a1Store = st }
}

// WithFederation mounts /federation.json over fn, which must return a
// JSON-marshalable snapshot of the federation tier (the root passes
// federation.Root.Snapshot; obs stays decoupled from that package the
// same way WithTopology decouples it from ctrl).
func WithFederation(fn func() any) Option {
	return func(o *options) { o.fedFn = fn }
}

// WithFederatedQuery mounts h at /tsdb/query on a server with no local
// store: the federation root serves the same query contract by fanning
// out to its shards' /tsdb/partial endpoints and merging. Ignored when
// WithTSDB is also set (the local store wins).
func WithFederatedQuery(h http.HandlerFunc) Option {
	return func(o *options) { o.fedQuery = h }
}

// route wraps a handler with per-endpoint telemetry and uniform
// method enforcement.
func route(label string, h http.HandlerFunc) http.HandlerFunc {
	reqs := telemetry.NewCounter("obs.http.requests." + label)
	lat := telemetry.NewHistogram("obs.http.latency." + label)
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		reqs.Inc()
		t0 := time.Now()
		h(w, r)
		lat.Observe(time.Since(t0))
	}
}

// NewServer binds addr (e.g. ":9090", "127.0.0.1:0") and starts serving.
func NewServer(addr string, opts ...Option) (*Server, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", route("metrics", handleMetrics))
	mux.HandleFunc("/snapshot.json", route("snapshot", handleSnapshot))
	mux.HandleFunc("/traces", route("traces", handleTraces))
	if o.store != nil {
		mux.HandleFunc("/tsdb/series", route("tsdb_series", handleTSDBSeries(o.store)))
		mux.HandleFunc("/tsdb/query", route("tsdb_query", handleTSDBQuery(o.store)))
		mux.HandleFunc("/tsdb/stats", route("tsdb_stats", handleTSDBStats(o.store)))
		mux.HandleFunc("/tsdb/partial", route("tsdb_partial", handleTSDBPartial(o.store)))
	} else if o.fedQuery != nil {
		mux.HandleFunc("/tsdb/query", route("tsdb_query", o.fedQuery))
	}
	if o.topoFn != nil {
		mux.HandleFunc("/topology.json", route("topology", handleTopology(o.topoFn)))
	}
	if o.fedFn != nil {
		mux.HandleFunc("/federation.json", route("federation", handleTopology(o.fedFn)))
	}
	if o.a1Store != nil {
		// The a1 handler owns its method enforcement and telemetry (it
		// accepts POST/PUT/DELETE, so the GET-only route wrapper does
		// not apply).
		mux.Handle("/a1/", a1.NewHandler(o.a1Store))
	}
	s := &Server{lis: lis}
	if o.stream {
		s.hub = newHub(o.store, o.topoFn, o.a1Store, o.flushMS)
		mux.HandleFunc("/stream/ws", route("stream_ws", handleStreamWS(s.hub)))
		mux.HandleFunc("/stream/sse", route("stream_sse", handleStreamSSE(s.hub)))
		mux.HandleFunc("/", route("root", handleDashboard))
	}
	// pprof registers on the default mux only; re-mount explicitly so a
	// custom mux works and nothing else leaks in.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.http = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = s.http.Serve(lis) }()
	return s, nil
}

// Addr returns the bound address, e.g. to print a startup banner.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Hub exposes the stream hub (nil unless WithStream), for tests.
func (s *Server) Hub() *Hub { return s.hub }

// Shutdown stops the server gracefully: stream clients receive a
// going-away WebSocket close frame (SSE streams end), the producer
// hooks are uninstalled, and in-flight plain HTTP requests drain until
// ctx expires. The binaries call this from their signal handlers.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.hub != nil {
		s.hub.close()
	}
	if err := s.http.Shutdown(ctx); err != nil {
		_ = s.http.Close()
		return err
	}
	return nil
}

// Close stops the server immediately (tests and abnormal paths;
// binaries prefer Shutdown).
func (s *Server) Close() error {
	if s.hub != nil {
		s.hub.close()
	}
	return s.http.Close()
}

func handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = telemetry.Dump(w)
}

func handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = telemetry.DumpJSON(w)
}

// handleTopology serves GET /topology.json: the controller topology
// snapshot the dashboard's topology panel renders.
func handleTopology(fn func() any) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(fn())
	}
}
