// Package obs is the SDK's live-introspection surface: a small HTTP
// server exposing the telemetry registry (text and JSON), the tracing
// ring as per-trace span trees, and net/http/pprof — mounted in the
// flexric-ctrl and flexric-agent binaries via the -obs flag. It also
// provides the Dumper helper that owns the binaries' periodic and
// on-exit telemetry dumps (so the ticker goroutine is stopped and
// flushed on shutdown instead of abandoned).
//
// Endpoints:
//
//	GET /metrics          telemetry text dump (same as the -telemetry flags)
//	GET /snapshot.json    telemetry snapshot as a JSON tree
//	GET /traces?limit=N   most recent N traces as JSON span trees
//	GET /tsdb/series      live time-series inventory (WithTSDB only)
//	GET /tsdb/query       samples / windowed aggregates (WithTSDB only)
//	GET /tsdb/stats       store occupancy & compression stats (WithTSDB only)
//	GET /debug/pprof/     standard pprof index (profile, heap, trace, ...)
package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"flexric/internal/telemetry"
	"flexric/internal/tsdb"
)

// Server is the observability HTTP server.
type Server struct {
	lis  net.Listener
	http *http.Server
}

// Option configures optional surfaces of the observability server.
type Option func(*options)

type options struct {
	store *tsdb.Store
}

// WithTSDB mounts the /tsdb/series, /tsdb/query, and /tsdb/stats
// endpoints over the given store.
func WithTSDB(st *tsdb.Store) Option {
	return func(o *options) { o.store = st }
}

// NewServer binds addr (e.g. ":9090", "127.0.0.1:0") and starts serving.
func NewServer(addr string, opts ...Option) (*Server, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", handleMetrics)
	mux.HandleFunc("/snapshot.json", handleSnapshot)
	mux.HandleFunc("/traces", handleTraces)
	if o.store != nil {
		mux.HandleFunc("/tsdb/series", handleTSDBSeries(o.store))
		mux.HandleFunc("/tsdb/query", handleTSDBQuery(o.store))
		mux.HandleFunc("/tsdb/stats", handleTSDBStats(o.store))
	}
	// pprof registers on the default mux only; re-mount explicitly so a
	// custom mux works and nothing else leaks in.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{
		lis:  lis,
		http: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go func() { _ = s.http.Serve(lis) }()
	return s, nil
}

// Addr returns the bound address, e.g. to print a startup banner.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.http.Close() }

func handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = telemetry.Dump(w)
}

func handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = telemetry.DumpJSON(w)
}
