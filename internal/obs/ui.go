package obs

import (
	_ "embed"
	"net/http"
)

// The control-room dashboard is a single self-contained HTML file —
// no build step, no external assets — compiled into the binary so the
// -obs flag is all an operator needs.
//
//go:embed ui/index.html
var dashboardHTML []byte

func handleDashboard(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write(dashboardHTML)
}
