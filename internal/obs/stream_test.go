package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"flexric/internal/obs/ws"
	"flexric/internal/tsdb"
)

func newStreamServer(t *testing.T, st *tsdb.Store, opts ...Option) *Server {
	t.Helper()
	opts = append([]Option{WithTSDB(st), WithStream(5)}, opts...)
	s, err := NewServer("127.0.0.1:0", opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

// readFrame reads WS messages until one with the wanted ch arrives.
func readFrame(t *testing.T, conn *ws.Conn, wantCh string, into any) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		_, payload, err := conn.ReadMessage()
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		var probe struct {
			Ch string `json:"ch"`
		}
		if err := json.Unmarshal(payload, &probe); err != nil {
			t.Fatalf("bad frame %s: %v", payload, err)
		}
		if probe.Ch == wantCh {
			if into != nil {
				if err := json.Unmarshal(payload, into); err != nil {
					t.Fatalf("decode %s: %v", payload, err)
				}
			}
			return
		}
	}
	t.Fatalf("no %q frame before deadline", wantCh)
}

// TestStreamWSEndToEnd: dial the real HTTP endpoint, subscribe over
// the socket, and receive batched deltas; finish with a clean close.
func TestStreamWSEndToEnd(t *testing.T) {
	st := tsdb.New(tsdb.Config{Capacity: 256})
	s := newStreamServer(t, st)

	conn, err := ws.Dial("ws://"+s.Addr()+"/stream/ws", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var hello helloFrame
	readFrame(t, conn, "hello", &hello)
	if hello.BaseFlushMS != 5 || len(hello.Channels) != 5 {
		t.Fatalf("hello = %+v", hello)
	}

	if err := conn.WriteText([]byte(`{"op":"subscribe","ch":"tsdb","glob":"mac.*"}`)); err != nil {
		t.Fatal(err)
	}
	// Appends race the subscribe; keep feeding until a frame lands.
	fld, _ := tsdb.ParseField("cqi")
	k := tsdb.SeriesKey{Agent: 1, Fn: 142, UE: 2, Field: fld}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			st.Append(k, time.Now().UnixNano(), float64(i))
			time.Sleep(time.Millisecond)
		}
	}()
	var frame tsdbFrame
	readFrame(t, conn, "tsdb", &frame)
	close(stop)
	wg.Wait()
	if len(frame.Series) != 1 || frame.Series[0].Name != "mac.1.2.cqi" {
		t.Fatalf("frame series = %+v", frame.Series)
	}

	// Clean close initiated by the client.
	if err := conn.CloseHandshake(ws.CloseNormal, "done", 2*time.Second); err != nil {
		t.Fatalf("close handshake: %v", err)
	}
	waitCond(t, "client detach", func() bool { return s.Hub().NumClients() == 0 })
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestStreamSSE: the same frames arrive as text/event-stream data
// lines, with subscriptions taken from query parameters.
func TestStreamSSE(t *testing.T) {
	st := tsdb.New(tsdb.Config{Capacity: 256})
	s := newStreamServer(t, st)

	fld, _ := tsdb.ParseField("cqi")
	k := tsdb.SeriesKey{Agent: 0, Fn: 142, UE: 1, Field: fld}
	now := time.Now().UnixNano()
	for i := 0; i < 5; i++ {
		st.Append(k, now-int64(5-i)*1e6, float64(i))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("http://%s/stream/sse?ch=tsdb&glob=mac.*&window_ms=60000", s.Addr()), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var frame tsdbFrame
		if err := json.Unmarshal([]byte(line[6:]), &frame); err != nil {
			t.Fatalf("bad SSE frame %q: %v", line, err)
		}
		if frame.Ch != ChanTSDB {
			continue
		}
		if !frame.Backfill || len(frame.Series) != 1 || len(frame.Series[0].Samples) != 5 {
			t.Fatalf("backfill frame = %+v", frame)
		}
		return
	}
	t.Fatalf("no tsdb frame on SSE stream: %v", sc.Err())
}

// TestStreamSSEBadParams: malformed query parameters are rejected.
func TestStreamSSEBadParams(t *testing.T) {
	s := newStreamServer(t, tsdb.New(tsdb.Config{Capacity: 16}))
	for _, q := range []string{"ch=bogus", "ch=tsdb&flush_ms=-1", "ch=tsdb&window_ms=x"} {
		resp, err := http.Get(fmt.Sprintf("http://%s/stream/sse?%s", s.Addr(), q))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestMethodEnforcement: every route is GET-only.
func TestMethodEnforcement(t *testing.T) {
	s := newStreamServer(t, tsdb.New(tsdb.Config{Capacity: 16}))
	for _, path := range []string{"/", "/metrics", "/snapshot.json", "/traces", "/tsdb/series", "/stream/sse"} {
		resp, err := http.Post("http://"+s.Addr()+path, "text/plain", strings.NewReader("x"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s: status %d, want 405", path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != http.MethodGet {
			t.Errorf("POST %s: Allow = %q, want GET", path, allow)
		}
	}
}

// TestDashboardServed: / returns the embedded dashboard, other paths 404.
func TestDashboardServed(t *testing.T) {
	s := newStreamServer(t, tsdb.New(tsdb.Config{Capacity: 16}))
	resp, err := http.Get("http://" + s.Addr() + "/")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 64)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body[:n]), "<!DOCTYPE html>") {
		t.Fatalf("dashboard: status %d body %q", resp.StatusCode, body[:n])
	}
	resp, err = http.Get("http://" + s.Addr() + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /nope: status %d, want 404", resp.StatusCode)
	}
}

// TestShutdownSendsClose: graceful shutdown sends each WS client a
// going-away close frame before the listener dies.
func TestShutdownSendsClose(t *testing.T) {
	st := tsdb.New(tsdb.Config{Capacity: 16})
	s, err := NewServer("127.0.0.1:0", WithTSDB(st), WithStream(5))
	if err != nil {
		t.Fatal(err)
	}
	conn, err := ws.Dial("ws://"+s.Addr()+"/stream/ws", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hello helloFrame
	readFrame(t, conn, "hello", &hello)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The client's next read ends in the server's close frame.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		_, _, err := conn.ReadMessage()
		if err == nil {
			continue
		}
		ce, ok := err.(*ws.CloseError)
		if !ok {
			t.Fatalf("read error %v, want CloseError", err)
		}
		if ce.Code != ws.CloseGoingAway {
			t.Fatalf("close code %d, want %d", ce.Code, ws.CloseGoingAway)
		}
		return
	}
	t.Fatal("no close frame after shutdown")
}

// TestHubStress exercises the hub under -race: concurrent appends,
// clients connecting/disconnecting, and live subscribe/unsubscribe
// churn, all while the flush loop runs at full speed.
func TestHubStress(t *testing.T) {
	st := tsdb.New(tsdb.Config{Capacity: 256})
	s := newStreamServer(t, st)

	stop := make(chan struct{})
	var wg, prodWg sync.WaitGroup

	// Producer: continuous appends across several series.
	fld, _ := tsdb.ParseField("cqi")
	prodWg.Add(1)
	go func() {
		defer prodWg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := tsdb.SeriesKey{Agent: uint32(i % 4), Fn: 142, UE: uint16(i % 8), Field: fld}
			st.Append(k, time.Now().UnixNano(), float64(i))
			if i%64 == 0 {
				time.Sleep(time.Millisecond)
			}
		}
	}()

	// Churning clients: subscribe/unsubscribe while frames flow.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 8; round++ {
				conn, err := ws.Dial("ws://"+s.Addr()+"/stream/ws", 5*time.Second)
				if err != nil {
					select {
					case <-stop: // shutdown race at the end is fine
						return
					default:
						t.Errorf("dial: %v", err)
						return
					}
				}
				_ = conn.WriteText([]byte(`{"op":"subscribe","ch":"tsdb","glob":"*"}`))
				_ = conn.WriteText([]byte(`{"op":"subscribe","ch":"telemetry"}`))
				_ = conn.WriteText([]byte(`{"op":"subscribe","ch":"spans"}`))
				// Read a few frames, then churn the tsdb subscription.
				for i := 0; i < 5; i++ {
					if _, _, err := conn.ReadMessage(); err != nil {
						break
					}
				}
				_ = conn.WriteText([]byte(`{"op":"unsubscribe","ch":"tsdb"}`))
				_ = conn.WriteText([]byte(`{"op":"subscribe","ch":"tsdb","glob":"mac.*"}`))
				if round%2 == 0 {
					_ = conn.CloseHandshake(ws.CloseNormal, "", time.Second)
				}
				_ = conn.Close()
			}
		}(g)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("stress did not finish")
	}
	close(stop)
	prodWg.Wait()
	waitCond(t, "clients drain", func() bool { return s.Hub().NumClients() == 0 })
	if n := s.Hub().tsdbSubs.Load(); n != 0 {
		t.Fatalf("leaked tsdb sub count: %d", n)
	}
}
