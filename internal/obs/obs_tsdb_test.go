package obs_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"flexric/internal/obs"
	"flexric/internal/sm"
	"flexric/internal/tsdb"
)

// TestFnAliasesMatchSM pins the curl-friendly fn aliases to the sm
// package's real RAN-function IDs (obs keeps a local table to stay
// decoupled from sm).
func TestFnAliasesMatchSM(t *testing.T) {
	for name, want := range map[string]uint16{
		"mac":  sm.IDMACStats,
		"rlc":  sm.IDRLCStats,
		"pdcp": sm.IDPDCPStats,
	} {
		got, ok := obs.FnAlias(name)
		if !ok || got != want {
			t.Fatalf("alias %q = %d (ok=%v), want %d", name, got, ok, want)
		}
	}
	if _, ok := obs.FnAlias("bogus"); ok {
		t.Fatal("bogus alias resolved")
	}
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestTSDBEndpoints drives /tsdb/series and /tsdb/query over a store
// populated with a known series.
func TestTSDBEndpoints(t *testing.T) {
	st := tsdb.New(tsdb.Config{Capacity: 4096})
	k := tsdb.SeriesKey{Agent: 1, Fn: sm.IDMACStats, UE: 7, Field: tsdb.FieldThroughputBps}
	// 1000 samples, one per ms, value = index, ending now.
	now := time.Now().UnixNano()
	start := now - 1000*int64(time.Millisecond)
	for i := 0; i < 1000; i++ {
		st.Append(k, start+int64(i)*int64(time.Millisecond), float64(i))
	}
	s, err := obs.NewServer("127.0.0.1:0", obs.WithTSDB(st))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	// /tsdb/series inventory, with and without filters.
	var infos []tsdb.SeriesInfo
	if code := getJSON(t, base+"/tsdb/series", &infos); code != http.StatusOK {
		t.Fatalf("series: %d", code)
	}
	if len(infos) != 1 || infos[0].Field != "throughput_bps" || infos[0].Count != 1000 {
		t.Fatalf("series = %+v", infos)
	}
	infos = nil
	if code := getJSON(t, base+"/tsdb/series?agent=1&fn=mac", &infos); code != http.StatusOK || len(infos) != 1 {
		t.Fatalf("filtered series = %+v", infos)
	}
	infos = nil
	if code := getJSON(t, base+"/tsdb/series?agent=9", &infos); code != http.StatusOK || len(infos) != 0 {
		t.Fatalf("empty filter = %+v", infos)
	}

	type queryResp struct {
		Field   string        `json:"field"`
		Samples []tsdb.Sample `json:"samples"`
		Agg     *tsdb.Agg     `json:"agg"`
		Buckets []tsdb.Bucket `json:"buckets"`
	}
	q := base + "/tsdb/query?agent=1&fn=mac&ue=7&field=throughput_bps"

	// last=K mode.
	var qr queryResp
	if code := getJSON(t, q+"&last=5", &qr); code != http.StatusOK {
		t.Fatalf("last: %d", code)
	}
	if len(qr.Samples) != 5 || qr.Samples[4].V != 999 {
		t.Fatalf("last samples = %+v", qr.Samples)
	}

	// window_ms aggregate mode (the fn alias resolves to 142).
	qr = queryResp{}
	if code := getJSON(t, q+"&window_ms=5000", &qr); code != http.StatusOK {
		t.Fatalf("window: %d", code)
	}
	if qr.Agg == nil || qr.Agg.Count != 1000 || qr.Agg.Max != 999 {
		t.Fatalf("window agg = %+v", qr.Agg)
	}
	if qr.Agg.P99 < qr.Agg.P50 {
		t.Fatalf("percentiles = %+v", qr.Agg)
	}

	// Bucketed absolute-range mode: 1000 ms in 100 ms steps.
	qr = queryResp{}
	u := fmt.Sprintf("%s&from=%d&to=%d&step_ms=100", q, start, start+1000*int64(time.Millisecond))
	if code := getJSON(t, u, &qr); code != http.StatusOK {
		t.Fatalf("buckets: %d", code)
	}
	if len(qr.Buckets) != 10 {
		t.Fatalf("%d buckets", len(qr.Buckets))
	}
	for i, b := range qr.Buckets {
		if b.Agg.Count != 100 {
			t.Fatalf("bucket %d count %d", i, b.Agg.Count)
		}
	}

	// Error paths.
	for want, url := range map[int]string{
		http.StatusBadRequest: q, // no mode selected
		http.StatusNotFound:   base + "/tsdb/query?agent=9&fn=mac&ue=7&field=cqi&last=5",
	} {
		var v any
		if code := getJSON(t, url, &v); code != want {
			t.Fatalf("%s: %d, want %d", url, code, want)
		}
	}
	for _, url := range []string{
		base + "/tsdb/query?fn=mac&ue=7&field=cqi&last=5", // missing agent
		q + "&last=0",                  // bad last
		q + "&window_ms=-1",            // bad window
		q + "&window_ms=100&step_ms=0", // bad step
		q + "&from=5&to=1",             // inverted range
		base + "/tsdb/query?agent=1&fn=nope&ue=7&field=cqi&last=1", // bad fn
		base + "/tsdb/series?agent=-2",                             // bad agent filter
	} {
		var v any
		if code := getJSON(t, url, &v); code != http.StatusBadRequest {
			t.Fatalf("%s: %d, want 400", url, code)
		}
	}
}

// TestTSDBStatsEndpoint drives /tsdb/stats over a compressed store:
// the occupancy summary must report sealed chunks and a compression
// ratio, and track the store's own Stats() exactly.
func TestTSDBStatsEndpoint(t *testing.T) {
	st := tsdb.New(tsdb.Config{Capacity: 128, Compress: true})
	k := tsdb.SeriesKey{Agent: 1, Fn: sm.IDMACStats, UE: 1, Field: tsdb.FieldTxBytes}
	v := 0.0
	for i := 0; i < 1000; i++ {
		v += 1500
		st.Append(k, int64(i)*int64(time.Millisecond), v)
	}
	st.AppendRaw(1, sm.IDMACStats, 0, []byte("payload"))
	s, err := obs.NewServer("127.0.0.1:0", obs.WithTSDB(st))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var got tsdb.Stats
	if code := getJSON(t, "http://"+s.Addr()+"/tsdb/stats", &got); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if got != st.Stats() {
		t.Fatalf("endpoint stats %+v != store stats %+v", got, st.Stats())
	}
	if got.Series != 1 || got.Chunks == 0 || got.ChunkSamples == 0 {
		t.Fatalf("occupancy: %+v", got)
	}
	if got.BytesPerSample <= 0 || got.BytesPerSample > 2 {
		t.Fatalf("bytes/sample = %v, want (0, 2] on a counter series", got.BytesPerSample)
	}
	if got.RawPayloads != 1 || got.RawPayloadBytes != len("payload") {
		t.Fatalf("raw archive: %+v", got)
	}
}
