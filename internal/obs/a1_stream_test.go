package obs

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"flexric/internal/a1"
	"flexric/internal/obs/ws"
	"flexric/internal/tsdb"
)

// TestA1MountAndStream covers the WithA1 surface end to end: the /a1/*
// northbound mounted on the obs mux, the a1 stream channel's backfill
// on subscribe, and live store events (create + status transition)
// arriving as batched event frames.
func TestA1MountAndStream(t *testing.T) {
	pol := a1.NewStore()
	st := tsdb.New(tsdb.Config{Capacity: 64})
	s := newStreamServer(t, st, WithA1(pol))

	// Pre-existing policy: must appear in the backfill.
	if _, err := pol.Create(a1.Policy{
		ID: "pre", TypeID: a1.TypeSliceSLA, Agent: 0, WindowMS: 200,
		Targets: []a1.SliceTarget{{SliceID: 1, MinThroughputMbps: 10}},
	}); err != nil {
		t.Fatal(err)
	}

	// Northbound mounted: create a second policy over HTTP.
	resp, err := http.Post("http://"+s.Addr()+"/a1/policies", "application/json",
		strings.NewReader(`{"id":"live","typeId":"slice_sla_v1","agent":0,"windowMs":200,"targets":[{"sliceId":2,"maxLatencyMs":20}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create over obs mux: %d", resp.StatusCode)
	}
	resp.Body.Close()

	conn, err := ws.Dial("ws://"+s.Addr()+"/stream/ws", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hello helloFrame
	readFrame(t, conn, "hello", &hello)
	hasA1 := false
	for _, ch := range hello.Channels {
		if ch == ChanA1 {
			hasA1 = true
		}
	}
	if !hasA1 {
		t.Fatalf("hello channels %v missing a1", hello.Channels)
	}

	if err := conn.WriteText([]byte(`{"op":"subscribe","ch":"a1","flush_ms":5}`)); err != nil {
		t.Fatal(err)
	}
	var backfill a1Frame
	readFrame(t, conn, "a1", &backfill)
	if !backfill.Backfill || len(backfill.Events) != 2 {
		t.Fatalf("backfill frame %+v", backfill)
	}
	for _, e := range backfill.Events {
		if e.Type != "state" || e.Status != string(a1.StatusNotApplied) {
			t.Fatalf("backfill event %+v", e)
		}
	}

	// A live transition must arrive as a status event.
	pol.SetStatus("live", a1.StatusViolated, "slice 2 over latency budget")
	deadline := time.Now().Add(5 * time.Second)
	var got *a1EventWire
	for got == nil && time.Now().Before(deadline) {
		var frame a1Frame
		readFrame(t, conn, "a1", &frame)
		for i := range frame.Events {
			if frame.Events[i].Type == string(a1.EventStatus) {
				got = &frame.Events[i]
			}
		}
	}
	if got == nil {
		t.Fatal("no status event delivered")
	}
	if got.ID != "live" || got.Status != string(a1.StatusViolated) || got.Reason == "" || got.TS == 0 {
		t.Fatalf("status event %+v", got)
	}

	// Glob filter on policy ID: only matching events flow.
	if err := conn.WriteText([]byte(`{"op":"subscribe","ch":"a1","glob":"pre*","flush_ms":5}`)); err != nil {
		t.Fatal(err)
	}
	var filtered a1Frame
	readFrame(t, conn, "a1", &filtered)
	if !filtered.Backfill || len(filtered.Events) != 1 || filtered.Events[0].ID != "pre" {
		t.Fatalf("glob backfill %+v", filtered)
	}

	if err := conn.CloseHandshake(ws.CloseNormal, "done", 2*time.Second); err != nil {
		t.Fatalf("close handshake: %v", err)
	}
}

// TestA1SubscribeWithoutStore: subscribing to a1 on a hub without a
// policy store must produce an error frame, not a silent no-op.
func TestA1SubscribeWithoutStore(t *testing.T) {
	st := tsdb.New(tsdb.Config{Capacity: 64})
	s := newStreamServer(t, st)
	conn, err := ws.Dial("ws://"+s.Addr()+"/stream/ws", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	readFrame(t, conn, "hello", nil)
	if err := conn.WriteText([]byte(`{"op":"subscribe","ch":"a1"}`)); err != nil {
		t.Fatal(err)
	}
	var ef errorFrame
	readFrame(t, conn, "error", &ef)
	if !strings.Contains(ef.Error, "no policy store") {
		t.Fatalf("error frame %+v", ef)
	}
}

// TestA1HookUninstallOnClose: closing the obs server must detach the
// hub's hook from the store so later mutations do not touch freed hub
// state (and a second server can install its own hook).
func TestA1HookUninstallOnClose(t *testing.T) {
	pol := a1.NewStore()
	st := tsdb.New(tsdb.Config{Capacity: 64})
	s, err := NewServer("127.0.0.1:0", WithTSDB(st), WithStream(5), WithA1(pol))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// With the hook uninstalled this must not panic or deadlock.
	if _, err := pol.Create(a1.Policy{
		ID: "after", TypeID: a1.TypeSliceSLA, WindowMS: 100,
		Targets: []a1.SliceTarget{{SliceID: 1, MaxLatencyMS: 5}},
	}); err != nil {
		t.Fatal(err)
	}
}
