package obs_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"flexric/internal/agent"
	"flexric/internal/ctrl"
	"flexric/internal/e2ap"
	"flexric/internal/obs"
	"flexric/internal/ran"
	"flexric/internal/server"
	"flexric/internal/sm"
	"flexric/internal/telemetry"
	"flexric/internal/trace"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestEndpoints(t *testing.T) {
	telemetry.Default.Counter("obstest.requests").Add(9)
	defer telemetry.Unregister("obstest")

	s, err := obs.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "obstest.requests") {
		t.Errorf("/metrics = %d %q", code, body)
	}

	code, body = get(t, base+"/snapshot.json")
	if code != http.StatusOK {
		t.Fatalf("/snapshot.json = %d", code)
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/snapshot.json not JSON: %v\n%s", err, body)
	}

	code, body = get(t, base+"/traces?limit=3")
	if code != http.StatusOK {
		t.Fatalf("/traces = %d", code)
	}
	var trees []obs.TraceTree
	if err := json.Unmarshal([]byte(body), &trees); err != nil {
		t.Fatalf("/traces not JSON: %v\n%s", err, body)
	}

	if code, _ := get(t, base+"/traces?limit=bogus"); code != http.StatusBadRequest {
		t.Errorf("/traces?limit=bogus = %d, want 400", code)
	}

	if code, _ := get(t, base+"/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ = %d", code)
	}
}

// TestTraceDemo is the PR's acceptance demo (`make trace-demo`): one
// monitoring control loop per scheme, observed through /traces. It
// asserts the end-to-end span tree — the indication root stamped in the
// agent, the transport send, the server dispatch child that crossed the
// wire inside the PDU, and the controller callback beneath it — all
// with non-zero durations, for both the asn and fb encodings.
func TestTraceDemo(t *testing.T) {
	schemes := []struct {
		e2 e2ap.Scheme
		sm sm.Scheme
	}{
		{e2ap.SchemeASN, sm.SchemeASN},
		{e2ap.SchemeFB, sm.SchemeFB},
	}
	for _, sc := range schemes {
		t.Run(string(sc.e2), func(t *testing.T) { runTraceDemo(t, sc.e2, sc.sm) })
	}
}

func runTraceDemo(t *testing.T, e2Scheme e2ap.Scheme, smScheme sm.Scheme) {
	trace.Reset()
	trace.SetSampleEvery(1)
	defer func() {
		trace.SetSampleEvery(0)
		trace.Reset()
	}()

	srv := server.New(server.Config{Scheme: e2Scheme})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctrl.NewMonitor(srv, ctrl.MonitorConfig{Scheme: smScheme, PeriodMS: 1, Layers: ctrl.MonMAC, Decode: true})

	cell, err := ran.NewCell(ran.PHYConfig{RAT: ran.RAT4G, NumRB: 25})
	if err != nil {
		t.Fatal(err)
	}
	a := agent.New(agent.Config{
		NodeID: e2ap.GlobalE2NodeID{PLMN: e2ap.PLMN{MCC: 208, MNC: 95}, Type: e2ap.NodeENB, NodeID: 1},
		Scheme: e2Scheme,
	})
	fns := []agent.RANFunction{sm.NewMACStats(cell, smScheme, a)}
	for _, fn := range fns {
		if err := a.RegisterFunction(fn); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Connect(addr); err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, err := cell.Attach(1, "", "208.95", 20); err != nil {
		t.Fatal(err)
	}

	o, err := obs.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()

	// Drive the control loop until a complete trace shows up via HTTP
	// (the monitor's subscription is established asynchronously by the
	// connect hook, so early iterations may be untraced).
	deadline := time.Now().Add(10 * time.Second)
	for {
		for i := 0; i < 20; i++ {
			cell.Step(1)
			sm.TickAll(fns, cell.Now())
		}
		time.Sleep(10 * time.Millisecond) // let dispatch + callback finish
		code, body := get(t, "http://"+o.Addr()+"/traces?limit=64")
		if code != http.StatusOK {
			t.Fatalf("/traces = %d", code)
		}
		var trees []obs.TraceTree
		if err := json.Unmarshal([]byte(body), &trees); err != nil {
			t.Fatalf("/traces not JSON: %v", err)
		}
		if findCompleteTrace(trees) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no complete trace after 10s; last /traces:\n%s", body)
		}
	}
}

// findCompleteTrace reports whether any trace links the full pipeline
// with non-zero per-stage durations:
//
//	agent.indication
//	├── transport.send
//	└── server.dispatch
//	    └── ctrl.monitor.store
func findCompleteTrace(trees []obs.TraceTree) bool {
	for _, tree := range trees {
		for _, root := range tree.Roots {
			if root.Name != "agent.indication" || root.DurationNS <= 0 {
				continue
			}
			var send, dispatch *obs.SpanNode
			for _, c := range root.Children {
				switch c.Name {
				case "transport.send":
					send = c
				case "server.dispatch":
					dispatch = c
				}
			}
			if send == nil || send.DurationNS <= 0 || dispatch == nil || dispatch.DurationNS <= 0 {
				continue
			}
			for _, c := range dispatch.Children {
				if c.Name == "ctrl.monitor.store" && c.DurationNS > 0 {
					return true
				}
			}
		}
	}
	return false
}

// BuildTraceTrees must keep orphans visible and order by recency.
func TestBuildTraceTrees(t *testing.T) {
	spans := []trace.SpanData{
		{TraceID: 1, SpanID: 11, Name: "old.root", StartNS: 100, DurationNS: 5},
		{TraceID: 2, SpanID: 21, Name: "root", StartNS: 200, DurationNS: 9},
		{TraceID: 2, SpanID: 22, Parent: 21, Name: "child", StartNS: 201, DurationNS: 3},
		{TraceID: 2, SpanID: 23, Parent: 99, Name: "orphan", StartNS: 202, DurationNS: 1},
	}
	trees := obs.BuildTraceTrees(spans, 1)
	if len(trees) != 1 || trees[0].TraceID != 2 {
		t.Fatalf("trees = %+v, want only trace 2", trees)
	}
	if trees[0].Spans != 3 || len(trees[0].Roots) != 2 {
		t.Fatalf("trace 2: spans=%d roots=%d, want 3 spans / 2 roots (orphan surfaces)", trees[0].Spans, len(trees[0].Roots))
	}
	root := trees[0].Roots[0]
	if root.Name != "root" || len(root.Children) != 1 || root.Children[0].Name != "child" {
		t.Errorf("tree shape wrong: %+v", root)
	}

	trees = obs.BuildTraceTrees(spans, 10)
	if len(trees) != 2 || trees[0].TraceID != 2 || trees[1].TraceID != 1 {
		ids := make([]string, len(trees))
		for i, tr := range trees {
			ids[i] = fmt.Sprint(tr.TraceID)
		}
		t.Errorf("recency order wrong: %v, want [2 1]", ids)
	}
}
