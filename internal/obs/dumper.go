package obs

import (
	"fmt"
	"io"
	"sync"
	"time"

	"flexric/internal/telemetry"
)

// Dumper owns a binary's telemetry dumps: an optional periodic dump
// (the -telemetry-every flag) and an optional final dump on Stop (the
// -telemetry flag). It replaces the previous inline ticker goroutines,
// which were abandoned at exit — Stop joins the goroutine and flushes,
// so the last measurement interval is never lost.
type Dumper struct {
	w       io.Writer
	every   time.Duration
	onExit  bool
	done    chan struct{}
	wg      sync.WaitGroup
	stopped sync.Once

	mu sync.Mutex // serializes dumps from the ticker and Stop
}

// NewDumper starts a dumper writing to w every `every` (0 = no periodic
// dump). With onExit, Stop flushes one final dump; a periodic dumper
// always flushes on Stop so its tail interval is reported.
func NewDumper(w io.Writer, every time.Duration, onExit bool) *Dumper {
	d := &Dumper{w: w, every: every, onExit: onExit, done: make(chan struct{})}
	if every > 0 {
		d.wg.Add(1)
		go d.loop()
	}
	return d
}

func (d *Dumper) loop() {
	defer d.wg.Done()
	t := time.NewTicker(d.every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			d.dump()
		case <-d.done:
			return
		}
	}
}

func (d *Dumper) dump() {
	d.mu.Lock()
	defer d.mu.Unlock()
	fmt.Fprintln(d.w, "--- telemetry ---")
	_ = telemetry.Dump(d.w)
}

// Stop halts the periodic goroutine (joining it, so no write can land
// after Stop returns) and flushes a final dump when configured.
// Idempotent and safe to call on a dumper with no periodic loop.
func (d *Dumper) Stop() {
	d.stopped.Do(func() {
		close(d.done)
		d.wg.Wait()
		if d.onExit || d.every > 0 {
			d.dump()
		}
	})
}
