package obs

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"flexric/internal/obs/ws"
)

// Stream transports. Both speak the same frame vocabulary (hub.go);
// they differ in how subscriptions arrive:
//
//	GET /stream/ws    WebSocket. The client sends JSON requests
//	                  ({"op":"subscribe","ch":"tsdb","glob":"mac.*",...})
//	                  over the socket and may re-subscribe live.
//	GET /stream/sse   Server-sent events. Subscriptions are fixed at
//	                  request time via query parameters: ch (repeatable),
//	                  glob, flush_ms, window_ms.

// wsWriteTimeout bounds each frame write so one dead client cannot
// wedge its writer goroutine.
const wsWriteTimeout = 5 * time.Second

// handleStreamWS upgrades to WebSocket and bridges hub frames <-> the
// socket. Reader and writer run as separate goroutines: the reader
// parses protocol requests, the writer drains the client queue.
func handleStreamWS(h *Hub) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		conn, err := ws.Upgrade(w, r)
		if err != nil {
			// Upgrade already wrote the HTTP error (or the connection is
			// gone); nothing more to send.
			return
		}
		conn.WriteTimeout = wsWriteTimeout
		c := h.attach()
		if c == nil {
			_ = conn.CloseHandshake(ws.CloseGoingAway, "shutting down", time.Second)
			_ = conn.Close()
			return
		}

		// Reader: protocol requests until error/close.
		readerDone := make(chan struct{})
		go func() {
			defer close(readerDone)
			for {
				op, payload, err := conn.ReadMessage()
				if err != nil {
					return
				}
				if op == ws.OpText || op == ws.OpBinary {
					c.handle(payload)
				}
			}
		}()

		// Writer: hub frames until the client leaves or the hub shuts
		// down. On shutdown the client gets a proper going-away close.
		for {
			select {
			case frame := <-c.q:
				if err := conn.WriteText(frame); err != nil {
					h.detach(c)
					_ = conn.Close()
					<-readerDone
					return
				}
			case <-c.shutdown:
				// Hub-initiated goodbye. Only write the close frame here:
				// the reader goroutine is still inside ReadMessage, and a
				// CloseHandshake (which reads for the peer's echo) would
				// race it on the shared buffered reader — net/http's
				// connReader panics on concurrent post-hijack reads. The
				// reader consumes the echo; the deadline bounds the drain
				// if the peer never sends one.
				_ = conn.WriteClose(ws.CloseGoingAway, "shutting down")
				_ = conn.SetReadDeadline(time.Now().Add(time.Second))
				<-readerDone
				_ = conn.Close()
				return
			case <-readerDone:
				// Client-initiated close or socket error.
				h.detach(c)
				_ = conn.Close()
				return
			}
		}
	}
}

// handleStreamSSE serves the same frames over text/event-stream for
// consumers that cannot speak WebSocket (curl, EventSource).
func handleStreamSSE(h *Hub) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		fl, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		c := h.attach()
		if c == nil {
			http.Error(w, "shutting down", http.StatusServiceUnavailable)
			return
		}
		defer h.detach(c)

		q := r.URL.Query()
		chans := q["ch"]
		if len(chans) == 0 {
			chans = []string{ChanTelemetry}
		}
		flushMS := 0
		if v := q.Get("flush_ms"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				http.Error(w, "bad flush_ms parameter", http.StatusBadRequest)
				return
			}
			flushMS = n
		}
		var windowMS int64
		if v := q.Get("window_ms"); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n <= 0 {
				http.Error(w, "bad window_ms parameter", http.StatusBadRequest)
				return
			}
			windowMS = n
		}
		for _, ch := range chans {
			if !validChannel(ch) {
				http.Error(w, "unknown channel "+strconv.Quote(ch), http.StatusBadRequest)
				return
			}
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.WriteHeader(http.StatusOK)
		fl.Flush()
		for _, ch := range chans {
			c.subscribe(request{Op: "subscribe", Ch: ch, Glob: q.Get("glob"), FlushMS: flushMS, WindowMS: windowMS})
		}

		ctx := r.Context()
		for {
			select {
			case frame := <-c.q:
				if _, err := fmt.Fprintf(w, "data: %s\n\n", frame); err != nil {
					return
				}
				fl.Flush()
			case <-c.shutdown:
				return
			case <-ctx.Done():
				return
			}
		}
	}
}
