package server

import (
	"sync"
	"time"

	"flexric/internal/e2ap"
	"flexric/internal/telemetry"
	"flexric/internal/trace"
)

// subManager is the subscription management of §4.2.2: it "(i) keeps
// track of existing subscriptions and (ii) delivers arriving
// subscription-related messages to the corresponding iApps". Lookup on
// the indication hot path is a single map access keyed by
// (agent, request ID) read from the message envelope.
type subManager struct {
	mu       sync.Mutex
	subs     map[SubID]*subscription
	controls map[SubID]func(outcome []byte, err error)
	// Requestor namespaces: subscriptions and controls use distinct
	// requestor IDs so their instance counters are independent.
	subSeq  uint16
	ctlSeq  uint16
	fafSeq  uint16
	dropped uint64 // indications without a matching subscription
}

// Requestor namespaces for RequestID.Requestor.
const (
	requestorSub     = 1
	requestorControl = 2
	requestorFaF     = 3 // fire-and-forget controls
)

type subscription struct {
	cb SubscriptionCallbacks
	// Replay metadata: enough of the original request to re-issue it
	// verbatim (same RequestID) when a suspended agent reconnects.
	fnID    uint16
	trigger []byte
	actions []e2ap.Action
	// inds counts indications delivered to this subscription
	// (server.sub.<...>.indications).
	inds *telemetry.Counter
}

func newSubManager() *subManager {
	return &subManager{
		subs:     make(map[SubID]*subscription),
		controls: make(map[SubID]func([]byte, error)),
	}
}

func (m *subManager) create(agent AgentID, fnID uint16, trigger []byte, actions []e2ap.Action, cb SubscriptionCallbacks) e2ap.RequestID {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.subSeq++
	req := e2ap.RequestID{Requestor: requestorSub, Instance: m.subSeq}
	id := SubID{Agent: agent, Req: req}
	m.subs[id] = &subscription{
		cb:      cb,
		fnID:    fnID,
		trigger: trigger,
		actions: actions,
		inds:    subIndications(id),
	}
	serverTel.subsActive.Set(int64(len(m.subs)))
	return req
}

func (m *subManager) remove(id SubID) {
	m.mu.Lock()
	delete(m.subs, id)
	serverTel.subsActive.Set(int64(len(m.subs)))
	m.mu.Unlock()
	dropSubTelemetry(id)
}

func (m *subManager) createControl(agent AgentID, done func([]byte, error)) e2ap.RequestID {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ctlSeq++
	req := e2ap.RequestID{Requestor: requestorControl, Instance: m.ctlSeq}
	m.controls[SubID{Agent: agent, Req: req}] = done
	return req
}

func (m *subManager) nextFireAndForget() e2ap.RequestID {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fafSeq++
	return e2ap.RequestID{Requestor: requestorFaF, Instance: m.fafSeq}
}

// dispatchIndication routes an indication envelope to its subscriber.
// This is the server's hottest path (§5.3): one lock, one map lookup,
// one callback.
func (m *subManager) dispatchIndication(agent AgentID, env e2ap.Envelope) {
	var t0 time.Time
	if telemetry.Enabled {
		t0 = time.Now()
	}
	id := SubID{Agent: agent, Req: env.RequestID()}
	// Child of the agent's indication span; covers lookup + callback.
	// With the FB scheme env.Trace() is an O(1) slot read, so the
	// untraced hot path pays only that plus a branch.
	var sp trace.Span
	if trace.Enabled {
		if tc := env.Trace(); tc.Valid() {
			sp = trace.StartChild(tc, "server.dispatch")
		}
	}
	m.mu.Lock()
	sub := m.subs[id]
	m.mu.Unlock()
	if sub == nil || sub.cb.OnIndication == nil {
		m.mu.Lock()
		m.dropped++
		m.mu.Unlock()
		serverTel.dropped.Inc()
		sp.End()
		return
	}
	sub.cb.OnIndication(IndicationEvent{Agent: agent, Env: env, Trace: sp.Context()})
	sp.End()
	if telemetry.Enabled {
		serverTel.indications.Inc()
		sub.inds.Inc()
		serverTel.dispatchLat.Observe(time.Since(t0))
	}
}

func (m *subManager) handleSubResponse(agent AgentID, resp *e2ap.SubscriptionResponse) {
	m.mu.Lock()
	sub := m.subs[SubID{Agent: agent, Req: resp.RequestID}]
	m.mu.Unlock()
	if sub != nil && sub.cb.OnAdmitted != nil {
		sub.cb.OnAdmitted(resp)
	}
}

func (m *subManager) handleSubFailure(agent AgentID, f *e2ap.SubscriptionFailure) {
	id := SubID{Agent: agent, Req: f.RequestID}
	m.mu.Lock()
	sub := m.subs[id]
	delete(m.subs, id)
	serverTel.subsActive.Set(int64(len(m.subs)))
	m.mu.Unlock()
	dropSubTelemetry(id)
	if sub != nil && sub.cb.OnFailure != nil {
		sub.cb.OnFailure(f.Cause)
	}
}

func (m *subManager) handleSubDeleted(agent AgentID, req e2ap.RequestID) {
	id := SubID{Agent: agent, Req: req}
	m.mu.Lock()
	sub := m.subs[id]
	delete(m.subs, id)
	serverTel.subsActive.Set(int64(len(m.subs)))
	m.mu.Unlock()
	dropSubTelemetry(id)
	if sub != nil && sub.cb.OnDeleted != nil {
		sub.cb.OnDeleted()
	}
}

func (m *subManager) handleControlOutcome(agent AgentID, req e2ap.RequestID, outcome []byte, err error) {
	id := SubID{Agent: agent, Req: req}
	m.mu.Lock()
	done := m.controls[id]
	delete(m.controls, id)
	m.mu.Unlock()
	if done != nil {
		if err != nil {
			done(outcome, err)
		} else {
			done(outcome, nil)
		}
	}
}

// dropAgent discards all state for a disconnected agent, notifying
// subscribers via OnDeleted and pending controls via an error.
func (m *subManager) dropAgent(agent AgentID) {
	m.mu.Lock()
	var deleted []*subscription
	for id, sub := range m.subs {
		if id.Agent == agent {
			deleted = append(deleted, sub)
			delete(m.subs, id)
			dropSubTelemetry(id)
		}
	}
	serverTel.subsActive.Set(int64(len(m.subs)))
	var aborted []func([]byte, error)
	for id, done := range m.controls {
		if id.Agent == agent {
			aborted = append(aborted, done)
			delete(m.controls, id)
		}
	}
	m.mu.Unlock()
	for _, sub := range deleted {
		if sub.cb.OnDeleted != nil {
			sub.cb.OnDeleted()
		}
	}
	for _, done := range aborted {
		done(nil, ErrClosed)
	}
}

// abortControls promptly fails the agent's pending controls with
// ErrClosed while leaving subscriptions in place — the suspension half
// of retention: a control answer can never arrive on a dead connection,
// but subscriptions survive for replay.
func (m *subManager) abortControls(agent AgentID) {
	m.mu.Lock()
	var aborted []func([]byte, error)
	for id, done := range m.controls {
		if id.Agent == agent {
			aborted = append(aborted, done)
			delete(m.controls, id)
		}
	}
	m.mu.Unlock()
	for _, done := range aborted {
		done(nil, ErrClosed)
	}
}

// replayItem is one retained subscription to re-establish on reconnect.
type replayItem struct {
	req     e2ap.RequestID
	fnID    uint16
	trigger []byte
	actions []e2ap.Action
}

// replayItems snapshots the agent's subscriptions for re-establishment.
// The original request IDs are returned so replayed subscriptions keep
// their SubIDs, callbacks, and telemetry.
func (m *subManager) replayItems(agent AgentID) []replayItem {
	m.mu.Lock()
	defer m.mu.Unlock()
	var items []replayItem
	for id, sub := range m.subs {
		if id.Agent == agent {
			items = append(items, replayItem{
				req:     id.Req,
				fnID:    sub.fnID,
				trigger: sub.trigger,
				actions: sub.actions,
			})
		}
	}
	return items
}

// DroppedIndications reports indications that arrived without a matching
// subscription (diagnostics).
func (m *subManager) droppedCount() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dropped
}
