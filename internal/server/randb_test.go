package server

import (
	"testing"

	"flexric/internal/e2ap"
)

func info(id AgentID, t e2ap.NodeType, nodeID uint64) AgentInfo {
	return AgentInfo{
		ID:     id,
		NodeID: e2ap.GlobalE2NodeID{PLMN: e2ap.PLMN{MCC: 208, MNC: 95}, Type: t, NodeID: nodeID},
	}
}

func TestRANDBCompletionFiresOncePerCycle(t *testing.T) {
	db := newRANDB()
	fired := 0
	db.onComplete(func(RANEntity) { fired++ })

	cu := info(1, e2ap.NodeCU, 5)
	du := info(2, e2ap.NodeDU, 5)
	db.addAgent(cu)
	if fired != 0 {
		t.Fatal("CU alone must not complete")
	}
	db.addAgent(du)
	if fired != 1 {
		t.Fatalf("fired %d, want 1", fired)
	}
	// Re-adding a part must not re-fire.
	db.addAgent(du)
	if fired != 1 {
		t.Fatalf("re-add fired again: %d", fired)
	}
	// DU drops: entity incomplete; DU returns: completion fires again.
	db.removeAgent(du)
	ent, ok := db.Entity(e2ap.PLMN{MCC: 208, MNC: 95}, 5)
	if !ok || ent.Complete {
		t.Fatalf("entity after DU loss: %+v %v", ent, ok)
	}
	db.addAgent(du)
	if fired != 2 {
		t.Fatalf("re-completion fired %d, want 2", fired)
	}
}

func TestRANDBRemoveLastPartDeletesEntity(t *testing.T) {
	db := newRANDB()
	enb := info(3, e2ap.NodeENB, 9)
	db.addAgent(enb)
	if len(db.Entities()) != 1 {
		t.Fatal("entity missing")
	}
	db.removeAgent(enb)
	if len(db.Entities()) != 0 {
		t.Fatal("entity not deleted")
	}
	// Removing from an empty DB is harmless.
	db.removeAgent(enb)
}

func TestRANDBRemoveWrongAgentIDKeepsPart(t *testing.T) {
	// If a newer agent replaced the same node part, removing the stale
	// agent must not evict the replacement.
	db := newRANDB()
	old := info(1, e2ap.NodeENB, 4)
	db.addAgent(old)
	replacement := info(7, e2ap.NodeENB, 4)
	db.addAgent(replacement)
	db.removeAgent(old) // stale: part now owned by agent 7
	ent, ok := db.Entity(e2ap.PLMN{MCC: 208, MNC: 95}, 4)
	if !ok || ent.Parts[e2ap.NodeENB] != 7 {
		t.Fatalf("replacement evicted: %+v %v", ent, ok)
	}
}

func TestRANDBEntitiesSorted(t *testing.T) {
	db := newRANDB()
	db.addAgent(info(1, e2ap.NodeENB, 20))
	db.addAgent(info(2, e2ap.NodeENB, 3))
	db.addAgent(info(3, e2ap.NodeENB, 11))
	ents := db.Entities()
	if len(ents) != 3 {
		t.Fatalf("entities: %d", len(ents))
	}
	for i := 1; i < len(ents); i++ {
		if ents[i-1].NodeID > ents[i].NodeID {
			t.Fatalf("not sorted: %+v", ents)
		}
	}
}

func TestRANDBCloneIsolation(t *testing.T) {
	db := newRANDB()
	db.addAgent(info(1, e2ap.NodeCU, 2))
	ent, _ := db.Entity(e2ap.PLMN{MCC: 208, MNC: 95}, 2)
	ent.Parts[e2ap.NodeDU] = 99 // mutate the clone
	fresh, _ := db.Entity(e2ap.PLMN{MCC: 208, MNC: 95}, 2)
	if _, leaked := fresh.Parts[e2ap.NodeDU]; leaked {
		t.Fatal("clone mutation leaked into the database")
	}
}
