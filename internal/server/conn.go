package server

import (
	"sync"
	"time"

	"flexric/internal/e2ap"
	"flexric/internal/trace"
	"flexric/internal/transport"
)

// agentConn is the server side of one agent association.
type agentConn struct {
	srv  *Server
	id   AgentID
	tc   transport.Conn
	info AgentInfo

	enc    e2ap.Codec
	dec    e2ap.Codec
	sendMu sync.Mutex
}

func (c *agentConn) send(pdu e2ap.PDU) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	wire, err := c.enc.Encode(pdu)
	if err != nil {
		return err
	}
	return transport.TracedSend(c.tc, wire, e2ap.TraceOf(pdu))
}

// serveAgent performs E2 setup and runs the receive loop for one agent.
func (s *Server) serveAgent(tc transport.Conn) {
	c := &agentConn{
		srv: s,
		tc:  tc,
		enc: e2ap.MustCodec(s.cfg.Scheme),
		dec: e2ap.MustCodec(s.cfg.Scheme),
	}

	// Bound the handshake: an accepted connection that never completes
	// E2 setup must not pin a goroutine forever. Same default as the
	// dialer's connection-establishment timeout.
	hsTimeout := s.cfg.DialTimeout
	if hsTimeout <= 0 {
		hsTimeout = transport.DefaultDialTimeout
	}
	rd, _ := tc.(transport.RecvDeadliner)
	if rd != nil {
		_ = rd.SetRecvDeadline(time.Now().Add(hsTimeout))
	}

	// First message must be the setup request. A resilience-wrapped
	// peer may slip in a zero-length keepalive first; those are not
	// protocol messages and are skipped.
	var setup *e2ap.SetupRequest
	for {
		wire, err := tc.Recv()
		if err != nil {
			tc.Close()
			return
		}
		if len(wire) == 0 {
			continue
		}
		pdu, err := c.dec.Decode(wire)
		if err != nil {
			tc.Close()
			return
		}
		m, ok := pdu.(*e2ap.SetupRequest)
		if !ok {
			_ = c.send(&e2ap.SetupFailure{
				Cause: e2ap.Cause{Type: e2ap.CauseProtocol, Value: 1},
			})
			tc.Close()
			return
		}
		setup = m
		break
	}
	if rd != nil {
		_ = rd.SetRecvDeadline(time.Time{})
	}

	accepted := make([]uint16, len(setup.RANFunctions))
	for i, f := range setup.RANFunctions {
		accepted[i] = f.ID
	}
	if err := c.send(&e2ap.SetupResponse{
		TransactionID: setup.TransactionID,
		RICID:         s.cfg.RICID,
		Accepted:      accepted,
	}); err != nil {
		tc.Close()
		return
	}

	// The association is live: police it with keepalives and dead-peer
	// detection from here on.
	if s.res != nil {
		c.tc = s.res.WrapConn(tc)
	}

	if !s.admitAgent(c, setup) {
		c.tc.Close()
		return
	}

	c.recvLoop()
	s.teardownAgent(c)
}

// recvLoop is the message handler: indications take the envelope fast
// path (no full decode with the FB scheme); everything else is decoded.
// The frame buffer is recycled through the connection via RecvBuf, so a
// steady indication stream is received without allocating; in exchange,
// envelope views into the frame are valid only until the next iteration
// (dispatch is synchronous and decoded PDUs copy their byte fields, so
// nothing downstream outlives it).
func (c *agentConn) recvLoop() {
	var buf []byte
	for {
		wire, err := transport.RecvBuf(c.tc, buf)
		if err != nil {
			return
		}
		buf = wire
		env, err := c.dec.Envelope(wire)
		if err != nil {
			continue
		}
		if trace.Enabled {
			// The reassembly time was measured before the trace context
			// could be decoded; attach it retroactively. The pipe
			// transport has no reassembly phase and no RecvTimer.
			if tc := env.Trace(); tc.Valid() {
				if rt, ok := c.tc.(transport.RecvTimer); ok {
					if d := rt.LastRecvDuration(); d > 0 {
						trace.Record(tc, "transport.recv", time.Now().Add(-d), d)
					}
				}
			}
		}
		switch env.Type() {
		case e2ap.TypeIndication:
			// Hot path: route by request ID straight from the envelope.
			c.srv.subs.dispatchIndication(c.id, env)
		case e2ap.TypeSubscriptionResponse:
			if pdu, err := env.PDU(); err == nil {
				c.srv.subs.handleSubResponse(c.id, pdu.(*e2ap.SubscriptionResponse))
			}
		case e2ap.TypeSubscriptionFailure:
			if pdu, err := env.PDU(); err == nil {
				m := pdu.(*e2ap.SubscriptionFailure)
				c.srv.subs.handleSubFailure(c.id, m)
			}
		case e2ap.TypeSubscriptionDeleteResponse:
			if pdu, err := env.PDU(); err == nil {
				m := pdu.(*e2ap.SubscriptionDeleteResponse)
				c.srv.subs.handleSubDeleted(c.id, m.RequestID)
			}
		case e2ap.TypeSubscriptionDeleteFailure:
			// Subscription stays; nothing to do without retry policy.
		case e2ap.TypeControlAck:
			if pdu, err := env.PDU(); err == nil {
				m := pdu.(*e2ap.ControlAck)
				c.srv.subs.handleControlOutcome(c.id, m.RequestID, m.Outcome, nil)
			}
		case e2ap.TypeControlFailure:
			if pdu, err := env.PDU(); err == nil {
				m := pdu.(*e2ap.ControlFailure)
				c.srv.subs.handleControlOutcome(c.id, m.RequestID, m.Outcome, &controlError{cause: m.Cause})
			}
		case e2ap.TypeServiceUpdate:
			if pdu, err := env.PDU(); err == nil {
				m := pdu.(*e2ap.ServiceUpdate)
				c.srv.handleServiceUpdate(c, m)
			}
		case e2ap.TypeErrorIndication:
			// Informational.
		default:
			_ = c.send(&e2ap.ErrorIndication{
				Cause: e2ap.Cause{Type: e2ap.CauseProtocol, Value: 2},
			})
		}
	}
}

func (s *Server) handleServiceUpdate(c *agentConn, m *e2ap.ServiceUpdate) {
	s.mu.Lock()
	// Apply added/modified/deleted functions to the agent record.
	fns := c.info.Functions
	for _, add := range append(m.Added, m.Modified...) {
		replaced := false
		for i := range fns {
			if fns[i].ID == add.ID {
				fns[i] = add
				replaced = true
				break
			}
		}
		if !replaced {
			fns = append(fns, add)
		}
	}
	if len(m.Deleted) > 0 {
		kept := fns[:0]
		for _, f := range fns {
			del := false
			for _, d := range m.Deleted {
				if f.ID == d {
					del = true
					break
				}
			}
			if !del {
				kept = append(kept, f)
			}
		}
		fns = kept
	}
	c.info.Functions = fns
	accepted := make([]uint16, len(fns))
	for i, f := range fns {
		accepted[i] = f.ID
	}
	s.updateAgentStatsLocked()
	s.mu.Unlock()
	_ = c.send(&e2ap.ServiceUpdateAck{TransactionID: m.TransactionID, Accepted: accepted})
}

// controlError wraps a control failure cause as an error.
type controlError struct {
	cause e2ap.Cause
}

func (e *controlError) Error() string { return "server: control failed: " + e.cause.String() }

// Cause returns the E2AP failure cause.
func (e *controlError) Cause() e2ap.Cause { return e.cause }
