package server

import (
	"sort"
	"sync"

	"flexric/internal/e2ap"
)

// RANDB is the RAN database of §4.2.2: it stores information about the
// composition of the RAN network and "handles disaggregated deployments
// by merging agents that belong to the same base station (e.g., CU agent
// and DU agent) into the same RAN entity ... and provides events to
// signal when a complete RAN is formed from disaggregated entities."
type RANDB struct {
	mu         sync.Mutex
	entities   map[entityKey]*RANEntity
	completeCB []func(RANEntity)
}

type entityKey struct {
	plmn   e2ap.PLMN
	nodeID uint64
}

// RANEntity is one logical base station, possibly assembled from
// multiple agents (CU + DU).
type RANEntity struct {
	PLMN   e2ap.PLMN
	NodeID uint64
	// Parts maps node type to the agent serving it.
	Parts map[e2ap.NodeType]AgentID
	// Complete is true when the entity covers a full user plane.
	Complete bool
	// notified guards the one-shot completion event.
	notified bool
}

// clone returns a copy safe to hand to callbacks.
func (e *RANEntity) clone() RANEntity {
	parts := make(map[e2ap.NodeType]AgentID, len(e.Parts))
	for k, v := range e.Parts {
		parts[k] = v
	}
	return RANEntity{PLMN: e.PLMN, NodeID: e.NodeID, Parts: parts, Complete: e.Complete}
}

// isComplete: a monolithic node alone, or a CU+DU pair, forms a full
// user plane.
func (e *RANEntity) isComplete() bool {
	if _, ok := e.Parts[e2ap.NodeENB]; ok {
		return true
	}
	if _, ok := e.Parts[e2ap.NodeGNB]; ok {
		return true
	}
	_, cu := e.Parts[e2ap.NodeCU]
	_, du := e.Parts[e2ap.NodeDU]
	return cu && du
}

func newRANDB() *RANDB {
	return &RANDB{entities: make(map[entityKey]*RANEntity)}
}

func (db *RANDB) onComplete(f func(RANEntity)) {
	db.mu.Lock()
	db.completeCB = append(db.completeCB, f)
	db.mu.Unlock()
}

func (db *RANDB) addAgent(info AgentInfo) {
	key := entityKey{plmn: info.NodeID.PLMN, nodeID: info.NodeID.NodeID}
	db.mu.Lock()
	ent := db.entities[key]
	if ent == nil {
		ent = &RANEntity{
			PLMN:   info.NodeID.PLMN,
			NodeID: info.NodeID.NodeID,
			Parts:  make(map[e2ap.NodeType]AgentID),
		}
		db.entities[key] = ent
	}
	ent.Parts[info.NodeID.Type] = info.ID
	ent.Complete = ent.isComplete()
	var fire []func(RANEntity)
	var snapshot RANEntity
	if ent.Complete && !ent.notified {
		ent.notified = true
		fire = append(fire, db.completeCB...)
		snapshot = ent.clone()
	}
	db.updateStatsLocked()
	db.mu.Unlock()
	for _, f := range fire {
		f(snapshot)
	}
}

func (db *RANDB) removeAgent(info AgentInfo) {
	key := entityKey{plmn: info.NodeID.PLMN, nodeID: info.NodeID.NodeID}
	db.mu.Lock()
	defer db.mu.Unlock()
	defer db.updateStatsLocked()
	ent := db.entities[key]
	if ent == nil {
		return
	}
	if ent.Parts[info.NodeID.Type] == info.ID {
		delete(ent.Parts, info.NodeID.Type)
	}
	if len(ent.Parts) == 0 {
		delete(db.entities, key)
		return
	}
	ent.Complete = ent.isComplete()
	if !ent.Complete {
		ent.notified = false // completion may fire again after re-attach
	}
}

// Entities returns the current RAN entities, ordered by node ID.
func (db *RANDB) Entities() []RANEntity {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]RANEntity, 0, len(db.entities))
	for _, e := range db.entities {
		out = append(out, e.clone())
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PLMN != out[j].PLMN {
			return out[i].PLMN.MCC < out[j].PLMN.MCC ||
				(out[i].PLMN.MCC == out[j].PLMN.MCC && out[i].PLMN.MNC < out[j].PLMN.MNC)
		}
		return out[i].NodeID < out[j].NodeID
	})
	return out
}

// Entity looks up one RAN entity.
func (db *RANDB) Entity(plmn e2ap.PLMN, nodeID uint64) (RANEntity, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if e, ok := db.entities[entityKey{plmn: plmn, nodeID: nodeID}]; ok {
		return e.clone(), true
	}
	return RANEntity{}, false
}
