// Package server implements the FlexRIC server library (§4.2.2): it
// multiplexes agent connections and dispatches E2AP messages to internal
// applications (iApps) through an event-driven callback system — iApps
// are invoked only when there are new messages, never by polling (the
// ultra-lean property contrasted with FlexRAN in §5.3).
//
// The server library itself implements no service model and requests
// nothing from agents on its own; iApps trigger all SM-related
// communication, and the library provides RAN management (with the RAN
// database merging disaggregated agents into RAN entities), subscription
// management, and message multiplexing.
package server

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"flexric/internal/e2ap"
	"flexric/internal/resilience"
	"flexric/internal/trace"
	"flexric/internal/transport"
)

// AgentID identifies a connected agent within a server.
type AgentID int

// AgentInfo describes a connected agent, as recorded by RAN management.
type AgentInfo struct {
	ID        AgentID
	NodeID    e2ap.GlobalE2NodeID
	Functions []e2ap.RANFunctionItem
	Addr      string
}

// HasFunction reports whether the agent exposes RAN function id.
func (a AgentInfo) HasFunction(id uint16) bool {
	for _, f := range a.Functions {
		if f.ID == id {
			return true
		}
	}
	return false
}

// IndicationEvent delivers one indication to a subscribing iApp. Env is
// the codec envelope: with the FB scheme the SM payload is read directly
// from the wire bytes with no decode pass.
type IndicationEvent struct {
	Agent AgentID
	Env   e2ap.Envelope
	// Trace is the dispatch-stage context: a child of the trace the
	// agent stamped into the indication. Callbacks parent their own
	// spans under it; zero when the indication was not sampled.
	Trace trace.Context
}

// SubscriptionCallbacks receive the outcome and data of a subscription.
// Callbacks run on the agent connection's receive goroutine: they must
// not block; hand off to a worker if processing is slow (§4.4 sketches
// exactly this multi-thread extension).
type SubscriptionCallbacks struct {
	OnAdmitted   func(resp *e2ap.SubscriptionResponse)
	OnFailure    func(cause e2ap.Cause)
	OnIndication func(ev IndicationEvent)
	OnDeleted    func()
}

// SubID identifies a subscription created through the server.
type SubID struct {
	Agent AgentID
	Req   e2ap.RequestID
}

// Config parameterizes a Server.
type Config struct {
	// RICID is announced in setup responses.
	RICID e2ap.GlobalRICID
	// Scheme selects the E2AP encoding (default SchemeASN).
	Scheme e2ap.Scheme
	// Transport selects the wire transport (default KindSCTPish).
	Transport transport.Kind
	// DialTimeout bounds connection establishment from the server's
	// side: an accepted connection must complete the E2 setup handshake
	// within this window instead of pinning a goroutine forever. 0
	// means transport.DefaultDialTimeout, the same default the dialing
	// side uses.
	DialTimeout time.Duration
	// Resilience enables keepalives and dead-peer detection on agent
	// associations, plus retention and replay of a disconnected agent's
	// subscriptions when it reconnects (see OnAgentReconnect). nil
	// keeps the seed behavior: a disconnect drops all agent state
	// immediately.
	Resilience *resilience.Config
	// WrapListener, when non-nil, wraps the south-bound listener before
	// use — the fault injection hook (internal/faultinject).
	WrapListener func(transport.Listener) transport.Listener
}

func (c *Config) defaults() {
	if c.Scheme == "" {
		c.Scheme = e2ap.SchemeASN
	}
	if c.Transport == "" {
		c.Transport = transport.KindSCTPish
	}
}

// Server is a FlexRIC controller core.
type Server struct {
	cfg Config
	// res is the resolved resilience config; nil when disabled.
	res *resilience.Config

	lis transport.Listener

	mu     sync.Mutex
	agents map[AgentID]*agentConn
	nextID AgentID
	randb  *RANDB
	// retained holds disconnected agents whose subscriptions are kept
	// for replay, keyed by node identity (see resilience.go).
	retained map[e2ap.GlobalE2NodeID]*retainedAgent

	subs *subManager

	onConnect    []func(AgentInfo)
	onDisconnect []func(AgentInfo)
	onReconnect  []func(AgentInfo)

	closed atomic.Bool
	wg     sync.WaitGroup

	txSeq atomic.Uint32
}

// ErrClosed reports use of a closed server.
var ErrClosed = errors.New("server: closed")

// New returns a Server with the given configuration.
func New(cfg Config) *Server {
	cfg.defaults()
	s := &Server{
		cfg:      cfg,
		agents:   make(map[AgentID]*agentConn),
		randb:    newRANDB(),
		retained: make(map[e2ap.GlobalE2NodeID]*retainedAgent),
		subs:     newSubManager(),
	}
	if cfg.Resilience != nil {
		r := cfg.Resilience.WithDefaults()
		s.res = &r
	}
	return s
}

// Start binds the south-bound listener and begins accepting agents. It
// returns the bound address (useful with ":0").
func (s *Server) Start(addr string) (string, error) {
	lis, err := transport.Listen(s.cfg.Transport, addr)
	if err != nil {
		return "", err
	}
	if s.cfg.WrapListener != nil {
		lis = s.cfg.WrapListener(lis)
	}
	s.lis = lis
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			tc, err := lis.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.serveAgent(tc)
			}()
		}
	}()
	return lis.Addr(), nil
}

// Close stops the server and disconnects all agents. Retained
// (suspended) agents are dropped as if their retention expired.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	if s.lis != nil {
		s.lis.Close()
	}
	s.mu.Lock()
	conns := make([]*agentConn, 0, len(s.agents))
	for _, c := range s.agents {
		conns = append(conns, c)
	}
	// Retention timers whose Stop succeeds are dropped here; a timer
	// that already fired is completing its own drop concurrently.
	var expired []*retainedAgent
	for nodeID, e := range s.retained {
		if e.expire.Stop() {
			delete(s.retained, nodeID)
			expired = append(expired, e)
		}
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.tc.Close()
	}
	for _, e := range expired {
		s.dropRetained(e)
	}
	s.wg.Wait()
	return nil
}

// OnAgentConnect registers a RAN-management event hook, fired after E2
// setup completes. "An application that subscribed for new agent
// connections uses the included information to send a subscription if it
// encounters suitable RAN functions" (§4.2.2).
func (s *Server) OnAgentConnect(f func(AgentInfo)) {
	s.mu.Lock()
	s.onConnect = append(s.onConnect, f)
	s.mu.Unlock()
}

// OnAgentDisconnect registers a hook fired when an agent's connection
// drops. With resilience enabled the hook is deferred: a disconnected
// agent is first suspended (subscriptions retained for replay), and the
// hook fires only if retention expires without a reconnect.
func (s *Server) OnAgentDisconnect(f func(AgentInfo)) {
	s.mu.Lock()
	s.onDisconnect = append(s.onDisconnect, f)
	s.mu.Unlock()
}

// OnAgentReconnect registers a hook fired when a suspended agent
// re-associates. By the time the hook runs, the server has already
// replayed the agent's retained subscriptions under their original
// request IDs, so existing SubIDs and callbacks keep working; the hook
// is for applications that track liveness. Requires Config.Resilience.
func (s *Server) OnAgentReconnect(f func(AgentInfo)) {
	s.mu.Lock()
	s.onReconnect = append(s.onReconnect, f)
	s.mu.Unlock()
}

// OnRANComplete registers a hook fired when a RAN entity becomes complete
// (monolithic node connected, or both CU and DU of a split station).
func (s *Server) OnRANComplete(f func(RANEntity)) { s.randb.onComplete(f) }

// RANDB exposes the RAN database for queries about the network
// composition.
func (s *Server) RANDB() *RANDB { return s.randb }

// Agents lists the currently connected agents.
func (s *Server) Agents() []AgentInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]AgentInfo, 0, len(s.agents))
	for _, c := range s.agents {
		out = append(out, c.info)
	}
	return out
}

// Subscribe sends a subscription request on behalf of an iApp. The
// callbacks deliver the outcome and subsequent indications.
func (s *Server) Subscribe(agent AgentID, fnID uint16, trigger []byte, actions []e2ap.Action, cb SubscriptionCallbacks) (SubID, error) {
	c := s.agent(agent)
	if c == nil {
		return SubID{}, fmt.Errorf("server: no agent %d", agent)
	}
	req := s.subs.create(agent, fnID, trigger, actions, cb)
	// Root of the subscription trace; the context rides the request so
	// the agent's fill span links under it.
	sp := trace.StartRoot("server.subscribe")
	msg := &e2ap.SubscriptionRequest{
		RequestID:     req,
		RANFunctionID: fnID,
		EventTrigger:  trigger,
		Actions:       actions,
		Trace:         sp.Context(),
	}
	err := c.send(msg)
	sp.End()
	if err != nil {
		s.subs.remove(SubID{Agent: agent, Req: req})
		return SubID{}, err
	}
	return SubID{Agent: agent, Req: req}, nil
}

// Unsubscribe sends a subscription delete request. The subscription's
// OnDeleted callback fires when the agent confirms.
func (s *Server) Unsubscribe(id SubID, fnID uint16) error {
	c := s.agent(id.Agent)
	if c == nil {
		return fmt.Errorf("server: no agent %d", id.Agent)
	}
	return c.send(&e2ap.SubscriptionDeleteRequest{RequestID: id.Req, RANFunctionID: fnID})
}

// Control sends a control request. When ack is true, done is invoked
// with the outcome (or error) once the agent replies; with ack false,
// done may be nil and nothing is awaited.
func (s *Server) Control(agent AgentID, fnID uint16, header, payload []byte, ack bool, done func(outcome []byte, err error)) error {
	c := s.agent(agent)
	if c == nil {
		return fmt.Errorf("server: no agent %d", agent)
	}
	var req e2ap.RequestID
	if ack && done != nil {
		req = s.subs.createControl(agent, done)
	} else {
		req = s.subs.nextFireAndForget()
	}
	sp := trace.StartRoot("server.control")
	err := c.send(&e2ap.ControlRequest{
		RequestID:     req,
		RANFunctionID: fnID,
		Header:        header,
		Payload:       payload,
		AckRequested:  ack,
		Trace:         sp.Context(),
	})
	sp.End()
	return err
}

func (s *Server) agent(id AgentID) *agentConn {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.agents[id]
}

// Scheme returns the server's E2AP encoding scheme.
func (s *Server) Scheme() e2ap.Scheme { return s.cfg.Scheme }

// NumSubscriptions returns the count of live subscriptions across all
// agents — part of the topology snapshot the control room renders.
func (s *Server) NumSubscriptions() int {
	s.subs.mu.Lock()
	defer s.subs.mu.Unlock()
	return len(s.subs.subs)
}
