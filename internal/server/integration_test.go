package server_test

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flexric/internal/agent"
	"flexric/internal/e2ap"
	"flexric/internal/server"
	"flexric/internal/transport"
)

// echoFunction is a minimal RAN function: it admits subscriptions,
// remembers the sender, and echoes control payloads both as control
// outcome and as an indication (the HW-E2SM ping pattern of §5.2).
type echoFunction struct {
	id uint16

	mu     sync.Mutex
	sender agent.IndicationSender
	subs   int
	dels   int
}

func (f *echoFunction) Definition() e2ap.RANFunctionItem {
	return e2ap.RANFunctionItem{ID: f.id, Revision: 1, OID: "1.3.6.1.4.1.53148.1.1"}
}

func (f *echoFunction) OnSubscription(ctrl agent.ControllerID, req *e2ap.SubscriptionRequest, tx agent.IndicationSender) error {
	if bytes.Equal(req.EventTrigger, []byte("reject")) {
		return errors.New("rejected by SM")
	}
	f.mu.Lock()
	f.sender = tx
	f.subs++
	f.mu.Unlock()
	return nil
}

func (f *echoFunction) OnSubscriptionDelete(ctrl agent.ControllerID, req *e2ap.SubscriptionDeleteRequest) error {
	f.mu.Lock()
	f.dels++
	f.sender = nil
	f.mu.Unlock()
	return nil
}

func (f *echoFunction) OnControl(ctrl agent.ControllerID, req *e2ap.ControlRequest) ([]byte, error) {
	if bytes.Equal(req.Payload, []byte("fail")) {
		return nil, errors.New("control refused")
	}
	f.mu.Lock()
	tx := f.sender
	f.mu.Unlock()
	if tx != nil {
		// Ping: reply with an indication carrying the control payload.
		if err := tx.SendIndication(1, e2ap.IndicationReport, req.Header, req.Payload); err != nil {
			return nil, err
		}
	}
	return req.Payload, nil
}

func nodeID(t e2ap.NodeType, id uint64) e2ap.GlobalE2NodeID {
	return e2ap.GlobalE2NodeID{PLMN: e2ap.PLMN{MCC: 208, MNC: 95}, Type: t, NodeID: id}
}

func startServer(t *testing.T, scheme e2ap.Scheme) (*server.Server, string) {
	t.Helper()
	s := server.New(server.Config{
		RICID:     e2ap.GlobalRICID{PLMN: e2ap.PLMN{MCC: 208, MNC: 95}, RICID: 1},
		Scheme:    scheme,
		Transport: transport.KindSCTPish,
	})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, addr
}

func connectAgent(t *testing.T, addr string, scheme e2ap.Scheme, node e2ap.GlobalE2NodeID, fns ...agent.RANFunction) *agent.Agent {
	t.Helper()
	a := agent.New(agent.Config{NodeID: node, Scheme: scheme, Transport: transport.KindSCTPish})
	for _, fn := range fns {
		if err := a.RegisterFunction(fn); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Connect(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	return a
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestSetupAndAgentEvents(t *testing.T) {
	for _, scheme := range []e2ap.Scheme{e2ap.SchemeASN, e2ap.SchemeFB} {
		t.Run(string(scheme), func(t *testing.T) {
			s, addr := startServer(t, scheme)
			var connected atomic.Int32
			var gotInfo atomic.Value
			s.OnAgentConnect(func(info server.AgentInfo) {
				connected.Add(1)
				gotInfo.Store(info)
			})
			connectAgent(t, addr, scheme, nodeID(e2ap.NodeENB, 42), &echoFunction{id: 140})
			waitFor(t, "agent connect event", func() bool { return connected.Load() == 1 })
			info := gotInfo.Load().(server.AgentInfo)
			if info.NodeID.NodeID != 42 || !info.HasFunction(140) || info.HasFunction(9) {
				t.Fatalf("agent info: %+v", info)
			}
			if len(s.Agents()) != 1 {
				t.Fatalf("agents: %d", len(s.Agents()))
			}
		})
	}
}

func TestSubscriptionIndicationControlRoundTrip(t *testing.T) {
	for _, scheme := range []e2ap.Scheme{e2ap.SchemeASN, e2ap.SchemeFB} {
		t.Run(string(scheme), func(t *testing.T) {
			s, addr := startServer(t, scheme)
			fn := &echoFunction{id: 140}
			connectAgent(t, addr, scheme, nodeID(e2ap.NodeENB, 1), fn)
			waitFor(t, "agent", func() bool { return len(s.Agents()) == 1 })
			agentID := s.Agents()[0].ID

			admitted := make(chan *e2ap.SubscriptionResponse, 1)
			inds := make(chan []byte, 16)
			_, err := s.Subscribe(agentID, 140, []byte{1}, []e2ap.Action{{ID: 1, Type: e2ap.ActionReport}},
				server.SubscriptionCallbacks{
					OnAdmitted: func(r *e2ap.SubscriptionResponse) { admitted <- r },
					OnIndication: func(ev server.IndicationEvent) {
						inds <- append([]byte(nil), ev.Env.IndicationPayload()...)
					},
				})
			if err != nil {
				t.Fatal(err)
			}
			select {
			case r := <-admitted:
				if len(r.Admitted) != 1 || r.Admitted[0] != 1 {
					t.Fatalf("admitted: %+v", r)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("no subscription response")
			}

			// Control ping: agent echoes via indication + ack.
			outcome := make(chan []byte, 1)
			err = s.Control(agentID, 140, []byte("hdr"), []byte("ping-1"), true,
				func(out []byte, err error) {
					if err != nil {
						t.Errorf("control: %v", err)
					}
					outcome <- out
				})
			if err != nil {
				t.Fatal(err)
			}
			select {
			case out := <-outcome:
				if string(out) != "ping-1" {
					t.Fatalf("outcome %q", out)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("no control ack")
			}
			select {
			case p := <-inds:
				if string(p) != "ping-1" {
					t.Fatalf("indication payload %q", p)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("no indication")
			}
		})
	}
}

func TestSubscriptionFailurePaths(t *testing.T) {
	s, addr := startServer(t, e2ap.SchemeASN)
	fn := &echoFunction{id: 140}
	connectAgent(t, addr, e2ap.SchemeASN, nodeID(e2ap.NodeENB, 1), fn)
	waitFor(t, "agent", func() bool { return len(s.Agents()) == 1 })
	agentID := s.Agents()[0].ID

	// SM rejection.
	failed := make(chan e2ap.Cause, 1)
	if _, err := s.Subscribe(agentID, 140, []byte("reject"), nil, server.SubscriptionCallbacks{
		OnFailure: func(c e2ap.Cause) { failed <- c },
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case c := <-failed:
		if c.Type != e2ap.CauseRICService {
			t.Fatalf("cause %v", c)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no failure callback")
	}

	// Unknown RAN function.
	failed2 := make(chan e2ap.Cause, 1)
	if _, err := s.Subscribe(agentID, 999, nil, nil, server.SubscriptionCallbacks{
		OnFailure: func(c e2ap.Cause) { failed2 <- c },
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case c := <-failed2:
		if c.Type != e2ap.CauseRICRequest {
			t.Fatalf("cause %v", c)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no failure for unknown function")
	}

	// Subscribing to a nonexistent agent fails synchronously.
	if _, err := s.Subscribe(server.AgentID(99), 140, nil, nil, server.SubscriptionCallbacks{}); err == nil {
		t.Fatal("unknown agent must fail")
	}
}

func TestUnsubscribe(t *testing.T) {
	s, addr := startServer(t, e2ap.SchemeASN)
	fn := &echoFunction{id: 140}
	connectAgent(t, addr, e2ap.SchemeASN, nodeID(e2ap.NodeENB, 1), fn)
	waitFor(t, "agent", func() bool { return len(s.Agents()) == 1 })
	agentID := s.Agents()[0].ID

	deleted := make(chan struct{}, 1)
	sub, err := s.Subscribe(agentID, 140, []byte{1}, nil, server.SubscriptionCallbacks{
		OnAdmitted: func(*e2ap.SubscriptionResponse) {},
		OnDeleted:  func() { deleted <- struct{}{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "subscription at agent", func() bool {
		fn.mu.Lock()
		defer fn.mu.Unlock()
		return fn.subs == 1
	})
	if err := s.Unsubscribe(sub, 140); err != nil {
		t.Fatal(err)
	}
	select {
	case <-deleted:
	case <-time.After(5 * time.Second):
		t.Fatal("no delete confirmation")
	}
	fn.mu.Lock()
	dels := fn.dels
	fn.mu.Unlock()
	if dels != 1 {
		t.Fatalf("agent delete callbacks: %d", dels)
	}
}

func TestControlFailure(t *testing.T) {
	s, addr := startServer(t, e2ap.SchemeASN)
	connectAgent(t, addr, e2ap.SchemeASN, nodeID(e2ap.NodeENB, 1), &echoFunction{id: 140})
	waitFor(t, "agent", func() bool { return len(s.Agents()) == 1 })
	agentID := s.Agents()[0].ID
	errCh := make(chan error, 1)
	if err := s.Control(agentID, 140, nil, []byte("fail"), true, func(out []byte, err error) {
		errCh <- err
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("expected control failure")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no control failure callback")
	}
}

func TestRANDBMergesCUDU(t *testing.T) {
	s, addr := startServer(t, e2ap.SchemeASN)
	complete := make(chan server.RANEntity, 1)
	s.OnRANComplete(func(e server.RANEntity) { complete <- e })

	connectAgent(t, addr, e2ap.SchemeASN, nodeID(e2ap.NodeCU, 7), &echoFunction{id: 140})
	waitFor(t, "CU agent", func() bool { return len(s.Agents()) == 1 })
	select {
	case <-complete:
		t.Fatal("entity must not be complete with CU only")
	case <-time.After(50 * time.Millisecond):
	}
	ents := s.RANDB().Entities()
	if len(ents) != 1 || ents[0].Complete {
		t.Fatalf("entities: %+v", ents)
	}

	connectAgent(t, addr, e2ap.SchemeASN, nodeID(e2ap.NodeDU, 7), &echoFunction{id: 141})
	select {
	case e := <-complete:
		if e.NodeID != 7 || len(e.Parts) != 2 {
			t.Fatalf("complete entity: %+v", e)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no RAN-complete event")
	}
	ent, ok := s.RANDB().Entity(e2ap.PLMN{MCC: 208, MNC: 95}, 7)
	if !ok || !ent.Complete {
		t.Fatalf("entity lookup: %+v %v", ent, ok)
	}
}

func TestRANDBSeparateEntities(t *testing.T) {
	s, addr := startServer(t, e2ap.SchemeASN)
	connectAgent(t, addr, e2ap.SchemeASN, nodeID(e2ap.NodeENB, 1), &echoFunction{id: 140})
	connectAgent(t, addr, e2ap.SchemeASN, nodeID(e2ap.NodeENB, 2), &echoFunction{id: 140})
	waitFor(t, "two agents", func() bool { return len(s.Agents()) == 2 })
	ents := s.RANDB().Entities()
	if len(ents) != 2 {
		t.Fatalf("entities: %+v", ents)
	}
	for _, e := range ents {
		if !e.Complete {
			t.Fatalf("monolithic entity incomplete: %+v", e)
		}
	}
}

func TestAgentDisconnectCleanup(t *testing.T) {
	s, addr := startServer(t, e2ap.SchemeASN)
	var disconnected atomic.Int32
	s.OnAgentDisconnect(func(server.AgentInfo) { disconnected.Add(1) })
	fn := &echoFunction{id: 140}
	a := connectAgent(t, addr, e2ap.SchemeASN, nodeID(e2ap.NodeENB, 5), fn)
	waitFor(t, "agent", func() bool { return len(s.Agents()) == 1 })
	agentID := s.Agents()[0].ID
	deleted := make(chan struct{}, 1)
	if _, err := s.Subscribe(agentID, 140, []byte{1}, nil, server.SubscriptionCallbacks{
		OnDeleted: func() { deleted <- struct{}{} },
	}); err != nil {
		t.Fatal(err)
	}
	a.Close()
	waitFor(t, "disconnect event", func() bool { return disconnected.Load() == 1 })
	select {
	case <-deleted:
	case <-time.After(5 * time.Second):
		t.Fatal("subscription not torn down on disconnect")
	}
	if len(s.Agents()) != 0 {
		t.Fatal("agent still listed after disconnect")
	}
	if len(s.RANDB().Entities()) != 0 {
		t.Fatal("RANDB entity not removed")
	}
}

func TestMultiControllerAgent(t *testing.T) {
	// One agent, two controllers (§4.1.2). Both can subscribe and
	// control independently; UE exposure gates what additional
	// controllers may see.
	s1, addr1 := startServer(t, e2ap.SchemeASN)
	s2, addr2 := startServer(t, e2ap.SchemeASN)

	fn := &echoFunction{id: 140}
	a := agent.New(agent.Config{NodeID: nodeID(e2ap.NodeENB, 9), Scheme: e2ap.SchemeASN})
	if err := a.RegisterFunction(fn); err != nil {
		t.Fatal(err)
	}
	c0, err := a.Connect(addr1)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := a.Connect(addr2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	if c0 != 0 || c1 != 1 || a.Controllers() != 2 {
		t.Fatalf("controller ids: %d %d", c0, c1)
	}
	waitFor(t, "both servers see the agent", func() bool {
		return len(s1.Agents()) == 1 && len(s2.Agents()) == 1
	})

	// Default UE association: controller 0 sees everything, controller 1
	// nothing until exposed.
	if !a.UEVisible(0, 17) {
		t.Fatal("controller 0 must see all UEs")
	}
	if a.UEVisible(1, 17) {
		t.Fatal("controller 1 must not see unexposed UEs")
	}
	a.ExposeUE(1, 17)
	if !a.UEVisible(1, 17) {
		t.Fatal("exposure failed")
	}
	a.HideUE(1, 17)
	if a.UEVisible(1, 17) {
		t.Fatal("hide failed")
	}

	// Both controllers can drive the same RAN function.
	for i, s := range []*server.Server{s1, s2} {
		agentID := s.Agents()[0].ID
		out := make(chan []byte, 1)
		payload := []byte(fmt.Sprintf("ctl-%d", i))
		if err := s.Control(agentID, 140, nil, payload, true, func(o []byte, err error) {
			if err != nil {
				t.Errorf("control %d: %v", i, err)
			}
			out <- o
		}); err != nil {
			t.Fatal(err)
		}
		select {
		case o := <-out:
			if !bytes.Equal(o, payload) {
				t.Fatalf("controller %d outcome %q", i, o)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("controller %d: no ack", i)
		}
	}
}

func TestAgentDuplicateFunction(t *testing.T) {
	a := agent.New(agent.Config{NodeID: nodeID(e2ap.NodeENB, 1)})
	if err := a.RegisterFunction(&echoFunction{id: 140}); err != nil {
		t.Fatal(err)
	}
	if err := a.RegisterFunction(&echoFunction{id: 140}); err == nil {
		t.Fatal("duplicate function id must fail")
	}
}

func TestAgentConnectFailures(t *testing.T) {
	a := agent.New(agent.Config{NodeID: nodeID(e2ap.NodeENB, 1)})
	if _, err := a.Connect("127.0.0.1:1"); err == nil {
		t.Fatal("connect to dead port must fail")
	}
	a.Close()
	if _, err := a.Connect("127.0.0.1:1"); !errors.Is(err, agent.ErrClosed) {
		t.Fatalf("closed agent connect: %v", err)
	}
}

func TestPipeTransportEndToEnd(t *testing.T) {
	// Co-located controller/agent over the in-process pipe transport.
	s := server.New(server.Config{Scheme: e2ap.SchemeFB, Transport: transport.KindPipe})
	addr, err := s.Start("e2e-pipe")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	fn := &echoFunction{id: 140}
	a := agent.New(agent.Config{NodeID: nodeID(e2ap.NodeGNB, 3), Scheme: e2ap.SchemeFB, Transport: transport.KindPipe})
	if err := a.RegisterFunction(fn); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Connect(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	waitFor(t, "agent", func() bool { return len(s.Agents()) == 1 })
	out := make(chan []byte, 1)
	if err := s.Control(s.Agents()[0].ID, 140, nil, []byte("hi"), true, func(o []byte, err error) { out <- o }); err != nil {
		t.Fatal(err)
	}
	select {
	case o := <-out:
		if string(o) != "hi" {
			t.Fatalf("outcome %q", o)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no ack over pipe")
	}
}
