package server_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flexric/internal/agent"
	"flexric/internal/e2ap"
	"flexric/internal/resilience"
	"flexric/internal/server"
	"flexric/internal/transport"
)

// connCapture records the most recently dialed raw transport so tests
// can kill the live connection without closing the agent — a simulated
// crash of the path, not a graceful shutdown.
type connCapture struct {
	mu sync.Mutex
	c  transport.Conn
}

func (cc *connCapture) wrap(c transport.Conn) transport.Conn {
	cc.mu.Lock()
	cc.c = c
	cc.mu.Unlock()
	return c
}

func (cc *connCapture) kill() {
	cc.mu.Lock()
	c := cc.c
	cc.mu.Unlock()
	c.Close()
}

// blockingFunction admits subscriptions and parks control calls until
// released, keeping a control pending at the server for as long as the
// test needs.
type blockingFunction struct {
	id      uint16
	release chan struct{}
	inCtl   atomic.Int32
}

func (f *blockingFunction) Definition() e2ap.RANFunctionItem {
	return e2ap.RANFunctionItem{ID: f.id, Revision: 1, OID: "1.3.6.1.4.1.53148.1.9"}
}

func (f *blockingFunction) OnSubscription(agent.ControllerID, *e2ap.SubscriptionRequest, agent.IndicationSender) error {
	return nil
}

func (f *blockingFunction) OnSubscriptionDelete(agent.ControllerID, *e2ap.SubscriptionDeleteRequest) error {
	return nil
}

func (f *blockingFunction) OnControl(_ agent.ControllerID, req *e2ap.ControlRequest) ([]byte, error) {
	f.inCtl.Add(1)
	<-f.release
	return req.Payload, nil
}

// fastResilience is a test config: no keepalives (the tests kill the
// transport directly), tight backoff so reconnects are quick, and a
// retention window that outlives the test body.
func fastResilience() *resilience.Config {
	return &resilience.Config{
		KeepaliveInterval: -1,
		DeadAfter:         -1,
		Backoff:           resilience.BackoffPolicy{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond},
		RetainFor:         30 * time.Second,
	}
}

// TestDisconnectAbortsPendingControls covers the seed's disconnect
// cleanup (no resilience): a control pending when the agent's
// connection dies completes promptly with ErrClosed, and the
// subscription's OnDeleted fires exactly once.
func TestDisconnectAbortsPendingControls(t *testing.T) {
	s, addr := startServer(t, e2ap.SchemeASN)
	release := make(chan struct{})
	fn := &blockingFunction{id: 140, release: release}
	cap := &connCapture{}

	a := agent.New(agent.Config{
		NodeID:   nodeID(e2ap.NodeENB, 5),
		Scheme:   e2ap.SchemeASN,
		WrapConn: cap.wrap,
	})
	if err := a.RegisterFunction(fn); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Connect(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	t.Cleanup(func() { close(release) }) // unblock OnControl before a.Close

	waitFor(t, "agent", func() bool { return len(s.Agents()) == 1 })
	agentID := s.Agents()[0].ID

	var deletions atomic.Int32
	if _, err := s.Subscribe(agentID, 140, []byte{1}, nil, server.SubscriptionCallbacks{
		OnDeleted: func() { deletions.Add(1) },
	}); err != nil {
		t.Fatal(err)
	}

	ctlErr := make(chan error, 1)
	if err := s.Control(agentID, 140, nil, []byte("held"), true, func(_ []byte, err error) {
		ctlErr <- err
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "control held at agent", func() bool { return fn.inCtl.Load() == 1 })

	cap.kill()

	select {
	case err := <-ctlErr:
		if !errors.Is(err, server.ErrClosed) {
			t.Fatalf("pending control error = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending control not aborted on disconnect")
	}
	waitFor(t, "OnDeleted", func() bool { return deletions.Load() == 1 })
	time.Sleep(20 * time.Millisecond)
	if n := deletions.Load(); n != 1 {
		t.Fatalf("OnDeleted fired %d times, want exactly 1", n)
	}
	if len(s.Agents()) != 0 {
		t.Fatal("agent still listed after disconnect")
	}
}

// TestReconnectReplaysSubscriptions is the heart of the resilience
// subsystem: kill the transport under a subscribed agent and verify the
// supervisor re-associates, the server reuses the AgentID, the
// subscription is replayed under its original SubID, and the
// indication stream resumes — all without firing OnAgentDisconnect.
func TestReconnectReplaysSubscriptions(t *testing.T) {
	for _, scheme := range []e2ap.Scheme{e2ap.SchemeASN, e2ap.SchemeFB} {
		t.Run(string(scheme), func(t *testing.T) {
			s := server.New(server.Config{
				Scheme:     scheme,
				Transport:  transport.KindSCTPish,
				Resilience: fastResilience(),
			})
			addr, err := s.Start("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { s.Close() })

			var reconnects, disconnects atomic.Int32
			s.OnAgentReconnect(func(server.AgentInfo) { reconnects.Add(1) })
			s.OnAgentDisconnect(func(server.AgentInfo) { disconnects.Add(1) })

			fn := &echoFunction{id: 140}
			cap := &connCapture{}
			a := agent.New(agent.Config{
				NodeID:     nodeID(e2ap.NodeENB, 5),
				Scheme:     scheme,
				Transport:  transport.KindSCTPish,
				Resilience: fastResilience(),
				WrapConn:   cap.wrap,
			})
			if err := a.RegisterFunction(fn); err != nil {
				t.Fatal(err)
			}
			if _, err := a.Connect(addr); err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { a.Close() })
			waitFor(t, "agent", func() bool { return len(s.Agents()) == 1 })
			agentID := s.Agents()[0].ID

			// Teardown at test end (agent close + retention drain on server
			// close) legitimately fires OnDeleted; only mid-test firings —
			// across the reconnect — are a bug.
			var tearingDown atomic.Bool
			t.Cleanup(func() { tearingDown.Store(true) })

			inds := make(chan []byte, 16)
			if _, err := s.Subscribe(agentID, 140, []byte{1}, []e2ap.Action{{ID: 1, Type: e2ap.ActionReport}},
				server.SubscriptionCallbacks{
					OnIndication: func(ev server.IndicationEvent) {
						inds <- append([]byte(nil), ev.Env.IndicationPayload()...)
					},
					OnDeleted: func() {
						if !tearingDown.Load() {
							t.Error("OnDeleted fired across a reconnect")
						}
					},
				}); err != nil {
				t.Fatal(err)
			}
			waitFor(t, "subscription at agent", func() bool {
				fn.mu.Lock()
				defer fn.mu.Unlock()
				return fn.subs == 1
			})

			// Prove the stream works, then kill the path.
			if err := s.Control(agentID, 140, nil, []byte("before"), false, nil); err != nil {
				t.Fatal(err)
			}
			select {
			case p := <-inds:
				if string(p) != "before" {
					t.Fatalf("indication %q", p)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("no indication before the drop")
			}

			cap.kill()

			// Reconnect: setup re-runs and the server replays the
			// subscription to the agent (second OnSubscription call).
			waitFor(t, "replayed subscription", func() bool {
				fn.mu.Lock()
				defer fn.mu.Unlock()
				return fn.subs == 2
			})
			waitFor(t, "reconnect hook", func() bool { return reconnects.Load() == 1 })
			if got := s.Agents(); len(got) != 1 || got[0].ID != agentID {
				t.Fatalf("agents after reconnect: %+v (want id %d)", got, agentID)
			}

			// Same SubID, same callback: the stream resumes.
			if err := s.Control(agentID, 140, nil, []byte("after"), false, nil); err != nil {
				t.Fatal(err)
			}
			deadline := time.After(5 * time.Second)
			for {
				select {
				case p := <-inds:
					if string(p) == "after" {
						goto resumed
					}
					// Drained a stale pre-drop indication.
				case <-deadline:
					t.Fatal("indication stream did not resume after reconnect")
				}
			}
		resumed:
			if n := disconnects.Load(); n != 0 {
				t.Fatalf("OnAgentDisconnect fired %d times across a reconnect", n)
			}
		})
	}
}

// TestRetentionExpiry: when the agent never returns, the suspension
// becomes a real disconnect after RetainFor — hooks fire, subscriptions
// tear down (OnDeleted exactly once), and the RAN database forgets the
// node.
func TestRetentionExpiry(t *testing.T) {
	res := fastResilience()
	res.RetainFor = 50 * time.Millisecond
	s := server.New(server.Config{
		Scheme:     e2ap.SchemeASN,
		Transport:  transport.KindSCTPish,
		Resilience: res,
	})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	var disconnects atomic.Int32
	s.OnAgentDisconnect(func(server.AgentInfo) { disconnects.Add(1) })

	fn := &echoFunction{id: 140}
	// No agent-side resilience: Close is a permanent goodbye.
	a := connectAgent(t, addr, e2ap.SchemeASN, nodeID(e2ap.NodeENB, 6), fn)
	waitFor(t, "agent", func() bool { return len(s.Agents()) == 1 })
	agentID := s.Agents()[0].ID

	var deletions atomic.Int32
	if _, err := s.Subscribe(agentID, 140, []byte{1}, nil, server.SubscriptionCallbacks{
		OnDeleted: func() { deletions.Add(1) },
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "subscription at agent", func() bool {
		fn.mu.Lock()
		defer fn.mu.Unlock()
		return fn.subs == 1
	})

	a.Close()

	waitFor(t, "deferred disconnect hook", func() bool { return disconnects.Load() == 1 })
	waitFor(t, "OnDeleted", func() bool { return deletions.Load() == 1 })
	time.Sleep(20 * time.Millisecond)
	if n := deletions.Load(); n != 1 {
		t.Fatalf("OnDeleted fired %d times, want exactly 1", n)
	}
	if len(s.RANDB().Entities()) != 0 {
		t.Fatal("RANDB entity survived retention expiry")
	}
}

// TestSuspendAbortsPendingControls: with resilience enabled, a control
// pending at the moment of the drop still fails promptly with ErrClosed
// — suspension retains subscriptions, never in-flight controls.
func TestSuspendAbortsPendingControls(t *testing.T) {
	s := server.New(server.Config{
		Scheme:     e2ap.SchemeASN,
		Transport:  transport.KindSCTPish,
		Resilience: fastResilience(), // RetainFor 30s >> test timeout
	})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	release := make(chan struct{})
	fn := &blockingFunction{id: 140, release: release}
	cap := &connCapture{}
	a := agent.New(agent.Config{
		NodeID:   nodeID(e2ap.NodeENB, 7),
		Scheme:   e2ap.SchemeASN,
		WrapConn: cap.wrap,
	})
	if err := a.RegisterFunction(fn); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Connect(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	t.Cleanup(func() { close(release) })
	waitFor(t, "agent", func() bool { return len(s.Agents()) == 1 })
	agentID := s.Agents()[0].ID

	ctlErr := make(chan error, 1)
	if err := s.Control(agentID, 140, nil, []byte("held"), true, func(_ []byte, err error) {
		ctlErr <- err
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "control held at agent", func() bool { return fn.inCtl.Load() == 1 })

	cap.kill()

	select {
	case err := <-ctlErr:
		if !errors.Is(err, server.ErrClosed) {
			t.Fatalf("pending control error = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("suspension did not abort the pending control promptly")
	}
}
