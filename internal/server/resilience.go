package server

import (
	"time"

	"flexric/internal/e2ap"
	"flexric/internal/trace"
	"flexric/internal/transport"
)

// Server-side half of the resilience subsystem (Config.Resilience): a
// disconnected agent is not dropped immediately but suspended — its
// subscriptions, RAN-database entry, and AgentID are retained for
// Config.Resilience.RetainFor, keyed by the node's global E2 identity.
// If the node completes E2 setup again within the window, it is
// re-admitted under its old AgentID and the server replays every
// retained subscription with its original request ID, so iApp SubIDs
// and callbacks keep working without any application involvement. Only
// pending controls are failed promptly (ErrClosed): their answers can
// never arrive on the dead connection.

// retainedAgent is one suspended agent awaiting reconnection.
type retainedAgent struct {
	id   AgentID
	info AgentInfo
	// expire fires dropRetained when retention runs out first.
	expire *time.Timer
}

// admitAgent registers a freshly set-up connection, either re-admitting
// a suspended agent (retention hit on node identity) or as a new agent.
// It reports false when the server is closed.
func (s *Server) admitAgent(c *agentConn, setup *e2ap.SetupRequest) bool {
	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		return false
	}

	// Reconnect detection, by global node identity: either the agent is
	// suspended (its old connection already died), or it redialed before
	// the server noticed the old association die (half-open takeover).
	var oldTC transport.Conn
	reclaimed := false
	if s.res != nil {
		if e, ok := s.retained[setup.NodeID]; ok && e.expire.Stop() {
			delete(s.retained, setup.NodeID)
			serverTel.retained.Set(int64(len(s.retained)))
			c.id = e.id
			reclaimed = true
		} else {
			for _, old := range s.agents {
				if old.info.NodeID == setup.NodeID {
					c.id = old.id
					oldTC = old.tc
					reclaimed = true
					break
				}
			}
		}
	}
	if reclaimed {
		// Reuse the old AgentID so SubIDs minted before the drop stay
		// valid; replacing the map entry makes the predecessor's teardown
		// a no-op (ownership check in teardownAgent).
		c.info = AgentInfo{
			ID:        c.id,
			NodeID:    setup.NodeID,
			Functions: setup.RANFunctions,
			Addr:      c.tc.RemoteAddr(),
		}
		s.agents[c.id] = c
		hooks := append([]func(AgentInfo){}, s.onReconnect...)
		s.updateAgentStatsLocked()
		s.mu.Unlock()

		if oldTC != nil {
			// Takeover: retire the half-open predecessor and fail its
			// pending controls now — their answers can never arrive.
			oldTC.Close()
			s.subs.abortControls(c.id)
		}
		serverTel.reconnects.Inc()
		// Replay before the hooks so applications observing the reconnect
		// see their subscriptions already re-established.
		s.replaySubscriptions(c)
		if len(hooks) > 0 {
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				for _, h := range hooks {
					h(c.info)
				}
			}()
		}
		return true
	}

	// New agent.
	c.id = s.nextID
	s.nextID++
	c.info = AgentInfo{
		ID:        c.id,
		NodeID:    setup.NodeID,
		Functions: setup.RANFunctions,
		Addr:      c.tc.RemoteAddr(),
	}
	s.agents[c.id] = c
	hooks := append([]func(AgentInfo){}, s.onConnect...)
	s.updateAgentStatsLocked()
	s.mu.Unlock()

	s.randb.addAgent(c.info)
	// Hooks run concurrently with the receive loop: a hook may issue a
	// control/subscription and wait for the agent's reply, which only
	// the receive loop can deliver.
	if len(hooks) > 0 {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for _, h := range hooks {
				h(c.info)
			}
		}()
	}
	return true
}

// replaySubscriptions re-issues the agent's retained subscriptions on
// its new connection, preserving the original request IDs. Failures are
// delivered through the normal path: the agent answers each request
// with a response or failure, routed to the retained callbacks.
func (s *Server) replaySubscriptions(c *agentConn) {
	items := s.subs.replayItems(c.id)
	if len(items) == 0 {
		return
	}
	sp := trace.StartRoot("server.resub")
	for _, it := range items {
		err := c.send(&e2ap.SubscriptionRequest{
			RequestID:     it.req,
			RANFunctionID: it.fnID,
			EventTrigger:  it.trigger,
			Actions:       it.actions,
			Trace:         sp.Context(),
		})
		if err != nil {
			// Connection already gone again; the next reconnect replays.
			break
		}
		serverTel.subsReplayed.Inc()
	}
	sp.End()
}

// teardownAgent runs when an agent's receive loop ends. With resilience
// enabled the agent is suspended: removed from the live set, pending
// controls aborted, and a retention timer armed; subscriptions and the
// RAN-database entry stay for replay. Without resilience (or when the
// server is closing) all state drops immediately, as in the seed.
func (s *Server) teardownAgent(c *agentConn) {
	s.mu.Lock()
	if s.agents[c.id] != c {
		// A reconnect already replaced this conn (or Close drained it);
		// nothing to tear down beyond the transport.
		s.mu.Unlock()
		c.tc.Close()
		return
	}
	delete(s.agents, c.id)

	if s.res != nil && s.res.RetainFor > 0 && !s.closed.Load() {
		e := &retainedAgent{id: c.id, info: c.info}
		e.expire = time.AfterFunc(s.res.RetainFor, func() { s.expireRetained(c.info.NodeID, e) })
		s.retained[c.info.NodeID] = e
		s.updateAgentStatsLocked()
		serverTel.retained.Set(int64(len(s.retained)))
		s.mu.Unlock()
		c.tc.Close()
		s.subs.abortControls(c.id)
		return
	}

	down := append([]func(AgentInfo){}, s.onDisconnect...)
	s.updateAgentStatsLocked()
	s.mu.Unlock()
	c.tc.Close()
	s.randb.removeAgent(c.info)
	s.subs.dropAgent(c.id)
	for _, h := range down {
		h(c.info)
	}
}

// expireRetained is the retention timer callback: if the entry is still
// current (not re-admitted, not drained by Close), the suspension
// becomes a real disconnect.
func (s *Server) expireRetained(nodeID e2ap.GlobalE2NodeID, e *retainedAgent) {
	s.mu.Lock()
	if s.retained[nodeID] != e {
		s.mu.Unlock()
		return
	}
	delete(s.retained, nodeID)
	serverTel.retained.Set(int64(len(s.retained)))
	s.mu.Unlock()
	s.dropRetained(e)
}

// dropRetained finalizes a suspension that did not end in a reconnect:
// the deferred disconnect semantics — RAN database removal, subscription
// teardown (OnDeleted fires), and the OnAgentDisconnect hooks.
func (s *Server) dropRetained(e *retainedAgent) {
	s.mu.Lock()
	down := append([]func(AgentInfo){}, s.onDisconnect...)
	s.mu.Unlock()
	s.randb.removeAgent(e.info)
	s.subs.dropAgent(e.id)
	for _, h := range down {
		h(e.info)
	}
}
