package server

import (
	"fmt"

	"flexric/internal/telemetry"
)

// Telemetry: the controller-side half of the paper's scalability story
// (§5.3, Fig. 8) — how fast indications are routed to iApps, per
// subscription, and what the RAN-management registry holds.
//
//	server.dispatch_latency            envelope-to-iApp routing time,
//	                                   including the iApp callback (the
//	                                   "controller processing" of §7)
//	server.indications                 indications dispatched (counter)
//	server.indications_dropped         no matching subscription (counter)
//	server.sub.a<A>.r<R>-<I>.indications  per-subscription counts, keyed
//	                                   by agent / requestor-instance;
//	                                   unregistered on delete
//	server.subscriptions_active        (gauge)
//	server.agents_connected            (gauge)
//	server.randb.entities              RAN entities known (gauge)
//	server.randb.entities_complete     fully-assembled entities (gauge)
//	server.functions                   RAN functions across agents (gauge)
//	server.agent_reconnects            suspended agents re-admitted (counter)
//	server.subs_replayed               subscriptions re-established (counter)
//	server.agents_retained             suspended agents awaiting reconnect
//	                                   (gauge)
var serverTel = struct {
	dispatchLat  *telemetry.Histogram
	indications  *telemetry.Counter
	dropped      *telemetry.Counter
	subsActive   *telemetry.Gauge
	agents       *telemetry.Gauge
	entities     *telemetry.Gauge
	complete     *telemetry.Gauge
	functions    *telemetry.Gauge
	reconnects   *telemetry.Counter
	subsReplayed *telemetry.Counter
	retained     *telemetry.Gauge
}{
	dispatchLat:  telemetry.NewHistogram("server.dispatch_latency"),
	indications:  telemetry.NewCounter("server.indications"),
	dropped:      telemetry.NewCounter("server.indications_dropped"),
	subsActive:   telemetry.NewGauge("server.subscriptions_active"),
	agents:       telemetry.NewGauge("server.agents_connected"),
	entities:     telemetry.NewGauge("server.randb.entities"),
	complete:     telemetry.NewGauge("server.randb.entities_complete"),
	functions:    telemetry.NewGauge("server.functions"),
	reconnects:   telemetry.NewCounter("server.agent_reconnects"),
	subsReplayed: telemetry.NewCounter("server.subs_replayed"),
	retained:     telemetry.NewGauge("server.agents_retained"),
}

// subScope names a subscription's telemetry subtree.
func subScope(id SubID) string {
	return fmt.Sprintf("server.sub.a%d.r%d-%d", id.Agent, id.Req.Requestor, id.Req.Instance)
}

// subIndications returns the per-subscription indication counter.
func subIndications(id SubID) *telemetry.Counter {
	return telemetry.NewCounter(subScope(id) + ".indications")
}

// dropSubTelemetry removes a deleted subscription's subtree.
func dropSubTelemetry(id SubID) {
	if telemetry.Enabled {
		telemetry.Unregister(subScope(id))
	}
}

// updateStatsLocked refreshes the RAN-database gauges; called with db.mu
// held by the RANDB mutators.
func (db *RANDB) updateStatsLocked() {
	if !telemetry.Enabled {
		return
	}
	complete := 0
	for _, e := range db.entities {
		if e.isComplete() {
			complete++
		}
	}
	serverTel.entities.Set(int64(len(db.entities)))
	serverTel.complete.Set(int64(complete))
}

// updateAgentStatsLocked refreshes the connected-agent gauges; called
// with s.mu held wherever the agent set or its function lists change.
func (s *Server) updateAgentStatsLocked() {
	if !telemetry.Enabled {
		return
	}
	fns := 0
	for _, c := range s.agents {
		fns += len(c.info.Functions)
	}
	serverTel.agents.Set(int64(len(s.agents)))
	serverTel.functions.Set(int64(fns))
}
