package sm

import (
	"fmt"

	"flexric/internal/encoding/asn1per"
	"flexric/internal/encoding/flat"
	"flexric/internal/ran"
)

// The traffic control SM (TC SM, §6.1.1) abstracts per-UE flow
// configuration: queues, 5-tuple classifier filters, and pacers. Its
// three control operations are exactly the xApp's remedy sequence in the
// bufferbloat experiment: "it generates a second FIFO queue; next, it
// creates a 5-tuple filter ...; following, it loads a 5G-BDP pacer".

// TCOp is the TC SM control operation.
type TCOp uint8

// TC SM operations.
const (
	// OpAddQueue creates a FIFO queue; the outcome carries the queue ID.
	OpAddQueue TCOp = iota + 1
	// OpRemoveQueue deletes a queue.
	OpRemoveQueue
	// OpAddFilter installs a 5-tuple classifier rule.
	OpAddFilter
	// OpSetPacer selects the pacing policy.
	OpSetPacer
)

// TCControl is the TC SM control payload.
type TCControl struct {
	Op   TCOp
	RNTI uint16
	// Queue is the target for OpRemoveQueue and OpAddFilter.
	Queue uint32
	// Filter fields for OpAddFilter.
	SrcIP, DstIP     uint32
	SrcPort, DstPort uint16
	Proto            uint8
	MatchProto       bool
	// Pacer fields for OpSetPacer.
	Pacer         uint8
	PacerTargetMS uint32
}

// Match converts the control's filter fields to a classifier rule.
func (c *TCControl) Match() ran.TCMatch {
	return ran.TCMatch{
		SrcIP:      c.SrcIP,
		DstIP:      c.DstIP,
		SrcPort:    c.SrcPort,
		DstPort:    c.DstPort,
		Proto:      ran.Proto(c.Proto),
		MatchProto: c.MatchProto,
	}
}

// EncodeTCControl serializes a TC SM control payload.
func EncodeTCControl(s Scheme, c *TCControl) []byte {
	switch s {
	case SchemeFB:
		b := newFB(96)
		b.StartTable(11)
		b.AddUint8(0, uint8(c.Op))
		b.AddUint32(1, uint32(c.RNTI))
		b.AddUint32(2, c.Queue)
		b.AddUint32(3, c.SrcIP)
		b.AddUint32(4, c.DstIP)
		b.AddUint32(5, uint32(c.SrcPort))
		b.AddUint32(6, uint32(c.DstPort))
		b.AddUint8(7, c.Proto)
		b.AddBool(8, c.MatchProto)
		b.AddUint8(9, c.Pacer)
		b.AddUint32(10, c.PacerTargetMS)
		b.Finish(b.EndTable())
		return fbBytes(b)
	default:
		w := newPER(48)
		w.WriteBits(uint64(c.Op), 8)
		w.WriteBits(uint64(c.RNTI), 16)
		w.WriteBits(uint64(c.Queue), 32)
		w.WriteBits(uint64(c.SrcIP), 32)
		w.WriteBits(uint64(c.DstIP), 32)
		w.WriteBits(uint64(c.SrcPort), 16)
		w.WriteBits(uint64(c.DstPort), 16)
		w.WriteBits(uint64(c.Proto), 8)
		w.WriteBool(c.MatchProto)
		w.WriteBits(uint64(c.Pacer), 8)
		w.WriteBits(uint64(c.PacerTargetMS), 32)
		return append([]byte(nil), w.Bytes()...)
	}
}

// DecodeTCControl parses a TC SM control payload.
func DecodeTCControl(b []byte) (*TCControl, error) {
	s, body, err := schemeOf(b)
	if err != nil {
		return nil, err
	}
	switch s {
	case SchemeFB:
		tab, err := flat.GetRoot(body)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		return &TCControl{
			Op:            TCOp(tab.Uint8(0)),
			RNTI:          uint16(tab.Uint32(1)),
			Queue:         tab.Uint32(2),
			SrcIP:         tab.Uint32(3),
			DstIP:         tab.Uint32(4),
			SrcPort:       uint16(tab.Uint32(5)),
			DstPort:       uint16(tab.Uint32(6)),
			Proto:         tab.Uint8(7),
			MatchProto:    tab.Bool(8),
			Pacer:         tab.Uint8(9),
			PacerTargetMS: tab.Uint32(10),
		}, nil
	default:
		rd := asn1per.NewReader(body)
		c := &TCControl{}
		read := func(bits int) uint64 {
			if err != nil {
				return 0
			}
			var v uint64
			v, err = rd.ReadBits(bits)
			return v
		}
		c.Op = TCOp(read(8))
		c.RNTI = uint16(read(16))
		c.Queue = uint32(read(32))
		c.SrcIP = uint32(read(32))
		c.DstIP = uint32(read(32))
		c.SrcPort = uint16(read(16))
		c.DstPort = uint16(read(16))
		c.Proto = uint8(read(8))
		if err == nil {
			c.MatchProto, err = rd.ReadBool()
		}
		c.Pacer = uint8(read(8))
		c.PacerTargetMS = uint32(read(32))
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		return c, nil
	}
}

// TCOutcome is the TC SM control outcome (e.g. the queue ID returned by
// OpAddQueue).
type TCOutcome struct {
	Queue uint32
}

// EncodeTCOutcome serializes a TC SM control outcome.
func EncodeTCOutcome(s Scheme, o *TCOutcome) []byte {
	switch s {
	case SchemeFB:
		b := newFB(16)
		b.StartTable(1)
		b.AddUint32(0, o.Queue)
		b.Finish(b.EndTable())
		return fbBytes(b)
	default:
		w := newPER(8)
		w.WriteBits(uint64(o.Queue), 32)
		return append([]byte(nil), w.Bytes()...)
	}
}

// DecodeTCOutcome parses a TC SM control outcome.
func DecodeTCOutcome(b []byte) (*TCOutcome, error) {
	s, body, err := schemeOf(b)
	if err != nil {
		return nil, err
	}
	switch s {
	case SchemeFB:
		tab, err := flat.GetRoot(body)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		return &TCOutcome{Queue: tab.Uint32(0)}, nil
	default:
		rd := asn1per.NewReader(body)
		v, err := rd.ReadBits(32)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		return &TCOutcome{Queue: uint32(v)}, nil
	}
}

// TCQueueEntry is one queue's statistics in a TC report.
type TCQueueEntry struct {
	ID          uint32
	EnqPackets  uint64
	EnqBytes    uint64
	DeqPackets  uint64
	DeqBytes    uint64
	DropPackets uint64
	BufferBytes uint64
	BufferPkts  uint64
	SojournMS   int64
}

// TCReport is the TC SM indication payload for one UE.
type TCReport struct {
	CellTimeMS int64
	RNTI       uint16
	Active     bool
	Pacer      uint8
	Filters    uint32
	Queues     []TCQueueEntry
}

// EncodeTCReport serializes a TC SM report.
func EncodeTCReport(s Scheme, r *TCReport) []byte {
	switch s {
	case SchemeFB:
		b := newFB(96 + 80*len(r.Queues))
		refs := make([]uint32, len(r.Queues))
		for i, q := range r.Queues {
			b.StartTable(9)
			b.AddUint32(0, q.ID)
			b.AddUint64(1, q.EnqPackets)
			b.AddUint64(2, q.EnqBytes)
			b.AddUint64(3, q.DeqPackets)
			b.AddUint64(4, q.DeqBytes)
			b.AddUint64(5, q.DropPackets)
			b.AddUint64(6, q.BufferBytes)
			b.AddUint64(7, q.BufferPkts)
			b.AddInt64(8, q.SojournMS)
			refs[i] = b.EndTable()
		}
		vec := b.CreateRefVector(refs)
		b.StartTable(6)
		b.AddInt64(0, r.CellTimeMS)
		b.AddUint32(1, uint32(r.RNTI))
		b.AddBool(2, r.Active)
		b.AddUint8(3, r.Pacer)
		b.AddUint32(4, r.Filters)
		b.AddRef(5, vec)
		b.Finish(b.EndTable())
		return fbBytes(b)
	default:
		w := newPER(64 + 64*len(r.Queues))
		w.WriteInt(r.CellTimeMS)
		w.WriteBits(uint64(r.RNTI), 16)
		w.WriteBool(r.Active)
		w.WriteBits(uint64(r.Pacer), 8)
		w.WriteBits(uint64(r.Filters), 32)
		w.WriteLength(len(r.Queues))
		for _, q := range r.Queues {
			w.WriteBits(uint64(q.ID), 32)
			w.WriteUint(q.EnqPackets)
			w.WriteUint(q.EnqBytes)
			w.WriteUint(q.DeqPackets)
			w.WriteUint(q.DeqBytes)
			w.WriteUint(q.DropPackets)
			w.WriteUint(q.BufferBytes)
			w.WriteUint(q.BufferPkts)
			w.WriteInt(q.SojournMS)
		}
		return append([]byte(nil), w.Bytes()...)
	}
}

// DecodeTCReport parses a TC SM report.
func DecodeTCReport(b []byte) (*TCReport, error) {
	s, body, err := schemeOf(b)
	if err != nil {
		return nil, err
	}
	switch s {
	case SchemeFB:
		tab, err := flat.GetRoot(body)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		r := &TCReport{
			CellTimeMS: tab.Int64(0),
			RNTI:       uint16(tab.Uint32(1)),
			Active:     tab.Bool(2),
			Pacer:      tab.Uint8(3),
			Filters:    tab.Uint32(4),
		}
		n := tab.VectorLen(5)
		if n > 0 {
			r.Queues = make([]TCQueueEntry, n)
			for i := 0; i < n; i++ {
				t := tab.RefVectorAt(5, i)
				r.Queues[i] = TCQueueEntry{
					ID:          t.Uint32(0),
					EnqPackets:  t.Uint64(1),
					EnqBytes:    t.Uint64(2),
					DeqPackets:  t.Uint64(3),
					DeqBytes:    t.Uint64(4),
					DropPackets: t.Uint64(5),
					BufferBytes: t.Uint64(6),
					BufferPkts:  t.Uint64(7),
					SojournMS:   t.Int64(8),
				}
			}
		}
		return r, nil
	default:
		rd := asn1per.NewReader(body)
		r := &TCReport{}
		if r.CellTimeMS, err = rd.ReadInt(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		v, err := rd.ReadBits(16)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		r.RNTI = uint16(v)
		if r.Active, err = rd.ReadBool(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		if v, err = rd.ReadBits(8); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		r.Pacer = uint8(v)
		if v, err = rd.ReadBits(32); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		r.Filters = uint32(v)
		n, err := rd.ReadCount()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		if n > 0 {
			r.Queues = make([]TCQueueEntry, n)
			for i := range r.Queues {
				q := &r.Queues[i]
				if v, err = rd.ReadBits(32); err != nil {
					return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
				}
				q.ID = uint32(v)
				for _, f := range []*uint64{&q.EnqPackets, &q.EnqBytes, &q.DeqPackets,
					&q.DeqBytes, &q.DropPackets, &q.BufferBytes, &q.BufferPkts} {
					if *f, err = rd.ReadUint(); err != nil {
						return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
					}
				}
				if q.SojournMS, err = rd.ReadInt(); err != nil {
					return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
				}
			}
		}
		return r, nil
	}
}
