package sm

import (
	"fmt"

	"flexric/internal/encoding/asn1per"
	"flexric/internal/encoding/flat"
)

// This file carries the remaining shipped SMs: the Hello-World ping SM
// used by the §5.2 encoding experiments, the RRC UE-notification SM that
// lets slicing xApps discover UE-to-service associations (§6.1.2), and an
// O-RAN-style KPM SM (Appendix A.4).

// HWPing is the Hello-World SM payload: the paper's modified HW-E2SM
// "performs a ping by sending a control message to the RAN function, to
// which the agent responds with an indication message."
type HWPing struct {
	Seq uint64
	// T0 is the sender's monotonic timestamp in ns, echoed back for RTT.
	T0 int64
	// Data pads the message to the experiment's payload size.
	Data []byte
}

// EncodeHWPing serializes a ping payload.
func EncodeHWPing(s Scheme, p *HWPing) []byte {
	switch s {
	case SchemeFB:
		b := newFB(64 + len(p.Data))
		var data uint32
		hasData := p.Data != nil
		if hasData {
			data = b.CreateByteVector(p.Data)
		}
		b.StartTable(3)
		b.AddUint64(0, p.Seq)
		b.AddInt64(1, p.T0)
		if hasData {
			b.AddRef(2, data)
		}
		b.Finish(b.EndTable())
		return fbBytes(b)
	default:
		w := newPER(32 + len(p.Data))
		w.WriteUint(p.Seq)
		w.WriteInt(p.T0)
		w.WriteOctets(p.Data)
		return append([]byte(nil), w.Bytes()...)
	}
}

// DecodeHWPing parses a ping payload.
func DecodeHWPing(b []byte) (*HWPing, error) {
	s, body, err := schemeOf(b)
	if err != nil {
		return nil, err
	}
	switch s {
	case SchemeFB:
		tab, err := flat.GetRoot(body)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		p := &HWPing{Seq: tab.Uint64(0), T0: tab.Int64(1)}
		if d := tab.Bytes(2); len(d) > 0 {
			p.Data = append([]byte(nil), d...)
		}
		return p, nil
	default:
		rd := asn1per.NewReader(body)
		p := &HWPing{}
		if p.Seq, err = rd.ReadUint(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		if p.T0, err = rd.ReadInt(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		if p.Data, err = rd.ReadOctets(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		return p, nil
	}
}

// RRCEventKind distinguishes UE lifecycle notifications.
type RRCEventKind uint8

// RRC UE events.
const (
	RRCAttach RRCEventKind = iota + 1
	RRCDetach
)

// RRCEvent is the RRC SM indication payload: "through RRC UE
// notifications, the xApp discovers the UE-to-service association through
// the selected PLMN identification or slice information (S-NSSAI)
// provided in the attach procedure" (§6.1.2).
type RRCEvent struct {
	Kind   RRCEventKind
	RNTI   uint16
	PLMNID string
	SNSSAI uint32
	IMSI   string
}

// EncodeRRCEvent serializes an RRC UE notification.
func EncodeRRCEvent(s Scheme, e *RRCEvent) []byte {
	switch s {
	case SchemeFB:
		b := newFB(96)
		plmn := b.CreateString(e.PLMNID)
		imsi := b.CreateString(e.IMSI)
		b.StartTable(5)
		b.AddUint8(0, uint8(e.Kind))
		b.AddUint32(1, uint32(e.RNTI))
		b.AddRef(2, plmn)
		b.AddUint32(3, e.SNSSAI)
		b.AddRef(4, imsi)
		b.Finish(b.EndTable())
		return fbBytes(b)
	default:
		w := newPER(64)
		w.WriteBits(uint64(e.Kind), 8)
		w.WriteBits(uint64(e.RNTI), 16)
		w.WriteString(e.PLMNID)
		w.WriteBits(uint64(e.SNSSAI), 32)
		w.WriteString(e.IMSI)
		return append([]byte(nil), w.Bytes()...)
	}
}

// DecodeRRCEvent parses an RRC UE notification.
func DecodeRRCEvent(b []byte) (*RRCEvent, error) {
	s, body, err := schemeOf(b)
	if err != nil {
		return nil, err
	}
	switch s {
	case SchemeFB:
		tab, err := flat.GetRoot(body)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		return &RRCEvent{
			Kind:   RRCEventKind(tab.Uint8(0)),
			RNTI:   uint16(tab.Uint32(1)),
			PLMNID: tab.String(2),
			SNSSAI: tab.Uint32(3),
			IMSI:   tab.String(4),
		}, nil
	default:
		rd := asn1per.NewReader(body)
		e := &RRCEvent{}
		v, err := rd.ReadBits(8)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		e.Kind = RRCEventKind(v)
		if v, err = rd.ReadBits(16); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		e.RNTI = uint16(v)
		if e.PLMNID, err = rd.ReadString(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		if v, err = rd.ReadBits(32); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		e.SNSSAI = uint32(v)
		if e.IMSI, err = rd.ReadString(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		return e, nil
	}
}

// KPMMeasurement is one named measurement in a KPM report.
type KPMMeasurement struct {
	Name  string
	Value float64
}

// KPMReport is an O-RAN-E2SM-KPM-style report: named performance
// metrics on a periodic timer (Appendix A.4).
type KPMReport struct {
	CellTimeMS    int64
	GranularityMS uint32
	Measurements  []KPMMeasurement
}

// EncodeKPMReport serializes a KPM report.
func EncodeKPMReport(s Scheme, r *KPMReport) []byte {
	switch s {
	case SchemeFB:
		b := newFB(64 + 48*len(r.Measurements))
		refs := make([]uint32, len(r.Measurements))
		for i, m := range r.Measurements {
			name := b.CreateString(m.Name)
			b.StartTable(2)
			b.AddRef(0, name)
			b.AddFloat64(1, m.Value)
			refs[i] = b.EndTable()
		}
		vec := b.CreateRefVector(refs)
		b.StartTable(3)
		b.AddInt64(0, r.CellTimeMS)
		b.AddUint32(1, r.GranularityMS)
		b.AddRef(2, vec)
		b.Finish(b.EndTable())
		return fbBytes(b)
	default:
		w := newPER(32 + 32*len(r.Measurements))
		w.WriteInt(r.CellTimeMS)
		w.WriteBits(uint64(r.GranularityMS), 32)
		w.WriteLength(len(r.Measurements))
		for _, m := range r.Measurements {
			w.WriteString(m.Name)
			w.WriteFloat(m.Value)
		}
		return append([]byte(nil), w.Bytes()...)
	}
}

// DecodeKPMReport parses a KPM report.
func DecodeKPMReport(b []byte) (*KPMReport, error) {
	s, body, err := schemeOf(b)
	if err != nil {
		return nil, err
	}
	switch s {
	case SchemeFB:
		tab, err := flat.GetRoot(body)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		r := &KPMReport{CellTimeMS: tab.Int64(0), GranularityMS: tab.Uint32(1)}
		n := tab.VectorLen(2)
		if n > 0 {
			r.Measurements = make([]KPMMeasurement, n)
			for i := 0; i < n; i++ {
				t := tab.RefVectorAt(2, i)
				r.Measurements[i] = KPMMeasurement{Name: t.String(0), Value: t.Float64(1)}
			}
		}
		return r, nil
	default:
		rd := asn1per.NewReader(body)
		r := &KPMReport{}
		if r.CellTimeMS, err = rd.ReadInt(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		v, err := rd.ReadBits(32)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		r.GranularityMS = uint32(v)
		n, err := rd.ReadCount()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		if n > 0 {
			r.Measurements = make([]KPMMeasurement, n)
			for i := range r.Measurements {
				if r.Measurements[i].Name, err = rd.ReadString(); err != nil {
					return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
				}
				if r.Measurements[i].Value, err = rd.ReadFloat(); err != nil {
					return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
				}
			}
		}
		return r, nil
	}
}
