package sm

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"flexric/internal/nvs"
)

func schemes() []Scheme { return []Scheme{SchemeASN, SchemeFB} }

func TestTriggerRoundTrip(t *testing.T) {
	for _, s := range schemes() {
		for _, period := range []uint32{1, 10, 1000} {
			b := EncodeTrigger(s, Trigger{PeriodMS: period})
			got, err := DecodeTrigger(b)
			if err != nil || got.PeriodMS != period {
				t.Fatalf("%s period %d: got %+v err %v", s, period, got, err)
			}
		}
	}
}

func TestSchemePrefix(t *testing.T) {
	if b := EncodeTrigger(SchemeASN, Trigger{PeriodMS: 1}); b[0] != byte(SchemeASN) {
		t.Fatal("ASN prefix")
	}
	if b := EncodeTrigger(SchemeFB, Trigger{PeriodMS: 1}); b[0] != byte(SchemeFB) {
		t.Fatal("FB prefix")
	}
	if _, err := DecodeTrigger([]byte{99, 0}); err == nil {
		t.Fatal("unknown scheme byte must fail")
	}
	if _, err := DecodeTrigger(nil); err == nil {
		t.Fatal("empty payload must fail")
	}
}

func sampleMAC() *MACReport {
	return &MACReport{
		CellTimeMS: 12345,
		UEs: []MACUEEntry{
			{RNTI: 1, CQI: 15, MCS: 28, RBsUsed: 1000, TxBits: 1 << 30, ThroughputBps: 17.5e6},
			{RNTI: 2, CQI: 11, MCS: 20, RBsUsed: 500, TxBits: 1 << 20, ThroughputBps: 3e6},
		},
	}
}

func TestMACReportRoundTrip(t *testing.T) {
	for _, s := range schemes() {
		r := sampleMAC()
		got, err := DecodeMACReport(EncodeMACReport(s, r))
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if !reflect.DeepEqual(got, r) {
			t.Fatalf("%s:\n got %+v\nwant %+v", s, got, r)
		}
	}
}

func TestMACReportEmpty(t *testing.T) {
	for _, s := range schemes() {
		r := &MACReport{CellTimeMS: 7}
		got, err := DecodeMACReport(EncodeMACReport(s, r))
		if err != nil || got.CellTimeMS != 7 || len(got.UEs) != 0 {
			t.Fatalf("%s: %+v %v", s, got, err)
		}
	}
}

func TestRLCReportRoundTrip(t *testing.T) {
	for _, s := range schemes() {
		r := &RLCReport{
			CellTimeMS: 99,
			UEs: []RLCUEEntry{{
				RNTI: 3, TxPackets: 10, TxBytes: 10000, RxPackets: 12, RxBytes: 12000,
				DropPackets: 2, DropBytes: 2000, BufferBytes: 5000, BufferPkts: 4, SojournMS: 1500,
			}},
		}
		got, err := DecodeRLCReport(EncodeRLCReport(s, r))
		if err != nil || !reflect.DeepEqual(got, r) {
			t.Fatalf("%s: %+v %v", s, got, err)
		}
	}
}

func TestPDCPReportRoundTrip(t *testing.T) {
	for _, s := range schemes() {
		r := &PDCPReport{CellTimeMS: 1, UEs: []PDCPUEEntry{{RNTI: 9, TxPackets: 5, TxBytes: 640}}}
		got, err := DecodePDCPReport(EncodePDCPReport(s, r))
		if err != nil || !reflect.DeepEqual(got, r) {
			t.Fatalf("%s: %+v %v", s, got, err)
		}
	}
}

func TestSliceControlRoundTrip(t *testing.T) {
	for _, s := range schemes() {
		c := &SliceControl{
			Op: OpConfigureSlices,
			Slices: []SliceParams{
				{ID: 1, Kind: 0, CapacityQ: 660000, UESched: "pf"},
				{ID: 2, Kind: 1, RateRsv: 5e6, RateRef: 50e6, NoSharing: true, UESched: "rr"},
			},
		}
		got, err := DecodeSliceControl(EncodeSliceControl(s, c))
		if err != nil || !reflect.DeepEqual(got, c) {
			t.Fatalf("%s:\n got %+v\nwant %+v\nerr %v", s, got, c, err)
		}
		assoc := &SliceControl{Op: OpAssociateUE, RNTI: 17, SliceID: 2}
		got, err = DecodeSliceControl(EncodeSliceControl(s, assoc))
		if err != nil || !reflect.DeepEqual(got, assoc) {
			t.Fatalf("%s assoc: %+v %v", s, got, err)
		}
	}
}

func TestSliceParamsNVSConversion(t *testing.T) {
	cfgs := []nvs.Config{
		{ID: 1, Kind: nvs.KindCapacity, Capacity: 0.66, UESched: "pf"},
		{ID: 2, Kind: nvs.KindRate, RateRsv: 5e6, RateRef: 50e6, NoSharing: true},
	}
	back := ToNVS(ParamsFromNVS(cfgs))
	if len(back) != 2 {
		t.Fatal("length")
	}
	if back[0].Capacity < 0.6599 || back[0].Capacity > 0.6601 {
		t.Fatalf("capacity %v", back[0].Capacity)
	}
	if back[1].RateRsv != 5e6 || back[1].RateRef != 50e6 || !back[1].NoSharing {
		t.Fatalf("rate slice %+v", back[1])
	}
}

func TestSliceStatusRoundTrip(t *testing.T) {
	for _, s := range schemes() {
		st := &SliceStatus{
			Algo:   "nvs",
			Slices: []SliceParams{{ID: 1, CapacityQ: 500000, UESched: "pf"}},
			UEs:    []UESliceAssoc{{RNTI: 1, SliceID: 1}, {RNTI: 2, SliceID: 2}},
		}
		got, err := DecodeSliceStatus(EncodeSliceStatus(s, st))
		if err != nil || !reflect.DeepEqual(got, st) {
			t.Fatalf("%s: %+v %v", s, got, err)
		}
	}
}

func TestTCControlRoundTrip(t *testing.T) {
	for _, s := range schemes() {
		cases := []*TCControl{
			{Op: OpAddQueue, RNTI: 1},
			{Op: OpRemoveQueue, RNTI: 1, Queue: 2},
			{Op: OpAddFilter, RNTI: 1, Queue: 1, DstPort: 5060, Proto: 17, MatchProto: true, SrcIP: 0xC0A80001},
			{Op: OpSetPacer, RNTI: 1, Pacer: 1, PacerTargetMS: 4},
		}
		for _, c := range cases {
			got, err := DecodeTCControl(EncodeTCControl(s, c))
			if err != nil || !reflect.DeepEqual(got, c) {
				t.Fatalf("%s %+v: got %+v err %v", s, c, got, err)
			}
		}
	}
}

func TestTCOutcomeAndReportRoundTrip(t *testing.T) {
	for _, s := range schemes() {
		o, err := DecodeTCOutcome(EncodeTCOutcome(s, &TCOutcome{Queue: 3}))
		if err != nil || o.Queue != 3 {
			t.Fatalf("%s outcome: %+v %v", s, o, err)
		}
		r := &TCReport{
			CellTimeMS: 10, RNTI: 4, Active: true, Pacer: 1, Filters: 2,
			Queues: []TCQueueEntry{
				{ID: 0, EnqPackets: 100, EnqBytes: 150000, DeqPackets: 90, DeqBytes: 140000, DropPackets: 1, BufferBytes: 10000, BufferPkts: 10, SojournMS: 44},
				{ID: 1, EnqPackets: 5, DeqPackets: 5},
			},
		}
		got, err := DecodeTCReport(EncodeTCReport(s, r))
		if err != nil || !reflect.DeepEqual(got, r) {
			t.Fatalf("%s report:\n got %+v\nwant %+v\nerr %v", s, got, r, err)
		}
	}
}

func TestHWPingRoundTrip(t *testing.T) {
	for _, s := range schemes() {
		p := &HWPing{Seq: 42, T0: 123456789, Data: bytes.Repeat([]byte{0xAA}, 100)}
		got, err := DecodeHWPing(EncodeHWPing(s, p))
		if err != nil || !reflect.DeepEqual(got, p) {
			t.Fatalf("%s: %+v %v", s, got, err)
		}
		empty := &HWPing{Seq: 1, T0: -5}
		got, err = DecodeHWPing(EncodeHWPing(s, empty))
		if err != nil || !reflect.DeepEqual(got, empty) {
			t.Fatalf("%s empty: %+v %v", s, got, err)
		}
	}
}

func TestHWPingPayloadSizes(t *testing.T) {
	// Fig. 7 uses 100 B and 1500 B payloads; the FB encoding must carry
	// tens of bytes more overhead than ASN (the 30-40 B the paper saw).
	for _, n := range []int{100, 1500} {
		p := &HWPing{Seq: 1, T0: 1, Data: bytes.Repeat([]byte{1}, n)}
		asn := len(EncodeHWPing(SchemeASN, p))
		fb := len(EncodeHWPing(SchemeFB, p))
		if fb <= asn {
			t.Fatalf("n=%d: fb %d <= asn %d", n, fb, asn)
		}
		if d := fb - asn; d < 10 || d > 80 {
			t.Fatalf("n=%d: overhead %d B, want tens", n, d)
		}
	}
}

func TestRRCEventRoundTrip(t *testing.T) {
	for _, s := range schemes() {
		e := &RRCEvent{Kind: RRCAttach, RNTI: 17, PLMNID: "208.95", SNSSAI: 1, IMSI: "001010000000017"}
		got, err := DecodeRRCEvent(EncodeRRCEvent(s, e))
		if err != nil || !reflect.DeepEqual(got, e) {
			t.Fatalf("%s: %+v %v", s, got, err)
		}
	}
}

func TestKPMReportRoundTrip(t *testing.T) {
	for _, s := range schemes() {
		r := &KPMReport{
			CellTimeMS:    5,
			GranularityMS: 1000,
			Measurements: []KPMMeasurement{
				{Name: "DRB.UEThpDl", Value: 17.4e6},
				{Name: "RRC.ConnMean", Value: 3},
			},
		}
		got, err := DecodeKPMReport(EncodeKPMReport(s, r))
		if err != nil || !reflect.DeepEqual(got, r) {
			t.Fatalf("%s: %+v %v", s, got, err)
		}
	}
}

func TestDecodersRejectGarbage(t *testing.T) {
	f := func(b []byte) bool {
		// None of these may panic; errors are fine.
		_, _ = DecodeTrigger(b)
		_, _ = DecodeMACReport(b)
		_, _ = DecodeRLCReport(b)
		_, _ = DecodePDCPReport(b)
		_, _ = DecodeSliceControl(b)
		_, _ = DecodeSliceStatus(b)
		_, _ = DecodeTCControl(b)
		_, _ = DecodeTCOutcome(b)
		_, _ = DecodeTCReport(b)
		_, _ = DecodeHWPing(b)
		_, _ = DecodeRRCEvent(b)
		_, _ = DecodeKPMReport(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMACReportRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		r := &MACReport{CellTimeMS: rng.Int63()}
		n := rng.Intn(40)
		for j := 0; j < n; j++ {
			r.UEs = append(r.UEs, MACUEEntry{
				RNTI:          uint16(rng.Uint32()),
				CQI:           uint8(rng.Intn(16)),
				MCS:           uint8(rng.Intn(29)),
				RBsUsed:       rng.Uint64(),
				TxBits:        rng.Uint64(),
				ThroughputBps: rng.Float64() * 1e9,
			})
		}
		for _, s := range schemes() {
			got, err := DecodeMACReport(EncodeMACReport(s, r))
			if err != nil || !reflect.DeepEqual(got, r) {
				t.Fatalf("%s iter %d: err %v", s, i, err)
			}
		}
	}
}

// ASN encodings must be denser than FB for the same report (the
// bandwidth/CPU trade the SDK exposes, §4.3).
func TestStatsEncodingSizeTradeoff(t *testing.T) {
	r := &MACReport{CellTimeMS: 1}
	for i := 0; i < 32; i++ {
		r.UEs = append(r.UEs, MACUEEntry{RNTI: uint16(i), CQI: 15, MCS: 28, RBsUsed: 1e4, TxBits: 1e6, ThroughputBps: 2e7})
	}
	asn := len(EncodeMACReport(SchemeASN, r))
	fb := len(EncodeMACReport(SchemeFB, r))
	if asn >= fb {
		t.Fatalf("asn %d >= fb %d", asn, fb)
	}
}

func BenchmarkEncodeMACReportASN(b *testing.B) { benchEncodeMAC(b, SchemeASN) }
func BenchmarkEncodeMACReportFB(b *testing.B)  { benchEncodeMAC(b, SchemeFB) }

func benchEncodeMAC(b *testing.B, s Scheme) {
	r := &MACReport{CellTimeMS: 1}
	for i := 0; i < 32; i++ {
		r.UEs = append(r.UEs, MACUEEntry{RNTI: uint16(i), CQI: 15, MCS: 28, RBsUsed: 1e4, TxBits: 1e6, ThroughputBps: 2e7})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = EncodeMACReport(s, r)
	}
}

func BenchmarkDecodeMACReportASN(b *testing.B) { benchDecodeMAC(b, SchemeASN) }
func BenchmarkDecodeMACReportFB(b *testing.B)  { benchDecodeMAC(b, SchemeFB) }

func benchDecodeMAC(b *testing.B, s Scheme) {
	r := &MACReport{CellTimeMS: 1}
	for i := 0; i < 32; i++ {
		r.UEs = append(r.UEs, MACUEEntry{RNTI: uint16(i), CQI: 15, MCS: 28, RBsUsed: 1e4, TxBits: 1e6, ThroughputBps: 2e7})
	}
	wire := EncodeMACReport(s, r)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeMACReport(wire); err != nil {
			b.Fatal(err)
		}
	}
}
