package sm

import (
	"fmt"

	"flexric/internal/encoding/asn1per"
	"flexric/internal/encoding/flat"
)

// The monitoring service models: MAC, RLC and PDCP statistics reports,
// "tailored towards specific RAN sublayers ... to easily integrate the
// agent library in disaggregated base stations" (§4.1.1). They cover the
// counters the §5.1 experiments export at 1 ms frequency ("PDCP/RLC
// packet and byte counters, MAC statistics such as CQI and used resource
// blocks").

// MACUEEntry is one UE's MAC statistics.
type MACUEEntry struct {
	RNTI          uint16
	CQI           uint8
	MCS           uint8
	RBsUsed       uint64
	TxBits        uint64
	ThroughputBps float64
}

// MACReport is the MAC stats SM indication payload.
type MACReport struct {
	CellTimeMS int64
	UEs        []MACUEEntry
}

// EncodeMACReport serializes a MAC stats report in the given scheme.
func EncodeMACReport(s Scheme, r *MACReport) []byte {
	return AppendMACReport(nil, s, r)
}

// AppendMACReport appends an encoded MAC stats report to dst (which may
// be nil) and returns the extended slice. The caller owns the result;
// nothing is retained — the per-TTI encoder of the indication fast path
// (see docs/PERFORMANCE.md).
func AppendMACReport(dst []byte, s Scheme, r *MACReport) []byte {
	switch s {
	case SchemeFB:
		var b flat.Builder
		b.ResetAppend(append(dst, byte(SchemeFB)))
		refs := make([]uint32, len(r.UEs))
		for i, u := range r.UEs {
			b.StartTable(6)
			b.AddUint32(0, uint32(u.RNTI))
			b.AddUint8(1, u.CQI)
			b.AddUint8(2, u.MCS)
			b.AddUint64(3, u.RBsUsed)
			b.AddUint64(4, u.TxBits)
			b.AddFloat64(5, u.ThroughputBps)
			refs[i] = b.EndTable()
		}
		vec := b.CreateRefVector(refs)
		b.StartTable(2)
		b.AddInt64(0, r.CellTimeMS)
		b.AddRef(1, vec)
		b.Finish(b.EndTable())
		return b.BytesWithPrefix()
	default:
		var w asn1per.Writer
		w.ResetAppend(dst)
		w.WriteBits(uint64(SchemeASN), 8)
		w.WriteInt(r.CellTimeMS)
		w.WriteLength(len(r.UEs))
		for _, u := range r.UEs {
			w.WriteBits(uint64(u.RNTI), 16)
			w.WriteBits(uint64(u.CQI), 8)
			w.WriteBits(uint64(u.MCS), 8)
			w.WriteUint(u.RBsUsed)
			w.WriteUint(u.TxBits)
			w.WriteFloat(u.ThroughputBps)
		}
		return w.Bytes()
	}
}

// DecodeMACReport parses a MAC stats report.
func DecodeMACReport(b []byte) (*MACReport, error) {
	s, body, err := schemeOf(b)
	if err != nil {
		return nil, err
	}
	switch s {
	case SchemeFB:
		tab, err := flat.GetRoot(body)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		r := &MACReport{CellTimeMS: tab.Int64(0)}
		n := tab.VectorLen(1)
		if n > 0 {
			r.UEs = make([]MACUEEntry, n)
		}
		for i := 0; i < n; i++ {
			ut := tab.RefVectorAt(1, i)
			r.UEs[i] = MACUEEntry{
				RNTI:          uint16(ut.Uint32(0)),
				CQI:           ut.Uint8(1),
				MCS:           ut.Uint8(2),
				RBsUsed:       ut.Uint64(3),
				TxBits:        ut.Uint64(4),
				ThroughputBps: ut.Float64(5),
			}
		}
		return r, nil
	default:
		rd := asn1per.NewReader(body)
		r := &MACReport{}
		if r.CellTimeMS, err = rd.ReadInt(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		n, err := rd.ReadCount()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		if n > 0 {
			r.UEs = make([]MACUEEntry, n)
		}
		for i := range r.UEs {
			u := &r.UEs[i]
			var v uint64
			if v, err = rd.ReadBits(16); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
			}
			u.RNTI = uint16(v)
			if v, err = rd.ReadBits(8); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
			}
			u.CQI = uint8(v)
			if v, err = rd.ReadBits(8); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
			}
			u.MCS = uint8(v)
			if u.RBsUsed, err = rd.ReadUint(); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
			}
			if u.TxBits, err = rd.ReadUint(); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
			}
			if u.ThroughputBps, err = rd.ReadFloat(); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
			}
		}
		return r, nil
	}
}

// RLCUEEntry is one UE's RLC statistics.
type RLCUEEntry struct {
	RNTI        uint16
	TxPackets   uint64
	TxBytes     uint64
	RxPackets   uint64
	RxBytes     uint64
	DropPackets uint64
	DropBytes   uint64
	BufferBytes uint64
	BufferPkts  uint64
	SojournMS   int64
}

// RLCReport is the RLC stats SM indication payload.
type RLCReport struct {
	CellTimeMS int64
	UEs        []RLCUEEntry
}

// EncodeRLCReport serializes an RLC stats report.
func EncodeRLCReport(s Scheme, r *RLCReport) []byte {
	return AppendRLCReport(nil, s, r)
}

// AppendRLCReport appends an encoded RLC stats report to dst (which may
// be nil) and returns the extended slice. The caller owns the result;
// nothing is retained.
func AppendRLCReport(dst []byte, s Scheme, r *RLCReport) []byte {
	switch s {
	case SchemeFB:
		var b flat.Builder
		b.ResetAppend(append(dst, byte(SchemeFB)))
		refs := make([]uint32, len(r.UEs))
		for i, u := range r.UEs {
			b.StartTable(10)
			b.AddUint32(0, uint32(u.RNTI))
			b.AddUint64(1, u.TxPackets)
			b.AddUint64(2, u.TxBytes)
			b.AddUint64(3, u.RxPackets)
			b.AddUint64(4, u.RxBytes)
			b.AddUint64(5, u.DropPackets)
			b.AddUint64(6, u.DropBytes)
			b.AddUint64(7, u.BufferBytes)
			b.AddUint64(8, u.BufferPkts)
			b.AddInt64(9, u.SojournMS)
			refs[i] = b.EndTable()
		}
		vec := b.CreateRefVector(refs)
		b.StartTable(2)
		b.AddInt64(0, r.CellTimeMS)
		b.AddRef(1, vec)
		b.Finish(b.EndTable())
		return b.BytesWithPrefix()
	default:
		var w asn1per.Writer
		w.ResetAppend(dst)
		w.WriteBits(uint64(SchemeASN), 8)
		w.WriteInt(r.CellTimeMS)
		w.WriteLength(len(r.UEs))
		for _, u := range r.UEs {
			w.WriteBits(uint64(u.RNTI), 16)
			w.WriteUint(u.TxPackets)
			w.WriteUint(u.TxBytes)
			w.WriteUint(u.RxPackets)
			w.WriteUint(u.RxBytes)
			w.WriteUint(u.DropPackets)
			w.WriteUint(u.DropBytes)
			w.WriteUint(u.BufferBytes)
			w.WriteUint(u.BufferPkts)
			w.WriteInt(u.SojournMS)
		}
		return w.Bytes()
	}
}

// DecodeRLCReport parses an RLC stats report.
func DecodeRLCReport(b []byte) (*RLCReport, error) {
	s, body, err := schemeOf(b)
	if err != nil {
		return nil, err
	}
	switch s {
	case SchemeFB:
		tab, err := flat.GetRoot(body)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		r := &RLCReport{CellTimeMS: tab.Int64(0)}
		n := tab.VectorLen(1)
		if n > 0 {
			r.UEs = make([]RLCUEEntry, n)
		}
		for i := 0; i < n; i++ {
			ut := tab.RefVectorAt(1, i)
			r.UEs[i] = RLCUEEntry{
				RNTI:        uint16(ut.Uint32(0)),
				TxPackets:   ut.Uint64(1),
				TxBytes:     ut.Uint64(2),
				RxPackets:   ut.Uint64(3),
				RxBytes:     ut.Uint64(4),
				DropPackets: ut.Uint64(5),
				DropBytes:   ut.Uint64(6),
				BufferBytes: ut.Uint64(7),
				BufferPkts:  ut.Uint64(8),
				SojournMS:   ut.Int64(9),
			}
		}
		return r, nil
	default:
		rd := asn1per.NewReader(body)
		r := &RLCReport{}
		if r.CellTimeMS, err = rd.ReadInt(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		n, err := rd.ReadCount()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		if n > 0 {
			r.UEs = make([]RLCUEEntry, n)
		}
		for i := range r.UEs {
			u := &r.UEs[i]
			v, err := rd.ReadBits(16)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
			}
			u.RNTI = uint16(v)
			fields := []*uint64{&u.TxPackets, &u.TxBytes, &u.RxPackets, &u.RxBytes,
				&u.DropPackets, &u.DropBytes, &u.BufferBytes, &u.BufferPkts}
			for _, f := range fields {
				if *f, err = rd.ReadUint(); err != nil {
					return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
				}
			}
			if u.SojournMS, err = rd.ReadInt(); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
			}
		}
		return r, nil
	}
}

// PDCPUEEntry is one UE's PDCP statistics.
type PDCPUEEntry struct {
	RNTI      uint16
	TxPackets uint64
	TxBytes   uint64
}

// PDCPReport is the PDCP stats SM indication payload.
type PDCPReport struct {
	CellTimeMS int64
	UEs        []PDCPUEEntry
}

// EncodePDCPReport serializes a PDCP stats report.
func EncodePDCPReport(s Scheme, r *PDCPReport) []byte {
	return AppendPDCPReport(nil, s, r)
}

// AppendPDCPReport appends an encoded PDCP stats report to dst (which
// may be nil) and returns the extended slice. The caller owns the
// result; nothing is retained.
func AppendPDCPReport(dst []byte, s Scheme, r *PDCPReport) []byte {
	switch s {
	case SchemeFB:
		var b flat.Builder
		b.ResetAppend(append(dst, byte(SchemeFB)))
		refs := make([]uint32, len(r.UEs))
		for i, u := range r.UEs {
			b.StartTable(3)
			b.AddUint32(0, uint32(u.RNTI))
			b.AddUint64(1, u.TxPackets)
			b.AddUint64(2, u.TxBytes)
			refs[i] = b.EndTable()
		}
		vec := b.CreateRefVector(refs)
		b.StartTable(2)
		b.AddInt64(0, r.CellTimeMS)
		b.AddRef(1, vec)
		b.Finish(b.EndTable())
		return b.BytesWithPrefix()
	default:
		var w asn1per.Writer
		w.ResetAppend(dst)
		w.WriteBits(uint64(SchemeASN), 8)
		w.WriteInt(r.CellTimeMS)
		w.WriteLength(len(r.UEs))
		for _, u := range r.UEs {
			w.WriteBits(uint64(u.RNTI), 16)
			w.WriteUint(u.TxPackets)
			w.WriteUint(u.TxBytes)
		}
		return w.Bytes()
	}
}

// DecodePDCPReport parses a PDCP stats report.
func DecodePDCPReport(b []byte) (*PDCPReport, error) {
	s, body, err := schemeOf(b)
	if err != nil {
		return nil, err
	}
	switch s {
	case SchemeFB:
		tab, err := flat.GetRoot(body)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		r := &PDCPReport{CellTimeMS: tab.Int64(0)}
		n := tab.VectorLen(1)
		if n > 0 {
			r.UEs = make([]PDCPUEEntry, n)
		}
		for i := 0; i < n; i++ {
			ut := tab.RefVectorAt(1, i)
			r.UEs[i] = PDCPUEEntry{
				RNTI:      uint16(ut.Uint32(0)),
				TxPackets: ut.Uint64(1),
				TxBytes:   ut.Uint64(2),
			}
		}
		return r, nil
	default:
		rd := asn1per.NewReader(body)
		r := &PDCPReport{}
		if r.CellTimeMS, err = rd.ReadInt(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		n, err := rd.ReadCount()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		if n > 0 {
			r.UEs = make([]PDCPUEEntry, n)
		}
		for i := range r.UEs {
			u := &r.UEs[i]
			v, err := rd.ReadBits(16)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
			}
			u.RNTI = uint16(v)
			if u.TxPackets, err = rd.ReadUint(); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
			}
			if u.TxBytes, err = rd.ReadUint(); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
			}
		}
		return r, nil
	}
}
