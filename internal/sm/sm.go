// Package sm implements FlexRIC's service models (SMs): the extendable,
// composable information contracts between RAN functions and controllers
// (§3, §6). The SDK ships the monitoring SMs (MAC, RLC, PDCP statistics),
// the slicing control SM (SC SM, §6.1.2), the traffic control SM (TC SM,
// §6.1.1), an RRC UE-notification SM, an O-RAN-style KPM SM, and the
// "Hello World" ping SM used by the encoding experiments (§5.2).
//
// Every SM payload is encoded independently from E2AP (E2's mandated
// double encoding) and supports both the ASN.1-PER-style and the
// FlatBuffers-style scheme; the leading wire byte names the scheme, so
// payloads are self-describing and the four E2AP×E2SM combinations of
// Fig. 7 can be composed freely.
package sm

import (
	"errors"
	"fmt"

	"flexric/internal/encoding/asn1per"
	"flexric/internal/encoding/flat"
)

// Well-known RAN function IDs for the shipped service models.
const (
	IDHelloWorld  uint16 = 140
	IDMACStats    uint16 = 142
	IDRLCStats    uint16 = 143
	IDPDCPStats   uint16 = 144
	IDSliceCtrl   uint16 = 145
	IDTrafficCtrl uint16 = 146
	IDKPM         uint16 = 147
	IDRRC         uint16 = 148
)

// Scheme selects an SM payload encoding.
type Scheme uint8

// SM encoding schemes. Wire values are stable: they lead every payload.
const (
	SchemeASN Scheme = 0
	SchemeFB  Scheme = 1
)

func (s Scheme) String() string {
	if s == SchemeFB {
		return "fb"
	}
	return "asn"
}

// Codec errors.
var (
	// ErrBadPayload reports a malformed SM payload.
	ErrBadPayload = errors.New("sm: malformed payload")
	// ErrBadScheme reports an unknown scheme byte.
	ErrBadScheme = errors.New("sm: unknown encoding scheme")
)

// schemeOf splits the scheme byte off a payload.
func schemeOf(b []byte) (Scheme, []byte, error) {
	if len(b) == 0 {
		return 0, nil, ErrBadPayload
	}
	s := Scheme(b[0])
	if s != SchemeASN && s != SchemeFB {
		return 0, nil, fmt.Errorf("%w: %d", ErrBadScheme, b[0])
	}
	return s, b[1:], nil
}

// newPER returns a writer pre-seeded with the ASN scheme byte.
func newPER(capacity int) *asn1per.Writer {
	w := asn1per.NewWriter(capacity)
	w.WriteBits(uint64(SchemeASN), 8)
	return w
}

// newFB returns a flat builder; the scheme byte is prepended by fbBytes.
func newFB(capacity int) *flat.Builder { return flat.NewBuilder(capacity) }

// fbBytes prefixes the FB scheme byte. The copy is the price of the
// self-describing prefix; the flat buffer body itself is still read
// zero-copy by receivers (the prefix only shifts the view).
func fbBytes(b *flat.Builder) []byte {
	out := make([]byte, 1+b.Len())
	out[0] = byte(SchemeFB)
	copy(out[1:], b.Bytes())
	return out
}

// Trigger is the event trigger definition shared by the periodic
// monitoring SMs: report every PeriodMS milliseconds.
type Trigger struct {
	PeriodMS uint32
}

// EncodeTrigger serializes a periodic event trigger.
func EncodeTrigger(s Scheme, t Trigger) []byte {
	return AppendTrigger(nil, s, t)
}

// AppendTrigger appends an encoded periodic event trigger to dst
// (which may be nil) and returns the extended slice. Like all Append*
// SM encoders it retains nothing: the caller owns the result, which is
// what makes pooled-buffer reuse safe.
func AppendTrigger(dst []byte, s Scheme, t Trigger) []byte {
	switch s {
	case SchemeFB:
		var b flat.Builder
		b.ResetAppend(append(dst, byte(SchemeFB)))
		b.StartTable(1)
		b.AddUint32(0, t.PeriodMS)
		b.Finish(b.EndTable())
		return b.BytesWithPrefix()
	default:
		var w asn1per.Writer
		w.ResetAppend(dst)
		w.WriteBits(uint64(SchemeASN), 8)
		w.WriteBits(uint64(t.PeriodMS), 32)
		return w.Bytes()
	}
}

// DecodeTrigger parses a periodic event trigger.
func DecodeTrigger(b []byte) (Trigger, error) {
	s, body, err := schemeOf(b)
	if err != nil {
		return Trigger{}, err
	}
	switch s {
	case SchemeFB:
		tab, err := flat.GetRoot(body)
		if err != nil {
			return Trigger{}, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		return Trigger{PeriodMS: tab.Uint32(0)}, nil
	default:
		r := asn1per.NewReader(body)
		v, err := r.ReadBits(32)
		if err != nil {
			return Trigger{}, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		return Trigger{PeriodMS: uint32(v)}, nil
	}
}
