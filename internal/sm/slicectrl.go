package sm

import (
	"fmt"
	"math"

	"flexric/internal/encoding/asn1per"
	"flexric/internal/encoding/flat"
	"flexric/internal/nvs"
)

// The slicing control SM (SC SM, §6.1.2) "abstracts the slice
// configuration ... The SM allows to configure the slice algorithm
// (setting the slice scheduler) and a list of slices with
// algorithm-specific parameters (selecting the user scheduler and
// configuring its available resources)." It is RAT-independent: the same
// messages drive 4G and 5G cells (the multi-RAT property of Fig. 15).

// SliceOp is the SC SM control operation, carried in the control header.
type SliceOp uint8

// SC SM operations.
const (
	// OpConfigureSlices installs a complete slice set.
	OpConfigureSlices SliceOp = iota + 1
	// OpAssociateUE assigns a UE to a slice.
	OpAssociateUE
	// OpDisableSlicing returns to the shared scheduler pool.
	OpDisableSlicing
)

// SliceParams describes one slice, mirroring nvs.Config in SM terms.
type SliceParams struct {
	ID        uint32
	Kind      uint8 // 0 = capacity, 1 = rate
	CapacityQ uint32
	RateRsv   float64
	RateRef   float64
	NoSharing bool
	UESched   string
}

// capacityScale fixes the SM wire representation of capacity fractions
// (parts per million).
const capacityScale = 1_000_000

// ParamsFromNVS converts scheduler configs to SM wire parameters.
func ParamsFromNVS(cfgs []nvs.Config) []SliceParams {
	out := make([]SliceParams, len(cfgs))
	for i, c := range cfgs {
		out[i] = SliceParams{
			ID:        c.ID,
			Kind:      uint8(c.Kind),
			CapacityQ: uint32(math.Round(c.Capacity * capacityScale)),
			RateRsv:   c.RateRsv,
			RateRef:   c.RateRef,
			NoSharing: c.NoSharing,
			UESched:   c.UESched,
		}
	}
	return out
}

// ToNVS converts SM wire parameters to scheduler configs.
func ToNVS(ps []SliceParams) []nvs.Config {
	out := make([]nvs.Config, len(ps))
	for i, p := range ps {
		out[i] = nvs.Config{
			ID:        p.ID,
			Kind:      nvs.SliceKind(p.Kind),
			Capacity:  float64(p.CapacityQ) / capacityScale,
			RateRsv:   p.RateRsv,
			RateRef:   p.RateRef,
			NoSharing: p.NoSharing,
			UESched:   p.UESched,
		}
	}
	return out
}

// SliceControl is the SC SM control payload.
type SliceControl struct {
	Op SliceOp
	// Slices is the complete slice set for OpConfigureSlices.
	Slices []SliceParams
	// RNTI/SliceID are the association for OpAssociateUE.
	RNTI    uint16
	SliceID uint32
}

// EncodeSliceControl serializes an SC SM control payload.
func EncodeSliceControl(s Scheme, c *SliceControl) []byte {
	switch s {
	case SchemeFB:
		b := newFB(64 + 48*len(c.Slices))
		refs := make([]uint32, len(c.Slices))
		for i, sl := range c.Slices {
			sched := b.CreateString(sl.UESched)
			b.StartTable(7)
			b.AddUint32(0, sl.ID)
			b.AddUint8(1, sl.Kind)
			b.AddUint32(2, sl.CapacityQ)
			b.AddFloat64(3, sl.RateRsv)
			b.AddFloat64(4, sl.RateRef)
			b.AddBool(5, sl.NoSharing)
			b.AddRef(6, sched)
			refs[i] = b.EndTable()
		}
		vec := b.CreateRefVector(refs)
		b.StartTable(4)
		b.AddUint8(0, uint8(c.Op))
		b.AddRef(1, vec)
		b.AddUint32(2, uint32(c.RNTI))
		b.AddUint32(3, c.SliceID)
		b.Finish(b.EndTable())
		return fbBytes(b)
	default:
		w := newPER(32 + 48*len(c.Slices))
		w.WriteBits(uint64(c.Op), 8)
		w.WriteLength(len(c.Slices))
		for _, sl := range c.Slices {
			w.WriteBits(uint64(sl.ID), 32)
			w.WriteBits(uint64(sl.Kind), 8)
			w.WriteBits(uint64(sl.CapacityQ), 32)
			w.WriteFloat(sl.RateRsv)
			w.WriteFloat(sl.RateRef)
			w.WriteBool(sl.NoSharing)
			w.WriteString(sl.UESched)
		}
		w.WriteBits(uint64(c.RNTI), 16)
		w.WriteBits(uint64(c.SliceID), 32)
		return append([]byte(nil), w.Bytes()...)
	}
}

// DecodeSliceControl parses an SC SM control payload.
func DecodeSliceControl(b []byte) (*SliceControl, error) {
	s, body, err := schemeOf(b)
	if err != nil {
		return nil, err
	}
	switch s {
	case SchemeFB:
		tab, err := flat.GetRoot(body)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		c := &SliceControl{
			Op:      SliceOp(tab.Uint8(0)),
			RNTI:    uint16(tab.Uint32(2)),
			SliceID: tab.Uint32(3),
		}
		n := tab.VectorLen(1)
		if n > 0 {
			c.Slices = make([]SliceParams, n)
			for i := 0; i < n; i++ {
				st := tab.RefVectorAt(1, i)
				c.Slices[i] = SliceParams{
					ID:        st.Uint32(0),
					Kind:      st.Uint8(1),
					CapacityQ: st.Uint32(2),
					RateRsv:   st.Float64(3),
					RateRef:   st.Float64(4),
					NoSharing: st.Bool(5),
					UESched:   st.String(6),
				}
			}
		}
		return c, nil
	default:
		rd := asn1per.NewReader(body)
		c := &SliceControl{}
		v, err := rd.ReadBits(8)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		c.Op = SliceOp(v)
		n, err := rd.ReadCount()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		if n > 0 {
			c.Slices = make([]SliceParams, n)
			for i := range c.Slices {
				sl := &c.Slices[i]
				if v, err = rd.ReadBits(32); err != nil {
					return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
				}
				sl.ID = uint32(v)
				if v, err = rd.ReadBits(8); err != nil {
					return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
				}
				sl.Kind = uint8(v)
				if v, err = rd.ReadBits(32); err != nil {
					return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
				}
				sl.CapacityQ = uint32(v)
				if sl.RateRsv, err = rd.ReadFloat(); err != nil {
					return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
				}
				if sl.RateRef, err = rd.ReadFloat(); err != nil {
					return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
				}
				if sl.NoSharing, err = rd.ReadBool(); err != nil {
					return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
				}
				if sl.UESched, err = rd.ReadString(); err != nil {
					return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
				}
			}
		}
		if v, err = rd.ReadBits(16); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		c.RNTI = uint16(v)
		if v, err = rd.ReadBits(32); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		c.SliceID = uint32(v)
		return c, nil
	}
}

// SliceStatus is the SC SM report payload: the installed configuration
// plus UE associations.
type SliceStatus struct {
	Algo   string // "nvs" or "none"
	Slices []SliceParams
	UEs    []UESliceAssoc
}

// UESliceAssoc reports one UE's slice membership.
type UESliceAssoc struct {
	RNTI    uint16
	SliceID uint32
}

// EncodeSliceStatus serializes an SC SM status report.
func EncodeSliceStatus(s Scheme, st *SliceStatus) []byte {
	switch s {
	case SchemeFB:
		b := newFB(128)
		algo := b.CreateString(st.Algo)
		srefs := make([]uint32, len(st.Slices))
		for i, sl := range st.Slices {
			sched := b.CreateString(sl.UESched)
			b.StartTable(7)
			b.AddUint32(0, sl.ID)
			b.AddUint8(1, sl.Kind)
			b.AddUint32(2, sl.CapacityQ)
			b.AddFloat64(3, sl.RateRsv)
			b.AddFloat64(4, sl.RateRef)
			b.AddBool(5, sl.NoSharing)
			b.AddRef(6, sched)
			srefs[i] = b.EndTable()
		}
		svec := b.CreateRefVector(srefs)
		urefs := make([]uint32, len(st.UEs))
		for i, u := range st.UEs {
			b.StartTable(2)
			b.AddUint32(0, uint32(u.RNTI))
			b.AddUint32(1, u.SliceID)
			urefs[i] = b.EndTable()
		}
		uvec := b.CreateRefVector(urefs)
		b.StartTable(3)
		b.AddRef(0, algo)
		b.AddRef(1, svec)
		b.AddRef(2, uvec)
		b.Finish(b.EndTable())
		return fbBytes(b)
	default:
		w := newPER(128)
		w.WriteString(st.Algo)
		w.WriteLength(len(st.Slices))
		for _, sl := range st.Slices {
			w.WriteBits(uint64(sl.ID), 32)
			w.WriteBits(uint64(sl.Kind), 8)
			w.WriteBits(uint64(sl.CapacityQ), 32)
			w.WriteFloat(sl.RateRsv)
			w.WriteFloat(sl.RateRef)
			w.WriteBool(sl.NoSharing)
			w.WriteString(sl.UESched)
		}
		w.WriteLength(len(st.UEs))
		for _, u := range st.UEs {
			w.WriteBits(uint64(u.RNTI), 16)
			w.WriteBits(uint64(u.SliceID), 32)
		}
		return append([]byte(nil), w.Bytes()...)
	}
}

// DecodeSliceStatus parses an SC SM status report.
func DecodeSliceStatus(b []byte) (*SliceStatus, error) {
	s, body, err := schemeOf(b)
	if err != nil {
		return nil, err
	}
	switch s {
	case SchemeFB:
		tab, err := flat.GetRoot(body)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		st := &SliceStatus{Algo: tab.String(0)}
		n := tab.VectorLen(1)
		if n > 0 {
			st.Slices = make([]SliceParams, n)
			for i := 0; i < n; i++ {
				t := tab.RefVectorAt(1, i)
				st.Slices[i] = SliceParams{
					ID:        t.Uint32(0),
					Kind:      t.Uint8(1),
					CapacityQ: t.Uint32(2),
					RateRsv:   t.Float64(3),
					RateRef:   t.Float64(4),
					NoSharing: t.Bool(5),
					UESched:   t.String(6),
				}
			}
		}
		m := tab.VectorLen(2)
		if m > 0 {
			st.UEs = make([]UESliceAssoc, m)
			for i := 0; i < m; i++ {
				t := tab.RefVectorAt(2, i)
				st.UEs[i] = UESliceAssoc{RNTI: uint16(t.Uint32(0)), SliceID: t.Uint32(1)}
			}
		}
		return st, nil
	default:
		rd := asn1per.NewReader(body)
		st := &SliceStatus{}
		if st.Algo, err = rd.ReadString(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		n, err := rd.ReadCount()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		if n > 0 {
			st.Slices = make([]SliceParams, n)
			for i := range st.Slices {
				sl := &st.Slices[i]
				var v uint64
				if v, err = rd.ReadBits(32); err != nil {
					return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
				}
				sl.ID = uint32(v)
				if v, err = rd.ReadBits(8); err != nil {
					return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
				}
				sl.Kind = uint8(v)
				if v, err = rd.ReadBits(32); err != nil {
					return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
				}
				sl.CapacityQ = uint32(v)
				if sl.RateRsv, err = rd.ReadFloat(); err != nil {
					return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
				}
				if sl.RateRef, err = rd.ReadFloat(); err != nil {
					return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
				}
				if sl.NoSharing, err = rd.ReadBool(); err != nil {
					return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
				}
				if sl.UESched, err = rd.ReadString(); err != nil {
					return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
				}
			}
		}
		m, err := rd.ReadCount()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		if m > 0 {
			st.UEs = make([]UESliceAssoc, m)
			for i := range st.UEs {
				v, err := rd.ReadBits(16)
				if err != nil {
					return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
				}
				st.UEs[i].RNTI = uint16(v)
				if v, err = rd.ReadBits(32); err != nil {
					return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
				}
				st.UEs[i].SliceID = uint32(v)
			}
		}
		return st, nil
	}
}
