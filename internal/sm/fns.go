package sm

import (
	"fmt"
	"sync"

	"flexric/internal/agent"
	"flexric/internal/e2ap"
	"flexric/internal/ran"
)

// This file implements the agent-side RAN functions for the shipped SMs:
// the bundle of "pre-defined RAN functions that implement a set of SMs"
// of §3, bound to the simulated user plane. Each function implements
// agent.RANFunction; periodic reporters additionally implement Ticker and
// are driven by the base station's slot loop.

// Ticker is implemented by RAN functions that emit periodic reports;
// the base station integration calls Tick once per TTI.
type Ticker interface {
	Tick(now int64)
}

// TickAll drives every Ticker in fns.
func TickAll(fns []agent.RANFunction, now int64) {
	for _, fn := range fns {
		if t, ok := fn.(Ticker); ok {
			t.Tick(now)
		}
	}
}

// Visibility gates which UEs a controller may see (§4.1.2); *agent.Agent
// implements it. A nil Visibility exposes everything.
type Visibility interface {
	UEVisible(ctrl agent.ControllerID, rnti uint16) bool
}

func visible(v Visibility, ctrl agent.ControllerID, rnti uint16) bool {
	if v == nil {
		return true
	}
	return v.UEVisible(ctrl, rnti)
}

type subKey struct {
	ctrl agent.ControllerID
	req  e2ap.RequestID
}

type subState struct {
	tx       agent.IndicationSender
	actionID uint8
	periodMS int64
	nextDue  int64
	// batch coalesces multi-payload reports (one per UE shard) into a
	// single transport operation; lazily created when tx supports it.
	batch *agent.IndicationBatch
}

// StatsFunction is a generic periodic-report RAN function: the shared
// machinery of the MAC/RLC/PDCP/TC/KPM monitoring SMs. The build
// callback produces the indication payload(s) for one controller.
type StatsFunction struct {
	def   e2ap.RANFunctionItem
	build func(ctrl agent.ControllerID, now int64) [][]byte

	mu   sync.Mutex
	subs map[subKey]*subState
}

// NewStatsFunction returns a periodic reporter with the given identity.
func NewStatsFunction(id uint16, oid string, build func(ctrl agent.ControllerID, now int64) [][]byte) *StatsFunction {
	return &StatsFunction{
		def:   e2ap.RANFunctionItem{ID: id, Revision: 1, OID: oid},
		build: build,
		subs:  make(map[subKey]*subState),
	}
}

// Definition implements agent.RANFunction.
func (f *StatsFunction) Definition() e2ap.RANFunctionItem { return f.def }

// OnSubscription implements agent.RANFunction: the event trigger carries
// the report period.
func (f *StatsFunction) OnSubscription(ctrl agent.ControllerID, req *e2ap.SubscriptionRequest, tx agent.IndicationSender) error {
	trig, err := DecodeTrigger(req.EventTrigger)
	if err != nil {
		return err
	}
	if trig.PeriodMS == 0 {
		return fmt.Errorf("sm: zero report period")
	}
	actionID := uint8(0)
	if len(req.Actions) > 0 {
		actionID = req.Actions[0].ID
	}
	f.mu.Lock()
	f.subs[subKey{ctrl, req.RequestID}] = &subState{
		tx:       tx,
		actionID: actionID,
		periodMS: int64(trig.PeriodMS),
	}
	f.mu.Unlock()
	return nil
}

// OnSubscriptionDelete implements agent.RANFunction.
func (f *StatsFunction) OnSubscriptionDelete(ctrl agent.ControllerID, req *e2ap.SubscriptionDeleteRequest) error {
	key := subKey{ctrl, req.RequestID}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.subs[key]; !ok {
		return fmt.Errorf("sm: unknown subscription %v", req.RequestID)
	}
	delete(f.subs, key)
	return nil
}

// OnControl implements agent.RANFunction: monitoring SMs have no control
// endpoint.
func (f *StatsFunction) OnControl(agent.ControllerID, *e2ap.ControlRequest) ([]byte, error) {
	return nil, fmt.Errorf("sm: %d is a monitoring SM", f.def.ID)
}

// Tick implements Ticker: emits due reports.
func (f *StatsFunction) Tick(now int64) {
	f.mu.Lock()
	type due struct {
		st   *subState
		ctrl agent.ControllerID
	}
	var dues []due
	for k, st := range f.subs {
		if now >= st.nextDue {
			st.nextDue = now + st.periodMS
			dues = append(dues, due{st, k.ctrl})
		}
	}
	f.mu.Unlock()
	for _, d := range dues {
		payloads := f.build(d.ctrl, now)
		if len(payloads) > 1 {
			if d.st.batch == nil {
				if bs, ok := d.st.tx.(agent.BatchIndicationSender); ok {
					d.st.batch = bs.NewBatch()
				}
			}
			if b := d.st.batch; b != nil {
				for _, payload := range payloads {
					_ = b.Add(d.st.actionID, e2ap.IndicationReport, nil, payload)
				}
				_ = b.Flush()
				continue
			}
		}
		for _, payload := range payloads {
			_ = d.st.tx.SendIndication(d.st.actionID, e2ap.IndicationReport, nil, payload)
		}
	}
}

// Subscriptions reports the number of active subscriptions.
func (f *StatsFunction) Subscriptions() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.subs)
}

// NewMACStats returns the MAC monitoring SM bound to a cell. Reports are
// built per UE shard — each shard's UEs become one indication payload
// (same wire format, same CellTimeMS) so large cells stream as a batch
// of bounded messages instead of one monolithic report; a cell with no
// visible UEs still emits one empty report as a heartbeat.
func NewMACStats(cell *ran.Cell, scheme Scheme, vis Visibility) *StatsFunction {
	return NewStatsFunction(IDMACStats, "1.3.6.1.4.1.53148.1.2.2.142",
		func(ctrl agent.ControllerID, now int64) [][]byte {
			var out [][]byte
			for si := 0; si < cell.NumShards(); si++ {
				rep := &MACReport{CellTimeMS: now}
				cell.WithShardUEs(si, func(ues []*ran.UE) {
					for _, u := range ues {
						if !visible(vis, ctrl, u.RNTI) {
							continue
						}
						m := u.MACStats()
						rep.UEs = append(rep.UEs, MACUEEntry{
							RNTI:          m.RNTI,
							CQI:           uint8(m.CQI),
							MCS:           uint8(m.MCS),
							RBsUsed:       m.RBsUsed,
							TxBits:        m.TxBits,
							ThroughputBps: m.ThroughputBps,
						})
					}
				})
				if len(rep.UEs) > 0 {
					out = append(out, EncodeMACReport(scheme, rep))
				}
			}
			if len(out) == 0 {
				out = [][]byte{EncodeMACReport(scheme, &MACReport{CellTimeMS: now})}
			}
			return out
		})
}

// NewRLCStats returns the RLC monitoring SM bound to a cell, reporting
// per UE shard like NewMACStats.
func NewRLCStats(cell *ran.Cell, scheme Scheme, vis Visibility) *StatsFunction {
	return NewStatsFunction(IDRLCStats, "1.3.6.1.4.1.53148.1.2.2.143",
		func(ctrl agent.ControllerID, now int64) [][]byte {
			var out [][]byte
			for si := 0; si < cell.NumShards(); si++ {
				rep := &RLCReport{CellTimeMS: now}
				cell.WithShardUEs(si, func(ues []*ran.UE) {
					for _, u := range ues {
						if !visible(vis, ctrl, u.RNTI) {
							continue
						}
						st := u.RLC().Stats()
						rep.UEs = append(rep.UEs, RLCUEEntry{
							RNTI:        u.RNTI,
							TxPackets:   st.TxPackets,
							TxBytes:     st.TxBytes,
							RxPackets:   st.RxPackets,
							RxBytes:     st.RxBytes,
							DropPackets: st.DropPackets,
							DropBytes:   st.DropBytes,
							BufferBytes: uint64(st.BufferBytes),
							BufferPkts:  uint64(st.BufferPkts),
							SojournMS:   u.RLC().OldestSojournMS(now),
						})
					}
				})
				if len(rep.UEs) > 0 {
					out = append(out, EncodeRLCReport(scheme, rep))
				}
			}
			if len(out) == 0 {
				out = [][]byte{EncodeRLCReport(scheme, &RLCReport{CellTimeMS: now})}
			}
			return out
		})
}

// NewPDCPStats returns the PDCP monitoring SM bound to a cell, reporting
// per UE shard like NewMACStats.
func NewPDCPStats(cell *ran.Cell, scheme Scheme, vis Visibility) *StatsFunction {
	return NewStatsFunction(IDPDCPStats, "1.3.6.1.4.1.53148.1.2.2.144",
		func(ctrl agent.ControllerID, now int64) [][]byte {
			var out [][]byte
			for si := 0; si < cell.NumShards(); si++ {
				rep := &PDCPReport{CellTimeMS: now}
				cell.WithShardUEs(si, func(ues []*ran.UE) {
					for _, u := range ues {
						if !visible(vis, ctrl, u.RNTI) {
							continue
						}
						st := u.PDCPStats()
						rep.UEs = append(rep.UEs, PDCPUEEntry{
							RNTI:      u.RNTI,
							TxPackets: st.TxPackets,
							TxBytes:   st.TxBytes,
						})
					}
				})
				if len(rep.UEs) > 0 {
					out = append(out, EncodePDCPReport(scheme, rep))
				}
			}
			if len(out) == 0 {
				out = [][]byte{EncodePDCPReport(scheme, &PDCPReport{CellTimeMS: now})}
			}
			return out
		})
}

// NewTCStats returns the TC monitoring SM (one report per UE per period).
func NewTCStats(cell *ran.Cell, scheme Scheme, vis Visibility) *StatsFunction {
	return NewStatsFunction(IDTrafficCtrl+100, "1.3.6.1.4.1.53148.1.2.2.246",
		func(ctrl agent.ControllerID, now int64) [][]byte {
			var out [][]byte
			cell.WithUEs(func(ues []*ran.UE) {
				for _, u := range ues {
					if !visible(vis, ctrl, u.RNTI) {
						continue
					}
					st := u.TC().Stats()
					rep := &TCReport{
						CellTimeMS: now,
						RNTI:       u.RNTI,
						Active:     st.Mode == "active",
						Pacer:      uint8(st.Pacer),
						Filters:    uint32(st.Filters),
					}
					for _, q := range st.Queues {
						rep.Queues = append(rep.Queues, TCQueueEntry{
							ID:          uint32(q.ID),
							EnqPackets:  q.EnqPackets,
							EnqBytes:    q.EnqBytes,
							DeqPackets:  q.DeqPackets,
							DeqBytes:    q.DeqBytes,
							DropPackets: q.DropPackets,
							BufferBytes: uint64(q.BufferBytes),
							BufferPkts:  uint64(q.BufferPkts),
							SojournMS:   q.SojournMS,
						})
					}
					out = append(out, EncodeTCReport(scheme, rep))
				}
			})
			return out
		})
}

// NewKPM returns an O-RAN-KPM-style SM reporting cell aggregates.
func NewKPM(cell *ran.Cell, scheme Scheme) *StatsFunction {
	return NewStatsFunction(IDKPM, "1.3.6.1.4.1.53148.1.2.2.147",
		func(ctrl agent.ControllerID, now int64) [][]byte {
			rep := &KPMReport{CellTimeMS: now, GranularityMS: 1}
			nUE := 0.0
			cell.WithUEs(func(ues []*ran.UE) { nUE = float64(len(ues)) })
			rep.Measurements = []KPMMeasurement{
				{Name: "DRB.UEThpDl", Value: float64(cell.TotalTxBits())},
				{Name: "RRC.ConnMean", Value: nUE},
			}
			return [][]byte{EncodeKPMReport(scheme, rep)}
		})
}

// HWFunction is the Hello-World ping SM: controls are echoed back as
// indications to the controller's active subscription.
type HWFunction struct {
	mu      sync.Mutex
	senders map[agent.ControllerID]agent.IndicationSender
}

// NewHW returns the Hello-World SM.
func NewHW() *HWFunction {
	return &HWFunction{senders: make(map[agent.ControllerID]agent.IndicationSender)}
}

// Definition implements agent.RANFunction.
func (f *HWFunction) Definition() e2ap.RANFunctionItem {
	return e2ap.RANFunctionItem{ID: IDHelloWorld, Revision: 1, OID: "1.3.6.1.4.1.53148.1.2.2.140"}
}

// OnSubscription implements agent.RANFunction.
func (f *HWFunction) OnSubscription(ctrl agent.ControllerID, req *e2ap.SubscriptionRequest, tx agent.IndicationSender) error {
	f.mu.Lock()
	f.senders[ctrl] = tx
	f.mu.Unlock()
	return nil
}

// OnSubscriptionDelete implements agent.RANFunction.
func (f *HWFunction) OnSubscriptionDelete(ctrl agent.ControllerID, req *e2ap.SubscriptionDeleteRequest) error {
	f.mu.Lock()
	delete(f.senders, ctrl)
	f.mu.Unlock()
	return nil
}

// OnControl implements agent.RANFunction: echo the ping as an indication.
func (f *HWFunction) OnControl(ctrl agent.ControllerID, req *e2ap.ControlRequest) ([]byte, error) {
	f.mu.Lock()
	tx := f.senders[ctrl]
	f.mu.Unlock()
	if tx == nil {
		return nil, fmt.Errorf("sm: hw: no subscription from controller %d", ctrl)
	}
	if err := tx.SendIndication(1, e2ap.IndicationReport, req.Header, req.Payload); err != nil {
		return nil, err
	}
	return nil, nil
}

// SliceCtrlFunction is the SC SM bound to a cell.
type SliceCtrlFunction struct {
	*StatsFunction // periodic SliceStatus reports
	cell           *ran.Cell
}

// NewSliceCtrl returns the slicing control SM.
func NewSliceCtrl(cell *ran.Cell, scheme Scheme) *SliceCtrlFunction {
	stats := NewStatsFunction(IDSliceCtrl, "1.3.6.1.4.1.53148.1.2.2.145",
		func(ctrl agent.ControllerID, now int64) [][]byte {
			st := &SliceStatus{Algo: cell.SliceMode().String(), Slices: ParamsFromNVS(cell.Slices())}
			cell.WithUEs(func(ues []*ran.UE) {
				for _, u := range ues {
					st.UEs = append(st.UEs, UESliceAssoc{RNTI: u.RNTI, SliceID: u.SliceID})
				}
			})
			return [][]byte{EncodeSliceStatus(scheme, st)}
		})
	return &SliceCtrlFunction{StatsFunction: stats, cell: cell}
}

// OnControl implements agent.RANFunction: apply slice configuration. The
// SM performs admission control so controller requests are conflict-free
// (§4.1.2: "it is the SM ... to perform sufficient admission control").
func (f *SliceCtrlFunction) OnControl(ctrl agent.ControllerID, req *e2ap.ControlRequest) ([]byte, error) {
	c, err := DecodeSliceControl(req.Payload)
	if err != nil {
		return nil, err
	}
	switch c.Op {
	case OpConfigureSlices:
		return nil, f.cell.ConfigureSlices(ToNVS(c.Slices))
	case OpAssociateUE:
		return nil, f.cell.AssociateUE(c.RNTI, c.SliceID)
	case OpDisableSlicing:
		f.cell.DisableSlicing()
		return nil, nil
	default:
		return nil, fmt.Errorf("sm: unknown slice op %d", c.Op)
	}
}

// TCCtrlFunction is the TC SM bound to a cell.
type TCCtrlFunction struct {
	*StatsFunction
	cell   *ran.Cell
	scheme Scheme
}

// NewTCCtrl returns the traffic control SM (control + per-UE reports).
func NewTCCtrl(cell *ran.Cell, scheme Scheme, vis Visibility) *TCCtrlFunction {
	stats := NewTCStats(cell, scheme, vis)
	stats.def = e2ap.RANFunctionItem{ID: IDTrafficCtrl, Revision: 1, OID: "1.3.6.1.4.1.53148.1.2.2.146"}
	return &TCCtrlFunction{StatsFunction: stats, cell: cell, scheme: scheme}
}

// OnControl implements agent.RANFunction: queue/filter/pacer management.
func (f *TCCtrlFunction) OnControl(ctrl agent.ControllerID, req *e2ap.ControlRequest) ([]byte, error) {
	c, err := DecodeTCControl(req.Payload)
	if err != nil {
		return nil, err
	}
	var outcome []byte
	err = f.cell.WithUE(c.RNTI, func(u *ran.UE) error {
		switch c.Op {
		case OpAddQueue:
			q := u.TC().AddQueue()
			outcome = EncodeTCOutcome(f.scheme, &TCOutcome{Queue: uint32(q)})
			return nil
		case OpRemoveQueue:
			return u.TC().RemoveQueue(int(c.Queue), f.cell.Now())
		case OpAddFilter:
			return u.TC().AddFilter(ran.TCFilter{Match: c.Match(), Queue: int(c.Queue)})
		case OpSetPacer:
			u.TC().SetPacer(ran.PacerKind(c.Pacer), int64(c.PacerTargetMS))
			return nil
		default:
			return fmt.Errorf("sm: unknown TC op %d", c.Op)
		}
	})
	return outcome, err
}

// RRCFunction is the RRC UE-notification SM: it emits attach/detach
// events to subscribed controllers.
type RRCFunction struct {
	scheme Scheme

	mu      sync.Mutex
	senders map[subKey]agent.IndicationSender
	vis     Visibility
}

// NewRRC returns the RRC SM and hooks it into the cell's attach events.
func NewRRC(cell *ran.Cell, scheme Scheme, vis Visibility) *RRCFunction {
	f := &RRCFunction{scheme: scheme, senders: make(map[subKey]agent.IndicationSender), vis: vis}
	cell.OnUEAttach(func(ue *ran.UE) {
		f.emit(&RRCEvent{Kind: RRCAttach, RNTI: ue.RNTI, PLMNID: ue.PLMNID, IMSI: ue.IMSI})
	})
	return f
}

// Definition implements agent.RANFunction.
func (f *RRCFunction) Definition() e2ap.RANFunctionItem {
	return e2ap.RANFunctionItem{ID: IDRRC, Revision: 1, OID: "1.3.6.1.4.1.53148.1.2.2.148"}
}

// OnSubscription implements agent.RANFunction.
func (f *RRCFunction) OnSubscription(ctrl agent.ControllerID, req *e2ap.SubscriptionRequest, tx agent.IndicationSender) error {
	f.mu.Lock()
	f.senders[subKey{ctrl, req.RequestID}] = tx
	f.mu.Unlock()
	return nil
}

// OnSubscriptionDelete implements agent.RANFunction.
func (f *RRCFunction) OnSubscriptionDelete(ctrl agent.ControllerID, req *e2ap.SubscriptionDeleteRequest) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	key := subKey{ctrl, req.RequestID}
	if _, ok := f.senders[key]; !ok {
		return fmt.Errorf("sm: unknown subscription %v", req.RequestID)
	}
	delete(f.senders, key)
	return nil
}

// OnControl implements agent.RANFunction.
func (f *RRCFunction) OnControl(agent.ControllerID, *e2ap.ControlRequest) ([]byte, error) {
	return nil, fmt.Errorf("sm: rrc is a notification SM")
}

func (f *RRCFunction) emit(ev *RRCEvent) {
	payload := EncodeRRCEvent(f.scheme, ev)
	f.mu.Lock()
	type dst struct {
		tx   agent.IndicationSender
		ctrl agent.ControllerID
	}
	var dsts []dst
	for k, tx := range f.senders {
		dsts = append(dsts, dst{tx, k.ctrl})
	}
	f.mu.Unlock()
	for _, d := range dsts {
		if visible(f.vis, d.ctrl, ev.RNTI) {
			_ = d.tx.SendIndication(1, e2ap.IndicationReport, nil, payload)
		}
	}
}
