package sm_test

import (
	"sync/atomic"
	"testing"
	"time"

	"flexric/internal/agent"
	"flexric/internal/e2ap"
	"flexric/internal/nvs"
	"flexric/internal/ran"
	"flexric/internal/server"
	"flexric/internal/sm"
	"flexric/internal/transport"
)

// testBS bundles a simulated base station with a FlexRIC agent exposing
// the full SM bundle, the composition of Fig. 3.
type testBS struct {
	cell  *ran.Cell
	agent *agent.Agent
	fns   []agent.RANFunction
	stop  chan struct{}
	done  chan struct{}
}

func startBS(t *testing.T, addr string, scheme sm.Scheme) *testBS {
	t.Helper()
	cell, err := ran.NewCell(ran.PHYConfig{RAT: ran.RAT4G, NumRB: 25})
	if err != nil {
		t.Fatal(err)
	}
	a := agent.New(agent.Config{
		NodeID: e2ap.GlobalE2NodeID{PLMN: e2ap.PLMN{MCC: 208, MNC: 95}, Type: e2ap.NodeENB, NodeID: 1},
	})
	bs := &testBS{cell: cell, agent: a, stop: make(chan struct{}), done: make(chan struct{})}
	bs.fns = []agent.RANFunction{
		sm.NewMACStats(cell, scheme, a),
		sm.NewRLCStats(cell, scheme, a),
		sm.NewPDCPStats(cell, scheme, a),
		sm.NewSliceCtrl(cell, scheme),
		sm.NewTCCtrl(cell, scheme, a),
		sm.NewRRC(cell, scheme, a),
		sm.NewKPM(cell, scheme),
		sm.NewHW(),
	}
	for _, fn := range bs.fns {
		if err := a.RegisterFunction(fn); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Connect(addr); err != nil {
		t.Fatal(err)
	}
	// Real-time slot loop: 1 TTI per iteration, yielding so the test
	// stays fast while preserving slot semantics.
	go func() {
		defer close(bs.done)
		for {
			select {
			case <-bs.stop:
				return
			default:
			}
			cell.Step(1)
			sm.TickAll(bs.fns, cell.Now())
			time.Sleep(50 * time.Microsecond)
		}
	}()
	t.Cleanup(func() {
		close(bs.stop)
		<-bs.done
		a.Close()
	})
	return bs
}

func startRIC(t *testing.T) (*server.Server, string) {
	t.Helper()
	s := server.New(server.Config{Transport: transport.KindSCTPish})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, addr
}

func waitAgents(t *testing.T, s *server.Server, n int) server.AgentID {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if ags := s.Agents(); len(ags) >= n {
			return ags[0].ID
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("agents did not connect")
	return 0
}

func TestMACStatsEndToEnd(t *testing.T) {
	for _, scheme := range []sm.Scheme{sm.SchemeASN, sm.SchemeFB} {
		t.Run(scheme.String(), func(t *testing.T) {
			s, addr := startRIC(t)
			bs := startBS(t, addr, scheme)
			if _, err := bs.cell.Attach(1, "imsi-1", "208.95", 28); err != nil {
				t.Fatal(err)
			}
			if err := bs.cell.AddTraffic(1, &ran.Saturating{Flow: ran.FiveTuple{DstIP: 1}, RateBytesPerMS: 10000}); err != nil {
				t.Fatal(err)
			}
			agentID := waitAgents(t, s, 1)

			var reports atomic.Int64
			var lastTx atomic.Uint64
			_, err := s.Subscribe(agentID, sm.IDMACStats,
				sm.EncodeTrigger(scheme, sm.Trigger{PeriodMS: 1}),
				[]e2ap.Action{{ID: 1, Type: e2ap.ActionReport}},
				server.SubscriptionCallbacks{
					OnIndication: func(ev server.IndicationEvent) {
						rep, err := sm.DecodeMACReport(ev.Env.IndicationPayload())
						if err != nil {
							t.Errorf("decode: %v", err)
							return
						}
						if len(rep.UEs) == 1 && rep.UEs[0].RNTI == 1 {
							lastTx.Store(rep.UEs[0].TxBits)
							reports.Add(1)
						}
					},
				})
			if err != nil {
				t.Fatal(err)
			}
			deadline := time.Now().Add(10 * time.Second)
			for time.Now().Before(deadline) && (reports.Load() < 50 || lastTx.Load() == 0) {
				time.Sleep(5 * time.Millisecond)
			}
			if reports.Load() < 50 {
				t.Fatalf("only %d reports", reports.Load())
			}
			if lastTx.Load() == 0 {
				t.Fatal("MAC TxBits never became nonzero")
			}
		})
	}
}

func TestSliceControlEndToEnd(t *testing.T) {
	s, addr := startRIC(t)
	bs := startBS(t, addr, sm.SchemeASN)
	if _, err := bs.cell.Attach(1, "", "208.95", 28); err != nil {
		t.Fatal(err)
	}
	agentID := waitAgents(t, s, 1)

	apply := func(c *sm.SliceControl) error {
		errCh := make(chan error, 1)
		if err := s.Control(agentID, sm.IDSliceCtrl, nil,
			sm.EncodeSliceControl(sm.SchemeASN, c), true,
			func(_ []byte, err error) { errCh <- err }); err != nil {
			return err
		}
		select {
		case err := <-errCh:
			return err
		case <-time.After(5 * time.Second):
			t.Fatal("control timeout")
			return nil
		}
	}

	cfg := &sm.SliceControl{
		Op: sm.OpConfigureSlices,
		Slices: sm.ParamsFromNVS([]nvs.Config{
			{ID: 1, Kind: nvs.KindCapacity, Capacity: 0.5, UESched: "pf"},
			{ID: 2, Kind: nvs.KindCapacity, Capacity: 0.5, UESched: "pf"},
		}),
	}
	if err := apply(cfg); err != nil {
		t.Fatalf("configure: %v", err)
	}
	if bs.cell.SliceMode() != ran.SliceNVS || len(bs.cell.Slices()) != 2 {
		t.Fatalf("cell not sliced: %v %d", bs.cell.SliceMode(), len(bs.cell.Slices()))
	}
	if err := apply(&sm.SliceControl{Op: sm.OpAssociateUE, RNTI: 1, SliceID: 2}); err != nil {
		t.Fatalf("associate: %v", err)
	}
	if bs.cell.UE(1).SliceID != 2 {
		t.Fatal("association not applied")
	}
	// Overbooked configuration must fail admission control at the SM.
	bad := &sm.SliceControl{
		Op: sm.OpConfigureSlices,
		Slices: sm.ParamsFromNVS([]nvs.Config{
			{ID: 1, Kind: nvs.KindCapacity, Capacity: 0.7},
			{ID: 2, Kind: nvs.KindCapacity, Capacity: 0.7},
		}),
	}
	if err := apply(bad); err == nil {
		t.Fatal("overbooked slice set must be rejected")
	}
	if err := apply(&sm.SliceControl{Op: sm.OpDisableSlicing}); err != nil {
		t.Fatalf("disable: %v", err)
	}
	if bs.cell.SliceMode() != ran.SliceNone {
		t.Fatal("slicing not disabled")
	}
}

func TestTCControlEndToEnd(t *testing.T) {
	s, addr := startRIC(t)
	bs := startBS(t, addr, sm.SchemeFB)
	if _, err := bs.cell.Attach(1, "", "208.95", 28); err != nil {
		t.Fatal(err)
	}
	agentID := waitAgents(t, s, 1)

	do := func(c *sm.TCControl) ([]byte, error) {
		type res struct {
			out []byte
			err error
		}
		ch := make(chan res, 1)
		if err := s.Control(agentID, sm.IDTrafficCtrl, nil,
			sm.EncodeTCControl(sm.SchemeFB, c), true,
			func(out []byte, err error) { ch <- res{out, err} }); err != nil {
			return nil, err
		}
		select {
		case r := <-ch:
			return r.out, r.err
		case <-time.After(5 * time.Second):
			t.Fatal("control timeout")
			return nil, nil
		}
	}

	out, err := do(&sm.TCControl{Op: sm.OpAddQueue, RNTI: 1})
	if err != nil {
		t.Fatalf("add queue: %v", err)
	}
	oc, err := sm.DecodeTCOutcome(out)
	if err != nil || oc.Queue != 1 {
		t.Fatalf("outcome: %+v %v", oc, err)
	}
	if _, err := do(&sm.TCControl{
		Op: sm.OpAddFilter, RNTI: 1, Queue: oc.Queue,
		DstPort: 5060, Proto: 17, MatchProto: true,
	}); err != nil {
		t.Fatalf("add filter: %v", err)
	}
	if _, err := do(&sm.TCControl{Op: sm.OpSetPacer, RNTI: 1, Pacer: uint8(ran.PacerBDP), PacerTargetMS: 4}); err != nil {
		t.Fatalf("set pacer: %v", err)
	}
	var st ran.TCStats
	if err := bs.cell.WithUE(1, func(u *ran.UE) error {
		st = u.TC().Stats()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if st.Mode != "active" || len(st.Queues) != 2 || st.Filters != 1 || st.Pacer != ran.PacerBDP {
		t.Fatalf("TC state: %+v", st)
	}
	// Control for an unknown UE fails.
	if _, err := do(&sm.TCControl{Op: sm.OpAddQueue, RNTI: 99}); err == nil {
		t.Fatal("unknown UE must fail")
	}
}

func TestRRCNotificationEndToEnd(t *testing.T) {
	s, addr := startRIC(t)
	bs := startBS(t, addr, sm.SchemeASN)
	agentID := waitAgents(t, s, 1)

	events := make(chan *sm.RRCEvent, 4)
	if _, err := s.Subscribe(agentID, sm.IDRRC,
		sm.EncodeTrigger(sm.SchemeASN, sm.Trigger{PeriodMS: 1}), nil,
		server.SubscriptionCallbacks{
			OnIndication: func(ev server.IndicationEvent) {
				e, err := sm.DecodeRRCEvent(ev.Env.IndicationPayload())
				if err == nil {
					events <- e
				}
			},
		}); err != nil {
		t.Fatal(err)
	}
	// Give the subscription a moment to be admitted before attaching.
	time.Sleep(50 * time.Millisecond)
	if _, err := bs.cell.Attach(33, "imsi-33", "208.95", 20); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-events:
		if e.Kind != sm.RRCAttach || e.RNTI != 33 || e.PLMNID != "208.95" {
			t.Fatalf("event: %+v", e)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no RRC attach notification")
	}
}

func TestHWPingEndToEnd(t *testing.T) {
	s, addr := startRIC(t)
	startBS(t, addr, sm.SchemeASN)
	agentID := waitAgents(t, s, 1)

	pongs := make(chan *sm.HWPing, 4)
	if _, err := s.Subscribe(agentID, sm.IDHelloWorld, sm.EncodeTrigger(sm.SchemeASN, sm.Trigger{PeriodMS: 1}), nil,
		server.SubscriptionCallbacks{
			OnIndication: func(ev server.IndicationEvent) {
				p, err := sm.DecodeHWPing(ev.Env.IndicationPayload())
				if err == nil {
					pongs <- p
				}
			},
		}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	ping := &sm.HWPing{Seq: 7, T0: time.Now().UnixNano(), Data: make([]byte, 100)}
	if err := s.Control(agentID, sm.IDHelloWorld, nil, sm.EncodeHWPing(sm.SchemeASN, ping), false, nil); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-pongs:
		if p.Seq != 7 || p.T0 != ping.T0 {
			t.Fatalf("pong: %+v", p)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no pong")
	}
}

func TestStatsSubscriptionDelete(t *testing.T) {
	s, addr := startRIC(t)
	bs := startBS(t, addr, sm.SchemeASN)
	agentID := waitAgents(t, s, 1)
	macFn := bs.fns[0].(*sm.StatsFunction)

	var count atomic.Int64
	sub, err := s.Subscribe(agentID, sm.IDMACStats,
		sm.EncodeTrigger(sm.SchemeASN, sm.Trigger{PeriodMS: 1}), nil,
		server.SubscriptionCallbacks{
			OnIndication: func(server.IndicationEvent) { count.Add(1) },
		})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && count.Load() < 10 {
		time.Sleep(2 * time.Millisecond)
	}
	if count.Load() < 10 {
		t.Fatal("no reports flowing")
	}
	if macFn.Subscriptions() != 1 {
		t.Fatalf("agent-side subscriptions: %d", macFn.Subscriptions())
	}
	if err := s.Unsubscribe(sub, sm.IDMACStats); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && macFn.Subscriptions() != 0 {
		time.Sleep(2 * time.Millisecond)
	}
	if macFn.Subscriptions() != 0 {
		t.Fatal("agent-side subscription not removed")
	}
	// Reports stop (allow in-flight drain).
	time.Sleep(50 * time.Millisecond)
	before := count.Load()
	time.Sleep(100 * time.Millisecond)
	if count.Load() != before {
		t.Fatal("reports kept flowing after unsubscribe")
	}
}

func TestZeroPeriodRejected(t *testing.T) {
	s, addr := startRIC(t)
	startBS(t, addr, sm.SchemeASN)
	agentID := waitAgents(t, s, 1)
	failed := make(chan e2ap.Cause, 1)
	if _, err := s.Subscribe(agentID, sm.IDMACStats,
		sm.EncodeTrigger(sm.SchemeASN, sm.Trigger{PeriodMS: 0}), nil,
		server.SubscriptionCallbacks{OnFailure: func(c e2ap.Cause) { failed <- c }}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-failed:
	case <-time.After(5 * time.Second):
		t.Fatal("zero period must be rejected")
	}
}
