package transport

import (
	"bytes"
	"sync"
	"testing"
)

// connPair returns a directly connected client/server pair of the given
// kind (no echo goroutine: the tests drive both ends).
func connPair(t *testing.T, kind Kind, addr string) (client, server Conn) {
	t.Helper()
	l, err := Listen(kind, addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	type res struct {
		c   Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := l.Accept()
		ch <- res{c, err}
	}()
	client, err = Dial(kind, l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { r.c.Close() })
	return client, r.c
}

// Both transports promise Send does not retain b: mutating the buffer
// the instant Send returns must never corrupt the frame in flight.
func TestMutateAfterSendDoesNotCorruptFrame(t *testing.T) {
	for i, k := range kinds() {
		t.Run(string(k.kind), func(t *testing.T) {
			client, server := connPair(t, k.kind, k.addr(100+i))
			for round := 0; round < 10; round++ {
				msg := bytes.Repeat([]byte{byte(round + 1)}, 512)
				want := append([]byte(nil), msg...)
				if err := client.Send(msg); err != nil {
					t.Fatal(err)
				}
				for j := range msg {
					msg[j] = 0xEE
				}
				got, err := server.Recv()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("round %d: frame corrupted by post-Send mutation", round)
				}
			}
		})
	}
}

// The same no-retain contract holds for SendBatch on both transports:
// every buffer in the batch is free for reuse the moment the call
// returns, which is what lets the agent's IndicationBatch recycle its
// pooled frames immediately after flushing.
func TestMutateAfterSendBatchDoesNotCorruptFrames(t *testing.T) {
	for i, k := range kinds() {
		t.Run(string(k.kind), func(t *testing.T) {
			client, server := connPair(t, k.kind, k.addr(110+i))
			if _, ok := client.(BatchSender); !ok {
				t.Fatalf("%T does not implement BatchSender", client)
			}
			for round := 0; round < 5; round++ {
				batch := make([][]byte, 8)
				want := make([][]byte, len(batch))
				for j := range batch {
					batch[j] = bytes.Repeat([]byte{byte(round*16 + j + 1)}, 64+97*j)
					want[j] = append([]byte(nil), batch[j]...)
				}
				if err := SendBatch(client, batch); err != nil {
					t.Fatal(err)
				}
				for _, b := range batch {
					for j := range b {
						b[j] = 0xEE
					}
				}
				for j := range want {
					got, err := server.Recv()
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, want[j]) {
						t.Fatalf("round %d frame %d corrupted by post-SendBatch mutation", round, j)
					}
				}
			}
		})
	}
}

// SendBatch must preserve message boundaries and ordering, including
// empty frames, and work through the package-level fallback for plain
// Conns.
func TestSendBatchBoundaries(t *testing.T) {
	for i, k := range kinds() {
		t.Run(string(k.kind), func(t *testing.T) {
			client, server := connPair(t, k.kind, k.addr(120+i))
			msgs := [][]byte{
				[]byte("first"),
				{},
				bytes.Repeat([]byte{0xAB}, 70000),
				[]byte("last"),
			}
			var wg sync.WaitGroup
			wg.Add(1)
			var recvErr error
			got := make([][]byte, 0, len(msgs))
			go func() {
				defer wg.Done()
				for range msgs {
					m, err := server.Recv()
					if err != nil {
						recvErr = err
						return
					}
					got = append(got, append([]byte(nil), m...))
				}
			}()
			if err := SendBatch(client, msgs); err != nil {
				t.Fatal(err)
			}
			wg.Wait()
			if recvErr != nil {
				t.Fatal(recvErr)
			}
			for j := range msgs {
				if !bytes.Equal(got[j], msgs[j]) {
					t.Fatalf("frame %d: got %d bytes, want %d", j, len(got[j]), len(msgs[j]))
				}
			}
		})
	}
}

// sendOnly hides the optional interfaces so the package helpers take
// their fallback paths.
type sendOnly struct{ Conn }

func TestHelpersFallBackOnPlainConn(t *testing.T) {
	client, server := connPair(t, KindPipe, "fallback-pipe")
	plain := sendOnly{client}
	msgs := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}
	if err := SendBatch(plain, msgs); err != nil {
		t.Fatal(err)
	}
	var buf []byte
	for _, want := range msgs {
		got, err := RecvBuf(sendOnly{server}, buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("got %q want %q", got, want)
		}
		buf = got
	}
}

// RecvBuf's recycled loop must survive frames both smaller and larger
// than the recycled buffer, back to back.
func TestRecvBufVaryingSizes(t *testing.T) {
	for i, k := range kinds() {
		t.Run(string(k.kind), func(t *testing.T) {
			client, server := connPair(t, k.kind, k.addr(130+i))
			sizes := []int{100, 70000, 1, 4096, 0, 65536, 33}
			go func() {
				for j, n := range sizes {
					if err := client.Send(bytes.Repeat([]byte{byte(j + 1)}, n)); err != nil {
						return
					}
				}
			}()
			var buf []byte
			for j, n := range sizes {
				got, err := RecvBuf(server, buf)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != n {
					t.Fatalf("frame %d: got %d bytes, want %d", j, len(got), n)
				}
				for _, b := range got {
					if b != byte(j+1) {
						t.Fatalf("frame %d: corrupted contents", j)
					}
				}
				buf = got
			}
		})
	}
}
