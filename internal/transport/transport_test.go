package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

func kinds() []struct {
	kind Kind
	addr func(i int) string
} {
	return []struct {
		kind Kind
		addr func(i int) string
	}{
		{KindSCTPish, func(int) string { return "127.0.0.1:0" }},
		{KindPipe, func(i int) string { return fmt.Sprintf("test-pipe-%d", i) }},
	}
}

// startEcho runs a listener whose first accepted connection echoes every
// message back, and returns the dial address.
func startEcho(t *testing.T, kind Kind, addr string) string {
	t.Helper()
	l, err := Listen(kind, addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c Conn) {
				defer c.Close()
				for {
					m, err := c.Recv()
					if err != nil {
						return
					}
					if err := c.Send(m); err != nil {
						return
					}
				}
			}(c)
		}
	}()
	return l.Addr()
}

func TestEchoRoundTrip(t *testing.T) {
	for i, k := range kinds() {
		t.Run(string(k.kind), func(t *testing.T) {
			addr := startEcho(t, k.kind, k.addr(i))
			c, err := Dial(k.kind, addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			msgs := [][]byte{
				[]byte("hello"),
				bytes.Repeat([]byte{0xAB}, 1500),
				{}, // empty message must preserve its boundary
				bytes.Repeat([]byte{0x01}, 100000),
			}
			for _, m := range msgs {
				if err := c.Send(m); err != nil {
					t.Fatal(err)
				}
			}
			for _, want := range msgs {
				got, err := c.Recv()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("got %d bytes, want %d", len(got), len(want))
				}
			}
		})
	}
}

func TestMessageBoundariesPreserved(t *testing.T) {
	// Many small sends must arrive as exactly as many messages — the SCTP
	// property TCP alone does not give.
	for i, k := range kinds() {
		t.Run(string(k.kind), func(t *testing.T) {
			addr := startEcho(t, k.kind, k.addr(100+i))
			c, err := Dial(k.kind, addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			const n = 200
			for j := 0; j < n; j++ {
				if err := c.Send([]byte{byte(j)}); err != nil {
					t.Fatal(err)
				}
			}
			for j := 0; j < n; j++ {
				m, err := c.Recv()
				if err != nil {
					t.Fatal(err)
				}
				if len(m) != 1 || m[0] != byte(j) {
					t.Fatalf("msg %d: %v", j, m)
				}
			}
		})
	}
}

func TestSenderDoesNotRetainBuffer(t *testing.T) {
	for i, k := range kinds() {
		t.Run(string(k.kind), func(t *testing.T) {
			addr := startEcho(t, k.kind, k.addr(200+i))
			c, err := Dial(k.kind, addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			buf := []byte{1, 2, 3, 4}
			if err := c.Send(buf); err != nil {
				t.Fatal(err)
			}
			buf[0] = 99 // mutate after send
			got, err := c.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if got[0] != 1 {
				t.Fatal("transport retained the sender's buffer")
			}
		})
	}
}

func TestCloseUnblocksRecv(t *testing.T) {
	for i, k := range kinds() {
		t.Run(string(k.kind), func(t *testing.T) {
			addr := startEcho(t, k.kind, k.addr(300+i))
			c, err := Dial(k.kind, addr)
			if err != nil {
				t.Fatal(err)
			}
			errCh := make(chan error, 1)
			go func() {
				_, err := c.Recv()
				errCh <- err
			}()
			time.Sleep(10 * time.Millisecond)
			c.Close()
			select {
			case err := <-errCh:
				if !errors.Is(err, ErrClosed) {
					t.Fatalf("want ErrClosed, got %v", err)
				}
			case <-time.After(2 * time.Second):
				t.Fatal("Recv did not unblock on close")
			}
		})
	}
}

func TestDoubleCloseBothEnds(t *testing.T) {
	l, err := Listen(KindPipe, "double-close")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	srvCh := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			srvCh <- c
		}
	}()
	c, err := Dial(KindPipe, "double-close")
	if err != nil {
		t.Fatal(err)
	}
	srv := <-srvCh
	// Closing both ends, twice each, must not panic.
	c.Close()
	c.Close()
	srv.Close()
	srv.Close()
}

func TestListenerCloseUnblocksAccept(t *testing.T) {
	for i, k := range kinds() {
		t.Run(string(k.kind), func(t *testing.T) {
			l, err := Listen(k.kind, k.addr(400+i))
			if err != nil {
				t.Fatal(err)
			}
			errCh := make(chan error, 1)
			go func() {
				_, err := l.Accept()
				errCh <- err
			}()
			time.Sleep(10 * time.Millisecond)
			l.Close()
			select {
			case err := <-errCh:
				if err == nil {
					t.Fatal("Accept should fail after Close")
				}
			case <-time.After(2 * time.Second):
				t.Fatal("Accept did not unblock")
			}
		})
	}
}

func TestDialUnknownPipe(t *testing.T) {
	if _, err := Dial(KindPipe, "no-such-pipe"); err == nil {
		t.Fatal("dialing unbound pipe must fail")
	}
}

func TestPipeNameReuseAfterClose(t *testing.T) {
	l, err := Listen(KindPipe, "reuse-me")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Listen(KindPipe, "reuse-me"); err == nil {
		t.Fatal("duplicate bind must fail")
	}
	l.Close()
	l2, err := Listen(KindPipe, "reuse-me")
	if err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
	l2.Close()
}

func TestUnknownKind(t *testing.T) {
	if _, err := Listen(Kind("bogus"), "x"); err == nil {
		t.Fatal("unknown listen kind must fail")
	}
	if _, err := Dial(Kind("bogus"), "x"); err == nil {
		t.Fatal("unknown dial kind must fail")
	}
}

func TestOversizeMessageRejected(t *testing.T) {
	addr := startEcho(t, KindSCTPish, "127.0.0.1:0")
	c, err := Dial(KindSCTPish, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	big := make([]byte, MaxMessageSize+1)
	if err := c.Send(big); !errors.Is(err, ErrMessageTooLarge) {
		t.Fatalf("want ErrMessageTooLarge, got %v", err)
	}
}

func TestConcurrentSenders(t *testing.T) {
	// Multiple goroutines sending on one conn must interleave whole
	// messages, never corrupt frames (paper §4.4: "POSIX sockets are
	// thread-safe, and sending messages from multiple threads is also
	// feasible").
	for i, k := range kinds() {
		t.Run(string(k.kind), func(t *testing.T) {
			addr := startEcho(t, k.kind, k.addr(500+i))
			c, err := Dial(k.kind, addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			const senders, per = 8, 50
			var wg sync.WaitGroup
			for s := 0; s < senders; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					msg := bytes.Repeat([]byte{byte(s)}, 64)
					for j := 0; j < per; j++ {
						if err := c.Send(msg); err != nil {
							t.Errorf("send: %v", err)
							return
						}
					}
				}(s)
			}
			recvDone := make(chan struct{})
			go func() {
				defer close(recvDone)
				for j := 0; j < senders*per; j++ {
					m, err := c.Recv()
					if err != nil {
						t.Errorf("recv: %v", err)
						return
					}
					if len(m) != 64 {
						t.Errorf("frame corrupted: %d bytes", len(m))
						return
					}
					for _, b := range m {
						if b != m[0] {
							t.Error("interleaved frame content")
							return
						}
					}
				}
			}()
			wg.Wait()
			select {
			case <-recvDone:
			case <-time.After(5 * time.Second):
				t.Fatal("receiver stalled")
			}
		})
	}
}

func BenchmarkSendRecvSCTPish(b *testing.B) { benchSendRecv(b, KindSCTPish, "127.0.0.1:0") }

func BenchmarkSendRecvPipe(b *testing.B) { benchSendRecv(b, KindPipe, "bench-pipe") }

func benchSendRecv(b *testing.B, kind Kind, addr string) {
	l, err := Listen(kind, addr)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		for {
			m, err := c.Recv()
			if err != nil {
				return
			}
			if err := c.Send(m); err != nil {
				return
			}
		}
	}()
	c, err := Dial(kind, l.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	msg := bytes.Repeat([]byte{0x7E}, 1500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Send(msg); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Recv(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestOversizeFrameHeaderOnRecv drives a malformed frame header (length
// beyond MaxMessageSize) over a raw TCP socket: the receiving side must
// reject it before allocating the claimed buffer.
func TestOversizeFrameHeaderOnRecv(t *testing.T) {
	l, err := Listen(KindSCTPish, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		accepted <- c
	}()
	raw, err := net.Dial("tcp", l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxMessageSize+1)
	if _, err := raw.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	c := <-accepted
	defer c.Close()
	if _, err := c.Recv(); !errors.Is(err, ErrMessageTooLarge) {
		t.Fatalf("want ErrMessageTooLarge, got %v", err)
	}
}

// TestSendRecvAfterClose pins the teardown contract for both transports:
// once a connection is closed locally, Send and Recv return ErrClosed.
func TestSendRecvAfterClose(t *testing.T) {
	for i, k := range kinds() {
		t.Run(string(k.kind), func(t *testing.T) {
			addr := startEcho(t, k.kind, k.addr(700+i))
			c, err := Dial(k.kind, addr)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			if err := c.Send([]byte("after close")); !errors.Is(err, ErrClosed) {
				t.Fatalf("Send after Close: want ErrClosed, got %v", err)
			}
			if _, err := c.Recv(); !errors.Is(err, ErrClosed) {
				t.Fatalf("Recv after Close: want ErrClosed, got %v", err)
			}
		})
	}
}

// TestCloseDuringTraffic closes a connection while senders and a
// receiver are active; every goroutine must unwind with ErrClosed (or a
// cleanly delivered message), never deadlock. Exercised under -race by
// make verify.
func TestCloseDuringTraffic(t *testing.T) {
	for i, k := range kinds() {
		t.Run(string(k.kind), func(t *testing.T) {
			addr := startEcho(t, k.kind, k.addr(800+i))
			c, err := Dial(k.kind, addr)
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			msg := bytes.Repeat([]byte{0xAB}, 256)
			for s := 0; s < 4; s++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						if err := c.Send(msg); err != nil {
							if !errors.Is(err, ErrClosed) {
								t.Errorf("send: %v", err)
							}
							return
						}
					}
				}()
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if _, err := c.Recv(); err != nil {
						if !errors.Is(err, ErrClosed) {
							t.Errorf("recv: %v", err)
						}
						return
					}
				}
			}()
			time.Sleep(20 * time.Millisecond)
			c.Close()
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				t.Fatal("goroutines did not unwind after Close")
			}
		})
	}
}
