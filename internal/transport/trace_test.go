package transport

import (
	"testing"

	"flexric/internal/trace"
)

// TracedSend must record a span exactly when the context is sampled,
// and streamConn must expose its reassembly time via RecvTimer.
func TestTracedSendAndRecvTimer(t *testing.T) {
	if !trace.Enabled {
		t.Skip("tracing compiled out")
	}
	trace.Reset()
	trace.SetSampleEvery(1)
	defer func() {
		trace.SetSampleEvery(0)
		trace.Reset()
	}()

	l, err := Listen(KindSCTPish, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	client, err := Dial(KindSCTPish, l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server := <-accepted
	defer server.Close()

	// Untraced context: no span recorded.
	if err := TracedSend(client, []byte("untraced"), trace.Context{}); err != nil {
		t.Fatal(err)
	}
	if n := len(trace.Snapshot()); n != 0 {
		t.Fatalf("untraced send recorded %d spans", n)
	}

	sp := trace.StartRoot("test.root")
	if err := TracedSend(client, []byte("traced"), sp.Context()); err != nil {
		t.Fatal(err)
	}
	sp.End()

	spans := trace.Snapshot()
	var found bool
	for _, s := range spans {
		if s.Name == "transport.send" && s.Parent == sp.Context().SpanID {
			found = true
		}
	}
	if !found {
		t.Fatalf("no transport.send span under root: %+v", spans)
	}

	rt, ok := server.(RecvTimer)
	if !ok {
		t.Fatal("streamConn must implement RecvTimer")
	}
	for i := 0; i < 2; i++ { // drain both frames
		if _, err := server.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	if rt.LastRecvDuration() <= 0 {
		t.Errorf("LastRecvDuration = %v, want > 0", rt.LastRecvDuration())
	}

	// The pipe transport must NOT implement RecvTimer: it has no
	// reassembly phase to attribute.
	pl, err := Listen(KindPipe, "trace-test-pipe")
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Close()
	go pl.Accept()
	pc, err := Dial(KindPipe, "trace-test-pipe")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	if _, ok := pc.(RecvTimer); ok {
		t.Error("pipe conn must not implement RecvTimer")
	}
}
