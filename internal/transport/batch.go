package transport

// Optional fast-path extensions. Both shipped transports implement them;
// wrappers (resilience, fault injection) forward them so the capability
// survives stacking. Callers use the package helpers SendBatch / RecvBuf,
// which degrade gracefully on connections that only speak the base Conn
// interface — the optional-interface idiom already used by RecvDeadliner
// and RecvTimer. See docs/PERFORMANCE.md for the buffer ownership rules.

// BatchSender is implemented by connections that can transmit several
// messages in one operation. On the stream transport the whole batch —
// every header and payload — goes out in a single vectored write, so a
// TTI's worth of indications costs one syscall instead of N. Like Send,
// SendBatch does not retain any msgs element, and an error may leave the
// batch partially transmitted (on the stream transport the connection
// must then be considered broken, as with any short write).
type BatchSender interface {
	SendBatch(msgs [][]byte) error
}

// BufRecver is implemented by connections that can recycle a previously
// received frame. RecvBuf transfers ownership of dst to the connection:
// after the call the caller must use only the returned slice, which may
// or may not alias dst. Passing nil dst is equivalent to Recv. The
// canonical receive loop is
//
//	buf, err = c.RecvBuf(buf)
//
// which after warm-up receives every frame into a recycled buffer and
// allocates nothing.
type BufRecver interface {
	RecvBuf(dst []byte) ([]byte, error)
}

// SendBatch transmits msgs on c, coalescing them into one operation when
// c implements BatchSender and falling back to sequential Sends
// otherwise. Message boundaries are preserved either way.
func SendBatch(c Conn, msgs [][]byte) error {
	if bs, ok := c.(BatchSender); ok {
		return bs.SendBatch(msgs)
	}
	for _, b := range msgs {
		if err := c.Send(b); err != nil {
			return err
		}
	}
	return nil
}

// RecvBuf receives the next message on c, recycling dst when c
// implements BufRecver. On the fallback path dst is simply dropped for
// the garbage collector; the ownership contract (use only the returned
// slice) holds either way.
func RecvBuf(c Conn, dst []byte) ([]byte, error) {
	if br, ok := c.(BufRecver); ok {
		return br.RecvBuf(dst)
	}
	return c.Recv()
}
