package transport

import (
	"fmt"
	"sync"
	"time"

	"flexric/internal/bufpool"
	"flexric/internal/telemetry"
)

// The pipe transport exchanges messages over in-process channels. It is
// the zero-overhead configuration for co-located controller/agent
// deployments and makes tests deterministic and fast.

// pipeBufDepth bounds in-flight messages per direction, emulating a
// socket buffer: senders block when the peer falls behind.
const pipeBufDepth = 1024

var pipeNS = struct {
	sync.Mutex
	listeners map[string]*pipeListener
}{listeners: make(map[string]*pipeListener)}

type pipeListener struct {
	name   string
	accept chan *pipeConn
	done   chan struct{}
	once   sync.Once
}

func pipeListen(name string) (Listener, error) {
	pipeNS.Lock()
	defer pipeNS.Unlock()
	if _, ok := pipeNS.listeners[name]; ok {
		return nil, fmt.Errorf("transport: pipe %q already bound", name)
	}
	l := &pipeListener{
		name:   name,
		accept: make(chan *pipeConn),
		done:   make(chan struct{}),
	}
	pipeNS.listeners[name] = l
	return l, nil
}

func pipeDial(name string) (Conn, error) {
	pipeNS.Lock()
	l, ok := pipeNS.listeners[name]
	pipeNS.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: no pipe listener %q", name)
	}
	a2b := make(chan []byte, pipeBufDepth)
	b2a := make(chan []byte, pipeBufDepth)
	done := make(chan struct{})
	once := new(sync.Once) // shared: closing either end closes both exactly once
	client := &pipeConn{peer: "pipe:" + name, send: a2b, recv: b2a, done: done, once: once, stats: newConnStats(KindPipe)}
	server := &pipeConn{peer: "pipe-client:" + name, send: b2a, recv: a2b, done: done, once: once, stats: newConnStats(KindPipe)}
	// Closing either end tears down both, so the shared close drops both
	// per-conn telemetry subtrees.
	closeBoth := func() {
		close(done)
		client.stats.close()
		server.stats.close()
	}
	client.closeFn = closeBoth
	server.closeFn = closeBoth
	select {
	case l.accept <- server:
		return client, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

// Accept implements Listener.
func (l *pipeListener) Accept() (Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

// Close implements Listener.
func (l *pipeListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		pipeNS.Lock()
		delete(pipeNS.listeners, l.name)
		pipeNS.Unlock()
	})
	return nil
}

// Addr implements Listener. It returns the pipe name unadorned so the
// result can be passed back to Dial.
func (l *pipeListener) Addr() string { return l.name }

type pipeConn struct {
	peer    string
	send    chan<- []byte
	recv    <-chan []byte
	done    chan struct{}
	once    *sync.Once
	closeFn func()
	stats   connStats

	deadlineMu sync.Mutex
	deadline   time.Time
}

// Send implements Conn. The message is copied (into a pooled buffer the
// receive side can recycle via RecvBuf), matching the socket transport's
// "does not retain b" contract.
func (p *pipeConn) Send(b []byte) error {
	if len(b) > MaxMessageSize {
		return ErrMessageTooLarge
	}
	// A closed conn must refuse sends deterministically: without this
	// check the select below could still win the (buffered) send case
	// after Close.
	select {
	case <-p.done:
		return ErrClosed
	default:
	}
	var t0 time.Time
	if telemetry.Enabled {
		t0 = time.Now()
	}
	msg := bufpool.Get(len(b))
	copy(msg, b)
	select {
	case p.send <- msg:
		if telemetry.Enabled {
			p.stats.sent(len(b), time.Since(t0))
		}
		return nil
	case <-p.done:
		return ErrClosed
	}
}

// SendBatch implements BatchSender. The pipe has no syscall to coalesce,
// so the win is a single closed-check and timestamp for the whole batch;
// semantically it is exactly N Sends.
func (p *pipeConn) SendBatch(msgs [][]byte) error {
	if len(msgs) == 0 {
		return nil
	}
	total := 0
	for _, b := range msgs {
		if len(b) > MaxMessageSize {
			return ErrMessageTooLarge
		}
		total += len(b)
	}
	select {
	case <-p.done:
		return ErrClosed
	default:
	}
	var t0 time.Time
	if telemetry.Enabled {
		t0 = time.Now()
	}
	for _, b := range msgs {
		msg := bufpool.Get(len(b))
		copy(msg, b)
		select {
		case p.send <- msg:
		case <-p.done:
			bufpool.Put(msg)
			return ErrClosed
		}
	}
	if telemetry.Enabled {
		p.stats.sentBatch(len(msgs), total, time.Since(t0))
	}
	return nil
}

// SetRecvDeadline implements RecvDeadliner.
func (p *pipeConn) SetRecvDeadline(t time.Time) error {
	p.deadlineMu.Lock()
	p.deadline = t
	p.deadlineMu.Unlock()
	return nil
}

// Recv implements Conn.
func (p *pipeConn) Recv() ([]byte, error) {
	p.deadlineMu.Lock()
	deadline := p.deadline
	p.deadlineMu.Unlock()
	var timeout <-chan time.Time
	if !deadline.IsZero() {
		// Messages already queued beat an expired deadline, matching the
		// socket transport where buffered data is still readable.
		t := time.NewTimer(time.Until(deadline))
		defer t.Stop()
		timeout = t.C
	}
	select {
	case m := <-p.recv:
		// elapsed < 0: an in-process handoff has no reassembly work, so
		// no receive latency is recorded (see telemetry.go).
		p.stats.received(len(m), -1)
		return m, nil
	case <-p.done:
		// Drain messages that raced with close, as a socket would deliver
		// buffered data before EOF.
		select {
		case m := <-p.recv:
			p.stats.received(len(m), -1)
			return m, nil
		default:
			return nil, ErrClosed
		}
	case <-timeout:
		select {
		case m := <-p.recv:
			p.stats.received(len(m), -1)
			return m, nil
		default:
			return nil, ErrTimeout
		}
	}
}

// RecvBuf implements BufRecver. Messages cross the pipe as pooled
// buffers handed over whole, so recycling means returning the previous
// frame to the pool — where the peer's next Send picks it up — and
// receiving a fresh handoff. This balances Send's pool Get: a steady
// two-party exchange circulates a fixed set of buffers and allocates
// nothing.
func (p *pipeConn) RecvBuf(dst []byte) ([]byte, error) {
	bufpool.Put(dst)
	return p.Recv()
}

// Close implements Conn. Closing either end closes both.
func (p *pipeConn) Close() error {
	p.once.Do(p.closeFn)
	return nil
}

// RemoteAddr implements Conn.
func (p *pipeConn) RemoteAddr() string { return p.peer }
