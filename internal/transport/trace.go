package transport

import (
	"time"

	"flexric/internal/trace"
)

// TracedSend sends b on c, recording a "transport.send" span under tc
// when the message belongs to a sampled trace. The E2 send paths route
// through this helper so the span covers exactly the transport cost
// (framing + write), not encoding.
func TracedSend(c Conn, b []byte, tc trace.Context) error {
	if !trace.Enabled || !tc.Valid() {
		return c.Send(b)
	}
	sp := trace.StartChild(tc, "transport.send")
	err := c.Send(b)
	sp.End()
	return err
}

// RecvTimer is implemented by transports that measure frame reassembly
// time (the sctpish stream transport). Receive loops use it to record a
// retroactive "transport.recv" span once the message's trace context
// has been decoded — the duration is measured before the context is
// known. The pipe transport has no reassembly work and deliberately
// does not implement it.
type RecvTimer interface {
	// LastRecvDuration returns the reassembly duration of the most
	// recent Recv on this connection. Valid only on the goroutine that
	// called Recv, before the next Recv.
	LastRecvDuration() time.Duration
}
