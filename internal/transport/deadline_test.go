package transport

import (
	"errors"
	"testing"
	"time"
)

// Both transports must implement the optional RecvDeadliner interface.
func TestRecvDeadlinerImplemented(t *testing.T) {
	for i, k := range kinds() {
		addr := startEcho(t, k.kind, k.addr(i+700))
		c, err := Dial(k.kind, addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, ok := c.(RecvDeadliner); !ok {
			t.Errorf("%s: Conn does not implement RecvDeadliner", k.kind)
		}
	}
}

// A silent peer must surface as ErrTimeout once a deadline is set, and a
// cleared deadline must restore indefinite blocking.
func TestRecvDeadlineExpires(t *testing.T) {
	for i, k := range kinds() {
		k := k
		t.Run(string(k.kind), func(t *testing.T) {
			addr := startEcho(t, k.kind, k.addr(i+710))
			c, err := Dial(k.kind, addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			rd := c.(RecvDeadliner)
			if err := rd.SetRecvDeadline(time.Now().Add(50 * time.Millisecond)); err != nil {
				t.Fatal(err)
			}
			t0 := time.Now()
			_, err = c.Recv() // the echo peer never speaks first
			if !errors.Is(err, ErrTimeout) {
				t.Fatalf("Recv with silent peer = %v, want ErrTimeout", err)
			}
			if elapsed := time.Since(t0); elapsed > 5*time.Second {
				t.Fatalf("timeout took %v, deadline not honored", elapsed)
			}
		})
	}
}

// A deadline in the future must not interfere with a normal round trip,
// and queued data must win over an already-expired deadline (the socket
// semantics: buffered bytes are readable after timeout).
func TestRecvDeadlineDelivery(t *testing.T) {
	for i, k := range kinds() {
		k := k
		t.Run(string(k.kind), func(t *testing.T) {
			addr := startEcho(t, k.kind, k.addr(i+720))
			c, err := Dial(k.kind, addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			rd := c.(RecvDeadliner)
			if err := rd.SetRecvDeadline(time.Now().Add(5 * time.Second)); err != nil {
				t.Fatal(err)
			}
			msg := []byte("deadline-ok")
			if err := c.Send(msg); err != nil {
				t.Fatal(err)
			}
			got, err := c.Recv()
			if err != nil {
				t.Fatalf("Recv under future deadline: %v", err)
			}
			if string(got) != string(msg) {
				t.Fatalf("got %q, want %q", got, msg)
			}
			// Clearing the deadline restores indefinite blocking.
			if err := rd.SetRecvDeadline(time.Time{}); err != nil {
				t.Fatal(err)
			}
			if err := c.Send(msg); err != nil {
				t.Fatal(err)
			}
			if _, err := c.Recv(); err != nil {
				t.Fatalf("Recv after clearing deadline: %v", err)
			}
		})
	}
}

// DialTimeout must honor the caller's bound instead of the package
// default; an unroutable address should fail within the margin.
func TestDialTimeoutConfigurable(t *testing.T) {
	// 198.51.100.0/24 (TEST-NET-2) is reserved: connection attempts
	// black-hole on real networks, exercising the timeout rather than a
	// refusal. Sandboxed environments may intercept the route, in which
	// case only the "no hang" property is checkable.
	t0 := time.Now()
	c, err := DialTimeout(KindSCTPish, "198.51.100.1:1", 100*time.Millisecond)
	if err == nil {
		c.Close()
		t.Skip("TEST-NET-2 reachable in this environment; timeout not exercisable")
	}
	if elapsed := time.Since(t0); elapsed > 3*time.Second {
		t.Fatalf("DialTimeout(100ms) took %v", elapsed)
	}
}

// Dial must remain the DefaultDialTimeout convenience.
func TestDialDefaultsTimeout(t *testing.T) {
	if DefaultDialTimeout != 5*time.Second {
		t.Fatalf("DefaultDialTimeout = %v, want 5s (the documented seed default)", DefaultDialTimeout)
	}
	addr := startEcho(t, KindSCTPish, "127.0.0.1:0")
	c, err := Dial(KindSCTPish, addr)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
}
