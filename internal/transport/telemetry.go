package transport

import (
	"fmt"
	"sync/atomic"
	"time"

	"flexric/internal/telemetry"
)

// Telemetry: every Conn counts frames and bytes in both directions and
// samples send/receive latency, twice — once under its own subtree
// (transport.<kind>.conn<N>.*, unregistered when the connection closes)
// and once into per-kind aggregates (transport.<kind>.*) that survive
// connection churn. Send latency covers the whole Send call, so lock
// contention between concurrent senders is visible; receive latency
// covers frame reassembly only (header-to-payload completion), not the
// idle wait for the peer, which would otherwise drown the signal in
// inter-arrival time. The pipe transport has no reassembly work and
// records no receive latency.

// connSeq numbers connections process-wide for telemetry scopes.
var connSeq atomic.Uint64

// dirStats is one frames/bytes/latency metric set.
type dirStats struct {
	framesSent, framesRecv *telemetry.Counter
	bytesSent, bytesRecv   *telemetry.Counter
	sendLat, recvLat       *telemetry.Histogram
}

func newDirStats(prefix string) dirStats {
	return dirStats{
		framesSent: telemetry.NewCounter(prefix + ".frames_sent"),
		framesRecv: telemetry.NewCounter(prefix + ".frames_recv"),
		bytesSent:  telemetry.NewCounter(prefix + ".bytes_sent"),
		bytesRecv:  telemetry.NewCounter(prefix + ".bytes_recv"),
		sendLat:    telemetry.NewHistogram(prefix + ".send_latency"),
		recvLat:    telemetry.NewHistogram(prefix + ".recv_latency"),
	}
}

// connStats instruments one Conn: its own subtree plus the per-kind
// aggregate.
type connStats struct {
	scope string // registry prefix of the per-conn subtree
	conn  dirStats
	kind  dirStats
}

func newConnStats(kind Kind) connStats {
	if !telemetry.Enabled {
		return connStats{}
	}
	scope := fmt.Sprintf("transport.%s.conn%d", kind, connSeq.Add(1))
	return connStats{
		scope: scope,
		conn:  newDirStats(scope),
		kind:  newDirStats("transport." + string(kind)),
	}
}

func (s *connStats) sent(n int, elapsed time.Duration) {
	if !telemetry.Enabled {
		return
	}
	s.conn.framesSent.Inc()
	s.kind.framesSent.Inc()
	s.conn.bytesSent.Add(uint64(n))
	s.kind.bytesSent.Add(uint64(n))
	s.conn.sendLat.Observe(elapsed)
	s.kind.sendLat.Observe(elapsed)
}

// sentBatch records a coalesced SendBatch: frames/bytes count every
// message, while the latency histogram gets one observation for the
// whole batch — that is the cost profile batching exists to create.
func (s *connStats) sentBatch(frames, bytes int, elapsed time.Duration) {
	if !telemetry.Enabled {
		return
	}
	s.conn.framesSent.Add(uint64(frames))
	s.kind.framesSent.Add(uint64(frames))
	s.conn.bytesSent.Add(uint64(bytes))
	s.kind.bytesSent.Add(uint64(bytes))
	s.conn.sendLat.Observe(elapsed)
	s.kind.sendLat.Observe(elapsed)
}

func (s *connStats) received(n int, elapsed time.Duration) {
	if !telemetry.Enabled {
		return
	}
	s.conn.framesRecv.Inc()
	s.kind.framesRecv.Inc()
	s.conn.bytesRecv.Add(uint64(n))
	s.kind.bytesRecv.Add(uint64(n))
	if elapsed >= 0 {
		s.conn.recvLat.Observe(elapsed)
		s.kind.recvLat.Observe(elapsed)
	}
}

// close drops the per-conn subtree; the kind aggregates retain the
// connection's contribution.
func (s *connStats) close() {
	if !telemetry.Enabled {
		return
	}
	if s.scope != "" {
		telemetry.Unregister(s.scope)
	}
}
