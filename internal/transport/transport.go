// Package transport provides the message-oriented transport abstraction of
// the FlexRIC SDK (§4.3 item 1: "a wrapper is created to abstract the
// communication interface allowing to easily switch between different
// transport protocols").
//
// O-RAN mandates SCTP for E2. Kernel SCTP is not portable, so the default
// implementation ("sctpish") layers SCTP's relevant semantics — reliable,
// ordered, *message-boundary-preserving* delivery — over TCP with a
// length-prefixed frame header. An in-process pipe transport is provided
// for tests and for single-process deployments where a controller and its
// agents are co-located (the zero-overhead configuration).
//
// Every connection is instrumented through internal/telemetry: frames
// and bytes in both directions plus send/receive latency, per connection
// and aggregated per transport kind (see telemetry.go). The
// instrumentation compiles out under the notelemetry build tag.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"flexric/internal/bufpool"
	"flexric/internal/telemetry"
	"flexric/internal/trace"
)

// Errors returned by transports.
var (
	// ErrClosed reports use of a closed connection or listener.
	ErrClosed = errors.New("transport: closed")
	// ErrMessageTooLarge reports a frame exceeding MaxMessageSize.
	ErrMessageTooLarge = errors.New("transport: message too large")
	// ErrTimeout reports a Recv that exceeded the receive deadline set
	// via RecvDeadliner. On the stream transport the frame may have been
	// partially consumed, so the connection must be closed afterwards —
	// the deadline exists to unmask dead peers, not to pace reads.
	ErrTimeout = errors.New("transport: recv timeout")
)

// MaxMessageSize caps a single E2 message frame (16 MiB).
const MaxMessageSize = 16 << 20

// DefaultDialTimeout bounds Dial's connection establishment when the
// caller does not choose a timeout (see DialTimeout).
const DefaultDialTimeout = 5 * time.Second

// Conn is a reliable, ordered, message-oriented connection. Send and Recv
// may be used concurrently with each other; neither may be called
// concurrently with itself.
type Conn interface {
	// Send transmits one message. The implementation does not retain b.
	Send(b []byte) error
	// Recv returns the next message. The returned slice is owned by the
	// caller.
	Recv() ([]byte, error)
	// Close terminates the connection; pending Recv calls fail.
	Close() error
	// RemoteAddr describes the peer, for logging and the RAN database.
	RemoteAddr() string
}

// RecvDeadliner is implemented by connections that support receive
// deadlines. A Recv in progress (or started) past the deadline fails
// with ErrTimeout; the zero time clears the deadline. Both shipped
// transports implement it. Deadlines are the dead-peer primitive of the
// resilience layer: a silent peer surfaces as ErrTimeout instead of
// blocking Recv forever.
type RecvDeadliner interface {
	// SetRecvDeadline sets the absolute deadline for Recv calls.
	SetRecvDeadline(t time.Time) error
}

// Listener accepts incoming connections.
type Listener interface {
	// Accept blocks for the next connection.
	Accept() (Conn, error)
	// Close stops listening; pending Accepts fail.
	Close() error
	// Addr is the bound address, e.g. to advertise in setup procedures.
	Addr() string
}

// Kind selects a transport implementation.
type Kind string

// Available transports.
const (
	// KindSCTPish is the default: framed TCP with SCTP-like message
	// semantics.
	KindSCTPish Kind = "sctpish"
	// KindPipe is an in-process transport for co-located deployments.
	KindPipe Kind = "pipe"
)

// Listen binds a listener of the given kind. For KindSCTPish the address
// is a TCP "host:port" (":0" picks a free port); for KindPipe it is an
// arbitrary name registered in the process-wide pipe namespace.
func Listen(kind Kind, addr string) (Listener, error) {
	switch kind {
	case KindSCTPish:
		l, err := net.Listen("tcp", addr)
		if err != nil {
			return nil, err
		}
		return &streamListener{l: l}, nil
	case KindPipe:
		return pipeListen(addr)
	default:
		return nil, fmt.Errorf("transport: unknown kind %q", kind)
	}
}

// Dial connects to a listener of the given kind with the default dial
// timeout.
func Dial(kind Kind, addr string) (Conn, error) {
	return DialTimeout(kind, addr, DefaultDialTimeout)
}

// DialTimeout connects to a listener of the given kind, bounding
// connection establishment by timeout (0 or negative falls back to
// DefaultDialTimeout). The pipe transport connects synchronously and
// ignores the timeout.
func DialTimeout(kind Kind, addr string, timeout time.Duration) (Conn, error) {
	if timeout <= 0 {
		timeout = DefaultDialTimeout
	}
	switch kind {
	case KindSCTPish:
		c, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		if tc, ok := c.(*net.TCPConn); ok {
			// E2 traffic is latency-sensitive small messages; never batch.
			_ = tc.SetNoDelay(true)
		}
		return newStreamConn(c), nil
	case KindPipe:
		return pipeDial(addr)
	default:
		return nil, fmt.Errorf("transport: unknown kind %q", kind)
	}
}

// streamConn frames messages over a byte stream with a 4-byte big-endian
// length prefix, preserving message boundaries as SCTP would.
type streamConn struct {
	c net.Conn

	sendMu sync.Mutex
	hdr    [4]byte
	// SendBatch scratch, reused across calls under sendMu. Entries of
	// iov are nilled after the write so caller payloads are not retained.
	batchHdrs [][4]byte
	batchIov  net.Buffers

	recvMu  sync.Mutex
	recvHdr [4]byte

	closeOnce sync.Once
	closeErr  error

	// lastRecvNS is the reassembly duration of the most recent Recv,
	// read by the receive loop via RecvTimer to record a retroactive
	// transport.recv span. Only the Recv caller touches it (Recv may not
	// be called concurrently with itself), so a plain field suffices.
	lastRecvNS int64

	stats connStats
}

func newStreamConn(c net.Conn) *streamConn {
	return &streamConn{c: c, stats: newConnStats(KindSCTPish)}
}

// Send implements Conn.
func (s *streamConn) Send(b []byte) error {
	if len(b) > MaxMessageSize {
		return ErrMessageTooLarge
	}
	var t0 time.Time
	if telemetry.Enabled {
		t0 = time.Now()
	}
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	binary.BigEndian.PutUint32(s.hdr[:], uint32(len(b)))
	// Two writes would allow the kernel to emit a tiny header segment;
	// use a vectored write so header+payload go out together.
	bufs := net.Buffers{s.hdr[:], b}
	if _, err := bufs.WriteTo(s.c); err != nil {
		return mapErr(err)
	}
	if telemetry.Enabled {
		s.stats.sent(len(b), time.Since(t0))
	}
	return nil
}

// SendBatch implements BatchSender: all headers and payloads leave in a
// single vectored write under one lock acquisition, so the kernel sees
// the whole batch at once and a per-TTI burst of indications costs one
// syscall. The scratch header and iovec slices are retained by the
// connection; the caller's payloads are not.
func (s *streamConn) SendBatch(msgs [][]byte) error {
	if len(msgs) == 0 {
		return nil
	}
	total := 0
	for _, b := range msgs {
		if len(b) > MaxMessageSize {
			return ErrMessageTooLarge
		}
		total += len(b)
	}
	var t0 time.Time
	if telemetry.Enabled {
		t0 = time.Now()
	}
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	if cap(s.batchHdrs) < len(msgs) {
		s.batchHdrs = make([][4]byte, len(msgs))
	}
	hdrs := s.batchHdrs[:len(msgs)]
	iov := s.batchIov[:0]
	for i, b := range msgs {
		binary.BigEndian.PutUint32(hdrs[i][:], uint32(len(b)))
		iov = append(iov, hdrs[i][:], b)
	}
	s.batchIov = iov           // keep the grown capacity for the next batch
	_, err := iov.WriteTo(s.c) // consumes iov's local header; batchIov keeps full length
	for i := range s.batchIov {
		s.batchIov[i] = nil
	}
	if err != nil {
		return mapErr(err)
	}
	if telemetry.Enabled {
		s.stats.sentBatch(len(msgs), total, time.Since(t0))
	}
	return nil
}

// Recv implements Conn.
func (s *streamConn) Recv() ([]byte, error) { return s.recvFrame(nil) }

// RecvBuf implements BufRecver: the frame is read into dst when it fits,
// otherwise dst is recycled through the buffer pool and a pooled
// replacement is used. Ownership of dst transfers to the connection.
func (s *streamConn) RecvBuf(dst []byte) ([]byte, error) { return s.recvFrame(dst) }

func (s *streamConn) recvFrame(dst []byte) ([]byte, error) {
	s.recvMu.Lock()
	defer s.recvMu.Unlock()
	if _, err := io.ReadFull(s.c, s.recvHdr[:]); err != nil {
		return nil, mapErr(err)
	}
	// The frame has started arriving: receive latency is measured from
	// here (reassembly), not from the call (idle wait for the peer).
	var t0 time.Time
	if telemetry.Enabled || trace.Enabled {
		t0 = time.Now()
	}
	n := binary.BigEndian.Uint32(s.recvHdr[:])
	if n > MaxMessageSize {
		return nil, ErrMessageTooLarge
	}
	var buf []byte
	if int(n) <= cap(dst) {
		buf = dst[:n]
	} else {
		bufpool.Put(dst)
		buf = bufpool.Get(int(n))
	}
	if _, err := io.ReadFull(s.c, buf); err != nil {
		return nil, mapErr(err)
	}
	if telemetry.Enabled || trace.Enabled {
		d := time.Since(t0)
		s.lastRecvNS = int64(d)
		if telemetry.Enabled {
			s.stats.received(len(buf), d)
		}
	}
	return buf, nil
}

// LastRecvDuration implements RecvTimer.
func (s *streamConn) LastRecvDuration() time.Duration {
	return time.Duration(s.lastRecvNS)
}

// SetRecvDeadline implements RecvDeadliner.
func (s *streamConn) SetRecvDeadline(t time.Time) error {
	return s.c.SetReadDeadline(t)
}

// mapErr normalizes stream errors: peer or local teardown surfaces as
// ErrClosed on both Send and Recv, and a read-deadline expiry as
// ErrTimeout.
func mapErr(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return ErrClosed
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return ErrTimeout
	}
	return err
}

// Close implements Conn.
func (s *streamConn) Close() error {
	s.closeOnce.Do(func() {
		s.closeErr = s.c.Close()
		s.stats.close()
	})
	return s.closeErr
}

// RemoteAddr implements Conn.
func (s *streamConn) RemoteAddr() string { return s.c.RemoteAddr().String() }

type streamListener struct {
	l net.Listener
}

// Accept implements Listener.
func (s *streamListener) Accept() (Conn, error) {
	c, err := s.l.Accept()
	if err != nil {
		if errors.Is(err, net.ErrClosed) {
			return nil, ErrClosed
		}
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	return newStreamConn(c), nil
}

// Close implements Listener.
func (s *streamListener) Close() error { return s.l.Close() }

// Addr implements Listener.
func (s *streamListener) Addr() string { return s.l.Addr().String() }
