package flat

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func buildSimple(t *testing.T) []byte {
	t.Helper()
	b := NewBuilder(128)
	s := b.CreateString("hello")
	v := b.CreateByteVector([]byte{1, 2, 3, 4})
	b.StartTable(6)
	b.AddUint64(0, 0xDEADBEEFCAFE)
	b.AddUint32(1, 42)
	b.AddRef(2, s)
	b.AddRef(3, v)
	b.AddBool(4, true)
	b.AddFloat64(5, 2.75)
	root := b.EndTable()
	b.Finish(root)
	return b.Bytes()
}

func TestScalarFields(t *testing.T) {
	buf := buildSimple(t)
	tab, err := GetRoot(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Uint64(0); got != 0xDEADBEEFCAFE {
		t.Fatalf("u64: %#x", got)
	}
	if got := tab.Uint32(1); got != 42 {
		t.Fatalf("u32: %d", got)
	}
	if got := tab.String(2); got != "hello" {
		t.Fatalf("string: %q", got)
	}
	if got := tab.Bytes(3); !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Fatalf("bytes: %v", got)
	}
	if !tab.Bool(4) {
		t.Fatal("bool")
	}
	if got := tab.Float64(5); got != 2.75 {
		t.Fatalf("f64: %v", got)
	}
}

func TestAbsentFieldsDefaultToZero(t *testing.T) {
	b := NewBuilder(64)
	b.StartTable(4)
	b.AddUint32(1, 7)
	root := b.EndTable()
	b.Finish(root)
	tab, err := GetRoot(b.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if tab.Has(0) || !tab.Has(1) || tab.Has(2) || tab.Has(3) {
		t.Fatal("presence bits wrong")
	}
	if tab.Uint64(0) != 0 || tab.String(2) != "" || tab.Bytes(3) != nil {
		t.Fatal("absent fields must be zero")
	}
	// Slot index beyond vtable is absent, not a panic.
	if tab.Has(99) || tab.Uint64(99) != 0 {
		t.Fatal("out-of-range slot must read as absent")
	}
}

func TestSubTables(t *testing.T) {
	b := NewBuilder(256)
	// Inner tables must be created before the outer one.
	b.StartTable(1)
	b.AddUint32(0, 11)
	inner1 := b.EndTable()
	b.StartTable(1)
	b.AddUint32(0, 22)
	inner2 := b.EndTable()
	vec := b.CreateRefVector([]uint32{inner1, inner2})
	b.StartTable(2)
	b.AddRef(0, inner1)
	b.AddRef(1, vec)
	root := b.EndTable()
	b.Finish(root)

	tab, err := GetRoot(b.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	sub := tab.SubTable(0)
	if !sub.Valid() || sub.Uint32(0) != 11 {
		t.Fatalf("subtable: %v", sub.Uint32(0))
	}
	if n := tab.VectorLen(1); n != 2 {
		t.Fatalf("vector len: %d", n)
	}
	if got := tab.RefVectorAt(1, 1).Uint32(0); got != 22 {
		t.Fatalf("ref vector elem: %d", got)
	}
	if tab.RefVectorAt(1, 2).Valid() {
		t.Fatal("out-of-range vector index must be invalid")
	}
	if tab.RefVectorAt(1, -1).Valid() {
		t.Fatal("negative vector index must be invalid")
	}
}

func TestScalarVectors(t *testing.T) {
	b := NewBuilder(256)
	u := b.CreateUint64Vector([]uint64{5, 6, 7})
	f := b.CreateFloat64Vector([]float64{1.5, -2.5})
	b.StartTable(2)
	b.AddRef(0, u)
	b.AddRef(1, f)
	b.Finish(b.EndTable())
	tab, err := GetRoot(b.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if tab.VectorLen(0) != 3 || tab.Uint64VectorAt(0, 2) != 7 {
		t.Fatal("u64 vector")
	}
	if tab.VectorLen(1) != 2 || tab.Float64VectorAt(1, 1) != -2.5 {
		t.Fatal("f64 vector")
	}
	if tab.Uint64VectorAt(0, 3) != 0 {
		t.Fatal("out-of-range scalar vector index must be 0")
	}
}

func TestZeroCopy(t *testing.T) {
	buf := buildSimple(t)
	tab, _ := GetRoot(buf)
	raw := tab.Bytes(3)
	raw2 := tab.Bytes(3)
	if &raw[0] != &raw2[0] {
		t.Fatal("Bytes must return stable aliased views")
	}
}

func TestBuilderReuse(t *testing.T) {
	b := NewBuilder(64)
	b.StartTable(1)
	b.AddUint32(0, 1)
	b.Finish(b.EndTable())
	first := append([]byte(nil), b.Bytes()...)
	b.Reset()
	b.StartTable(1)
	b.AddUint32(0, 2)
	b.Finish(b.EndTable())
	t1, _ := GetRoot(first)
	t2, _ := GetRoot(b.Bytes())
	if t1.Uint32(0) != 1 || t2.Uint32(0) != 2 {
		t.Fatal("builder reuse corrupted content")
	}
}

func TestCorruptBuffers(t *testing.T) {
	if _, err := GetRoot(nil); err == nil {
		t.Fatal("nil buffer must fail")
	}
	if _, err := GetRoot([]byte{1, 2}); err == nil {
		t.Fatal("short buffer must fail")
	}
	// Root pointing past the end.
	if _, err := GetRoot([]byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0}); err == nil {
		t.Fatal("out-of-range root must fail")
	}
	// Root pointing into the header.
	if _, err := GetRoot([]byte{2, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Fatal("root inside header must fail")
	}
}

// Property: reads on random garbage never panic.
func TestQuickGarbageRobustness(t *testing.T) {
	f := func(buf []byte) bool {
		tab, err := GetRoot(buf)
		if err != nil {
			return true
		}
		for i := -1; i < 8; i++ {
			_ = tab.Uint64(i)
			_ = tab.Uint32(i)
			_ = tab.Bytes(i)
			_ = tab.String(i)
			_ = tab.SubTable(i).Uint64(0)
			_ = tab.VectorLen(i)
			_ = tab.RefVectorAt(i, 0).Valid()
			_ = tab.Uint64VectorAt(i, 1)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// Property: scalar and string fields round-trip.
func TestQuickRoundTrip(t *testing.T) {
	f := func(u64 uint64, u32 uint32, s string, data []byte, fl float64, bit bool) bool {
		b := NewBuilder(64)
		so := b.CreateString(s)
		do := b.CreateByteVector(data)
		b.StartTable(6)
		b.AddUint64(0, u64)
		b.AddUint32(1, u32)
		b.AddRef(2, so)
		b.AddRef(3, do)
		b.AddFloat64(4, fl)
		b.AddBool(5, bit)
		b.Finish(b.EndTable())
		tab, err := GetRoot(b.Bytes())
		if err != nil {
			return false
		}
		if tab.Uint64(0) != u64 || tab.Uint32(1) != u32 || tab.String(2) != s {
			return false
		}
		got := tab.Bytes(3)
		if len(got) != len(data) || (len(data) > 0 && !bytes.Equal(got, data)) {
			return false
		}
		gf := tab.Float64(4)
		if gf != fl && !(math.IsNaN(gf) && math.IsNaN(fl)) {
			return false
		}
		return tab.Bool(5) == bit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestTableOverheadIsTens(t *testing.T) {
	// The paper observes 30–40 B of FB overhead per message. Our layout
	// should land in the same ballpark for a small message.
	b := NewBuilder(128)
	payload := bytes.Repeat([]byte{0xAA}, 100)
	v := b.CreateByteVector(payload)
	b.StartTable(3)
	b.AddUint32(0, 1)
	b.AddUint32(1, 2)
	b.AddRef(2, v)
	b.Finish(b.EndTable())
	overhead := b.Len() - len(payload)
	if overhead < 10 || overhead > 64 {
		t.Fatalf("per-message overhead %d bytes, expected tens of bytes", overhead)
	}
}

func BenchmarkBuild(b *testing.B) {
	payload := bytes.Repeat([]byte{0x55}, 256)
	bl := NewBuilder(512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bl.Reset()
		v := bl.CreateByteVector(payload)
		bl.StartTable(4)
		bl.AddUint64(0, uint64(i))
		bl.AddUint32(1, 7)
		bl.AddRef(2, v)
		bl.AddBool(3, true)
		bl.Finish(bl.EndTable())
	}
}

func BenchmarkFieldAccess(b *testing.B) {
	bl := NewBuilder(512)
	v := bl.CreateByteVector(bytes.Repeat([]byte{0x55}, 256))
	bl.StartTable(4)
	bl.AddUint64(0, 99)
	bl.AddUint32(1, 7)
	bl.AddRef(2, v)
	bl.AddBool(3, true)
	bl.Finish(bl.EndTable())
	tab, _ := GetRoot(bl.Bytes())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tab.Uint64(0) != 99 || tab.Uint32(1) != 7 || len(tab.Bytes(2)) != 256 {
			b.Fatal("bad read")
		}
	}
}
